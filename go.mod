module ldplfs

go 1.24
