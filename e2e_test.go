package ldplfs_test

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/harness"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/unixtools"
	"ldplfs/internal/workload"
)

// TestEndToEndOnRealDisk walks the full user journey on the actual OS
// file system — the flows cmd/ldrun and cmd/plfsctl wrap:
//
//  1. an MPI job checkpoints through LDPLFS onto a real directory,
//  2. unmodified UNIX tools read the container back via the shim,
//  3. plfsctl-style flatten produces a byte-identical plain file,
//  4. the backend really contains a container directory.
func TestEndToEndOnRealDisk(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"backend", "scratch"} {
		if err := os.Mkdir(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	osfs, err := posix.NewOSFS(root)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Parallel write through LDPLFS onto real disk.
	const (
		ranks = 4
		block = 128 << 10
	)
	err = mpi.Run(ranks, 2, func(r *mpi.Rank) {
		d := posix.NewDispatch(osfs)
		if _, err := core.Preload(d, core.Config{
			Mounts: []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
			Pid:    uint32(r.Rank()),
		}); err != nil {
			panic(err)
		}
		fh, err := mpiio.Open(r, mpiio.NewUFS(d), "/mnt/plfs/ckpt", mpiio.ModeCreate|mpiio.ModeRdwr, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		buf := bytes.Repeat([]byte{byte('A' + r.Rank())}, block)
		if _, err := fh.WriteAtAll(buf, int64(r.Rank())*block); err != nil {
			panic(err)
		}
		if err := fh.Close(); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// 4 (checked early). The backend holds a real container directory.
	info, err := os.Stat(filepath.Join(root, "backend", "ckpt"))
	if err != nil || !info.IsDir() {
		t.Fatalf("backend/ckpt on disk: %v, dir=%v", err, info != nil && info.IsDir())
	}
	if _, err := os.Stat(filepath.Join(root, "backend", "ckpt", ".plfsaccess")); err != nil {
		t.Fatalf("container marker missing on disk: %v", err)
	}

	// 2. A "login shell" with the shim preloaded runs the tools.
	shell := posix.NewDispatch(osfs)
	if _, err := core.Preload(shell, core.Config{
		Mounts: []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:    999,
	}); err != nil {
		t.Fatal(err)
	}
	sumContainer, err := unixtools.Md5sum(shell, "/mnt/plfs/ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unixtools.Cp(shell, "/mnt/plfs/ckpt", "/scratch/ckpt.flat"); err != nil {
		t.Fatal(err)
	}

	// 3. plfsctl-style flatten agrees with cp through the shim.
	p := plfs.New(osfs, plfs.DefaultOptions())
	if err := p.Flatten("/backend/ckpt", "/scratch/ckpt.flat2"); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{'A'}, block)
	want = append(want, bytes.Repeat([]byte{'B'}, block)...)
	want = append(want, bytes.Repeat([]byte{'C'}, block)...)
	want = append(want, bytes.Repeat([]byte{'D'}, block)...)
	wantSum := md5.Sum(want)
	if sumContainer != hex.EncodeToString(wantSum[:]) {
		t.Fatal("container digest differs from expected logical content")
	}
	for _, name := range []string{"ckpt.flat", "ckpt.flat2"} {
		got, err := os.ReadFile(filepath.Join(root, "scratch", name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs from logical content", name)
		}
	}
}

// TestPaperScaleFlashOnNullFS replays the paper's actual FLASH-IO
// configuration (24^3 blocks, ~212 MB per process) through LDPLFS on the
// dataless backend — the op stream of a Fig. 5 point, for real.
func TestPaperScaleFlashOnNullFS(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale replay skipped in -short mode")
	}
	null := posix.NewNullFS()
	for _, d := range []string{"/scratch", "/backend"} {
		if err := null.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// 4 ranks of the paper's per-process volume: ~850 MB of logical
	// payload, zero bytes stored.
	cfg := workload.FlashIOConfig{NXB: 24, NBlocks: 80, NVars: 24, Hints: mpiio.DefaultHints()}
	var wrote int64
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		d := posix.NewDispatch(null)
		if _, err := core.Preload(d, core.Config{
			Mounts: []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
			Pid:    uint32(r.Rank()),
		}); err != nil {
			panic(err)
		}
		res, err := workload.RunFlashIO(r, mpiio.NewUFS(d), "/mnt/plfs/flash", cfg)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			wrote = res.BytesWritten * 4
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	perProc := cfg.BytesPerProcess()
	if wrote < 4*perProc {
		t.Fatalf("wrote %d, want >= %d", wrote, 4*perProc)
	}
	// The checkpoint container's logical size matches the layout.
	p := plfs.New(null, plfs.DefaultOptions())
	st, err := p.Stat("/backend/flash_hdf5_chk_0001")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size < 4*perProc {
		t.Fatalf("checkpoint logical size %d below payload %d", st.Size, 4*perProc)
	}
}

// TestMethodsAgreeOnRealDisk is the cross-method transparency check on
// OSFS: romio-written containers read back through ldplfs on real disk.
func TestMethodsAgreeOnRealDisk(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"backend", "scratch"} {
		if err := os.Mkdir(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	osfs, err := posix.NewOSFS(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := harness.PrepareStore(osfs); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	payload := make([]byte, 512<<10)
	rng.Read(payload)

	err = mpi.Run(2, 1, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverFor("romio", osfs, r.Rank())
		if err != nil {
			panic(err)
		}
		fh, err := mpiio.Open(r, drv, pathFor("x"), mpiio.ModeCreate|mpiio.ModeWronly, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		half := len(payload) / 2
		chunk := payload[r.Rank()*half : (r.Rank()+1)*half]
		if _, err := fh.WriteAtAll(chunk, int64(r.Rank()*half)); err != nil {
			panic(err)
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}

	err = mpi.Run(1, 1, func(r *mpi.Rank) {
		drv, pathFor, err := harness.DriverFor("ldplfs", osfs, 7)
		if err != nil {
			panic(err)
		}
		fh, err := mpiio.Open(r, drv, pathFor("x"), mpiio.ModeRdonly, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}
		got := make([]byte, len(payload))
		if n, err := fh.ReadAtAll(got, 0); err != nil || n != len(payload) {
			panic(err)
		}
		if !bytes.Equal(got, payload) {
			panic("cross-method bytes differ on real disk")
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
