package unixtools

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// env builds a process with LDPLFS preloaded over /mnt/plfs -> /backend.
func env(t *testing.T) (*posix.Dispatch, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	for _, dir := range []string{"/backend", "/home"} {
		if err := mem.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	d := posix.NewDispatch(mem)
	if _, err := core.Preload(d, core.Config{
		Mounts:      []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
		Pid:         7,
		PlfsOptions: plfs.Options{NumHostdirs: 4},
	}); err != nil {
		t.Fatal(err)
	}
	return d, mem
}

// writeVia writes content to path through the dispatch.
func writeVia(t *testing.T, d *posix.Dispatch, path string, content []byte) {
	t.Helper()
	fd, err := d.Open(path, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := 0
	for w < len(content) {
		n, err := d.Write(fd, content[w:])
		if err != nil {
			t.Fatal(err)
		}
		w += n
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func randomContent(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rng.Read(buf)
	return buf
}

func TestCpPlfsToUnix(t *testing.T) {
	d, mem := env(t)
	content := randomContent(3<<20+17, 1) // >1 dropping read, odd size
	writeVia(t, d, "/mnt/plfs/data.bin", content)

	n, err := Cp(d, "/mnt/plfs/data.bin", "/home/copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Fatalf("cp moved %d bytes, want %d", n, len(content))
	}
	// The copy is a plain file with identical bytes (checked via raw FS).
	fd, err := mem.Open("/home/copy.bin", posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := posix.ReadFull(mem, fd, got, 0); err != nil {
		t.Fatal(err)
	}
	mem.Close(fd)
	if !bytes.Equal(got, content) {
		t.Fatal("cp out of a container corrupted bytes")
	}
}

func TestCpUnixToPlfs(t *testing.T) {
	d, _ := env(t)
	content := randomContent(1<<20, 2)
	writeVia(t, d, "/home/src.bin", content)

	if _, err := Cp(d, "/home/src.bin", "/mnt/plfs/dst.bin"); err != nil {
		t.Fatal(err)
	}
	// Read it back through the shim.
	sum, err := Md5sum(d, "/mnt/plfs/dst.bin")
	if err != nil {
		t.Fatal(err)
	}
	want := md5.Sum(content)
	if sum != hex.EncodeToString(want[:]) {
		t.Fatal("round-trip digest mismatch")
	}
}

func TestCatStreamsContainer(t *testing.T) {
	d, _ := env(t)
	content := []byte(strings.Repeat("streaming plfs bytes\n", 10000))
	writeVia(t, d, "/mnt/plfs/log.txt", content)

	var out bytes.Buffer
	n, err := Cat(d, "/mnt/plfs/log.txt", &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) || !bytes.Equal(out.Bytes(), content) {
		t.Fatalf("cat produced %d bytes, want %d", n, len(content))
	}
}

func TestGrepFindsLinesAcrossBufferBoundaries(t *testing.T) {
	d, _ := env(t)
	var sb strings.Builder
	wantLines := []int{}
	lineNo := 1
	for sb.Len() < 3*StreamBufSize {
		if lineNo%997 == 0 {
			sb.WriteString(fmt.Sprintf("line %d contains the NEEDLE marker\n", lineNo))
			wantLines = append(wantLines, lineNo)
		} else {
			sb.WriteString(fmt.Sprintf("line %d is ordinary filler text\n", lineNo))
		}
		lineNo++
	}
	// Final line without trailing newline, also matching.
	sb.WriteString("last line NEEDLE no newline")
	wantLines = append(wantLines, lineNo)

	writeVia(t, d, "/mnt/plfs/big.txt", []byte(sb.String()))
	matches, err := Grep(d, "NEEDLE", "/mnt/plfs/big.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(wantLines) {
		t.Fatalf("grep found %d matches, want %d", len(matches), len(wantLines))
	}
	for i, m := range matches {
		if m.LineNo != wantLines[i] {
			t.Fatalf("match %d at line %d, want %d", i, m.LineNo, wantLines[i])
		}
		if !strings.Contains(m.Line, "NEEDLE") {
			t.Fatalf("non-matching line returned: %q", m.Line)
		}
	}
}

func TestMd5sumMatchesDirectDigest(t *testing.T) {
	d, _ := env(t)
	content := randomContent(2<<20+5, 3)
	writeVia(t, d, "/mnt/plfs/sum.bin", content)
	got, err := Md5sum(d, "/mnt/plfs/sum.bin")
	if err != nil {
		t.Fatal(err)
	}
	want := md5.Sum(content)
	if got != hex.EncodeToString(want[:]) {
		t.Fatalf("md5 = %s", got)
	}
}

func TestToolsIdenticalOnPlainAndPlfs(t *testing.T) {
	// The same tool over the same bytes must behave identically whether
	// the file is a container or a plain file — Table II's premise.
	d, _ := env(t)
	content := []byte(strings.Repeat("alpha beta gamma\n", 5000) + "needle line\n")
	writeVia(t, d, "/mnt/plfs/a.txt", content)
	writeVia(t, d, "/home/a.txt", content)

	sumP, err := Md5sum(d, "/mnt/plfs/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	sumU, err := Md5sum(d, "/home/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if sumP != sumU {
		t.Fatal("digests differ between plfs and unix file")
	}
	gp, err := Grep(d, "needle", "/mnt/plfs/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	gu, err := Grep(d, "needle", "/home/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(gp) != 1 || len(gu) != 1 || gp[0] != gu[0] {
		t.Fatalf("grep diverged: %v vs %v", gp, gu)
	}
}

func TestLsShowsContainersAsFiles(t *testing.T) {
	d, _ := env(t)
	writeVia(t, d, "/mnt/plfs/chk.h5", []byte("x"))
	d.Mkdir("/mnt/plfs/realdir", 0o755)
	names, err := Ls(d, "/mnt/plfs")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "chk.h5") || strings.Contains(joined, "chk.h5/") {
		t.Fatalf("container misrendered in ls: %v", names)
	}
	if !strings.Contains(joined, "realdir/") {
		t.Fatalf("directory misrendered in ls: %v", names)
	}
}

func TestToolErrorsOnMissingFiles(t *testing.T) {
	d, _ := env(t)
	if _, err := Cat(d, "/mnt/plfs/absent", &bytes.Buffer{}); err == nil {
		t.Fatal("cat of missing file succeeded")
	}
	if _, err := Cp(d, "/mnt/plfs/absent", "/home/x"); err == nil {
		t.Fatal("cp of missing file succeeded")
	}
	if _, err := Md5sum(d, "/home/absent"); err == nil {
		t.Fatal("md5sum of missing file succeeded")
	}
	if _, err := Ls(d, "/mnt/plfs/absent"); err == nil {
		t.Fatal("ls of missing dir succeeded")
	}
}
