// Package unixtools implements the standard UNIX tools of the paper's
// Table II — cp, cat, grep, md5sum — as "unmodified binaries": they issue
// every file operation through a posix.Dispatch symbol table and know
// nothing about PLFS. Preloading LDPLFS into that table (internal/core)
// retargets them onto containers, which is exactly the paper's
// demonstration that raw data can be extracted from PLFS structures
// without a FUSE mount.
package unixtools

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"io"

	"ldplfs/internal/posix"
)

// bufSizes mirror coreutils behaviour: cp moves big blocks, the streaming
// tools use small ones. The distinction matters on PLFS (Table II's cp
// benefits from multi-dropping fan-in on large reads).
const (
	CpBufSize     = 4 << 20
	StreamBufSize = 128 << 10
)

// reader adapts a Dispatch fd to io.Reader for the streaming tools.
type reader struct {
	d   *posix.Dispatch
	fd  int
	buf []byte
}

func (r *reader) Read(p []byte) (int, error) {
	n, err := r.d.Read(r.fd, p)
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Cp copies src to dst (cp src dst). Like cp, it streams through a large
// buffer and preserves nothing but bytes.
func Cp(d *posix.Dispatch, src, dst string) (int64, error) {
	in, err := d.Open(src, posix.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("cp: %s: %w", src, err)
	}
	defer d.Close(in)
	out, err := d.Open(dst, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("cp: %s: %w", dst, err)
	}
	defer d.Close(out)

	var total int64
	buf := make([]byte, CpBufSize)
	for {
		n, err := d.Read(in, buf)
		if err != nil {
			return total, fmt.Errorf("cp: read %s: %w", src, err)
		}
		if n == 0 {
			return total, nil
		}
		w := 0
		for w < n {
			m, err := d.Write(out, buf[w:n])
			if err != nil {
				return total, fmt.Errorf("cp: write %s: %w", dst, err)
			}
			w += m
		}
		total += int64(n)
	}
}

// Cat streams src to w (cat src > w).
func Cat(d *posix.Dispatch, src string, w io.Writer) (int64, error) {
	fd, err := d.Open(src, posix.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("cat: %s: %w", src, err)
	}
	defer d.Close(fd)
	var total int64
	buf := make([]byte, StreamBufSize)
	for {
		n, err := d.Read(fd, buf)
		if err != nil {
			return total, fmt.Errorf("cat: %s: %w", src, err)
		}
		if n == 0 {
			return total, nil
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return total, err
		}
		total += int64(n)
	}
}

// GrepMatch is one matching line.
type GrepMatch struct {
	LineNo int // 1-based
	Line   string
}

// Grep returns the lines of src containing pattern (fixed string, like
// grep -F), streaming with a small buffer.
func Grep(d *posix.Dispatch, pattern, src string) ([]GrepMatch, error) {
	fd, err := d.Open(src, posix.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("grep: %s: %w", src, err)
	}
	defer d.Close(fd)

	var matches []GrepMatch
	pat := []byte(pattern)
	lineNo := 1
	var partial []byte
	buf := make([]byte, StreamBufSize)
	for {
		n, err := d.Read(fd, buf)
		if err != nil {
			return matches, fmt.Errorf("grep: %s: %w", src, err)
		}
		if n == 0 {
			if len(partial) > 0 && bytes.Contains(partial, pat) {
				matches = append(matches, GrepMatch{LineNo: lineNo, Line: string(partial)})
			}
			return matches, nil
		}
		chunk := buf[:n]
		for {
			nl := bytes.IndexByte(chunk, '\n')
			if nl < 0 {
				partial = append(partial, chunk...)
				break
			}
			line := chunk[:nl]
			if len(partial) > 0 {
				line = append(partial, line...)
			}
			if bytes.Contains(line, pat) {
				matches = append(matches, GrepMatch{LineNo: lineNo, Line: string(line)})
			}
			partial = partial[:0]
			lineNo++
			chunk = chunk[nl+1:]
		}
	}
}

// Md5sum computes the MD5 digest of src, streaming like the coreutils
// tool, and returns it hex-encoded.
func Md5sum(d *posix.Dispatch, src string) (string, error) {
	fd, err := d.Open(src, posix.O_RDONLY, 0)
	if err != nil {
		return "", fmt.Errorf("md5sum: %s: %w", src, err)
	}
	defer d.Close(fd)
	h := md5.New()
	if _, err := io.Copy(h, &reader{d: d, fd: fd, buf: nil}); err != nil {
		return "", fmt.Errorf("md5sum: %s: %w", src, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Ls lists a directory the way ls -1 would (names only, sorted), with a
// type marker for directories — used to show containers appearing as
// plain files under LDPLFS.
func Ls(d *posix.Dispatch, dir string) ([]string, error) {
	entries, err := d.Readdir(dir)
	if err != nil {
		return nil, fmt.Errorf("ls: %s: %w", dir, err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name
		if e.IsDir {
			name += "/"
		}
		out = append(out, name)
	}
	return out, nil
}
