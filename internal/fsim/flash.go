package fsim

// FlashJob is one point of Fig. 5: FLASH-IO weak-scaled at 12 processes
// per node, each process writing ~205 MB through HDF-5 across the three
// checkpoint files (checkpoint, plotfile, corner plotfile).
type FlashJob struct {
	Cores  int
	Method Method
	// BytesPerProc defaults to the paper's ~205 MB.
	BytesPerProc int64
	// Files is the number of HDF-5 output files per run (3 for FLASH-IO).
	Files int
}

// DefaultFlash returns the paper's configuration (24^3 local blocks,
// ~205 MB per process, three HDF-5 files).
func DefaultFlash(cores int, m Method) FlashJob {
	return FlashJob{Cores: cores, Method: m, BytesPerProc: 205 << 20, Files: 3}
}

// FlashBandwidth returns the modelled FLASH-IO write bandwidth in MB/s.
//
// FLASH-IO's writes are multi-megabyte HDF-5 dataset writes with no
// compute gaps, so the client cache cannot hide them (contrast BT). Two
// mechanisms fight as the job weak-scales:
//
//   - data: per-node streams add bandwidth until the backend's per-stream
//     management costs erode it — with PLFS every process holds a data
//     and an index dropping open, so active streams grow twice as fast
//     as cores;
//   - metadata: every checkpoint file is a fresh container, so each of
//     the three files costs ~2 creates per process, all serialised
//     through the single Lustre MDS whose service time degrades under
//     the create storm.
//
// Their sum produces the paper's signature curve: a steep rise to a peak
// around 192 cores, then collapse below plain MPI-IO by 3,072 cores.
// Plain MPI-IO writes one shared file — three creates total — and follows
// the gentle shared-file plateau to ~550 MB/s.
func (p *Platform) FlashBandwidth(job FlashJob) float64 {
	if job.BytesPerProc == 0 {
		job.BytesPerProc = 205 << 20
	}
	if job.Files == 0 {
		job.Files = 3
	}
	cores := job.Cores
	nodes := (cores + p.CoresPerNode - 1) / p.CoresPerNode
	totalBytes := float64(cores) * float64(job.BytesPerProc)

	if !job.Method.UsesPLFS() {
		bw := p.SharedPlateau * float64(nodes) / (float64(nodes) + p.SharedK)
		return bw / 1e6
	}

	// Data path: node NIC aggregate vs stream-contended backend.
	streams := float64(2 * cores)
	nodeBound := float64(nodes) * p.NodeWriteBW
	backend := p.OSSAggBW / (1 + streams/p.StreamK)
	dataBW := minf(nodeBound, backend)
	dataTime := totalBytes / dataBW

	// Metadata path: per container, every process creates its data and
	// index droppings (plus the container skeleton), all through the MDS.
	metaTime := 0.0
	if p.MDS != nil {
		opsPerFile := float64(2*cores + nodes + 4) // droppings + hostdirs + skeleton
		metaTime = float64(job.Files) * opsPerFile * p.MDS.Service(cores)
	}

	total := dataTime + metaTime
	bw := totalBytes / total

	if job.Method == FUSE {
		bw *= 0.55
	}
	if job.Method == ROMIO {
		bw *= 0.99
	}
	return bw / 1e6
}

// FlashSeries computes Fig. 5 for the three plotted methods.
func (p *Platform) FlashSeries(coreCounts []int) map[Method][]float64 {
	out := make(map[Method][]float64)
	for _, m := range []Method{MPIIO, ROMIO, LDPLFS} {
		series := make([]float64, len(coreCounts))
		for i, c := range coreCounts {
			series[i] = p.FlashBandwidth(DefaultFlash(c, m))
		}
		out[m] = series
	}
	return out
}

// Fig5Cores are the core counts of Fig. 5's x axis (1..256 nodes at 12
// processes per node).
var Fig5Cores = []int{12, 24, 48, 96, 192, 384, 768, 1536, 3072}
