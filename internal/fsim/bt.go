package fsim

// BTClass identifies a NAS BT problem class from the paper.
type BTClass struct {
	Name       string
	Grid       int   // problem is Grid^3
	TotalBytes int64 // bytes written over the whole run
	Steps      int   // collective write steps ("20 separate MPI write calls")
}

// The two classes the paper benchmarks (Section IV).
var (
	BTClassC = BTClass{Name: "C", Grid: 162, TotalBytes: 6_400 << 20, Steps: 20}
	BTClassD = BTClass{Name: "D", Grid: 408, TotalBytes: 136_000 << 20, Steps: 20}
)

// BTJob is one point of Fig. 4: BT strong-scaled to Cores processors.
type BTJob struct {
	Class  BTClass
	Cores  int
	Method Method
}

// BTBandwidth returns the modelled BT-IO write bandwidth in MB/s.
//
// The controlling quantity — exactly the paper's Section IV analysis — is
// the per-process write size per step:
//
//	classBytes / steps / cores
//
// For PLFS methods, each process appends to its own dropping, so a write
// no larger than the client cache threshold is "cleared to cache almost
// instantly"; the visible cost is the steady-state drain, bounded by the
// per-node drain rate and a backend cap. A write too large for the cache
// goes synchronously to the object servers, where thousands of concurrent
// file streams erode efficiency — at 1,024 cores (class D, ~7 MB writes)
// that lands PLFS back at vanilla MPI-IO's level; at 4,096 cores the
// per-process write shrinks under the threshold again and caching returns
// (the Fig. 4b dip and recovery).
//
// For plain MPI-IO every write funnels through the shared file's extent
// locks: bandwidth follows the shared-file plateau curve regardless of
// write size.
func (p *Platform) BTBandwidth(job BTJob) float64 {
	cores := job.Cores
	nodes := (cores + p.CoresPerNode - 1) / p.CoresPerNode
	perProcPerStep := job.Class.TotalBytes / int64(job.Class.Steps) / int64(cores)

	var bw float64
	switch {
	case !job.Method.UsesPLFS():
		// Shared-file collective writes: plateau*n/(n+k).
		bw = p.SharedPlateau * float64(cores) / (float64(cores) + 32)
	case perProcPerStep <= p.CacheThreshold:
		// Cache-absorbed small writes: drain-rate bound.
		nodeBound := float64(nodes) * p.NodeDrainBW
		capBound := p.OSSAggBW * p.CachedCapFrac
		bw = minf(nodeBound, capBound)
	default:
		// Synchronous large writes to per-process files: node NICs vs
		// backend stream-contention efficiency (data + index droppings
		// mean two active streams per process).
		streams := float64(2 * cores)
		nodeBound := float64(nodes) * p.NodeWriteBW
		backend := p.OSSAggBW / (1 + streams/p.StreamK)
		bw = minf(nodeBound, backend)
	}

	// The FUSE and driver distinctions matter little at BT's write sizes,
	// but keep the method ordering honest: FUSE pays the segmentation tax.
	switch job.Method {
	case FUSE:
		bw *= 0.55
	case LDPLFS:
		bw *= 1.00
	case ROMIO:
		bw *= 0.97 // ADIO layering: the "slight divergence for BT" of Fig. 4
	}
	return bw / 1e6
}

// BTSeries computes Fig. 4a or 4b for all three plotted methods (the
// paper omits FUSE at Sierra scale — FUSE is not installed there, which is
// the point of LDPLFS).
func (p *Platform) BTSeries(class BTClass, coreCounts []int) map[Method][]float64 {
	out := make(map[Method][]float64)
	for _, m := range []Method{MPIIO, ROMIO, LDPLFS} {
		series := make([]float64, len(coreCounts))
		for i, c := range coreCounts {
			series[i] = p.BTBandwidth(BTJob{Class: class, Cores: c, Method: m})
		}
		out[m] = series
	}
	return out
}

// Core counts of Fig. 4's x axes.
var (
	Fig4aCores = []int{4, 16, 64, 256, 1024}
	Fig4bCores = []int{64, 256, 1024, 4096}
)

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
