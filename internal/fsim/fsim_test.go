package fsim

import (
	"math"
	"testing"
)

// within reports |a-b| <= frac*max(a,b).
func within(a, b, frac float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= frac*m
}

func plateau(series []float64) float64 { return series[len(series)-1] }

// --- Fig. 3 shape assertions ---------------------------------------------

func TestFig3WriteShape(t *testing.T) {
	p := Minerva()
	for _, ppn := range []int{1, 2, 4} {
		s := p.Fig3Series(ppn, false, Fig3Nodes)

		// LDPLFS performs "almost as well as PLFS through ROMIO".
		for i := range Fig3Nodes {
			if !within(s[LDPLFS][i], s[ROMIO][i], 0.10) {
				t.Errorf("ppn=%d nodes=%d: LDPLFS %.1f vs ROMIO %.1f differ >10%%",
					ppn, Fig3Nodes[i], s[LDPLFS][i], s[ROMIO][i])
			}
		}
		// PLFS is ~2x plain MPI-IO at scale (Section IV: "approximately 2x").
		if r := plateau(s[ROMIO]) / plateau(s[MPIIO]); r < 1.6 || r > 2.6 {
			t.Errorf("ppn=%d: ROMIO/MPI-IO plateau ratio = %.2f, want ~2", ppn, r)
		}
		// FUSE is the slowest method and ~20%% below plain MPI-IO on writes.
		for i := range Fig3Nodes {
			if s[FUSE][i] > s[ROMIO][i] || s[FUSE][i] > s[LDPLFS][i] {
				t.Errorf("ppn=%d nodes=%d: FUSE %.1f beats a PLFS library path",
					ppn, Fig3Nodes[i], s[FUSE][i])
			}
		}
		if r := plateau(s[FUSE]) / plateau(s[MPIIO]); r < 0.6 || r > 0.95 {
			t.Errorf("ppn=%d: FUSE/MPI-IO plateau ratio = %.2f, want ~0.8", ppn, r)
		}
		// LDPLFS may slightly beat ROMIO (reduced per-call overhead).
		if plateau(s[LDPLFS]) < plateau(s[ROMIO])*0.99 {
			t.Errorf("ppn=%d: LDPLFS plateau %.1f below ROMIO %.1f",
				ppn, plateau(s[LDPLFS]), plateau(s[ROMIO]))
		}
	}
}

func TestFig3ReadShape(t *testing.T) {
	p := Minerva()
	for _, ppn := range []int{1, 2, 4} {
		s := p.Fig3Series(ppn, true, Fig3Nodes)
		if plateau(s[ROMIO]) < plateau(s[MPIIO]) {
			t.Errorf("ppn=%d: PLFS read plateau %.1f below MPI-IO %.1f",
				ppn, plateau(s[ROMIO]), plateau(s[MPIIO]))
		}
		if plateau(s[FUSE]) > plateau(s[MPIIO]) {
			t.Errorf("ppn=%d: FUSE read %.1f above MPI-IO %.1f",
				ppn, plateau(s[FUSE]), plateau(s[MPIIO]))
		}
		for i := range Fig3Nodes {
			if !within(s[LDPLFS][i], s[ROMIO][i], 0.10) {
				t.Errorf("ppn=%d nodes=%d: read LDPLFS %.1f vs ROMIO %.1f",
					ppn, Fig3Nodes[i], s[LDPLFS][i], s[ROMIO][i])
			}
		}
	}
}

func TestFig3NodeWiseConsistencyAcrossPPN(t *testing.T) {
	// "The node-wise performance should remain largely consistent, while
	// the number of processors per node is varied."
	p := Minerva()
	for _, m := range Methods {
		base := p.MPIIOTest(DefaultMPIIOTest(16, 1, m, false))
		for _, ppn := range []int{2, 4} {
			got := p.MPIIOTest(DefaultMPIIOTest(16, ppn, m, false))
			if !within(got, base, 0.15) {
				t.Errorf("%s: 16 nodes ppn=%d bw %.1f deviates >15%% from ppn=1 %.1f",
					m, ppn, got, base)
			}
		}
	}
}

func TestFig3BandwidthMagnitudes(t *testing.T) {
	// Loose absolute sanity against the paper's axes (0-250 MB/s, PLFS
	// plateau in the 200s, MPI-IO near 100-130).
	p := Minerva()
	s := p.Fig3Series(1, false, Fig3Nodes)
	if v := plateau(s[ROMIO]); v < 180 || v > 280 {
		t.Errorf("ROMIO plateau %.1f MB/s outside the paper's ~230 range", v)
	}
	if v := plateau(s[MPIIO]); v < 90 || v > 160 {
		t.Errorf("MPI-IO plateau %.1f MB/s outside the paper's ~110 range", v)
	}
}

// --- Fig. 4 shape assertions ---------------------------------------------

func TestFig4aClassCShape(t *testing.T) {
	p := Sierra()
	s := p.BTSeries(BTClassC, Fig4aCores)
	// PLFS rises monotonically with cores.
	for i := 1; i < len(Fig4aCores); i++ {
		if s[ROMIO][i] < s[ROMIO][i-1] {
			t.Errorf("class C ROMIO not monotonic at %d cores: %.0f < %.0f",
				Fig4aCores[i], s[ROMIO][i], s[ROMIO][i-1])
		}
	}
	// At 1,024 cores PLFS reaches several GB/s while MPI-IO stays in the
	// hundreds — the up-to-20x claim.
	last := len(Fig4aCores) - 1
	if r := s[ROMIO][last] / s[MPIIO][last]; r < 4 {
		t.Errorf("class C at 1024 cores: ROMIO/MPI-IO = %.1fx, want >4x", r)
	}
	if s[ROMIO][last] < 2000 || s[ROMIO][last] > 6000 {
		t.Errorf("class C ROMIO at 1024 cores = %.0f MB/s, paper shows ~3900", s[ROMIO][last])
	}
	// LDPLFS tracks ROMIO with slight divergence.
	for i := range Fig4aCores {
		if !within(s[LDPLFS][i], s[ROMIO][i], 0.10) {
			t.Errorf("class C %d cores: LDPLFS %.0f vs ROMIO %.0f",
				Fig4aCores[i], s[LDPLFS][i], s[ROMIO][i])
		}
	}
}

func TestFig4bClassDCacheDip(t *testing.T) {
	p := Sierra()
	s := p.BTSeries(BTClassD, Fig4bCores)
	// Indices: 0=64, 1=256, 2=1024, 3=4096.
	// The ~7 MB per-process writes at 1,024 cores defeat the cache: PLFS
	// drops to vanilla MPI-IO's level.
	if !within(s[ROMIO][2], s[MPIIO][2], 0.25) {
		t.Errorf("class D at 1024: ROMIO %.0f should be ~MPI-IO %.0f", s[ROMIO][2], s[MPIIO][2])
	}
	// At 4,096 cores writes shrink below the threshold and caching returns.
	if s[ROMIO][3] < 3*s[MPIIO][3] {
		t.Errorf("class D at 4096: ROMIO %.0f should far exceed MPI-IO %.0f", s[ROMIO][3], s[MPIIO][3])
	}
	// And the dip is a real dip: 1024 < 256.
	if s[ROMIO][2] >= s[ROMIO][1] {
		t.Errorf("class D ROMIO has no dip: %.0f at 1024 vs %.0f at 256", s[ROMIO][2], s[ROMIO][1])
	}
	// PLFS still wins at 64 and 256 cores.
	for i := 0; i < 2; i++ {
		if s[ROMIO][i] <= s[MPIIO][i] {
			t.Errorf("class D at %d cores: ROMIO %.0f <= MPI-IO %.0f",
				Fig4bCores[i], s[ROMIO][i], s[MPIIO][i])
		}
	}
}

func TestBTWriteSizeMechanism(t *testing.T) {
	// The paper's Section IV arithmetic: class C at 1,024 cores writes
	// ~300 KB per process per step; class D ~7 MB at 1,024 and <2 MB at
	// 4,096. Verify the model runs on the same numbers.
	perProc := func(c BTClass, cores int) int64 {
		return c.TotalBytes / int64(c.Steps) / int64(cores)
	}
	if v := perProc(BTClassC, 1024); v < 300<<10 || v > 350<<10 {
		t.Errorf("class C per-proc write at 1024 = %d, want ~300 KB", v)
	}
	if v := perProc(BTClassD, 1024); v < 6<<20 || v > 8<<20 {
		t.Errorf("class D per-proc write at 1024 = %d, want ~7 MB", v)
	}
	if v := perProc(BTClassD, 4096); v >= 2<<20 {
		t.Errorf("class D per-proc write at 4096 = %d, want <2 MB", v)
	}
	p := Sierra()
	if perProc(BTClassD, 1024) <= p.CacheThreshold {
		t.Error("class D at 1024 should exceed the cache threshold")
	}
	if perProc(BTClassD, 4096) > p.CacheThreshold {
		t.Error("class D at 4096 should fit the cache threshold")
	}
}

// --- Fig. 5 shape assertions ---------------------------------------------

func TestFig5FlashShape(t *testing.T) {
	p := Sierra()
	s := p.FlashSeries(Fig5Cores)

	// MPI-IO rises gently to ~550 MB/s.
	for i := 1; i < len(Fig5Cores); i++ {
		if s[MPIIO][i] < s[MPIIO][i-1] {
			t.Errorf("MPI-IO not monotonic at %d cores", Fig5Cores[i])
		}
	}
	if v := s[MPIIO][len(Fig5Cores)-1]; v < 450 || v > 700 {
		t.Errorf("MPI-IO plateau = %.0f, paper shows ~550", v)
	}

	// PLFS peaks at 192 cores then collapses.
	peakIdx := 0
	for i, v := range s[ROMIO] {
		if v > s[ROMIO][peakIdx] {
			peakIdx = i
		}
	}
	if Fig5Cores[peakIdx] != 192 {
		t.Errorf("PLFS peak at %d cores, paper peaks at 192", Fig5Cores[peakIdx])
	}
	if v := s[ROMIO][peakIdx]; v < 1200 || v > 2200 {
		t.Errorf("PLFS peak = %.0f MB/s, paper shows ~1650", v)
	}
	// At 3,072 cores PLFS has fallen far below MPI-IO — PLFS "can actually
	// harm performance at scale".
	last := len(Fig5Cores) - 1
	if s[ROMIO][last] >= s[MPIIO][last] {
		t.Errorf("at 3072 cores PLFS %.0f should be below MPI-IO %.0f",
			s[ROMIO][last], s[MPIIO][last])
	}
	if v := s[ROMIO][last]; v < 100 || v > 350 {
		t.Errorf("PLFS at 3072 = %.0f MB/s, paper shows ~210", v)
	}
}

func TestFig5MDSLoadMatters(t *testing.T) {
	// Removing the MDS bottleneck (distributed metadata, "on a file
	// system like GPFS ... these performance decreases may not
	// materialise") must soften the collapse.
	withMDS := Sierra()
	noMDS := Sierra()
	noMDS.MDS = nil
	a := withMDS.FlashBandwidth(DefaultFlash(3072, ROMIO))
	b := noMDS.FlashBandwidth(DefaultFlash(3072, ROMIO))
	if b <= a {
		t.Errorf("removing the MDS should raise bandwidth: with=%.0f without=%.0f", a, b)
	}
}

func TestMDSModelDegradesWithClients(t *testing.T) {
	m := MDSModel{BaseService: 1e-3, LoadK: 48}
	if m.Service(0) != 1e-3 {
		t.Errorf("uncontended service = %v", m.Service(0))
	}
	if m.Service(48) != 2e-3 {
		t.Errorf("service at LoadK = %v, want doubled", m.Service(48))
	}
	if m.Service(3072) <= m.Service(192) {
		t.Error("service must degrade with client count")
	}
}

// --- Table II assertions ---------------------------------------------------

func TestTableIIMatchesPaper(t *testing.T) {
	// Paper's measured seconds for a 4 GB file.
	paper := map[string][2]float64{ // command -> {plfs, unix}
		"cp (read)":  {100.713, 114.279},
		"cp (write)": {107.587, 0},
		"cat":        {25.186, 25.433},
		"grep":       {130.662, 128.863},
		"md5sum":     {26.970, 26.781},
	}
	rows := Minerva().TableII()
	if len(rows) != len(paper) {
		t.Fatalf("TableII has %d rows, want %d", len(rows), len(paper))
	}
	for _, r := range rows {
		want, ok := paper[r.Command]
		if !ok {
			t.Fatalf("unexpected row %q", r.Command)
		}
		if !within(r.PlfsSecs, want[0], 0.10) {
			t.Errorf("%s plfs = %.1fs, paper %.1fs (>10%% off)", r.Command, r.PlfsSecs, want[0])
		}
		if want[1] > 0 && !within(r.UnixSecs, want[1], 0.10) {
			t.Errorf("%s unix = %.1fs, paper %.1fs (>10%% off)", r.Command, r.UnixSecs, want[1])
		}
	}
}

func TestTableIIPlfsMarginallyFaster(t *testing.T) {
	// "PLFS is marginally faster when copying to or from a PLFS file."
	rows := Minerva().TableII()
	byCmd := map[string]TableIIRow{}
	for _, r := range rows {
		byCmd[r.Command] = r
	}
	cpPlain := byCmd["cp (read)"].UnixSecs
	if byCmd["cp (read)"].PlfsSecs >= cpPlain {
		t.Error("cp from PLFS should beat plain cp")
	}
	if byCmd["cp (write)"].PlfsSecs >= cpPlain {
		t.Error("cp into PLFS should beat plain cp")
	}
	// Serial tools are "largely the same" (within ~5%).
	for _, cmd := range []string{"cat", "grep", "md5sum"} {
		r := byCmd[cmd]
		if !within(r.PlfsSecs, r.UnixSecs, 0.06) {
			t.Errorf("%s: plfs %.1f vs unix %.1f differ >6%%", cmd, r.PlfsSecs, r.UnixSecs)
		}
	}
}

// --- misc ------------------------------------------------------------------

func TestMethodString(t *testing.T) {
	want := map[Method]string{MPIIO: "MPI-IO", FUSE: "FUSE", ROMIO: "ROMIO", LDPLFS: "LDPLFS"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if Method(99).String() == "" {
		t.Error("unknown method has empty name")
	}
	if MPIIO.UsesPLFS() || !LDPLFS.UsesPLFS() || !FUSE.UsesPLFS() || !ROMIO.UsesPLFS() {
		t.Error("UsesPLFS misclassifies")
	}
}

func TestPlatformInventoriesMatchTableI(t *testing.T) {
	min, sie := Minerva(), Sierra()
	if min.IOServers != 2 || min.DataDisks != 96 || min.TotalNodes != 258 || min.CoresPerNode != 12 {
		t.Errorf("Minerva inventory drifted: %+v", min)
	}
	if sie.IOServers != 24 || sie.DataDisks != 3600 || sie.TotalNodes != 1849 {
		t.Errorf("Sierra inventory drifted")
	}
	if min.MDS != nil {
		t.Error("GPFS has distributed metadata; Minerva must not have an MDS model")
	}
	if sie.MDS == nil {
		t.Error("Sierra's Lustre needs a dedicated MDS model")
	}
}

func TestMPIIOTestDeterministic(t *testing.T) {
	p := Minerva()
	a := p.MPIIOTest(DefaultMPIIOTest(8, 2, LDPLFS, false))
	b := p.MPIIOTest(DefaultMPIIOTest(8, 2, LDPLFS, false))
	if a != b {
		t.Fatalf("model is nondeterministic: %v vs %v", a, b)
	}
}
