package fsim

import "testing"

func TestVariantsIsolateTheCollapse(t *testing.T) {
	p := Sierra()
	const small, large = 192, 3072

	full := p.FlashVariant(large, FullPLFS)
	part := p.FlashVariant(large, PartitionOnly)
	logOnly := p.FlashVariant(large, LogOnly)
	mpiio := p.FlashBandwidth(DefaultFlash(large, MPIIO))

	// The collapse is driven by per-process files: partition-only still
	// collapses (half the files, still O(cores)), log-only does not.
	if part < full {
		t.Errorf("partition-only (%.0f) should not be below full PLFS (%.0f) at scale", part, full)
	}
	if logOnly < mpiio*0.8 {
		t.Errorf("log-only (%.0f) should hold near the shared plateau (%.0f)", logOnly, mpiio)
	}
	if logOnly < full {
		t.Errorf("log-only (%.0f) must beat full PLFS (%.0f) at 3072 cores — the paper's future-work hypothesis", logOnly, full)
	}

	// At the sweet spot, full PLFS wins: the partitioned streams are the
	// whole point.
	fullSmall := p.FlashVariant(small, FullPLFS)
	logSmall := p.FlashVariant(small, LogOnly)
	if fullSmall <= logSmall {
		t.Errorf("at %d cores full PLFS (%.0f) should beat log-only (%.0f)", small, fullSmall, logSmall)
	}
}

func TestVariantSeriesComplete(t *testing.T) {
	p := Sierra()
	out := p.VariantSeries(Fig5Cores)
	for _, key := range []string{"PLFS (partition+log)", "partition-only", "log-only", "MPI-IO"} {
		series, ok := out[key]
		if !ok {
			t.Fatalf("missing series %q", key)
		}
		if len(series) != len(Fig5Cores) {
			t.Fatalf("series %q has %d points", key, len(series))
		}
		for i, v := range series {
			if v <= 0 {
				t.Fatalf("series %q point %d nonpositive: %v", key, i, v)
			}
		}
	}
}

func TestAdviseCheckpointFlipsWithScale(t *testing.T) {
	p := Sierra()
	sweet := p.AdviseCheckpoint(192)
	if sweet.Method != LDPLFS {
		t.Errorf("at 192 cores advice = %v (%s), want LDPLFS", sweet.Method, sweet.Reason)
	}
	huge := p.AdviseCheckpoint(3072)
	if huge.Method == LDPLFS && huge.Variant == FullPLFS {
		t.Errorf("at 3072 cores full PLFS advised despite the collapse (%s)", huge.Reason)
	}
	if len(huge.Predicted) < 4 {
		t.Errorf("advice lacks predictions: %v", huge.Predicted)
	}
}

func TestAdviseSmallWrites(t *testing.T) {
	p := Sierra()
	// Class C at 1,024 cores: 300 KB writes, cache heaven -> LDPLFS.
	c := p.AdviseSmallWrites(BTClassC, 1024)
	if c.Method != LDPLFS {
		t.Errorf("class C/1024 advice = %v (%s)", c.Method, c.Reason)
	}
	// Class D at 1,024 cores: the dip — PLFS buys nothing; either answer
	// must at least predict near-parity.
	d := p.AdviseSmallWrites(BTClassD, 1024)
	ratio := d.Predicted["LDPLFS"] / d.Predicted["MPI-IO"]
	if ratio > 1.3 || ratio < 0.7 {
		t.Errorf("class D/1024 should predict near-parity, got ratio %.2f", ratio)
	}
}

func TestVariantString(t *testing.T) {
	if FullPLFS.String() == "" || PartitionOnly.String() == "" || LogOnly.String() == "" {
		t.Error("variant names empty")
	}
	if Variant(99).String() != "?" {
		t.Error("unknown variant not flagged")
	}
}
