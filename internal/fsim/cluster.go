// Package fsim models the paper's two benchmarking platforms — Minerva
// (GPFS) and Sierra (Lustre) — as queueing systems, and costs the four
// access methods (plain MPI-IO, PLFS via FUSE, PLFS via ROMIO, LDPLFS) on
// the paper's workloads. Absolute calibration constants are fitted to the
// paper's own reported numbers; the point of the model is that the
// *shapes* (who wins, by what factor, where the crossovers sit) emerge
// from the mechanisms the paper identifies:
//
//   - GPFS serialises shared-file writes through distributed token locks,
//     so plain MPI-IO plateaus at roughly one server's throughput while
//     PLFS's file-per-writer containers use the whole backend (Fig. 3's
//     ~2x gap).
//   - FUSE segments every transfer into 128 KiB kernel round trips, so
//     the backend sees small ops and per-op overhead halves its
//     bandwidth (Fig. 3's FUSE < MPI-IO < ROMIO ~ LDPLFS ordering).
//   - Client write-back caches absorb small per-process writes
//     instantly, which is why BT's 300 KB writes fly with PLFS and stall
//     without it (Fig. 4a), dip when the write size outgrows the cache
//     (Fig. 4b at 1,024 cores) and recover when strong scaling shrinks
//     it again (4,096 cores).
//   - Lustre funnels every file create through one MDS whose service
//     degrades under concurrent create storms, and per-process files
//     multiply both creates and active object streams — the Fig. 5
//     rise-then-collapse.
package fsim

import "fmt"

// Method is one of the four access methods compared throughout the paper.
type Method int

// The four access methods of the evaluation.
const (
	MPIIO  Method = iota // plain MPI-IO, no PLFS
	FUSE                 // PLFS through the FUSE kernel mount
	ROMIO                // PLFS through the patched ROMIO ad_plfs driver
	LDPLFS               // PLFS through the LD_PRELOAD shim (this paper)
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MPIIO:
		return "MPI-IO"
	case FUSE:
		return "FUSE"
	case ROMIO:
		return "ROMIO"
	case LDPLFS:
		return "LDPLFS"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all four in the paper's legend order.
var Methods = []Method{MPIIO, FUSE, ROMIO, LDPLFS}

// UsesPLFS reports whether the method stores data in PLFS containers.
func (m Method) UsesPLFS() bool { return m != MPIIO }

// MDSModel is the Lustre metadata server: a single service point whose
// per-op service time degrades under concurrent client storms (directory
// lock ping-pong during container population).
type MDSModel struct {
	BaseService float64 // seconds per metadata op, uncontended
	LoadK       float64 // clients at which service time doubles
}

// Service returns the per-op service time with `clients` concurrent
// requesters.
func (m *MDSModel) Service(clients int) float64 {
	return m.BaseService * (1 + float64(clients)/m.LoadK)
}

// Platform describes one of Table I's machines: the published inventory
// plus the calibrated model constants derived from it.
type Platform struct {
	Name string

	// ---- Table I inventory (documentation; printed by `benchfigs -table 1`).
	Processor     string
	CPUSpeedGHz   float64
	CoresPerNode  int
	TotalNodes    int
	Interconnect  string
	FileSystem    string
	IOServers     int
	TheoreticalBW string
	DataDisks     int
	DataDiskType  string
	DataDiskRPM   int
	DataRAID      string
	MetaDisks     int
	MetaDiskRPM   int
	MetaRAID      string

	// ---- Calibrated model constants (all rates in bytes/second).

	// ServerBW is one I/O server's effective streaming rate.
	ServerBW float64
	// ServerPerOp is the fixed cost a server pays per I/O request; it is
	// what makes FUSE's 128 KiB requests expensive.
	ServerPerOp float64
	// SharedFileWriteBW is the token-serialised aggregate rate at which a
	// single shared file can be written (GPFS write tokens force writers
	// to take turns; the rate folds in the revoke/grant round trips).
	SharedFileWriteBW float64
	// SharedFileReadBW would bound shared reads the same way; reads do
	// not serialise, so instead SharedReadSeekMult scales the per-op
	// server cost for the interleaved read layout.
	SharedFileReadBW   float64
	SharedReadSeekMult float64
	// NodeWriteBW / NodeReadBW cap one compute node's streaming I/O.
	NodeWriteBW float64
	NodeReadBW  float64
	// NICGatherBW is the collective-buffering gather rate to a node
	// aggregator; GatherSync the per-member sync cost.
	NICGatherBW float64
	GatherSync  float64
	// FUSECrossing is the user->kernel->daemon round-trip cost added per
	// 128 KiB FUSE segment.
	FUSECrossing float64
	// DriverOverhead[m] is the per-call software cost of each method's
	// client path (ROMIO ADIO layering vs LDPLFS's two shadow lseeks).
	DriverOverhead map[Method]float64

	// --- large-scale (Sierra) constants used by the BT and FLASH models.

	// NodeDrainBW is the sustained background page-cache drain per node.
	NodeDrainBW float64
	// CacheThreshold is the largest per-process write the client cache
	// absorbs "almost instantly" (the paper's Fig. 4 mechanism).
	CacheThreshold int64
	// OSSAggBW is the aggregate effective backend bandwidth.
	OSSAggBW float64
	// StreamK is the active-file-stream count at which backend efficiency
	// halves (per-object management on OSS/MDS).
	StreamK float64
	// CachedCapFrac caps cache-drain aggregate bandwidth as a fraction of
	// OSSAggBW.
	CachedCapFrac float64
	// SharedPlateau / SharedK shape the shared-file collective bandwidth
	// curve plateau*n/(n+k) used at Sierra scale.
	SharedPlateau float64
	SharedK       float64
	// MDS is the metadata server model; nil means distributed metadata
	// (GPFS), costed into ServerPerOp instead.
	MDS *MDSModel

	// --- serial (login node) rates for the Table II model.

	SerialRead       float64 // plain file read
	SerialWrite      float64 // plain file write
	PlfsReadSmallBuf float64 // container read with <=512 KiB requests
	PlfsReadLargeBuf float64 // container read with >=1 MiB requests (stream fan-in)
	PlfsSerialWrite  float64 // container write (partitioned streams)
}

const (
	kb = 1024.0
	mb = 1024.0 * kb
	gb = 1024.0 * mb
)

// Minerva returns the model of the University of Warwick's Minerva cluster
// (Table I, left column).
func Minerva() *Platform {
	return &Platform{
		Name:          "Minerva",
		Processor:     "Intel Xeon 5650",
		CPUSpeedGHz:   2.66,
		CoresPerNode:  12,
		TotalNodes:    258,
		Interconnect:  "QLogic TrueScale 4X QDR InfiniBand",
		FileSystem:    "GPFS",
		IOServers:     2,
		TheoreticalBW: "~4 GB/s",
		DataDisks:     96,
		DataDiskType:  "2 TB Nearline SAS",
		DataDiskRPM:   7200,
		DataRAID:      "6 (8+2)",
		MetaDisks:     24,
		MetaDiskRPM:   15000,
		MetaRAID:      "10",

		ServerBW:           120 * mb,
		ServerPerOp:        1.55e-3,
		SharedFileWriteBW:  118 * mb,
		SharedFileReadBW:   190 * mb,
		SharedReadSeekMult: 4,
		NodeWriteBW:        65 * mb,
		NodeReadBW:         70 * mb,
		NICGatherBW:        2 * gb,
		GatherSync:         1e-3,
		FUSECrossing:       0.15e-3,
		DriverOverhead: map[Method]float64{
			MPIIO:  0.10e-3,
			FUSE:   0.10e-3,
			ROMIO:  0.40e-3,
			LDPLFS: 0.15e-3,
		},

		SerialRead:       161.0 * 1e6, // the paper's Table II uses decimal MB
		SerialWrite:      46.1 * 1e6,
		PlfsReadSmallBuf: 159.8 * 1e6,
		PlfsReadLargeBuf: 345.0 * 1e6,
		PlfsSerialWrite:  49.9 * 1e6,
	}
}

// Sierra returns the model of LLNL's Sierra cluster and its lscratchc
// Lustre file system (Table I, right column).
func Sierra() *Platform {
	return &Platform{
		Name:          "Sierra",
		Processor:     "Intel Xeon 5660",
		CPUSpeedGHz:   2.8,
		CoresPerNode:  12,
		TotalNodes:    1849,
		Interconnect:  "QDR InfiniBand",
		FileSystem:    "Lustre (lscratchc)",
		IOServers:     24,
		TheoreticalBW: "~30 GB/s",
		DataDisks:     3600,
		DataDiskType:  "450 GB SAS",
		DataDiskRPM:   10000,
		DataRAID:      "6 (8+2)",
		MetaDisks:     32,
		MetaDiskRPM:   15000,
		MetaRAID:      "10 (+journal RAID-1, +2 hot spares)",

		ServerBW:           1.0 * gb,
		ServerPerOp:        0.8e-3,
		SharedFileWriteBW:  520 * mb,
		SharedFileReadBW:   900 * mb,
		SharedReadSeekMult: 4,
		NodeWriteBW:        110 * mb,
		NodeReadBW:         120 * mb,
		NICGatherBW:        2.5 * gb,
		GatherSync:         1e-3,
		FUSECrossing:       0.15e-3,
		DriverOverhead: map[Method]float64{
			MPIIO:  0.10e-3,
			FUSE:   0.10e-3,
			ROMIO:  0.40e-3,
			LDPLFS: 0.15e-3,
		},

		NodeDrainBW:    46 * mb,
		CacheThreshold: 4 << 20,
		OSSAggBW:       24 * gb,
		StreamK:        48,
		CachedCapFrac:  0.15,
		SharedPlateau:  560 * mb,
		SharedK:        1.75,
		MDS:            &MDSModel{BaseService: 0.3e-3, LoadK: 48},

		SerialRead:       161.0 * 1e6,
		SerialWrite:      46.1 * 1e6,
		PlfsReadSmallBuf: 159.8 * 1e6,
		PlfsReadLargeBuf: 345.0 * 1e6,
		PlfsSerialWrite:  49.9 * 1e6,
	}
}
