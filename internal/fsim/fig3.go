package fsim

import (
	"ldplfs/internal/sim"
)

// MPIIOTestJob describes one point of the Fig. 3 grid: the LANL MPI-IO
// Test writing (or reading back) BytesPerProc per process in BlockSize
// collective blocking calls, with collective buffering's one aggregator
// per node.
type MPIIOTestJob struct {
	Nodes        int
	PPN          int
	Method       Method
	Read         bool
	BytesPerProc int64
	BlockSize    int64
	// FUSESegment overrides the FUSE max transfer unit (default 128 KiB)
	// for the ablation study of the kernel-crossing granularity.
	FUSESegment int64
}

// DefaultMPIIOTest returns the paper's configuration: 1 GiB per process in
// 8 MiB blocks.
func DefaultMPIIOTest(nodes, ppn int, m Method, read bool) MPIIOTestJob {
	return MPIIOTestJob{
		Nodes:        nodes,
		PPN:          ppn,
		Method:       m,
		Read:         read,
		BytesPerProc: 1 << 30,
		BlockSize:    8 << 20,
	}
}

// fuseSegment is the FUSE max transfer unit (matches internal/fuse).
const fuseSegment = 128 << 10

// MPIIOTest replays the job through the platform's resources and returns
// the achieved bandwidth in MB/s (decimal, as the paper's axes).
//
// The replay models what each access method actually does per collective
// call:
//
//	every method   : on-node gather of ppn blocks to the aggregator
//	MPI-IO         : aggregator acquires the shared-file write token, then
//	                 streams its domain across the (striped) servers
//	ROMIO / LDPLFS : aggregator appends its domain to its own dropping —
//	                 no token — plus a per-call client software overhead
//	FUSE           : as ROMIO, but the aggregator's write is chopped into
//	                 128 KiB kernel round trips, each a separate server op
func (p *Platform) MPIIOTest(job MPIIOTestJob) float64 {
	ranks := job.Nodes * job.PPN
	steps := int(job.BytesPerProc / job.BlockSize)
	domainBytes := int64(job.PPN) * job.BlockSize // per aggregator per call

	servers := sim.NewPool("server", p.IOServers)
	lock := &sim.Resource{Name: "shared-file-lock"}

	nodeBW := p.NodeWriteBW
	sharedBW := p.SharedFileWriteBW
	readPerOpMult := 1.0
	if job.Read {
		nodeBW = p.NodeReadBW
		sharedBW = p.SharedFileReadBW
		readPerOpMult = p.SharedReadSeekMult
	}

	// serverTransfer issues one storage op of n bytes striped across all
	// servers in parallel and returns the completion time.
	serverTransfer := func(start float64, n int64) float64 {
		per := float64(n) / float64(p.IOServers)
		end := start
		for _, srv := range servers.Res {
			if e := srv.Acquire(start, per/p.ServerBW+p.ServerPerOp); e > end {
				end = e
			}
		}
		return end
	}

	// smallTransfer issues one sub-striping-unit op on a single server.
	smallTransfer := func(start float64, n int64, key int) float64 {
		srv := servers.Pick(key)
		return srv.Acquire(start, float64(n)/p.ServerBW+p.ServerPerOp)
	}

	segSize := int64(fuseSegment)
	if job.FUSESegment > 0 {
		segSize = job.FUSESegment
	}

	gatherDelay := float64(job.PPN-1)*float64(job.BlockSize)/p.NICGatherBW +
		float64(job.PPN)*p.GatherSync
	driverCost := p.DriverOverhead[job.Method]

	makespan := sim.Phases(steps, func(step int, startAt float64) []*sim.Actor {
		actors := make([]*sim.Actor, job.Nodes)
		for a := 0; a < job.Nodes; a++ {
			agg := a
			actor := (&sim.Actor{Name: "agg", StartAt: startAt}).
				Delay(gatherDelay + driverCost)
			switch job.Method {
			case MPIIO:
				if job.Read {
					// Shared-file reads do not serialise through write
					// tokens, but the interleaved on-disk layout costs
					// extra seeks per block at the servers.
					actor.Then(func(s float64) float64 {
						per := float64(domainBytes) / float64(p.IOServers)
						end := s
						for _, srv := range servers.Res {
							svc := per/p.ServerBW + p.ServerPerOp*readPerOpMult
							if e := srv.Acquire(s, svc); e > end {
								end = e
							}
						}
						if nicEnd := s + float64(domainBytes)/nodeBW; nicEnd > end {
							end = nicEnd
						}
						return end
					})
					break
				}
				actor.Then(func(s float64) float64 {
					// Every shared-file write holds the file's write token:
					// aggregate progress is bounded by the token-serialised
					// rate regardless of how many aggregators write.
					end := lock.Acquire(s, float64(domainBytes)/sharedBW)
					if nicEnd := s + float64(domainBytes)/nodeBW; nicEnd > end {
						end = nicEnd
					}
					// Keep server utilisation honest for reporting.
					for _, srv := range servers.Res {
						srv.Acquire(s, float64(domainBytes)/float64(p.IOServers)/p.ServerBW)
					}
					return end
				})
			case ROMIO, LDPLFS:
				actor.Then(func(s float64) float64 {
					end := serverTransfer(s, domainBytes)
					// The aggregator's NIC bounds how fast it can feed data.
					if nicEnd := s + float64(domainBytes)/nodeBW; nicEnd > end {
						end = nicEnd
					}
					return end
				})
			case FUSE:
				// The per-node FUSE daemon is single-threaded: each
				// 128 KiB segment is a crossing plus one small server op.
				// Each segment is its own replay op so segments from
				// different nodes interleave at the servers, as they do
				// under a real kernel.
				nSegs := int((domainBytes + segSize - 1) / segSize)
				remaining := domainBytes
				for si := 0; si < nSegs; si++ {
					n := segSize
					if remaining < n {
						n = remaining
					}
					remaining -= n
					seg := si
					bytes := n
					actor.Then(func(s float64) float64 {
						return smallTransfer(s+p.FUSECrossing, bytes, agg+seg)
					})
				}
			}
			actors[agg] = actor
		}
		return actors
	})

	totalBytes := float64(ranks) * float64(job.BytesPerProc)
	return totalBytes / makespan / 1e6 // decimal MB/s, like the paper's axes
}

// Fig3Series computes one sub-figure (write or read at a fixed ppn) over
// the paper's node counts for all four methods. The result maps method ->
// bandwidth per node count.
func (p *Platform) Fig3Series(ppn int, read bool, nodeCounts []int) map[Method][]float64 {
	out := make(map[Method][]float64, len(Methods))
	for _, m := range Methods {
		series := make([]float64, len(nodeCounts))
		for i, n := range nodeCounts {
			series[i] = p.MPIIOTest(DefaultMPIIOTest(n, ppn, m, read))
		}
		out[m] = series
	}
	return out
}

// Fig3Nodes are the node counts of Fig. 3's x axes.
var Fig3Nodes = []int{1, 2, 4, 8, 16, 32, 64}
