package fsim

// SerialTool models one of Table II's UNIX tools: its I/O request size
// (which matters to PLFS, whose read fan-in rewards large requests) and
// its CPU processing rate (grep is compute-bound; cat is pure I/O).
type SerialTool struct {
	Name    string
	BufSize int64   // read/write request size the tool issues
	CPURate float64 // bytes/s of processing; 0 = unbounded
	Writes  bool    // tool writes its input back out (cp)
}

// The tools of Table II. Buffer sizes follow coreutils defaults (cp uses
// large buffers; cat/grep/md5sum stream in small chunks).
var (
	ToolCp     = SerialTool{Name: "cp", BufSize: 4 << 20, Writes: true}
	ToolCat    = SerialTool{Name: "cat", BufSize: 128 << 10}
	ToolGrep   = SerialTool{Name: "grep", BufSize: 128 << 10, CPURate: 39.3e6}
	ToolMd5sum = SerialTool{Name: "md5sum", BufSize: 128 << 10, CPURate: 3.06e9}
)

// plfsReadRate returns the container read rate for a given request size:
// large requests overlap several dropping streams and beat a flat file,
// small requests pay the index fan-in and roughly match it.
func (p *Platform) plfsReadRate(bufSize int64) float64 {
	if bufSize >= 1<<20 {
		return p.PlfsReadLargeBuf
	}
	return p.PlfsReadSmallBuf
}

// SerialToolTime models the seconds a tool takes over fileBytes on the
// login node. srcPlfs/dstPlfs say whether the input (and, for writing
// tools, the output) is a PLFS container accessed through LDPLFS or a
// plain UNIX file.
func (p *Platform) SerialToolTime(tool SerialTool, fileBytes int64, srcPlfs, dstPlfs bool) float64 {
	readRate := p.SerialRead
	if srcPlfs {
		readRate = p.plfsReadRate(tool.BufSize)
	}
	t := float64(fileBytes) / readRate
	if tool.CPURate > 0 {
		t += float64(fileBytes) / tool.CPURate
	}
	if tool.Writes {
		writeRate := p.SerialWrite
		if dstPlfs {
			writeRate = p.PlfsSerialWrite
		}
		t += float64(fileBytes) / writeRate
	}
	return t
}

// TableIIRow is one row of the paper's Table II.
type TableIIRow struct {
	Command  string
	PlfsSecs float64 // via a PLFS container through LDPLFS
	UnixSecs float64 // plain UNIX file (blank for cp write in the paper)
}

// TableII reproduces the paper's Table II: UNIX tools over a 4 GB file.
func (p *Platform) TableII() []TableIIRow {
	const size = 4_000_000_000 // the paper's "4 GB" container
	return []TableIIRow{
		{
			Command:  "cp (read)",
			PlfsSecs: p.SerialToolTime(ToolCp, size, true, false),
			UnixSecs: p.SerialToolTime(ToolCp, size, false, false),
		},
		{
			Command:  "cp (write)",
			PlfsSecs: p.SerialToolTime(ToolCp, size, false, true),
			UnixSecs: 0, // the paper reports a single plain-cp time
		},
		{
			Command:  "cat",
			PlfsSecs: p.SerialToolTime(ToolCat, size, true, false),
			UnixSecs: p.SerialToolTime(ToolCat, size, false, false),
		},
		{
			Command:  "grep",
			PlfsSecs: p.SerialToolTime(ToolGrep, size, true, false),
			UnixSecs: p.SerialToolTime(ToolGrep, size, false, false),
		},
		{
			Command:  "md5sum",
			PlfsSecs: p.SerialToolTime(ToolMd5sum, size, true, false),
			UnixSecs: p.SerialToolTime(ToolMd5sum, size, false, false),
		},
	}
}
