package fsim

// The paper's future work (§V-A) proposes investigating "the low-level
// performance effects of a log-based file system and file partitioning in
// isolation", and using the performance model to predict "where perhaps
// using just file partitioning or a log-based file system will provide
// greater performance". This file implements that study on the Sierra
// model.

// Variant selects which half of PLFS's design is active.
type Variant int

// PLFS design variants.
const (
	// FullPLFS combines file partitioning and the log structure — the
	// shipped design: per-process data+index droppings, sequential
	// appends.
	FullPLFS Variant = iota
	// PartitionOnly keeps one file per process but writes in place at
	// logical offsets: no index, half the creates and streams, but
	// interior writes pay seek costs.
	PartitionOnly
	// LogOnly keeps a single shared append log (plus one shared index):
	// constant metadata load regardless of scale, but every writer
	// contends for the log tail.
	LogOnly
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case FullPLFS:
		return "PLFS (partition+log)"
	case PartitionOnly:
		return "partition-only"
	case LogOnly:
		return "log-only"
	}
	return "?"
}

// Variants lists all three for sweeps.
var Variants = []Variant{FullPLFS, PartitionOnly, LogOnly}

// FlashVariant returns the modelled FLASH-IO bandwidth (MB/s) at the
// given scale for one design variant, isolating which half of PLFS
// causes the Fig. 5 collapse.
func (p *Platform) FlashVariant(cores int, v Variant) float64 {
	job := DefaultFlash(cores, LDPLFS)
	nodes := (cores + p.CoresPerNode - 1) / p.CoresPerNode
	totalBytes := float64(cores) * float64(job.BytesPerProc)

	var streams, createsPerFile float64
	seekPenalty := 1.0
	switch v {
	case FullPLFS:
		streams = float64(2 * cores) // data + index droppings
		createsPerFile = float64(2*cores + nodes + 4)
	case PartitionOnly:
		streams = float64(cores) // data files only
		createsPerFile = float64(cores + nodes + 4)
		// In-place interior writes cost extra seeks versus pure appends.
		seekPenalty = 0.85
	case LogOnly:
		streams = 2 // one shared log + one shared index
		createsPerFile = 4
		// Every writer serialises on the shared log tail: the effective
		// bandwidth is the shared-file plateau (append coordination is
		// the same token dance as shared-file writes), though cheaper
		// than strided shared writes because the log is sequential.
		shared := 1.35 * p.SharedPlateau * float64(nodes) / (float64(nodes) + p.SharedK)
		return shared / 1e6
	}

	nodeBound := float64(nodes) * p.NodeWriteBW
	backend := p.OSSAggBW / (1 + streams/p.StreamK)
	dataBW := minf(nodeBound, backend) * seekPenalty
	dataTime := totalBytes / dataBW

	metaTime := 0.0
	if p.MDS != nil {
		metaTime = float64(job.Files) * createsPerFile * p.MDS.Service(cores)
	}
	return totalBytes / (dataTime + metaTime) / 1e6
}

// VariantSeries sweeps FLASH-IO over the Fig. 5 core counts for every
// variant (plus plain MPI-IO as the baseline).
func (p *Platform) VariantSeries(coreCounts []int) map[string][]float64 {
	out := map[string][]float64{}
	for _, v := range Variants {
		series := make([]float64, len(coreCounts))
		for i, c := range coreCounts {
			series[i] = p.FlashVariant(c, v)
		}
		out[v.String()] = series
	}
	base := make([]float64, len(coreCounts))
	for i, c := range coreCounts {
		base[i] = p.FlashBandwidth(DefaultFlash(c, MPIIO))
	}
	out["MPI-IO"] = base
	return out
}

// Advice is the model's recommendation for a workload — the paper's
// proposed auto-optimisation aid.
type Advice struct {
	Method    Method
	Variant   Variant // meaningful when Method uses PLFS
	Predicted map[string]float64
	Reason    string
}

// AdviseCheckpoint recommends an access method for a FLASH-like
// weak-scaled checkpoint at the given core count.
func (p *Platform) AdviseCheckpoint(cores int) Advice {
	a := Advice{Predicted: map[string]float64{}}
	mpiioBW := p.FlashBandwidth(DefaultFlash(cores, MPIIO))
	a.Predicted["MPI-IO"] = mpiioBW
	best, bestBW := FullPLFS, 0.0
	for _, v := range Variants {
		bw := p.FlashVariant(cores, v)
		a.Predicted[v.String()] = bw
		if bw > bestBW {
			best, bestBW = v, bw
		}
	}
	if bestBW > mpiioBW {
		a.Method, a.Variant = LDPLFS, best
		a.Reason = "PLFS wins at this scale; preload LDPLFS (no rebuild needed)"
		if best != FullPLFS {
			a.Reason = "a reduced PLFS variant avoids the metadata/stream costs that cap the full design here"
		}
	} else {
		a.Method = MPIIO
		a.Reason = "per-process file costs exceed the partitioning benefit at this scale; leave PLFS off"
	}
	return a
}

// AdviseSmallWrites recommends a method for BT-like small strided
// checkpoint writes at the given scale.
func (p *Platform) AdviseSmallWrites(class BTClass, cores int) Advice {
	a := Advice{Predicted: map[string]float64{}}
	m := p.BTBandwidth(BTJob{Class: class, Cores: cores, Method: MPIIO})
	l := p.BTBandwidth(BTJob{Class: class, Cores: cores, Method: LDPLFS})
	a.Predicted["MPI-IO"] = m
	a.Predicted["LDPLFS"] = l
	if l > m {
		a.Method = LDPLFS
		perProc := class.TotalBytes / int64(class.Steps) / int64(cores)
		if perProc <= p.CacheThreshold {
			a.Reason = "per-process writes fit the client cache; PLFS clears them instantly"
		} else {
			a.Reason = "per-process streams beat shared-file lock serialisation"
		}
	} else {
		a.Method = MPIIO
		a.Reason = "write size defeats the cache and stream contention erodes the backend; PLFS does not pay"
	}
	return a
}
