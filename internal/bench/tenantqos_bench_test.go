package bench

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ldplfs/internal/core"
	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/service"
)

// Tenant-isolation benchmark: a plfsd gateway over service-limited
// striped backends, one latency-sensitive foreground tenant sharing the
// store with a hostile tenant that saturates the backends with large
// writes. The QoS stage's job is to keep the foreground's read latency
// bounded (strict-priority admission: priority 0 never queues behind
// the bulk writer for an inflight slot) WITHOUT giving up aggregate
// throughput — priority is work-conserving where byte caps are not.
const (
	tqBackends  = 3
	tqService   = 200 * time.Microsecond // per-op backend service time
	tqBlock     = 64 << 10               // hostile write block
	tqReadBlock = 4 << 10                // foreground read block
	tqReads     = 60                     // foreground reads measured
)

// tqGateway assembles the gateway: three FaultFS-backed stores striped
// under every tenant's PLFS instance, the foreground container
// pre-written while service time is off. Returns the gateway and the
// fault handles (service time still off — callers arm it around the
// measured phase).
func tqGateway(tb testing.TB, policed bool) (*service.Gateway, []*posix.FaultFS) {
	tb.Helper()
	faults := make([]*posix.FaultFS, tqBackends)
	backends := make([]posix.FS, tqBackends)
	for i := range faults {
		mem := posix.NewMemFS()
		if err := mem.Mkdir("/backend", 0o755); err != nil {
			tb.Fatal(err)
		}
		faults[i] = posix.NewFaultFS(mem)
		backends[i] = faults[i]
	}
	mounts, err := core.ParseMounts("/mnt/plfs=/backend")
	if err != nil {
		tb.Fatal(err)
	}
	pcfg := plfs.Config{Backends: backends}
	hostilePri, batchPri := 1, 1
	if !policed {
		// The baseline erases the policy: everyone is foreground, so
		// admission degrades to FIFO and the gateway is a plain fan-in.
		hostilePri, batchPri = 0, 0
	}
	g, err := service.NewGateway(service.Config{
		Backend: backends[0],
		Mounts:  mounts,
		Tenants: []service.TenantConfig{
			{Name: "gold", Priority: 0, Plfs: pcfg},
			{Name: "hostile", Priority: hostilePri, Plfs: pcfg},
			{Name: "batch", Priority: batchPri, Plfs: pcfg},
		},
		MaxInflight: 4, // small pool: admission arbitration is the story
	})
	if err != nil {
		tb.Fatal(err)
	}

	// Pre-write the foreground container (service time off).
	s, err := g.NewSession("gold")
	if err != nil {
		tb.Fatal(err)
	}
	defer s.End()
	fd, err := s.Open("/mnt/plfs/gold", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	seed := bytes.Repeat([]byte{0x5a}, tqReadBlock)
	for i := 0; i < tqReads; i++ {
		if _, err := s.Pwrite(fd, seed, int64(i*tqReadBlock)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Close(fd); err != nil {
		tb.Fatal(err)
	}
	return g, faults
}

// tqRun drives the contended phase: hostile + batch stream large writes
// while gold performs its reads. Returns gold's p99 read latency and
// the aggregate bytes moved per wall second.
func tqRun(tb testing.TB, g *service.Gateway, faults []*posix.FaultFS) (p99 time.Duration, aggBps float64) {
	tb.Helper()
	for _, f := range faults {
		f.SetServiceTime(posix.FaultAny, tqService)
	}
	defer func() {
		for _, f := range faults {
			f.SetServiceTime(posix.FaultAny, 0)
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hostileBytes int64
	var hostileMu sync.Mutex
	for _, name := range []string{"hostile", "batch"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := g.NewSession(name)
			if err != nil {
				tb.Error(err)
				return
			}
			defer s.End()
			fd, err := s.Open("/mnt/plfs/"+name, posix.O_CREAT|posix.O_WRONLY, 0o644)
			if err != nil {
				tb.Error(err)
				return
			}
			defer s.Close(fd)
			block := bytes.Repeat([]byte{0xff}, tqBlock)
			var off int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Pwrite(fd, block, off); err != nil {
					tb.Error(err)
					return
				}
				off += tqBlock
				hostileMu.Lock()
				hostileBytes += tqBlock
				hostileMu.Unlock()
			}
		}()
	}

	gold, err := g.NewSession("gold")
	if err != nil {
		tb.Fatal(err)
	}
	defer gold.End()
	fd, err := gold.Open("/mnt/plfs/gold", posix.O_RDONLY, 0)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, tqReadBlock)
	var goldBytes int64
	for i := 0; i < tqReads; i++ {
		n, err := gold.Pread(fd, buf, int64(i*tqReadBlock))
		if err != nil {
			tb.Fatal(err)
		}
		goldBytes += int64(n)
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if err := gold.Close(fd); err != nil {
		tb.Fatal(err)
	}

	hostileMu.Lock()
	total := hostileBytes + goldBytes
	hostileMu.Unlock()
	return tenantReadP99(tb, g, "gold"), float64(total) / elapsed.Seconds()
}

// tenantReadP99 digs the foreground tenant's read-latency p99 out of
// the gateway plane.
func tenantReadP99(tb testing.TB, g *service.Gateway, tenant string) time.Duration {
	tb.Helper()
	for _, l := range g.Plane().Snapshot().Layers {
		if l.Name != "tenant:"+tenant {
			continue
		}
		for _, op := range l.Ops {
			if op.Op == iostats.Read.String() {
				return time.Duration(op.Lat.Quantile(0.99))
			}
		}
	}
	tb.Fatalf("no read row for tenant %q", tenant)
	return 0
}

// TestTenantIsolation is the CI floor from the issue: under a hostile
// saturating tenant, the policed gateway keeps the foreground tenant's
// p99 read latency within target while aggregate throughput stays
// within ~10% of the un-policed path (generous slack for CI machines:
// the assertion allows 20% before failing).
func TestTenantIsolation(t *testing.T) {
	gBase, fBase := tqGateway(t, false)
	_, baseAgg := tqRun(t, gBase, fBase)

	gPol, fPol := tqGateway(t, true)
	p99, polAgg := tqRun(t, gPol, fPol)

	// Target: a read costs one service slot (~200µs) per touched
	// backend plus queueing behind AT MOST the inflight operations
	// strict priority cannot preempt. 50ms is ~250 service slots of
	// headroom — a saturated FIFO path without priority routinely blows
	// past this, a priority-admitted one never should.
	const p99Target = 50 * time.Millisecond
	if p99 > p99Target {
		t.Errorf("policed gold p99 read latency %v exceeds the %v target", p99, p99Target)
	}
	if polAgg < 0.8*baseAgg {
		t.Errorf("policed aggregate %.0f B/s fell more than 20%% below un-policed %.0f B/s", polAgg, baseAgg)
	}
	t.Logf("gold p99 %v (target %v); aggregate policed %.1f MB/s vs un-policed %.1f MB/s",
		p99, p99Target, polAgg/1e6, baseAgg/1e6)
}

// BenchmarkTenantQoS reports the same two numbers as benchmark metrics
// for the bench-smoke job: foreground p99 and aggregate bandwidth,
// policed vs un-policed.
func BenchmarkTenantQoS(b *testing.B) {
	for _, policed := range []bool{false, true} {
		name := "unpoliced"
		if policed {
			name = "policed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, faults := tqGateway(b, policed)
				p99, agg := tqRun(b, g, faults)
				b.ReportMetric(float64(p99.Microseconds()), "p99-us")
				b.ReportMetric(agg/1e6, "agg-MB/s")
			}
		})
	}
}
