//go:build !race

package bench

// raceEnabled reports whether the race detector is active. The alloc
// floor in TestWarmReadAllocs is meaningless under -race: detector
// instrumentation allocates on its own account.
const raceEnabled = false
