package bench

import (
	"fmt"
	"strings"

	"ldplfs/internal/fsim"
)

// Ablations renders the design-choice studies DESIGN.md calls out: each
// sweeps one mechanism the reproduction's conclusions rest on, showing
// the headline result is driven by that mechanism and not an accident of
// calibration.
func Ablations() string {
	var sb strings.Builder
	sb.WriteString("ABLATION STUDIES\n")
	sb.WriteString(ablateCacheThreshold())
	sb.WriteString(ablateMDSLoad())
	sb.WriteString(ablateFUSESegment())
	sb.WriteString(ablateVariants())
	return sb.String()
}

// ablateCacheThreshold moves the client write-back cache threshold and
// watches the Fig. 4b dip appear and disappear: the dip exists exactly
// when the threshold separates the 1,024- and 4,096-core write sizes.
func ablateCacheThreshold() string {
	var sb strings.Builder
	sb.WriteString("\n[A1] Client cache threshold vs the BT class D dip (LDPLFS MB/s)\n")
	fmt.Fprintf(&sb, "  %-12s", "threshold")
	for _, c := range fsim.Fig4bCores {
		fmt.Fprintf(&sb, " %8d", c)
	}
	sb.WriteString("   dip@1024?\n")
	for _, thr := range []int64{1 << 20, 4 << 20, 16 << 20, 128 << 20} {
		p := fsim.Sierra()
		p.CacheThreshold = thr
		series := p.BTSeries(fsim.BTClassD, fsim.Fig4bCores)
		fmt.Fprintf(&sb, "  %-12s", fmtBytes(thr))
		for _, v := range series[fsim.LDPLFS] {
			fmt.Fprintf(&sb, " %8.0f", v)
		}
		dip := series[fsim.LDPLFS][2] < series[fsim.LDPLFS][1]
		fmt.Fprintf(&sb, "   %v\n", dip)
	}
	return sb.String()
}

// ablateMDSLoad sweeps the MDS contention constant: a more resilient MDS
// postpones (but does not remove) the FLASH-IO collapse; an infinitely
// fast one (GPFS-style distributed metadata) leaves only stream
// contention.
func ablateMDSLoad() string {
	var sb strings.Builder
	sb.WriteString("\n[A2] Lustre MDS contention vs the FLASH-IO collapse (LDPLFS MB/s)\n")
	fmt.Fprintf(&sb, "  %-16s", "MDS model")
	for _, c := range fsim.Fig5Cores {
		fmt.Fprintf(&sb, " %7d", c)
	}
	sb.WriteString("\n")
	type variant struct {
		name string
		mut  func(*fsim.Platform)
	}
	for _, v := range []variant{
		{"paper (k=48)", func(p *fsim.Platform) {}},
		{"resilient k=480", func(p *fsim.Platform) { p.MDS.LoadK = 480 }},
		{"fragile k=12", func(p *fsim.Platform) { p.MDS.LoadK = 12 }},
		{"no MDS (GPFS)", func(p *fsim.Platform) { p.MDS = nil }},
	} {
		p := fsim.Sierra()
		v.mut(p)
		fmt.Fprintf(&sb, "  %-16s", v.name)
		for _, c := range fsim.Fig5Cores {
			fmt.Fprintf(&sb, " %7.0f", p.FlashBandwidth(fsim.DefaultFlash(c, fsim.LDPLFS)))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ablateFUSESegment sweeps the FUSE max transfer unit: larger kernel
// segments amortise the per-op server cost and close the FUSE gap,
// demonstrating that segmentation — not the daemon itself — is FUSE's
// tax.
func ablateFUSESegment() string {
	var sb strings.Builder
	sb.WriteString("\n[A3] FUSE max transfer unit vs Fig. 3 write plateau (64 nodes, 1 ppn, MB/s)\n")
	p := fsim.Minerva()
	romio := p.MPIIOTest(fsim.DefaultMPIIOTest(64, 1, fsim.ROMIO, false))
	for _, seg := range []int64{64 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20} {
		job := fsim.DefaultMPIIOTest(64, 1, fsim.FUSE, false)
		job.FUSESegment = seg
		bw := p.MPIIOTest(job)
		fmt.Fprintf(&sb, "  %-10s %8.1f   (%.0f%% of ROMIO)\n", fmtBytes(seg), bw, 100*bw/romio)
	}
	return sb.String()
}

// ablateVariants prints the future-work study: which half of PLFS causes
// the collapse.
func ablateVariants() string {
	var sb strings.Builder
	sb.WriteString("\n[A4] PLFS design variants on FLASH-IO (the paper's future-work study, MB/s)\n")
	p := fsim.Sierra()
	out := p.VariantSeries(fsim.Fig5Cores)
	fmt.Fprintf(&sb, "  %-22s", "cores")
	for _, c := range fsim.Fig5Cores {
		fmt.Fprintf(&sb, " %7d", c)
	}
	sb.WriteString("\n")
	for _, name := range []string{"MPI-IO", "PLFS (partition+log)", "partition-only", "log-only"} {
		fmt.Fprintf(&sb, "  %-22s", name)
		for _, v := range out[name] {
			fmt.Fprintf(&sb, " %7.0f", v)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  -> the per-process file explosion (partitioning), not the log, drives the collapse;\n")
	sb.WriteString("     a log-only design keeps the shared-file plateau at every scale.\n")
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
