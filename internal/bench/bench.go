// Package bench regenerates every table and figure of the paper's
// evaluation from the models in internal/fsim, rendering them as aligned
// text in the same rows/series the paper reports. cmd/benchfigs is the
// CLI front end; the root-level bench_test.go wires each experiment to a
// testing.B target.
package bench

import (
	"fmt"
	"strings"

	"ldplfs/internal/fsim"
)

// line formats one series row: a label then one value per column.
func line(sb *strings.Builder, label string, vals []float64) {
	fmt.Fprintf(sb, "  %-8s", label)
	for _, v := range vals {
		fmt.Fprintf(sb, " %8.1f", v)
	}
	sb.WriteByte('\n')
}

func header(sb *strings.Builder, unit string, cols []int) {
	fmt.Fprintf(sb, "  %-8s", unit)
	for _, c := range cols {
		fmt.Fprintf(sb, " %8d", c)
	}
	sb.WriteByte('\n')
}

// TableI renders both platforms' inventories — the configuration the
// models are parameterised by.
func TableI() string {
	var sb strings.Builder
	min, sie := fsim.Minerva(), fsim.Sierra()
	sb.WriteString("TABLE I: Benchmarking platforms used in this study\n\n")
	row := func(k, a, b string) { fmt.Fprintf(&sb, "  %-22s %-28s %s\n", k, a, b) }
	row("", min.Name, sie.Name)
	row("Processor", min.Processor, sie.Processor)
	row("CPU Speed", fmt.Sprintf("%.2f GHz", min.CPUSpeedGHz), fmt.Sprintf("%.1f GHz", sie.CPUSpeedGHz))
	row("Cores per Node", fmt.Sprint(min.CoresPerNode), fmt.Sprint(sie.CoresPerNode))
	row("Nodes", fmt.Sprint(min.TotalNodes), fmt.Sprint(sie.TotalNodes))
	row("Interconnect", min.Interconnect, sie.Interconnect)
	row("File System", min.FileSystem, sie.FileSystem)
	row("I/O Servers / OSS", fmt.Sprint(min.IOServers), fmt.Sprint(sie.IOServers))
	row("Theoretical Bandwidth", min.TheoreticalBW, sie.TheoreticalBW)
	row("Data Disks", fmt.Sprintf("%d x %s @%d RPM", min.DataDisks, min.DataDiskType, min.DataDiskRPM),
		fmt.Sprintf("%d x %s @%d RPM", sie.DataDisks, sie.DataDiskType, sie.DataDiskRPM))
	row("Data RAID", min.DataRAID, sie.DataRAID)
	row("Metadata Disks", fmt.Sprintf("%d @%d RPM", min.MetaDisks, min.MetaDiskRPM),
		fmt.Sprintf("%d @%d RPM", sie.MetaDisks, sie.MetaDiskRPM))
	row("Metadata RAID", min.MetaRAID, sie.MetaRAID)
	return sb.String()
}

// Fig3 renders the full Fig. 3 grid: write and read bandwidth at 1, 2 and
// 4 processes per node over 1..64 Minerva nodes, for all four methods.
func Fig3() string {
	p := fsim.Minerva()
	var sb strings.Builder
	sb.WriteString("FIG 3: Benchmarked MPI-IO bandwidths on FUSE, ROMIO, LDPLFS and standard MPI-IO\n")
	sb.WriteString("       (MPI-IO Test, 1 GiB/process in 8 MiB blocks, collective buffering, Minerva/GPFS; MB/s)\n")
	sub := 'a'
	for _, phase := range []struct {
		read bool
		name string
	}{{false, "Write"}, {true, "Read"}} {
		for _, ppn := range []int{1, 2, 4} {
			fmt.Fprintf(&sb, "\n  (%c) %s (%d Proc/Node)\n", sub, phase.name, ppn)
			sub++
			header(&sb, "nodes", fsim.Fig3Nodes)
			series := p.Fig3Series(ppn, phase.read, fsim.Fig3Nodes)
			for _, m := range fsim.Methods {
				line(&sb, m.String(), series[m])
			}
		}
	}
	return sb.String()
}

// TableII renders the UNIX tool timings over a 4 GB file.
func TableII() string {
	p := fsim.Minerva()
	var sb strings.Builder
	sb.WriteString("TABLE II: Time in seconds for UNIX commands to complete using PLFS\n")
	sb.WriteString("          through LDPLFS, and without PLFS (4 GB file, Minerva login node)\n\n")
	fmt.Fprintf(&sb, "  %-12s %16s %20s\n", "", "PLFS Container", "Standard UNIX File")
	for _, r := range p.TableII() {
		if r.UnixSecs > 0 {
			fmt.Fprintf(&sb, "  %-12s %16.3f %20.3f\n", r.Command, r.PlfsSecs, r.UnixSecs)
		} else {
			fmt.Fprintf(&sb, "  %-12s %16.3f %20s\n", r.Command, r.PlfsSecs, "")
		}
	}
	return sb.String()
}

// Fig4 renders both BT sub-figures on the Sierra model.
func Fig4() string {
	p := fsim.Sierra()
	var sb strings.Builder
	sb.WriteString("FIG 4: BT benchmarked MPI-IO bandwidths using MPI-IO, ROMIO and LDPLFS\n")
	sb.WriteString("       (NAS BT-IO strong scaled, Sierra/Lustre; MB/s)\n")
	for _, part := range []struct {
		label string
		class fsim.BTClass
		cores []int
	}{
		{"(a) Problem Class C (162^3, 6.4 GB)", fsim.BTClassC, fsim.Fig4aCores},
		{"(b) Problem Class D (408^3, 136 GB)", fsim.BTClassD, fsim.Fig4bCores},
	} {
		fmt.Fprintf(&sb, "\n  %s\n", part.label)
		header(&sb, "cores", part.cores)
		series := p.BTSeries(part.class, part.cores)
		for _, m := range []fsim.Method{fsim.MPIIO, fsim.ROMIO, fsim.LDPLFS} {
			line(&sb, m.String(), series[m])
		}
	}
	return sb.String()
}

// Fig5 renders the FLASH-IO weak-scaling figure on the Sierra model.
func Fig5() string {
	p := fsim.Sierra()
	var sb strings.Builder
	sb.WriteString("FIG 5: FLASH-IO benchmarked MPI-IO bandwidths using MPI-IO, ROMIO and LDPLFS\n")
	sb.WriteString("       (weak scaled, 24^3 blocks, ~205 MB/process, 12 PPN, Sierra/Lustre; MB/s)\n\n")
	header(&sb, "cores", fsim.Fig5Cores)
	series := p.FlashSeries(fsim.Fig5Cores)
	for _, m := range []fsim.Method{fsim.MPIIO, fsim.ROMIO, fsim.LDPLFS} {
		line(&sb, m.String(), series[m])
	}
	return sb.String()
}

// Headline computes the paper's summary claims from the model output, so
// the reproduction's conclusions are derived, not asserted.
type Headline struct {
	Fig3PlfsOverMPIIO   float64 // write plateau ratio on Minerva (~2x)
	Fig3LdplfsVsRomio   float64 // relative difference at plateau (~0)
	Fig3FuseUnderMPIIO  float64 // fractional deficit (~0.2)
	Fig4MaxSpeedup      float64 // best PLFS/MPI-IO ratio across BT points
	Fig5PeakCores       int     // where PLFS peaks (192)
	Fig5CollapseFactor  float64 // PLFS peak / PLFS@3072
	Fig5PlfsBelowMPIIO  bool    // PLFS < MPI-IO at 3,072 cores
	TableIIMaxDeviation float64 // max |plfs-unix|/unix over serial tools
}

// ComputeHeadline derives the summary numbers.
func ComputeHeadline() Headline {
	min, sie := fsim.Minerva(), fsim.Sierra()
	var h Headline

	s := min.Fig3Series(1, false, fsim.Fig3Nodes)
	last := len(fsim.Fig3Nodes) - 1
	h.Fig3PlfsOverMPIIO = s[fsim.ROMIO][last] / s[fsim.MPIIO][last]
	h.Fig3LdplfsVsRomio = (s[fsim.LDPLFS][last] - s[fsim.ROMIO][last]) / s[fsim.ROMIO][last]
	h.Fig3FuseUnderMPIIO = 1 - s[fsim.FUSE][last]/s[fsim.MPIIO][last]

	for _, part := range []struct {
		class fsim.BTClass
		cores []int
	}{{fsim.BTClassC, fsim.Fig4aCores}, {fsim.BTClassD, fsim.Fig4bCores}} {
		series := sie.BTSeries(part.class, part.cores)
		for i := range part.cores {
			if r := series[fsim.LDPLFS][i] / series[fsim.MPIIO][i]; r > h.Fig4MaxSpeedup {
				h.Fig4MaxSpeedup = r
			}
		}
	}

	flash := sie.FlashSeries(fsim.Fig5Cores)
	peak, peakIdx := 0.0, 0
	for i, v := range flash[fsim.ROMIO] {
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	h.Fig5PeakCores = fsim.Fig5Cores[peakIdx]
	lastIdx := len(fsim.Fig5Cores) - 1
	h.Fig5CollapseFactor = peak / flash[fsim.ROMIO][lastIdx]
	h.Fig5PlfsBelowMPIIO = flash[fsim.ROMIO][lastIdx] < flash[fsim.MPIIO][lastIdx]

	for _, r := range min.TableII() {
		if r.UnixSecs <= 0 {
			continue
		}
		dev := (r.PlfsSecs - r.UnixSecs) / r.UnixSecs
		if dev < 0 {
			dev = -dev
		}
		if dev > h.TableIIMaxDeviation {
			h.TableIIMaxDeviation = dev
		}
	}
	return h
}

// Summary renders the headline claims.
func Summary() string {
	h := ComputeHeadline()
	var sb strings.Builder
	sb.WriteString("HEADLINE CLAIMS (derived from the models)\n\n")
	fmt.Fprintf(&sb, "  Fig 3: PLFS/MPI-IO write plateau ratio on Minerva     %.2fx (paper: ~2x)\n", h.Fig3PlfsOverMPIIO)
	fmt.Fprintf(&sb, "  Fig 3: LDPLFS vs ROMIO at plateau                     %+.1f%% (paper: near identical)\n", 100*h.Fig3LdplfsVsRomio)
	fmt.Fprintf(&sb, "  Fig 3: FUSE deficit vs plain MPI-IO on writes         %.0f%% (paper: ~20%%)\n", 100*h.Fig3FuseUnderMPIIO)
	fmt.Fprintf(&sb, "  Fig 4: best PLFS speedup over MPI-IO (BT)             %.1fx (paper: up to ~20x)\n", h.Fig4MaxSpeedup)
	fmt.Fprintf(&sb, "  Fig 5: PLFS peak at                                   %d cores (paper: 192)\n", h.Fig5PeakCores)
	fmt.Fprintf(&sb, "  Fig 5: PLFS peak/3072-core collapse factor            %.1fx (paper: ~8x)\n", h.Fig5CollapseFactor)
	fmt.Fprintf(&sb, "  Fig 5: PLFS below plain MPI-IO at 3,072 cores         %v (paper: yes)\n", h.Fig5PlfsBelowMPIIO)
	fmt.Fprintf(&sb, "  Table II: max serial-tool deviation PLFS vs UNIX      %.1f%% (paper: marginal)\n", 100*h.TableIIMaxDeviation)
	return sb.String()
}

// All renders every experiment in paper order.
func All() string {
	return strings.Join([]string{
		TableI(), Fig3(), TableII(), Fig4(), Fig5(), Summary(), Ablations(),
	}, "\n")
}
