package bench

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Multi-backend aggregation benchmarks: the same N-1 container striped
// over 1, 2 or 3 backends whose service rate is finite — each FaultFS
// backend retires one operation per service interval, the regime a
// saturated file server is in. A single backend serializes every dropping
// operation behind one service slot; striping spreads hostdirs across
// independent slots, so the engines' parallel preads and pwrites
// genuinely aggregate. This is the effect PLFS's multi-backend layout
// exists for ("Problems in Modern High Performance Parallel I/O
// Systems"): more servers, more aggregate bandwidth, no application
// change.
const (
	stWriters   = 12 // writer pids = hostdirs (NumHostdirs below)
	stBlocksPer = 8  // blocks per writer
	stBlock     = 4 << 10
	stService   = 400 * time.Microsecond // per-op backend service time
)

// stripedOpts builds a PLFS configuration over n service-limited
// backends, returning the FaultFS handles so service time can be toggled
// around the setup phase.
func stripedOpts(n int) (plfs.Options, []*posix.FaultFS) {
	faults := make([]*posix.FaultFS, n)
	opts := plfs.Options{
		NumHostdirs:  stWriters,
		ReadWorkers:  8,
		IndexWorkers: 8,
		WriteWorkers: 8,
		Backends:     make([]posix.FS, n),
	}
	for i := range faults {
		faults[i] = posix.NewFaultFS(posix.NewMemFS())
		opts.Backends[i] = faults[i]
	}
	return opts, faults
}

// setupStripedN1 writes the canonical N-1 container (service time off,
// so setup cost does not pollute the measurement) and returns a fresh
// cold-cache instance for the read phase plus the expected bytes.
func setupStripedN1(tb testing.TB, n int) (plfs.Options, []*posix.FaultFS, []byte) {
	tb.Helper()
	opts, faults := stripedOpts(n)
	p := plfs.New(nil, opts)
	want := make([]byte, stWriters*stBlocksPer*stBlock)
	f, err := p.Open("/n1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	for w := 0; w < stWriters; w++ {
		payload := bytes.Repeat([]byte{byte(w + 1)}, stBlock)
		for blk := 0; blk < stBlocksPer; blk++ {
			off := int64((blk*stWriters + w) * stBlock)
			copy(want[off:], payload)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for w := 0; w < stWriters; w++ {
		if err := f.Close(uint32(w)); err != nil {
			tb.Fatal(err)
		}
	}
	return opts, faults, want
}

// readStripedN1 opens the container cold and streams it end to end,
// returning the wall time of open+read+close under the configured
// service times.
func readStripedN1(tb testing.TB, opts plfs.Options, want []byte) time.Duration {
	tb.Helper()
	p := plfs.New(nil, opts) // cold caches: index reconstruction included
	start := time.Now()
	f, err := p.Open("/n1", posix.O_RDONLY, 99, 0)
	if err != nil {
		tb.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := f.Read(got, 0); err != nil || n != len(want) {
		tb.Fatalf("read = %d, %v", n, err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, want) {
		tb.Fatal("striped read returned wrong bytes")
	}
	f.Close(99)
	return elapsed
}

func benchStripedN1Read(b *testing.B, n int) {
	opts, faults, want := setupStripedN1(b, n)
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultRead, stService)
	}
	b.SetBytes(int64(len(want)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readStripedN1(b, opts, want)
	}
}

func BenchmarkStripedN1Read_1Backend(b *testing.B)  { benchStripedN1Read(b, 1) }
func BenchmarkStripedN1Read_2Backends(b *testing.B) { benchStripedN1Read(b, 2) }
func BenchmarkStripedN1Read_3Backends(b *testing.B) { benchStripedN1Read(b, 3) }

// writeStripedN1 runs one N-1 checkpoint pass with stWriters concurrent
// writer goroutines and returns its wall time.
func writeStripedN1(tb testing.TB, opts plfs.Options) time.Duration {
	tb.Helper()
	p := plfs.New(nil, opts)
	f, err := p.Open("/w1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, stWriters)
	for w := 0; w < stWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, stBlock)
			for blk := 0; blk < stBlocksPer; blk++ {
				off := int64((blk*stWriters + w) * stBlock)
				if _, err := f.Write(payload, off, uint32(w)); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
			if err := f.Sync(uint32(w)); err != nil {
				errc <- err
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		tb.Fatal(err)
	}
	for w := 0; w < stWriters; w++ {
		f.Close(uint32(w))
	}
	return elapsed
}

func benchStripedN1Write(b *testing.B, n int) {
	opts, faults := stripedOpts(n)
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultWrite, stService)
	}
	b.SetBytes(int64(stWriters * stBlocksPer * stBlock))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeStripedN1(b, opts)
		b.StopTimer()
		plfs.New(nil, opts).Unlink("/w1")
		b.StartTimer()
	}
}

func BenchmarkStripedN1Write_1Backend(b *testing.B)  { benchStripedN1Write(b, 1) }
func BenchmarkStripedN1Write_3Backends(b *testing.B) { benchStripedN1Write(b, 3) }

// TestStripedAggregation is the acceptance check behind the benchmarks:
// with per-op backend service time injected, a 3-backend N-1 read must
// run at least 1.5x faster than the single-backend baseline (ideal is
// ~3x; 1.5x leaves headroom for scheduler noise). The sleeps dominate
// both sides, so the ratio is stable across machines.
func TestStripedAggregation(t *testing.T) {
	times := map[int]time.Duration{}
	for _, n := range []int{1, 3} {
		opts, faults, want := setupStripedN1(t, n)
		for _, fb := range faults {
			fb.SetServiceTime(posix.FaultRead, stService)
		}
		times[n] = readStripedN1(t, opts, want)
	}
	t.Logf("N-1 read under %v/op service time: 1 backend %v, 3 backends %v (%.2fx)",
		stService, times[1], times[3], float64(times[1])/float64(times[3]))
	if float64(times[1]) < 1.5*float64(times[3]) {
		t.Fatalf("3-backend read only %.2fx faster than single backend (want >= 1.5x): %v vs %v",
			float64(times[1])/float64(times[3]), times[1], times[3])
	}
}

// TestStripedWriteAggregation is the write-side twin: the sharded write
// engine over 3 service-limited backends must beat one backend by 1.5x.
func TestStripedWriteAggregation(t *testing.T) {
	times := map[int]time.Duration{}
	for _, n := range []int{1, 3} {
		opts, faults := stripedOpts(n)
		for _, fb := range faults {
			fb.SetServiceTime(posix.FaultWrite, stService)
		}
		times[n] = writeStripedN1(t, opts)
	}
	t.Logf("N-1 write under %v/op service time: 1 backend %v, 3 backends %v (%.2fx)",
		stService, times[1], times[3], float64(times[1])/float64(times[3]))
	if float64(times[1]) < 1.5*float64(times[3]) {
		t.Fatalf("3-backend write only %.2fx faster than single backend (want >= 1.5x): %v vs %v",
			float64(times[1])/float64(times[3]), times[1], times[3])
	}
}
