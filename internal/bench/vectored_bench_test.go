package bench

import (
	"testing"

	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Vectored-read benchmarks and the PR 9 hot-path floors. The batched
// engine groups physically-contiguous extents per dropping into one
// preadv; against the strided N-1 layout every full-file read collapses
// n1BlocksPer scalar preads per dropping into one submission. The two
// floors CI enforces are structural, not wall-clock: warm reads stay
// within the alloc budget, and the batched engine issues at least 4x
// fewer backend data ops than the per-extent baseline.

// benchN1Batched streams the whole striped container with one reader —
// the shape where batching bites: every dropping contributes
// n1BlocksPer contiguous extents per pass.
func benchN1Batched(b *testing.B, opts plfs.Options) {
	p, want := setupN1(b, opts)
	b.SetBytes(int64(len(want)))
	buf := make([]byte, len(want))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.Open("/n1", posix.O_RDONLY, 200, 0)
		if err != nil {
			b.Fatal(err)
		}
		if n, err := f.Read(buf, 0); err != nil || n != len(want) {
			b.Fatalf("read: n=%d err=%v", n, err)
		}
		f.Close(200)
	}
}

func BenchmarkN1StridedReadBatched(b *testing.B) {
	benchN1Batched(b, plfs.Options{})
}

func BenchmarkN1StridedReadPerExtent(b *testing.B) {
	benchN1Batched(b, plfs.Options{BatchDepth: 1})
}

// setupN1Mem writes the strided N-1 container over backend (MemFS or
// an instrumented wrapper) and returns the instance and logical size.
func setupN1Mem(t testing.TB, backend posix.FS, opts plfs.Options) (*plfs.FS, int) {
	t.Helper()
	p := plfs.New(backend, opts)
	f, err := p.Open("/n1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const block = 4 << 10
	payload := make([]byte, block)
	for w := 0; w < n1Writers; w++ {
		for j := range payload {
			payload[j] = byte(w + 1)
		}
		for blk := 0; blk < n1BlocksPer; blk++ {
			off := int64((blk*n1Writers + w) * block)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := 0; w < n1Writers; w++ {
		if err := f.Close(uint32(w)); err != nil {
			t.Fatal(err)
		}
	}
	return p, n1Writers * n1BlocksPer * block
}

// TestWarmReadAllocs is the CI-enforced alloc floor: once the index,
// descriptor and plan pools are warm, a full strided N-1 read stays
// within 2 allocations per op (the budget the pooled read plan, the
// recycled extent slice and the cached dropping paths buy).
func TestWarmReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the floor only holds on plain builds")
	}
	// Serial read workers pin the no-closure serial gather path; the
	// parallel path necessarily allocates goroutine bookkeeping.
	p, size := setupN1Mem(t, posix.NewMemFS(), plfs.Options{ReadWorkers: 1})
	f, err := p.Open("/n1", posix.O_RDONLY, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(200)
	buf := make([]byte, size)
	// Warm every pool and cache: index cache, fd cache, plan pool.
	for i := 0; i < 3; i++ {
		if n, err := f.Read(buf, 0); err != nil || n != size {
			t.Fatalf("warmup read: n=%d err=%v", n, err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if n, err := f.Read(buf, 0); err != nil || n != size {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
	})
	if avg > 2 {
		t.Fatalf("warm N-1 read allocates %.1f/op, budget is 2", avg)
	}
}

// TestN1BatchedBackendOps is the CI-enforced batching floor: over the
// strided N-1 container, the batched engine must issue at least 4x
// fewer backend data operations than the per-extent baseline for the
// same read — measured on the posix layer's backend_ops counter, not
// wall clock. The layout gives the engine n1BlocksPer (16) contiguous
// extents per dropping, so the expected collapse is ~16x; 4x is the
// regression floor.
func TestN1BatchedBackendOps(t *testing.T) {
	readOps := func(opts plfs.Options) int64 {
		plane := iostats.NewPlane()
		ifs := posix.NewInstrumentFS(posix.NewMemFS(), plane)
		p, size := setupN1Mem(t, ifs, opts)
		f, err := p.Open("/n1", posix.O_RDONLY, 200, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close(200)
		buf := make([]byte, size)
		// Warm up so the measured read does pure data I/O (the index
		// is cached, no index-dropping preads mix into the count).
		if n, err := f.Read(buf, 0); err != nil || n != size {
			t.Fatalf("warmup read: n=%d err=%v", n, err)
		}
		ctr := plane.Layer("posix").Counter("backend_ops")
		before := ctr.Load()
		if n, err := f.Read(buf, 0); err != nil || n != size {
			t.Fatalf("measured read: n=%d err=%v", n, err)
		}
		return ctr.Load() - before
	}

	batched := readOps(plfs.Options{})
	perExtent := readOps(plfs.Options{BatchDepth: 1})
	if batched == 0 || perExtent == 0 {
		t.Fatalf("op counters did not move (batched=%d perExtent=%d)", batched, perExtent)
	}
	if batched*4 > perExtent {
		t.Fatalf("batched read issued %d backend ops vs %d per-extent: less than the 4x floor", batched, perExtent)
	}
	t.Logf("backend ops: batched=%d per-extent=%d (%.1fx reduction)", batched, perExtent, float64(perExtent)/float64(batched))
}

// TestBatchDepthDifferential drives the randomized striped workload
// scripts at several batch depths — coalescing disabled, an odd depth
// that fragments batches mid-run, the default, and the ladder top —
// and demands byte-identical results everywhere: batching is a
// syscall-count optimisation, never a semantics change.
func TestBatchDepthDifferential(t *testing.T) {
	depths := []int{1, 3, 0 /* default */, 256}
	for seed := int64(1); seed <= 3; seed++ {
		var refFinal []byte
		for _, d := range depths {
			backends := []posix.FS{posix.NewMemFS(), posix.NewMemFS(), posix.NewMemFS()}
			p := plfs.New(nil,
				plfs.EngineOptions{NumHostdirs: 4, BatchDepth: d, IndexBatch: 8},
				plfs.WithBackends(backends...),
			)
			final := driveStridedScript(t, p, seed)
			if refFinal == nil {
				refFinal = final
				continue
			}
			if string(final) != string(refFinal) {
				t.Fatalf("seed %d: BatchDepth %d diverges from BatchDepth %d", seed, d, depths[0])
			}
		}
	}
}

// driveStridedScript runs one deterministic strided workload (writes
// via WriteV from several pids, interleaved reads, a truncate) and
// returns the final container bytes.
func driveStridedScript(t *testing.T, p *plfs.FS, seed int64) []byte {
	t.Helper()
	f, err := p.Open("/script", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const block = 512
	rnd := seed*2654435761 + 1
	next := func(n int64) int64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		v := rnd % n
		if v < 0 {
			v += n
		}
		return v
	}
	for round := 0; round < 6; round++ {
		for pid := uint32(0); pid < 4; pid++ {
			segs := make([]plfs.WriteSeg, 0, 8)
			for s := 0; s < 8; s++ {
				off := (int64(s)*4 + int64(pid)) * block
				data := make([]byte, block)
				for j := range data {
					data[j] = byte(int64(j) + off + next(251))
				}
				segs = append(segs, plfs.WriteSeg{Off: off, Data: data})
			}
			if _, err := f.WriteV(segs, pid); err != nil {
				t.Fatalf("seed %d round %d pid %d: %v", seed, round, pid, err)
			}
		}
		if round == 3 {
			if err := f.Trunc(next(8192) + 1024); err != nil {
				t.Fatal(err)
			}
		}
	}
	for pid := uint32(0); pid < 4; pid++ {
		if err := f.Close(pid); err != nil {
			t.Fatal(err)
		}
	}
	r, err := p.Open("/script", posix.O_RDONLY, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(99)
	size, err := r.Size()
	if err != nil {
		t.Fatal(err)
	}
	final := make([]byte, size)
	if n, err := r.Read(final, 0); err != nil || int64(n) != size {
		t.Fatalf("final read: n=%d err=%v", n, err)
	}
	return final
}
