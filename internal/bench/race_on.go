//go:build race

package bench

// raceEnabled reports whether the race detector is active. See
// race_off.go.
const raceEnabled = true
