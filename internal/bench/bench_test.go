package bench

import (
	"strings"
	"testing"
)

func TestTableIMentionsBothPlatforms(t *testing.T) {
	out := TableI()
	for _, want := range []string{"Minerva", "Sierra", "GPFS", "Lustre", "258", "1849", "3600"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig3HasAllSixSubfigures(t *testing.T) {
	out := Fig3()
	for _, want := range []string{
		"(a) Write (1 Proc/Node)", "(b) Write (2 Proc/Node)", "(c) Write (4 Proc/Node)",
		"(d) Read (1 Proc/Node)", "(e) Read (2 Proc/Node)", "(f) Read (4 Proc/Node)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3 missing %q", want)
		}
	}
	for _, m := range []string{"MPI-IO", "FUSE", "ROMIO", "LDPLFS"} {
		if strings.Count(out, m) < 6 {
			t.Errorf("method %s missing from some subfigure", m)
		}
	}
}

func TestTableIIHasAllCommands(t *testing.T) {
	out := TableII()
	for _, want := range []string{"cp (read)", "cp (write)", "cat", "grep", "md5sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFig4HasBothClasses(t *testing.T) {
	out := Fig4()
	if !strings.Contains(out, "Class C") || !strings.Contains(out, "Class D") {
		t.Error("Fig 4 missing a problem class")
	}
	if !strings.Contains(out, "4096") {
		t.Error("Fig 4b missing the 4096-core point")
	}
}

func TestFig5HasFullSweep(t *testing.T) {
	out := Fig5()
	for _, want := range []string{"12", "3072", "FLASH-IO"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 5 missing %q", want)
		}
	}
}

// TestHeadlineClaimsShape is the top-level reproduction gate: the derived
// summary numbers must land where the paper's conclusions sit.
func TestHeadlineClaimsShape(t *testing.T) {
	h := ComputeHeadline()
	if h.Fig3PlfsOverMPIIO < 1.6 || h.Fig3PlfsOverMPIIO > 2.6 {
		t.Errorf("Fig3 PLFS/MPI-IO = %.2f, want ~2", h.Fig3PlfsOverMPIIO)
	}
	if h.Fig3LdplfsVsRomio < -0.05 || h.Fig3LdplfsVsRomio > 0.10 {
		t.Errorf("Fig3 LDPLFS vs ROMIO = %+.3f, want near identical", h.Fig3LdplfsVsRomio)
	}
	if h.Fig3FuseUnderMPIIO < 0.05 || h.Fig3FuseUnderMPIIO > 0.40 {
		t.Errorf("Fig3 FUSE deficit = %.2f, want ~0.2", h.Fig3FuseUnderMPIIO)
	}
	if h.Fig4MaxSpeedup < 4 {
		t.Errorf("Fig4 max speedup = %.1f, want >4x (paper: up to 20x)", h.Fig4MaxSpeedup)
	}
	if h.Fig5PeakCores != 192 {
		t.Errorf("Fig5 peak at %d cores, want 192", h.Fig5PeakCores)
	}
	if h.Fig5CollapseFactor < 4 {
		t.Errorf("Fig5 collapse factor = %.1f, want substantial", h.Fig5CollapseFactor)
	}
	if !h.Fig5PlfsBelowMPIIO {
		t.Error("Fig5: PLFS should fall below MPI-IO at 3,072 cores")
	}
	if h.TableIIMaxDeviation > 0.15 {
		t.Errorf("Table II deviation %.2f too large for 'largely the same'", h.TableIIMaxDeviation)
	}
}

func TestAllIncludesEverything(t *testing.T) {
	out := All()
	for _, want := range []string{"TABLE I", "FIG 3", "TABLE II", "FIG 4", "FIG 5", "HEADLINE"} {
		if !strings.Contains(out, want) {
			t.Errorf("All() missing %q section", want)
		}
	}
}
