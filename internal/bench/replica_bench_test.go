package bench

import (
	"bytes"
	"testing"
	"time"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Replicated-layout benchmarks: the N-1 read pass from the striped
// suite, but with droppings replicated two ways across three service-
// limited backends. Three regimes matter:
//
//   - healthy: reads are served by each dropping's primary — the cost
//     of replication on the read path should be near zero;
//   - degraded: one backend is dead, so reads whose primary died fail
//     over to the surviving copy — the bound the chaos tests pin is
//     "within 2x", this benchmark shows the measured factor;
//   - write: the fan-out cost of writing every dropping twice against
//     classic single-copy striping.
//
// All three use the per-rule scoped service slots (one slot per
// backend), not the shared legacy slot, so the backends behave like
// independent saturated servers.

// replicaOpts builds a replica-2 PLFS configuration over n service-
// limited backends.
func replicaOpts(tb testing.TB, n int) (plfs.Options, []*posix.FaultFS) {
	tb.Helper()
	opts, faults := stripedOpts(n)
	opts.Layout = "replica-2"
	return opts, faults
}

// setupReplicaN1 writes the canonical N-1 container through a replica-2
// layout (service time off during setup) and returns the options for
// cold re-opens plus the expected bytes.
func setupReplicaN1(tb testing.TB, n int) (plfs.Options, []*posix.FaultFS, []byte) {
	tb.Helper()
	opts, faults := replicaOpts(tb, n)
	p := plfs.New(nil, opts)
	want := make([]byte, stWriters*stBlocksPer*stBlock)
	f, err := p.Open("/n1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	for w := 0; w < stWriters; w++ {
		payload := bytes.Repeat([]byte{byte(w + 1)}, stBlock)
		for blk := 0; blk < stBlocksPer; blk++ {
			off := int64((blk*stWriters + w) * stBlock)
			copy(want[off:], payload)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for w := 0; w < stWriters; w++ {
		if err := f.Close(uint32(w)); err != nil {
			tb.Fatal(err)
		}
	}
	return opts, faults, want
}

func benchReplicaN1Read(b *testing.B, kill int) {
	opts, faults, want := setupReplicaN1(b, 3)
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultRead, stService)
	}
	if kill >= 0 {
		faults[kill].Kill()
	}
	b.SetBytes(int64(len(want)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readStripedN1(b, opts, want)
	}
}

// BenchmarkReplicaN1Read_Healthy is the replica-2 read floor: primaries
// only, directly comparable to BenchmarkStripedN1Read_3Backends.
func BenchmarkReplicaN1Read_Healthy(b *testing.B) { benchReplicaN1Read(b, -1) }

// BenchmarkReplicaN1Read_Degraded reads with backend 1 dead: every
// dropping whose primary died fails over to its surviving copy.
func BenchmarkReplicaN1Read_Degraded(b *testing.B) { benchReplicaN1Read(b, 1) }

// BenchmarkReplicaN1Write measures the replica-2 write fan-out against
// the single-copy BenchmarkStripedN1Write_3Backends baseline.
func BenchmarkReplicaN1Write(b *testing.B) {
	opts, faults := replicaOpts(b, 3)
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultWrite, stService/4)
	}
	b.SetBytes(int64(stWriters * stBlocksPer * stBlock))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeStripedN1(b, opts)
	}
}

// TestReplicaDegradedReadBound runs the healthy and degraded read passes
// once each under identical service times and asserts the degraded pass
// stays within the 2x envelope the chaos suite promises (generous slack:
// the assert is 3x to keep CI timing-safe; the typical factor is ~1.2).
func TestReplicaDegradedReadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	opts, faults, want := setupReplicaN1(t, 3)
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultRead, stService/4)
	}
	healthy := readStripedN1(t, opts, want)
	faults[1].Kill()
	degraded := readStripedN1(t, opts, want)
	faults[1].Revive()
	t.Logf("healthy %v, degraded %v (factor %.2f)", healthy, degraded, float64(degraded)/float64(healthy))
	if degraded > 3*healthy+50*time.Millisecond {
		t.Fatalf("degraded read %v vs healthy %v: outside the envelope", degraded, healthy)
	}
}
