package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Collective I/O benchmarks on the 3-backend service-limited rig: the
// strided-with-gaps workload where the pipelined collective path's
// vectored aggregator flushes collapse a round's runs into a handful of
// batched engine submissions, while the one-shot path issues a scalar
// driver op per gap-separated run. With each backend retiring one op
// per service interval, the op-count collapse is the wall-clock story.
const (
	colRanks   = 8
	colPPN     = 4 // 2 nodes -> 2 aggregators by default
	colStripes = 8 // stripes per rank per collective
	colStripe  = 4 << 10
	colGap     = colStripe // hole between stripes: defeats run coalescing
)

// colSegs builds rank r's strided-with-gaps access for one collective:
// stripe s of rank r sits at ((s*ranks)+r) * (stripe+gap), so adjacent
// pieces of one aggregator domain never touch and every run stays a
// separate driver op on the one-shot path.
func colSegs(rank int) ([]mpiio.Segment, []byte) {
	segs := make([]mpiio.Segment, colStripes)
	buf := bytes.Repeat([]byte{byte(rank + 1)}, colStripes*colStripe)
	for s := 0; s < colStripes; s++ {
		segs[s] = mpiio.Segment{
			Off: int64(s*colRanks+rank) * (colStripe + colGap),
			Len: colStripe,
		}
	}
	return segs, buf
}

// colRig assembles the mpiio-over-PLFS stack on n service-limited
// backends. Service time starts off; callers toggle it around setup.
func colRig(n int) (*plfs.FS, []*posix.FaultFS) {
	opts, faults := stripedOpts(n)
	return plfs.New(nil, opts), faults
}

func colHints(pipelined bool, plane iostats.Collector) mpiio.Hints {
	h := mpiio.DefaultHints()
	h.DisablePipeline = !pipelined
	h.Collector = plane
	return h
}

// colWrite runs one collective write phase (all ranks, one WriteAll).
func colWrite(tb testing.TB, p *plfs.FS, path string, hints mpiio.Hints) {
	tb.Helper()
	err := mpi.Run(colRanks, colPPN, func(r *mpi.Rank) {
		d := mpiio.NewPLFSDriver(p, nil)
		fh, err := mpiio.Open(r, d, path, mpiio.ModeCreate|mpiio.ModeRdwr, hints)
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		segs, buf := colSegs(r.Rank())
		if n, err := fh.WriteAll(segs, buf); err != nil || n != len(buf) {
			panic(fmt.Sprintf("WriteAll = %d, %v", n, err))
		}
	})
	if err != nil {
		tb.Fatal(err)
	}
}

// colRead runs one collective read phase over a previously written file.
func colRead(tb testing.TB, p *plfs.FS, path string, hints mpiio.Hints) {
	tb.Helper()
	err := mpi.Run(colRanks, colPPN, func(r *mpi.Rank) {
		d := mpiio.NewPLFSDriver(p, nil)
		fh, err := mpiio.Open(r, d, path, mpiio.ModeRdonly, hints)
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		segs, want := colSegs(r.Rank())
		got := make([]byte, len(want))
		if n, err := fh.ReadAll(segs, got); err != nil || n != len(got) {
			panic(fmt.Sprintf("ReadAll = %d, %v", n, err))
		}
		if !bytes.Equal(got, want) {
			panic("collective read returned wrong bytes")
		}
	})
	if err != nil {
		tb.Fatal(err)
	}
}

func benchCollectiveWrite(b *testing.B, pipelined bool) {
	p, faults := colRig(3)
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultWrite, stService)
	}
	hints := colHints(pipelined, nil)
	b.SetBytes(int64(colRanks * colStripes * colStripe))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		colWrite(b, p, fmt.Sprintf("/col-w-%d", i), hints)
	}
}

func BenchmarkCollectiveStridedWritePipelined(b *testing.B) { benchCollectiveWrite(b, true) }
func BenchmarkCollectiveStridedWriteOneShot(b *testing.B)   { benchCollectiveWrite(b, false) }

func benchCollectiveRead(b *testing.B, pipelined bool) {
	p, faults := colRig(3)
	colWrite(b, p, "/col-r", colHints(true, nil)) // seed with service time off
	for _, fb := range faults {
		fb.SetServiceTime(posix.FaultRead, stService)
	}
	hints := colHints(pipelined, nil)
	b.SetBytes(int64(colRanks * colStripes * colStripe))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		colRead(b, p, "/col-r", hints)
	}
}

func BenchmarkCollectiveStridedReadPipelined(b *testing.B) { benchCollectiveRead(b, true) }
func BenchmarkCollectiveStridedReadOneShot(b *testing.B)   { benchCollectiveRead(b, false) }

// TestCollectiveStridedFloor is the CI wall-clock floor: on the
// service-limited rig the pipelined path must beat the one-shot path by
// at least 1.5x on the strided write phase (the target is ≥2x; 1.5x is
// the regression floor). Injected service time dominates both sides, so
// the ratio is stable across machines.
func TestCollectiveStridedFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("service-limited timing floor")
	}
	phase := func(pipelined bool) time.Duration {
		p, faults := colRig(3)
		for _, fb := range faults {
			fb.SetServiceTime(posix.FaultWrite, stService)
		}
		hints := colHints(pipelined, nil)
		start := time.Now()
		for i := 0; i < 3; i++ {
			colWrite(t, p, fmt.Sprintf("/floor-%v-%d", pipelined, i), hints)
		}
		return time.Since(start)
	}
	oneShot := phase(false)
	pipelined := phase(true)
	ratio := float64(oneShot) / float64(pipelined)
	t.Logf("strided collective write: one-shot %v, pipelined %v (%.1fx)", oneShot, pipelined, ratio)
	if ratio < 1.5 {
		t.Fatalf("pipelined speedup %.2fx below the 1.5x floor", ratio)
	}
}

// TestCollectiveEngineOpsCollapse is the CI op-count floor: the
// pipelined aggregators must issue at least 4x fewer driver flush ops
// than the pieces they shuffle — the structural guarantee that staging
// coalesces and the vectored driver path batches, measured on the mpiio
// layer's counters rather than wall clock.
func TestCollectiveEngineOpsCollapse(t *testing.T) {
	plane := iostats.NewPlane()
	p, _ := colRig(3)
	colWrite(t, p, "/collapse", colHints(true, plane))
	colRead(t, p, "/collapse", colHints(true, plane))
	ls := plane.Layer("mpiio")
	pieces := ls.Counter("shuffle_pieces").Load()
	flushes := ls.Counter("agg_flush_ops").Load()
	if pieces == 0 || flushes == 0 {
		t.Fatalf("shuffle counters did not move (pieces=%d flushes=%d)", pieces, flushes)
	}
	if flushes*4 > pieces {
		t.Fatalf("aggregators issued %d flush ops for %d pieces: less than the 4x collapse floor", flushes, pieces)
	}
	t.Logf("shuffle pieces=%d, aggregator flush ops=%d (%.1fx collapse)", pieces, flushes, float64(pieces)/float64(flushes))
}
