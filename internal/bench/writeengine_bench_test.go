package bench

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Write-engine benchmarks: the N-1 checkpoint shape (many writers
// striping one logical file, syncing after each burst — plfs_write then
// plfs_sync, as MPI-IO checkpoints do) over a real OS-backed store. The
// "serial" variants run the pre-engine configuration — one exclusive
// handle lock per Write and Sync, index records buffered until sync — so
// the engine's win is measured against the seed behavior, not a
// strawman: under the seed lock one writer's fsync stalls every other
// writer, while sharded writers overlap their I/O. Cold measures the
// whole checkpoint lifecycle (container create, first writes, close);
// warm measures steady-state bursts on open writers.
const (
	w1Writers   = 16 // concurrent writer goroutines / data droppings
	w1Block     = 64 << 10
	w1BlocksPer = 16 // per writer => 16 MiB logical file per pass
	w1SyncEvery = 4  // blocks per sync burst
)

func w1Serial() plfs.Options {
	return plfs.Options{DisableWriteSharding: true, WriteWorkers: 1, IndexBatch: -1}
}

func w1Sharded() plfs.Options { return plfs.Options{} }

// writeN1Pass has every writer stripe its blocks into the container
// concurrently, syncing after each w1SyncEvery-block burst.
func writeN1Pass(b *testing.B, f *plfs.File, pass int) {
	b.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, w1Writers)
	for w := 0; w < w1Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, w1Block)
			for blk := 0; blk < w1BlocksPer; blk++ {
				off := int64(((pass*w1BlocksPer+blk)*w1Writers + w) * w1Block)
				if n, err := f.Write(payload, off, uint32(w)); err != nil || n != w1Block {
					errc <- fmt.Errorf("writer %d block %d: n=%d err=%v", w, blk, n, err)
					return
				}
				if blk%w1SyncEvery == w1SyncEvery-1 {
					if err := f.Sync(uint32(w)); err != nil {
						errc <- fmt.Errorf("writer %d sync: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		b.Fatal(err)
	}
}

// benchN1Write measures one checkpoint pass per iteration over a fresh
// container (unlinked between iterations, outside the timer, so long
// runs stay comparable). Cold times the whole lifecycle — container
// create, writer setup, write bursts, close; warm pre-opens the writers
// outside the timer and times only the bursts.
func benchN1Write(b *testing.B, opts plfs.Options, warm bool) {
	osfs, err := posix.NewOSFS(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p := plfs.New(osfs, opts)
	b.SetBytes(int64(w1Writers * w1BlocksPer * w1Block))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := p.Open("/w1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if warm {
			// Open every writer (hostdir, droppings, openhosts record)
			// before the clock starts: steady state is bursts only.
			for w := 0; w < w1Writers; w++ {
				if _, err := f.Write([]byte{byte(w + 1)}, int64(w*w1Block), uint32(w)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		writeN1Pass(b, f, 0)
		if !warm {
			for w := 0; w < w1Writers; w++ {
				if err := f.Close(uint32(w)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		if warm {
			for w := 0; w < w1Writers; w++ {
				if err := f.Close(uint32(w)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := p.Unlink("/w1"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkN1WriteCold_Serial(b *testing.B)  { benchN1Write(b, w1Serial(), false) }
func BenchmarkN1WriteCold_Sharded(b *testing.B) { benchN1Write(b, w1Sharded(), false) }
func BenchmarkN1WriteWarm_Serial(b *testing.B)  { benchN1Write(b, w1Serial(), true) }
func BenchmarkN1WriteWarm_Sharded(b *testing.B) { benchN1Write(b, w1Sharded(), true) }

// benchWriteV measures one rank's strided multi-extent commit — the
// flattened-datatype write BT-IO issues per timestep — serially per
// extent versus one vectored WriteV.
func benchWriteV(b *testing.B, opts plfs.Options, vectored bool) {
	const (
		extents = 256
		extLen  = 16 << 10
	)
	osfs, err := posix.NewOSFS(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p := plfs.New(osfs, opts)
	payload := make([]byte, extLen)
	segs := make([]plfs.WriteSeg, extents)
	for e := 0; e < extents; e++ {
		segs[e] = plfs.WriteSeg{Off: int64(e * 2 * extLen), Data: payload}
	}
	b.SetBytes(extents * extLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := p.Open("/wv", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if vectored {
			if _, err := f.WriteV(segs, 0); err != nil {
				b.Fatal(err)
			}
		} else {
			for e := 0; e < extents; e++ {
				if _, err := f.Write(payload, int64(e*2*extLen), 0); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := f.Sync(0); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := f.Close(0); err != nil {
			b.Fatal(err)
		}
		if err := p.Unlink("/wv"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkStridedCommit_Writes(b *testing.B) { benchWriteV(b, w1Serial(), false) }
func BenchmarkStridedCommit_WriteV(b *testing.B) { benchWriteV(b, w1Sharded(), true) }

// TestN1WriteBenchCorrectness keeps the benchmarks honest: serialized
// and sharded configurations must produce identical logical bytes. Runs
// in the normal test suite.
func TestN1WriteBenchCorrectness(t *testing.T) {
	for name, opts := range map[string]plfs.Options{"serial": w1Serial(), "sharded": w1Sharded()} {
		t.Run(name, func(t *testing.T) {
			osfs, err := posix.NewOSFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			p := plfs.New(osfs, opts)
			f, err := p.Open("/w1", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			const (
				writers = 4
				blocks  = 8
				block   = 1024
			)
			want := make([]byte, writers*blocks*block)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					payload := bytes.Repeat([]byte{byte(w + 1)}, block)
					for blk := 0; blk < blocks; blk++ {
						off := int64((blk*writers + w) * block)
						copy(want[off:], payload)
						if _, err := f.Write(payload, off, uint32(w)); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			got := make([]byte, len(want))
			if n, err := f.Read(got, 0); err != nil || n != len(want) {
				t.Fatalf("read = %d, %v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("benchmark workload corrupted data")
			}
			for w := 0; w < writers; w++ {
				f.Close(uint32(w))
			}
		})
	}
}
