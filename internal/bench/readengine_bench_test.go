package bench

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Read-engine benchmarks: N-1 read patterns (many writers striped into
// one logical file, many concurrent readers) over a real OS-backed
// store, where positional reads are genuinely parallel. The "serial"
// variants run the pre-engine configuration — per-handle index, one
// exclusive lock per Read, sequential extent gathers — so the engine's
// win is measured against the seed behavior, not a strawman.
const (
	n1Writers   = 16 // data droppings (≥16 per the acceptance criteria)
	n1Readers   = 8  // concurrent reader goroutines (≥8)
	n1Block     = 64 << 10
	n1BlocksPer = 16 // per writer => 16 MiB logical file
	n1ReadSize  = 1 << 20
)

func n1Serial() plfs.Options {
	return plfs.Options{DisableIndexCache: true, ReadWorkers: 1, IndexWorkers: 1}
}

func n1Parallel() plfs.Options { return plfs.Options{} }

// setupN1 writes the striped container once and returns the PLFS
// instance plus the expected logical contents.
func setupN1(b *testing.B, opts plfs.Options) (*plfs.FS, []byte) {
	b.Helper()
	osfs, err := posix.NewOSFS(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	p := plfs.New(osfs, opts)
	want := make([]byte, n1Writers*n1BlocksPer*n1Block)
	f, err := p.Open("/n1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	for w := 0; w < n1Writers; w++ {
		payload := bytes.Repeat([]byte{byte(w + 1)}, n1Block)
		for blk := 0; blk < n1BlocksPer; blk++ {
			off := int64((blk*n1Writers + w) * n1Block)
			copy(want[off:], payload)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for w := 0; w < n1Writers; w++ {
		if err := f.Close(uint32(w)); err != nil {
			b.Fatal(err)
		}
	}
	return p, want
}

// benchN1Read measures n1Readers goroutines each opening the container
// and streaming it end to end — the paper's N-1 checkpoint restart.
func benchN1Read(b *testing.B, opts plfs.Options) {
	p, want := setupN1(b, opts)
	b.SetBytes(int64(len(want)) * n1Readers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errc := make(chan error, n1Readers)
		for r := 0; r < n1Readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				f, err := p.Open("/n1", posix.O_RDONLY, uint32(100+r), 0)
				if err != nil {
					errc <- err
					return
				}
				defer f.Close(uint32(100 + r))
				buf := make([]byte, n1ReadSize)
				for off := int64(0); off < int64(len(want)); off += n1ReadSize {
					n, err := f.Read(buf, off)
					if err != nil || n != n1ReadSize {
						errc <- fmt.Errorf("read at %d: n=%d err=%v", off, n, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			b.Fatal(err)
		}
	}
}

func BenchmarkN1Read_Serial(b *testing.B)   { benchN1Read(b, n1Serial()) }
func BenchmarkN1Read_Parallel(b *testing.B) { benchN1Read(b, n1Parallel()) }

// benchN1FirstOpen measures the cold "first read after open" path that
// dominates checkpoint-restart latency: every iteration drops the cache
// (serial: implicit, each handle rebuilds; parallel: fresh instance) and
// times n1Readers concurrent open+first-read sequences.
func benchN1FirstOpen(b *testing.B, opts plfs.Options) {
	osfs, err := posix.NewOSFS(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	seed := plfs.New(osfs, opts)
	f, err := seed.Open("/n1", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, n1Block)
	for w := 0; w < n1Writers; w++ {
		for blk := 0; blk < n1BlocksPer; blk++ {
			off := int64((blk*n1Writers + w) * n1Block)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for w := 0; w < n1Writers; w++ {
		f.Close(uint32(w))
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := plfs.New(osfs, opts) // cold caches each iteration
		var wg sync.WaitGroup
		for r := 0; r < n1Readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				f, err := p.Open("/n1", posix.O_RDONLY, uint32(100+r), 0)
				if err != nil {
					b.Error(err)
					return
				}
				defer f.Close(uint32(100 + r))
				buf := make([]byte, n1Block)
				if n, err := f.Read(buf, 0); err != nil || n != n1Block {
					b.Errorf("first read: n=%d err=%v", n, err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkN1FirstOpen_Serial(b *testing.B)   { benchN1FirstOpen(b, n1Serial()) }
func BenchmarkN1FirstOpen_Parallel(b *testing.B) { benchN1FirstOpen(b, n1Parallel()) }

// TestN1BenchCorrectness keeps the benchmark honest: both configurations
// must produce identical bytes. Runs in the normal test suite.
func TestN1BenchCorrectness(t *testing.T) {
	for name, opts := range map[string]plfs.Options{"serial": n1Serial(), "parallel": n1Parallel()} {
		t.Run(name, func(t *testing.T) {
			osfs, err := posix.NewOSFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			p := plfs.New(osfs, opts)
			f, err := p.Open("/n1", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, 4*8*1024)
			for w := 0; w < 4; w++ {
				payload := bytes.Repeat([]byte{byte(w + 1)}, 1024)
				for blk := 0; blk < 8; blk++ {
					off := int64((blk*4 + w) * 1024)
					copy(want[off:], payload)
					if _, err := f.Write(payload, off, uint32(w)); err != nil {
						t.Fatal(err)
					}
				}
			}
			got := make([]byte, len(want))
			if n, err := f.Read(got, 0); err != nil || n != len(want) {
				t.Fatalf("read = %d, %v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("benchmark workload corrupted data")
			}
			for w := 0; w < 4; w++ {
				f.Close(uint32(w))
			}
		})
	}
}
