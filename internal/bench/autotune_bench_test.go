package bench

import (
	"bytes"
	"testing"
	"time"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Autotune convergence: the same N-1 strided checkpoint-restart round
// run over service-limited striped backends, three ways — the worst
// static configuration (workers=1, IndexBatch=1), the hand-tuned best,
// and autotune starting from the worst. The controller must climb to
// within 85% of the hand-tuned throughput, from nothing but the byte
// counters.
//
// The round is built so each knob has a real, physical gradient under
// the service-time model:
//
//   - IndexBatch: every buffered-index flush is one serviced backend
//     write, so batch=1 doubles the write-phase service demand.
//   - ReadWorkers: each strided read resolves to extents spread across
//     all three backends (pid -> hostdir -> backend), so parallel
//     preads aggregate independent service slots, exactly like the
//     striped-aggregation benchmarks.
//
// Each backend is a read-service FaultFS over a write-service FaultFS
// (metadata and opens stay free), so the sleeps dominate and the
// throughput ratios are stable across machines. The tuning window is
// set to exactly one round's bytes, so every measurement window has
// identical composition — the climb is deterministic in everything but
// the sleep jitter the assertions leave margin for.
const (
	atPids      = 6       // writer pids = hostdirs; 2 hostdirs per backend
	atBackends  = 3       //
	atBlocksPer = 8       // blocks per pid per round
	atBlock     = 2 << 10 //
	atReadSize  = 32 << 10
	atService   = 150 * time.Microsecond
	// atRoundBytes is what one round moves past the tuner: the write
	// phase plus the full read-back.
	atRoundBytes = 2 * atPids * atBlocksPer * atBlock
)

// autotuneOpts builds the striped, service-limited configuration.
func autotuneOpts() plfs.Options {
	opts := plfs.Options{
		NumHostdirs:        atPids,
		DisableAutoFlatten: true, // keep every round's close identical
		Backends:           make([]posix.FS, atBackends),
	}
	for i := range opts.Backends {
		writeSvc := posix.NewFaultFS(posix.NewMemFS())
		writeSvc.SetServiceTime(posix.FaultWrite, atService)
		readSvc := posix.NewFaultFS(writeSvc)
		readSvc.SetServiceTime(posix.FaultRead, atService)
		opts.Backends[i] = readSvc
	}
	return opts
}

// autotuneRound runs one checkpoint-restart round: every pid writes
// its strided blocks, the whole file is read back, the container is
// retired. With verify set the read-back is checked byte for byte.
func autotuneRound(tb testing.TB, p *plfs.FS, verify bool) {
	tb.Helper()
	f, err := p.Open("/tune", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	for pid := 0; pid < atPids; pid++ {
		payload := bytes.Repeat([]byte{byte(pid + 1)}, atBlock)
		for blk := 0; blk < atBlocksPer; blk++ {
			off := int64((blk*atPids + pid) * atBlock)
			if _, err := f.Write(payload, off, uint32(pid)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	total := atPids * atBlocksPer * atBlock
	buf := make([]byte, atReadSize)
	for off := 0; off < total; off += atReadSize {
		n, err := f.Read(buf, int64(off))
		if err != nil || n != atReadSize {
			tb.Fatalf("read at %d = %d, %v", off, n, err)
		}
		if verify {
			for i := 0; i < n; i += atBlock {
				pid := ((off + i) / atBlock) % atPids
				if buf[i] != byte(pid+1) {
					tb.Fatalf("corruption at offset %d: got %d, want pid %d's byte", off+i, buf[i], pid)
				}
			}
		}
	}
	if err := f.Close(0); err != nil {
		tb.Fatal(err)
	}
	if err := p.Unlink("/tune"); err != nil {
		tb.Fatal(err)
	}
}

// runRounds executes rounds and returns the average per-round wall
// time over the last tailRounds of them — the steady-state measurement.
func runRounds(tb testing.TB, p *plfs.FS, rounds, tailRounds int) time.Duration {
	tb.Helper()
	var tailStart time.Time
	for i := 0; i < rounds; i++ {
		if i == rounds-tailRounds {
			tailStart = time.Now()
		}
		autotuneRound(tb, p, i == 0)
	}
	return time.Since(tailStart) / time.Duration(tailRounds)
}

// TestAutoTuneConverges is the acceptance test: from the worst static
// configuration, the controller must reach >= 85% of the hand-tuned
// static throughput within the round budget, and never apply a knob
// value outside its configured bounds.
func TestAutoTuneConverges(t *testing.T) {
	const tuneRounds, tailRounds = 22, 8

	// Hand-tuned best static configuration.
	best := autotuneOpts()
	best.ReadWorkers, best.WriteWorkers, best.IndexBatch = 8, 8, 512
	bestTail := runRounds(t, plfs.New(nil, best), 2+tailRounds, tailRounds)

	// Deliberately worst static configuration, for the record (a short
	// tail suffices: it only anchors the "actually climbed" check).
	worst := autotuneOpts()
	worst.ReadWorkers, worst.WriteWorkers, worst.IndexBatch = 1, 1, 1
	worstTail := runRounds(t, plfs.New(nil, worst), 1+tailRounds/2, tailRounds/2)

	// Autotune, starting from the worst configuration.
	tuned := autotuneOpts()
	tuned.ReadWorkers, tuned.WriteWorkers, tuned.IndexBatch = 1, 1, 1
	tuned.AutoTune = true
	tuned.TuneWindowBytes = atRoundBytes // one window per round: identical mix
	tp := plfs.New(nil, tuned)
	autoTail := runRounds(t, tp, tuneRounds+tailRounds, tailRounds)

	tput := func(perRound time.Duration) float64 {
		return float64(atRoundBytes) / perRound.Seconds() / 1e6
	}
	t.Logf("steady-state throughput: worst %.2f MB/s, autotuned %.2f MB/s, hand-tuned %.2f MB/s",
		tput(worstTail), tput(autoTail), tput(bestTail))
	t.Logf("autotune state: %+v", tp.Tuner().State())
	for _, d := range tp.Tuner().Decisions() {
		t.Logf("  %s", d)
	}

	// Knob bounds are hard: nothing applied may leave the ladders.
	for _, st := range tp.Tuner().State() {
		if st.Value < st.Min || st.Value > st.Max {
			t.Errorf("knob %s = %d outside bounds [%d, %d]", st.Name, st.Value, st.Min, st.Max)
		}
	}
	for _, d := range tp.Tuner().Decisions() {
		for _, st := range tp.Tuner().State() {
			if d.Knob == st.Name && (d.To < st.Min || d.To > st.Max) {
				t.Errorf("decision %s applied a value outside [%d, %d]", d, st.Min, st.Max)
			}
		}
	}

	// The converged steady state must be within 15% of the hand-tuned
	// best (per-round time at most 1/0.85 of the best's).
	if float64(autoTail) > float64(bestTail)/0.85 {
		t.Fatalf("autotune steady state %.2f MB/s is below 85%% of hand-tuned %.2f MB/s (%.1f%%)",
			tput(autoTail), tput(bestTail), 100*float64(bestTail)/float64(autoTail))
	}
	// And it must have actually climbed: meaningfully above the worst
	// static configuration it started from.
	if float64(autoTail) > 0.8*float64(worstTail) {
		t.Fatalf("autotune round time %v barely improved on the worst static config's %v", autoTail, worstTail)
	}
}

// BenchmarkAutoTuneConverge reports the autotuned steady-state
// bandwidth of the convergence scenario — the bench-smoke hook that
// keeps the controller exercised end to end.
func BenchmarkAutoTuneConverge(b *testing.B) {
	const tuneRounds, tailRounds = 22, 8
	b.SetBytes(int64(tailRounds * atRoundBytes))
	for i := 0; i < b.N; i++ {
		opts := autotuneOpts()
		opts.ReadWorkers, opts.WriteWorkers, opts.IndexBatch = 1, 1, 1
		opts.AutoTune = true
		opts.TuneWindowBytes = atRoundBytes
		p := plfs.New(nil, opts)
		b.StopTimer()
		for r := 0; r < tuneRounds; r++ {
			autotuneRound(b, p, r == 0)
		}
		b.StartTimer()
		for r := 0; r < tailRounds; r++ {
			autotuneRound(b, p, false)
		}
		b.StopTimer()
		if w := p.Tuner().Windows(); w < tuneRounds {
			b.Fatalf("tuner closed %d windows, want >= %d", w, tuneRounds)
		}
		b.StartTimer()
	}
}
