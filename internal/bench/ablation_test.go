package bench

import (
	"strings"
	"testing"

	"ldplfs/internal/fsim"
)

func TestAblationsRenderAllStudies(t *testing.T) {
	out := Ablations()
	for _, want := range []string{"[A1]", "[A2]", "[A3]", "[A4]", "log-only", "no MDS (GPFS)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
}

func TestCacheThresholdControlsTheDip(t *testing.T) {
	// With a 16 MiB threshold, the class D writes at 1,024 cores (~7 MB)
	// fit the cache and the dip vanishes; with the paper's 4 MiB it's
	// there. This proves the Fig. 4b mechanism is the threshold.
	dipAt := func(threshold int64) bool {
		p := fsim.Sierra()
		p.CacheThreshold = threshold
		s := p.BTSeries(fsim.BTClassD, fsim.Fig4bCores)
		return s[fsim.LDPLFS][2] < s[fsim.LDPLFS][1]
	}
	if !dipAt(4 << 20) {
		t.Error("paper threshold (4 MiB) lost the dip")
	}
	if dipAt(16 << 20) {
		t.Error("16 MiB threshold should absorb the 7 MB writes and remove the dip")
	}
}

func TestFUSESegmentSizeClosesTheGap(t *testing.T) {
	// Larger kernel transfer units must monotonically close the gap to
	// ROMIO — segmentation is the FUSE tax.
	p := fsim.Minerva()
	prev := 0.0
	for _, seg := range []int64{64 << 10, 128 << 10, 512 << 10, 2 << 20} {
		job := fsim.DefaultMPIIOTest(64, 1, fsim.FUSE, false)
		job.FUSESegment = seg
		bw := p.MPIIOTest(job)
		if bw <= prev {
			t.Errorf("FUSE bandwidth not monotone in segment size: %v at %d", bw, seg)
		}
		prev = bw
	}
	romio := p.MPIIOTest(fsim.DefaultMPIIOTest(64, 1, fsim.ROMIO, false))
	if prev < 0.9*romio {
		t.Errorf("2 MiB segments should nearly reach ROMIO: %.0f vs %.0f", prev, romio)
	}
}

func TestMDSResilienceSoftensCollapse(t *testing.T) {
	fragile := fsim.Sierra()
	fragile.MDS.LoadK = 12
	tough := fsim.Sierra()
	tough.MDS.LoadK = 480
	f := fragile.FlashBandwidth(fsim.DefaultFlash(3072, fsim.LDPLFS))
	g := tough.FlashBandwidth(fsim.DefaultFlash(3072, fsim.LDPLFS))
	if g <= f {
		t.Errorf("resilient MDS (%.0f) should beat fragile (%.0f) at scale", g, f)
	}
}
