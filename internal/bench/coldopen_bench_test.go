package bench

import (
	"testing"
	"time"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Cold-open benchmarks: the PLFS metadata wall. A container written by
// many ranks accumulates one index dropping per writer; a cold Open/Stat
// must resolve all of them before the first byte is served. Without a
// flattened record that is an O(total-entries) streaming merge (here 16
// writers x 4k entries = 64k records); with one it is an O(extents) load
// of a single checksummed table. This is the index-flattening cure from
// PLFS proper, measured under the shape the motivating papers describe.
const (
	coWriters   = 16
	coEntries   = 4096 // index records per writer
	coBlock     = 32   // bytes per record; keeps the 2 MiB payload incidental
	coFloorSpec = 1.5  // conservative enforced floor (bench target is >= 2x)
)

// setupColdOpen builds the many-writer container once. Writes are issued
// round-robin across the 16 writers' segments, so timestamps interleave
// across 16 regions — the worst realistic shape for the merge (inserts
// rotate across the logical space instead of appending at one tail). The
// clean closes persist the flattened record.
func setupColdOpen(tb testing.TB) *posix.MemFS {
	tb.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		tb.Fatal(err)
	}
	p := plfs.New(mem, plfs.Options{NumHostdirs: 16})
	f, err := p.Open("/backend/many", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	payload := make([]byte, coBlock)
	for e := 0; e < coEntries; e++ {
		for w := 0; w < coWriters; w++ {
			off := int64((w*coEntries + e) * coBlock)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for w := 0; w < coWriters; w++ {
		if err := f.Close(uint32(w)); err != nil {
			tb.Fatal(err)
		}
	}
	return mem
}

// coldOpenOnce opens the container on a cache-cold instance and forces
// the index build via Size (the index-backed half of Stat) plus a first
// read — the plfs_open+plfs_getattr cost LDPLFS pays before an
// application sees byte 0.
func coldOpenOnce(tb testing.TB, mem *posix.MemFS, disableFlattened bool) time.Duration {
	tb.Helper()
	p := plfs.New(mem, plfs.Options{NumHostdirs: 16, DisableFlattenedReads: disableFlattened})
	buf := make([]byte, coBlock)
	start := time.Now()
	f, err := p.Open("/backend/many", posix.O_RDONLY, 9999, 0)
	if err != nil {
		tb.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		tb.Fatal(err)
	}
	if want := int64(coWriters * coEntries * coBlock); size != want {
		tb.Fatalf("cold size = %d, want %d", size, want)
	}
	if _, err := f.Read(buf, 0); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	f.Close(9999)
	return elapsed
}

func benchOpenCold(b *testing.B, disableFlattened bool) {
	mem := setupColdOpen(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldOpenOnce(b, mem, disableFlattened)
	}
}

func BenchmarkOpenColdManyWriters_Flattened(b *testing.B) { benchOpenCold(b, false) }
func BenchmarkOpenColdManyWriters_Merge(b *testing.B)     { benchOpenCold(b, true) }

// TestFlattenedColdOpenFloor is the acceptance check behind the
// benchmarks (a la TestStripedAggregation): at 16 writers x 4k entries,
// the flattened cold open/Stat must beat the raw streaming merge by at
// least coFloorSpec (the bench target is >= 2x; the floor leaves
// headroom for scheduler noise). Best-of-three per side keeps one GC
// pause from failing the build.
func TestFlattenedColdOpenFloor(t *testing.T) {
	mem := setupColdOpen(t)
	best := func(disable bool) time.Duration {
		lo := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := coldOpenOnce(t, mem, disable); d < lo {
				lo = d
			}
		}
		return lo
	}
	flattened := best(false)
	merge := best(true)
	ratio := float64(merge) / float64(flattened)
	t.Logf("cold open/Stat at %d writers x %d entries: merge %v, flattened %v (%.2fx)",
		coWriters, coEntries, merge, flattened, ratio)
	if ratio < coFloorSpec {
		t.Fatalf("flattened cold open only %.2fx faster than the merge (want >= %.1fx): %v vs %v",
			ratio, coFloorSpec, merge, flattened)
	}
}
