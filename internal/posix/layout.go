package posix

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Layout decides which backends hold each path of a striped container.
// Implementations must be pure functions of (path, nbackends): every
// instance over the same backend list must agree on placement without
// coordination, exactly as the mod-N rule always has.
//
// The contract (pinned by the table-driven tests in layout_test.go):
//
//   - Replicas returns 1..Width() distinct backend indices in [0, n),
//     primary first.
//   - The primary (Replicas[0]) equals the classic mod-N owner, so a
//     container written under mod-N reads correctly under a replicated
//     layout and vice versa — migration never moves the primary copy.
//   - Placement is deterministic and stable: the same path always maps
//     to the same replica set, and paths inside one hostdir share it.
type Layout interface {
	// Descriptor returns the canonical descriptor string, e.g. "mod-n"
	// or "replica-2" — the form persisted in the container.
	Descriptor() string
	// Width returns the maximum number of replicas per path (1 for
	// mod-N).
	Width() int
	// Replicas returns the ordered backend indices holding path, given
	// n composed backends. The primary copy is first.
	Replicas(path string, n int) []int
}

// primaryIndex is the classic placement rule shared by every layout:
// hostdir.K maps to K mod n (FNV-1a of the component for non-numeric
// suffixes) and everything else to backend 0.
func primaryIndex(path string, n int) int {
	comp := hostdirComponent(path)
	if comp == "" {
		return 0
	}
	if k, err := strconv.Atoi(comp[len("hostdir."):]); err == nil && k >= 0 {
		return k % n
	}
	// Non-numeric hostdir suffix: fall back to FNV-1a of the component.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(comp); i++ {
		h ^= uint64(comp[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// ModNLayout is the classic single-copy placement: each path lives on
// exactly its primary backend. It is the default layout and is
// byte-identical to the pre-layout StripedFS behavior.
type ModNLayout struct{}

// Descriptor implements Layout.
func (ModNLayout) Descriptor() string { return "mod-n" }

// Width implements Layout.
func (ModNLayout) Width() int { return 1 }

// Replicas implements Layout.
func (ModNLayout) Replicas(path string, n int) []int {
	return []int{primaryIndex(path, n)}
}

// ReplicaLayout places R copies of each path on consecutive backends
// starting at the primary: hostdir.K lands on K mod n, (K+1) mod n, ...
// Canonical paths (container metadata) land on backends 0..R-1, so the
// markers and flattened records survive the canonical backend dying.
type ReplicaLayout struct{ R int }

// Descriptor implements Layout.
func (l ReplicaLayout) Descriptor() string { return fmt.Sprintf("replica-%d", l.R) }

// Width implements Layout.
func (l ReplicaLayout) Width() int { return l.R }

// Replicas implements Layout.
func (l ReplicaLayout) Replicas(path string, n int) []int {
	r := l.R
	if r > n {
		r = n
	}
	out := make([]int, r)
	p := primaryIndex(path, n)
	for i := range out {
		out[i] = (p + i) % n
	}
	return out
}

// layoutBuilder constructs a layout from the descriptor's argument
// part ("" when the descriptor is the bare registered name).
type layoutBuilder func(arg string) (Layout, error)

var (
	layoutMu       sync.Mutex
	layoutRegistry = map[string]layoutBuilder{}
)

// RegisterLayout adds a layout family to the registry under name. A
// descriptor "name" or "name-ARG" resolves to build("") or build(ARG).
// Registering a duplicate name panics — layouts are part of the on-disk
// container identity, so two packages silently fighting over one name
// would corrupt placement.
func RegisterLayout(name string, build layoutBuilder) {
	layoutMu.Lock()
	defer layoutMu.Unlock()
	if _, dup := layoutRegistry[name]; dup {
		panic("posix: duplicate layout " + name)
	}
	layoutRegistry[name] = build
}

func init() {
	RegisterLayout("mod-n", func(arg string) (Layout, error) {
		if arg != "" {
			return nil, fmt.Errorf("layout mod-n takes no argument, got %q", arg)
		}
		return ModNLayout{}, nil
	})
	RegisterLayout("replica", func(arg string) (Layout, error) {
		r, err := strconv.Atoi(arg)
		if err != nil || r < 1 {
			return nil, fmt.Errorf("layout replica-R needs a positive replica count, got %q", arg)
		}
		return ReplicaLayout{R: r}, nil
	})
}

// ParseLayout resolves a descriptor string against the registry. The
// empty descriptor means the default mod-N layout. "name-ARG" splits at
// the last dash when the bare string is not itself a registered name.
func ParseLayout(desc string) (Layout, error) {
	if desc == "" {
		return ModNLayout{}, nil
	}
	layoutMu.Lock()
	build, ok := layoutRegistry[desc]
	if !ok {
		if i := strings.LastIndex(desc, "-"); i > 0 {
			if b, ok2 := layoutRegistry[desc[:i]]; ok2 {
				layoutMu.Unlock()
				return b(desc[i+1:])
			}
		}
		layoutMu.Unlock()
		return nil, fmt.Errorf("unknown layout %q (registered: %s)", desc, layoutNames())
	}
	layoutMu.Unlock()
	return build("")
}

// layoutNames returns the sorted registered names for error messages.
// Caller holds layoutMu.
func layoutNames() string {
	names := make([]string, 0, len(layoutRegistry))
	for n := range layoutRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// LayoutFor parses desc and validates it against a backend count: a
// layout needing more replicas than there are backends is a
// configuration error, not a silent clamp.
func LayoutFor(desc string, nbackends int) (Layout, error) {
	l, err := ParseLayout(desc)
	if err != nil {
		return nil, err
	}
	if nbackends > 0 && l.Width() > nbackends {
		return nil, fmt.Errorf("layout %s needs %d backends, have %d", l.Descriptor(), l.Width(), nbackends)
	}
	return l, nil
}

// Layout-descriptor record framing. The descriptor is part of a
// container's identity, so it is persisted versioned and checksummed:
//
//	magic   u64  "PLFSLYT1"
//	version u32  (currently 1)
//	crc32   u32  IEEE, over the length and descriptor bytes
//	length  u16
//	desc    [length]byte
const (
	// LayoutMagic identifies a layout-descriptor record ("PLFSLYT1").
	LayoutMagic uint64 = 0x504c46534c595431
	// LayoutVersion is the current record version.
	LayoutVersion uint32 = 1
	// layoutHeaderSize is the fixed prefix before the descriptor bytes.
	layoutHeaderSize = 8 + 4 + 4 + 2
)

// MarshalLayoutDescriptor frames desc for persistence in a container.
func MarshalLayoutDescriptor(desc string) []byte {
	if len(desc) > 0xffff {
		desc = desc[:0xffff]
	}
	b := make([]byte, layoutHeaderSize+len(desc))
	binary.LittleEndian.PutUint64(b[0:], LayoutMagic)
	binary.LittleEndian.PutUint32(b[8:], LayoutVersion)
	binary.LittleEndian.PutUint16(b[16:], uint16(len(desc)))
	copy(b[layoutHeaderSize:], desc)
	binary.LittleEndian.PutUint32(b[12:], crc32.ChecksumIEEE(b[16:]))
	return b
}

// UnmarshalLayoutDescriptor validates a framed record and returns the
// descriptor string. It never panics on hostile input (fuzzed by
// FuzzLayoutDescriptorParse) and rejects bad magic, unknown versions,
// truncation, trailing garbage and checksum mismatches.
func UnmarshalLayoutDescriptor(b []byte) (string, error) {
	if len(b) < layoutHeaderSize {
		return "", fmt.Errorf("layout record truncated: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint64(b[0:]); m != LayoutMagic {
		return "", fmt.Errorf("bad layout magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != LayoutVersion {
		return "", fmt.Errorf("unsupported layout version %d", v)
	}
	n := int(binary.LittleEndian.Uint16(b[16:]))
	if len(b) != layoutHeaderSize+n {
		return "", fmt.Errorf("layout record length mismatch: header says %d, have %d", n, len(b)-layoutHeaderSize)
	}
	if got, want := crc32.ChecksumIEEE(b[16:]), binary.LittleEndian.Uint32(b[12:]); got != want {
		return "", fmt.Errorf("layout record checksum mismatch: %#x != %#x", got, want)
	}
	return string(b[layoutHeaderSize:]), nil
}
