package posix

import (
	"testing"

	"ldplfs/internal/iostats"
)

func TestInstrumentFSCounts(t *testing.T) {
	plane := iostats.NewPlane()
	fs := NewInstrumentFS(NewMemFS(), plane)

	fd, err := fs.Open("/f", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(fd, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Pwrite(fd, make([]byte, 50), 200); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := fs.Pread(fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Fstat(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/missing", O_RDONLY, 0); err == nil {
		t.Fatal("open of missing path succeeded")
	}

	ls := plane.Layer("posix")
	if got := ls.OpCount(iostats.Open); got != 2 {
		t.Errorf("open count = %d, want 2", got)
	}
	if got := ls.OpErrors(iostats.Open); got != 1 {
		t.Errorf("open errors = %d, want 1", got)
	}
	if got := ls.OpBytes(iostats.Write); got != 150 {
		t.Errorf("write bytes = %d, want 150", got)
	}
	if got := ls.OpBytes(iostats.Read); got != 64 {
		t.Errorf("read bytes = %d, want 64", got)
	}
	if got := ls.OpCount(iostats.Sync); got != 1 {
		t.Errorf("sync count = %d, want 1", got)
	}
	// Fstat + Close are meta.
	if got := ls.OpCount(iostats.Meta); got != 2 {
		t.Errorf("meta count = %d, want 2", got)
	}
}

// TestInstrumentFSMetaSurface sweeps the long tail of wrapped calls so
// the whole FS surface is known to count (and forward) correctly.
func TestInstrumentFSMetaSurface(t *testing.T) {
	plane := iostats.NewPlane()
	fs := NewInstrumentFS(NewMemFS(), plane)

	fd, err := fs.Open("/f", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.Write(fd, []byte("hello"))
	if _, err := fs.Lseek(fd, 0, SEEK_SET); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, _ := fs.Read(fd, buf); n != 5 || string(buf) != "hello" {
		t.Fatalf("sequential read through instrument = %q (%d)", buf, n)
	}
	if err := fs.Ftruncate(fd, 2); err != nil {
		t.Fatal(err)
	}
	fs.Close(fd)
	fs.Mkdir("/d", 0o755)
	if _, err := fs.Readdir("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Access("/f", F_OK); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/f", 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/g"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}

	ls := plane.Layer("posix")
	if got := ls.OpBytes(iostats.Read); got != 5 {
		t.Errorf("read bytes = %d, want 5", got)
	}
	// Close, Ftruncate, Mkdir, Readdir, Access, Truncate, Rename,
	// Unlink and Rmdir all land in meta.
	if got := ls.OpCount(iostats.Meta); got != 9 {
		t.Errorf("meta count = %d, want 9", got)
	}
}

func TestInstrumentFSObserver(t *testing.T) {
	var events []OpEvent
	fs := NewInstrumentFS(NewMemFS(), nil, WithObserver(func(ev OpEvent) {
		events = append(events, ev)
	}))

	fd, _ := fs.Open("/f", O_CREAT|O_WRONLY, 0o644)
	fs.Write(fd, make([]byte, 10))
	fs.Close(fd)
	fd, _ = fs.Open("/f", O_RDONLY, 0) // reopen: not a create
	fs.Close(fd)
	fs.Mkdir("/d", 0o755)

	want := []OpEvent{
		{Op: iostats.Open, Path: "/f", Created: true},
		{Op: iostats.Write, Path: "/f", Bytes: 10},
		{Op: iostats.Open, Path: "/f"},
		{Op: iostats.Open, Path: "/d", Created: true, Dir: true},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestInstrumentFSLayerName(t *testing.T) {
	plane := iostats.NewPlane()
	fs := NewInstrumentFS(NewMemFS(), plane, WithLayerName("backend0"))
	fs.Stat("/")
	if got := plane.Layer("backend0").OpCount(iostats.Meta); got != 1 {
		t.Fatalf("named layer meta count = %d, want 1", got)
	}
	if fs.Stats() != plane.Layer("backend0") {
		t.Fatal("Stats() is not the registered layer handle")
	}
}

func TestFaultFSUnderInstrument(t *testing.T) {
	// The per-class tallies FaultFS used to expose via OpCount now come
	// from wrapping it in an InstrumentFS on a telemetry plane.
	plane := iostats.NewPlane()
	fs := NewInstrumentFS(NewFaultFS(NewMemFS()), plane, WithLayerName("fault"))
	fd, err := fs.Open("/f", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.Write(fd, make([]byte, 8))
	fs.Close(fd)
	fs.Stat("/f")
	ls := plane.Layer("fault")
	if got := ls.OpCount(iostats.Open); got != 1 {
		t.Errorf("open count = %d, want 1", got)
	}
	if got := ls.OpCount(iostats.Write); got != 1 {
		t.Errorf("write count = %d, want 1", got)
	}
	if got := ls.OpCount(iostats.Meta); got < 1 {
		t.Errorf("meta count = %d, want >= 1", got)
	}
}
