package posix

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestMemFSMatchesOSFS drives identical randomized operation sequences
// against MemFS and a real OS-backed FS and demands byte-identical
// observable behaviour. This is the property that lets the rest of the
// stack trust MemFS as a stand-in for a real POSIX layer.
func TestMemFSMatchesOSFS(t *testing.T) {
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	memfs := NewMemFS()

	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDifferential(t, rand.New(rand.NewSource(seed)), memfs, osfs, 400)
		})
	}
}

// runDifferential applies n random ops to both file systems through
// parallel fd tables and compares every result.
func runDifferential(t *testing.T, rng *rand.Rand, a, b FS, n int) {
	t.Helper()
	dir := fmt.Sprintf("/run%d", rng.Int63())
	if err := a.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := b.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	names := []string{"f0", "f1", "f2", "deep/f3"}
	a.Mkdir(dir+"/deep", 0o755)
	b.Mkdir(dir+"/deep", 0o755)

	type pairFD struct {
		afd, bfd int
		flags    int
	}
	var open []pairFD

	var history []string
	logOp := func(format string, args ...any) {
		history = append(history, fmt.Sprintf(format, args...))
	}
	fail := func(format string, args ...any) {
		t.Helper()
		for _, h := range history {
			t.Log(h)
		}
		t.Fatalf(format, args...)
	}
	check := func(op string, aerr, berr error) bool {
		t.Helper()
		logOp("%s -> mem=%v os=%v", op, aerr, berr)
		if (aerr == nil) != (berr == nil) {
			fail("%s: memfs err=%v osfs err=%v", op, aerr, berr)
		}
		return aerr == nil
	}

	for i := 0; i < n; i++ {
		path := dir + "/" + names[rng.Intn(len(names))]
		switch rng.Intn(10) {
		case 0: // open
			flags := []int{O_RDONLY, O_WRONLY, O_RDWR}[rng.Intn(3)]
			if rng.Intn(2) == 0 {
				flags |= O_CREAT
			}
			if rng.Intn(4) == 0 {
				flags |= O_TRUNC
			}
			if rng.Intn(4) == 0 {
				flags |= O_APPEND
			}
			afd, aerr := a.Open(path, flags, 0o644)
			bfd, berr := b.Open(path, flags, 0o644)
			if check(fmt.Sprintf("Open(%s,%#x)", path, flags), aerr, berr) {
				open = append(open, pairFD{afd, bfd, flags})
			}
		case 1: // close
			if len(open) == 0 {
				continue
			}
			k := rng.Intn(len(open))
			p := open[k]
			check(fmt.Sprintf("Close(fd=%d/%d)", p.afd, p.bfd), a.Close(p.afd), b.Close(p.bfd))
			open = append(open[:k], open[k+1:]...)
		case 2: // write
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			buf := make([]byte, rng.Intn(300))
			rng.Read(buf)
			an, aerr := a.Write(p.afd, buf)
			bn, berr := b.Write(p.bfd, buf)
			if check(fmt.Sprintf("Write(fd=%d/%d len=%d) n=%d/%d", p.afd, p.bfd, len(buf), an, bn), aerr, berr) && an != bn {
				fail("Write n: mem=%d os=%d", an, bn)
			}
		case 3: // read
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			abuf := make([]byte, rng.Intn(300))
			bbuf := make([]byte, len(abuf))
			an, aerr := a.Read(p.afd, abuf)
			bn, berr := b.Read(p.bfd, bbuf)
			if check(fmt.Sprintf("Read(fd=%d/%d len=%d) n=%d/%d", p.afd, p.bfd, len(abuf), an, bn), aerr, berr) {
				if an != bn || !bytes.Equal(abuf[:an], bbuf[:bn]) {
					fail("Read diverged: mem=%d os=%d", an, bn)
				}
			}
		case 4: // pwrite
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			if p.flags&O_APPEND != 0 {
				// pwrite-on-O_APPEND semantics differ between POSIX and
				// Linux; Go's os package refuses it outright. Not exercised.
				continue
			}
			buf := make([]byte, rng.Intn(200))
			rng.Read(buf)
			off := int64(rng.Intn(1000))
			an, aerr := a.Pwrite(p.afd, buf, off)
			bn, berr := b.Pwrite(p.bfd, buf, off)
			if check(fmt.Sprintf("Pwrite(fd=%d/%d len=%d off=%d) n=%d/%d", p.afd, p.bfd, len(buf), off, an, bn), aerr, berr) && an != bn {
				t.Fatalf("Pwrite n: mem=%d os=%d", an, bn)
			}
		case 5: // pread
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			abuf := make([]byte, rng.Intn(200))
			bbuf := make([]byte, len(abuf))
			off := int64(rng.Intn(1200))
			an, aerr := a.Pread(p.afd, abuf, off)
			bn, berr := b.Pread(p.bfd, bbuf, off)
			if check(fmt.Sprintf("Pread(fd=%d/%d len=%d off=%d) n=%d/%d", p.afd, p.bfd, len(abuf), off, an, bn), aerr, berr) {
				if an != bn || !bytes.Equal(abuf[:an], bbuf[:bn]) {
					t.Fatalf("Pread diverged at off %d: mem=%d os=%d", off, an, bn)
				}
			}
		case 6: // lseek
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			off := int64(rng.Intn(500))
			whence := []int{SEEK_SET, SEEK_CUR, SEEK_END}[rng.Intn(3)]
			apos, aerr := a.Lseek(p.afd, off, whence)
			bpos, berr := b.Lseek(p.bfd, off, whence)
			if check(fmt.Sprintf("Lseek(fd=%d/%d off=%d whence=%d)", p.afd, p.bfd, off, whence), aerr, berr) && apos != bpos {
				fail("Lseek pos: mem=%d os=%d", apos, bpos)
			}
		case 7: // stat
			ast, aerr := a.Stat(path)
			bst, berr := b.Stat(path)
			if check("Stat "+path, aerr, berr) {
				if ast.Size != bst.Size || ast.IsDir() != bst.IsDir() {
					t.Fatalf("Stat %s: mem={%d dir=%v} os={%d dir=%v}",
						path, ast.Size, ast.IsDir(), bst.Size, bst.IsDir())
				}
			}
		case 8: // unlink
			check("Unlink "+path, a.Unlink(path), b.Unlink(path))
		case 9: // truncate
			size := int64(rng.Intn(500))
			check(fmt.Sprintf("Truncate(%s, %d)", path, size), a.Truncate(path, size), b.Truncate(path, size))
		}
	}
	for _, p := range open {
		a.Close(p.afd)
		b.Close(p.bfd)
	}

	// Final state comparison over every path.
	for _, name := range names {
		path := dir + "/" + name
		ast, aerr := a.Stat(path)
		bst, berr := b.Stat(path)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("final Stat %s: mem=%v os=%v", path, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		if ast.Size != bst.Size {
			t.Fatalf("final size %s: mem=%d os=%d", path, ast.Size, bst.Size)
		}
		if !ast.IsDir() {
			amem := readAll(t, a, path, ast.Size)
			bos := readAll(t, b, path, bst.Size)
			if !bytes.Equal(amem, bos) {
				t.Fatalf("final content of %s diverged", path)
			}
		}
	}
}

func readAll(t *testing.T, fs FS, path string, size int64) []byte {
	t.Helper()
	fd, err := fs.Open(path, O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close(fd)
	buf := make([]byte, size)
	if size > 0 {
		if err := ReadFull(fs, fd, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}
