package posix

import (
	"strings"
	"testing"
)

// TestLayoutContract pins the layout contract every implementation must
// satisfy: deterministic placement, distinct in-range replica indices,
// a primary identical to the classic mod-N owner, and stable placement
// for every path inside one hostdir.
func TestLayoutContract(t *testing.T) {
	layouts := []struct {
		desc string
	}{
		{"mod-n"},
		{"replica-1"},
		{"replica-2"},
		{"replica-3"},
	}
	paths := []string{
		"/c/.plfsaccess",
		"/c/version",
		"/c/meta/size.7",
		"/c/openhosts/host.3",
		"/c/hostdir.0/dropping.data.1",
		"/c/hostdir.1/dropping.data.1",
		"/c/hostdir.2/dropping.index.9",
		"/c/hostdir.5/dropping.data.2",
		"/c/hostdir.31/dropping.data.4",
		"/c/hostdir.weird/dropping.data.1", // non-numeric suffix: FNV fallback
		"/plain/file.txt",
	}
	for _, tc := range layouts {
		for _, n := range []int{3, 4, 7} {
			l, err := LayoutFor(tc.desc, n)
			if err != nil {
				t.Fatalf("LayoutFor(%q, %d): %v", tc.desc, n, err)
			}
			if got := l.Descriptor(); got != tc.desc {
				t.Errorf("%s: Descriptor() = %q", tc.desc, got)
			}
			if w := l.Width(); w < 1 || w > n {
				t.Errorf("%s/n=%d: Width() = %d out of range", tc.desc, n, w)
			}
			for _, p := range paths {
				reps := l.Replicas(p, n)
				if len(reps) < 1 || len(reps) > l.Width() {
					t.Fatalf("%s/n=%d %s: %d replicas, width %d", tc.desc, n, p, len(reps), l.Width())
				}
				seen := map[int]bool{}
				for _, r := range reps {
					if r < 0 || r >= n {
						t.Fatalf("%s/n=%d %s: replica %d out of range", tc.desc, n, p, r)
					}
					if seen[r] {
						t.Fatalf("%s/n=%d %s: duplicate replica %d in %v", tc.desc, n, p, r, reps)
					}
					seen[r] = true
				}
				// Primary compatibility: every layout agrees with mod-N on
				// where the authoritative copy lives.
				if want := primaryIndex(p, n); reps[0] != want {
					t.Fatalf("%s/n=%d %s: primary %d, mod-N owner %d", tc.desc, n, p, reps[0], want)
				}
				// Determinism: same inputs, same placement.
				again := l.Replicas(p, n)
				for i := range reps {
					if again[i] != reps[i] {
						t.Fatalf("%s/n=%d %s: nondeterministic placement %v vs %v", tc.desc, n, p, reps, again)
					}
				}
			}
			// Colocation: every path below one hostdir shares its set.
			a := l.Replicas("/c/hostdir.5/dropping.data.1", n)
			b := l.Replicas("/c/hostdir.5/dropping.index.2", n)
			if !sameOwners(a, b) {
				t.Fatalf("%s/n=%d: hostdir.5 placement differs per file: %v vs %v", tc.desc, n, a, b)
			}
		}
	}
}

// TestLayoutRebalanceStability pins that growing the replica factor
// never moves existing copies: replica-2's set is a strict prefix of
// replica-3's, so widening a layout only adds copies — re-replication,
// never migration.
func TestLayoutRebalanceStability(t *testing.T) {
	const n = 5
	paths := []string{"/c/hostdir.0/d", "/c/hostdir.3/d", "/c/hostdir.7/d", "/c/meta/size.1"}
	for r := 1; r < n; r++ {
		narrow := ReplicaLayout{R: r}
		wide := ReplicaLayout{R: r + 1}
		for _, p := range paths {
			a, b := narrow.Replicas(p, n), wide.Replicas(p, n)
			if len(b) != len(a)+1 {
				t.Fatalf("replica-%d -> replica-%d on %s: widths %d -> %d", r, r+1, p, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("replica-%d set %v is not a prefix of replica-%d set %v for %s", r, a, r+1, b, p)
				}
			}
		}
	}
}

// TestLayoutParseRejections pins the configuration errors: unknown
// descriptors, malformed arguments, and R > N.
func TestLayoutParseRejections(t *testing.T) {
	cases := []struct {
		desc string
		n    int
		want string // substring of the error, "" = must succeed
	}{
		{"", 3, ""},
		{"mod-n", 1, ""},
		{"replica-2", 2, ""},
		{"replica-3", 3, ""},
		{"replica-4", 3, "needs 4 backends, have 3"},
		{"replica-0", 3, "positive replica count"},
		{"replica--1", 3, "unknown layout"}, // splits at the last dash: family "replica-" is unregistered
		{"replica-x", 3, "positive replica count"},
		{"replica-", 3, "positive replica count"},
		{"mod-n-2", 3, "takes no argument"},
		{"bogus", 3, "unknown layout"},
		{"bogus-7", 3, "unknown layout"},
	}
	for _, tc := range cases {
		l, err := LayoutFor(tc.desc, tc.n)
		if tc.want == "" {
			if err != nil {
				t.Errorf("LayoutFor(%q, %d): unexpected error %v", tc.desc, tc.n, err)
			} else if l == nil {
				t.Errorf("LayoutFor(%q, %d): nil layout", tc.desc, tc.n)
			}
			continue
		}
		if err == nil {
			t.Errorf("LayoutFor(%q, %d): expected error containing %q, got layout %v", tc.desc, tc.n, tc.want, l.Descriptor())
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("LayoutFor(%q, %d): error %q does not contain %q", tc.desc, tc.n, err, tc.want)
		}
	}
}

// TestLayoutDescriptorRoundTrip pins the framed record: canonical
// descriptors survive a marshal/unmarshal round trip and corruption in
// any byte is detected.
func TestLayoutDescriptorRoundTrip(t *testing.T) {
	for _, desc := range []string{"mod-n", "replica-2", "replica-16", ""} {
		rec := MarshalLayoutDescriptor(desc)
		got, err := UnmarshalLayoutDescriptor(rec)
		if err != nil {
			t.Fatalf("round trip %q: %v", desc, err)
		}
		if got != desc {
			t.Fatalf("round trip %q: got %q", desc, got)
		}
		// Flip each byte in turn: every corruption must be rejected.
		for i := range rec {
			bad := make([]byte, len(rec))
			copy(bad, rec)
			bad[i] ^= 0xff
			if _, err := UnmarshalLayoutDescriptor(bad); err == nil {
				t.Fatalf("corruption at byte %d of %q record went undetected", i, desc)
			}
		}
		// Truncation and trailing garbage must be rejected too.
		if _, err := UnmarshalLayoutDescriptor(rec[:len(rec)-1]); err == nil && desc != "" {
			t.Fatalf("truncated %q record went undetected", desc)
		}
		if _, err := UnmarshalLayoutDescriptor(append(append([]byte{}, rec...), 0)); err == nil {
			t.Fatalf("trailing garbage on %q record went undetected", desc)
		}
	}
}

// FuzzLayoutDescriptorParse fuzzes the descriptor record parser: it
// must never panic, and any record it accepts must re-marshal to the
// identical bytes (the record is canonical).
func FuzzLayoutDescriptorParse(f *testing.F) {
	f.Add(MarshalLayoutDescriptor("mod-n"))
	f.Add(MarshalLayoutDescriptor("replica-2"))
	f.Add(MarshalLayoutDescriptor(""))
	f.Add([]byte{})
	f.Add([]byte("PLFSLYT1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		desc, err := UnmarshalLayoutDescriptor(data)
		if err != nil {
			return
		}
		rec := MarshalLayoutDescriptor(desc)
		if string(rec) != string(data) {
			t.Fatalf("accepted record is not canonical: %x != %x", data, rec)
		}
	})
}
