package posix

// Dispatch is the dynamic symbol table of this simulated process. Every
// application-level component in the repository (the bundled UNIX tools, the
// mini-applications, ROMIO's "ufs" ADIO driver) issues its file operations
// through a *Dispatch rather than calling a backend directly — just as a
// dynamically linked binary calls open(2) through the PLT rather than
// jumping into libc.
//
// Interposition works exactly as with LD_PRELOAD: a shim (internal/core's
// LDPLFS) captures the current entries (the "real" symbols, what dlsym
// RTLD_NEXT would return) and installs its own wrappers in their place.
// Multiple shims can stack, mirroring multiple libraries listed in
// LD_PRELOAD — the paper notes tracing tools can be stacked with LDPLFS the
// same way.
//
// A Dispatch is configured at "load time" and must not be mutated while
// calls are in flight; this mirrors the loader, which resolves symbols
// before main runs.
type Dispatch struct {
	OpenFn      func(path string, flags int, mode uint32) (int, error)
	CloseFn     func(fd int) error
	ReadFn      func(fd int, p []byte) (int, error)
	WriteFn     func(fd int, p []byte) (int, error)
	PreadFn     func(fd int, p []byte, off int64) (int, error)
	PwriteFn    func(fd int, p []byte, off int64) (int, error)
	LseekFn     func(fd int, offset int64, whence int) (int64, error)
	FsyncFn     func(fd int) error
	FtruncateFn func(fd int, size int64) error
	FstatFn     func(fd int) (Stat, error)
	StatFn      func(path string) (Stat, error)
	TruncateFn  func(path string, size int64) error
	UnlinkFn    func(path string) error
	MkdirFn     func(path string, mode uint32) error
	RmdirFn     func(path string) error
	ReaddirFn   func(path string) ([]DirEntry, error)
	RenameFn    func(oldpath, newpath string) error
	AccessFn    func(path string, mode int) error
}

// NewDispatch returns a symbol table with every entry bound to fs — the
// state of a process before any preload library has been loaded.
func NewDispatch(fs FS) *Dispatch {
	return &Dispatch{
		OpenFn:      fs.Open,
		CloseFn:     fs.Close,
		ReadFn:      fs.Read,
		WriteFn:     fs.Write,
		PreadFn:     fs.Pread,
		PwriteFn:    fs.Pwrite,
		LseekFn:     fs.Lseek,
		FsyncFn:     fs.Fsync,
		FtruncateFn: fs.Ftruncate,
		FstatFn:     fs.Fstat,
		StatFn:      fs.Stat,
		TruncateFn:  fs.Truncate,
		UnlinkFn:    fs.Unlink,
		MkdirFn:     fs.Mkdir,
		RmdirFn:     fs.Rmdir,
		ReaddirFn:   fs.Readdir,
		RenameFn:    fs.Rename,
		AccessFn:    fs.Access,
	}
}

// Snapshot returns a copy of the current symbol bindings. A shim captures a
// snapshot before installing itself so it can chain to the previous
// implementations (the dlsym(RTLD_NEXT, ...) idiom).
func (d *Dispatch) Snapshot() Dispatch { return *d }

// Restore rebinds every symbol from a snapshot, unloading any shims
// installed since the snapshot was taken.
func (d *Dispatch) Restore(s Dispatch) { *d = s }

// Dispatch itself satisfies FS, so already-interposed tables can be treated
// as a backend (and even stacked).

// Open implements FS.
func (d *Dispatch) Open(path string, flags int, mode uint32) (int, error) {
	return d.OpenFn(path, flags, mode)
}

// Close implements FS.
func (d *Dispatch) Close(fd int) error { return d.CloseFn(fd) }

// Read implements FS.
func (d *Dispatch) Read(fd int, p []byte) (int, error) { return d.ReadFn(fd, p) }

// Write implements FS.
func (d *Dispatch) Write(fd int, p []byte) (int, error) { return d.WriteFn(fd, p) }

// Pread implements FS.
func (d *Dispatch) Pread(fd int, p []byte, off int64) (int, error) { return d.PreadFn(fd, p, off) }

// Pwrite implements FS.
func (d *Dispatch) Pwrite(fd int, p []byte, off int64) (int, error) { return d.PwriteFn(fd, p, off) }

// Lseek implements FS.
func (d *Dispatch) Lseek(fd int, offset int64, whence int) (int64, error) {
	return d.LseekFn(fd, offset, whence)
}

// Fsync implements FS.
func (d *Dispatch) Fsync(fd int) error { return d.FsyncFn(fd) }

// Ftruncate implements FS.
func (d *Dispatch) Ftruncate(fd int, size int64) error { return d.FtruncateFn(fd, size) }

// Fstat implements FS.
func (d *Dispatch) Fstat(fd int) (Stat, error) { return d.FstatFn(fd) }

// Stat implements FS.
func (d *Dispatch) Stat(path string) (Stat, error) { return d.StatFn(path) }

// Truncate implements FS.
func (d *Dispatch) Truncate(path string, size int64) error { return d.TruncateFn(path, size) }

// Unlink implements FS.
func (d *Dispatch) Unlink(path string) error { return d.UnlinkFn(path) }

// Mkdir implements FS.
func (d *Dispatch) Mkdir(path string, mode uint32) error { return d.MkdirFn(path, mode) }

// Rmdir implements FS.
func (d *Dispatch) Rmdir(path string) error { return d.RmdirFn(path) }

// Readdir implements FS.
func (d *Dispatch) Readdir(path string) ([]DirEntry, error) { return d.ReaddirFn(path) }

// Rename implements FS.
func (d *Dispatch) Rename(oldpath, newpath string) error { return d.RenameFn(oldpath, newpath) }

// Access implements FS.
func (d *Dispatch) Access(path string, mode int) error { return d.AccessFn(path, mode) }

var _ FS = (*Dispatch)(nil)
