package posix

import (
	"bytes"
	"errors"
	"testing"
)

func mustOpen(t *testing.T, fs FS, path string, flags int) int {
	t.Helper()
	fd, err := fs.Open(path, flags, 0o644)
	if err != nil {
		t.Fatalf("Open(%q, %#x): %v", path, flags, err)
	}
	return fd
}

func TestMemFSCreateWriteRead(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/a.txt", O_CREAT|O_RDWR)
	payload := []byte("hello, plfs")
	if n, err := fs.Write(fd, payload); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := fs.Lseek(fd, 0, SEEK_SET); err != nil {
		t.Fatalf("Lseek: %v", err)
	}
	got := make([]byte, 64)
	n, err := fs.Read(fd, got)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got[:n], payload) {
		t.Fatalf("Read = %q, want %q", got[:n], payload)
	}
	if n, _ := fs.Read(fd, got); n != 0 {
		t.Fatalf("Read at EOF = %d, want 0", n)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.Close(fd); !errors.Is(err, EBADF) {
		t.Fatalf("double Close = %v, want EBADF", err)
	}
}

func TestMemFSOpenFlags(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.Open("/missing", O_RDONLY, 0); !errors.Is(err, ENOENT) {
		t.Fatalf("Open missing = %v, want ENOENT", err)
	}
	fd := mustOpen(t, fs, "/f", O_CREAT|O_WRONLY)
	if _, err := fs.Write(fd, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	fs.Close(fd)

	if _, err := fs.Open("/f", O_CREAT|O_EXCL|O_WRONLY, 0o644); !errors.Is(err, EEXIST) {
		t.Fatalf("O_EXCL on existing = %v, want EEXIST", err)
	}

	// O_TRUNC empties the file.
	fd = mustOpen(t, fs, "/f", O_WRONLY|O_TRUNC)
	fs.Close(fd)
	st, err := fs.Stat("/f")
	if err != nil || st.Size != 0 {
		t.Fatalf("after O_TRUNC size = %d (%v), want 0", st.Size, err)
	}

	// Write on O_RDONLY fd fails; read on O_WRONLY fd fails.
	fd = mustOpen(t, fs, "/f", O_RDONLY)
	if _, err := fs.Write(fd, []byte("x")); !errors.Is(err, EBADF) {
		t.Fatalf("Write on rdonly = %v, want EBADF", err)
	}
	fs.Close(fd)
	fd = mustOpen(t, fs, "/f", O_WRONLY)
	if _, err := fs.Read(fd, make([]byte, 1)); !errors.Is(err, EBADF) {
		t.Fatalf("Read on wronly = %v, want EBADF", err)
	}
	fs.Close(fd)
}

func TestMemFSAppend(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/log", O_CREAT|O_WRONLY|O_APPEND)
	fs.Write(fd, []byte("aa"))
	// Seeking away must not affect where O_APPEND writes land.
	fs.Lseek(fd, 0, SEEK_SET)
	fs.Write(fd, []byte("bb"))
	fs.Close(fd)
	st, _ := fs.Stat("/log")
	if st.Size != 4 {
		t.Fatalf("append size = %d, want 4", st.Size)
	}
	fd = mustOpen(t, fs, "/log", O_RDONLY)
	buf := make([]byte, 4)
	if err := ReadFull(fs, fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "aabb" {
		t.Fatalf("content = %q, want aabb", buf)
	}
}

func TestMemFSSparseWrite(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/sparse", O_CREAT|O_RDWR)
	if _, err := fs.Pwrite(fd, []byte("end"), 100); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Fstat(fd)
	if st.Size != 103 {
		t.Fatalf("size = %d, want 103", st.Size)
	}
	buf := make([]byte, 103)
	if err := ReadFull(fs, fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, buf[i])
		}
	}
	if string(buf[100:]) != "end" {
		t.Fatalf("tail = %q", buf[100:])
	}
}

func TestMemFSLseek(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/f", O_CREAT|O_RDWR)
	fs.Write(fd, make([]byte, 10))
	cases := []struct {
		off    int64
		whence int
		want   int64
	}{
		{0, SEEK_SET, 0},
		{5, SEEK_CUR, 5},
		{-2, SEEK_CUR, 3},
		{0, SEEK_END, 10},
		{-10, SEEK_END, 0},
		{100, SEEK_SET, 100}, // beyond EOF is legal
	}
	for _, c := range cases {
		got, err := fs.Lseek(fd, c.off, c.whence)
		if err != nil || got != c.want {
			t.Fatalf("Lseek(%d,%d) = %d, %v; want %d", c.off, c.whence, got, err, c.want)
		}
	}
	if _, err := fs.Lseek(fd, -1, SEEK_SET); !errors.Is(err, EINVAL) {
		t.Fatalf("negative seek = %v, want EINVAL", err)
	}
	if _, err := fs.Lseek(fd, 0, 99); !errors.Is(err, EINVAL) {
		t.Fatalf("bad whence = %v, want EINVAL", err)
	}
}

func TestMemFSUnlinkWhileOpen(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/ghost", O_CREAT|O_RDWR)
	fs.Write(fd, []byte("still here"))
	if err := fs.Unlink("/ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/ghost"); !errors.Is(err, ENOENT) {
		t.Fatalf("Stat after unlink = %v, want ENOENT", err)
	}
	buf := make([]byte, 10)
	if err := ReadFull(fs, fd, buf, 0); err != nil {
		t.Fatalf("read through open fd after unlink: %v", err)
	}
	if string(buf) != "still here" {
		t.Fatalf("content = %q", buf)
	}
}

func TestMemFSDirectories(t *testing.T) {
	fs := NewMemFS()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d", 0o755); !errors.Is(err, EEXIST) {
		t.Fatalf("Mkdir twice = %v, want EEXIST", err)
	}
	if err := fs.Mkdir("/no/such/parent", 0o755); !errors.Is(err, ENOENT) {
		t.Fatalf("Mkdir orphan = %v, want ENOENT", err)
	}
	fd := mustOpen(t, fs, "/d/x", O_CREAT|O_WRONLY)
	fs.Close(fd)
	fd = mustOpen(t, fs, "/d/a", O_CREAT|O_WRONLY)
	fs.Close(fd)
	fs.Mkdir("/d/sub", 0o755)

	entries, err := fs.Readdir("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []DirEntry{{"a", false}, {"sub", true}, {"x", false}}
	if len(entries) != len(want) {
		t.Fatalf("Readdir = %v", entries)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Fatalf("Readdir[%d] = %v, want %v", i, entries[i], want[i])
		}
	}

	if err := fs.Rmdir("/d"); !errors.Is(err, ENOTEMPTY) {
		t.Fatalf("Rmdir nonempty = %v, want ENOTEMPTY", err)
	}
	if err := fs.Unlink("/d/sub"); !errors.Is(err, EISDIR) {
		t.Fatalf("Unlink dir = %v, want EISDIR", err)
	}
	if err := fs.Rmdir("/d/x"); !errors.Is(err, ENOTDIR) {
		t.Fatalf("Rmdir file = %v, want ENOTDIR", err)
	}
	fs.Unlink("/d/x")
	fs.Unlink("/d/a")
	if err := fs.Rmdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat("/")
	if !st.IsDir() {
		t.Fatal("root is not a dir")
	}
}

func TestMemFSOpenDirSemantics(t *testing.T) {
	fs := NewMemFS()
	fs.Mkdir("/d", 0o755)
	if _, err := fs.Open("/d", O_WRONLY, 0); !errors.Is(err, EISDIR) {
		t.Fatalf("Open dir for write = %v, want EISDIR", err)
	}
	fd, err := fs.Open("/d", O_RDONLY, 0)
	if err != nil {
		t.Fatalf("Open dir rdonly: %v", err)
	}
	if _, err := fs.Read(fd, make([]byte, 1)); !errors.Is(err, EISDIR) {
		t.Fatalf("Read dir = %v, want EISDIR", err)
	}
	fs.Close(fd)
}

func TestMemFSRename(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/src", O_CREAT|O_WRONLY)
	fs.Write(fd, []byte("data"))
	fs.Close(fd)
	fs.Mkdir("/dir", 0o755)

	if err := fs.Rename("/src", "/dir/dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/src"); !errors.Is(err, ENOENT) {
		t.Fatalf("src survives rename: %v", err)
	}
	st, err := fs.Stat("/dir/dst")
	if err != nil || st.Size != 4 {
		t.Fatalf("dst stat = %+v, %v", st, err)
	}
	// Rename over an existing file replaces it.
	fd = mustOpen(t, fs, "/other", O_CREAT|O_WRONLY)
	fs.Close(fd)
	if err := fs.Rename("/other", "/dir/dst"); err != nil {
		t.Fatal(err)
	}
	st, _ = fs.Stat("/dir/dst")
	if st.Size != 0 {
		t.Fatalf("replaced dst size = %d, want 0", st.Size)
	}
	// Renaming a file over a directory fails.
	fd = mustOpen(t, fs, "/plain", O_CREAT|O_WRONLY)
	fs.Close(fd)
	fs.Mkdir("/destdir", 0o755)
	if err := fs.Rename("/plain", "/destdir"); !errors.Is(err, EISDIR) {
		t.Fatalf("file-over-dir rename = %v, want EISDIR", err)
	}
}

func TestMemFSTruncate(t *testing.T) {
	fs := NewMemFS()
	fd := mustOpen(t, fs, "/t", O_CREAT|O_RDWR)
	fs.Write(fd, []byte("0123456789"))
	if err := fs.Ftruncate(fd, 4); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Fstat(fd)
	if st.Size != 4 {
		t.Fatalf("size = %d, want 4", st.Size)
	}
	if err := fs.Truncate("/t", 8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := ReadFull(fs, fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123\x00\x00\x00\x00" {
		t.Fatalf("content = %q", buf)
	}
	if err := fs.Ftruncate(fd, -1); !errors.Is(err, EINVAL) {
		t.Fatalf("negative truncate = %v, want EINVAL", err)
	}
}

func TestNullFSTracksSizesWithoutData(t *testing.T) {
	fs := NewNullFS()
	fd := mustOpen(t, fs, "/big", O_CREAT|O_RDWR)
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for i := 0; i < 64; i++ {
		if _, err := fs.Write(fd, buf); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := fs.Fstat(fd)
	if st.Size != 64*chunk {
		t.Fatalf("size = %d, want %d", st.Size, 64*chunk)
	}
	// Reads succeed and return zeros.
	got := make([]byte, 16)
	n, err := fs.Pread(fd, got, 64*chunk-8)
	if err != nil || n != 8 {
		t.Fatalf("Pread = %d, %v, want 8", n, err)
	}
	for _, b := range got[:n] {
		if b != 0 {
			t.Fatal("dataless read returned nonzero byte")
		}
	}
	// Truncate adjusts the virtual size.
	if err := fs.Ftruncate(fd, 123); err != nil {
		t.Fatal(err)
	}
	if pos, _ := fs.Lseek(fd, 0, SEEK_END); pos != 123 {
		t.Fatalf("SEEK_END = %d, want 123", pos)
	}
}

func TestMemFSPathCleaning(t *testing.T) {
	fs := NewMemFS()
	fs.Mkdir("/d", 0o755)
	fd := mustOpen(t, fs, "/d/../d/./f", O_CREAT|O_WRONLY)
	fs.Close(fd)
	if _, err := fs.Stat("/d/f"); err != nil {
		t.Fatalf("cleaned path not found: %v", err)
	}
	if _, err := fs.Stat("d/f"); err != nil {
		t.Fatalf("relative path should resolve from root: %v", err)
	}
}

func TestDispatchInterposition(t *testing.T) {
	fs := NewMemFS()
	d := NewDispatch(fs)

	// Install a counting shim over Open, chaining to the previous symbol.
	snap := d.Snapshot()
	opens := 0
	d.OpenFn = func(path string, flags int, mode uint32) (int, error) {
		opens++
		return snap.OpenFn(path, flags, mode)
	}
	fd, err := d.Open("/x", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d.Close(fd)
	if opens != 1 {
		t.Fatalf("shim saw %d opens, want 1", opens)
	}

	// Unloading restores the original symbol.
	d.Restore(snap)
	fd, err = d.Open("/y", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d.Close(fd)
	if opens != 1 {
		t.Fatalf("restored table still routed through shim (%d opens)", opens)
	}
}

func TestMemFSOpenFDs(t *testing.T) {
	fs := NewMemFS()
	fd1 := mustOpen(t, fs, "/a", O_CREAT|O_WRONLY)
	fd2 := mustOpen(t, fs, "/b", O_CREAT|O_WRONLY)
	if got := fs.OpenFDs(); got != 2 {
		t.Fatalf("OpenFDs = %d, want 2", got)
	}
	fs.Close(fd1)
	fs.Close(fd2)
	if got := fs.OpenFDs(); got != 0 {
		t.Fatalf("OpenFDs = %d, want 0", got)
	}
}
