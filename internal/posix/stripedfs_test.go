package posix

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func striped3() (*StripedFS, []*MemFS) {
	backends := []*MemFS{NewMemFS(), NewMemFS(), NewMemFS()}
	return NewStripedFS(backends[0], backends[1], backends[2]), backends
}

// The composite must satisfy the same concurrent positional-I/O contract
// as every other backend — the read and write engines fan goroutines out
// over striped descriptors exactly as over plain ones.
func TestStripedFSConcurrentPread(t *testing.T) {
	s, _ := striped3()
	testConcurrentPread(t, s)
}

func TestStripedFSConcurrentPwrite(t *testing.T) {
	s, _ := striped3()
	testConcurrentPwrite(t, s)
}

// Routed concurrency: the same contract through a hostdir path, so the
// descriptors land on a non-canonical backend.
func TestStripedFSConcurrentPreadRouted(t *testing.T) {
	s, _ := striped3()
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	// Re-run the pwrite contract against a file inside the routed hostdir.
	const chunk, chunks = 1024, 16
	fd, err := s.Open("/c/hostdir.1/dropping.data.1", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, chunk*chunks)
	for i := range data {
		data[i] = byte(i)
	}
	if err := WriteFull(s, fd, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := ReadFull(s, fd, got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("routed pread byte %d = %d want %d", i, got[i], data[i])
		}
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// A striped FS over non-hostdir paths must be observationally identical
// to a plain backend — the same differential rig that validates MemFS
// against the OS validates the composite against MemFS.
func TestStripedFSMatchesMemFS(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s, _ := striped3()
			runDifferential(t, rand.New(rand.NewSource(seed)), s, NewMemFS(), 400)
		})
	}
}

func TestStripedBackendFor(t *testing.T) {
	s, _ := striped3()
	cases := []struct {
		path string
		want int
	}{
		{"/backend/data", 0},
		{"/backend/data/.plfsaccess", 0},
		{"/backend/data/meta/size.3", 0},
		{"/backend/data/openhosts/host.7", 0},
		{"/backend/data/hostdir.0", 0},
		{"/backend/data/hostdir.1/dropping.data.1", 1},
		{"/backend/data/hostdir.2/dropping.index.2", 2},
		{"/backend/data/hostdir.3", 0},  // 3 % 3
		{"/backend/data/hostdir.31", 1}, // 31 % 3
	}
	for _, c := range cases {
		if got := s.BackendFor(c.path); got != c.want {
			t.Errorf("BackendFor(%s) = %d, want %d", c.path, got, c.want)
		}
	}
	// Non-numeric hostdir suffixes still route deterministically and
	// consistently between calls.
	a := s.BackendFor("/x/hostdir.trunc/f")
	if b := s.BackendFor("/x/hostdir.trunc/f"); a != b || a < 0 || a >= 3 {
		t.Fatalf("non-numeric hostdir routing unstable: %d vs %d", a, b)
	}
}

// Droppings must physically land on the backend the placement rule
// names — that is what makes the fan-out real.
func TestStripedPlacement(t *testing.T) {
	s, backends := striped3()
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		hd := fmt.Sprintf("/c/hostdir.%d", k)
		if err := s.Mkdir(hd, 0o755); err != nil {
			t.Fatal(err)
		}
		fd, err := s.Open(fmt.Sprintf("%s/dropping.data.%d", hd, k), O_CREAT|O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Write(fd, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
		s.Close(fd)
	}
	for k := 0; k < 6; k++ {
		want := k % 3
		path := fmt.Sprintf("/c/hostdir.%d/dropping.data.%d", k, k)
		for bi, b := range backends {
			_, err := b.Stat(path)
			if bi == want && err != nil {
				t.Errorf("dropping for hostdir.%d missing on backend %d: %v", k, bi, err)
			}
			if bi != want && err == nil {
				t.Errorf("dropping for hostdir.%d leaked onto backend %d", k, bi)
			}
		}
	}
	// The canonical container files live only on backend 0.
	fd, err := s.Open("/c/.plfsaccess", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	s.Close(fd)
	if _, err := backends[0].Stat("/c/.plfsaccess"); err != nil {
		t.Fatalf("canonical file missing on backend 0: %v", err)
	}
	for bi := 1; bi < 3; bi++ {
		if _, err := backends[bi].Stat("/c/.plfsaccess"); err == nil {
			t.Fatalf("canonical file leaked onto backend %d", bi)
		}
	}
}

// Listing a container directory must surface hostdirs from every
// backend, deduplicated and name-ordered.
func TestStripedReaddirMerge(t *testing.T) {
	s, backends := striped3()
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if err := s.Mkdir(fmt.Sprintf("/c/hostdir.%d", k), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.Readdir("/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("merged Readdir returned %d entries, want 5: %+v", len(entries), entries)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatalf("merged Readdir not name-ordered: %+v", entries)
		}
	}
	// Each shadow backend holds only its own hostdirs under the mirrored
	// container directory.
	for bi, b := range backends {
		es, err := b.Readdir("/c")
		if err != nil {
			t.Fatalf("container dir not mirrored on backend %d: %v", bi, err)
		}
		for _, e := range es {
			if got := s.BackendFor("/c/" + e.Name); got != bi {
				t.Fatalf("backend %d holds %s, which routes to %d", bi, e.Name, got)
			}
		}
	}
}

// Canonical directory lifecycle is mirrored: mkdir creates the skeleton
// everywhere, rename carries it along, rmdir removes it everywhere.
func TestStripedMirrorLifecycle(t *testing.T) {
	s, backends := striped3()
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/c", 0o755); !errors.Is(err, EEXIST) {
		t.Fatalf("second mkdir = %v, want EEXIST", err)
	}
	if err := s.Mkdir("/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("/c", "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("/d/hostdir.1"); err != nil {
		t.Fatalf("hostdir did not follow the rename: %v", err)
	}
	if err := s.Rmdir("/d/hostdir.1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	for bi, b := range backends {
		if _, err := b.Stat("/d"); err == nil {
			t.Fatalf("directory survived rmdir on backend %d", bi)
		}
	}
	// Renaming a dropping across hostdirs on different backends is a
	// cross-device link.
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	s.Mkdir("/c/hostdir.1", 0o755)
	s.Mkdir("/c/hostdir.2", 0o755)
	fd, err := s.Open("/c/hostdir.1/f", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	s.Close(fd)
	if err := s.Rename("/c/hostdir.1/f", "/c/hostdir.2/f"); !errors.Is(err, EXDEV) {
		t.Fatalf("cross-backend rename = %v, want EXDEV", err)
	}
	if err := s.Rename("/c/hostdir.1/f", "/c/hostdir.1/g"); err != nil {
		t.Fatalf("same-backend routed rename: %v", err)
	}
}

// A dropping created under a hostdir whose skeleton never reached the
// owning backend (adoption of a container written before striping, or a
// racing mirror) must be recoverable: Mkdir and O_CREAT rebuild parents.
func TestStripedSkeletonRecovery(t *testing.T) {
	s, backends := striped3()
	// Create the container directory only on the canonical backend,
	// simulating a pre-striping container being adopted.
	if err := backends[0].Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/c/hostdir.1", 0o755); err != nil {
		t.Fatalf("routed mkdir without shadow skeleton: %v", err)
	}
	fd, err := s.Open("/c/hostdir.1/dropping.data.1", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("routed create without shadow skeleton: %v", err)
	}
	s.Close(fd)
	if _, err := backends[1].Stat("/c/hostdir.1/dropping.data.1"); err != nil {
		t.Fatalf("recovered dropping not on owning backend: %v", err)
	}
}
