package posix

import (
	"errors"
	gopath "path"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// StripedFS composes N backends into one FS, the multi-backend layout
// PLFS uses to aggregate bandwidth across file servers: a logical file's
// droppings fan out over independent stores instead of funnelling
// through one.
//
// The placement rule is purely path-based, so every instance over the
// same backend list agrees without coordination:
//
//   - A path containing a hostdir component ("hostdir.K") routes to
//     backend K mod N — hostdirs, and hence data and index droppings,
//     spread deterministically across all backends.
//   - Every other path (container marker, version, meta/, openhosts/,
//     plain files and directories) routes to backend 0, the canonical
//     backend. Container metadata has a single home; only the bulk
//     dropping I/O is striped.
//
// Directory structure is mirrored so each backend can hold its share of
// hostdirs: creating a canonical directory creates it on every backend
// (shadow copies are created with parents, best-effort EEXIST-tolerant),
// removing or renaming one removes or renames it everywhere, and listing
// one merges the per-backend listings. A container written with one
// backend list must be read with the same list, exactly as a PLFS mount
// must keep its backend configuration stable.
//
// File descriptors are scoped to the composite and translated to the
// owning backend, so StripedFS satisfies the full FS contract — including
// concurrent Pread/Pwrite safety, which it inherits from the backends.
type StripedFS struct {
	backends []FS

	mu     sync.Mutex
	fds    map[int]stripedFD
	nextFD int
}

type stripedFD struct {
	backend int
	fd      int
}

// NewStripedFS composes backends into one striped FS. Backend 0 is the
// canonical backend. At least one backend is required; with exactly one,
// the composite degenerates to a pass-through.
func NewStripedFS(backends ...FS) *StripedFS {
	if len(backends) == 0 {
		panic("posix: NewStripedFS needs at least one backend")
	}
	bs := make([]FS, len(backends))
	copy(bs, backends)
	return &StripedFS{backends: bs, fds: make(map[int]stripedFD), nextFD: 3}
}

// NumBackends returns the number of composed backends.
func (s *StripedFS) NumBackends() int { return len(s.backends) }

// Backends returns the composed backends (index 0 is canonical).
func (s *StripedFS) Backends() []FS {
	out := make([]FS, len(s.backends))
	copy(out, s.backends)
	return out
}

// hostdirComponent returns the first "hostdir.*" component of path, or "".
func hostdirComponent(path string) string {
	for _, comp := range strings.Split(gopath.Clean("/"+path), "/") {
		if strings.HasPrefix(comp, "hostdir.") {
			return comp
		}
	}
	return ""
}

// BackendFor returns the index of the backend that owns path under the
// placement rule: hostdir.K routes to K mod N, everything else to 0.
func (s *StripedFS) BackendFor(path string) int {
	comp := hostdirComponent(path)
	if comp == "" {
		return 0
	}
	if k, err := strconv.Atoi(comp[len("hostdir."):]); err == nil && k >= 0 {
		return k % len(s.backends)
	}
	// Non-numeric hostdir suffix: fall back to FNV-1a of the component.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(comp); i++ {
		h ^= uint64(comp[i])
		h *= prime64
	}
	return int(h % uint64(len(s.backends)))
}

// routed reports whether path is owned by a single non-canonical-rule
// backend (it contains a hostdir component) rather than mirrored.
func routed(path string) bool { return hostdirComponent(path) != "" }

func (s *StripedFS) owner(path string) FS { return s.backends[s.BackendFor(path)] }

// mkdirAll creates path and any missing parents on b, tolerating
// existing directories — used to materialise the mirrored directory
// skeleton on shadow backends. The final component is created with mode;
// intermediate parents (whose original modes are unknown here) default
// to 0o755, as os.MkdirAll does.
func mkdirAll(b FS, path string, mode uint32) error {
	clean := gopath.Clean("/" + path)
	if clean == "/" {
		return nil
	}
	comps := strings.Split(clean[1:], "/")
	var prefix string
	var lastErr error
	for i, comp := range comps {
		m := uint32(0o755)
		if i == len(comps)-1 {
			m = mode
		}
		prefix += "/" + comp
		lastErr = b.Mkdir(prefix, m)
		if lastErr != nil && !errors.Is(lastErr, EEXIST) {
			return lastErr
		}
	}
	if errors.Is(lastErr, EEXIST) {
		return nil
	}
	return lastErr
}

// track registers a backend descriptor and returns the composite fd.
func (s *StripedFS) track(backend, fd int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfd := s.nextFD
	s.nextFD++
	s.fds[cfd] = stripedFD{backend: backend, fd: fd}
	return cfd
}

// resolve translates a composite fd to its backend pair.
func (s *StripedFS) resolve(fd int) (FS, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.fds[fd]
	if !ok {
		return nil, -1, EBADF
	}
	return s.backends[e.backend], e.fd, nil
}

// Open implements FS. Creating a dropping inside a hostdir whose
// directory skeleton is missing on the owning backend (a container
// adopted mid-stream, or a mirror that raced) transparently materialises
// the parents first.
func (s *StripedFS) Open(path string, flags int, mode uint32) (int, error) {
	b := s.BackendFor(path)
	fd, err := s.backends[b].Open(path, flags, mode)
	if errors.Is(err, ENOENT) && flags&O_CREAT != 0 && routed(path) {
		if err := mkdirAll(s.backends[b], gopath.Dir(gopath.Clean("/"+path)), 0o755); err != nil {
			return -1, err
		}
		fd, err = s.backends[b].Open(path, flags, mode)
	}
	if err != nil {
		return -1, err
	}
	return s.track(b, fd), nil
}

// Close implements FS.
func (s *StripedFS) Close(fd int) error {
	s.mu.Lock()
	e, ok := s.fds[fd]
	if ok {
		delete(s.fds, fd)
	}
	s.mu.Unlock()
	if !ok {
		return EBADF
	}
	return s.backends[e.backend].Close(e.fd)
}

// Read implements FS.
func (s *StripedFS) Read(fd int, p []byte) (int, error) {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return 0, err
	}
	return b.Read(bfd, p)
}

// Write implements FS.
func (s *StripedFS) Write(fd int, p []byte) (int, error) {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return 0, err
	}
	return b.Write(bfd, p)
}

// Pread implements FS.
func (s *StripedFS) Pread(fd int, p []byte, off int64) (int, error) {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return 0, err
	}
	return b.Pread(bfd, p, off)
}

// Pwrite implements FS.
func (s *StripedFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return 0, err
	}
	return b.Pwrite(bfd, p, off)
}

// Lseek implements FS.
func (s *StripedFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return 0, err
	}
	return b.Lseek(bfd, offset, whence)
}

// Fsync implements FS.
func (s *StripedFS) Fsync(fd int) error {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return err
	}
	return b.Fsync(bfd)
}

// Ftruncate implements FS.
func (s *StripedFS) Ftruncate(fd int, size int64) error {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return err
	}
	return b.Ftruncate(bfd, size)
}

// Fstat implements FS.
func (s *StripedFS) Fstat(fd int) (Stat, error) {
	b, bfd, err := s.resolve(fd)
	if err != nil {
		return Stat{}, err
	}
	return b.Fstat(bfd)
}

// Stat implements FS.
func (s *StripedFS) Stat(path string) (Stat, error) {
	return s.owner(path).Stat(path)
}

// Truncate implements FS.
func (s *StripedFS) Truncate(path string, size int64) error {
	return s.owner(path).Truncate(path, size)
}

// Unlink implements FS.
func (s *StripedFS) Unlink(path string) error {
	return s.owner(path).Unlink(path)
}

// Mkdir implements FS. A routed (hostdir) directory is created only on
// its owning backend; a canonical directory is created on backend 0 with
// authoritative error semantics and mirrored — with parents — onto every
// shadow backend so later hostdirs have a home there.
func (s *StripedFS) Mkdir(path string, mode uint32) error {
	if routed(path) {
		b := s.owner(path)
		err := b.Mkdir(path, mode)
		if errors.Is(err, ENOENT) {
			// Parent skeleton missing on the owning backend; build it.
			if merr := mkdirAll(b, gopath.Dir(gopath.Clean("/"+path)), 0o755); merr != nil {
				return merr
			}
			err = b.Mkdir(path, mode)
		}
		return err
	}
	err0 := s.backends[0].Mkdir(path, mode)
	if err0 != nil && !errors.Is(err0, EEXIST) {
		return err0
	}
	for _, b := range s.backends[1:] {
		if err := mkdirAll(b, path, mode); err != nil {
			return err
		}
	}
	return err0
}

// Rmdir implements FS. Canonical directories come down on every backend
// (shadows first, tolerating directories that never made it there);
// backend 0 is authoritative for the result.
func (s *StripedFS) Rmdir(path string) error {
	if routed(path) {
		return s.owner(path).Rmdir(path)
	}
	for _, b := range s.backends[1:] {
		if err := b.Rmdir(path); err != nil && !errors.Is(err, ENOENT) {
			return err
		}
	}
	return s.backends[0].Rmdir(path)
}

// Readdir implements FS. A canonical directory's listing is the merged,
// name-deduplicated union across backends — this is how a container walk
// discovers hostdirs wherever they live. Backend 0 is authoritative for
// errors; shadows that never mirrored the directory are skipped.
func (s *StripedFS) Readdir(path string) ([]DirEntry, error) {
	if routed(path) {
		return s.owner(path).Readdir(path)
	}
	entries, err := s.backends[0].Readdir(path)
	if err != nil {
		return nil, err
	}
	if len(s.backends) == 1 {
		return entries, nil
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		seen[e.Name] = true
	}
	for _, b := range s.backends[1:] {
		shadow, err := b.Readdir(path)
		if err != nil {
			if errors.Is(err, ENOENT) || errors.Is(err, ENOTDIR) {
				continue
			}
			return nil, err
		}
		for _, e := range shadow {
			if !seen[e.Name] {
				seen[e.Name] = true
				entries = append(entries, e)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// Rename implements FS. Routed paths rename within their owning backend;
// crossing backends is refused (EXDEV, as between real mounts). Canonical
// paths rename on backend 0 first — the authoritative copy, so the
// common failures (destination occupied, permissions) fail fast before
// any shadow moves — then on every shadow holding the old path, carrying
// a container's shadow hostdir trees along.
func (s *StripedFS) Rename(oldpath, newpath string) error {
	if routed(oldpath) || routed(newpath) {
		bo, bn := s.BackendFor(oldpath), s.BackendFor(newpath)
		if bo != bn {
			return EXDEV
		}
		return s.backends[bo].Rename(oldpath, newpath)
	}
	if err := s.backends[0].Rename(oldpath, newpath); err != nil {
		return err
	}
	for _, b := range s.backends[1:] {
		if err := b.Rename(oldpath, newpath); err != nil && !errors.Is(err, ENOENT) {
			return err
		}
	}
	return nil
}

// Access implements FS.
func (s *StripedFS) Access(path string, mode int) error {
	return s.owner(path).Access(path, mode)
}

var _ FS = (*StripedFS)(nil)
