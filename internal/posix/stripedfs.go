package posix

import (
	"errors"
	gopath "path"
	"sort"
	"strings"
	"sync"
	"time"

	"ldplfs/internal/iostats"
)

// StripedFS composes N backends into one FS, the multi-backend layout
// PLFS uses to aggregate bandwidth across file servers: a logical file's
// droppings fan out over independent stores instead of funnelling
// through one.
//
// Placement is delegated to a Layout (see layout.go) and is purely
// path-based, so every instance over the same backend list agrees
// without coordination. Under the default mod-N layout:
//
//   - A path containing a hostdir component ("hostdir.K") routes to
//     backend K mod N — hostdirs, and hence data and index droppings,
//     spread deterministically across all backends.
//   - Every other path (container marker, version, meta/, openhosts/,
//     plain files and directories) routes to backend 0, the canonical
//     backend. Container metadata has a single home; only the bulk
//     dropping I/O is striped.
//
// Under a replica-R layout each path instead has an ordered replica set
// of R backends (primary first, primary identical to the mod-N owner):
// writes fan out to every live replica, reads serve from the primary
// and fail over — or are hedged against a second replica after a
// deadline — and a backend failure degrades the file to its surviving
// replicas instead of losing data. Divergence introduced by degraded
// writes is repaired offline by plfsctl doctor (see internal/plfs's
// replication scanner).
//
// Directory structure is mirrored so each backend can hold its share of
// hostdirs: creating a canonical directory creates it on every backend
// (shadow copies are created with parents, best-effort EEXIST-tolerant),
// removing or renaming one removes or renames it everywhere, and listing
// one merges the per-backend listings. A container written with one
// backend list must be read with the same list, exactly as a PLFS mount
// must keep its backend configuration stable.
//
// File descriptors are scoped to the composite and translated to the
// owning backend(s), so StripedFS satisfies the full FS contract —
// including concurrent Pread/Pwrite safety, which it inherits from the
// backends.
type StripedFS struct {
	backends []FS
	layout   Layout // nil = classic mod-N (single owner per path)
	ropts    ReplicaOptions

	// Replica data-path counters, registered on layer "posix" when a
	// collector is wired (standalone otherwise — Counter is nil-safe).
	readPrimary   *iostats.Counter
	readFailover  *iostats.Counter
	readHedged    *iostats.Counter
	writeDegraded *iostats.Counter

	mu     sync.Mutex
	fds    map[int]*stripedFD
	nextFD int
}

// ReplicaOptions tunes the replica data path of a layout-driven
// StripedFS. The zero value disables hedging and telemetry.
type ReplicaOptions struct {
	// HedgeDeadline races a read against the next replica when the
	// primary has not answered within the deadline — the classic
	// tail-latency hedge against a straggling backend. Zero disables
	// hedging; reads then fail over only on error. Callers typically
	// derive the deadline from the backends' known service time (e.g.
	// a small multiple of the FaultFS per-op service time).
	HedgeDeadline time.Duration

	// HedgeTimer injects the hedge trigger for deterministic tests:
	// given the deadline it returns the channel whose receipt launches
	// the hedge. Nil uses the wall clock (time.After).
	HedgeTimer func(time.Duration) <-chan time.Time

	// Stats registers the replica read/write counters on layer "posix"
	// of the collector. Nil keeps standalone (invisible) counters.
	Stats iostats.Collector
}

// stripedFD is one composite descriptor: the ordered replica set it was
// opened across and the per-replica backend descriptors.
type stripedFD struct {
	mu    sync.Mutex
	path  string
	reps  []int  // owner backend indices, primary first
	bfds  []int  // per-replica backend fd; -1 = not opened (lazy)
	dead  []bool // replica disabled after an error (fd, if any, still closed on Close)
	wrote bool   // opened for writing (every replica opened eagerly)
}

// NewStripedFS composes backends into one striped FS under the classic
// mod-N layout. Backend 0 is the canonical backend. At least one backend
// is required; with exactly one, the composite degenerates to a
// pass-through.
func NewStripedFS(backends ...FS) *StripedFS {
	return NewLayoutFS(nil, ReplicaOptions{}, backends...)
}

// NewLayoutFS composes backends under an explicit layout. A nil layout
// (or ModNLayout) gives the classic single-copy striping; a layout with
// Width > 1 enables the replica data path governed by ropts.
func NewLayoutFS(layout Layout, ropts ReplicaOptions, backends ...FS) *StripedFS {
	if len(backends) == 0 {
		panic("posix: NewStripedFS needs at least one backend")
	}
	bs := make([]FS, len(backends))
	copy(bs, backends)
	s := &StripedFS{
		backends: bs,
		layout:   layout,
		ropts:    ropts,
		fds:      make(map[int]*stripedFD),
		nextFD:   3,
	}
	var layer *iostats.LayerStats
	if ropts.Stats != nil {
		layer = ropts.Stats.Layer("posix")
	}
	s.readPrimary = layer.Counter("replica_read_primary")
	s.readFailover = layer.Counter("replica_read_failover")
	s.readHedged = layer.Counter("replica_read_hedged")
	s.writeDegraded = layer.Counter("replica_write_degraded")
	return s
}

// NumBackends returns the number of composed backends.
func (s *StripedFS) NumBackends() int { return len(s.backends) }

// Backends returns the composed backends (index 0 is canonical).
func (s *StripedFS) Backends() []FS {
	out := make([]FS, len(s.backends))
	copy(out, s.backends)
	return out
}

// Layout returns the placement layout (ModNLayout when none was set).
func (s *StripedFS) Layout() Layout {
	if s.layout == nil {
		return ModNLayout{}
	}
	return s.layout
}

// LayoutWidth returns the effective replica count per path.
func (s *StripedFS) LayoutWidth() int {
	w := s.Layout().Width()
	if w > len(s.backends) {
		w = len(s.backends)
	}
	return w
}

// ReplicasFor returns the ordered replica set owning path.
func (s *StripedFS) ReplicasFor(path string) []int { return s.ownersFor(path) }

// hostdirComponent returns the first "hostdir.*" component of path, or "".
func hostdirComponent(path string) string {
	for _, comp := range strings.Split(gopath.Clean("/"+path), "/") {
		if strings.HasPrefix(comp, "hostdir.") {
			return comp
		}
	}
	return ""
}

// BackendFor returns the index of the backend holding the primary copy
// of path: hostdir.K routes to K mod N, everything else to 0 —
// identical across layouts, so mod-N and replicated instances agree on
// where the authoritative copy lives.
func (s *StripedFS) BackendFor(path string) int {
	return primaryIndex(path, len(s.backends))
}

// routed reports whether path is owned by the hostdir placement rule
// (it contains a hostdir component) rather than the canonical rule.
func routed(path string) bool { return hostdirComponent(path) != "" }

// ownersFor returns the ordered replica set for path; single-element
// under mod-N, which keeps every legacy code path byte-identical.
func (s *StripedFS) ownersFor(path string) []int {
	if s.layout == nil || len(s.backends) == 1 {
		return []int{s.BackendFor(path)}
	}
	return s.layout.Replicas(path, len(s.backends))
}

// replicated reports whether the composite runs a multi-copy layout.
func (s *StripedFS) replicated() bool { return s.layout != nil && s.LayoutWidth() > 1 }

// MkdirAll creates path and any missing parents on b, tolerating
// existing directories — used to materialise the mirrored directory
// skeleton on shadow backends, and by the replication repairer to
// rebuild a revived backend's tree. The final component is created with
// mode; intermediate parents (whose original modes are unknown here)
// default to 0o755, as os.MkdirAll does.
func MkdirAll(b FS, path string, mode uint32) error {
	clean := gopath.Clean("/" + path)
	if clean == "/" {
		return nil
	}
	comps := strings.Split(clean[1:], "/")
	var prefix string
	var lastErr error
	for i, comp := range comps {
		m := uint32(0o755)
		if i == len(comps)-1 {
			m = mode
		}
		prefix += "/" + comp
		lastErr = b.Mkdir(prefix, m)
		if lastErr != nil && !errors.Is(lastErr, EEXIST) {
			return lastErr
		}
	}
	if errors.Is(lastErr, EEXIST) {
		return nil
	}
	return lastErr
}

// mkdirAll is the historical package-internal name.
func mkdirAll(b FS, path string, mode uint32) error { return MkdirAll(b, path, mode) }

// track registers a descriptor entry and returns the composite fd.
func (s *StripedFS) track(e *stripedFD) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfd := s.nextFD
	s.nextFD++
	s.fds[cfd] = e
	return cfd
}

// entry translates a composite fd to its descriptor entry.
func (s *StripedFS) entry(fd int) (*stripedFD, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return e, nil
}

// openOn opens path on backend b, materialising missing parent
// directories when creating (a container adopted mid-stream, a mirror
// that raced, or a revived replica whose skeleton is gone).
func (s *StripedFS) openOn(b int, path string, flags int, mode uint32, retryDirs bool) (int, error) {
	fd, err := s.backends[b].Open(path, flags, mode)
	if errors.Is(err, ENOENT) && flags&O_CREAT != 0 && retryDirs {
		if merr := mkdirAll(s.backends[b], gopath.Dir(gopath.Clean("/"+path)), 0o755); merr != nil {
			return -1, merr
		}
		fd, err = s.backends[b].Open(path, flags, mode)
	}
	return fd, err
}

// Open implements FS. Under mod-N the single owner is opened directly.
// Under a replica layout a write-mode open fans out to every replica
// (succeeding while at least one lives, the rest marked dead for the
// doctor to heal) and a read-mode open takes the first replica that
// answers, leaving the rest to open lazily on failover.
func (s *StripedFS) Open(path string, flags int, mode uint32) (int, error) {
	owners := s.ownersFor(path)
	if len(owners) == 1 {
		b := owners[0]
		fd, err := s.openOn(b, path, flags, mode, routed(path))
		if err != nil {
			return -1, err
		}
		e := &stripedFD{path: path, reps: owners, bfds: []int{fd}, dead: []bool{false}}
		return s.track(e), nil
	}
	e := &stripedFD{
		path: path,
		reps: owners,
		bfds: make([]int, len(owners)),
		dead: make([]bool, len(owners)),
	}
	for i := range e.bfds {
		e.bfds[i] = -1
	}
	var firstErr error
	if flags&O_ACCMODE == O_RDONLY {
		for i, b := range owners {
			fd, err := s.backends[b].Open(path, flags, mode)
			if err == nil {
				e.bfds[i] = fd
				return s.track(e), nil
			}
			e.dead[i] = true
			if firstErr == nil {
				firstErr = err
			}
		}
		return -1, firstErr
	}
	e.wrote = true
	opened := 0
	for i, b := range owners {
		fd, err := s.openOn(b, path, flags, mode, true)
		if err != nil {
			e.dead[i] = true
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.bfds[i] = fd
		opened++
	}
	if opened == 0 {
		return -1, firstErr
	}
	if opened < len(owners) {
		s.writeDegraded.Add(1)
	}
	return s.track(e), nil
}

// Close implements FS: every replica descriptor is released; the first
// error (if any) is reported.
func (s *StripedFS) Close(fd int) error {
	s.mu.Lock()
	e, ok := s.fds[fd]
	if ok {
		delete(s.fds, fd)
	}
	s.mu.Unlock()
	if !ok {
		return EBADF
	}
	var firstErr error
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, bfd := range e.bfds {
		if bfd < 0 {
			continue
		}
		if err := s.backends[e.reps[i]].Close(bfd); err != nil && firstErr == nil {
			firstErr = err
		}
		e.bfds[i] = -1
	}
	return firstErr
}

// live returns a snapshot of the replica indices currently usable for
// I/O (open and not dead), in replica order.
func (e *stripedFD) live() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(e.reps))
	for i := range e.reps {
		if e.bfds[i] >= 0 && !e.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// markDead disables replica i of e.
func (e *stripedFD) markDead(i int) {
	e.mu.Lock()
	e.dead[i] = true
	e.mu.Unlock()
}

// ensureReadable returns an open backend fd for replica i, opening it
// read-only on first use (lazy failover opens). Racing openers are
// reconciled: the loser's fd is closed.
func (s *StripedFS) ensureReadable(e *stripedFD, i int) (int, error) {
	e.mu.Lock()
	if e.dead[i] {
		e.mu.Unlock()
		return -1, EIO
	}
	if e.bfds[i] >= 0 {
		bfd := e.bfds[i]
		e.mu.Unlock()
		return bfd, nil
	}
	e.mu.Unlock()
	fd, err := s.backends[e.reps[i]].Open(e.path, O_RDONLY, 0)
	if err != nil {
		e.markDead(i)
		return -1, err
	}
	e.mu.Lock()
	if e.bfds[i] >= 0 {
		stored := e.bfds[i]
		e.mu.Unlock()
		_ = s.backends[e.reps[i]].Close(fd)
		return stored, nil
	}
	e.bfds[i] = fd
	e.mu.Unlock()
	return fd, nil
}

// Read implements FS. Multi-replica pointer reads serve from the first
// live replica and advance the others' file pointers to match, keeping
// the replica set interchangeable for subsequent pointer I/O.
func (s *StripedFS) Read(fd int, p []byte) (int, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Read(e.bfds[0], p)
	}
	live := e.live()
	if len(live) == 0 {
		return 0, EIO
	}
	var firstErr error
	for k, i := range live {
		n, err := s.backends[e.reps[i]].Read(e.bfds[i], p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			e.markDead(i)
			continue
		}
		for _, j := range live[k+1:] {
			if _, serr := s.backends[e.reps[j]].Lseek(e.bfds[j], int64(n), SEEK_CUR); serr != nil {
				e.markDead(j)
			}
		}
		return n, nil
	}
	return 0, firstErr
}

// Write implements FS: multi-replica pointer writes fan out to every
// live replica; at least one must succeed.
func (s *StripedFS) Write(fd int, p []byte) (int, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Write(e.bfds[0], p)
	}
	return s.fanOut(e, func(b FS, bfd int) (int, error) { return b.Write(bfd, p) })
}

// fanOut applies op to every live replica of e: the primary-most
// success is the reported result, failing replicas are marked dead (a
// degraded write the doctor later heals), and only a total loss is an
// error.
func (s *StripedFS) fanOut(e *stripedFD, op func(b FS, bfd int) (int, error)) (int, error) {
	live := e.live()
	n := -1
	var firstErr error
	for _, i := range live {
		wn, err := op(s.backends[e.reps[i]], e.bfds[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			e.markDead(i)
			s.writeDegraded.Add(1)
			continue
		}
		if n < 0 {
			n = wn
		}
	}
	if n < 0 {
		if firstErr == nil {
			firstErr = EIO
		}
		return 0, firstErr
	}
	return n, nil
}

// Pread implements FS. Multi-replica reads serve from the primary,
// failing over in replica order; with a hedge deadline configured, a
// slow primary is raced against the next replica and the first answer
// wins.
func (s *StripedFS) Pread(fd int, p []byte, off int64) (int, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Pread(e.bfds[0], p, off)
	}
	if s.ropts.HedgeDeadline > 0 {
		return s.hedgedPread(e, p, off)
	}
	var firstErr error
	for i := range e.reps {
		bfd, err := s.ensureReadable(e, i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n, err := s.backends[e.reps[i]].Pread(bfd, p, off)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			e.markDead(i)
			continue
		}
		if i == 0 {
			s.readPrimary.Add(1)
		} else {
			s.readFailover.Add(1)
		}
		return n, nil
	}
	return 0, firstErr
}

// Preadv implements VectorFS. A single-owner descriptor delegates the
// whole vector to its backend; a replica set serves the vector from the
// primary and fails over in replica order, exactly like Pread. Under a
// hedge deadline the vector degrades to per-buffer hedged reads — the
// hedge races private buffers per request, and its deterministic tests
// count those requests, so hedging keeps the scalar shape.
func (s *StripedFS) Preadv(fd int, bufs [][]byte, off int64) (int64, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return Preadv(s.backends[e.reps[0]], e.bfds[0], bufs, off)
	}
	if s.ropts.HedgeDeadline > 0 {
		var total int64
		for _, b := range bufs {
			n, err := s.hedgedPread(e, b, off+total)
			total += int64(n)
			if err != nil {
				return total, err
			}
			if n < len(b) {
				return total, nil // EOF
			}
		}
		return total, nil
	}
	var firstErr error
	for i := range e.reps {
		bfd, err := s.ensureReadable(e, i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n, err := Preadv(s.backends[e.reps[i]], bfd, bufs, off)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			e.markDead(i)
			continue
		}
		if i == 0 {
			s.readPrimary.Add(1)
		} else {
			s.readFailover.Add(1)
		}
		return n, nil
	}
	return 0, firstErr
}

// hedgeTimer returns the channel that triggers a hedge after d.
func (s *StripedFS) hedgeTimer(d time.Duration) <-chan time.Time {
	if s.ropts.HedgeTimer != nil {
		return s.ropts.HedgeTimer(d)
	}
	return time.After(d)
}

// hedgedPread races replicas: the primary read is launched, and if it
// has not answered by the hedge deadline the next replica is launched
// too; the first successful answer wins. Each racer reads into a
// private buffer so a late loser never scribbles on the caller's
// buffer. Errors fail over to further replicas immediately.
func (s *StripedFS) hedgedPread(e *stripedFD, p []byte, off int64) (int, error) {
	type result struct {
		idx int
		n   int
		err error
		buf []byte
	}
	ch := make(chan result, len(e.reps))
	var firstErr error
	next := 0
	inflight := 0
	launch := func() {
		for next < len(e.reps) {
			i := next
			next++
			bfd, err := s.ensureReadable(e, i)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			inflight++
			go func(i, bfd int) {
				buf := make([]byte, len(p))
				n, err := s.backends[e.reps[i]].Pread(bfd, buf, off)
				ch <- result{idx: i, n: n, err: err, buf: buf}
			}(i, bfd)
			return
		}
	}
	launch()
	if inflight == 0 {
		if firstErr == nil {
			firstErr = EIO
		}
		return 0, firstErr
	}
	timer := s.hedgeTimer(s.ropts.HedgeDeadline)
	for inflight > 0 {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				copy(p, r.buf[:r.n])
				if r.idx == 0 {
					s.readPrimary.Add(1)
				} else {
					s.readFailover.Add(1)
				}
				return r.n, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			e.markDead(r.idx)
			launch()
		case <-timer:
			timer = nil // fire at most once; nil channel never selects
			before := inflight
			launch()
			if inflight > before {
				s.readHedged.Add(1)
			}
		}
	}
	return 0, firstErr
}

// Pwrite implements FS: multi-replica writes fan out to every live
// replica at the same offset.
func (s *StripedFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Pwrite(e.bfds[0], p, off)
	}
	return s.fanOut(e, func(b FS, bfd int) (int, error) { return b.Pwrite(bfd, p, off) })
}

// Pwritev implements VectorFS: a single-owner descriptor delegates, a
// replica set fans the whole vector out to every live replica at the
// same offset — one vectored submission per replica instead of one per
// segment per replica.
func (s *StripedFS) Pwritev(fd int, bufs [][]byte, off int64) (int64, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return Pwritev(s.backends[e.reps[0]], e.bfds[0], bufs, off)
	}
	return s.fanOut64(e, func(b FS, bfd int) (int64, error) { return Pwritev(b, bfd, bufs, off) })
}

// fanOut64 is fanOut for int64-counted (vectored) operations.
func (s *StripedFS) fanOut64(e *stripedFD, op func(b FS, bfd int) (int64, error)) (int64, error) {
	live := e.live()
	n := int64(-1)
	var firstErr error
	for _, i := range live {
		wn, err := op(s.backends[e.reps[i]], e.bfds[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			e.markDead(i)
			s.writeDegraded.Add(1)
			continue
		}
		if n < 0 {
			n = wn
		}
	}
	if n < 0 {
		if firstErr == nil {
			firstErr = EIO
		}
		return 0, firstErr
	}
	return n, nil
}

// Lseek implements FS: applied to every live replica so their file
// pointers stay interchangeable; the primary-most result is returned.
func (s *StripedFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	e, err := s.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Lseek(e.bfds[0], offset, whence)
	}
	live := e.live()
	pos := int64(-1)
	var firstErr error
	for _, i := range live {
		p, err := s.backends[e.reps[i]].Lseek(e.bfds[i], offset, whence)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			e.markDead(i)
			continue
		}
		if pos < 0 {
			pos = p
		}
	}
	if pos < 0 {
		if firstErr == nil {
			firstErr = EIO
		}
		return 0, firstErr
	}
	return pos, nil
}

// Fsync implements FS: flushed on every live replica; one durable copy
// is enough to succeed (the rest are marked dead for the doctor).
func (s *StripedFS) Fsync(fd int) error {
	e, err := s.entry(fd)
	if err != nil {
		return err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Fsync(e.bfds[0])
	}
	_, err = s.fanOut(e, func(b FS, bfd int) (int, error) { return 0, b.Fsync(bfd) })
	return err
}

// Ftruncate implements FS: applied to every live replica.
func (s *StripedFS) Ftruncate(fd int, size int64) error {
	e, err := s.entry(fd)
	if err != nil {
		return err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Ftruncate(e.bfds[0], size)
	}
	_, err = s.fanOut(e, func(b FS, bfd int) (int, error) { return 0, b.Ftruncate(bfd, size) })
	return err
}

// Fstat implements FS: the first live replica answers.
func (s *StripedFS) Fstat(fd int) (Stat, error) {
	e, err := s.entry(fd)
	if err != nil {
		return Stat{}, err
	}
	if len(e.reps) == 1 {
		return s.backends[e.reps[0]].Fstat(e.bfds[0])
	}
	var firstErr error
	for _, i := range e.live() {
		st, err := s.backends[e.reps[i]].Fstat(e.bfds[i])
		if err == nil {
			return st, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = EIO
	}
	return Stat{}, firstErr
}

// pathFirst applies op to each owner of path in replica order and
// returns the first success — the read-side semantics for path ops. On
// total failure a live backend's verdict (ENOENT, EACCES, ...) beats a
// dead backend's EIO: the survivor actually looked.
func (s *StripedFS) pathFirst(path string, op func(b FS) error) error {
	owners := s.ownersFor(path)
	if len(owners) == 1 {
		return op(s.backends[owners[0]])
	}
	var firstErr error
	for _, b := range owners {
		err := op(s.backends[b])
		if err == nil {
			return nil
		}
		if firstErr == nil || (errors.Is(firstErr, EIO) && !errors.Is(err, EIO)) {
			firstErr = err
		}
	}
	return firstErr
}

// pathAll applies op to every owner of path and succeeds if at least
// one owner does — the write-side semantics for path ops (a dead
// replica degrades the copy set; the doctor heals it later).
func (s *StripedFS) pathAll(path string, op func(b FS) error) error {
	owners := s.ownersFor(path)
	if len(owners) == 1 {
		return op(s.backends[owners[0]])
	}
	ok := false
	var firstErr error
	for _, b := range owners {
		if err := op(s.backends[b]); err == nil {
			ok = true
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if ok {
		return nil
	}
	return firstErr
}

// Stat implements FS.
func (s *StripedFS) Stat(path string) (Stat, error) {
	owners := s.ownersFor(path)
	if len(owners) == 1 {
		return s.backends[owners[0]].Stat(path)
	}
	var firstErr error
	for _, b := range owners {
		st, err := s.backends[b].Stat(path)
		if err == nil {
			return st, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return Stat{}, firstErr
}

// Truncate implements FS.
func (s *StripedFS) Truncate(path string, size int64) error {
	return s.pathAll(path, func(b FS) error { return b.Truncate(path, size) })
}

// Unlink implements FS.
func (s *StripedFS) Unlink(path string) error {
	return s.pathAll(path, func(b FS) error { return b.Unlink(path) })
}

// Mkdir implements FS. A routed (hostdir) directory is created on every
// owning backend; a canonical directory is created on backend 0 with
// authoritative error semantics and mirrored — with parents — onto every
// shadow backend so later hostdirs have a home there. Under a replica
// layout one surviving owner is enough, and shadow mirror failures are
// tolerated (a dead backend's skeleton is rebuilt when it is healed).
func (s *StripedFS) Mkdir(path string, mode uint32) error {
	if routed(path) {
		return s.pathAll(path, func(b FS) error {
			err := b.Mkdir(path, mode)
			if errors.Is(err, ENOENT) {
				// Parent skeleton missing on the owning backend; build it.
				if merr := mkdirAll(b, gopath.Dir(gopath.Clean("/"+path)), 0o755); merr != nil {
					return merr
				}
				err = b.Mkdir(path, mode)
			}
			return err
		})
	}
	if !s.replicated() {
		err0 := s.backends[0].Mkdir(path, mode)
		if err0 != nil && !errors.Is(err0, EEXIST) {
			return err0
		}
		for _, b := range s.backends[1:] {
			if err := mkdirAll(b, path, mode); err != nil {
				return err
			}
		}
		return err0
	}
	owners := s.ownersFor(path)
	isOwner := make(map[int]bool, len(owners))
	for _, b := range owners {
		isOwner[b] = true
	}
	err0 := s.backends[owners[0]].Mkdir(path, mode)
	ok := err0 == nil || errors.Is(err0, EEXIST)
	for i, b := range s.backends {
		if i == owners[0] {
			continue
		}
		if err := mkdirAll(b, path, mode); err == nil && isOwner[i] {
			ok = true
		}
	}
	if !ok {
		return err0
	}
	if errors.Is(err0, EEXIST) {
		return err0
	}
	return nil
}

// Rmdir implements FS. Canonical directories come down on every backend
// (shadows first, tolerating directories that never made it there);
// backend 0 is authoritative for the result. Under a replica layout a
// dead backend's copy is tolerated — the doctor reconciles it later.
func (s *StripedFS) Rmdir(path string) error {
	if routed(path) {
		return s.pathAll(path, func(b FS) error { return b.Rmdir(path) })
	}
	if !s.replicated() {
		for _, b := range s.backends[1:] {
			if err := b.Rmdir(path); err != nil && !errors.Is(err, ENOENT) {
				return err
			}
		}
		return s.backends[0].Rmdir(path)
	}
	owners := s.ownersFor(path)
	isOwner := make(map[int]bool, len(owners))
	for _, b := range owners {
		isOwner[b] = true
	}
	ok := false
	var ownerErr error
	for i := len(s.backends) - 1; i >= 0; i-- {
		err := s.backends[i].Rmdir(path)
		if !isOwner[i] {
			continue
		}
		switch {
		case err == nil:
			ok = true
		case errors.Is(err, ENOENT):
			// A replica that never materialised the directory.
		case ownerErr == nil || i == owners[0]:
			ownerErr = err
		}
	}
	if ok {
		return nil
	}
	if ownerErr != nil {
		return ownerErr
	}
	return ENOENT
}

// Readdir implements FS. A directory's listing is the merged,
// name-deduplicated union across the backends that may hold entries —
// this is how a container walk discovers hostdirs wherever they live.
// Under mod-N backend 0 is authoritative for canonical errors; under a
// replica layout one answering owner is enough.
func (s *StripedFS) Readdir(path string) ([]DirEntry, error) {
	if routed(path) {
		owners := s.ownersFor(path)
		if len(owners) == 1 {
			return s.backends[owners[0]].Readdir(path)
		}
		return s.mergedReaddir(path, owners, owners)
	}
	if !s.replicated() {
		entries, err := s.backends[0].Readdir(path)
		if err != nil {
			return nil, err
		}
		if len(s.backends) == 1 {
			return entries, nil
		}
		seen := make(map[string]bool, len(entries))
		for _, e := range entries {
			seen[e.Name] = true
		}
		for _, b := range s.backends[1:] {
			shadow, err := b.Readdir(path)
			if err != nil {
				if errors.Is(err, ENOENT) || errors.Is(err, ENOTDIR) {
					continue
				}
				return nil, err
			}
			for _, e := range shadow {
				if !seen[e.Name] {
					seen[e.Name] = true
					entries = append(entries, e)
				}
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
		return entries, nil
	}
	all := make([]int, len(s.backends))
	for i := range all {
		all[i] = i
	}
	return s.mergedReaddir(path, all, s.ownersFor(path))
}

// mergedReaddir merges listings across the scan backends, requiring at
// least one of the owner backends to answer; other failures are
// tolerated (a dead or partially-healed replica must not blind the
// container walk).
func (s *StripedFS) mergedReaddir(path string, scan, owners []int) ([]DirEntry, error) {
	isOwner := make(map[int]bool, len(owners))
	for _, b := range owners {
		isOwner[b] = true
	}
	seen := make(map[string]bool)
	var entries []DirEntry
	ok := false
	var ownerErr error
	for _, i := range scan {
		list, err := s.backends[i].Readdir(path)
		if err != nil {
			if isOwner[i] && ownerErr == nil {
				ownerErr = err
			}
			continue
		}
		if isOwner[i] {
			ok = true
		}
		for _, e := range list {
			if !seen[e.Name] {
				seen[e.Name] = true
				entries = append(entries, e)
			}
		}
	}
	if !ok {
		if ownerErr == nil {
			ownerErr = ENOENT
		}
		return nil, ownerErr
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// sameOwners reports whether two replica sets are identical.
func sameOwners(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rename implements FS. Routed paths rename within their owning replica
// set; a rename that would move data between replica sets is refused
// (EXDEV, as between real mounts). Canonical paths rename on backend 0
// first — the authoritative copy, so the common failures (destination
// occupied, permissions) fail fast before any shadow moves — then on
// every shadow holding the old path, carrying a container's shadow
// hostdir trees along.
func (s *StripedFS) Rename(oldpath, newpath string) error {
	if routed(oldpath) || routed(newpath) {
		oo, no := s.ownersFor(oldpath), s.ownersFor(newpath)
		if !sameOwners(oo, no) {
			return EXDEV
		}
		return s.pathAll(oldpath, func(b FS) error { return b.Rename(oldpath, newpath) })
	}
	if !s.replicated() {
		if err := s.backends[0].Rename(oldpath, newpath); err != nil {
			return err
		}
		for _, b := range s.backends[1:] {
			if err := b.Rename(oldpath, newpath); err != nil && !errors.Is(err, ENOENT) {
				return err
			}
		}
		return nil
	}
	owners := s.ownersFor(oldpath)
	isOwner := make(map[int]bool, len(owners))
	for _, b := range owners {
		isOwner[b] = true
	}
	ok := false
	var ownerErr error
	for i, b := range s.backends {
		err := b.Rename(oldpath, newpath)
		if !isOwner[i] {
			continue
		}
		switch {
		case err == nil:
			ok = true
		case errors.Is(err, ENOENT):
		case ownerErr == nil || i == owners[0]:
			ownerErr = err
		}
	}
	if ok {
		return nil
	}
	if ownerErr != nil {
		return ownerErr
	}
	return ENOENT
}

// Access implements FS.
func (s *StripedFS) Access(path string, mode int) error {
	return s.pathFirst(path, func(b FS) error { return b.Access(path, mode) })
}

var _ FS = (*StripedFS)(nil)
var _ VectorFS = (*StripedFS)(nil)
