package posix

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newOS(t *testing.T) *OSFS {
	t.Helper()
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestOSFSBasicRoundTrip(t *testing.T) {
	fs := newOS(t)
	fd, err := fs.Open("/f.txt", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(fd, []byte("on real disk")); err != nil {
		t.Fatal(err)
	}
	if pos, err := fs.Lseek(fd, 0, SEEK_SET); err != nil || pos != 0 {
		t.Fatalf("lseek = %d, %v", pos, err)
	}
	buf := make([]byte, 32)
	n, err := fs.Read(fd, buf)
	if err != nil || string(buf[:n]) != "on real disk" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); !errors.Is(err, EBADF) {
		t.Fatalf("double close = %v", err)
	}
}

func TestOSFSChrootConfinement(t *testing.T) {
	root := t.TempDir()
	fs, err := NewOSFS(root)
	if err != nil {
		t.Fatal(err)
	}
	// Escaping paths are cleaned back inside the root.
	fd, err := fs.Open("/../../../../escape-attempt", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close(fd)
	// The file must have landed under the root, not four levels up.
	if _, err := os.Stat(filepath.Join(root, "escape-attempt")); err != nil {
		t.Fatalf("escape attempt did not stay under root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "..", "escape-attempt")); err == nil {
		t.Fatal("file escaped the root")
	}
	if fs.Root() != root {
		t.Fatalf("Root() = %s", fs.Root())
	}
}

func TestOSFSErrnoMapping(t *testing.T) {
	fs := newOS(t)
	if _, err := fs.Open("/missing", O_RDONLY, 0); !errors.Is(err, ENOENT) {
		t.Fatalf("missing open = %v", err)
	}
	fd, _ := fs.Open("/x", O_CREAT|O_WRONLY, 0o644)
	fs.Close(fd)
	if _, err := fs.Open("/x", O_CREAT|O_EXCL|O_WRONLY, 0o644); !errors.Is(err, EEXIST) {
		t.Fatalf("EXCL = %v", err)
	}
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/d"); !errors.Is(err, EISDIR) {
		t.Fatalf("unlink dir = %v", err)
	}
	if err := fs.Rmdir("/x"); !errors.Is(err, ENOTDIR) {
		t.Fatalf("rmdir file = %v", err)
	}
	fd, _ = fs.Open("/d/child", O_CREAT|O_WRONLY, 0o644)
	fs.Close(fd)
	if err := fs.Rmdir("/d"); !errors.Is(err, ENOTEMPTY) {
		t.Fatalf("rmdir nonempty = %v", err)
	}
}

func TestOSFSReaddirSorted(t *testing.T) {
	fs := newOS(t)
	for _, name := range []string{"/c", "/a", "/b"} {
		fd, _ := fs.Open(name, O_CREAT|O_WRONLY, 0o644)
		fs.Close(fd)
	}
	fs.Mkdir("/dir", 0o755)
	entries, err := fs.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, e := range entries {
		names = append(names, e.Name)
	}
	want := []string{"a", "b", "c", "dir"}
	if len(names) != len(want) {
		t.Fatalf("entries = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("entries[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if !entries[3].IsDir {
		t.Fatal("dir bit lost")
	}
}

func TestOSFSStatAndTruncate(t *testing.T) {
	fs := newOS(t)
	fd, _ := fs.Open("/t", O_CREAT|O_RDWR, 0o644)
	fs.Write(fd, make([]byte, 100))
	st, err := fs.Fstat(fd)
	if err != nil || st.Size != 100 || st.IsDir() {
		t.Fatalf("fstat = %+v, %v", st, err)
	}
	if err := fs.Ftruncate(fd, 10); err != nil {
		t.Fatal(err)
	}
	if st, _ := fs.Stat("/t"); st.Size != 10 {
		t.Fatalf("size after ftruncate = %d", st.Size)
	}
	if err := fs.Truncate("/t", 60); err != nil {
		t.Fatal(err)
	}
	if pos, _ := fs.Lseek(fd, 0, SEEK_END); pos != 60 {
		t.Fatalf("SEEK_END = %d", pos)
	}
	fs.Close(fd)
}

func TestOSFSRejectsNonDirRoot(t *testing.T) {
	f := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOSFS(f); err == nil {
		t.Fatal("file accepted as root")
	}
	if _, err := NewOSFS(filepath.Join(f, "missing")); err == nil {
		t.Fatal("missing dir accepted as root")
	}
}

func TestPLFSOnOSFS(t *testing.T) {
	// The dedicated OSFS test for the stack that e2e exercises: a quick
	// sanity that Fsync and Pread/Pwrite hit the real kernel paths.
	fs := newOS(t)
	fd, err := fs.Open("/direct", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Pwrite(fd, []byte("abcdef"), 3); err != nil {
		t.Fatal(err)
	}
	if err := fs.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if n, err := fs.Pread(fd, buf, 3); err != nil || n != 6 || string(buf) != "abcdef" {
		t.Fatalf("pread = %q (%d), %v", buf[:n], n, err)
	}
	// Hole at the front.
	if n, err := fs.Pread(fd, buf[:3], 0); err != nil || n != 3 || buf[0] != 0 {
		t.Fatalf("hole = %v (%d), %v", buf[:n], n, err)
	}
	fs.Close(fd)
}
