// Package posix defines a POSIX-like virtual file system layer: the FS
// interface (open/read/write/lseek/... operating on integer file
// descriptors), a set of interchangeable backends (OSFS, MemFS, NullFS), and
// the Dispatch symbol table through which every "application" in this
// repository issues its file operations.
//
// Dispatch is the Go analogue of the libc dynamic symbol table: LDPLFS
// (internal/core) interposes itself by swapping Dispatch entries, exactly as
// the Linux loader swaps open/read/write symbols when LD_PRELOAD names a
// shim library.
//
// # Composite backends and layouts
//
// StripedFS composes N backends into one FS. Which backends hold a path
// is decided by a Layout — a pure function of (path, N), so every
// instance over the same backend list agrees on placement without any
// coordination, exactly as PLFS mounts agree on hostdir placement.
// Layouts are registered by name (RegisterLayout) and selected by
// descriptor string, the form persisted inside a container:
//
//   - "mod-n" (default): hostdir.K lives on backend K mod N; canonical
//     paths (container markers, meta/, openhosts/) live on backend 0.
//     One copy of everything — the classic bandwidth-aggregation
//     layout, byte-identical to the pre-layout StripedFS.
//   - "replica-R": each path lives on R consecutive backends starting
//     at its mod-N primary; canonical paths live on backends 0..R-1.
//     Writes fan out to every live replica, reads serve from the
//     primary and fail over on error — or race a second replica after
//     a hedge deadline (ReplicaOptions) — and plfsctl doctor re-
//     replicates whatever a dead backend missed.
//
// The layout contract, pinned by the table tests in layout_test.go:
// Replicas(path, n) returns 1..Width() distinct indices in [0, n),
// primary first; the primary always equals the mod-N owner (so data
// written under one layout is found under another and migration never
// moves the authoritative copy); placement is deterministic, and every
// path below one hostdir shares that hostdir's replica set. LayoutFor
// rejects a descriptor whose Width exceeds the backend count.
//
// FaultFS wraps any FS with programmable fault injection — per-op error
// rules, service-time modelling (global and per-path slots), whole-
// backend Kill/Revive, and deterministic fault schedules driven by
// operation counts or an injected clock — the substrate for the chaos
// tests that prove the replica data path survives a backend dying
// mid-write.
package posix
