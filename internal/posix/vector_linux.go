//go:build linux

package posix

import (
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// iovMax caps the iovec count of one preadv/pwritev submission — the
// kernel's IOV_MAX. Longer vectors are issued in successive syscalls,
// still far below one syscall per buffer.
const iovMax = 1024

// iovPool recycles iovec scratch arrays across vectored submissions so
// the raw-syscall path allocates nothing per call.
var iovPool = sync.Pool{New: func() any {
	s := make([]syscall.Iovec, 0, iovMax)
	return &s
}}

// Preadv implements VectorFS over the real preadv(2): the whole extent
// batch is one syscall (per iovMax window) instead of one pread per
// buffer.
func (o *OSFS) Preadv(fd int, bufs [][]byte, off int64) (int64, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	n, rerr := sysReadv(h.f, bufs, off)
	return n, mapOSError(rerr)
}

// Pwritev implements VectorFS over the real pwritev(2).
func (o *OSFS) Pwritev(fd int, bufs [][]byte, off int64) (int64, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	n, werr := sysWritev(h.f, bufs, off)
	return n, mapOSError(werr)
}

var _ VectorFS = (*OSFS)(nil)

// offsLoHi splits a file offset into the pos_l/pos_h register pair of
// the preadv/pwritev ABI: the low word carries the full offset on
// 64-bit (the high word shifts out in the kernel), the pair splits it
// on 32-bit.
func offsLoHi(off int64) (lo, hi uintptr) {
	return uintptr(off), uintptr(uint64(off) >> (bits.UintSize - 1) >> 1)
}

// buildIovec assembles the iovec window for the vector position (bi,
// bo): buffer index and intra-buffer offset. It reuses iov's backing
// array and returns the window plus its byte span.
func buildIovec(iov []syscall.Iovec, bufs [][]byte, bi, bo int) ([]syscall.Iovec, int64) {
	iov = iov[:0]
	var span int64
	for i := bi; i < len(bufs) && len(iov) < iovMax; i++ {
		b := bufs[i]
		if i == bi {
			b = b[bo:]
		}
		if len(b) == 0 {
			continue
		}
		var v syscall.Iovec
		v.Base = &b[0]
		v.SetLen(len(b))
		iov = append(iov, v)
		span += int64(len(b))
	}
	return iov, span
}

// advance moves the vector position (bi, bo) forward by n bytes.
func advance(bufs [][]byte, bi, bo, n int) (int, int) {
	for n > 0 && bi < len(bufs) {
		room := len(bufs[bi]) - bo
		if n < room {
			return bi, bo + n
		}
		n -= room
		bi++
		bo = 0
	}
	return bi, bo
}

// sysReadv drives preadv(2) to completion: short reads resume mid-
// vector, EINTR retries, EOF returns the partial total with a nil
// error. The descriptor is kept alive across the raw syscalls.
func sysReadv(f *os.File, bufs [][]byte, off int64) (int64, error) {
	defer runtime.KeepAlive(f)
	scratch := iovPool.Get().(*[]syscall.Iovec)
	defer iovPool.Put(scratch)
	var total int64
	bi, bo := 0, 0
	for {
		iov, span := buildIovec((*scratch)[:0], bufs, bi, bo)
		if span == 0 {
			return total, nil
		}
		lo, hi := offsLoHi(off + total)
		n, _, errno := syscall.Syscall6(syscall.SYS_PREADV, f.Fd(),
			uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)), lo, hi, 0)
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return total, os.NewSyscallError("preadv", errno)
		}
		if n == 0 {
			return total, nil // EOF
		}
		total += int64(n)
		bi, bo = advance(bufs, bi, bo, int(n))
	}
}

// sysWritev drives pwritev(2) to completion, returning the durable
// prefix on error.
func sysWritev(f *os.File, bufs [][]byte, off int64) (int64, error) {
	defer runtime.KeepAlive(f)
	scratch := iovPool.Get().(*[]syscall.Iovec)
	defer iovPool.Put(scratch)
	var total int64
	bi, bo := 0, 0
	for {
		iov, span := buildIovec((*scratch)[:0], bufs, bi, bo)
		if span == 0 {
			return total, nil
		}
		lo, hi := offsLoHi(off + total)
		n, _, errno := syscall.Syscall6(syscall.SYS_PWRITEV, f.Fd(),
			uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)), lo, hi, 0)
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return total, os.NewSyscallError("pwritev", errno)
		}
		if n == 0 {
			return total, fmt.Errorf("pwritev returned 0")
		}
		total += int64(n)
		bi, bo = advance(bufs, bi, bo, int(n))
	}
}
