package posix

import (
	gopath "path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with POSIX-faithful semantics: fds keep unlinked
// files alive, O_APPEND writes are atomic with respect to concurrent
// appenders, and directory operations behave like a local Unix file system.
// It is the default substrate for tests and functional experiment runs.
//
// A MemFS created by NewNullFS is "dataless": it tracks file sizes and
// metadata exactly, stores real bytes only while a file stays small (so
// PLFS's own index droppings and size hints still read back), and spills
// to size-only tracking once a file outgrows the keep threshold (reads of
// spilled files return zeros). This is what lets paper-scale workloads
// (136 GB BT class D, 630 GB FLASH-IO) run with exact op streams on a
// laptop.
type MemFS struct {
	mu       sync.Mutex
	root     *memNode
	fds      map[int]*memFD
	nextFD   int
	nextIn   uint64
	clock    int64 // logical nanoseconds, bumped per mutation for ordering
	dataless bool
	keep     int64 // dataless mode: max bytes kept per file before spilling
}

type memNode struct {
	ino      uint64
	mode     uint32
	data     []byte
	spilled  bool                // dataless mode: payload discarded
	vsize    int64               // size when the FS is dataless
	children map[string]*memNode // non-nil iff directory
	nlink    int
	mtime    int64
	atime    int64
	ctime    int64
}

type memFD struct {
	node  *memNode
	off   int64
	flags int
	path  string
}

// NewMemFS returns an empty in-memory file system rooted at "/".
func NewMemFS() *MemFS {
	fs := &MemFS{
		fds:    make(map[int]*memFD),
		nextFD: 3, // 0,1,2 reserved, as on a real process
		nextIn: 2,
	}
	fs.root = &memNode{ino: 1, mode: ModeDir | 0o755, children: make(map[string]*memNode), nlink: 2}
	return fs
}

// NullFSKeepBytes is the per-file byte budget a dataless MemFS retains
// before spilling to size-only tracking. 4 MiB holds any realistic index
// dropping while discarding bulk data payloads.
const NullFSKeepBytes = 4 << 20

// NewNullFS returns a dataless MemFS: identical namespace and size
// semantics; files larger than NullFSKeepBytes spill their payload and
// read back as zeros.
func NewNullFS() *MemFS {
	fs := NewMemFS()
	fs.dataless = true
	fs.keep = NullFSKeepBytes
	return fs
}

func (fs *MemFS) tick() int64 {
	fs.clock++
	return fs.clock
}

func (fs *MemFS) sizeOf(n *memNode) int64 {
	if fs.dataless {
		return n.vsize
	}
	return int64(len(n.data))
}

// spill discards a dataless node's payload, keeping only its size.
func spill(n *memNode) {
	n.spilled = true
	n.data = nil
}

func splitPath(p string) []string {
	p = gopath.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks to the node at path. Caller holds fs.mu.
func (fs *MemFS) lookup(path string) (*memNode, error) {
	n := fs.root
	for _, part := range splitPath(path) {
		if n.children == nil {
			return nil, ENOTDIR
		}
		c, ok := n.children[part]
		if !ok {
			return nil, ENOENT
		}
		n = c
	}
	return n, nil
}

// lookupParent returns the parent directory node and the final path element.
// Caller holds fs.mu.
func (fs *MemFS) lookupParent(path string) (*memNode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", EINVAL
	}
	n := fs.root
	for _, part := range parts[:len(parts)-1] {
		if n.children == nil {
			return nil, "", ENOTDIR
		}
		c, ok := n.children[part]
		if !ok {
			return nil, "", ENOENT
		}
		n = c
	}
	if n.children == nil {
		return nil, "", ENOTDIR
	}
	return n, parts[len(parts)-1], nil
}

func (fs *MemFS) allocFD(n *memNode, flags int, path string) int {
	fd := fs.nextFD
	fs.nextFD++
	fs.fds[fd] = &memFD{node: n, flags: flags, path: path}
	return fd
}

// Open implements FS.
func (fs *MemFS) Open(path string, flags int, mode uint32) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	node, err := fs.lookup(path)
	switch {
	case err == nil:
		if flags&O_CREAT != 0 && flags&O_EXCL != 0 {
			return -1, EEXIST
		}
		if node.children != nil && flags&O_ACCMODE != O_RDONLY {
			return -1, EISDIR
		}
		if flags&O_TRUNC != 0 && node.children == nil {
			node.data = nil
			node.vsize = 0
			node.spilled = false
			node.mtime = fs.tick()
		}
	case err == ENOENT && flags&O_CREAT != 0:
		parent, name, perr := fs.lookupParent(path)
		if perr != nil {
			return -1, perr
		}
		fs.nextIn++
		node = &memNode{ino: fs.nextIn, mode: mode &^ ModeDir, nlink: 1, mtime: fs.tick(), ctime: fs.clock}
		parent.children[name] = node
		parent.mtime = fs.clock
	default:
		return -1, err
	}
	return fs.allocFD(node, flags, gopath.Clean("/"+path)), nil
}

func (fs *MemFS) fd(fd int) (*memFD, error) {
	f, ok := fs.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return f, nil
}

// Close implements FS.
func (fs *MemFS) Close(fd int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.fds[fd]; !ok {
		return EBADF
	}
	delete(fs.fds, fd)
	return nil
}

// Read implements FS.
func (fs *MemFS) Read(fd int, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	n, err := fs.preadLocked(f, p, f.off)
	f.off += int64(n)
	return n, err
}

// Write implements FS.
func (fs *MemFS) Write(fd int, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	off := f.off
	if f.flags&O_APPEND != 0 {
		off = fs.sizeOf(f.node)
	}
	n, err := fs.pwriteLocked(f, p, off)
	if err == nil {
		// A failed write leaves the file pointer untouched, as on Linux.
		f.off = off + int64(n)
	}
	return n, err
}

// Pread implements FS. Positional reads are safe to issue concurrently
// on one descriptor: the FS-wide mutex serializes them internally, so
// callers (the PLFS scatter-gather engine) may fan out freely.
func (fs *MemFS) Pread(fd int, p []byte, off int64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	return fs.preadLocked(f, p, off)
}

func (fs *MemFS) preadLocked(f *memFD, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if f.flags&O_ACCMODE == O_WRONLY {
		return 0, EBADF
	}
	if f.node.children != nil {
		return 0, EISDIR
	}
	if off < 0 {
		return 0, EINVAL
	}
	size := fs.sizeOf(f.node)
	if off >= size {
		return 0, nil // EOF
	}
	f.node.atime = fs.tick()
	if fs.dataless {
		n := size - off
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		// Unspilled small files serve real bytes; spilled ones read zeros.
		if !f.node.spilled && off < int64(len(f.node.data)) {
			stored := copy(p[:n], f.node.data[off:])
			for i := stored; int64(i) < n; i++ {
				p[i] = 0
			}
			return int(n), nil
		}
		for i := int64(0); i < n; i++ {
			p[i] = 0
		}
		return int(n), nil
	}
	return copy(p, f.node.data[off:]), nil
}

// Preadv implements VectorFS: the whole vector is served under one
// lock acquisition — MemFS's analogue of collapsing per-extent preads
// into a single preadv(2).
func (fs *MemFS) Preadv(fd int, bufs [][]byte, off int64) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		n, err := fs.preadLocked(f, b, off+total)
		total += int64(n)
		if err != nil {
			return total, err
		}
		if n < len(b) {
			return total, nil // EOF
		}
	}
	return total, nil
}

// Pwrite implements FS.
func (fs *MemFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	return fs.pwriteLocked(f, p, off)
}

// Pwritev implements VectorFS: every buffer lands under one lock
// acquisition, in order, at contiguous offsets from off.
func (fs *MemFS) Pwritev(fd int, bufs [][]byte, off int64) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		n, err := fs.pwriteLocked(f, b, off+total)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (fs *MemFS) pwriteLocked(f *memFD, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if f.flags&O_ACCMODE == O_RDONLY {
		return 0, EBADF
	}
	if f.node.children != nil {
		return 0, EISDIR
	}
	if off < 0 {
		return 0, EINVAL
	}
	end := off + int64(len(p))
	if fs.dataless {
		if end > f.node.vsize {
			f.node.vsize = end
		}
		f.node.mtime = fs.tick()
		if !f.node.spilled {
			if end > fs.keep {
				spill(f.node)
			} else {
				if end > int64(len(f.node.data)) {
					grown := make([]byte, end)
					copy(grown, f.node.data)
					f.node.data = grown
				}
				copy(f.node.data[off:end], p)
			}
		}
		return len(p), nil
	}
	if end > int64(len(f.node.data)) {
		if end > int64(cap(f.node.data)) {
			// Double the capacity (at least) so long append streams cost
			// amortised O(1) copies per byte.
			newCap := 2 * int64(cap(f.node.data))
			if newCap < end {
				newCap = end + end/4
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.node.data)
			f.node.data = grown
		} else {
			f.node.data = f.node.data[:end]
		}
	}
	copy(f.node.data[off:end], p)
	f.node.mtime = fs.tick()
	return len(p), nil
}

// Lseek implements FS.
func (fs *MemFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SEEK_SET:
		base = 0
	case SEEK_CUR:
		base = f.off
	case SEEK_END:
		base = fs.sizeOf(f.node)
	default:
		return 0, EINVAL
	}
	pos := base + offset
	if pos < 0 {
		return 0, EINVAL
	}
	f.off = pos
	return pos, nil
}

// Fsync implements FS. MemFS is always durable for the process lifetime.
func (fs *MemFS) Fsync(fd int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, err := fs.fd(fd)
	return err
}

// Ftruncate implements FS.
func (fs *MemFS) Ftruncate(fd int, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return err
	}
	if f.flags&O_ACCMODE == O_RDONLY {
		return EBADF
	}
	return fs.truncateNode(f.node, size)
}

func (fs *MemFS) truncateNode(n *memNode, size int64) error {
	if size < 0 {
		return EINVAL
	}
	if n.children != nil {
		return EISDIR
	}
	if fs.dataless {
		n.vsize = size
		if !n.spilled {
			switch {
			case size > fs.keep:
				spill(n)
			case size <= int64(len(n.data)):
				tail := n.data[size:]
				for i := range tail {
					tail[i] = 0
				}
				n.data = n.data[:size]
			default:
				grown := make([]byte, size)
				copy(grown, n.data)
				n.data = grown
			}
		}
		n.mtime = fs.tick()
		return nil
	}
	switch {
	case size <= int64(len(n.data)):
		// Zero the abandoned tail: a later extension that reslices within
		// capacity must expose zeros (a hole), not stale bytes.
		tail := n.data[size:]
		for i := range tail {
			tail[i] = 0
		}
		n.data = n.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.mtime = fs.tick()
	return nil
}

func (fs *MemFS) statOf(n *memNode) Stat {
	s := Stat{Mode: n.mode, Nlink: n.nlink, Ino: n.ino, Mtime: n.mtime, Atime: n.atime, Ctime: n.ctime}
	if n.children == nil {
		s.Size = fs.sizeOf(n)
	} else {
		s.Size = int64(len(n.children))
	}
	return s
}

// Fstat implements FS.
func (fs *MemFS) Fstat(fd int) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.fd(fd)
	if err != nil {
		return Stat{}, err
	}
	return fs.statOf(f.node), nil
}

// Stat implements FS.
func (fs *MemFS) Stat(path string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path)
	if err != nil {
		return Stat{}, err
	}
	return fs.statOf(n), nil
}

// Truncate implements FS.
func (fs *MemFS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path)
	if err != nil {
		return err
	}
	return fs.truncateNode(n, size)
}

// Unlink implements FS.
func (fs *MemFS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ENOENT
	}
	if n.children != nil {
		return EISDIR
	}
	delete(parent.children, name)
	n.nlink--
	parent.mtime = fs.tick()
	return nil
}

// Mkdir implements FS.
func (fs *MemFS) Mkdir(path string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return EEXIST
	}
	fs.nextIn++
	parent.children[name] = &memNode{
		ino:      fs.nextIn,
		mode:     ModeDir | (mode & ModePerm),
		children: make(map[string]*memNode),
		nlink:    2,
		mtime:    fs.tick(),
		ctime:    fs.clock,
	}
	parent.mtime = fs.clock
	return nil
}

// Rmdir implements FS.
func (fs *MemFS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ENOENT
	}
	if n.children == nil {
		return ENOTDIR
	}
	if len(n.children) != 0 {
		return ENOTEMPTY
	}
	delete(parent.children, name)
	parent.mtime = fs.tick()
	return nil
}

// Readdir implements FS.
func (fs *MemFS) Readdir(path string) ([]DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.children == nil {
		return nil, ENOTDIR
	}
	out := make([]DirEntry, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, DirEntry{Name: name, IsDir: c.children != nil})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	op, oname, err := fs.lookupParent(oldpath)
	if err != nil {
		return err
	}
	n, ok := op.children[oname]
	if !ok {
		return ENOENT
	}
	np, nname, err := fs.lookupParent(newpath)
	if err != nil {
		return err
	}
	if existing, ok := np.children[nname]; ok {
		if existing == n {
			return nil
		}
		if existing.children != nil {
			if n.children == nil {
				return EISDIR
			}
			if len(existing.children) != 0 {
				return ENOTEMPTY
			}
		} else if n.children != nil {
			return ENOTDIR
		}
	}
	delete(op.children, oname)
	np.children[nname] = n
	op.mtime = fs.tick()
	np.mtime = fs.clock
	return nil
}

// Access implements FS.
func (fs *MemFS) Access(path string, mode int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, err := fs.lookup(path)
	return err
}

// OpenFDs returns the number of open descriptors; used by leak tests.
func (fs *MemFS) OpenFDs() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.fds)
}

var _ FS = (*MemFS)(nil)
var _ VectorFS = (*MemFS)(nil)
