package posix

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// opsSurface drives the full FS interface through one composite — the
// op sequence every layout must serve identically. Returns the final
// streamed bytes so callers can differential-compare configurations.
func opsSurface(t *testing.T, s *StripedFS) []byte {
	t.Helper()
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}

	// Streaming write: Open, Write (pointer advances), Lseek back,
	// Fsync, Fstat, Ftruncate.
	fd, err := s.Open("/c/hostdir.1/d", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []string{"alpha-", "beta-", "gamma"} {
		if n, err := s.Write(fd, []byte(chunk)); err != nil || n != len(chunk) {
			t.Fatalf("stream write: n=%d err=%v", n, err)
		}
	}
	if err := s.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	st, err := s.Fstat(fd)
	if err != nil || st.Size != int64(len("alpha-beta-gamma")) {
		t.Fatalf("Fstat = %+v, %v", st, err)
	}
	if err := s.Ftruncate(fd, 11); err != nil { // "alpha-beta-"
		t.Fatal(err)
	}
	if off, err := s.Lseek(fd, 0, SEEK_SET); err != nil || off != 0 {
		t.Fatalf("Lseek = %d, %v", off, err)
	}
	got := make([]byte, 64)
	n, err := s.Read(fd, got)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}

	// Path-level ops: Stat, Access, Truncate, Rename (within the
	// hostdir's replica set), Readdir, Unlink, Rmdir.
	if err := s.Access("/c/hostdir.1/d", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate("/c/hostdir.1/d", 6); err != nil {
		t.Fatal(err)
	}
	if st, err := s.Stat("/c/hostdir.1/d"); err != nil || st.Size != 6 {
		t.Fatalf("Stat after Truncate = %+v, %v", st, err)
	}
	if err := s.Rename("/c/hostdir.1/d", "/c/hostdir.1/d2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Access("/c/hostdir.1/d", 4); !errors.Is(err, ENOENT) {
		t.Fatalf("renamed-away path Access = %v, want ENOENT", err)
	}
	entries, err := s.Readdir("/c/hostdir.1")
	if err != nil || len(entries) != 1 || entries[0].Name != "d2" {
		t.Fatalf("Readdir = %v, %v", entries, err)
	}
	if err := s.Unlink("/c/hostdir.1/d2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rmdir("/c/hostdir.1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rmdir("/c"); err != nil {
		t.Fatal(err)
	}
	return got[:n]
}

// TestReplicatedOpsSurface runs the whole FS surface under mod-n,
// replica-2 and replica-3 and demands identical application-visible
// results — the ops-level differential over every layout, including
// the streaming (pointer) variants and directory mutations.
func TestReplicatedOpsSurface(t *testing.T) {
	var want []byte
	for i, r := range []int{1, 2, 3} {
		s, _ := newReplicaFS(t, 3, r, nil, 0, nil)
		if got := s.NumBackends(); got != 3 {
			t.Fatalf("replica-%d: NumBackends = %d", r, got)
		}
		if got := len(s.Backends()); got != 3 {
			t.Fatalf("replica-%d: Backends() = %d entries", r, got)
		}
		if w := s.LayoutWidth(); w != r {
			t.Fatalf("replica-%d: LayoutWidth = %d", r, w)
		}
		out := opsSurface(t, s)
		if i == 0 {
			want = out
			if string(want) != "alpha-beta-" {
				t.Fatalf("mod-n surface read = %q", want)
			}
			continue
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("replica-%d surface read %q != mod-n %q", r, out, want)
		}
	}
}

// TestReplicatedOpsSurfaceDegraded re-runs the surface with one replica
// of every pair dead from the start: every op must still succeed on the
// survivors (writes degrade, reads fail over, directory ops tolerate
// the dark mirror).
func TestReplicatedOpsSurfaceDegraded(t *testing.T) {
	s, faults := newReplicaFS(t, 3, 2, nil, 0, nil)
	faults[1].Kill()
	if got := opsSurface(t, s); string(got) != "alpha-beta-" {
		t.Fatalf("degraded surface read = %q", got)
	}
}

// TestNewStripedRootsLayout pins the CLI composition root: host
// directory trees composed under a replica layout serve replicated
// droppings, the empty spec returns the canonical backend, and layout
// errors surface before any I/O.
func TestNewStripedRootsLayout(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	canonical, err := NewOSFS(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewStripedRootsLayout(canonical, roots[1]+","+roots[2], "replica-2")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := fs.(*StripedFS)
	if !ok {
		t.Fatalf("composed store is %T, not *StripedFS", fs)
	}
	if s.LayoutWidth() != 2 {
		t.Fatalf("LayoutWidth = %d", s.LayoutWidth())
	}
	if err := s.Mkdir("/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, s, "/hostdir.1/d", []byte("payload"))
	// hostdir.1's owners are backends 1 and 2 — the copies live in those
	// host trees and nowhere else.
	for i, root := range roots {
		_, err := os.Stat(filepath.Join(root, "hostdir.1", "d"))
		if want := i != 0; (err == nil) != want {
			t.Fatalf("root %d copy presence: %v (want present=%v)", i, err, want)
		}
	}
	if got := mustReadFile(t, s, "/hostdir.1/d"); string(got) != "payload" {
		t.Fatalf("read back %q", got)
	}

	// The full ops surface must hold over real directory trees too —
	// same sequence, same observable results as the MemFS rigs.
	if got := opsSurface(t, s); string(got) != "alpha-beta-" {
		t.Fatalf("OSFS replica surface read = %q", got)
	}

	// Empty shadow spec: the canonical backend itself, valid layouts only.
	plain, err := NewStripedRoots(canonical, "")
	if err != nil || plain != canonical {
		t.Fatalf("empty spec = %T, %v", plain, err)
	}
	if _, err := NewStripedRootsLayout(canonical, "", "replica-2"); err == nil {
		t.Fatal("replica layout with no shadow backends accepted")
	}
	if _, err := NewStripedRootsLayout(canonical, roots[1], "bogus"); err == nil {
		t.Fatal("bogus layout accepted")
	}
}

// TestDispatchOverReplicatedStore binds the LD_PRELOAD-style dispatch
// table to a replicated store and drives every symbol through it: the
// interposition layer must be layout-oblivious, and a snapshot/restore
// cycle must unload a shim cleanly.
func TestDispatchOverReplicatedStore(t *testing.T) {
	s, _ := newReplicaFS(t, 3, 2, nil, 0, nil)
	d := NewDispatch(s)

	// Interpose a counting shim on Open, the dlsym(RTLD_NEXT) idiom.
	snap := d.Snapshot()
	opens := 0
	d.OpenFn = func(path string, flags int, mode uint32) (int, error) {
		opens++
		return snap.OpenFn(path, flags, mode)
	}

	if err := d.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err := d.Open("/c/f", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.Write(fd, []byte("hello-")); err != nil || n != 6 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if n, err := d.Pwrite(fd, []byte("world"), 6); err != nil || n != 5 {
		t.Fatalf("Pwrite = %d, %v", n, err)
	}
	if err := d.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if st, err := d.Fstat(fd); err != nil || st.Size != 11 {
		t.Fatalf("Fstat = %+v, %v", st, err)
	}
	if off, err := d.Lseek(fd, 0, SEEK_SET); err != nil || off != 0 {
		t.Fatalf("Lseek = %d, %v", off, err)
	}
	buf := make([]byte, 5)
	if n, err := d.Read(fd, buf); err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if n, err := d.Pread(fd, buf, 6); err != nil || string(buf[:n]) != "world" {
		t.Fatalf("Pread = %q, %v", buf[:n], err)
	}
	if err := d.Ftruncate(fd, 6); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := d.Access("/c/f", R_OK); err != nil {
		t.Fatal(err)
	}
	if st, err := d.Stat("/c/f"); err != nil || st.Size != 6 {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	if err := d.Truncate("/c/f", 5); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("/c/f", "/c/g"); err != nil {
		t.Fatal(err)
	}
	if ents, err := d.Readdir("/c"); err != nil || len(ents) != 1 || ents[0].Name != "g" {
		t.Fatalf("Readdir = %v, %v", ents, err)
	}
	if err := d.Unlink("/c/g"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rmdir("/c"); err != nil {
		t.Fatal(err)
	}
	if opens != 1 {
		t.Fatalf("shim saw %d opens, want 1", opens)
	}

	// Restore unloads the shim: further opens bypass the counter.
	d.Restore(snap)
	if err := d.Mkdir("/c2", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err = d.Open("/c2/f", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}
	if opens != 1 {
		t.Fatalf("shim fired after Restore: %d opens", opens)
	}
}
