package posix

import "fmt"

// VectorFS is the optional vectored positional-I/O capability: one
// contiguous file range moved to or from a list of buffers in a single
// backend operation, the preadv(2)/pwritev(2) shape. Backends that can
// coalesce (OSFS via the real syscalls on Linux, MemFS under one lock
// acquisition, the composing wrappers by delegation) implement it; the
// package helpers Preadv and Pwritev probe for it and fall back to a
// scalar Pread/Pwrite loop, so callers batch unconditionally and the
// capability only changes the operation count, never the bytes.
//
// Semantics: Preadv fills bufs in order from the single contiguous
// range starting at off, returning the total byte count transferred.
// Unlike raw preadv(2) the methods do not return transient short
// counts: implementations continue until every buffer is satisfied, a
// real error occurs, or (reads) EOF — so n < total with a nil error
// means EOF, exactly like a scalar Pread loop. Pwritev writes the
// buffers in order at off and returns the durable prefix with any
// error. Like Pread/Pwrite, the vectored forms carry no file-pointer
// state and must be safe to issue concurrently on one descriptor.
type VectorFS interface {
	Preadv(fd int, bufs [][]byte, off int64) (int64, error)
	Pwritev(fd int, bufs [][]byte, off int64) (int64, error)
}

// Preadv fills bufs in order from the contiguous range of fd starting
// at off, using the backend's vectored capability when it has one and a
// scalar Pread loop otherwise. It returns the number of bytes
// transferred; n < sum(len(bufs)) with a nil error means EOF.
func Preadv(fs FS, fd int, bufs [][]byte, off int64) (int64, error) {
	if v, ok := fs.(VectorFS); ok {
		return v.Preadv(fd, bufs, off)
	}
	return preadvFallback(fs, fd, bufs, off)
}

// Pwritev writes bufs in order at off, vectored when the backend can,
// as a scalar Pwrite loop otherwise. It returns the durable prefix in
// bytes; on error the prefix landed in buffer order.
func Pwritev(fs FS, fd int, bufs [][]byte, off int64) (int64, error) {
	if v, ok := fs.(VectorFS); ok {
		return v.Pwritev(fd, bufs, off)
	}
	return pwritevFallback(fs, fd, bufs, off)
}

// preadvFallback is the scalar decomposition of Preadv: one full Pread
// loop per buffer, stopping at EOF.
func preadvFallback(fs FS, fd int, bufs [][]byte, off int64) (int64, error) {
	var total int64
	for _, b := range bufs {
		got := 0
		for got < len(b) {
			n, err := fs.Pread(fd, b[got:], off+total+int64(got))
			if n > 0 {
				got += n
			}
			if err != nil {
				return total + int64(got), err
			}
			if n == 0 {
				return total + int64(got), nil // EOF
			}
		}
		total += int64(got)
	}
	return total, nil
}

// pwritevFallback is the scalar decomposition of Pwritev: one full
// Pwrite loop per buffer.
func pwritevFallback(fs FS, fd int, bufs [][]byte, off int64) (int64, error) {
	var total int64
	for _, b := range bufs {
		put := 0
		for put < len(b) {
			n, err := fs.Pwrite(fd, b[put:], off+total+int64(put))
			if n > 0 {
				put += n
			}
			if err != nil {
				return total + int64(put), err
			}
			if n <= 0 {
				return total + int64(put), fmt.Errorf("pwrite returned %d", n)
			}
		}
		total += int64(put)
	}
	return total, nil
}

// vectorLen sums the buffer lengths of one vectored request.
func vectorLen(bufs [][]byte) int64 {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n
}
