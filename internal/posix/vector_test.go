package posix

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ldplfs/internal/iostats"
)

// vectorBackends builds one instance of every FS the engines run over,
// so the vectored contract is pinned on each: the two VectorFS
// implementations (MemFS, OSFS), the two pass-through wrappers
// (FaultFS, InstrumentFS via the parity in instrument paths), and the
// striped composite on its single-replica fast path.
func vectorBackends(t *testing.T) map[string]FS {
	t.Helper()
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"memfs":   NewMemFS(),
		"osfs":    osfs,
		"faultfs": NewFaultFS(NewMemFS()),
		"striped": NewStripedFS(NewMemFS(), NewMemFS(), NewMemFS()),
	}
}

// TestPreadvParity checks byte-identity between the vectored read and
// per-buffer scalar preads on every backend, across buffer shapes:
// uneven sizes, empty buffers mid-vector, a window crossing EOF, and
// vectors wider than one iovec batch.
func TestPreadvParity(t *testing.T) {
	for name, fs := range vectorBackends(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			payload := make([]byte, 64<<10)
			rng.Read(payload)
			fd, err := fs.Open("/vec.dat", O_CREAT|O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close(fd)
			if err := WriteFull(fs, fd, payload, 0); err != nil {
				t.Fatal(err)
			}

			shapes := [][]int{
				{100},
				{1, 2, 3, 4, 5},
				{4096, 0, 512, 0, 8192}, // empty buffers mid-vector
				{1 << 10, 1 << 12, 1 << 13, 1 << 10},
			}
			for si, shape := range shapes {
				for _, off := range []int64{0, 7, 32<<10 - 3} {
					bufs := make([][]byte, len(shape))
					want := make([][]byte, len(shape))
					for i, n := range shape {
						bufs[i] = make([]byte, n)
						want[i] = make([]byte, n)
					}
					n, err := Preadv(fs, fd, bufs, off)
					if err != nil {
						t.Fatalf("shape %d off %d: Preadv: %v", si, off, err)
					}
					// Scalar reference: per-buffer full preads.
					var wantN int64
					cur := off
					for i := range want {
						if len(want[i]) == 0 {
							continue
						}
						if err := ReadFull(fs, fd, want[i], cur); err != nil {
							t.Fatalf("reference read: %v", err)
						}
						cur += int64(len(want[i]))
						wantN += int64(len(want[i]))
					}
					if n != wantN {
						t.Fatalf("shape %d off %d: n=%d want %d", si, off, n, wantN)
					}
					for i := range bufs {
						if !bytes.Equal(bufs[i], want[i]) {
							t.Fatalf("shape %d off %d: buffer %d diverges from scalar pread", si, off, i)
						}
					}
				}
			}
		})
	}
}

// TestPreadvEOF pins the EOF contract: a vector extending past end of
// file returns the bytes below EOF with a nil error, like Pread.
func TestPreadvEOF(t *testing.T) {
	for name, fs := range vectorBackends(t) {
		t.Run(name, func(t *testing.T) {
			fd, err := fs.Open("/eof.dat", O_CREAT|O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close(fd)
			if err := WriteFull(fs, fd, bytes.Repeat([]byte{'e'}, 150), 0); err != nil {
				t.Fatal(err)
			}
			bufs := [][]byte{make([]byte, 100), make([]byte, 100), make([]byte, 100)}
			n, err := Preadv(fs, fd, bufs, 0)
			if err != nil {
				t.Fatalf("Preadv across EOF: %v", err)
			}
			if n != 150 {
				t.Fatalf("n=%d, want 150 (bytes below EOF)", n)
			}
			if !bytes.Equal(bufs[0], bytes.Repeat([]byte{'e'}, 100)) || !bytes.Equal(bufs[1][:50], bytes.Repeat([]byte{'e'}, 50)) {
				t.Fatal("EOF-crossing vector filled wrong bytes")
			}
			// Entirely past EOF: zero bytes, nil error.
			if n, err := Preadv(fs, fd, [][]byte{make([]byte, 10)}, 1000); n != 0 || err != nil {
				t.Fatalf("Preadv past EOF = %d, %v; want 0, nil", n, err)
			}
		})
	}
}

// TestPwritevParity checks the vectored write lands byte-identically
// to per-buffer scalar pwrites on every backend.
func TestPwritevParity(t *testing.T) {
	for name, fs := range vectorBackends(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			fd, err := fs.Open("/wvec.dat", O_CREAT|O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close(fd)

			ref := NewMemFS()
			rfd, err := ref.Open("/ref.dat", O_CREAT|O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close(rfd)

			var off int64 = 3
			for round := 0; round < 4; round++ {
				bufs := make([][]byte, 5)
				var total int64
				for i := range bufs {
					bufs[i] = make([]byte, rng.Intn(4096))
					rng.Read(bufs[i])
					total += int64(len(bufs[i]))
				}
				n, err := Pwritev(fs, fd, bufs, off)
				if err != nil || n != total {
					t.Fatalf("round %d: Pwritev = %d, %v; want %d, nil", round, n, err, total)
				}
				cur := off
				for i := range bufs {
					if err := WriteFull(ref, rfd, bufs[i], cur); err != nil {
						t.Fatal(err)
					}
					cur += int64(len(bufs[i]))
				}
				off = cur + int64(rng.Intn(100))
			}

			st, err := fs.Fstat(fd)
			if err != nil {
				t.Fatal(err)
			}
			rst, err := ref.Fstat(rfd)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size != rst.Size {
				t.Fatalf("size %d diverges from scalar reference %d", st.Size, rst.Size)
			}
			got := make([]byte, st.Size)
			want := make([]byte, rst.Size)
			if err := ReadFull(fs, fd, got, 0); err != nil {
				t.Fatal(err)
			}
			if err := ReadFull(ref, rfd, want, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("vectored writes diverge from scalar reference")
			}
		})
	}
}

// TestPreadvWiderThanIovMax drives one vector past the iovec window
// size so OSFS must issue multiple preadv syscalls and stitch the
// totals.
func TestPreadvWiderThanIovMax(t *testing.T) {
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fd, err := osfs.Open("/wide.dat", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer osfs.Close(fd)
	const segs = 1500 // > iovMax on linux
	payload := make([]byte, segs*8)
	rand.New(rand.NewSource(5)).Read(payload)
	if err := WriteFull(osfs, fd, payload, 0); err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, segs)
	for i := range bufs {
		bufs[i] = make([]byte, 8)
	}
	n, err := Preadv(osfs, fd, bufs, 0)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("wide Preadv = %d, %v; want %d, nil", n, err, len(payload))
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], payload[i*8:(i+1)*8]) {
			t.Fatalf("segment %d diverges after iovec windowing", i)
		}
	}
}

// TestFaultFSVectorOneOp pins the fault accounting contract: a whole
// vector is one faultable operation, not one per segment.
func TestFaultFSVectorOneOp(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	fd, err := ffs.Open("/one.dat", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer ffs.Close(fd)
	if err := WriteFull(ffs, fd, make([]byte, 300), 0); err != nil {
		t.Fatal(err)
	}

	// After:1 skips exactly one matching read op. If each segment
	// counted, the three-segment first vector would trip it.
	ffs.Inject(&FaultRule{Op: FaultRead, After: 1, Times: 1, Err: EIO})
	bufs := [][]byte{make([]byte, 100), make([]byte, 100), make([]byte, 100)}
	if _, err := Preadv(ffs, fd, bufs, 0); err != nil {
		t.Fatalf("first vector should be the skipped op, got %v", err)
	}
	if _, err := Preadv(ffs, fd, bufs, 0); !errors.Is(err, EIO) {
		t.Fatalf("second vector should fire the rule, got %v", err)
	}
	ffs.Clear()

	// Same shape for writes.
	ffs.Inject(&FaultRule{Op: FaultWrite, After: 1, Times: 1, Err: EIO})
	if _, err := Pwritev(ffs, fd, bufs, 0); err != nil {
		t.Fatalf("first write vector should be the skipped op, got %v", err)
	}
	if _, err := Pwritev(ffs, fd, bufs, 0); !errors.Is(err, EIO) {
		t.Fatalf("second write vector should fire the rule, got %v", err)
	}
}

// TestFaultFSPwritevPartial pins partial injection across segment
// boundaries: the byte budget flattens over the vector, so a durable
// prefix can end mid-segment.
func TestFaultFSPwritevPartial(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	fd, err := ffs.Open("/part.dat", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer ffs.Close(fd)

	ffs.Inject(&FaultRule{Op: FaultWrite, Partial: 150, Times: 1, Err: EIO})
	bufs := [][]byte{
		bytes.Repeat([]byte{'a'}, 100),
		bytes.Repeat([]byte{'b'}, 100),
		bytes.Repeat([]byte{'c'}, 100),
	}
	n, err := Pwritev(ffs, fd, bufs, 0)
	if !errors.Is(err, EIO) {
		t.Fatalf("partial vector = %d, %v; want EIO", n, err)
	}
	if n != 150 {
		t.Fatalf("durable prefix = %d, want 150 (crossing a segment boundary)", n)
	}
	ffs.Clear()

	got := make([]byte, 150)
	if err := ReadFull(ffs, fd, got, 0); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{'a'}, 100), bytes.Repeat([]byte{'b'}, 50)...)
	if !bytes.Equal(got, want) {
		t.Fatal("durable prefix bytes diverge from the injected budget")
	}
	// Nothing past the budget landed.
	if st, err := ffs.Fstat(fd); err != nil || st.Size != 150 {
		t.Fatalf("file size = %v, %v; want 150", st, err)
	}
}

// TestStripedPreadvFailover pins the replica failover contract on the
// vectored path: after the primary owner dies, one Preadv serves the
// whole vector from the surviving replica and ticks the failover
// counter.
func TestStripedPreadvFailover(t *testing.T) {
	plane := iostats.NewPlane()
	s, faults := newReplicaFS(t, 3, 2, plane, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'r'}, 300)
	mustWriteFile(t, s, "/c/hostdir.1/dropping.data.1", payload)

	fd, err := s.Open("/c/hostdir.1/dropping.data.1", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(fd)

	faults[1].Kill() // primary owner of hostdir.1
	bufs := [][]byte{make([]byte, 100), make([]byte, 100), make([]byte, 100)}
	n, err := Preadv(s, fd, bufs, 0)
	if err != nil || n != 300 {
		t.Fatalf("failover Preadv = %d, %v; want 300, nil", n, err)
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], payload[i*100:(i+1)*100]) {
			t.Fatalf("failover segment %d diverges", i)
		}
	}
	if plane.Layer("posix").Counter("replica_read_failover").Load() == 0 {
		t.Fatal("vectored failover reads not counted")
	}
}

// TestStripedPwritevReplicated pins the vectored replica write: one
// Pwritev lands the whole vector on every replica.
func TestStripedPwritevReplicated(t *testing.T) {
	s, faults := newReplicaFS(t, 3, 2, nil, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err := s.Open("/c/hostdir.1/dropping.data.1", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	bufs := [][]byte{
		bytes.Repeat([]byte{'x'}, 100),
		bytes.Repeat([]byte{'y'}, 100),
	}
	if n, err := Pwritev(s, fd, bufs, 0); n != 200 || err != nil {
		t.Fatalf("replicated Pwritev = %d, %v", n, err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{'x'}, 100), bytes.Repeat([]byte{'y'}, 100)...)
	copies := 0
	for i, f := range faults {
		if _, err := f.Stat("/c/hostdir.1/dropping.data.1"); errors.Is(err, ENOENT) {
			continue
		}
		got := mustReadFile(t, f, "/c/hostdir.1/dropping.data.1")
		if !bytes.Equal(got, want) {
			t.Fatalf("replica on backend %d diverges", i)
		}
		copies++
	}
	if copies != 2 {
		t.Fatalf("vector landed on %d replicas, want 2", copies)
	}
}

// TestInstrumentVectorCounters pins the batching observability plane:
// backend_ops counts submissions, vector_segments counts logical
// segments, so segments/ops is the measured batching factor.
func TestInstrumentVectorCounters(t *testing.T) {
	plane := iostats.NewPlane()
	ifs := NewInstrumentFS(NewMemFS(), plane)
	fd, err := ifs.Open("/ctr.dat", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer ifs.Close(fd)

	layer := plane.Layer("posix")
	ops0 := layer.Counter("backend_ops").Load()
	segs0 := layer.Counter("vector_segments").Load()

	bufs := [][]byte{make([]byte, 10), make([]byte, 10), make([]byte, 10), make([]byte, 10)}
	for i := range bufs {
		copy(bufs[i], "helloplfs!")
	}
	if _, err := Pwritev(ifs, fd, bufs, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Preadv(ifs, fd, bufs, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ifs.Pread(fd, bufs[0], 0); err != nil {
		t.Fatal(err)
	}

	ops := layer.Counter("backend_ops").Load() - ops0
	segs := layer.Counter("vector_segments").Load() - segs0
	if ops != 3 {
		t.Fatalf("backend_ops delta = %d, want 3 (two vectors + one scalar)", ops)
	}
	if segs != 9 {
		t.Fatalf("vector_segments delta = %d, want 9 (4+4+1)", segs)
	}
}
