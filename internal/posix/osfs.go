package posix

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	gopath "path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// OSFS exposes a directory of the real operating-system file system through
// the FS interface. Paths are interpreted relative to the root directory
// passed to NewOSFS, chroot-style, so experiments cannot escape their
// scratch area.
type OSFS struct {
	root string

	mu     sync.Mutex
	fds    map[int]*osFD
	nextFD int
}

type osFD struct {
	f     *os.File
	flags int
}

// NewOSFS returns an FS rooted at dir, which must exist.
func NewOSFS(dir string) (*OSFS, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, ENOTDIR
	}
	return &OSFS{root: abs, fds: make(map[int]*osFD), nextFD: 3}, nil
}

// Root returns the host directory backing this FS.
func (o *OSFS) Root() string { return o.root }

// NewStripedRoots composes the canonical backend with OSFS shadow
// backends opened from a comma-separated list of host directories — the
// parser behind the CLIs' -backends flag, shared so every tool
// interprets a backend list identically (the list is part of a striped
// container's identity). An empty spec returns canonical unchanged.
func NewStripedRoots(canonical FS, shadowSpec string) (FS, error) {
	return NewStripedRootsLayout(canonical, shadowSpec, "")
}

// NewStripedRootsLayout is NewStripedRoots under a named placement
// layout ("" or "mod-n" for classic striping, "replica-R" for R-way
// replicated droppings). A replica layout needs the shadow spec: with no
// shadow backends there is nowhere to put a second copy.
func NewStripedRootsLayout(canonical FS, shadowSpec, layoutDesc string) (FS, error) {
	if shadowSpec == "" {
		if _, err := LayoutFor(layoutDesc, 1); err != nil {
			return nil, err
		}
		return canonical, nil
	}
	all := []FS{canonical}
	for _, dir := range strings.Split(shadowSpec, ",") {
		shadow, err := NewOSFS(strings.TrimSpace(dir))
		if err != nil {
			return nil, fmt.Errorf("shadow backend %s: %w", dir, err)
		}
		all = append(all, shadow)
	}
	layout, err := LayoutFor(layoutDesc, len(all))
	if err != nil {
		return nil, err
	}
	return NewLayoutFS(layout, ReplicaOptions{}, all...), nil
}

func (o *OSFS) host(path string) string {
	return filepath.Join(o.root, filepath.FromSlash(gopath.Clean("/"+path)))
}

func mapOSError(err error) error {
	if err == nil {
		return nil
	}
	// Specific conditions first: Go's syscall.Errno matches ENOTEMPTY
	// against fs.ErrExist, so the generic classes must come second.
	var pe *os.PathError
	if errors.As(err, &pe) {
		switch pe.Err.Error() {
		case "not a directory":
			return ENOTDIR
		case "is a directory":
			return EISDIR
		case "directory not empty":
			return ENOTEMPTY
		}
	}
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return ENOENT
	case errors.Is(err, fs.ErrExist):
		return EEXIST
	case errors.Is(err, fs.ErrPermission):
		return EACCES
	}
	return err
}

// Open implements FS.
func (o *OSFS) Open(path string, flags int, mode uint32) (int, error) {
	osFlags := 0
	switch flags & O_ACCMODE {
	case O_RDONLY:
		osFlags = os.O_RDONLY
	case O_WRONLY:
		osFlags = os.O_WRONLY
	case O_RDWR:
		osFlags = os.O_RDWR
	}
	if flags&O_CREAT != 0 {
		osFlags |= os.O_CREATE
	}
	if flags&O_EXCL != 0 {
		osFlags |= os.O_EXCL
	}
	if flags&O_TRUNC != 0 {
		osFlags |= os.O_TRUNC
	}
	if flags&O_APPEND != 0 {
		osFlags |= os.O_APPEND
	}
	f, err := os.OpenFile(o.host(path), osFlags, os.FileMode(mode&ModePerm))
	if err != nil {
		return -1, mapOSError(err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	fd := o.nextFD
	o.nextFD++
	o.fds[fd] = &osFD{f: f, flags: flags}
	return fd, nil
}

func (o *OSFS) fd(fd int) (*osFD, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return h, nil
}

// Close implements FS.
func (o *OSFS) Close(fd int) error {
	o.mu.Lock()
	h, ok := o.fds[fd]
	if ok {
		delete(o.fds, fd)
	}
	o.mu.Unlock()
	if !ok {
		return EBADF
	}
	return mapOSError(h.f.Close())
}

// Read implements FS.
func (o *OSFS) Read(fd int, p []byte) (int, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	n, rerr := h.f.Read(p)
	if rerr == io.EOF {
		rerr = nil
	}
	return n, mapOSError(rerr)
}

// Write implements FS.
func (o *OSFS) Write(fd int, p []byte) (int, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	n, werr := h.f.Write(p)
	return n, mapOSError(werr)
}

// Pread implements FS. os.File.ReadAt maps to pread(2), which is safe
// and genuinely parallel across goroutines sharing one descriptor — the
// backend the read engine's concurrency actually pays off on.
func (o *OSFS) Pread(fd int, p []byte, off int64) (int, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	n, rerr := h.f.ReadAt(p, off)
	if rerr == io.EOF {
		rerr = nil
	}
	return n, mapOSError(rerr)
}

// Pwrite implements FS.
func (o *OSFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	n, werr := h.f.WriteAt(p, off)
	return n, mapOSError(werr)
}

// Lseek implements FS.
func (o *OSFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	h, err := o.fd(fd)
	if err != nil {
		return 0, err
	}
	pos, serr := h.f.Seek(offset, whence)
	return pos, mapOSError(serr)
}

// Fsync implements FS.
func (o *OSFS) Fsync(fd int) error {
	h, err := o.fd(fd)
	if err != nil {
		return err
	}
	return mapOSError(h.f.Sync())
}

// Ftruncate implements FS.
func (o *OSFS) Ftruncate(fd int, size int64) error {
	h, err := o.fd(fd)
	if err != nil {
		return err
	}
	return mapOSError(h.f.Truncate(size))
}

func statFromInfo(info os.FileInfo) Stat {
	s := Stat{Size: info.Size(), Mtime: info.ModTime().UnixNano(), Nlink: 1}
	if info.IsDir() {
		s.Mode = ModeDir | uint32(info.Mode().Perm())
		s.Nlink = 2
	} else {
		s.Mode = uint32(info.Mode().Perm())
	}
	return s
}

// Fstat implements FS.
func (o *OSFS) Fstat(fd int) (Stat, error) {
	h, err := o.fd(fd)
	if err != nil {
		return Stat{}, err
	}
	info, serr := h.f.Stat()
	if serr != nil {
		return Stat{}, mapOSError(serr)
	}
	return statFromInfo(info), nil
}

// Stat implements FS.
func (o *OSFS) Stat(path string) (Stat, error) {
	info, err := os.Stat(o.host(path))
	if err != nil {
		return Stat{}, mapOSError(err)
	}
	return statFromInfo(info), nil
}

// Truncate implements FS.
func (o *OSFS) Truncate(path string, size int64) error {
	return mapOSError(os.Truncate(o.host(path), size))
}

// Unlink implements FS.
func (o *OSFS) Unlink(path string) error {
	info, err := os.Stat(o.host(path))
	if err != nil {
		return mapOSError(err)
	}
	if info.IsDir() {
		return EISDIR
	}
	return mapOSError(os.Remove(o.host(path)))
}

// Mkdir implements FS.
func (o *OSFS) Mkdir(path string, mode uint32) error {
	return mapOSError(os.Mkdir(o.host(path), os.FileMode(mode&ModePerm)))
}

// Rmdir implements FS.
func (o *OSFS) Rmdir(path string) error {
	info, err := os.Stat(o.host(path))
	if err != nil {
		return mapOSError(err)
	}
	if !info.IsDir() {
		return ENOTDIR
	}
	return mapOSError(os.Remove(o.host(path)))
}

// Readdir implements FS.
func (o *OSFS) Readdir(path string) ([]DirEntry, error) {
	entries, err := os.ReadDir(o.host(path))
	if err != nil {
		return nil, mapOSError(err)
	}
	out := make([]DirEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, DirEntry{Name: e.Name(), IsDir: e.IsDir()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Rename implements FS.
func (o *OSFS) Rename(oldpath, newpath string) error {
	return mapOSError(os.Rename(o.host(oldpath), o.host(newpath)))
}

// Access implements FS.
func (o *OSFS) Access(path string, mode int) error {
	_, err := os.Stat(o.host(path))
	return mapOSError(err)
}

var _ FS = (*OSFS)(nil)
