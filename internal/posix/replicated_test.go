package posix

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ldplfs/internal/iostats"
)

// newReplicaFS builds a replica-r composite over n MemFS backends, each
// wrapped in a FaultFS so tests can kill or stall individual backends.
func newReplicaFS(t *testing.T, n, r int, stats iostats.Collector, hedge time.Duration, timer func(time.Duration) <-chan time.Time) (*StripedFS, []*FaultFS) {
	t.Helper()
	faults := make([]*FaultFS, n)
	backends := make([]FS, n)
	for i := range backends {
		faults[i] = NewFaultFS(NewMemFS())
		backends[i] = faults[i]
	}
	layout, err := LayoutFor(replicaDesc(r), n)
	if err != nil {
		t.Fatal(err)
	}
	return NewLayoutFS(layout, ReplicaOptions{
		HedgeDeadline: hedge,
		HedgeTimer:    timer,
		Stats:         stats,
	}, backends...), faults
}

func replicaDesc(r int) string {
	if r == 1 {
		return "mod-n"
	}
	return "replica-" + string(rune('0'+r))
}

// mustWriteFile writes content to path via fs at offset 0.
func mustWriteFile(t *testing.T, fs FS, path string, content []byte) {
	t.Helper()
	fd, err := fs.Open(path, O_CREAT|O_WRONLY|O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if err := WriteFull(fs, fd, content, 0); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

// mustReadFile reads the whole file at path via fs.
func mustReadFile(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	fd, err := fs.Open(path, O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer fs.Close(fd)
	st, err := fs.Fstat(fd)
	if err != nil {
		t.Fatalf("fstat %s: %v", path, err)
	}
	buf := make([]byte, st.Size)
	if err := ReadFull(fs, fd, buf, 0); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return buf
}

// TestReplicaWriteFansOut pins the core replica invariant: a routed
// write lands byte-identically on every owner backend, and a canonical
// write lands on backends 0..R-1.
func TestReplicaWriteFansOut(t *testing.T) {
	s, _ := newReplicaFS(t, 3, 2, nil, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte("replicated dropping bytes")
	mustWriteFile(t, s, "/c/hostdir.1/dropping.data.7", payload)
	mustWriteFile(t, s, "/c/canonical.file", []byte("canonical"))

	owners := s.ReplicasFor("/c/hostdir.1/dropping.data.7")
	if len(owners) != 2 || owners[0] != 1 || owners[1] != 2 {
		t.Fatalf("owners = %v, want [1 2]", owners)
	}
	for _, b := range owners {
		got := mustReadFile(t, s.Backends()[b], "/c/hostdir.1/dropping.data.7")
		if !bytes.Equal(got, payload) {
			t.Fatalf("backend %d copy diverges: %q", b, got)
		}
	}
	for _, b := range []int{0, 1} {
		got := mustReadFile(t, s.Backends()[b], "/c/canonical.file")
		if !bytes.Equal(got, []byte("canonical")) {
			t.Fatalf("backend %d canonical copy diverges: %q", b, got)
		}
	}
	// The non-owner backend holds no copy.
	if _, err := s.Backends()[0].Stat("/c/hostdir.1/dropping.data.7"); !errors.Is(err, ENOENT) {
		t.Fatalf("non-owner backend 0 has a copy (err=%v)", err)
	}
}

// TestReplicaReadFailover pins the failover read path: after the
// primary owner dies, reads are served byte-correct from the surviving
// replica and the failover counter ticks.
func TestReplicaReadFailover(t *testing.T) {
	plane := iostats.NewPlane()
	s, faults := newReplicaFS(t, 3, 2, plane, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives a backend dying")
	mustWriteFile(t, s, "/c/hostdir.1/dropping.data.1", payload)

	faults[1].Kill() // primary owner of hostdir.1
	got := mustReadFile(t, s, "/c/hostdir.1/dropping.data.1")
	if !bytes.Equal(got, payload) {
		t.Fatalf("failover read diverges: %q", got)
	}
	layer := plane.Layer("posix")
	if n := layer.Counter("replica_read_failover").Load(); n == 0 {
		t.Fatal("failover reads not counted")
	}

	// A healthy primary serves without failover.
	faults[1].Revive()
	mustWriteFile(t, s, "/c/hostdir.4/dropping.data.2", payload) // owners [1 2]
	before := layer.Counter("replica_read_primary").Load()
	_ = mustReadFile(t, s, "/c/hostdir.4/dropping.data.2")
	if layer.Counter("replica_read_primary").Load() == before {
		t.Fatal("primary reads not counted")
	}
}

// TestReplicaWriteDegraded pins the degraded-write path: with one owner
// dark, writes succeed on the survivor, the degraded counter ticks, and
// the dark backend simply misses the copy (under-replication, healed by
// the doctor) rather than failing the write.
func TestReplicaWriteDegraded(t *testing.T) {
	plane := iostats.NewPlane()
	s, faults := newReplicaFS(t, 3, 2, plane, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	faults[2].Kill() // secondary owner of hostdir.1
	payload := []byte("written while degraded")
	mustWriteFile(t, s, "/c/hostdir.1/dropping.data.9", payload)
	faults[2].Revive()

	got := mustReadFile(t, s.Backends()[1], "/c/hostdir.1/dropping.data.9")
	if !bytes.Equal(got, payload) {
		t.Fatalf("surviving copy diverges: %q", got)
	}
	if _, err := s.Backends()[2].Stat("/c/hostdir.1/dropping.data.9"); !errors.Is(err, ENOENT) {
		t.Fatalf("dark backend unexpectedly has a copy (err=%v)", err)
	}
	if n := plane.Layer("posix").Counter("replica_write_degraded").Load(); n == 0 {
		t.Fatal("degraded writes not counted")
	}
}

// TestReplicaAllOwnersDead pins the total-loss error path: with every
// owner dark, reads and writes fail rather than hanging or lying.
func TestReplicaAllOwnersDead(t *testing.T) {
	s, faults := newReplicaFS(t, 3, 2, nil, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, s, "/c/hostdir.1/dropping.data.1", []byte("x"))
	fd, err := s.Open("/c/hostdir.1/dropping.data.1", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults[1].Kill()
	faults[2].Kill()
	if _, err := s.Pread(fd, make([]byte, 1), 0); err == nil {
		t.Fatal("pread with all owners dead succeeded")
	}
	if err := s.Close(fd); err != nil {
		t.Fatalf("close after total loss: %v", err)
	}
	if _, err := s.Open("/c/hostdir.1/dropping.data.1", O_RDONLY, 0); err == nil {
		t.Fatal("open with all owners dead succeeded")
	}
}

// TestReplicaHedgedRead pins the hedge path deterministically: the
// primary's read stalls behind a gate, the injected hedge timer fires
// immediately, and the read completes byte-correct from the secondary
// while the primary is still stuck. No wall-clock sleeps.
func TestReplicaHedgedRead(t *testing.T) {
	plane := iostats.NewPlane()
	hedgeNow := make(chan time.Time, 1)
	hedgeNow <- time.Time{} // the hedge timer fires as soon as selected
	timer := func(time.Duration) <-chan time.Time { return hedgeNow }
	s, faults := newReplicaFS(t, 3, 2, plane, time.Millisecond, timer)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte("hedged read wins on the secondary")
	mustWriteFile(t, s, "/c/hostdir.1/dropping.data.1", payload)

	gate := make(chan struct{})
	faults[1].Inject(&FaultRule{Op: FaultRead, PathContains: "dropping.data.1", Gate: gate})

	got := mustReadFile(t, s, "/c/hostdir.1/dropping.data.1")
	if !bytes.Equal(got, payload) {
		t.Fatalf("hedged read diverges: %q", got)
	}
	close(gate) // release the stalled primary read
	layer := plane.Layer("posix")
	if n := layer.Counter("replica_read_hedged").Load(); n == 0 {
		t.Fatal("hedge launches not counted")
	}
	if n := layer.Counter("replica_read_failover").Load(); n == 0 {
		t.Fatal("hedge win not counted as a non-primary serve")
	}
}

// TestReplicaPointerIO pins that multi-replica pointer reads/writes and
// lseek keep the replica descriptors interchangeable.
func TestReplicaPointerIO(t *testing.T) {
	s, faults := newReplicaFS(t, 3, 2, nil, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.2", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err := s.Open("/c/hostdir.2/log", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(fd, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(fd, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lseek(fd, 0, SEEK_SET); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := s.Read(fd, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "alphabeta" {
		t.Fatalf("pointer read = %q", buf)
	}
	// Kill the primary owner mid-stream: the pointer ops keep working on
	// the survivor because the file pointers were kept in sync.
	faults[2].Kill() // hostdir.2 owners are [2 0]
	if _, err := s.Write(fd, []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lseek(fd, 0, SEEK_SET); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 14)
	if _, err := s.Read(fd, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "alphabetagamma" {
		t.Fatalf("post-kill pointer read = %q", buf)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaCanonicalMetaSurvivesBackend0 pins the reason canonical
// paths are replicated to backends 0..R-1: container metadata stays
// readable after the canonical backend dies.
func TestReplicaCanonicalMetaSurvivesBackend0(t *testing.T) {
	s, faults := newReplicaFS(t, 3, 2, nil, 0, nil)
	if err := s.Mkdir("/c", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, s, "/c/.plfsaccess", []byte("marker"))
	faults[0].Kill()
	if _, err := s.Stat("/c/.plfsaccess"); err != nil {
		t.Fatalf("canonical marker lost with backend 0: %v", err)
	}
	got := mustReadFile(t, s, "/c/.plfsaccess")
	if string(got) != "marker" {
		t.Fatalf("canonical marker diverges: %q", got)
	}
	if _, err := s.Readdir("/c"); err != nil {
		t.Fatalf("canonical listing lost with backend 0: %v", err)
	}
}

// TestModNUnchangedByLayoutFS pins that an explicit mod-n LayoutFS
// behaves exactly like the classic constructor: single copies, EXDEV
// across hostdirs, canonical files only on backend 0.
func TestModNUnchangedByLayoutFS(t *testing.T) {
	layout, err := LayoutFor("mod-n", 3)
	if err != nil {
		t.Fatal(err)
	}
	backends := []FS{NewMemFS(), NewMemFS(), NewMemFS()}
	s := NewLayoutFS(layout, ReplicaOptions{}, backends...)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, s, "/c/hostdir.1/d", []byte("x"))
	mustWriteFile(t, s, "/c/f", []byte("y"))
	if _, err := backends[1].Stat("/c/hostdir.1/d"); err != nil {
		t.Fatalf("owner copy missing: %v", err)
	}
	for _, b := range []int{0, 2} {
		if _, err := backends[b].Stat("/c/hostdir.1/d"); !errors.Is(err, ENOENT) {
			t.Fatalf("mod-n replicated to backend %d (err=%v)", b, err)
		}
	}
	if _, err := backends[0].Stat("/c/f"); err != nil {
		t.Fatalf("canonical copy missing: %v", err)
	}
	if _, err := backends[1].Stat("/c/f"); !errors.Is(err, ENOENT) {
		t.Fatalf("mod-n canonical file mirrored (err=%v)", err)
	}
	if err := s.Rename("/c/hostdir.1/d", "/c/hostdir.2/d"); !errors.Is(err, EXDEV) {
		t.Fatalf("cross-hostdir rename = %v, want EXDEV", err)
	}
}

// TestReplicaRenameWithinSet pins that renames inside one replica set
// apply to every owner, and renames across sets are refused.
func TestReplicaRenameWithinSet(t *testing.T) {
	s, _ := newReplicaFS(t, 3, 2, nil, 0, nil)
	if err := MkdirAll(s, "/c/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWriteFile(t, s, "/c/hostdir.1/a", []byte("x"))
	if err := s.Rename("/c/hostdir.1/a", "/c/hostdir.1/b"); err != nil {
		t.Fatal(err)
	}
	for _, b := range s.ReplicasFor("/c/hostdir.1/b") {
		if _, err := s.Backends()[b].Stat("/c/hostdir.1/b"); err != nil {
			t.Fatalf("renamed copy missing on backend %d: %v", b, err)
		}
	}
	if err := s.Rename("/c/hostdir.1/b", "/c/hostdir.2/b"); !errors.Is(err, EXDEV) {
		t.Fatalf("cross-set rename = %v, want EXDEV", err)
	}
}
