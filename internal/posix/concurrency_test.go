package posix

import (
	"bytes"
	"sync"
	"testing"
)

// The PLFS read engine fans one logical read out across goroutines that
// share a cached read descriptor per data dropping. That is only sound
// if Pread is safe — and correct — under concurrent use of a single fd,
// for every backend. Run with -race in CI.
func testConcurrentPread(t *testing.T, fs FS) {
	t.Helper()
	const (
		chunk  = 4096
		chunks = 64
		fanout = 8 // goroutines per chunk, all hammering the same fd
	)
	data := make([]byte, chunk*chunks)
	for i := range data {
		data[i] = byte(i / chunk)
	}
	fd, err := fs.Open("/pread-contract", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFull(fs, fd, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}

	fd, err = fs.Open("/pread-contract", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close(fd)

	var wg sync.WaitGroup
	errc := make(chan error, chunks*fanout)
	for c := 0; c < chunks; c++ {
		for g := 0; g < fanout; g++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, chunk)
				if err := ReadFull(fs, fd, buf, int64(c*chunk)); err != nil {
					errc <- err
					return
				}
				want := bytes.Repeat([]byte{byte(c)}, chunk)
				if !bytes.Equal(buf, want) {
					errc <- EIO
				}
			}(c)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent pread: %v", err)
	}
}

func TestMemFSConcurrentPread(t *testing.T) {
	testConcurrentPread(t, NewMemFS())
}

func TestOSFSConcurrentPread(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testConcurrentPread(t, fs)
}
