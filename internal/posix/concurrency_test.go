package posix

import (
	"bytes"
	"sync"
	"testing"
)

// The PLFS read engine fans one logical read out across goroutines that
// share a cached read descriptor per data dropping. That is only sound
// if Pread is safe — and correct — under concurrent use of a single fd,
// for every backend. Run with -race in CI.
func testConcurrentPread(t *testing.T, fs FS) {
	t.Helper()
	const (
		chunk  = 4096
		chunks = 64
		fanout = 8 // goroutines per chunk, all hammering the same fd
	)
	data := make([]byte, chunk*chunks)
	for i := range data {
		data[i] = byte(i / chunk)
	}
	fd, err := fs.Open("/pread-contract", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFull(fs, fd, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}

	fd, err = fs.Open("/pread-contract", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close(fd)

	var wg sync.WaitGroup
	errc := make(chan error, chunks*fanout)
	for c := 0; c < chunks; c++ {
		for g := 0; g < fanout; g++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, chunk)
				if err := ReadFull(fs, fd, buf, int64(c*chunk)); err != nil {
					errc <- err
					return
				}
				want := bytes.Repeat([]byte{byte(c)}, chunk)
				if !bytes.Equal(buf, want) {
					errc <- EIO
				}
			}(c)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent pread: %v", err)
	}
}

func TestMemFSConcurrentPread(t *testing.T) {
	testConcurrentPread(t, NewMemFS())
}

func TestOSFSConcurrentPread(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testConcurrentPread(t, fs)
}

// The PLFS write engine fans one vectored write out across goroutines
// issuing positional writes to disjoint, pre-reserved ranges of a single
// descriptor — including ranges past the current EOF. That is only sound
// if concurrent Pwrites on one fd are safe and extend the file with
// zero-filled gaps, for every backend. Run with -race in CI.
func testConcurrentPwrite(t *testing.T, fs FS) {
	t.Helper()
	const (
		chunk  = 4096
		chunks = 64
	)
	fd, err := fs.Open("/pwrite-contract", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, chunks)
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(c + 1)}, chunk)
			if err := WriteFull(fs, fd, buf, int64(c*chunk)); err != nil {
				errc <- err
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent pwrite: %v", err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat("/pwrite-contract")
	if err != nil || st.Size != chunk*chunks {
		t.Fatalf("size after concurrent pwrites = %d, %v (want %d)", st.Size, err, chunk*chunks)
	}
	fd, err = fs.Open("/pwrite-contract", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close(fd)
	got := make([]byte, chunk)
	for c := 0; c < chunks; c++ {
		if err := ReadFull(fs, fd, got, int64(c*chunk)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(c + 1)}, chunk)) {
			t.Fatalf("chunk %d corrupted by concurrent pwrites", c)
		}
	}
}

func TestMemFSConcurrentPwrite(t *testing.T) {
	testConcurrentPwrite(t, NewMemFS())
}

func TestOSFSConcurrentPwrite(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testConcurrentPwrite(t, fs)
}
