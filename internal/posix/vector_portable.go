//go:build !linux

package posix

// Preadv implements VectorFS by scalar decomposition on platforms
// without preadv(2) wired up — same bytes, one pread per buffer.
func (o *OSFS) Preadv(fd int, bufs [][]byte, off int64) (int64, error) {
	if _, err := o.fd(fd); err != nil {
		return 0, err
	}
	return preadvFallback(o, fd, bufs, off)
}

// Pwritev implements VectorFS by scalar decomposition.
func (o *OSFS) Pwritev(fd int, bufs [][]byte, off int64) (int64, error) {
	if _, err := o.fd(fd); err != nil {
		return 0, err
	}
	return pwritevFallback(o, fd, bufs, off)
}

var _ VectorFS = (*OSFS)(nil)
