package posix

import (
	"sync"

	"ldplfs/internal/iostats"
)

// OpEvent is one operation as seen by an InstrumentFS observer — the
// semantic stream iotrace builds its per-path analysis on. Events
// follow the recorder conventions this repository has used since the
// tracing work: reads and writes are emitted only when bytes moved,
// opens only on success, meta operations unconditionally.
type OpEvent struct {
	// Op classifies the operation (iostats vocabulary).
	Op iostats.Op
	// Path is the operand path (an fd-based op reports its open path).
	Path string
	// Bytes is the byte count moved (reads/writes).
	Bytes int64
	// Created marks an Open that created a previously absent file, or
	// a successful Mkdir.
	Created bool
	// Dir marks a directory creation (Mkdir).
	Dir bool
}

// InstrumentOption configures an InstrumentFS.
type InstrumentOption func(*InstrumentFS)

// WithLayerName overrides the layer the wrapper reports to (default
// "posix") — so several instrumented stores on one plane stay apart.
func WithLayerName(name string) InstrumentOption {
	return func(f *InstrumentFS) { f.layerName = name }
}

// WithObserver attaches a per-operation event callback. Observation
// implies per-fd path tracking (and a pre-open stat to classify
// creates), which the counter-only wrapper skips.
func WithObserver(fn func(OpEvent)) InstrumentOption {
	return func(f *InstrumentFS) { f.obs = fn }
}

// InstrumentFS wraps an FS and reports every operation — count, bytes,
// latency, errors — to one layer of an iostats plane. It composes like
// FaultFS and StripedFS: wrap the backend before handing it to PLFS
// (or to the dispatch) and the whole stack above it is measured
// without touching a line of it, the LD_PRELOAD trick applied to
// telemetry.
//
// With a nil collector the wrapper still forwards every call (an
// observer may still be attached); with neither collector nor
// observer it is pure passthrough plus one nil check per call.
type InstrumentFS struct {
	inner     FS
	ls        *iostats.LayerStats
	obs       func(OpEvent)
	layerName string

	// Syscall-economy counters, cached at construction so the data path
	// never takes the layer's registry lock: backendOps counts data
	// operations issued to the inner FS's level (a vectored op is one),
	// vectorSegments counts the logical segments they carried (a scalar
	// op is one). segments/ops is the measured batching factor.
	backendOps     *iostats.Counter
	vectorSegments *iostats.Counter

	mu  sync.Mutex
	fds map[int]string // open path per fd, for event attribution
}

// NewInstrumentFS wraps inner, reporting to c's "posix" layer (or the
// WithLayerName override). c may be nil when only an observer is
// wanted.
func NewInstrumentFS(inner FS, c iostats.Collector, opts ...InstrumentOption) *InstrumentFS {
	f := &InstrumentFS{inner: inner, layerName: "posix"}
	for _, o := range opts {
		o(f)
	}
	if c != nil {
		f.ls = c.Layer(f.layerName)
	}
	// Counter is nil-safe on a nil layer (returns a standalone counter),
	// so the handles are always usable.
	f.backendOps = f.ls.Counter("backend_ops")
	f.vectorSegments = f.ls.Counter("vector_segments")
	if f.obs != nil {
		f.fds = make(map[int]string)
	}
	return f
}

// Stats returns the layer handle the wrapper reports to (nil when no
// collector was attached).
func (f *InstrumentFS) Stats() *iostats.LayerStats { return f.ls }

// Unwrap exposes the wrapped FS, so capability probes (e.g. PLFS's
// striped-backend introspection) can see through the instrumentation
// the same way errors.Unwrap sees through wrapped errors.
func (f *InstrumentFS) Unwrap() FS { return f.inner }

func (f *InstrumentFS) pathOf(fd int) string {
	if f.fds == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fds[fd]
}

// emit sends one event to the observer, if any.
func (f *InstrumentFS) emit(ev OpEvent) {
	if f.obs != nil {
		f.obs(ev)
	}
}

// Open implements FS.
func (f *InstrumentFS) Open(path string, flags int, mode uint32) (int, error) {
	created := false
	if f.obs != nil && flags&O_CREAT != 0 {
		// Classify creates the way the tracer always has: O_CREAT of a
		// previously absent path. The probe stat goes straight to the
		// inner FS so it is not counted as workload traffic.
		if _, err := f.inner.Stat(path); err != nil {
			created = true
		}
	}
	start := f.ls.Start()
	fd, err := f.inner.Open(path, flags, mode)
	f.ls.End(iostats.Open, 0, start, err)
	if err != nil {
		return fd, err
	}
	if f.fds != nil {
		f.mu.Lock()
		f.fds[fd] = path
		f.mu.Unlock()
	}
	f.emit(OpEvent{Op: iostats.Open, Path: path, Created: created})
	return fd, nil
}

// Close implements FS (counted as meta; not observed, matching the
// tracer's event stream).
func (f *InstrumentFS) Close(fd int) error {
	if f.fds != nil {
		f.mu.Lock()
		delete(f.fds, fd)
		f.mu.Unlock()
	}
	start := f.ls.Start()
	err := f.inner.Close(fd)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

// Read implements FS.
func (f *InstrumentFS) Read(fd int, p []byte) (int, error) {
	start := f.ls.Start()
	n, err := f.inner.Read(fd, p)
	f.ls.End(iostats.Read, int64(n), start, err)
	f.backendOps.Add(1)
	f.vectorSegments.Add(1)
	if n > 0 {
		f.emit(OpEvent{Op: iostats.Read, Path: f.pathOf(fd), Bytes: int64(n)})
	}
	return n, err
}

// Write implements FS.
func (f *InstrumentFS) Write(fd int, p []byte) (int, error) {
	start := f.ls.Start()
	n, err := f.inner.Write(fd, p)
	f.ls.End(iostats.Write, int64(n), start, err)
	f.backendOps.Add(1)
	f.vectorSegments.Add(1)
	if n > 0 {
		f.emit(OpEvent{Op: iostats.Write, Path: f.pathOf(fd), Bytes: int64(n)})
	}
	return n, err
}

// Pread implements FS.
func (f *InstrumentFS) Pread(fd int, p []byte, off int64) (int, error) {
	start := f.ls.Start()
	n, err := f.inner.Pread(fd, p, off)
	f.ls.End(iostats.Read, int64(n), start, err)
	f.backendOps.Add(1)
	f.vectorSegments.Add(1)
	if n > 0 {
		f.emit(OpEvent{Op: iostats.Read, Path: f.pathOf(fd), Bytes: int64(n)})
	}
	return n, err
}

// Pwrite implements FS.
func (f *InstrumentFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	start := f.ls.Start()
	n, err := f.inner.Pwrite(fd, p, off)
	f.ls.End(iostats.Write, int64(n), start, err)
	f.backendOps.Add(1)
	f.vectorSegments.Add(1)
	if n > 0 {
		f.emit(OpEvent{Op: iostats.Write, Path: f.pathOf(fd), Bytes: int64(n)})
	}
	return n, err
}

// Preadv implements VectorFS: one backend operation carrying len(bufs)
// segments — the counters record the batching the engine achieved.
func (f *InstrumentFS) Preadv(fd int, bufs [][]byte, off int64) (int64, error) {
	start := f.ls.Start()
	n, err := Preadv(f.inner, fd, bufs, off)
	f.ls.End(iostats.Read, n, start, err)
	f.backendOps.Add(1)
	f.vectorSegments.Add(int64(len(bufs)))
	if n > 0 {
		f.emit(OpEvent{Op: iostats.Read, Path: f.pathOf(fd), Bytes: n})
	}
	return n, err
}

// Pwritev implements VectorFS.
func (f *InstrumentFS) Pwritev(fd int, bufs [][]byte, off int64) (int64, error) {
	start := f.ls.Start()
	n, err := Pwritev(f.inner, fd, bufs, off)
	f.ls.End(iostats.Write, n, start, err)
	f.backendOps.Add(1)
	f.vectorSegments.Add(int64(len(bufs)))
	if n > 0 {
		f.emit(OpEvent{Op: iostats.Write, Path: f.pathOf(fd), Bytes: n})
	}
	return n, err
}

// Lseek implements FS (pure client-side: neither counted nor observed).
func (f *InstrumentFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	return f.inner.Lseek(fd, offset, whence)
}

// Fsync implements FS.
func (f *InstrumentFS) Fsync(fd int) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: f.pathOf(fd)})
	start := f.ls.Start()
	err := f.inner.Fsync(fd)
	f.ls.End(iostats.Sync, 0, start, err)
	return err
}

// Ftruncate implements FS.
func (f *InstrumentFS) Ftruncate(fd int, size int64) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: f.pathOf(fd)})
	start := f.ls.Start()
	err := f.inner.Ftruncate(fd, size)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

// Fstat implements FS.
func (f *InstrumentFS) Fstat(fd int) (Stat, error) {
	f.emit(OpEvent{Op: iostats.Meta, Path: f.pathOf(fd)})
	start := f.ls.Start()
	st, err := f.inner.Fstat(fd)
	f.ls.End(iostats.Meta, 0, start, err)
	return st, err
}

// Stat implements FS.
func (f *InstrumentFS) Stat(path string) (Stat, error) {
	f.emit(OpEvent{Op: iostats.Meta, Path: path})
	start := f.ls.Start()
	st, err := f.inner.Stat(path)
	f.ls.End(iostats.Meta, 0, start, err)
	return st, err
}

// Truncate implements FS.
func (f *InstrumentFS) Truncate(path string, size int64) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: path})
	start := f.ls.Start()
	err := f.inner.Truncate(path, size)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

// Unlink implements FS.
func (f *InstrumentFS) Unlink(path string) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: path})
	start := f.ls.Start()
	err := f.inner.Unlink(path)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

// Mkdir implements FS.
func (f *InstrumentFS) Mkdir(path string, mode uint32) error {
	start := f.ls.Start()
	err := f.inner.Mkdir(path, mode)
	f.ls.End(iostats.Meta, 0, start, err)
	if err == nil {
		f.emit(OpEvent{Op: iostats.Open, Path: path, Created: true, Dir: true})
	}
	return err
}

// Rmdir implements FS.
func (f *InstrumentFS) Rmdir(path string) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: path})
	start := f.ls.Start()
	err := f.inner.Rmdir(path)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

// Readdir implements FS.
func (f *InstrumentFS) Readdir(path string) ([]DirEntry, error) {
	f.emit(OpEvent{Op: iostats.Meta, Path: path})
	start := f.ls.Start()
	entries, err := f.inner.Readdir(path)
	f.ls.End(iostats.Meta, 0, start, err)
	return entries, err
}

// Rename implements FS.
func (f *InstrumentFS) Rename(oldpath, newpath string) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: oldpath})
	start := f.ls.Start()
	err := f.inner.Rename(oldpath, newpath)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

// Access implements FS.
func (f *InstrumentFS) Access(path string, mode int) error {
	f.emit(OpEvent{Op: iostats.Meta, Path: path})
	start := f.ls.Start()
	err := f.inner.Access(path, mode)
	f.ls.End(iostats.Meta, 0, start, err)
	return err
}

var _ FS = (*InstrumentFS)(nil)
var _ VectorFS = (*InstrumentFS)(nil)
