package posix

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFaultFSTransparentWithoutRules(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/x", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(fd, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lseek(fd, 0, SEEK_SET); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if n, err := f.Read(fd, buf); err != nil || n != 2 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if err := f.Close(fd); err != nil {
		t.Fatal(err)
	}
	if f.Fired() != 0 {
		t.Fatal("rules fired with none installed")
	}
}

func TestFaultRuleAfterAndTimes(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, _ := f.Open("/x", O_CREAT|O_WRONLY, 0o644)
	f.Inject(&FaultRule{Op: FaultWrite, After: 2, Times: 2, Err: ENOSPC})
	results := make([]error, 6)
	for i := range results {
		_, results[i] = f.Write(fd, []byte("a"))
	}
	for i, wantErr := range []bool{false, false, true, true, false, false} {
		if (results[i] != nil) != wantErr {
			t.Fatalf("write %d: err=%v, want failing=%v", i, results[i], wantErr)
		}
	}
	if f.Fired() != 2 {
		t.Fatalf("fired %d, want 2", f.Fired())
	}
	f.Close(fd)
}

func TestFaultRulePathFilter(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	f.Inject(&FaultRule{Op: FaultOpen, PathContains: "victim", Err: EACCES})
	if _, err := f.Open("/bystander", O_CREAT|O_WRONLY, 0o644); err != nil {
		t.Fatalf("bystander affected: %v", err)
	}
	if _, err := f.Open("/victim", O_CREAT|O_WRONLY, 0o644); !errors.Is(err, EACCES) {
		t.Fatalf("victim open = %v, want EACCES", err)
	}
	f.Clear()
	if _, err := f.Open("/victim", O_CREAT|O_WRONLY, 0o644); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

func TestFaultAnyMatchesEverything(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	f.Inject(&FaultRule{Op: FaultAny, Err: EIO})
	if _, err := f.Open("/a", O_CREAT|O_WRONLY, 0o644); !errors.Is(err, EIO) {
		t.Fatal("open passed under FaultAny")
	}
	if _, err := f.Stat("/a"); !errors.Is(err, EIO) {
		t.Fatal("stat passed under FaultAny")
	}
	if err := f.Mkdir("/d", 0o755); !errors.Is(err, EIO) {
		t.Fatal("mkdir passed under FaultAny")
	}
}

func TestNullFSLargeScaleWorkload(t *testing.T) {
	// A paper-scale write volume (8 GiB) through the dataless backend
	// completes quickly and tracks size exactly — the mechanism that lets
	// class D BT (136 GB) replay op-for-op.
	fs := NewNullFS()
	fd, err := fs.Open("/huge", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 8 << 20
	buf := make([]byte, chunk)
	var want int64
	for i := 0; i < 1024; i++ { // 8 GiB
		n, err := fs.Write(fd, buf)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(n)
	}
	st, _ := fs.Fstat(fd)
	if st.Size != want || want != 8<<30 {
		t.Fatalf("size = %d, want %d", st.Size, want)
	}
	fs.Close(fd)
}

func TestNullFSSemanticsMatchMemFS(t *testing.T) {
	// Namespace behaviour (not payload) must match MemFS exactly: same
	// random op sequence, same errors and sizes.
	null := NewNullFS()
	mem := NewMemFS()
	type op struct {
		f    func(FS) error
		name string
	}
	ops := []op{
		{func(f FS) error { return f.Mkdir("/d", 0o755) }, "mkdir"},
		{func(f FS) error { return f.Mkdir("/d", 0o755) }, "mkdir-again"},
		{func(f FS) error {
			fd, err := f.Open("/d/f", O_CREAT|O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			f.Write(fd, make([]byte, 123))
			return f.Close(fd)
		}, "create+write"},
		{func(f FS) error { return f.Truncate("/d/f", 1000) }, "truncate-up"},
		{func(f FS) error { return f.Rename("/d/f", "/d/g") }, "rename"},
		{func(f FS) error { return f.Unlink("/d/missing") }, "unlink-missing"},
		{func(f FS) error { return f.Rmdir("/d") }, "rmdir-nonempty"},
	}
	for _, o := range ops {
		errN := o.f(null)
		errM := o.f(mem)
		if (errN == nil) != (errM == nil) {
			t.Fatalf("%s: null=%v mem=%v", o.name, errN, errM)
		}
	}
	stN, _ := null.Stat("/d/g")
	stM, _ := mem.Stat("/d/g")
	if stN.Size != stM.Size {
		t.Fatalf("size diverged: null=%d mem=%d", stN.Size, stM.Size)
	}
}

func TestFaultFSServiceTimeSerializes(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/svc", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFull(f, fd, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}

	const d = 4 * time.Millisecond
	f.SetServiceTime(FaultRead, d)
	const ops = 6
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			if _, err := f.Pread(fd, buf, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// The single service slot serializes the preads: total time is at
	// least ops x d no matter how many goroutines issue them.
	if got := time.Since(start); got < ops*d {
		t.Fatalf("concurrent preads took %v, want >= %v (service slot not serialized)", got, ops*d)
	}
	// Writes are a different class: unaffected. Issue 2*ops of them
	// concurrently — if they were wrongly subject to the service slot
	// they would serialize to at least 2*ops*d; finishing well under
	// that proves they bypassed it, with enough slack that a scheduler
	// pause cannot fail a correct implementation.
	concurrent := func(op func() error) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2*ops; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := op(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	if got := concurrent(func() error { return WriteFull(f, fd, make([]byte, 8), 0) }); got >= 2*ops*d {
		t.Fatalf("%d writes took %v under a read service time (wrongly serialized?)", 2*ops, got)
	}
	// Disabling restores full speed.
	f.SetServiceTime(FaultRead, 0)
	if got := concurrent(func() error { return ReadFull(f, fd, make([]byte, 8), 0) }); got >= 2*ops*d {
		t.Fatalf("%d reads took %v after disabling service time (still serialized?)", 2*ops, got)
	}
	f.Close(fd)
}

// TestFaultFSKillRevive pins whole-backend failure: every op (except
// Close) fails with EIO while killed, and Revive restores service with
// pre-kill data intact.
func TestFaultFSKillRevive(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/x", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite(fd, []byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	f.Kill()
	if !f.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	if _, err := f.Pread(fd, make([]byte, 1), 0); !errors.Is(err, EIO) {
		t.Fatalf("pread on killed backend = %v, want EIO", err)
	}
	if _, err := f.Open("/y", O_CREAT|O_WRONLY, 0o644); !errors.Is(err, EIO) {
		t.Fatalf("open on killed backend = %v, want EIO", err)
	}
	if _, err := f.Stat("/x"); !errors.Is(err, EIO) {
		t.Fatalf("stat on killed backend = %v, want EIO", err)
	}
	if err := f.Close(fd); err != nil {
		t.Fatalf("close must survive a kill: %v", err)
	}
	f.Revive()
	buf := make([]byte, 6)
	fd2, err := f.Open("/x", O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open after revive: %v", err)
	}
	if err := ReadFull(f, fd2, buf, 0); err != nil || string(buf) != "before" {
		t.Fatalf("pre-kill data lost: %q, %v", buf, err)
	}
	f.Close(fd2)
}

// TestFaultFSScheduleOps pins the deterministic op-count schedule: a
// kill fires exactly after the configured operation, a later step
// revives, and replaying the same op sequence reproduces the same
// failure pattern (no wall clock involved).
func TestFaultFSScheduleOps(t *testing.T) {
	run := func() []bool {
		f := NewFaultFS(NewMemFS())
		fd, err := f.Open("/x", O_CREAT|O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Schedule(nil,
			&FaultStep{AfterOps: 3, Op: FaultWrite, Kill: true},
			&FaultStep{AfterOps: 5, Op: FaultWrite, Revive: true},
		)
		var outcomes []bool
		for i := 0; i < 7; i++ {
			_, err := f.Pwrite(fd, []byte{byte(i)}, int64(i))
			outcomes = append(outcomes, err == nil)
		}
		f.Close(fd)
		return outcomes
	}
	got := run()
	// Writes 1-2 succeed; write 3 reaches the threshold and is the first
	// casualty (the step fires atomically with the op that reaches it);
	// write 5 reaches the revive threshold and completes; 6-7 succeed.
	want := []bool{true, true, false, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: ok=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	again := run()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("schedule not deterministic across runs: %v vs %v", got, again)
		}
	}
}

// TestFaultFSScheduleClock pins clock-triggered steps: with an injected
// manual clock, a kill fires only once the clock passes the deadline —
// no wall-clock sleeps anywhere.
func TestFaultFSScheduleClock(t *testing.T) {
	clk := &manualClock{}
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/x", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Schedule(clk, &FaultStep{After: 10 * time.Second, Kill: true})
	if _, err := f.Pwrite(fd, []byte("a"), 0); err != nil {
		t.Fatalf("write before deadline: %v", err)
	}
	clk.advance(9 * time.Second)
	if _, err := f.Pwrite(fd, []byte("b"), 1); err != nil {
		t.Fatalf("write at t=9s: %v", err)
	}
	clk.advance(2 * time.Second)
	if _, err := f.Pwrite(fd, []byte("c"), 2); !errors.Is(err, EIO) {
		t.Fatalf("write at t=11s = %v, want EIO", err)
	}
	f.Close(fd)
}

// manualClock is a test clock (tune.ManualClock lives above posix in
// the dependency order, so the test carries its own).
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestFaultFSServiceSlotsCompose pins the straggler fix: scoped service
// rules get their own slots, so a long operation in one path family
// does not serialize operations in another — while two operations in
// the same family still queue behind each other.
func TestFaultFSServiceSlotsCompose(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	if err := f.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir("/b", 0o755); err != nil {
		t.Fatal(err)
	}
	fda, err := f.Open("/a/f", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fdb, err := f.Open("/b/f", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Pwrite(fda, []byte("x"), 0)
	f.Pwrite(fdb, []byte("x"), 0)

	// Same slot serializes: two concurrent /a reads take >= 2d. A lower
	// bound cannot flake on a slow machine.
	f.SetServiceTimeRule(FaultRead, "/a/", 30*time.Millisecond)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Pread(fda, make([]byte, 1), 0)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("same-family ops did not serialize: %v", elapsed)
	}

	// Different slots compose: while a long /a operation holds its slot,
	// a burst of /b operations drains without waiting for it.
	f.Clear()
	f.SetServiceTimeRule(FaultRead, "/a/", 300*time.Millisecond)
	f.SetServiceTimeRule(FaultRead, "/b/", time.Millisecond)
	slowDone := make(chan struct{})
	go func() {
		f.Pread(fda, make([]byte, 1), 0) // occupies the /a slot for 300ms
		close(slowDone)
	}()
	// Wait until the slow op is in service (its slot is held), then time
	// the /b burst.
	time.Sleep(20 * time.Millisecond)
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := f.Pread(fdb, make([]byte, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	burst := time.Since(start)
	<-slowDone
	if burst >= 250*time.Millisecond {
		t.Fatalf("/b burst waited for the /a slot: %v", burst)
	}
	f.Close(fda)
	f.Close(fdb)
}

// TestFaultFSClearRevives pins that Clear resets kill state, schedules
// and scoped service rules.
func TestFaultFSClearRevives(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	f.Kill()
	f.Schedule(nil, &FaultStep{AfterOps: 1, Kill: true})
	f.SetServiceTimeRule(FaultAny, "", time.Hour)
	f.Clear()
	if f.Killed() {
		t.Fatal("Clear did not revive")
	}
	if _, err := f.Open("/x", O_CREAT|O_WRONLY, 0o644); err != nil {
		t.Fatalf("op after Clear: %v", err)
	}
}

// TestFaultFSPartialWriteRules pins the short-write-then-error shape:
// a write rule with Partial lets the first Partial bytes land in the
// inner FS before the injected error surfaces, clamped to the request,
// on both the streaming and positional write paths.
func TestFaultFSPartialWriteRules(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/p", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}

	f.Inject(&FaultRule{Op: FaultWrite, Err: ENOSPC, Partial: 3, Times: 1})
	if n, err := f.Write(fd, []byte("abcdef")); n != 3 || !errors.Is(err, ENOSPC) {
		t.Fatalf("partial Write = %d, %v; want 3, ENOSPC", n, err)
	}

	// Partial larger than the request clamps to the request.
	f.Inject(&FaultRule{Op: FaultWrite, Err: ENOSPC, Partial: 100, Times: 1})
	if n, err := f.Pwrite(fd, []byte("XY"), 0); n != 2 || !errors.Is(err, ENOSPC) {
		t.Fatalf("clamped Pwrite = %d, %v; want 2, ENOSPC", n, err)
	}

	// Zero Partial fails the whole op: nothing lands.
	f.Inject(&FaultRule{Op: FaultWrite, Err: EIO, Times: 1})
	if n, err := f.Pwrite(fd, []byte("ZZZZ"), 0); n != 0 || !errors.Is(err, EIO) {
		t.Fatalf("whole-op Pwrite = %d, %v; want 0, EIO", n, err)
	}

	// The surviving bytes are exactly the partial prefixes: "XYc".
	got := make([]byte, 8)
	n, err := f.Pread(fd, got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:n]) != "XYc" {
		t.Fatalf("file contents after partial writes = %q, want %q", got[:n], "XYc")
	}
	if err := f.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFSOpClassRules drives a rule through every fd-based op class —
// read, sync and meta — pinning which class each method checks.
func TestFaultFSOpClassRules(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/cls", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(fd, []byte("data")); err != nil {
		t.Fatal(err)
	}

	f.Inject(&FaultRule{Op: FaultRead, Err: EIO, Times: 1})
	if _, err := f.Read(fd, make([]byte, 4)); !errors.Is(err, EIO) {
		t.Fatalf("Read under read rule = %v, want EIO", err)
	}
	f.Inject(&FaultRule{Op: FaultSync, Err: EIO, Times: 1})
	if err := f.Fsync(fd); !errors.Is(err, EIO) {
		t.Fatalf("Fsync under sync rule = %v, want EIO", err)
	}
	f.Inject(&FaultRule{Op: FaultMeta, Err: EIO, Times: 2})
	if err := f.Ftruncate(fd, 2); !errors.Is(err, EIO) {
		t.Fatalf("Ftruncate under meta rule = %v, want EIO", err)
	}
	if _, err := f.Fstat(fd); !errors.Is(err, EIO) {
		t.Fatalf("Fstat under meta rule = %v, want EIO", err)
	}

	// Rules exhausted: every op recovers, and the streaming pointer
	// never advanced on the failed Read.
	if off, err := f.Lseek(fd, 0, SEEK_CUR); err != nil || off != 4 {
		t.Fatalf("Lseek after failed read = %d, %v; want 4", off, err)
	}
	if err := f.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if st, err := f.Fstat(fd); err != nil || st.Size != 4 {
		t.Fatalf("Fstat after rules drained = %+v, %v", st, err)
	}
	if err := f.Close(fd); err != nil {
		t.Fatal(err)
	}
}
