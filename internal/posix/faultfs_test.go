package posix

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFaultFSTransparentWithoutRules(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/x", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(fd, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lseek(fd, 0, SEEK_SET); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if n, err := f.Read(fd, buf); err != nil || n != 2 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if err := f.Close(fd); err != nil {
		t.Fatal(err)
	}
	if f.Fired() != 0 {
		t.Fatal("rules fired with none installed")
	}
}

func TestFaultRuleAfterAndTimes(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, _ := f.Open("/x", O_CREAT|O_WRONLY, 0o644)
	f.Inject(&FaultRule{Op: FaultWrite, After: 2, Times: 2, Err: ENOSPC})
	results := make([]error, 6)
	for i := range results {
		_, results[i] = f.Write(fd, []byte("a"))
	}
	for i, wantErr := range []bool{false, false, true, true, false, false} {
		if (results[i] != nil) != wantErr {
			t.Fatalf("write %d: err=%v, want failing=%v", i, results[i], wantErr)
		}
	}
	if f.Fired() != 2 {
		t.Fatalf("fired %d, want 2", f.Fired())
	}
	f.Close(fd)
}

func TestFaultRulePathFilter(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	f.Inject(&FaultRule{Op: FaultOpen, PathContains: "victim", Err: EACCES})
	if _, err := f.Open("/bystander", O_CREAT|O_WRONLY, 0o644); err != nil {
		t.Fatalf("bystander affected: %v", err)
	}
	if _, err := f.Open("/victim", O_CREAT|O_WRONLY, 0o644); !errors.Is(err, EACCES) {
		t.Fatalf("victim open = %v, want EACCES", err)
	}
	f.Clear()
	if _, err := f.Open("/victim", O_CREAT|O_WRONLY, 0o644); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

func TestFaultAnyMatchesEverything(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	f.Inject(&FaultRule{Op: FaultAny, Err: EIO})
	if _, err := f.Open("/a", O_CREAT|O_WRONLY, 0o644); !errors.Is(err, EIO) {
		t.Fatal("open passed under FaultAny")
	}
	if _, err := f.Stat("/a"); !errors.Is(err, EIO) {
		t.Fatal("stat passed under FaultAny")
	}
	if err := f.Mkdir("/d", 0o755); !errors.Is(err, EIO) {
		t.Fatal("mkdir passed under FaultAny")
	}
}

func TestNullFSLargeScaleWorkload(t *testing.T) {
	// A paper-scale write volume (8 GiB) through the dataless backend
	// completes quickly and tracks size exactly — the mechanism that lets
	// class D BT (136 GB) replay op-for-op.
	fs := NewNullFS()
	fd, err := fs.Open("/huge", O_CREAT|O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 8 << 20
	buf := make([]byte, chunk)
	var want int64
	for i := 0; i < 1024; i++ { // 8 GiB
		n, err := fs.Write(fd, buf)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(n)
	}
	st, _ := fs.Fstat(fd)
	if st.Size != want || want != 8<<30 {
		t.Fatalf("size = %d, want %d", st.Size, want)
	}
	fs.Close(fd)
}

func TestNullFSSemanticsMatchMemFS(t *testing.T) {
	// Namespace behaviour (not payload) must match MemFS exactly: same
	// random op sequence, same errors and sizes.
	null := NewNullFS()
	mem := NewMemFS()
	type op struct {
		f    func(FS) error
		name string
	}
	ops := []op{
		{func(f FS) error { return f.Mkdir("/d", 0o755) }, "mkdir"},
		{func(f FS) error { return f.Mkdir("/d", 0o755) }, "mkdir-again"},
		{func(f FS) error {
			fd, err := f.Open("/d/f", O_CREAT|O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			f.Write(fd, make([]byte, 123))
			return f.Close(fd)
		}, "create+write"},
		{func(f FS) error { return f.Truncate("/d/f", 1000) }, "truncate-up"},
		{func(f FS) error { return f.Rename("/d/f", "/d/g") }, "rename"},
		{func(f FS) error { return f.Unlink("/d/missing") }, "unlink-missing"},
		{func(f FS) error { return f.Rmdir("/d") }, "rmdir-nonempty"},
	}
	for _, o := range ops {
		errN := o.f(null)
		errM := o.f(mem)
		if (errN == nil) != (errM == nil) {
			t.Fatalf("%s: null=%v mem=%v", o.name, errN, errM)
		}
	}
	stN, _ := null.Stat("/d/g")
	stM, _ := mem.Stat("/d/g")
	if stN.Size != stM.Size {
		t.Fatalf("size diverged: null=%d mem=%d", stN.Size, stM.Size)
	}
}

func TestFaultFSServiceTimeSerializes(t *testing.T) {
	f := NewFaultFS(NewMemFS())
	fd, err := f.Open("/svc", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFull(f, fd, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}

	const d = 4 * time.Millisecond
	f.SetServiceTime(FaultRead, d)
	const ops = 6
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			if _, err := f.Pread(fd, buf, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// The single service slot serializes the preads: total time is at
	// least ops x d no matter how many goroutines issue them.
	if got := time.Since(start); got < ops*d {
		t.Fatalf("concurrent preads took %v, want >= %v (service slot not serialized)", got, ops*d)
	}
	// Writes are a different class: unaffected. Issue 2*ops of them
	// concurrently — if they were wrongly subject to the service slot
	// they would serialize to at least 2*ops*d; finishing well under
	// that proves they bypassed it, with enough slack that a scheduler
	// pause cannot fail a correct implementation.
	concurrent := func(op func() error) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2*ops; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := op(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	if got := concurrent(func() error { return WriteFull(f, fd, make([]byte, 8), 0) }); got >= 2*ops*d {
		t.Fatalf("%d writes took %v under a read service time (wrongly serialized?)", 2*ops, got)
	}
	// Disabling restores full speed.
	f.SetServiceTime(FaultRead, 0)
	if got := concurrent(func() error { return ReadFull(f, fd, make([]byte, 8), 0) }); got >= 2*ops*d {
		t.Fatalf("%d reads took %v after disabling service time (still serialized?)", 2*ops, got)
	}
	f.Close(fd)
}
