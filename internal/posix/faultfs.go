package posix

import (
	"strings"
	"sync"
	"time"
)

// FaultFS wraps an FS and injects failures according to programmable
// rules — the substrate for the failure-injection tests that check PLFS
// and LDPLFS degrade cleanly when the backend misbehaves (full file
// system, flaky metadata server, torn writes) — and, via SetServiceTime,
// models a backend with a finite service rate, the substrate for the
// multi-backend aggregation benchmarks.
//
// Beyond per-operation rules, a FaultFS models whole-backend failure:
// Kill fails every subsequent operation (except Close) with EIO until
// Revive, and Schedule arms a deterministic sequence of kill/revive/
// slow transitions triggered by operation counts or by an injected
// clock — no wall-clock sleeps, so chaos tests replay identically
// under -race.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	rules  []*FaultRule
	fds    map[int]string // open path per fd, so fd-based ops match PathContains
	killed bool

	sched    []*FaultStep
	clock    Clock
	schedAt  time.Time       // clock reading when Schedule armed
	opsAny   int             // matching-op counter for schedules
	opsClass map[FaultOp]int // per-class counters for schedules

	svcOp    FaultOp       // operation class the global service time applies to
	svcD     time.Duration // per-op service time (0 = disabled)
	svcMu    sync.Mutex    // the backend's single (global) service slot
	svcRules []*serviceSlot
}

// Clock is the injectable time source for scheduled faults; tune.Clock
// satisfies it (tests drive tune.ManualClock).
type Clock interface{ Now() time.Time }

// FaultOp names an operation class a rule can target.
type FaultOp string

// Operation classes for fault rules.
const (
	FaultOpen  FaultOp = "open"
	FaultRead  FaultOp = "read"
	FaultWrite FaultOp = "write"
	FaultMeta  FaultOp = "meta" // stat/unlink/mkdir/...
	FaultSync  FaultOp = "sync"
	FaultAny   FaultOp = "any"
)

// FaultRule describes one injected failure.
type FaultRule struct {
	// Op selects the operation class (FaultAny matches everything).
	Op FaultOp
	// PathContains restricts the rule to paths containing the substring
	// (empty matches all; fd-based ops match the fd's open path).
	PathContains string
	// After skips the first N matching operations before firing.
	After int
	// Times limits how often the rule fires (0 = forever).
	Times int
	// Err is the injected error.
	Err error
	// Partial, on write rules, lets the first Partial bytes reach the
	// inner FS before the error fires — the kernel's short-write-then-
	// error shape (e.g. ENOSPC after a page). Zero fails the whole op.
	Partial int
	// Gate, when non-nil, blocks a firing operation until the channel
	// is closed (or receives) — a deterministic stall, used to hold a
	// replica's read in flight while a hedged read races past it. A
	// rule with a Gate and a nil Err stalls and then proceeds normally.
	Gate <-chan struct{}

	matched int
	fired   int
}

// FaultStep is one transition of a deterministic fault schedule: when
// its trigger is reached the step fires exactly once, in order of
// arming. Triggers are operation counts (AfterOps matching operations
// of class Op, FaultAny when empty) or, with a clock injected via
// Schedule, elapsed injected time (After since Schedule).
type FaultStep struct {
	// AfterOps fires the step once the backend has seen this many
	// operations of class Op (counted from Schedule; Close and Lseek
	// are exempt, as everywhere in FaultFS).
	AfterOps int
	// Op is the operation class AfterOps counts (default FaultAny).
	Op FaultOp
	// After fires the step once the injected clock has advanced this
	// far past the Schedule call. Ignored without a clock.
	After time.Duration

	// Kill fails all subsequent operations with EIO; Revive undoes it.
	Kill   bool
	Revive bool
	// SetService, when true, installs ServiceOp/Service as the global
	// service time (a backend turning into a straggler mid-run).
	SetService bool
	ServiceOp  FaultOp
	Service    time.Duration

	done bool
}

// serviceSlot is one per-rule service time with its own slot, so
// differently-scoped rules (per backend directory, per op class)
// serialize independently instead of behind the global slot.
type serviceSlot struct {
	op           FaultOp
	pathContains string
	d            time.Duration
	mu           sync.Mutex
}

// NewFaultFS wraps inner with no rules (transparent until Inject).
// FaultFS carries no operation counters of its own: observe it by
// wrapping in an InstrumentFS attached to a collector.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, fds: make(map[int]string), opsClass: make(map[FaultOp]int)}
}

// pathOf returns the path fd was opened under ("" if unknown).
func (f *FaultFS) pathOf(fd int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fds[fd]
}

// Inject adds a rule.
func (f *FaultFS) Inject(r *FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
}

// Clear removes all rules, schedules and per-rule service times, and
// revives a killed backend.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.sched = nil
	f.killed = false
	f.svcRules = nil
}

// Kill fails every subsequent operation (except Close) with EIO — the
// whole backend going dark, as distinct from per-op rules. Idempotent.
func (f *FaultFS) Kill() {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
}

// Revive brings a killed backend back. Data written before the kill is
// intact (the inner FS never saw the failed operations); data the
// composite wrote elsewhere while this backend was dark is missing
// until re-replication heals it.
func (f *FaultFS) Revive() {
	f.mu.Lock()
	f.killed = false
	f.mu.Unlock()
}

// Killed reports whether the backend is currently dark.
func (f *FaultFS) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// Schedule arms a deterministic fault schedule. Operation counting
// starts at zero now; clock triggers are measured from now on the
// injected clock (nil clock disables clock triggers). Steps fire in
// order as their triggers are reached, atomically with the operation
// that reaches them: an AfterOps=N kill step means operation N+1 and
// later fail.
func (f *FaultFS) Schedule(clock Clock, steps ...*FaultStep) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sched = steps
	f.clock = clock
	f.opsAny = 0
	f.opsClass = make(map[FaultOp]int)
	if clock != nil {
		f.schedAt = clock.Now()
	}
}

// step advances the fault schedule by one operation of class op and
// applies every newly-triggered step. Called with f.mu held.
func (f *FaultFS) stepLocked(op FaultOp) {
	if len(f.sched) == 0 {
		return
	}
	f.opsAny++
	f.opsClass[op]++
	var now time.Time
	if f.clock != nil {
		now = f.clock.Now()
	}
	for _, st := range f.sched {
		if st.done {
			continue
		}
		trig := false
		if st.AfterOps > 0 {
			cls := st.Op
			if cls == "" {
				cls = FaultAny
			}
			n := f.opsAny
			if cls != FaultAny {
				n = f.opsClass[cls]
			}
			trig = n >= st.AfterOps
		} else if st.After > 0 && f.clock != nil {
			trig = !now.Before(f.schedAt.Add(st.After))
		}
		if !trig {
			continue
		}
		st.done = true
		if st.Kill {
			f.killed = true
		}
		if st.Revive {
			f.killed = false
		}
		if st.SetService {
			f.svcOp, f.svcD = st.ServiceOp, st.Service
		}
	}
}

// enter runs the common prologue of every faultable operation: advance
// the schedule, fail if the backend is dark, then occupy the matching
// service slots. It returns EIO for a killed backend.
func (f *FaultFS) enter(op FaultOp, path string) error {
	f.mu.Lock()
	f.stepLocked(op)
	killed := f.killed
	f.mu.Unlock()
	if killed {
		return EIO
	}
	f.service(op, path)
	return nil
}

// SetServiceTime models the backend's service rate: every operation of
// class op (FaultAny for all classes; Close and Lseek are exempt, like
// injected faults) occupies the backend's single service slot for d
// before proceeding, like a store that retires one request at a time.
// Concurrent operations against one FaultFS therefore serialize behind
// each other — the regime where striping containers across several
// backends aggregates bandwidth, which is exactly what the
// multi-backend benchmarks need a stand-in for. d = 0 disables.
func (f *FaultFS) SetServiceTime(op FaultOp, d time.Duration) {
	f.mu.Lock()
	f.svcOp, f.svcD = op, d
	f.mu.Unlock()
}

// SetServiceTimeRule adds a scoped service time: operations of class op
// whose path contains pathContains occupy this rule's own slot for d.
// Unlike the global SetServiceTime slot, each rule serializes
// independently — so one FaultFS standing in for several stores (or one
// store with independent queues) can give each path family its own
// service rate without the families serializing behind each other.
// The global slot, when also set, still applies; keep it unset to model
// fully independent queues.
func (f *FaultFS) SetServiceTimeRule(op FaultOp, pathContains string, d time.Duration) {
	f.mu.Lock()
	f.svcRules = append(f.svcRules, &serviceSlot{op: op, pathContains: pathContains, d: d})
	f.mu.Unlock()
}

// service occupies the matching service slots for the configured times:
// first the backend's global slot, then every matching scoped rule's
// own slot.
func (f *FaultFS) service(op FaultOp, path string) {
	f.mu.Lock()
	d := f.svcD
	match := f.svcOp == FaultAny || f.svcOp == op
	var scoped []*serviceSlot
	for _, r := range f.svcRules {
		if r.d <= 0 {
			continue
		}
		if r.op != FaultAny && r.op != op {
			continue
		}
		if r.pathContains != "" && !strings.Contains(path, r.pathContains) {
			continue
		}
		scoped = append(scoped, r)
	}
	f.mu.Unlock()
	if d > 0 && match {
		f.svcMu.Lock()
		time.Sleep(d)
		f.svcMu.Unlock()
	}
	for _, r := range scoped {
		r.mu.Lock()
		time.Sleep(r.d)
		r.mu.Unlock()
	}
}

// Fired reports how many times any rule has fired.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, r := range f.rules {
		total += r.fired
	}
	return total
}

// check returns the injected error for (op, path), if any rule fires.
func (f *FaultFS) check(op FaultOp, path string) error {
	err, _ := f.checkPartial(op, path)
	return err
}

// checkPartial is check plus the firing rule's Partial byte budget, for
// the write paths that can honor a short-write-then-error injection. A
// firing rule's Gate (if any) is waited on outside the lock, so a
// gated operation stalls without blocking the rest of the backend.
func (f *FaultFS) checkPartial(op FaultOp, path string) (error, int) {
	f.mu.Lock()
	var fired *FaultRule
	for _, r := range f.rules {
		if r.Op != FaultAny && r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		r.fired++
		fired = r
		break
	}
	f.mu.Unlock()
	if fired == nil {
		return nil, 0
	}
	if fired.Gate != nil {
		<-fired.Gate
	}
	return fired.Err, fired.Partial
}

// Open implements FS.
func (f *FaultFS) Open(path string, flags int, mode uint32) (int, error) {
	if err := f.enter(FaultOpen, path); err != nil {
		return -1, err
	}
	if err := f.check(FaultOpen, path); err != nil {
		return -1, err
	}
	fd, err := f.inner.Open(path, flags, mode)
	if err == nil {
		f.mu.Lock()
		f.fds[fd] = path
		f.mu.Unlock()
	}
	return fd, err
}

// Close implements FS (never injected, and exempt from kill: close must
// stay reliable so tests can clean up).
func (f *FaultFS) Close(fd int) error {
	f.mu.Lock()
	delete(f.fds, fd)
	f.mu.Unlock()
	return f.inner.Close(fd)
}

// Read implements FS.
func (f *FaultFS) Read(fd int, p []byte) (int, error) {
	if err := f.enter(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	if err := f.check(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	return f.inner.Read(fd, p)
}

// injectPartial applies a firing write rule: the first partial bytes
// (clamped to the request) land through write, and the injected error is
// returned with the short count — the kernel's short-write-then-error
// shape shared by Write and Pwrite.
func injectPartial(p []byte, partial int, injected error, write func([]byte) (int, error)) (int, error) {
	if partial > len(p) {
		partial = len(p)
	}
	if partial > 0 {
		n, _ := write(p[:partial])
		return n, injected
	}
	return 0, injected
}

// Write implements FS. A firing rule with Partial > 0 lets that many
// bytes (clamped to the request) through before surfacing the error.
func (f *FaultFS) Write(fd int, p []byte) (int, error) {
	if err := f.enter(FaultWrite, f.pathOf(fd)); err != nil {
		return 0, err
	}
	if err, partial := f.checkPartial(FaultWrite, f.pathOf(fd)); err != nil {
		return injectPartial(p, partial, err, func(q []byte) (int, error) {
			return f.inner.Write(fd, q)
		})
	}
	return f.inner.Write(fd, p)
}

// Pread implements FS.
func (f *FaultFS) Pread(fd int, p []byte, off int64) (int, error) {
	if err := f.enter(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	if err := f.check(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	return f.inner.Pread(fd, p, off)
}

// Preadv implements VectorFS. The whole vector is one faultable
// operation: it advances schedules and matches rules once, like the
// single backend submission it stands for — so batching reads changes
// how often rules are consulted exactly as it changes the syscall
// count.
func (f *FaultFS) Preadv(fd int, bufs [][]byte, off int64) (int64, error) {
	if err := f.enter(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	if err := f.check(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	return Preadv(f.inner, fd, bufs, off)
}

// Pwritev implements VectorFS. Rules match once per vector; a firing
// rule's Partial budget is a byte prefix of the whole vector, spanning
// buffer boundaries — the short-write-then-error shape of a failed
// pwritev(2).
func (f *FaultFS) Pwritev(fd int, bufs [][]byte, off int64) (int64, error) {
	if err := f.enter(FaultWrite, f.pathOf(fd)); err != nil {
		return 0, err
	}
	if err, partial := f.checkPartial(FaultWrite, f.pathOf(fd)); err != nil {
		return f.injectPartialV(fd, bufs, off, partial, err)
	}
	return Pwritev(f.inner, fd, bufs, off)
}

// injectPartialV lands the first partial bytes of the vector (clamped,
// spanning buffers) on the inner FS and returns the injected error with
// the short count.
func (f *FaultFS) injectPartialV(fd int, bufs [][]byte, off int64, partial int, injected error) (int64, error) {
	var put int64
	budget := int64(partial)
	if max := vectorLen(bufs); budget > max {
		budget = max
	}
	for _, b := range bufs {
		if budget <= 0 {
			break
		}
		q := b
		if int64(len(q)) > budget {
			q = q[:budget]
		}
		n, _ := f.inner.Pwrite(fd, q, off+put)
		put += int64(n)
		budget -= int64(n)
		if n < len(q) {
			break
		}
	}
	return put, injected
}

// Pwrite implements FS. Partial rules behave as in Write.
func (f *FaultFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	if err := f.enter(FaultWrite, f.pathOf(fd)); err != nil {
		return 0, err
	}
	if err, partial := f.checkPartial(FaultWrite, f.pathOf(fd)); err != nil {
		return injectPartial(p, partial, err, func(q []byte) (int, error) {
			return f.inner.Pwrite(fd, q, off)
		})
	}
	return f.inner.Pwrite(fd, p, off)
}

// Lseek implements FS (exempt from faults, service and kill — a pure
// pointer move).
func (f *FaultFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	return f.inner.Lseek(fd, offset, whence)
}

// Fsync implements FS.
func (f *FaultFS) Fsync(fd int) error {
	if err := f.enter(FaultSync, f.pathOf(fd)); err != nil {
		return err
	}
	if err := f.check(FaultSync, f.pathOf(fd)); err != nil {
		return err
	}
	return f.inner.Fsync(fd)
}

// Ftruncate implements FS.
func (f *FaultFS) Ftruncate(fd int, size int64) error {
	if err := f.enter(FaultMeta, f.pathOf(fd)); err != nil {
		return err
	}
	if err := f.check(FaultMeta, f.pathOf(fd)); err != nil {
		return err
	}
	return f.inner.Ftruncate(fd, size)
}

// Fstat implements FS.
func (f *FaultFS) Fstat(fd int) (Stat, error) {
	if err := f.enter(FaultMeta, f.pathOf(fd)); err != nil {
		return Stat{}, err
	}
	if err := f.check(FaultMeta, f.pathOf(fd)); err != nil {
		return Stat{}, err
	}
	return f.inner.Fstat(fd)
}

// Stat implements FS.
func (f *FaultFS) Stat(path string) (Stat, error) {
	if err := f.enter(FaultMeta, path); err != nil {
		return Stat{}, err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return Stat{}, err
	}
	return f.inner.Stat(path)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(path string, size int64) error {
	if err := f.enter(FaultMeta, path); err != nil {
		return err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

// Unlink implements FS.
func (f *FaultFS) Unlink(path string) error {
	if err := f.enter(FaultMeta, path); err != nil {
		return err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Unlink(path)
}

// Mkdir implements FS.
func (f *FaultFS) Mkdir(path string, mode uint32) error {
	if err := f.enter(FaultMeta, path); err != nil {
		return err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Mkdir(path, mode)
}

// Rmdir implements FS.
func (f *FaultFS) Rmdir(path string) error {
	if err := f.enter(FaultMeta, path); err != nil {
		return err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Rmdir(path)
}

// Readdir implements FS.
func (f *FaultFS) Readdir(path string) ([]DirEntry, error) {
	if err := f.enter(FaultMeta, path); err != nil {
		return nil, err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return nil, err
	}
	return f.inner.Readdir(path)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.enter(FaultMeta, oldpath); err != nil {
		return err
	}
	if err := f.check(FaultMeta, oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Access implements FS.
func (f *FaultFS) Access(path string, mode int) error {
	if err := f.enter(FaultMeta, path); err != nil {
		return err
	}
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Access(path, mode)
}

var _ FS = (*FaultFS)(nil)
var _ VectorFS = (*FaultFS)(nil)
