package posix

import (
	"strings"
	"sync"
	"time"
)

// FaultFS wraps an FS and injects failures according to programmable
// rules — the substrate for the failure-injection tests that check PLFS
// and LDPLFS degrade cleanly when the backend misbehaves (full file
// system, flaky metadata server, torn writes) — and, via SetServiceTime,
// models a backend with a finite service rate, the substrate for the
// multi-backend aggregation benchmarks.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	rules []*FaultRule
	fds   map[int]string // open path per fd, so fd-based ops match PathContains

	svcOp FaultOp       // operation class the service time applies to
	svcD  time.Duration // per-op service time (0 = disabled)
	svcMu sync.Mutex    // the backend's single service slot
}

// FaultOp names an operation class a rule can target.
type FaultOp string

// Operation classes for fault rules.
const (
	FaultOpen  FaultOp = "open"
	FaultRead  FaultOp = "read"
	FaultWrite FaultOp = "write"
	FaultMeta  FaultOp = "meta" // stat/unlink/mkdir/...
	FaultSync  FaultOp = "sync"
	FaultAny   FaultOp = "any"
)

// FaultRule describes one injected failure.
type FaultRule struct {
	// Op selects the operation class (FaultAny matches everything).
	Op FaultOp
	// PathContains restricts the rule to paths containing the substring
	// (empty matches all; fd-based ops match the fd's open path).
	PathContains string
	// After skips the first N matching operations before firing.
	After int
	// Times limits how often the rule fires (0 = forever).
	Times int
	// Err is the injected error.
	Err error
	// Partial, on write rules, lets the first Partial bytes reach the
	// inner FS before the error fires — the kernel's short-write-then-
	// error shape (e.g. ENOSPC after a page). Zero fails the whole op.
	Partial int

	matched int
	fired   int
}

// NewFaultFS wraps inner with no rules (transparent until Inject).
// FaultFS carries no operation counters of its own: observe it by
// wrapping in an InstrumentFS attached to a collector.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, fds: make(map[int]string)}
}

// pathOf returns the path fd was opened under ("" if unknown).
func (f *FaultFS) pathOf(fd int) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fds[fd]
}

// Inject adds a rule.
func (f *FaultFS) Inject(r *FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
}

// Clear removes all rules.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// SetServiceTime models the backend's service rate: every operation of
// class op (FaultAny for all classes; Close and Lseek are exempt, like
// injected faults) occupies the backend's single service slot for d
// before proceeding, like a store that retires one request at a time.
// Concurrent operations against one FaultFS therefore serialize behind
// each other — the regime where striping containers across several
// backends aggregates bandwidth, which is exactly what the
// multi-backend benchmarks need a stand-in for. d = 0 disables.
func (f *FaultFS) SetServiceTime(op FaultOp, d time.Duration) {
	f.mu.Lock()
	f.svcOp, f.svcD = op, d
	f.mu.Unlock()
}

// service occupies the backend's service slot for the configured time,
// if op matches.
func (f *FaultFS) service(op FaultOp) {
	f.mu.Lock()
	d := f.svcD
	match := f.svcOp == FaultAny || f.svcOp == op
	f.mu.Unlock()
	if d <= 0 || !match {
		return
	}
	f.svcMu.Lock()
	time.Sleep(d)
	f.svcMu.Unlock()
}

// Fired reports how many times any rule has fired.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, r := range f.rules {
		total += r.fired
	}
	return total
}

// check returns the injected error for (op, path), if any rule fires.
func (f *FaultFS) check(op FaultOp, path string) error {
	err, _ := f.checkPartial(op, path)
	return err
}

// checkPartial is check plus the firing rule's Partial byte budget, for
// the write paths that can honor a short-write-then-error injection.
func (f *FaultFS) checkPartial(op FaultOp, path string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != FaultAny && r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		r.fired++
		return r.Err, r.Partial
	}
	return nil, 0
}

// Open implements FS.
func (f *FaultFS) Open(path string, flags int, mode uint32) (int, error) {
	f.service(FaultOpen)
	if err := f.check(FaultOpen, path); err != nil {
		return -1, err
	}
	fd, err := f.inner.Open(path, flags, mode)
	if err == nil {
		f.mu.Lock()
		f.fds[fd] = path
		f.mu.Unlock()
	}
	return fd, err
}

// Close implements FS (never injected: close must stay reliable so tests
// can clean up).
func (f *FaultFS) Close(fd int) error {
	f.mu.Lock()
	delete(f.fds, fd)
	f.mu.Unlock()
	return f.inner.Close(fd)
}

// Read implements FS.
func (f *FaultFS) Read(fd int, p []byte) (int, error) {
	f.service(FaultRead)
	if err := f.check(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	return f.inner.Read(fd, p)
}

// injectPartial applies a firing write rule: the first partial bytes
// (clamped to the request) land through write, and the injected error is
// returned with the short count — the kernel's short-write-then-error
// shape shared by Write and Pwrite.
func injectPartial(p []byte, partial int, injected error, write func([]byte) (int, error)) (int, error) {
	if partial > len(p) {
		partial = len(p)
	}
	if partial > 0 {
		n, _ := write(p[:partial])
		return n, injected
	}
	return 0, injected
}

// Write implements FS. A firing rule with Partial > 0 lets that many
// bytes (clamped to the request) through before surfacing the error.
func (f *FaultFS) Write(fd int, p []byte) (int, error) {
	f.service(FaultWrite)
	if err, partial := f.checkPartial(FaultWrite, f.pathOf(fd)); err != nil {
		return injectPartial(p, partial, err, func(q []byte) (int, error) {
			return f.inner.Write(fd, q)
		})
	}
	return f.inner.Write(fd, p)
}

// Pread implements FS.
func (f *FaultFS) Pread(fd int, p []byte, off int64) (int, error) {
	f.service(FaultRead)
	if err := f.check(FaultRead, f.pathOf(fd)); err != nil {
		return 0, err
	}
	return f.inner.Pread(fd, p, off)
}

// Pwrite implements FS. Partial rules behave as in Write.
func (f *FaultFS) Pwrite(fd int, p []byte, off int64) (int, error) {
	f.service(FaultWrite)
	if err, partial := f.checkPartial(FaultWrite, f.pathOf(fd)); err != nil {
		return injectPartial(p, partial, err, func(q []byte) (int, error) {
			return f.inner.Pwrite(fd, q, off)
		})
	}
	return f.inner.Pwrite(fd, p, off)
}

// Lseek implements FS.
func (f *FaultFS) Lseek(fd int, offset int64, whence int) (int64, error) {
	return f.inner.Lseek(fd, offset, whence)
}

// Fsync implements FS.
func (f *FaultFS) Fsync(fd int) error {
	f.service(FaultSync)
	if err := f.check(FaultSync, f.pathOf(fd)); err != nil {
		return err
	}
	return f.inner.Fsync(fd)
}

// Ftruncate implements FS.
func (f *FaultFS) Ftruncate(fd int, size int64) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, f.pathOf(fd)); err != nil {
		return err
	}
	return f.inner.Ftruncate(fd, size)
}

// Fstat implements FS.
func (f *FaultFS) Fstat(fd int) (Stat, error) {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, f.pathOf(fd)); err != nil {
		return Stat{}, err
	}
	return f.inner.Fstat(fd)
}

// Stat implements FS.
func (f *FaultFS) Stat(path string) (Stat, error) {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return Stat{}, err
	}
	return f.inner.Stat(path)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(path string, size int64) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

// Unlink implements FS.
func (f *FaultFS) Unlink(path string) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Unlink(path)
}

// Mkdir implements FS.
func (f *FaultFS) Mkdir(path string, mode uint32) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Mkdir(path, mode)
}

// Rmdir implements FS.
func (f *FaultFS) Rmdir(path string) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Rmdir(path)
}

// Readdir implements FS.
func (f *FaultFS) Readdir(path string) ([]DirEntry, error) {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return nil, err
	}
	return f.inner.Readdir(path)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Access implements FS.
func (f *FaultFS) Access(path string, mode int) error {
	f.service(FaultMeta)
	if err := f.check(FaultMeta, path); err != nil {
		return err
	}
	return f.inner.Access(path, mode)
}

var _ FS = (*FaultFS)(nil)
