package posix

import "fmt"

// Open flags. Values mirror Linux so that traces read naturally; only the
// flags PLFS and the paper's tools require are defined.
const (
	O_RDONLY  = 0x0
	O_WRONLY  = 0x1
	O_RDWR    = 0x2
	O_ACCMODE = 0x3

	O_CREAT  = 0x40
	O_EXCL   = 0x80
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// Whence values for Lseek.
const (
	SEEK_SET = 0
	SEEK_CUR = 1
	SEEK_END = 2
)

// Access modes for Access.
const (
	F_OK = 0
	R_OK = 4
	W_OK = 2
	X_OK = 1
)

// Errno is a POSIX-style error number. The zero value is "no error" and is
// never returned as an error.
type Errno int

// Error numbers used by the backends. Values match Linux for familiarity.
const (
	EPERM     Errno = 1
	ENOENT    Errno = 2
	EIO       Errno = 5
	EBADF     Errno = 9
	EACCES    Errno = 13
	EEXIST    Errno = 17
	ENOTDIR   Errno = 20
	EXDEV     Errno = 18
	EISDIR    Errno = 21
	EINVAL    Errno = 22
	EMFILE    Errno = 24
	ENOSPC    Errno = 28
	ESPIPE    Errno = 29
	ENOSYS    Errno = 38
	ENOTEMPTY Errno = 39
	EOVERFLOW Errno = 75
)

var errnoNames = map[Errno]string{
	EPERM:     "EPERM: operation not permitted",
	ENOENT:    "ENOENT: no such file or directory",
	EIO:       "EIO: input/output error",
	EBADF:     "EBADF: bad file descriptor",
	EACCES:    "EACCES: permission denied",
	EEXIST:    "EEXIST: file exists",
	EXDEV:     "EXDEV: invalid cross-device link",
	ENOTDIR:   "ENOTDIR: not a directory",
	EISDIR:    "EISDIR: is a directory",
	EINVAL:    "EINVAL: invalid argument",
	EMFILE:    "EMFILE: too many open files",
	ENOSPC:    "ENOSPC: no space left on device",
	ESPIPE:    "ESPIPE: illegal seek",
	ENOSYS:    "ENOSYS: function not implemented",
	ENOTEMPTY: "ENOTEMPTY: directory not empty",
	EOVERFLOW: "EOVERFLOW: value too large",
}

func (e Errno) Error() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno %d", int(e))
}

// Is reports whether target is the same Errno, letting errors.Is work across
// wrapped errors.
func (e Errno) Is(target error) bool {
	t, ok := target.(Errno)
	return ok && t == e
}

// Mode bits. Only the file-type distinction and permission bits matter to
// this layer.
const (
	ModeDir  uint32 = 0o40000
	ModePerm uint32 = 0o7777
)

// Stat describes a file, directory, or PLFS container as seen through a
// backend.
type Stat struct {
	Size  int64  // logical size in bytes
	Mode  uint32 // ModeDir for directories, plus permission bits
	Nlink int    // link count (1 for files, 2+ for directories)
	Ino   uint64 // backend-unique identity
	Mtime int64  // modification time, nanoseconds (logical time for MemFS)
	Atime int64  // access time, nanoseconds
	Ctime int64  // change time, nanoseconds
}

// IsDir reports whether the stat describes a directory.
func (s Stat) IsDir() bool { return s.Mode&ModeDir != 0 }

// DirEntry is a single directory entry returned by Readdir.
type DirEntry struct {
	Name  string
	IsDir bool
}

// FS is the POSIX-like interface every backend implements. File descriptors
// are small non-negative integers scoped to the FS instance. All methods
// are safe for concurrent use.
//
// Concurrent positional-I/O contract: Pread and Pwrite take explicit
// offsets and MUST be safe to issue concurrently on the same descriptor
// — they carry no file-pointer state, exactly like pread(2)/pwrite(2).
// The PLFS read engine relies on this to scatter-gather one logical read
// across many goroutines sharing cached descriptors, and the write
// engine relies on it to fan one vectored write's segments out across
// disjoint, pre-reserved ranges of a data dropping (which is also why
// droppings are written at explicit offsets rather than under O_APPEND —
// pwrite(2) on an O_APPEND descriptor ignores its offset on Linux).
// Pwrite past EOF MUST extend the file, zero-filling any gap. MemFS
// satisfies all of this by serializing internally; OSFS delegates to the
// kernel's positional I/O, which is concurrent by specification.
// Read/Write/Lseek, by contrast, share the descriptor's file pointer:
// concurrent use on one fd races benignly (some interleaving wins) but
// is not coordinated.
//
// Backends may additionally implement the optional VectorFS capability
// (Preadv/Pwritev): one contiguous range moved against a buffer list in
// a single operation. Callers batch through the package helpers Preadv
// and Pwritev, which fall back to a scalar loop, so the capability is
// purely a syscall-count optimisation — the bytes are identical either
// way.
type FS interface {
	// Open opens path, honouring O_CREAT, O_EXCL, O_TRUNC, O_APPEND and the
	// access mode, and returns a new file descriptor.
	Open(path string, flags int, mode uint32) (int, error)
	// Close releases fd.
	Close(fd int) error
	// Read reads from the current offset, advancing it.
	Read(fd int, p []byte) (int, error)
	// Write writes at the current offset (or EOF under O_APPEND), advancing it.
	Write(fd int, p []byte) (int, error)
	// Pread reads at an explicit offset without moving the file pointer.
	Pread(fd int, p []byte, off int64) (int, error)
	// Pwrite writes at an explicit offset without moving the file pointer.
	Pwrite(fd int, p []byte, off int64) (int, error)
	// Lseek repositions the file pointer and returns the new offset.
	Lseek(fd int, offset int64, whence int) (int64, error)
	// Fsync flushes fd's data to the backing store.
	Fsync(fd int) error
	// Ftruncate sets the file length.
	Ftruncate(fd int, size int64) error
	// Fstat describes an open file.
	Fstat(fd int) (Stat, error)
	// Stat describes a path.
	Stat(path string) (Stat, error)
	// Truncate sets the length of the file at path.
	Truncate(path string, size int64) error
	// Unlink removes a file.
	Unlink(path string) error
	// Mkdir creates a directory.
	Mkdir(path string, mode uint32) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Readdir lists a directory in name order.
	Readdir(path string) ([]DirEntry, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Access checks whether path exists (and, loosely, is accessible).
	Access(path string, mode int) error
}

// ReadFull reads exactly len(p) bytes at off via Pread, or fails.
func ReadFull(fs FS, fd int, p []byte, off int64) error {
	got := 0
	for got < len(p) {
		n, err := fs.Pread(fd, p[got:], off+int64(got))
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("short read: want %d got %d", len(p), got)
		}
		got += n
	}
	return nil
}

// WriteFull writes all of p at off via Pwrite.
func WriteFull(fs FS, fd int, p []byte, off int64) error {
	put := 0
	for put < len(p) {
		n, err := fs.Pwrite(fd, p[put:], off+int64(put))
		if err != nil {
			return err
		}
		put += n
	}
	return nil
}
