package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldplfs/internal/hdf5"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
)

// FlashIOConfig configures the FLASH-IO kernel: a weak-scaled
// checkpoint of NBlocks adaptive-mesh blocks per process, each NXB^3
// cells with NVars unknowns, written through the (mini-)HDF5 layer into
// three files: a checkpoint, a plotfile and a corner plotfile — exactly
// the benchmark's structure. The paper's configuration is 24^3 blocks
// giving ~205 MB per process.
type FlashIOConfig struct {
	NXB     int // cells per block dimension (paper: 24)
	NBlocks int // blocks per process (FLASH-IO default: 80)
	NVars   int // unknowns per cell (FLASH: 24)
	// SplitFiles selects FLASH's split-checkpoint mode: instead of every
	// rank writing its slab into three shared N-1 files, each rank
	// writes a private triplet (<name>.<rank>) holding only its own
	// blocks — the N-N write phase. Block ids stay global, so any rank
	// can still verify any file.
	SplitFiles bool
	Hints      mpiio.Hints
}

// BytesPerProcess returns the approximate checkpoint payload one process
// contributes (the paper's "approximately 205 MB").
func (c FlashIOConfig) BytesPerProcess() int64 {
	cell := int64(c.NXB) * int64(c.NXB) * int64(c.NXB)
	return int64(c.NBlocks) * cell * int64(c.NVars) * 8
}

// FlashIOResult reports what the kernel wrote.
type FlashIOResult struct {
	BytesWritten int64
	Files        []string
}

// flashValue is the deterministic unknown value for verification.
func flashValue(file, globalBlock, v, cell int) float64 {
	return float64(file+1)*1e6 + float64(globalBlock)*1e3 + float64(v)*17 + float64(cell)*0.5
}

// flashFileNames are the three outputs FLASH-IO produces.
func flashFileNames(base string) []string {
	return []string{
		base + "_hdf5_chk_0001",
		base + "_hdf5_plt_cnt_0001",
		base + "_hdf5_plt_crn_0001",
	}
}

// RunFlashIO executes the checkpoint collectively. All ranks must call it.
func RunFlashIO(r *mpi.Rank, drv mpiio.Driver, base string, cfg FlashIOConfig) (FlashIOResult, error) {
	if cfg.NXB <= 0 || cfg.NBlocks <= 0 || cfg.NVars <= 0 {
		return FlashIOResult{}, fmt.Errorf("workload: bad FLASH-IO config %+v", cfg)
	}
	res := FlashIOResult{Files: flashFileNames(base)}
	totalBlocks := uint64(cfg.NBlocks * r.Size())
	if cfg.SplitFiles {
		totalBlocks = uint64(cfg.NBlocks) // each file holds one rank's blocks
	}
	cells := uint64(cfg.NXB * cfg.NXB * cfg.NXB)

	for fileIdx, path := range res.Files {
		// Plotfiles carry a subset of variables (FLASH writes plot_var
		// selections); model that with fewer vars for files 1 and 2.
		nvars := cfg.NVars
		if fileIdx > 0 {
			nvars = (cfg.NVars + 3) / 4
		}
		layout, err := hdf5.BuildLayout([]hdf5.Dataset{
			{Name: "unknowns", ElemSize: 8, Dims: []uint64{totalBlocks, uint64(nvars), cells}},
			{Name: "coordinates", ElemSize: 8, Dims: []uint64{totalBlocks, 3}},
			{Name: "refine level", ElemSize: 4, Dims: []uint64{totalBlocks}},
		})
		if err != nil {
			return res, err
		}
		openPath := path
		if cfg.SplitFiles {
			openPath = nnPath(path, r.Rank())
		}
		fh, err := mpiio.Open(r, drv, openPath, mpiio.ModeCreate|mpiio.ModeRdwr, cfg.Hints)
		if err != nil {
			return res, err
		}
		n, err := writeFlashFile(r, fh, layout, cfg, fileIdx, nvars)
		res.BytesWritten += n
		if err != nil {
			fh.Close()
			return res, fmt.Errorf("workload: FLASH file %s: %w", openPath, err)
		}
		if err := fh.Close(); err != nil {
			return res, err
		}
	}
	return res, nil
}

func writeFlashFile(r *mpi.Rank, fh *mpiio.File, layout *hdf5.File, cfg FlashIOConfig, fileIdx, nvars int) (int64, error) {
	var written int64
	// Rank 0 writes the HDF5 header (the serial metadata phase every
	// FLASH checkpoint starts with); in split mode every rank owns a
	// private file and writes its own header.
	if r.Rank() == 0 || cfg.SplitFiles {
		hdr := layout.Header()
		n, err := fh.WriteAt(hdr, 0)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	r.Barrier()

	unknowns, err := layout.Lookup("unknowns")
	if err != nil {
		return written, err
	}
	coords, err := layout.Lookup("coordinates")
	if err != nil {
		return written, err
	}
	refine, err := layout.Lookup("refine level")
	if err != nil {
		return written, err
	}

	cells := cfg.NXB * cfg.NXB * cfg.NXB
	// firstBlock positions this rank's slab within the file; globalFirst
	// keeps cell values globally unique. They coincide in the shared
	// N-1 layout; split files start at slot zero.
	firstBlock := r.Rank() * cfg.NBlocks
	globalFirst := firstBlock
	if cfg.SplitFiles {
		firstBlock = 0
	}

	// Unknowns: one contiguous slab per process (blocks are distributed
	// contiguously). FLASH-IO drives HDF5 with independent (not
	// collective) transfers — the default H5FD_MPIO mode — which is why
	// the paper sees "multiple files per processor" through PLFS: every
	// rank writes its own slab and thus owns its own droppings.
	blockBytes := int64(nvars) * int64(cells) * 8
	payload := make([]byte, int64(cfg.NBlocks)*blockBytes)
	pos := 0
	for b := 0; b < cfg.NBlocks; b++ {
		gb := globalFirst + b
		for v := 0; v < nvars; v++ {
			for c := 0; c < cells; c++ {
				binary.LittleEndian.PutUint64(payload[pos:], math.Float64bits(flashValue(fileIdx, gb, v, c)))
				pos += 8
			}
		}
	}
	off := unknowns.Offset + int64(firstBlock)*blockBytes
	n, err := fh.WriteAt(payload, off)
	written += int64(n)
	if err != nil {
		return written, err
	}

	// Coordinates and refine levels: small per-block records, strided
	// across ranks — the metadata datasets FLASH writes after the bulk.
	coordPayload := make([]byte, cfg.NBlocks*3*8)
	for b := 0; b < cfg.NBlocks; b++ {
		for d := 0; d < 3; d++ {
			binary.LittleEndian.PutUint64(coordPayload[(b*3+d)*8:], math.Float64bits(float64(globalFirst+b)+float64(d)*0.1))
		}
	}
	n, err = fh.WriteAt(coordPayload, coords.Offset+int64(firstBlock)*3*8)
	written += int64(n)
	if err != nil {
		return written, err
	}

	refinePayload := make([]byte, cfg.NBlocks*4)
	for b := 0; b < cfg.NBlocks; b++ {
		binary.LittleEndian.PutUint32(refinePayload[b*4:], uint32(1+(globalFirst+b)%5))
	}
	n, err = fh.WriteAt(refinePayload, refine.Offset+int64(firstBlock)*4)
	written += int64(n)
	if err != nil {
		return written, err
	}
	// Checkpoint consistency point before close (independent transfers
	// still end with a collective flush in FLASH).
	if serr := fh.Sync(); serr != nil {
		return written, serr
	}
	return written, nil
}

// VerifyFlashFile re-opens one FLASH output (the peer's private file in
// split mode) and checks every unknown this rank's peer wrote. Collective.
func VerifyFlashFile(r *mpi.Rank, drv mpiio.Driver, path string, cfg FlashIOConfig, fileIdx int) error {
	nvars := cfg.NVars
	if fileIdx > 0 {
		nvars = (cfg.NVars + 3) / 4
	}
	peer := (r.Rank() + 1) % r.Size()
	openPath := path
	if cfg.SplitFiles {
		openPath = nnPath(path, peer)
	}
	fh, err := mpiio.Open(r, drv, openPath, mpiio.ModeRdonly, cfg.Hints)
	if err != nil {
		return err
	}
	defer fh.Close()

	hdr := make([]byte, 4096)
	if _, err := fh.ReadAt(hdr, 0); err != nil {
		return err
	}
	layout, err := hdf5.ParseHeader(hdr)
	if err != nil {
		return err
	}
	unknowns, err := layout.Lookup("unknowns")
	if err != nil {
		return err
	}
	if got := int(unknowns.Dims[1]); got != nvars {
		return fmt.Errorf("workload: file %s has %d vars, want %d", openPath, got, nvars)
	}

	cells := cfg.NXB * cfg.NXB * cfg.NXB
	firstBlock := peer * cfg.NBlocks
	globalFirst := firstBlock
	if cfg.SplitFiles {
		firstBlock = 0
	}
	blockBytes := int64(nvars) * int64(cells) * 8
	got := make([]byte, int64(cfg.NBlocks)*blockBytes)
	var n int
	if cfg.SplitFiles {
		// Independent read: collective buffering assumes one shared
		// file, but every rank holds a different one here.
		n, err = fh.ReadAt(got, unknowns.Offset+int64(firstBlock)*blockBytes)
	} else {
		n, err = fh.ReadAtAll(got, unknowns.Offset+int64(firstBlock)*blockBytes)
	}
	if err != nil {
		return err
	}
	if int64(n) != int64(len(got)) {
		return fmt.Errorf("workload: verify short read %d/%d", n, len(got))
	}
	pos := 0
	for b := 0; b < cfg.NBlocks; b++ {
		gb := globalFirst + b
		for v := 0; v < nvars; v++ {
			for c := 0; c < cells; c++ {
				want := math.Float64bits(flashValue(fileIdx, gb, v, c))
				if binary.LittleEndian.Uint64(got[pos:]) != want {
					return fmt.Errorf("workload: verify mismatch block %d var %d cell %d", gb, v, c)
				}
				pos += 8
			}
		}
	}
	return nil
}
