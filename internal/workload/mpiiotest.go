// Package workload implements the paper's three benchmark kernels as real
// programs over the functional stack: the LANL MPI-IO Test (Section III),
// the NAS BT-IO solver's I/O pattern and the FLASH-IO checkpoint writer
// (Section IV). Each kernel writes real (verifiable) bytes through
// internal/mpiio with any ADIO driver, so the same code exercises plain
// MPI-IO, FUSE, ROMIO-PLFS and LDPLFS.
package workload

import (
	"fmt"

	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
)

// MPIIOTestConfig configures the LANL MPI-IO Test kernel: every process
// writes BytesPerProc in BlockSize blocking calls, either strided into
// one shared file (N-to-1, collective — the default) or contiguously
// into a file of its own (N-to-N, independent — the real benchmark's
// "-type 1" mode).
type MPIIOTestConfig struct {
	BytesPerProc int64
	BlockSize    int64
	// FilePerProc switches the write phase from strided N-1 to N-N:
	// each rank writes path.<rank> contiguously with independent calls.
	FilePerProc bool
	// Verify reads the file back (each rank checks its neighbour's
	// blocks — or, with FilePerProc, its neighbour's file) and fails on
	// any corruption.
	Verify bool
	Hints  mpiio.Hints
}

// MPIIOTestResult reports what the kernel moved.
type MPIIOTestResult struct {
	BytesWritten int64
	BytesRead    int64
	Steps        int
}

// pattern fills buf with a deterministic byte pattern for (rank, step).
func pattern(buf []byte, rank, step int) {
	seed := byte(rank*31 + step*7 + 1)
	for i := range buf {
		buf[i] = seed + byte(i%13)
	}
}

// nnPath names rank's file in an N-N phase.
func nnPath(path string, rank int) string { return fmt.Sprintf("%s.%d", path, rank) }

// RunMPIIOTest executes the kernel collectively. All ranks must call it.
func RunMPIIOTest(r *mpi.Rank, drv mpiio.Driver, path string, cfg MPIIOTestConfig) (MPIIOTestResult, error) {
	if cfg.BlockSize <= 0 || cfg.BytesPerProc < cfg.BlockSize {
		return MPIIOTestResult{}, fmt.Errorf("workload: bad mpi-io test config %+v", cfg)
	}
	steps := int(cfg.BytesPerProc / cfg.BlockSize)
	ranks := r.Size()

	openPath := path
	if cfg.FilePerProc {
		openPath = nnPath(path, r.Rank())
	}
	fh, err := mpiio.Open(r, drv, openPath, mpiio.ModeCreate|mpiio.ModeRdwr, cfg.Hints)
	if err != nil {
		return MPIIOTestResult{}, err
	}
	res := MPIIOTestResult{Steps: steps}
	buf := make([]byte, cfg.BlockSize)
	for step := 0; step < steps; step++ {
		pattern(buf, r.Rank(), step)
		var n int
		var err error
		if cfg.FilePerProc {
			// N-N: contiguous independent writes into this rank's file.
			n, err = fh.WriteAt(buf, int64(step)*cfg.BlockSize)
		} else {
			// Strided N-1: collective writes interleaved across ranks.
			off := (int64(step)*int64(ranks) + int64(r.Rank())) * cfg.BlockSize
			n, err = fh.WriteAtAll(buf, off)
		}
		if err != nil {
			fh.Close()
			return res, fmt.Errorf("workload: step %d write: %w", step, err)
		}
		res.BytesWritten += int64(n)
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return res, err
	}

	if cfg.Verify {
		peer := (r.Rank() + 1) % ranks
		vfh := fh
		if cfg.FilePerProc {
			// N-N: the neighbour's blocks live in the neighbour's file.
			if err := fh.Close(); err != nil {
				return res, err
			}
			vfh, err = mpiio.Open(r, drv, nnPath(path, peer), mpiio.ModeRdonly, cfg.Hints)
			if err != nil {
				return res, err
			}
		}
		want := make([]byte, cfg.BlockSize)
		got := make([]byte, cfg.BlockSize)
		for step := 0; step < steps; step++ {
			pattern(want, peer, step)
			var n int
			var err error
			if cfg.FilePerProc {
				n, err = vfh.ReadAt(got, int64(step)*cfg.BlockSize)
			} else {
				off := (int64(step)*int64(ranks) + int64(peer)) * cfg.BlockSize
				n, err = vfh.ReadAtAll(got, off)
			}
			if err != nil {
				vfh.Close()
				return res, fmt.Errorf("workload: step %d read: %w", step, err)
			}
			res.BytesRead += int64(n)
			if n != int(cfg.BlockSize) {
				vfh.Close()
				return res, fmt.Errorf("workload: short read at step %d: %d", step, n)
			}
			for i := range got {
				if got[i] != want[i] {
					vfh.Close()
					return res, fmt.Errorf("workload: corruption at step %d byte %d (rank %d reading rank %d)",
						step, i, r.Rank(), peer)
				}
			}
		}
		return res, vfh.Close()
	}
	return res, fh.Close()
}
