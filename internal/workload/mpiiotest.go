// Package workload implements the paper's three benchmark kernels as real
// programs over the functional stack: the LANL MPI-IO Test (Section III),
// the NAS BT-IO solver's I/O pattern and the FLASH-IO checkpoint writer
// (Section IV). Each kernel writes real (verifiable) bytes through
// internal/mpiio with any ADIO driver, so the same code exercises plain
// MPI-IO, FUSE, ROMIO-PLFS and LDPLFS.
package workload

import (
	"fmt"

	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
)

// MPIIOTestConfig configures the LANL MPI-IO Test kernel: every process
// writes BytesPerProc in BlockSize collective blocking calls to one
// shared file (N-to-1, strided).
type MPIIOTestConfig struct {
	BytesPerProc int64
	BlockSize    int64
	// Verify reads the file back (each rank checks its neighbour's
	// blocks) and fails on any corruption.
	Verify bool
	Hints  mpiio.Hints
}

// MPIIOTestResult reports what the kernel moved.
type MPIIOTestResult struct {
	BytesWritten int64
	BytesRead    int64
	Steps        int
}

// pattern fills buf with a deterministic byte pattern for (rank, step).
func pattern(buf []byte, rank, step int) {
	seed := byte(rank*31 + step*7 + 1)
	for i := range buf {
		buf[i] = seed + byte(i%13)
	}
}

// RunMPIIOTest executes the kernel collectively. All ranks must call it.
func RunMPIIOTest(r *mpi.Rank, drv mpiio.Driver, path string, cfg MPIIOTestConfig) (MPIIOTestResult, error) {
	if cfg.BlockSize <= 0 || cfg.BytesPerProc < cfg.BlockSize {
		return MPIIOTestResult{}, fmt.Errorf("workload: bad mpi-io test config %+v", cfg)
	}
	steps := int(cfg.BytesPerProc / cfg.BlockSize)
	ranks := r.Size()

	fh, err := mpiio.Open(r, drv, path, mpiio.ModeCreate|mpiio.ModeRdwr, cfg.Hints)
	if err != nil {
		return MPIIOTestResult{}, err
	}
	res := MPIIOTestResult{Steps: steps}
	buf := make([]byte, cfg.BlockSize)
	for step := 0; step < steps; step++ {
		pattern(buf, r.Rank(), step)
		off := (int64(step)*int64(ranks) + int64(r.Rank())) * cfg.BlockSize
		n, err := fh.WriteAtAll(buf, off)
		if err != nil {
			fh.Close()
			return res, fmt.Errorf("workload: step %d write: %w", step, err)
		}
		res.BytesWritten += int64(n)
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return res, err
	}

	if cfg.Verify {
		peer := (r.Rank() + 1) % ranks
		want := make([]byte, cfg.BlockSize)
		got := make([]byte, cfg.BlockSize)
		for step := 0; step < steps; step++ {
			pattern(want, peer, step)
			off := (int64(step)*int64(ranks) + int64(peer)) * cfg.BlockSize
			n, err := fh.ReadAtAll(got, off)
			if err != nil {
				fh.Close()
				return res, fmt.Errorf("workload: step %d read: %w", step, err)
			}
			res.BytesRead += int64(n)
			if n != int(cfg.BlockSize) {
				fh.Close()
				return res, fmt.Errorf("workload: short read at step %d: %d", step, n)
			}
			for i := range got {
				if got[i] != want[i] {
					fh.Close()
					return res, fmt.Errorf("workload: corruption at step %d byte %d (rank %d reading rank %d)",
						step, i, r.Rank(), peer)
				}
			}
		}
	}
	return res, fh.Close()
}
