package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
)

// BTIOConfig configures the NAS BT-IO kernel: a Grid^3 array of cells,
// each holding five double-precision unknowns, solved on a square process
// grid using BT's multi-partition decomposition — each rank owns one cell
// per z-slab, shifted diagonally per slab, so the file access is heavily
// interleaved (the pattern that makes BT-IO an I/O benchmark).
type BTIOConfig struct {
	Grid  int // points per dimension (162 for class C, 408 for class D)
	Steps int // write timesteps (the paper's runs do 20 "write calls")
	// EPIO selects the benchmark's "epio" subtype: instead of the
	// collective strided N-1 write phase into one shared solution file,
	// each rank appends its cells contiguously to a file of its own
	// (N-N) with independent calls — the embarrassingly parallel bound
	// the full subtype is compared against.
	EPIO  bool
	Hints mpiio.Hints
}

// vars is BT's five unknowns per grid point.
const btVars = 5

// BTIOResult reports bytes moved and the decomposition used.
type BTIOResult struct {
	BytesWritten int64
	BytesRead    int64
	ProcGrid     int // P where ranks = P*P
	CellWidth    int
}

// btValue is the deterministic field value at a global point, so any
// reader can verify any byte.
func btValue(step int, gx, gy, gz, v int) float64 {
	return float64(step+1)*1e3 + float64(gz)*7 + float64(gy)*0.5 + float64(gx)*0.25 + float64(v)*0.125
}

// btDecompose validates ranks and grid, returning the process grid side.
func btDecompose(ranks, grid int) (int, error) {
	p := int(math.Round(math.Sqrt(float64(ranks))))
	if p*p != ranks {
		return 0, fmt.Errorf("workload: BT needs a square rank count, got %d", ranks)
	}
	if grid%p != 0 {
		return 0, fmt.Errorf("workload: grid %d not divisible by process grid %d", grid, p)
	}
	return p, nil
}

// btSegments generates this rank's file segments and fills payload with
// the field values for one timestep. The timestep's data occupies a
// contiguous region of size grid^3*5*8 starting at stepBase.
func btSegments(rank, p, grid, step int, stepBase int64) ([]mpiio.Segment, []byte) {
	cw := grid / p
	ri, ci := rank/p, rank%p
	rowBytes := int64(cw * btVars * 8)

	var segs []mpiio.Segment
	payload := make([]byte, 0, int64(p)*int64(cw*cw)*rowBytes)

	// Multi-partition: in z-slab s, this rank owns the cell at
	// (x-cell, y-cell) = ((ci+s) mod p, ri) — a diagonal march.
	for s := 0; s < p; s++ {
		cellX := ((ci + s) % p) * cw
		cellY := ri * cw
		cellZ := s * cw
		for z := 0; z < cw; z++ {
			for y := 0; y < cw; y++ {
				gz, gy := cellZ+z, cellY+y
				off := stepBase + ((int64(gz)*int64(grid)+int64(gy))*int64(grid)+int64(cellX))*btVars*8
				segs = append(segs, mpiio.Segment{Off: off, Len: rowBytes})
				for x := 0; x < cw; x++ {
					for v := 0; v < btVars; v++ {
						var w [8]byte
						binary.LittleEndian.PutUint64(w[:], math.Float64bits(btValue(step, cellX+x, gy, gz, v)))
						payload = append(payload, w[:]...)
					}
				}
			}
		}
	}
	return segs, payload
}

// RunBTIO executes the BT-IO write phase (and optional verified read-back)
// collectively. All ranks must call it; the rank count must be square.
func RunBTIO(r *mpi.Rank, drv mpiio.Driver, path string, cfg BTIOConfig, verify bool) (BTIOResult, error) {
	if cfg.EPIO {
		return runBTEpio(r, drv, path, cfg, verify)
	}
	p, err := btDecompose(r.Size(), cfg.Grid)
	if err != nil {
		return BTIOResult{}, err
	}
	res := BTIOResult{ProcGrid: p, CellWidth: cfg.Grid / p}
	stepBytes := int64(cfg.Grid) * int64(cfg.Grid) * int64(cfg.Grid) * btVars * 8

	fh, err := mpiio.Open(r, drv, path, mpiio.ModeCreate|mpiio.ModeRdwr, cfg.Hints)
	if err != nil {
		return res, err
	}
	for step := 0; step < cfg.Steps; step++ {
		segs, payload := btSegments(r.Rank(), p, cfg.Grid, step, int64(step)*stepBytes)
		n, err := fh.WriteAll(segs, payload)
		if err != nil {
			fh.Close()
			return res, fmt.Errorf("workload: BT step %d: %w", step, err)
		}
		res.BytesWritten += int64(n)
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return res, err
	}

	if verify {
		// Each rank reads the next rank's segments of the final step and
		// checks every value.
		peer := (r.Rank() + 1) % r.Size()
		lastStep := cfg.Steps - 1
		segs, want := btSegments(peer, p, cfg.Grid, lastStep, int64(lastStep)*stepBytes)
		got := make([]byte, len(want))
		n, err := fh.ReadAll(segs, got)
		if err != nil {
			fh.Close()
			return res, fmt.Errorf("workload: BT verify read: %w", err)
		}
		res.BytesRead += int64(n)
		if n != len(want) {
			fh.Close()
			return res, fmt.Errorf("workload: BT verify short read %d/%d", n, len(want))
		}
		for i := 0; i < len(want); i += 8 {
			if binary.LittleEndian.Uint64(got[i:]) != binary.LittleEndian.Uint64(want[i:]) {
				fh.Close()
				return res, fmt.Errorf("workload: BT verify mismatch at payload byte %d", i)
			}
		}
	}
	return res, fh.Close()
}

// runBTEpio is the N-N write phase: each rank streams its per-step cell
// payload contiguously into its own file with independent writes. The
// file layout is the rank's timestep payloads back to back — the epio
// subtype trades the shared solution file for pure appends.
func runBTEpio(r *mpi.Rank, drv mpiio.Driver, path string, cfg BTIOConfig, verify bool) (BTIOResult, error) {
	p, err := btDecompose(r.Size(), cfg.Grid)
	if err != nil {
		return BTIOResult{}, err
	}
	res := BTIOResult{ProcGrid: p, CellWidth: cfg.Grid / p}

	fh, err := mpiio.Open(r, drv, nnPath(path, r.Rank()), mpiio.ModeCreate|mpiio.ModeRdwr, cfg.Hints)
	if err != nil {
		return res, err
	}
	var stepLen int64
	for step := 0; step < cfg.Steps; step++ {
		_, payload := btSegments(r.Rank(), p, cfg.Grid, step, 0)
		stepLen = int64(len(payload))
		n, err := fh.WriteAt(payload, int64(step)*stepLen)
		if err != nil {
			fh.Close()
			return res, fmt.Errorf("workload: BT epio step %d: %w", step, err)
		}
		res.BytesWritten += int64(n)
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return res, err
	}
	if err := fh.Close(); err != nil {
		return res, err
	}

	if verify {
		// Each rank replays the neighbour's final-step payload and
		// checks the neighbour's file byte for byte.
		peer := (r.Rank() + 1) % r.Size()
		lastStep := cfg.Steps - 1
		_, want := btSegments(peer, p, cfg.Grid, lastStep, 0)
		vfh, err := mpiio.Open(r, drv, nnPath(path, peer), mpiio.ModeRdonly, cfg.Hints)
		if err != nil {
			return res, err
		}
		got := make([]byte, len(want))
		n, err := vfh.ReadAt(got, int64(lastStep)*int64(len(want)))
		if err != nil {
			vfh.Close()
			return res, fmt.Errorf("workload: BT epio verify read: %w", err)
		}
		res.BytesRead += int64(n)
		if n != len(want) {
			vfh.Close()
			return res, fmt.Errorf("workload: BT epio verify short read %d/%d", n, len(want))
		}
		for i := 0; i < len(want); i += 8 {
			if binary.LittleEndian.Uint64(got[i:]) != binary.LittleEndian.Uint64(want[i:]) {
				vfh.Close()
				return res, fmt.Errorf("workload: BT epio verify mismatch at payload byte %d", i)
			}
		}
		return res, vfh.Close()
	}
	return res, nil
}
