package workload

import (
	"strings"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/fuse"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// driverFor builds each access method's per-rank driver over a shared FS.
func driverFor(t *testing.T, method string, mem *posix.MemFS, rank int) (mpiio.Driver, string) {
	t.Helper()
	switch method {
	case "mpiio":
		return mpiio.NewUFS(posix.NewDispatch(mem)), "/scratch/out"
	case "romio":
		p := plfs.New(mem, plfs.Options{NumHostdirs: 4})
		return mpiio.NewPLFSDriver(p, func(path string) (string, bool) {
			return "/backend" + strings.TrimPrefix(path, "/scratch"), true
		}), "/scratch/out"
	case "ldplfs":
		d := posix.NewDispatch(mem)
		if _, err := core.Preload(d, core.Config{
			Mounts:      []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
			Pid:         uint32(rank),
			PlfsOptions: plfs.Options{NumHostdirs: 4},
		}); err != nil {
			t.Fatal(err)
		}
		return mpiio.NewUFS(d), "/mnt/plfs/out"
	case "fuse":
		return mpiio.NewUFS(fuse.Mount(mem, "/mnt/plfs", "/backend", plfs.Options{NumHostdirs: 4})), "/mnt/plfs/out"
	}
	t.Fatalf("unknown method %s", method)
	return nil, ""
}

func newFS(t *testing.T) *posix.MemFS {
	t.Helper()
	mem := posix.NewMemFS()
	for _, d := range []string{"/scratch", "/backend"} {
		if err := mem.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return mem
}

var allMethods = []string{"mpiio", "fuse", "romio", "ldplfs"}

func TestMPIIOTestKernelAllMethods(t *testing.T) {
	for _, method := range allMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			mem := newFS(t)
			cfg := MPIIOTestConfig{
				BytesPerProc: 256 << 10,
				BlockSize:    32 << 10,
				Verify:       true,
				Hints:        mpiio.DefaultHints(),
			}
			err := mpi.Run(8, 2, func(r *mpi.Rank) {
				drv, path := driverFor(t, method, mem, r.Rank())
				res, err := RunMPIIOTest(r, drv, path, cfg)
				if err != nil {
					panic(err)
				}
				if res.BytesWritten != cfg.BytesPerProc {
					panic("short write")
				}
				if res.BytesRead != cfg.BytesPerProc {
					panic("short verify read")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMPIIOTestBadConfig(t *testing.T) {
	mem := newFS(t)
	err := mpi.Run(1, 1, func(r *mpi.Rank) {
		drv, path := driverFor(t, "mpiio", mem, 0)
		if _, err := RunMPIIOTest(r, drv, path, MPIIOTestConfig{}); err == nil {
			panic("zero config accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBTIOKernelAllMethods(t *testing.T) {
	for _, method := range allMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			mem := newFS(t)
			cfg := BTIOConfig{Grid: 12, Steps: 3, Hints: mpiio.DefaultHints()}
			err := mpi.Run(4, 2, func(r *mpi.Rank) { // 2x2 process grid
				drv, path := driverFor(t, method, mem, r.Rank())
				res, err := RunBTIO(r, drv, path, cfg, true)
				if err != nil {
					panic(err)
				}
				wantPerStep := int64(12*12*12*5*8) / 4 // grid^3 * vars * 8 / ranks
				if res.BytesWritten != wantPerStep*int64(cfg.Steps) {
					panic("BT wrote wrong volume")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBTIORejectsNonSquare(t *testing.T) {
	mem := newFS(t)
	err := mpi.Run(3, 1, func(r *mpi.Rank) {
		drv, path := driverFor(t, "mpiio", mem, r.Rank())
		if _, err := RunBTIO(r, drv, path, BTIOConfig{Grid: 12, Steps: 1}, false); err == nil {
			panic("non-square rank count accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBTIODecompositionCoversFileExactly(t *testing.T) {
	// The union of all ranks' segments for one step must tile
	// [0, grid^3*5*8) exactly once — no gaps, no overlaps.
	const (
		grid  = 8
		ranks = 4
		p     = 2
	)
	covered := map[int64]int{}
	total := int64(grid * grid * grid * 5 * 8)
	for rank := 0; rank < ranks; rank++ {
		segs, payload := btSegments(rank, p, grid, 0, 0)
		var segBytes int64
		for _, s := range segs {
			for off := s.Off; off < s.Off+s.Len; off += 8 {
				covered[off]++
			}
			segBytes += s.Len
		}
		if segBytes != int64(len(payload)) {
			t.Fatalf("rank %d: segments %d bytes, payload %d", rank, segBytes, len(payload))
		}
	}
	if int64(len(covered))*8 != total {
		t.Fatalf("coverage %d bytes, want %d", len(covered)*8, total)
	}
	for off, n := range covered {
		if n != 1 {
			t.Fatalf("offset %d written %d times", off, n)
		}
	}
}

func TestFlashIOKernelAllMethods(t *testing.T) {
	for _, method := range allMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			mem := newFS(t)
			cfg := FlashIOConfig{NXB: 4, NBlocks: 3, NVars: 8, Hints: mpiio.DefaultHints()}
			err := mpi.Run(4, 2, func(r *mpi.Rank) {
				drv, base := driverFor(t, method, mem, r.Rank())
				res, err := RunFlashIO(r, drv, base, cfg)
				if err != nil {
					panic(err)
				}
				if len(res.Files) != 3 {
					panic("FLASH-IO must write three files")
				}
				// Verify all three files.
				for i, f := range res.Files {
					if err := VerifyFlashFile(r, drv, f, cfg, i); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFlashBytesPerProcessMatchesPaper(t *testing.T) {
	// The paper's configuration: 24^3 blocks, ~205 MB per process. With
	// FLASH's 80 blocks and 24 unknowns: 80 * 24^3 * 24 * 8 bytes = 212 MB.
	cfg := FlashIOConfig{NXB: 24, NBlocks: 80, NVars: 24}
	got := cfg.BytesPerProcess()
	if got < 190<<20 || got > 230<<20 {
		t.Fatalf("paper config yields %d MiB per process, want ~205 MB", got>>20)
	}
}

func TestFlashIOContainersAppearInBackend(t *testing.T) {
	// Through LDPLFS, each FLASH output becomes one PLFS container — the
	// per-file metadata cost the Fig. 5 analysis hinges on.
	mem := newFS(t)
	cfg := FlashIOConfig{NXB: 4, NBlocks: 2, NVars: 4, Hints: mpiio.DefaultHints()}
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		drv, base := driverFor(t, "ldplfs", mem, r.Rank())
		if _, err := RunFlashIO(r, drv, base, cfg); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p := plfs.New(mem, plfs.Options{NumHostdirs: 4})
	for _, name := range flashFileNames("/backend/out") {
		if !p.IsContainer(name) {
			t.Fatalf("%s is not a PLFS container", name)
		}
		st, err := p.Stat(name)
		if err != nil || st.Size == 0 {
			t.Fatalf("%s: %+v, %v", name, st, err)
		}
	}
}

func TestMPIIOTestFilePerProcAllMethods(t *testing.T) {
	// The N-N write phase: every rank streams its own file with
	// independent calls, then verifies its neighbour's file.
	for _, method := range allMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			mem := newFS(t)
			cfg := MPIIOTestConfig{
				BytesPerProc: 128 << 10,
				BlockSize:    16 << 10,
				FilePerProc:  true,
				Verify:       true,
				Hints:        mpiio.DefaultHints(),
			}
			err := mpi.Run(4, 2, func(r *mpi.Rank) {
				drv, path := driverFor(t, method, mem, r.Rank())
				res, err := RunMPIIOTest(r, drv, path, cfg)
				if err != nil {
					panic(err)
				}
				if res.BytesWritten != cfg.BytesPerProc {
					panic("short write")
				}
				if res.BytesRead != cfg.BytesPerProc {
					panic("short verify read")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBTIOEpioAllMethods(t *testing.T) {
	// The epio subtype: N-N contiguous appends, verified cross-rank.
	for _, method := range allMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			mem := newFS(t)
			cfg := BTIOConfig{Grid: 12, Steps: 3, EPIO: true, Hints: mpiio.DefaultHints()}
			err := mpi.Run(4, 2, func(r *mpi.Rank) {
				drv, path := driverFor(t, method, mem, r.Rank())
				res, err := RunBTIO(r, drv, path, cfg, true)
				if err != nil {
					panic(err)
				}
				wantPerStep := int64(12*12*12*5*8) / 4
				if res.BytesWritten != wantPerStep*int64(cfg.Steps) {
					panic("BT epio wrote wrong volume")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFlashIOSplitFiles(t *testing.T) {
	// Split checkpoints: each rank writes a private triplet, and each
	// file verifies independently against global block ids.
	mem := newFS(t)
	cfg := FlashIOConfig{NXB: 4, NBlocks: 3, NVars: 8, SplitFiles: true, Hints: mpiio.DefaultHints()}
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		drv, base := driverFor(t, "ldplfs", mem, r.Rank())
		res, err := RunFlashIO(r, drv, base, cfg)
		if err != nil {
			panic(err)
		}
		for i, f := range res.Files {
			if err := VerifyFlashFile(r, drv, f, cfg, i); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each rank's checkpoint is its own PLFS container in the backend.
	p := plfs.New(mem, plfs.Options{NumHostdirs: 4})
	for rank := 0; rank < 4; rank++ {
		name := nnPath("/backend/out_hdf5_chk_0001", rank)
		if !p.IsContainer(name) {
			t.Fatalf("%s is not a PLFS container", name)
		}
	}
}
