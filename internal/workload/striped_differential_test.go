package workload

import (
	"crypto/md5"
	"fmt"
	"testing"

	"ldplfs/internal/harness"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// stripedStores builds the backend configurations the differential runs
// over: a single MemFS, striped MemFS pairs/triples, and a striped
// triple of FaultFS-wrapped backends (transparent, but exercising the
// fault layer's fd bookkeeping under striping).
func stripedStores(t *testing.T) map[string]posix.FS {
	t.Helper()
	faulty := make([]posix.FS, 3)
	for i := range faulty {
		faulty[i] = posix.NewFaultFS(posix.NewMemFS())
	}
	stripedFault := posix.NewStripedFS(faulty...)
	if err := harness.PrepareStore(stripedFault); err != nil {
		t.Fatal(err)
	}
	replicaFaulty := make([]posix.FS, 3)
	for i := range replicaFaulty {
		replicaFaulty[i] = posix.NewFaultFS(posix.NewMemFS())
	}
	r2, err := posix.LayoutFor("replica-2", 3)
	if err != nil {
		t.Fatal(err)
	}
	replicaFault := posix.NewLayoutFS(r2, posix.ReplicaOptions{}, replicaFaulty...)
	if err := harness.PrepareStore(replicaFault); err != nil {
		t.Fatal(err)
	}
	return map[string]posix.FS{
		"single":         harness.NewStore(),
		"striped2":       harness.NewStoreN(2),
		"striped3":       harness.NewStoreN(3),
		"striped3-fault": stripedFault,
		"replica2":       harness.NewStoreLayout(3, "replica-2"),
		"replica3":       harness.NewStoreLayout(3, "replica-3"),
		"replica2-fault": replicaFault,
	}
}

// containerDigest reads the full logical contents of the container the
// workload produced and returns (size, md5) plus the container's Stat
// size — the three observables that must not depend on the backend
// count.
func containerDigest(t *testing.T, store posix.FS, name string) (int64, [16]byte, int64) {
	t.Helper()
	p := plfs.New(store)
	path := harness.BackendDir + "/" + name
	f, err := p.Open(path, posix.O_RDONLY, 999, 0)
	if err != nil {
		t.Fatalf("open container %s: %v", path, err)
	}
	defer f.Close(999)
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if n, err := f.Read(buf, 0); err != nil || int64(n) != size {
		t.Fatalf("read container %s: n=%d err=%v (size %d)", path, n, err, size)
	}
	st, err := p.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return size, md5.Sum(buf), st.Size
}

// checkSpread asserts a striped store's container genuinely fanned its
// droppings across more than one backend.
func checkSpread(t *testing.T, store posix.FS, name string) {
	t.Helper()
	if _, ok := store.(*posix.StripedFS); !ok {
		return
	}
	p := plfs.New(store)
	spread, err := p.ContainerSpread(harness.BackendDir + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, n := range spread {
		if n > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("container %s did not fan out across backends: spread %v", name, spread)
	}
}

// diffAcrossStores runs one workload phase against every backend
// configuration and demands byte-identical container contents, sizes and
// Stat results — then re-reads every container in all three flattened-
// index regimes (record trusted, record ignored, record deliberately
// stale) and demands the same bytes again.
func diffAcrossStores(t *testing.T, outputs []string, run func(store posix.FS)) {
	t.Helper()
	type digest struct {
		size, statSize int64
		sum            [16]byte
	}
	want := map[string]digest{} // per output file, from the single-backend run

	stores := stripedStores(t)
	cfgs := []string{"single", "striped2", "striped3", "striped3-fault", "replica2", "replica3", "replica2-fault"}
	for _, cfg := range cfgs {
		store := stores[cfg]
		run(store)
		for _, out := range outputs {
			size, sum, statSize := containerDigest(t, store, out)
			if size != statSize {
				t.Fatalf("[%s] %s: Size %d != Stat size %d", cfg, out, size, statSize)
			}
			if cfg == "single" {
				if size == 0 {
					t.Fatalf("workload produced an empty container %s", out)
				}
				want[out] = digest{size, statSize, sum}
				continue
			}
			w := want[out]
			if size != w.size || statSize != w.statSize || sum != w.sum {
				t.Fatalf("[%s] %s diverged from single backend: size %d vs %d, stat %d vs %d, md5 %x vs %x",
					cfg, out, size, w.size, statSize, w.statSize, sum, w.sum)
			}
			checkSpread(t, store, out)
		}
	}

	// Flatten-mode differential over the kernels' real containers, on
	// single- and multi-backend stores (MemFS and the FaultFS-wrapped
	// triple). Each mode must reproduce the digests recorded above.
	for _, cfg := range cfgs {
		store := stores[cfg]
		for _, out := range outputs {
			path := harness.BackendDir + "/" + out
			w := want[out]

			// Forced on: refresh the record, read cold, assert it was
			// actually loaded (each instance gets a private telemetry
			// plane, so layer "readcache" counts only its own builds).
			if _, err := plfs.New(store).WriteFlattenedIndex(path); err != nil {
				t.Fatalf("[%s] flatten %s: %v", cfg, out, err)
			}
			onPlane := iostats.NewPlane()
			onP := plfs.New(store, plfs.WithStats(onPlane))
			if size, sum, statSize := digestVia(t, onP, path); size != w.size || statSize != w.statSize || sum != w.sum {
				t.Fatalf("[%s] %s flattened-on read diverged", cfg, out)
			}
			if n := onPlane.Layer("readcache").Counter("flattened_builds").Load(); n == 0 {
				t.Fatalf("[%s] %s flattened-on read did not use the record", cfg, out)
			}

			// Forced off: streaming merge only.
			offPlane := iostats.NewPlane()
			offP := plfs.New(store,
				plfs.IndexOptions{DisableFlattenedReads: true},
				plfs.WithStats(offPlane))
			if size, sum, statSize := digestVia(t, offP, path); size != w.size || statSize != w.statSize || sum != w.sum {
				t.Fatalf("[%s] %s flattened-off read diverged", cfg, out)
			}
			if n := offPlane.Layer("readcache").Counter("flattened_builds").Load(); n != 0 {
				t.Fatalf("[%s] %s disabled reads loaded the record", cfg, out)
			}

			// Deliberately stale: append a deterministic tail behind the
			// record's back; a cold default instance must fall back and
			// serve the extended bytes.
			tail := []byte("kernel-differential stale tail: " + out)
			wP := plfs.New(store, plfs.IndexOptions{DisableAutoFlatten: true})
			f, err := wP.Open(path, posix.O_WRONLY, 424242, 0o644)
			if err != nil {
				t.Fatalf("[%s] stale staging open %s: %v", cfg, out, err)
			}
			if _, err := f.Write(tail, w.size, 424242); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(424242); err != nil {
				t.Fatal(err)
			}
			stalePlane := iostats.NewPlane()
			staleP := plfs.New(store, plfs.WithStats(stalePlane))
			size, sum, statSize := digestVia(t, staleP, path)
			if size != w.size+int64(len(tail)) || statSize != size {
				t.Fatalf("[%s] %s stale read size = %d/%d, want %d", cfg, out, size, statSize, w.size+int64(len(tail)))
			}
			if n := stalePlane.Layer("readcache").Counter("flattened_builds").Load(); n != 0 {
				t.Fatalf("[%s] %s stale record was trusted", cfg, out)
			}
			// And the merge path agrees byte-for-byte on the extended file.
			off2 := plfs.New(store, plfs.IndexOptions{DisableFlattenedReads: true})
			if s2, sum2, _ := digestVia(t, off2, path); s2 != size || sum2 != sum {
				t.Fatalf("[%s] %s stale-vs-merge digest diverged", cfg, out)
			}
		}
	}
}

// digestVia reads the container's full logical contents through the
// given instance, returning (size, md5, stat size).
func digestVia(t *testing.T, p *plfs.FS, path string) (int64, [16]byte, int64) {
	t.Helper()
	f, err := p.Open(path, posix.O_RDONLY, 999, 0)
	if err != nil {
		t.Fatalf("open container %s: %v", path, err)
	}
	defer f.Close(999)
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if n, err := f.Read(buf, 0); err != nil || int64(n) != size {
		t.Fatalf("read container %s: n=%d err=%v (size %d)", path, n, err, size)
	}
	st, err := p.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return size, md5.Sum(buf), st.Size
}

// TestStripedDifferentialMPIIOTest runs the LANL MPI-IO Test N-1 strided
// phase (with its built-in neighbour verification) over single- and
// multi-backend stores: the resulting container must be byte-identical
// everywhere.
func TestStripedDifferentialMPIIOTest(t *testing.T) {
	cfg := MPIIOTestConfig{
		BytesPerProc: 128 << 10,
		BlockSize:    16 << 10,
		Verify:       true,
		Hints:        mpiio.DefaultHints(),
	}
	diffAcrossStores(t, []string{"mpiio-test.out"}, func(store posix.FS) {
		err := mpi.Run(4, 1, func(r *mpi.Rank) {
			drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
			if err != nil {
				panic(err)
			}
			if _, err := RunMPIIOTest(r, drv, pathFor("mpiio-test.out"), cfg); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestStripedDifferentialBTIO runs the NAS BT-IO kernel (strided
// multi-extent collective commits) across backend configurations.
func TestStripedDifferentialBTIO(t *testing.T) {
	cfg := BTIOConfig{Grid: 12, Steps: 2, Hints: mpiio.DefaultHints()}
	diffAcrossStores(t, []string{"btio.out"}, func(store posix.FS) {
		err := mpi.Run(4, 1, func(r *mpi.Rank) {
			drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
			if err != nil {
				panic(err)
			}
			if _, err := RunBTIO(r, drv, pathFor("btio.out"), cfg, true); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestStripedDifferentialFlashIO runs the FLASH-IO triple-checkpoint
// kernel; all three output containers must match across configurations.
func TestStripedDifferentialFlashIO(t *testing.T) {
	cfg := FlashIOConfig{NXB: 4, NBlocks: 2, NVars: 4, Hints: mpiio.DefaultHints()}
	outputs := []string{
		"flash_hdf5_chk_0001",
		"flash_hdf5_plt_cnt_0001",
		"flash_hdf5_plt_crn_0001",
	}
	diffAcrossStores(t, outputs, func(store posix.FS) {
		err := mpi.Run(4, 1, func(r *mpi.Rank) {
			drv, pathFor, err := harness.DriverFor("ldplfs", store, r.Rank())
			if err != nil {
				panic(err)
			}
			res, err := RunFlashIO(r, drv, pathFor("flash"), cfg)
			if err != nil {
				panic(err)
			}
			for i, f := range res.Files {
				if err := VerifyFlashFile(r, drv, f, cfg, i); err != nil {
					panic(fmt.Sprintf("verify %s: %v", f, err))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
