// Package sim is a small trace-driven discrete-event simulator used by the
// cluster cost models (internal/fsim). Actors (ranks, aggregators, the
// FUSE daemon) execute sequences of operations against shared FIFO
// resources (I/O servers, the Lustre MDS, a file lock); virtual time
// emerges from queueing, so contention effects — lock convoys, metadata
// storms, server saturation — fall out of the replay rather than being
// asserted.
package sim

import (
	"container/heap"
	"fmt"
)

// Resource is a single-server FIFO queue: an acquisition starts when both
// the caller and the resource are free, and occupies the resource for the
// service time.
type Resource struct {
	Name   string
	freeAt float64
	busy   float64 // total busy time, for utilisation reporting
	ops    int64
}

// Acquire blocks the caller (logically) from start until the resource is
// free, then holds it for service seconds. It returns the completion time.
func (r *Resource) Acquire(start, service float64) float64 {
	if start < r.freeAt {
		start = r.freeAt
	}
	r.freeAt = start + service
	r.busy += service
	r.ops++
	return r.freeAt
}

// Utilisation returns the fraction of [0,end] the resource was busy.
func (r *Resource) Utilisation(end float64) float64 {
	if end <= 0 {
		return 0
	}
	return r.busy / end
}

// Ops returns the number of acquisitions served.
func (r *Resource) Ops() int64 { return r.ops }

// FreeAt returns the time the resource next becomes idle.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// Pool is a set of interchangeable striped resources (e.g. the OSS fleet);
// Pick selects deterministically by key.
type Pool struct {
	Res []*Resource
}

// NewPool creates n resources named prefix.0 … prefix.n-1.
func NewPool(prefix string, n int) *Pool {
	p := &Pool{Res: make([]*Resource, n)}
	for i := range p.Res {
		p.Res[i] = &Resource{Name: fmt.Sprintf("%s.%d", prefix, i)}
	}
	return p
}

// Pick returns the resource a key stripes onto.
func (p *Pool) Pick(key int) *Resource { return p.Res[key%len(p.Res)] }

// LeastLoaded returns the resource that frees up earliest — what a
// client-side object allocator approximates.
func (p *Pool) LeastLoaded() *Resource {
	best := p.Res[0]
	for _, r := range p.Res[1:] {
		if r.freeAt < best.freeAt {
			best = r
		}
	}
	return best
}

// Op is one step in an actor's program: given the virtual time the actor
// reaches it, it returns the time it completes (acquiring resources as a
// side effect).
type Op func(start float64) float64

// Actor is a sequential program replayed against the shared resources.
// StartAt sets its release time (use it to model a barrier: replay one
// phase, then start the next phase's actors at the previous makespan).
type Actor struct {
	Name    string
	StartAt float64
	Ops     []Op
	now     float64
	next    int
}

// Then appends an op to the actor's program.
func (a *Actor) Then(op Op) *Actor {
	a.Ops = append(a.Ops, op)
	return a
}

// Delay appends a fixed local delay (compute, think time).
func (a *Actor) Delay(d float64) *Actor {
	return a.Then(func(start float64) float64 { return start + d })
}

// actorHeap orders actors by their local clock so resource acquisitions
// happen in global time order (a conservative parallel replay).
type actorHeap []*Actor

func (h actorHeap) Len() int            { return len(h) }
func (h actorHeap) Less(i, j int) bool  { return h[i].now < h[j].now }
func (h actorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *actorHeap) Push(x interface{}) { *h = append(*h, x.(*Actor)) }
func (h *actorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Replay runs every actor to completion and returns the makespan (the
// latest completion time) and each actor's finish time.
func Replay(actors []*Actor) (makespan float64, finish []float64) {
	h := make(actorHeap, 0, len(actors))
	for _, a := range actors {
		a.now, a.next = a.StartAt, 0
		if len(a.Ops) > 0 {
			h = append(h, a)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		a := h[0]
		a.now = a.Ops[a.next](a.now)
		a.next++
		if a.next >= len(a.Ops) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	finish = make([]float64, len(actors))
	for i, a := range actors {
		finish[i] = a.now
		if a.now > makespan {
			makespan = a.now
		}
	}
	return makespan, finish
}

// Phases replays a sequence of synchronised phases: every phase's actors
// start at the previous phase's makespan (a barrier), while resource state
// (queue backlogs) persists across phases. It returns the final makespan.
func Phases(n int, build func(step int, startAt float64) []*Actor) float64 {
	t := 0.0
	for step := 0; step < n; step++ {
		actors := build(step, t)
		for _, a := range actors {
			if a.StartAt < t {
				a.StartAt = t
			}
		}
		makespan, _ := Replay(actors)
		if makespan > t {
			t = makespan
		}
	}
	return t
}
