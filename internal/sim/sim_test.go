package sim

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestResourceFIFO(t *testing.T) {
	r := &Resource{Name: "disk"}
	if end := r.Acquire(0, 10); end != 10 {
		t.Fatalf("first acquire end = %v", end)
	}
	// Arriving at t=5 while busy until 10: queued, finishes at 15.
	if end := r.Acquire(5, 5); end != 15 {
		t.Fatalf("queued acquire end = %v", end)
	}
	// Arriving after it frees: no queueing.
	if end := r.Acquire(100, 1); end != 101 {
		t.Fatalf("idle acquire end = %v", end)
	}
	if r.Ops() != 3 {
		t.Fatalf("ops = %d", r.Ops())
	}
	if u := r.Utilisation(101); !approx(u, 16.0/101, 1e-9) {
		t.Fatalf("utilisation = %v", u)
	}
}

func TestPool(t *testing.T) {
	p := NewPool("oss", 4)
	if p.Pick(5) != p.Res[1] || p.Pick(8) != p.Res[0] {
		t.Fatal("Pick striping wrong")
	}
	p.Res[0].Acquire(0, 100)
	p.Res[1].Acquire(0, 1)
	p.Res[2].Acquire(0, 50)
	p.Res[3].Acquire(0, 2)
	if ll := p.LeastLoaded(); ll != p.Res[1] {
		t.Fatalf("LeastLoaded = %s", ll.Name)
	}
}

func TestReplaySerialisesOnSharedResource(t *testing.T) {
	// Two actors, each one op of 10s on the same resource: the makespan is
	// 20 (serialised), not 10.
	r := &Resource{}
	a := (&Actor{Name: "a"}).Then(func(s float64) float64 { return r.Acquire(s, 10) })
	b := (&Actor{Name: "b"}).Then(func(s float64) float64 { return r.Acquire(s, 10) })
	makespan, finish := Replay([]*Actor{a, b})
	if makespan != 20 {
		t.Fatalf("makespan = %v, want 20", makespan)
	}
	if finish[0] == finish[1] {
		t.Fatal("both actors finished simultaneously on a FIFO resource")
	}
}

func TestReplayParallelResources(t *testing.T) {
	// Two actors on two distinct resources run fully in parallel.
	r1, r2 := &Resource{}, &Resource{}
	a := (&Actor{}).Then(func(s float64) float64 { return r1.Acquire(s, 10) })
	b := (&Actor{}).Then(func(s float64) float64 { return r2.Acquire(s, 10) })
	makespan, _ := Replay([]*Actor{a, b})
	if makespan != 10 {
		t.Fatalf("makespan = %v, want 10", makespan)
	}
}

func TestReplayGlobalTimeOrder(t *testing.T) {
	// Actor a has a short first op, actor b a long one; a's second op must
	// win the shared resource before b's (it arrives earlier).
	shared := &Resource{}
	var order []string
	a := (&Actor{Name: "a"}).Delay(1).Then(func(s float64) float64 {
		order = append(order, "a")
		return shared.Acquire(s, 5)
	})
	b := (&Actor{Name: "b"}).Delay(3).Then(func(s float64) float64 {
		order = append(order, "b")
		return shared.Acquire(s, 5)
	})
	Replay([]*Actor{b, a})
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("order = %v", order)
	}
	// a acquired at 1 (until 6); b arrives at 3, queued until 6, ends 11.
	if shared.FreeAt() != 11 {
		t.Fatalf("freeAt = %v", shared.FreeAt())
	}
}

func TestActorStartAt(t *testing.T) {
	r := &Resource{}
	a := (&Actor{StartAt: 100}).Then(func(s float64) float64 { return r.Acquire(s, 1) })
	makespan, _ := Replay([]*Actor{a})
	if makespan != 101 {
		t.Fatalf("makespan = %v", makespan)
	}
}

func TestPhasesBarrier(t *testing.T) {
	// Phase 1: actor A takes 10, actor B takes 2 (parallel resources).
	// Phase 2 starts at the barrier (t=10), so B's second op cannot start
	// at t=2.
	rA, rB := &Resource{}, &Resource{}
	var phase2Start float64
	total := Phases(2, func(step int, startAt float64) []*Actor {
		if step == 0 {
			return []*Actor{
				(&Actor{}).Then(func(s float64) float64 { return rA.Acquire(s, 10) }),
				(&Actor{}).Then(func(s float64) float64 { return rB.Acquire(s, 2) }),
			}
		}
		return []*Actor{
			(&Actor{}).Then(func(s float64) float64 {
				phase2Start = s
				return rB.Acquire(s, 3)
			}),
		}
	})
	if phase2Start != 10 {
		t.Fatalf("phase 2 started at %v, want 10 (barrier)", phase2Start)
	}
	if total != 13 {
		t.Fatalf("total = %v, want 13", total)
	}
}

func TestPhasesResourceBacklogPersists(t *testing.T) {
	// A resource left busy beyond the phase boundary keeps its backlog: an
	// async drain from phase 1 delays phase 2's acquisition.
	disk := &Resource{}
	total := Phases(2, func(step int, startAt float64) []*Actor {
		if step == 0 {
			// Fast cache write (1s for the actor) but schedules a 50s
			// background drain on the disk.
			return []*Actor{(&Actor{}).Then(func(s float64) float64 {
				disk.Acquire(s, 50) // drain queued
				return s + 1        // actor itself returns quickly
			})}
		}
		return []*Actor{(&Actor{}).Then(func(s float64) float64 {
			return disk.Acquire(s, 1)
		})}
	})
	if total != 51 {
		t.Fatalf("total = %v, want 51 (drain backlog)", total)
	}
}

func TestReplayManyActorsDeterministic(t *testing.T) {
	build := func() ([]*Actor, *Resource) {
		shared := &Resource{}
		actors := make([]*Actor, 64)
		for i := range actors {
			i := i
			actors[i] = (&Actor{Name: "w"}).Delay(float64(i % 7)).Then(func(s float64) float64 {
				return shared.Acquire(s, 2)
			})
		}
		return actors, shared
	}
	a1, _ := build()
	a2, _ := build()
	m1, _ := Replay(a1)
	m2, _ := Replay(a2)
	if m1 != m2 {
		t.Fatalf("nondeterministic replay: %v vs %v", m1, m2)
	}
	// 64 ops of 2s on one resource: makespan >= 128.
	if m1 < 128 {
		t.Fatalf("makespan %v < serial bound", m1)
	}
}
