// Package mpi provides an in-process MPI runtime: ranks are goroutines,
// the world communicator supports the collectives ROMIO and the
// mini-applications need (Barrier, Bcast, Gather, Allgather, Reduce,
// Allreduce, Alltoallv), and a node topology (processes-per-node) mirrors
// how the paper lays ranks out on Minerva and Sierra.
//
// Collectives are built on a single generation-counted rendezvous: every
// rank deposits a value, the last arrival runs a combiner over the full
// slot vector, and all ranks pick up their per-rank result. This gives
// deterministic semantics without per-collective channel plumbing.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Rank is the per-goroutine handle: rank id, world size, and topology.
type Rank struct {
	rank int
	comm *Comm
}

// Comm is a communicator shared by a set of ranks.
type Comm struct {
	size int
	ppn  int

	mu      sync.Mutex
	cond    *sync.Cond
	gen     uint64
	arrived int
	slots   []any
	results []any
	combine func([]any) []any
	mbox    *mailbox
}

func newComm(size, ppn int) *Comm {
	c := &Comm{size: size, ppn: ppn, slots: make([]any, size), results: make([]any, size)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Run launches size ranks with ppn processes per node and waits for all of
// them. A panic in any rank is recovered and returned as an error naming
// the rank (so test failures are attributable).
func Run(size, ppn int, body func(r *Rank)) error {
	if size <= 0 {
		return fmt.Errorf("mpi: invalid world size %d", size)
	}
	if ppn <= 0 {
		ppn = 1
	}
	comm := newComm(size, ppn)
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
				}
			}()
			body(&Rank{rank: r, comm: comm})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank returns this process's rank in the world communicator.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.comm.size }

// PPN returns the processes-per-node the world was launched with.
func (r *Rank) PPN() int { return r.comm.ppn }

// Node returns the compute node this rank lives on (block distribution,
// as mpirun lays out ranks by default).
func (r *Rank) Node() int { return r.rank / r.comm.ppn }

// NodeRank returns this rank's index within its node.
func (r *Rank) NodeRank() int { return r.rank % r.comm.ppn }

// Nodes returns the number of nodes in the job.
func (r *Rank) Nodes() int { return (r.comm.size + r.comm.ppn - 1) / r.comm.ppn }

// NodeLeader reports whether this rank is the first on its node — the
// default ROMIO collective-buffering aggregator (one per distinct node,
// exactly the paper's configuration).
func (r *Rank) NodeLeader() bool { return r.NodeRank() == 0 }

// rendezvous deposits value, lets the last arrival run combine over all
// deposits, and returns this rank's combined result.
func (r *Rank) rendezvous(value any, combine func([]any) []any) any {
	c := r.comm
	c.mu.Lock()
	gen := c.gen
	c.slots[r.rank] = value
	c.arrived++
	if c.arrived == c.size {
		out := combine(c.slots)
		if len(out) != c.size {
			c.mu.Unlock()
			panic(fmt.Sprintf("mpi: combiner returned %d results for %d ranks", len(out), c.size))
		}
		copy(c.results, out)
		c.arrived = 0
		c.slots = make([]any, c.size)
		c.gen++
		c.cond.Broadcast()
	} else {
		for c.gen == gen {
			c.cond.Wait()
		}
	}
	res := c.results[r.rank]
	c.mu.Unlock()
	return res
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() {
	r.rendezvous(nil, func(in []any) []any { return in })
}

// Bcast returns root's value on every rank.
func (r *Rank) Bcast(root int, value any) any {
	return r.rendezvous(value, func(in []any) []any {
		out := make([]any, len(in))
		for i := range out {
			out[i] = in[root]
		}
		return out
	})
}

// Gather returns every rank's value, in rank order, on root (nil
// elsewhere).
func (r *Rank) Gather(root int, value any) []any {
	res := r.rendezvous(value, func(in []any) []any {
		gathered := make([]any, len(in))
		copy(gathered, in)
		out := make([]any, len(in))
		out[root] = gathered
		return out
	})
	if res == nil {
		return nil
	}
	return res.([]any)
}

// Allgather returns every rank's value, in rank order, on all ranks.
func (r *Rank) Allgather(value any) []any {
	res := r.rendezvous(value, func(in []any) []any {
		gathered := make([]any, len(in))
		copy(gathered, in)
		out := make([]any, len(in))
		for i := range out {
			out[i] = gathered
		}
		return out
	})
	return res.([]any)
}

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
)

func reduceInt64(vals []any, op Op) int64 {
	acc := vals[0].(int64)
	for _, v := range vals[1:] {
		x := v.(int64)
		switch op {
		case OpSum:
			acc += x
		case OpMin:
			if x < acc {
				acc = x
			}
		case OpMax:
			if x > acc {
				acc = x
			}
		}
	}
	return acc
}

func reduceFloat64(vals []any, op Op) float64 {
	acc := vals[0].(float64)
	for _, v := range vals[1:] {
		x := v.(float64)
		switch op {
		case OpSum:
			acc += x
		case OpMin:
			if x < acc {
				acc = x
			}
		case OpMax:
			if x > acc {
				acc = x
			}
		}
	}
	return acc
}

// AllreduceInt64 reduces value across ranks and returns the result
// everywhere.
func (r *Rank) AllreduceInt64(value int64, op Op) int64 {
	res := r.rendezvous(value, func(in []any) []any {
		acc := reduceInt64(in, op)
		out := make([]any, len(in))
		for i := range out {
			out[i] = acc
		}
		return out
	})
	return res.(int64)
}

// AllreduceFloat64 reduces value across ranks and returns the result
// everywhere.
func (r *Rank) AllreduceFloat64(value float64, op Op) float64 {
	res := r.rendezvous(value, func(in []any) []any {
		acc := reduceFloat64(in, op)
		out := make([]any, len(in))
		for i := range out {
			out[i] = acc
		}
		return out
	})
	return res.(float64)
}

// ReduceInt64 reduces to root; other ranks receive 0.
func (r *Rank) ReduceInt64(root int, value int64, op Op) int64 {
	res := r.rendezvous(value, func(in []any) []any {
		acc := reduceInt64(in, op)
		out := make([]any, len(in))
		for i := range out {
			out[i] = int64(0)
		}
		out[root] = acc
		return out
	})
	return res.(int64)
}

// Alltoall exchanges one arbitrary value per destination rank: send[i]
// goes to rank i, and the result holds at index j the value rank j sent
// to this rank. Nil entries are allowed and arrive as nil.
//
// Unlike Alltoallv, nothing is marshalled: the value itself — typically
// a slice of descriptors referencing the sender's memory — crosses
// ranks by reference, so large payloads move zero-copy. The rendezvous
// gives the usual happens-before edge (everything a sender wrote before
// entering the exchange is visible to receivers after it returns), and
// a receiver holding references into a peer's memory keeps them valid
// by construction as long as both sides still have a later collective
// to meet at — the discipline the mpiio pipelined two-phase path is
// built on, where the closing allreduce is that meeting point.
func (r *Rank) Alltoall(send []any) []any {
	if len(send) != r.comm.size {
		panic(fmt.Sprintf("mpi: Alltoall send vector has %d entries for %d ranks", len(send), r.comm.size))
	}
	// The combiner must not retain the caller's slice: rendezvous slots
	// are recycled, but send itself may be reused by the caller for the
	// next round, so transpose out of it entirely.
	res := r.rendezvous(send, func(in []any) []any {
		n := len(in)
		out := make([]any, n)
		for dst := 0; dst < n; dst++ {
			recv := make([]any, n)
			for src := 0; src < n; src++ {
				recv[src] = in[src].([]any)[dst]
			}
			out[dst] = recv
		}
		return out
	})
	return res.([]any)
}

// Alltoallv exchanges byte slices: send[i] goes to rank i; the return
// value holds, at index j, the slice rank j sent to this rank. Nil slices
// are allowed and arrive as nil.
func (r *Rank) Alltoallv(send [][]byte) [][]byte {
	if len(send) != r.comm.size {
		panic(fmt.Sprintf("mpi: Alltoallv send vector has %d entries for %d ranks", len(send), r.comm.size))
	}
	res := r.rendezvous(send, func(in []any) []any {
		n := len(in)
		out := make([]any, n)
		for dst := 0; dst < n; dst++ {
			recv := make([][]byte, n)
			for src := 0; src < n; src++ {
				recv[src] = in[src].([][]byte)[dst]
			}
			out[dst] = recv
		}
		return out
	})
	return res.([][]byte)
}
