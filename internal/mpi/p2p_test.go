package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, 1, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, []byte("hello rank 1"))
		} else {
			got := r.Recv(0, 7)
			if string(got) != "hello rank 1" {
				t.Errorf("recv = %q", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrderingPerPair(t *testing.T) {
	err := Run(2, 1, func(r *Rank) {
		const n = 100
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, 0, []byte(fmt.Sprintf("msg-%03d", i)))
			}
		} else {
			for i := 0; i < n; i++ {
				got := r.Recv(0, 0)
				want := fmt.Sprintf("msg-%03d", i)
				if string(got) != want {
					t.Errorf("message %d = %q, want %q", i, got, want)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, 1, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1, []byte("one"))
			r.Send(1, 2, []byte("two"))
		} else {
			// Receive out of send order by tag.
			if got := r.Recv(0, 2); string(got) != "two" {
				t.Errorf("tag 2 = %q", got)
			}
			if got := r.Recv(0, 1); string(got) != "one" {
				t.Errorf("tag 1 = %q", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	err := Run(2, 1, func(r *Rank) {
		if r.Rank() == 0 {
			buf := []byte("original")
			r.Send(1, 0, buf)
			copy(buf, "clobber!") // mutation after send must not leak
			r.Barrier()
		} else {
			r.Barrier()
			if got := r.Recv(0, 0); string(got) != "original" {
				t.Errorf("recv saw sender's mutation: %q", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	err := Run(4, 2, func(r *Rank) {
		partner := r.Rank() ^ 1
		got := r.SendRecv(partner, 9, []byte{byte(r.Rank())})
		if !bytes.Equal(got, []byte{byte(partner)}) {
			t.Errorf("rank %d exchange got %v", r.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingPipeline(t *testing.T) {
	// Token passes around a ring, accumulating rank ids — P2P and
	// collectives interleaved.
	const n = 5
	err := Run(n, 1, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, []byte{0})
			token := r.Recv(n-1, 0)
			if len(token) != n {
				t.Errorf("token length %d", len(token))
			}
			for i, b := range token {
				if int(b) != i {
					t.Errorf("token[%d] = %d", i, b)
				}
			}
		} else {
			token := r.Recv(r.Rank()-1, 0)
			token = append(token, byte(r.Rank()))
			r.Send((r.Rank()+1)%n, 0, token)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
