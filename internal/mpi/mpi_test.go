package mpi

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int64
	err := Run(16, 4, func(r *Rank) {
		count.Add(1)
		if r.Size() != 16 || r.PPN() != 4 {
			t.Errorf("rank %d: size=%d ppn=%d", r.Rank(), r.Size(), r.PPN())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 16 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(4, 1, func(r *Rank) {
		if r.Rank() == 2 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("rank panic was swallowed")
	}
}

func TestTopology(t *testing.T) {
	err := Run(12, 4, func(r *Rank) {
		wantNode := r.Rank() / 4
		if r.Node() != wantNode {
			t.Errorf("rank %d node = %d, want %d", r.Rank(), r.Node(), wantNode)
		}
		if r.Nodes() != 3 {
			t.Errorf("nodes = %d, want 3", r.Nodes())
		}
		if got := r.NodeLeader(); got != (r.Rank()%4 == 0) {
			t.Errorf("rank %d leader = %v", r.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 8
	var before, after atomic.Int64
	err := Run(n, 2, func(r *Rank) {
		before.Add(1)
		r.Barrier()
		// Every rank must have passed "before" by now.
		if got := before.Load(); got != n {
			t.Errorf("rank %d: before=%d at barrier exit", r.Rank(), got)
		}
		after.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != n {
		t.Fatalf("after = %d", after.Load())
	}
}

func TestRepeatedBarriers(t *testing.T) {
	// Generation counting must survive many reuse cycles.
	err := Run(5, 1, func(r *Rank) {
		for i := 0; i < 200; i++ {
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(6, 2, func(r *Rank) {
		got := r.Bcast(3, fmt.Sprintf("from-%d", r.Rank()))
		if got != "from-3" {
			t.Errorf("rank %d bcast = %v", r.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAndAllgather(t *testing.T) {
	err := Run(4, 2, func(r *Rank) {
		g := r.Gather(1, r.Rank()*10)
		if r.Rank() == 1 {
			for i, v := range g {
				if v != i*10 {
					t.Errorf("gather[%d] = %v", i, v)
				}
			}
		} else if g != nil {
			t.Errorf("rank %d got non-nil gather", r.Rank())
		}
		ag := r.Allgather(r.Rank() + 100)
		for i, v := range ag {
			if v != i+100 {
				t.Errorf("allgather[%d] = %v", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReductions(t *testing.T) {
	err := Run(8, 4, func(r *Rank) {
		if got := r.AllreduceInt64(int64(r.Rank()), OpSum); got != 28 {
			t.Errorf("sum = %d", got)
		}
		if got := r.AllreduceInt64(int64(r.Rank()), OpMax); got != 7 {
			t.Errorf("max = %d", got)
		}
		if got := r.AllreduceInt64(int64(r.Rank()), OpMin); got != 0 {
			t.Errorf("min = %d", got)
		}
		if got := r.AllreduceFloat64(1.5, OpSum); got != 12.0 {
			t.Errorf("fsum = %v", got)
		}
		root := r.ReduceInt64(2, 1, OpSum)
		if r.Rank() == 2 && root != 8 {
			t.Errorf("reduce at root = %d", root)
		}
		if r.Rank() != 2 && root != 0 {
			t.Errorf("reduce off-root = %d", root)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 5
	err := Run(n, 1, func(r *Rank) {
		send := make([][]byte, n)
		for dst := 0; dst < n; dst++ {
			if dst == r.Rank() {
				continue // nil to self is allowed
			}
			send[dst] = []byte(fmt.Sprintf("%d->%d", r.Rank(), dst))
		}
		recv := r.Alltoallv(send)
		for src := 0; src < n; src++ {
			if src == r.Rank() {
				if recv[src] != nil {
					t.Errorf("self slot = %q", recv[src])
				}
				continue
			}
			want := fmt.Sprintf("%d->%d", src, r.Rank())
			if !bytes.Equal(recv[src], []byte(want)) {
				t.Errorf("rank %d recv[%d] = %q, want %q", r.Rank(), src, recv[src], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Interleaving different collectives across iterations must not
	// deadlock or cross-talk.
	err := Run(6, 3, func(r *Rank) {
		for i := 0; i < 50; i++ {
			sum := r.AllreduceInt64(int64(i), OpSum)
			if sum != int64(i*6) {
				t.Errorf("iter %d sum = %d", i, sum)
			}
			r.Barrier()
			v := r.Bcast(i%6, i*r.Rank())
			_ = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	err := Run(1, 12, func(r *Rank) {
		r.Barrier()
		if got := r.AllreduceInt64(7, OpSum); got != 7 {
			t.Errorf("singleton sum = %d", got)
		}
		recv := r.Alltoallv([][]byte{[]byte("self")})
		if string(recv[0]) != "self" {
			t.Errorf("self alltoall = %q", recv[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidWorld(t *testing.T) {
	if err := Run(0, 1, func(*Rank) {}); err == nil {
		t.Fatal("size 0 accepted")
	}
}
