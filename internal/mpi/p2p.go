package mpi

import (
	"fmt"
	"sync"
)

// Point-to-point messaging: blocking Send/Recv with tag matching, built
// on per-destination mailboxes. ROMIO's two-phase exchange uses
// Alltoallv, but tools and tests (and MPI programs generally) also need
// plain sends — and the FLASH master-slave startup uses them.

type p2pKey struct {
	src, dst, tag int
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue map[p2pKey][][]byte
}

func newMailbox() *mailbox {
	m := &mailbox{queue: make(map[p2pKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// box lazily attaches one mailbox to the communicator.
func (c *Comm) box() *mailbox {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mbox == nil {
		c.mbox = newMailbox()
	}
	return c.mbox
}

// Send delivers a copy of buf to rank dst with the given tag. It returns
// once the message is enqueued (buffered send, like MPI_Bsend — safe
// because mailbox capacity is bounded only by memory).
func (r *Rank) Send(dst, tag int, buf []byte) {
	if dst < 0 || dst >= r.comm.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	msg := make([]byte, len(buf))
	copy(msg, buf)
	key := p2pKey{src: r.rank, dst: dst, tag: tag}
	b := r.comm.box()
	b.mu.Lock()
	b.queue[key] = append(b.queue[key], msg)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages from one (src,tag) pair arrive in send
// order.
func (r *Rank) Recv(src, tag int) []byte {
	if src < 0 || src >= r.comm.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	key := p2pKey{src: src, dst: r.rank, tag: tag}
	b := r.comm.box()
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue[key]) == 0 {
		b.cond.Wait()
	}
	msg := b.queue[key][0]
	b.queue[key] = b.queue[key][1:]
	if len(b.queue[key]) == 0 {
		delete(b.queue, key)
	}
	return msg
}

// SendRecv exchanges messages with a partner in one call — the classic
// deadlock-free pairwise exchange.
func (r *Rank) SendRecv(partner, tag int, send []byte) []byte {
	r.Send(partner, tag, send)
	return r.Recv(partner, tag)
}
