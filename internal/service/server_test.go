package service

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"ldplfs/internal/posix"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	g := newTestGateway(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(g)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// rawConn speaks frames without the client package, to exercise the
// server's protocol edges directly.
type rawConn struct {
	nc net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{nc: nc, br: bufio.NewReader(nc)}
}

func (c *rawConn) send(t *testing.T, op byte, payload []byte) Frame {
	t.Helper()
	if err := WriteFrame(c.nc, op, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(c.br)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// statusOf decodes a reply's leading errno status.
func statusOf(payload []byte) int32 {
	r := NewWireReader(payload)
	return r.I32()
}

func helloPayload(tenant string) []byte {
	var w WireWriter
	w.String(tenant)
	return w.Payload()
}

func TestServerWireSession(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)

	f := c.send(t, OpHello, helloPayload("gold"))
	r := NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("hello status %d", status)
	}
	if echoed := r.String(); echoed != "gold" {
		t.Fatalf("hello echoed %q", echoed)
	}

	// Open, write, read, fstat, close — all over raw frames.
	var w WireWriter
	w.String("/mnt/plfs/raw")
	w.U32(uint32(posix.O_CREAT | posix.O_RDWR))
	w.U32(0o644)
	f = c.send(t, OpOpen, w.Payload())
	r = NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("open status %d", status)
	}
	fd := r.U32()

	w = WireWriter{}
	w.U32(fd)
	w.U64(0)
	w.buf = append(w.buf, []byte("raw-bytes")...)
	f = c.send(t, OpWrite, w.Payload())
	r = NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("write status %d", status)
	}
	if n := r.U32(); n != 9 {
		t.Fatalf("wrote %d", n)
	}

	w = WireWriter{}
	w.U32(fd)
	w.U64(0)
	w.U32(9)
	f = c.send(t, OpRead, w.Payload())
	r = NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("read status %d", status)
	}
	if got := string(r.Rest()); got != "raw-bytes" {
		t.Fatalf("read %q", got)
	}

	w = WireWriter{}
	w.U32(fd)
	f = c.send(t, OpFstat, w.Payload())
	r = NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("fstat status %d", status)
	}
	if size := r.U64(); size != 9 {
		t.Fatalf("fstat size %d", size)
	}

	w = WireWriter{}
	w.U32(fd)
	f = c.send(t, OpSync, w.Payload())
	if status := statusOf(f.Payload); status != 0 {
		t.Fatalf("sync status %d", status)
	}
	w = WireWriter{}
	w.U32(fd)
	f = c.send(t, OpClose, w.Payload())
	if status := statusOf(f.Payload); status != 0 {
		t.Fatalf("close status %d", status)
	}

	// Stats and doctor ride the same stream.
	f = c.send(t, OpStats, nil)
	r = NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("stats status %d", status)
	}
	if !strings.Contains(string(r.Rest()), "tenant:gold") {
		t.Fatal("stats missing tenant layer")
	}
	w = WireWriter{}
	w.String("/mnt/plfs/raw")
	w.U8(1) // fix — covers the repair branches on a healthy container
	f = c.send(t, OpDoctor, w.Payload())
	r = NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		t.Fatalf("doctor status %d", status)
	}
	if !strings.Contains(string(r.Rest()), "openhosts records") {
		t.Fatal("doctor report missing")
	}
}

func TestServerProtocolEdges(t *testing.T) {
	_, addr := startServer(t)

	// First frame must be a Hello.
	c := dialRaw(t, addr)
	f := c.send(t, OpOpen, nil)
	if status := statusOf(f.Payload); status != int32(posix.EINVAL) {
		t.Fatalf("non-hello first frame: status %d", status)
	}

	// Undeclared tenant is refused with EPERM.
	c = dialRaw(t, addr)
	f = c.send(t, OpHello, helloPayload("nosuch"))
	if status := statusOf(f.Payload); status != int32(posix.EPERM) {
		t.Fatalf("unknown tenant: status %d", status)
	}

	// After a good hello: unknown op and malformed payloads answer
	// EINVAL without killing the stream.
	c = dialRaw(t, addr)
	c.send(t, OpHello, helloPayload("gold"))
	f = c.send(t, 0xee, nil)
	if status := statusOf(f.Payload); status != int32(posix.EINVAL) {
		t.Fatalf("unknown op: status %d", status)
	}
	f = c.send(t, OpOpen, []byte{0xff}) // truncated string
	if status := statusOf(f.Payload); status != int32(posix.EINVAL) {
		t.Fatalf("malformed open: status %d", status)
	}
	// Read request larger than a frame can carry.
	var w WireWriter
	w.U32(1)
	w.U64(0)
	w.U32(MaxFramePayload)
	f = c.send(t, OpRead, w.Payload())
	if status := statusOf(f.Payload); status != int32(posix.EINVAL) {
		t.Fatalf("oversize read: status %d", status)
	}
	// The stream is still alive.
	f = c.send(t, OpStats, nil)
	if status := statusOf(f.Payload); status != 0 {
		t.Fatalf("stream dead after EINVALs: status %d", status)
	}
}

// TestHandleFrameDecodeErrors drives every op's malformed-payload
// branch directly.
func TestHandleFrameDecodeErrors(t *testing.T) {
	g := newTestGateway(t, nil)
	srv := NewServer(g)
	sess, err := g.NewSession("gold")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.End()
	for _, op := range []byte{OpOpen, OpRead, OpWrite, OpSync, OpClose, OpStat, OpFstat, OpTrunc, OpUnlink, OpDoctor} {
		reply := srv.handleFrame(sess, Frame{Op: op, Payload: []byte{0xff}})
		if status := statusOf(reply); status != int32(posix.EINVAL) {
			t.Fatalf("op %d malformed payload: status %d", op, status)
		}
	}
}

func TestServerCloseTearsDownConns(t *testing.T) {
	srv, addr := startServer(t)
	c := dialRaw(t, addr)
	c.send(t, OpHello, helloPayload("gold"))
	if err := srv.Close(); err == nil {
		t.Log("listener already closed") // Close of a live listener returns nil error upstream
	}
	// The torn-down connection now fails.
	c.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	WriteFrame(c.nc, OpStats, nil)
	if _, err := ReadFrame(c.br); err == nil {
		t.Fatal("connection survived server Close")
	}
}

// TestQoSWallClockSleep covers the real-clock sleep path: an op-rate
// limited tenant pays its bucket debt in wall time.
func TestQoSWallClockSleep(t *testing.T) {
	q := newQoS([]TenantConfig{{Name: "slow", OpsPerSec: 200, Burst: 1}}, nil, 2, nil)
	tn := q.tenant("slow")
	start := time.Now()
	for i := 0; i < 3; i++ {
		leave := q.enter(tn, 0, 0)
		leave()
	}
	// Burst 1 at 200 ops/s: ops 2 and 3 owe ~5ms each.
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("no bucket delay applied: %v", elapsed)
	}
}
