package service

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ldplfs/internal/plfs/tune"
)

// TestTokenBucketNeverExceedsRate is the bucket's core property: a
// caller that honors the returned delays never moves more than
// rate*window + burst + one request over ANY window, for randomized
// request/idle sequences. The manual clock makes the check exact.
func TestTokenBucketNeverExceedsRate(t *testing.T) {
	const rate, burst = 1000, 500
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clock := &tune.ManualClock{}
		b := NewTokenBucket(rate, burst, clock)

		type event struct {
			at time.Duration // when the bytes were admitted
			n  int64
		}
		var events []event
		var now time.Duration
		var maxReq int64
		for i := 0; i < 400; i++ {
			n := int64(rng.Intn(2000) + 1)
			if n > maxReq {
				maxReq = n
			}
			if d := b.Take(n); d > 0 {
				// Honor the debt before proceeding, as the QoS stage does.
				clock.Advance(d)
				now += d
			}
			events = append(events, event{at: now, n: n})
			if rng.Intn(3) == 0 {
				idle := time.Duration(rng.Intn(int(50 * time.Millisecond)))
				clock.Advance(idle)
				now += idle
			}
		}
		// Check every window [i, j]: bytes admitted in the window must
		// respect rate * span + burst + one request (the request that
		// straddles the window start).
		for i := 0; i < len(events); i += 7 {
			var sum int64
			for j := i; j < len(events); j++ {
				sum += events[j].n
				span := events[j].at - events[i].at
				limit := int64(float64(rate)*span.Seconds()) + burst + maxReq
				if sum > limit {
					t.Fatalf("seed %d window [%d,%d]: %d bytes admitted over %v (limit %d)",
						seed, i, j, sum, span, limit)
				}
			}
		}
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(0, 0, &tune.ManualClock{})
	for i := 0; i < 100; i++ {
		if d := b.Take(1 << 30); d != 0 {
			t.Fatalf("unlimited bucket delayed %v", d)
		}
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	clock := &tune.ManualClock{}
	b := NewTokenBucket(1000, 1000, clock)
	b.Take(1000) // drain the burst
	b.SetRate(500)
	if got := b.Rate(); got != 500 {
		t.Fatalf("Rate = %d", got)
	}
	// From empty at 500 tokens/sec, 1s buys 500 tokens.
	clock.Advance(time.Second)
	if d := b.Take(500); d != 0 {
		t.Fatalf("500 tokens after 1s at rate 500 delayed %v", d)
	}
	if d := b.Take(500); d == 0 {
		t.Fatal("overdraft must delay")
	}
}

func TestAdmissionLessOrdering(t *testing.T) {
	gold := &Tenant{Name: "gold", Priority: 0, Weight: 1}
	batch := &Tenant{Name: "batch", Priority: 1, Weight: 1}
	heavy := &Tenant{Name: "heavy", Priority: 1, Weight: 2}
	batch.served.Store(100)
	heavy.served.Store(150) // deficit 75 < batch's 100

	w := func(t_ *Tenant, seq uint64) *waiter {
		return &waiter{priority: t_.Priority, tenant: t_, seq: seq}
	}
	// Strict priority beats any deficit.
	if !admissionLess(w(gold, 9), w(batch, 1)) {
		t.Fatal("priority 0 must beat priority 1")
	}
	// Within a class, lower served/weight goes first.
	if !admissionLess(w(heavy, 9), w(batch, 1)) {
		t.Fatal("weighted deficit must order within a class")
	}
	// Equal everything: FIFO.
	if !admissionLess(w(batch, 1), w(batch, 2)) || admissionLess(w(batch, 2), w(batch, 1)) {
		t.Fatal("FIFO tiebreak")
	}
}

// TestAdmissionPriorityGrantOrder holds the only slot, queues a
// background waiter then a foreground one, and asserts the foreground
// waiter is granted first on release.
func TestAdmissionPriorityGrantOrder(t *testing.T) {
	gold := &Tenant{Name: "gold", Priority: 0}
	batch := &Tenant{Name: "batch", Priority: 1}
	a := newAdmission(1)
	a.acquire(batch) // occupy the slot

	order := make(chan string, 2)
	var wg sync.WaitGroup
	enqueue := func(name string, tn *Tenant) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.acquire(tn)
			order <- name
			a.release()
		}()
		// Wait until the waiter is actually queued so the enqueue order
		// is deterministic.
		for {
			a.mu.Lock()
			n := len(a.waiters)
			a.mu.Unlock()
			if n >= 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("batch2", batch)
	// Second waiter: wait for both to be queued.
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.acquire(gold)
		order <- "gold"
		a.release()
	}()
	for {
		a.mu.Lock()
		n := len(a.waiters)
		a.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	a.release() // free the occupied slot
	wg.Wait()
	if first := <-order; first != "gold" {
		t.Fatalf("first grant went to %s, want gold", first)
	}
}
