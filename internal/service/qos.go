package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs"
	"ldplfs/internal/plfs/tune"
)

// TokenBucket is a byte/op rate limiter with borrowable tokens: a
// request larger than the current balance is admitted immediately but
// drives the balance negative, and the caller must sleep for the time
// it takes the refill to pay the debt back. That shape keeps single
// large requests flowing (a request bigger than burst still completes)
// while bounding the sustained rate: over any interval [t0,t1] the
// bytes admitted never exceed rate*(t1-t0) + burst + one request.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // maximum positive balance
	tokens float64 // current balance; negative = borrowed
	last   time.Time
	clock  tune.Clock
}

// NewTokenBucket returns a bucket refilled at rate tokens/sec with the
// given burst capacity (bucket starts full). rate <= 0 means unlimited:
// Take always returns 0. A nil clock uses wall time; tests inject
// tune.ManualClock.
func NewTokenBucket(rate, burst int64, clock tune.Clock) *TokenBucket {
	if clock == nil {
		clock = tune.WallClock()
	}
	b := &TokenBucket{
		rate:  float64(rate),
		burst: float64(burst),
		clock: clock,
	}
	b.tokens = b.burst
	b.last = clock.Now()
	return b
}

// Take withdraws n tokens and returns how long the caller must wait
// before proceeding (0 = proceed now). The withdrawal itself is
// immediate — callers sleep outside the lock, so concurrent takers
// accumulate debt in admission order rather than serializing behind
// each other's sleeps.
func (b *TokenBucket) Take(n int64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return 0
	}
	now := b.clock.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// SetRate changes the refill rate (tokens/sec; <= 0 = unlimited) — the
// surface the QoS governor actuates.
func (b *TokenBucket) SetRate(rate int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Settle the balance at the old rate first, so a rate change never
	// retroactively re-prices tokens already accrued.
	now := b.clock.Now()
	if b.rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.rate = float64(rate)
}

// Rate reports the current refill rate.
func (b *TokenBucket) Rate() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.rate)
}

// admission is the contention stage: a bounded pool of inflight slots
// with strict priority between classes and weighted service within a
// class. Under saturation a hostile low-priority tenant queues behind
// every high-priority request, while same-class tenants share slots in
// proportion to their weights (deficit-style: the waiter whose tenant
// has the least service-per-weight goes first).
type admission struct {
	mu       sync.Mutex
	capacity int
	inflight int
	waiters  []*waiter
}

type waiter struct {
	ready    chan struct{}
	priority int
	tenant   *Tenant
	seq      uint64 // FIFO tiebreak within a tenant
}

func newAdmission(capacity int) *admission {
	if capacity <= 0 {
		capacity = 64
	}
	return &admission{capacity: capacity}
}

var admissionSeq uint64

// acquire blocks until a slot is granted.
func (a *admission) acquire(t *Tenant) {
	a.mu.Lock()
	if a.inflight < a.capacity && len(a.waiters) == 0 {
		a.inflight++
		a.mu.Unlock()
		return
	}
	admissionSeq++
	w := &waiter{ready: make(chan struct{}), priority: t.Priority, tenant: t, seq: admissionSeq}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()
	<-w.ready
}

// release frees a slot and grants it to the best waiter: lowest
// priority value first; within a class, the tenant with the least
// admitted-bytes-per-weight; within a tenant, FIFO.
func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.grantLocked()
	a.mu.Unlock()
}

func (a *admission) grantLocked() {
	if a.inflight >= a.capacity || len(a.waiters) == 0 {
		return
	}
	best := 0
	for i := 1; i < len(a.waiters); i++ {
		if admissionLess(a.waiters[i], a.waiters[best]) {
			best = i
		}
	}
	w := a.waiters[best]
	a.waiters = append(a.waiters[:best], a.waiters[best+1:]...)
	a.inflight++
	close(w.ready)
}

// admissionLess orders waiters: strict priority, then weighted deficit,
// then FIFO.
func admissionLess(x, y *waiter) bool {
	if x.priority != y.priority {
		return x.priority < y.priority
	}
	xd := float64(x.tenant.served.Load()) / float64(x.tenant.weight())
	yd := float64(y.tenant.served.Load()) / float64(y.tenant.weight())
	if xd != yd {
		return xd < yd
	}
	return x.seq < y.seq
}

// TenantConfig is the per-tenant policy half of the gateway config. The
// PLFS configuration reuses the grouped option types of the redesigned
// client API (plfs.Config), so a tenant's engine/index/telemetry knobs
// read exactly like a local instance's.
type TenantConfig struct {
	// Name identifies the tenant on the wire (Hello) and in telemetry
	// (layer "tenant:<name>").
	Name string

	// Priority is the admission class: 0 is served strictly first, 1
	// next, and so on. Latency-sensitive tenants get 0; batch and
	// hostile-by-default tenants get 1+.
	Priority int

	// Weight shares slots within a priority class (default 1): a
	// weight-2 tenant gets twice the service of a weight-1 peer under
	// contention.
	Weight int

	// ReadBytesPerSec / WriteBytesPerSec are token-bucket rate caps on
	// the tenant's data path (0 = unlimited). Burst defaults to one
	// second of rate.
	ReadBytesPerSec  int64
	WriteBytesPerSec int64

	// OpsPerSec caps the tenant's total operation rate (0 = unlimited);
	// the lever against metadata-spam rather than byte floods.
	OpsPerSec int64

	// Burst overrides the buckets' burst capacity in bytes/ops.
	Burst int64

	// Plfs configures the tenant's PLFS instance using the same grouped
	// option types as the local client API (zero = defaults).
	// Telemetry.Stats is overridden by the gateway's plane so every
	// tenant scopes through one collector.
	Plfs plfs.Config
}

// Tenant is one admitted tenant's live policy state: its buckets, its
// admission identity, and its telemetry layer.
type Tenant struct {
	Name     string
	Priority int
	Weight   int

	readBucket  *TokenBucket
	writeBucket *TokenBucket
	opBucket    *TokenBucket

	// ls is the tenant's scoped layer on the gateway plane
	// ("tenant:<name>"): op latency histograms there include queueing
	// and bucket delay, which is exactly what a tenant experiences.
	ls *iostats.LayerStats

	// served accumulates admitted bytes for the weighted-deficit
	// admission order.
	served atomic.Int64
}

func (t *Tenant) weight() int {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Layer exposes the tenant's telemetry layer (benchmarks read p99 read
// latency from here).
func (t *Tenant) Layer() *iostats.LayerStats { return t.ls }

// ReadRate reports the tenant's current read-byte rate cap (0 =
// unlimited) — observed by the governor tests.
func (t *Tenant) ReadRate() int64 { return t.readBucket.Rate() }

// qos is the gateway's enforcement stage: per-tenant buckets plus the
// shared admission pool.
type qos struct {
	adm     *admission
	tenants map[string]*Tenant
	clock   tune.Clock
}

func newQoS(cfgs []TenantConfig, collector iostats.Collector, inflight int, clock tune.Clock) *qos {
	if clock == nil {
		clock = tune.WallClock()
	}
	q := &qos{
		adm:     newAdmission(inflight),
		tenants: make(map[string]*Tenant, len(cfgs)),
		clock:   clock,
	}
	for _, tc := range cfgs {
		burst := tc.Burst
		t := &Tenant{
			Name:        tc.Name,
			Priority:    tc.Priority,
			Weight:      tc.Weight,
			readBucket:  NewTokenBucket(tc.ReadBytesPerSec, defaultBurst(tc.ReadBytesPerSec, burst), clock),
			writeBucket: NewTokenBucket(tc.WriteBytesPerSec, defaultBurst(tc.WriteBytesPerSec, burst), clock),
			opBucket:    NewTokenBucket(tc.OpsPerSec, defaultBurst(tc.OpsPerSec, burst), clock),
		}
		if collector != nil {
			t.ls = collector.Layer("tenant:" + tc.Name)
		}
		q.tenants[tc.Name] = t
	}
	return q
}

// defaultBurst is one second of rate unless overridden.
func defaultBurst(rate, override int64) int64 {
	if override > 0 {
		return override
	}
	return rate
}

// tenant resolves a Hello's tenant name (nil = unknown).
func (q *qos) tenant(name string) *Tenant { return q.tenants[name] }

// Tenants lists the admitted tenants sorted by name.
func (q *qos) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(q.tenants))
	for _, t := range q.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// enter runs the full QoS stage for one operation: op-rate bucket,
// byte bucket for the data direction, then priority admission. It
// returns the leave func to defer. Bucket debts are paid by sleeping
// BEFORE admission, so a rate-limited tenant never holds an inflight
// slot while it waits for tokens.
func (q *qos) enter(t *Tenant, op iostats.Op, bytes int64) func() {
	if t == nil {
		return func() {}
	}
	if d := q.opBucketDelay(t); d > 0 {
		q.sleep(d)
	}
	var bucket *TokenBucket
	switch op {
	case iostats.Read:
		bucket = t.readBucket
	case iostats.Write:
		bucket = t.writeBucket
	}
	if bucket != nil && bytes > 0 {
		if d := bucket.Take(bytes); d > 0 {
			q.sleep(d)
		}
	}
	q.adm.acquire(t)
	t.served.Add(bytes + 1) // +1 so metadata ops advance the deficit too
	return q.adm.release
}

func (q *qos) opBucketDelay(t *Tenant) time.Duration {
	return t.opBucket.Take(1)
}

// sleep blocks for d. With a manual clock the sleep degrades to a
// yield: deterministic tests advance time themselves, and what they
// assert is the bucket arithmetic, not the scheduler.
func (q *qos) sleep(d time.Duration) {
	if _, manual := q.clock.(*tune.ManualClock); manual {
		return
	}
	//plfslint:ignore clockinject sleep is the QoS stage's one real-wall-time effect: paying bucket debt; the manual-clock branch above keeps tests deterministic
	time.Sleep(d)
}
