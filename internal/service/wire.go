// Package service implements plfsd: a long-running gateway daemon that
// mounts PLFS containers and serves many concurrent clients over a
// length-prefixed wire protocol, with a software-defined per-tenant QoS
// stage enforced in the data path.
//
// The layering follows the PAIO stage design: the gateway reuses the
// LDPLFS fd-table/dispatch machinery (internal/core) for its sessions,
// scopes per-tenant telemetry through the iostats plane (layer
// "tenant:<name>"), enforces token-bucket rate limits and priority
// admission before any byte reaches the PLFS engines, and actuates
// background tenants' rates with the internal/plfs/tune controller.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ldplfs/internal/posix"
)

// Wire ops. A request frame is `u32 payloadLen | u8 op | payload`; the
// response to op X is a frame with the same op whose payload starts
// with an i32 errno status (0 = OK) followed by op-specific fields.
const (
	OpHello  = byte(1)  // tenant string, pid u32 -> session
	OpOpen   = byte(2)  // path string, flags u32, mode u32 -> fd u32
	OpRead   = byte(3)  // fd u32, off u64, n u32 -> bytes
	OpWrite  = byte(4)  // fd u32, off u64, bytes -> n u32
	OpSync   = byte(5)  // fd u32
	OpClose  = byte(6)  // fd u32
	OpStat   = byte(7)  // path string -> size u64, mode u32
	OpFstat  = byte(8)  // fd u32 -> size u64, mode u32
	OpTrunc  = byte(9)  // path string, size u64
	OpUnlink = byte(10) // path string
	OpStats  = byte(11) // -> text (telemetry plane snapshot)
	OpDoctor = byte(12) // path string, fix u8 -> report text
)

// MaxFramePayload bounds a frame's payload; larger requests must split.
// It caps both what the daemon will buffer per connection and what a
// hostile client can make it allocate.
const MaxFramePayload = 8 << 20

// frameHeaderSize is the fixed prefix: u32 payload length + u8 op.
const frameHeaderSize = 5

// Frame is one decoded protocol frame.
type Frame struct {
	Op      byte
	Payload []byte
}

var (
	errFrameShort = errors.New("service: short frame")
	errFrameSize  = fmt.Errorf("service: frame exceeds %d bytes", MaxFramePayload)
)

// ParseFrame decodes one frame from the front of buf, returning the
// frame and the bytes consumed. io.ErrUnexpectedEOF means buf holds a
// truncated frame (read more); other errors mean the stream is corrupt.
func ParseFrame(buf []byte) (Frame, int, error) {
	if len(buf) < frameHeaderSize {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > MaxFramePayload {
		return Frame{}, 0, errFrameSize
	}
	total := frameHeaderSize + int(n)
	if len(buf) < total {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	return Frame{Op: buf[4], Payload: buf[frameHeaderSize:total]}, total, nil
}

// AppendFrame appends the encoded frame to dst — the inverse of
// ParseFrame.
func AppendFrame(dst []byte, op byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	hdr[4] = op
	return append(append(dst, hdr[:]...), payload...)
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFramePayload {
		return Frame{}, errFrameSize
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{Op: hdr[4], Payload: payload}, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return errFrameSize
	}
	_, err := w.Write(AppendFrame(nil, op, payload))
	return err
}

// --- payload encoding -----------------------------------------------------
//
// Payload fields are little-endian fixed-width integers; strings are
// u16 length + bytes. The decoder is sticky-error so handlers can chain
// reads and check once.

type WireWriter struct{ buf []byte }

// Payload returns the encoded bytes accumulated so far.
func (w *WireWriter) Payload() []byte { return w.buf }

func (w *WireWriter) U8(v byte)      { w.buf = append(w.buf, v) }
func (w *WireWriter) U32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *WireWriter) U64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *WireWriter) I32(v int32)    { w.U32(uint32(v)) }
func (w *WireWriter) Bytes(p []byte) { w.buf = append(w.buf, p...) }
func (w *WireWriter) String(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(s)))
	w.buf = append(w.buf, s...)
}

type WireReader struct {
	buf []byte
	err error
}

// NewWireReader decodes the given payload.
func NewWireReader(payload []byte) WireReader { return WireReader{buf: payload} }

// Err reports the sticky decode error (nil = every read so far was in
// bounds).
func (r *WireReader) Err() error { return r.err }

func (r *WireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = errFrameShort
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *WireReader) U8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *WireReader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *WireReader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *WireReader) I32() int32 { return int32(r.U32()) }

func (r *WireReader) String() string {
	b := r.take(2)
	if b == nil {
		return ""
	}
	return string(r.take(int(binary.LittleEndian.Uint16(b))))
}

// Rest returns whatever trails the fixed fields (bulk data).
func (r *WireReader) Rest() []byte {
	out := r.buf
	r.buf = nil
	return out
}

// ErrnoOf maps an error onto the wire's i32 status: posix errnos keep
// their value, nil is 0, anything else degrades to EIO.
func ErrnoOf(err error) int32 {
	if err == nil {
		return 0
	}
	var e posix.Errno
	if errors.As(err, &e) {
		return int32(e)
	}
	return int32(posix.EIO)
}

// ErrnoErr is the inverse: reconstruct a posix.Errno from the status.
func ErrnoErr(status int32) error {
	if status == 0 {
		return nil
	}
	return posix.Errno(status)
}
