package service

import (
	"errors"
	"fmt"
	"sync"

	"ldplfs/internal/core"
	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs"
	"ldplfs/internal/plfs/tune"
	"ldplfs/internal/posix"
)

// Config configures a Gateway.
type Config struct {
	// Backend is the store the gateway serves (stripe it with
	// posix.NewStripedFS before handing it over, as a local client
	// would).
	Backend posix.FS

	// Mounts maps client-visible path prefixes onto backend container
	// trees, exactly as LD_PRELOAD'ed processes configure PLFS_MNT.
	Mounts []core.Mount

	// Tenants declares who may connect and under what policy. A client
	// whose Hello names an undeclared tenant is refused.
	Tenants []TenantConfig

	// MaxInflight bounds concurrently executing operations across all
	// tenants (default 64) — the slot pool the admission stage arbitrates.
	MaxInflight int

	// Plane receives every layer's telemetry: the per-tenant QoS layers,
	// plus the plfs engines and caches of every tenant instance. Nil
	// creates a private plane.
	Plane *iostats.Plane

	// Clock drives the token buckets and the governor (nil = wall time).
	Clock tune.Clock

	// Governor enables the feedback loop that throttles background
	// tenants when foreground demand rises.
	Governor GovernorConfig
}

// GovernorConfig configures the per-tenant policy actuator: a tune
// controller whose throughput signal is the priority-0 tenants'
// delivered bytes and whose knobs are the background tenants' rate
// caps. When foreground demand is being starved, stepping a background
// tenant's cap down raises the signal and the controller keeps the
// step; when the foreground is idle, throttling buys nothing, the
// trial shows no improvement, and background tenants keep their full
// rates — work-conserving both ways.
type GovernorConfig struct {
	Enable bool

	// WindowBytes sizes the measurement window over foreground bytes
	// (0 = tune.DefaultWindowBytes).
	WindowBytes int64

	// Ladder is the percent-of-configured-rate positions the governor
	// may set a background tenant's byte caps to, ascending (default
	// 12, 25, 50, 100). The ends are hard bounds.
	Ladder []int
}

var defaultGovernorLadder = []int{12, 25, 50, 100}

// Gateway is the plfsd service core: tenant policy, per-tenant PLFS
// instances, and session minting. It is transport-agnostic — Serve
// (server.go) runs it over a listener; tests and benchmarks drive
// sessions in-process.
type Gateway struct {
	cfg   Config
	plane *iostats.Plane
	qos   *qos
	gov   *tune.Controller

	mu         sync.Mutex
	fss        map[string]*plfs.FS // tenant -> shared PLFS instance
	tenantIdx  map[string]uint32
	nextClient uint32
}

// NewGateway validates cfg and builds the service core.
func NewGateway(cfg Config) (*Gateway, error) {
	if cfg.Backend == nil {
		return nil, errors.New("service: nil backend")
	}
	if len(cfg.Mounts) == 0 {
		return nil, errors.New("service: no mounts configured")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("service: no tenants declared")
	}
	if cfg.Plane == nil {
		cfg.Plane = iostats.NewPlane()
	}
	g := &Gateway{
		cfg:       cfg,
		plane:     cfg.Plane,
		qos:       newQoS(cfg.Tenants, cfg.Plane, cfg.MaxInflight, cfg.Clock),
		fss:       make(map[string]*plfs.FS, len(cfg.Tenants)),
		tenantIdx: make(map[string]uint32, len(cfg.Tenants)),
	}
	for i, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("service: tenant %d has no name", i)
		}
		if _, dup := g.fss[tc.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant %q", tc.Name)
		}
		// Every rank of a tenant shares one PLFS instance — index
		// caches, read engines and flatten state pool across the
		// tenant's sessions, as ranks on one node share the preloaded
		// library. The tenant's grouped config is taken as-is except
		// that telemetry scopes through the gateway plane unless the
		// tenant wired its own collector.
		fsCfg := tc.Plfs
		if fsCfg.Telemetry.Stats == nil && g.plane != nil {
			fsCfg.Telemetry.Stats = g.plane
		}
		g.fss[tc.Name] = plfs.New(cfg.Backend, fsCfg)
		g.tenantIdx[tc.Name] = uint32(i)
	}
	if cfg.Governor.Enable {
		g.gov = newGovernor(cfg.Governor, g.qos, cfg.Clock)
	}
	return g, nil
}

// newGovernor wires the tune controller: source = foreground
// (priority-0) tenants' delivered bytes, knobs = background tenants'
// byte-rate caps as a percent ladder. Background tenants with no
// configured byte cap have nothing to actuate and get no knob.
func newGovernor(cfg GovernorConfig, q *qos, clock tune.Clock) *tune.Controller {
	ladder := cfg.Ladder
	if len(ladder) == 0 {
		ladder = defaultGovernorLadder
	}
	var fg []*Tenant
	var knobs []tune.Knob
	for _, t := range q.Tenants() {
		t := t
		if t.Priority == 0 {
			fg = append(fg, t)
			continue
		}
		baseR := t.readBucket.Rate()
		baseW := t.writeBucket.Rate()
		if baseR <= 0 && baseW <= 0 {
			continue
		}
		knobs = append(knobs, tune.Knob{
			Name:   "rate:" + t.Name,
			Ladder: ladder,
			Start:  ladder[len(ladder)-1],
			Apply: func(pct int) {
				if baseR > 0 {
					t.readBucket.SetRate(baseR * int64(pct) / 100)
				}
				if baseW > 0 {
					t.writeBucket.SetRate(baseW * int64(pct) / 100)
				}
			},
		})
	}
	if len(fg) == 0 || len(knobs) == 0 {
		return nil
	}
	source := func() int64 {
		var n int64
		for _, t := range fg {
			n += t.ls.OpBytes(iostats.Read) + t.ls.OpBytes(iostats.Write)
		}
		return n
	}
	return tune.New(tune.Config{WindowBytes: cfg.WindowBytes, Clock: clock}, source, knobs...)
}

// Plane exposes the gateway's telemetry plane (plfsctl stats reads it
// over the wire; tests read it directly).
func (g *Gateway) Plane() *iostats.Plane { return g.plane }

// Governor exposes the policy controller (nil when disabled).
func (g *Gateway) Governor() *tune.Controller { return g.gov }

// Tenant resolves a declared tenant by name (nil if unknown).
func (g *Gateway) Tenant(name string) *Tenant { return g.qos.tenant(name) }

// tick advances the governor from the data path; its fast path is two
// atomic loads.
func (g *Gateway) tick() {
	if g.gov != nil {
		g.gov.Tick()
	}
}

// Session is one client's connection-equivalent: a private LDPLFS shim
// (own fd table, own pid, so droppings never collide) over the
// tenant's shared PLFS instance, with every operation passing the
// tenant's QoS stage. Methods are safe for concurrent use; one network
// connection drives its session serially, but in-process callers (and
// the race tests) may not.
type Session struct {
	g      *Gateway
	tenant *Tenant
	ld     *core.LDPLFS
	d      *posix.Dispatch
	pid    uint32

	mu     sync.Mutex
	closed bool
}

// NewSession admits a client for the named tenant. The session pid
// encodes tenant and client so each session's droppings are distinct:
// tenantIndex<<20 | clientSeq.
func (g *Gateway) NewSession(tenantName string) (*Session, error) {
	t := g.qos.tenant(tenantName)
	if t == nil {
		return nil, fmt.Errorf("service: unknown tenant %q", tenantName)
	}
	g.mu.Lock()
	g.nextClient++
	pid := g.tenantIdx[tenantName]<<20 | (g.nextClient & 0xfffff)
	fs := g.fss[tenantName]
	g.mu.Unlock()

	d := posix.NewDispatch(g.cfg.Backend)
	ld, err := core.Preload(d, core.Config{
		Mounts: append([]core.Mount(nil), g.cfg.Mounts...),
		Pid:    pid,
		Plfs:   fs,
	})
	if err != nil {
		return nil, err
	}
	return &Session{g: g, tenant: t, ld: ld, d: d, pid: pid}, nil
}

// Pid reports the session's PLFS pid (tests assert dropping ownership).
func (s *Session) Pid() uint32 { return s.pid }

// Tenant reports the session's tenant.
func (s *Session) Tenant() *Tenant { return s.tenant }

// End releases the session's fd table and shim. Idempotent.
func (s *Session) End() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.ld.Unload()
}

// do runs one operation through the QoS stage and records it on the
// tenant layer. The latency sample starts before admission, so the
// histograms measure what the tenant experiences — queueing and bucket
// delay included.
func (s *Session) do(op iostats.Op, bytes int64, fn func() error) error {
	start := s.tenant.ls.Start()
	leave := s.g.qos.enter(s.tenant, op, bytes)
	err := fn()
	leave()
	s.tenant.ls.End(op, bytes, start, err)
	s.g.tick()
	return err
}

// Open opens a path under the mount (or passes through to the backend,
// as the shim does for unmounted paths).
func (s *Session) Open(path string, flags int, mode uint32) (fd int, err error) {
	err = s.do(iostats.Open, 0, func() error {
		fd, err = s.d.Open(path, flags, mode)
		return err
	})
	return fd, err
}

// Pread reads len(p) bytes at off.
func (s *Session) Pread(fd int, p []byte, off int64) (n int, err error) {
	err = s.do(iostats.Read, int64(len(p)), func() error {
		n, err = s.d.Pread(fd, p, off)
		return err
	})
	return n, err
}

// Pwrite writes p at off.
func (s *Session) Pwrite(fd int, p []byte, off int64) (n int, err error) {
	err = s.do(iostats.Write, int64(len(p)), func() error {
		n, err = s.d.Pwrite(fd, p, off)
		return err
	})
	return n, err
}

// Sync flushes fd's droppings.
func (s *Session) Sync(fd int) error {
	return s.do(iostats.Sync, 0, func() error { return s.d.Fsync(fd) })
}

// Close closes fd.
func (s *Session) Close(fd int) error {
	return s.do(iostats.Meta, 0, func() error { return s.d.Close(fd) })
}

// Stat stats a path.
func (s *Session) Stat(path string) (st posix.Stat, err error) {
	err = s.do(iostats.Meta, 0, func() error {
		st, err = s.d.Stat(path)
		return err
	})
	return st, err
}

// Fstat stats an open fd.
func (s *Session) Fstat(fd int) (st posix.Stat, err error) {
	err = s.do(iostats.Meta, 0, func() error {
		st, err = s.d.Fstat(fd)
		return err
	})
	return st, err
}

// Truncate truncates a path.
func (s *Session) Truncate(path string, size int64) error {
	return s.do(iostats.Meta, 0, func() error { return s.d.Truncate(path, size) })
}

// Unlink removes a path.
func (s *Session) Unlink(path string) error {
	return s.do(iostats.Meta, 0, func() error { return s.d.Unlink(path) })
}

// StatsText renders the gateway plane for the Stats wire op.
func (g *Gateway) StatsText() string {
	return g.plane.Snapshot().String()
}

// Doctor reports (and with fix, repairs) container health for a mount
// path through the tenant's PLFS instance — the remote face of plfsctl
// doctor. The report format mirrors the CLI's.
func (s *Session) Doctor(path string, fix bool) (string, error) {
	// Resolve the mount-relative path the way the shim would.
	backendPath, ok := resolveMount(s.g.cfg.Mounts, path)
	if !ok {
		return "", posix.ENOENT
	}
	var report string
	err := s.do(iostats.Meta, 0, func() error {
		r, err := doctorReport(s.ld.Plfs(), backendPath, fix)
		report = r
		return err
	})
	return report, err
}

// resolveMount maps a client path to its backend path (the same prefix
// rewrite core's shim applies).
func resolveMount(mounts []core.Mount, path string) (string, bool) {
	for _, m := range mounts {
		if path == m.Point {
			return m.Backend, true
		}
		if len(path) > len(m.Point) && path[:len(m.Point)] == m.Point && path[len(m.Point)] == '/' {
			return m.Backend + path[len(m.Point):], true
		}
	}
	return "", false
}

// doctorReport is the service-side doctor: openhosts liveness plus
// index health, optionally scrubbing stale records and refreshing the
// flattened index.
func doctorReport(p *plfs.FS, path string, fix bool) (string, error) {
	recs, err := p.OpenHosts(path)
	if err != nil {
		return "", err
	}
	live, stale := 0, 0
	for _, r := range recs {
		if r.Stale {
			stale++
		} else {
			live++
		}
	}
	out := fmt.Sprintf("doctor %s: %d openhosts records (%d live, %d stale)\n", path, len(recs), live, stale)
	h, err := p.IndexHealth(path)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("index: %d droppings, %d raw entries\n", h.IndexDroppings, h.RawEntries)
	switch {
	case h.Flattened == nil:
		out += "flattened index: none\n"
	case h.Flattened.Fresh:
		out += fmt.Sprintf("flattened index: gen %d, %d extents, fresh\n", h.Flattened.Generation, h.Flattened.Extents)
	default:
		out += fmt.Sprintf("flattened index: gen %d, stale\n", h.Flattened.Generation)
	}
	if fix && stale > 0 {
		removed, err := p.ScrubOpenHosts(path)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("removed %d stale records\n", removed)
	}
	if fix {
		if h, err = p.IndexHealth(path); err != nil {
			return "", err
		}
		if h.Flattened != nil && !h.Flattened.Fresh && h.OpenWriters == 0 {
			info, err := p.WriteFlattenedIndex(path)
			if err != nil {
				return "", err
			}
			out += fmt.Sprintf("refreshed flattened index to gen %d (%d extents)\n", info.Generation, info.Extents)
		}
	}
	return out, nil
}
