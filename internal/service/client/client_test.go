package client_test

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/posix"
	"ldplfs/internal/service"
	"ldplfs/internal/service/client"
	"ldplfs/internal/unixtools"
)

// startGateway brings up a loopback plfsd-equivalent and returns its
// address.
func startGateway(t *testing.T) string {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	mounts, err := core.ParseMounts("/mnt/plfs=/backend")
	if err != nil {
		t.Fatal(err)
	}
	g, err := service.NewGateway(service.Config{
		Backend: mem,
		Mounts:  mounts,
		Tenants: []service.TenantConfig{
			{Name: "gold", Priority: 0},
			{Name: "batch", Priority: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewServer(g)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestClientRoundTrip(t *testing.T) {
	addr := startGateway(t)
	c, err := client.Dial(addr, "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const path = "/mnt/plfs/wire"
	fd, err := c.Open(path, posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("remote"), 2000)
	if n, err := c.Pwrite(fd, payload, 0); err != nil || n != len(payload) {
		t.Fatalf("Pwrite = %d, %v", n, err)
	}
	if err := c.Sync(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseFd(fd); err != nil {
		t.Fatal(err)
	}

	if st, err := c.Stat(path); err != nil || st.Size != int64(len(payload)) {
		t.Fatalf("Stat = %+v, %v", st, err)
	}

	fd, err = c.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if n, err := c.Pread(fd, got, 0); err != nil || n != len(payload) {
		t.Fatalf("Pread = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch over the wire")
	}
	if st, err := c.Fstat(fd); err != nil || st.Size != int64(len(payload)) {
		t.Fatalf("Fstat = %+v, %v", st, err)
	}
	if err := c.CloseFd(fd); err != nil {
		t.Fatal(err)
	}

	if err := c.Truncate(path, 3); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Stat(path); st.Size != 3 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
	if err := c.Unlink(path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(path); err != posix.ENOENT {
		t.Fatalf("stat after unlink: %v, want ENOENT", err)
	}
}

func TestClientErrorsCrossTheWire(t *testing.T) {
	addr := startGateway(t)
	c, err := client.Dial(addr, "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Open("/mnt/plfs/absent", posix.O_RDONLY, 0); err != posix.ENOENT {
		t.Fatalf("open absent: %v, want ENOENT", err)
	}
	if err := c.CloseFd(9999); err != posix.EBADF {
		t.Fatalf("close bad fd: %v, want EBADF", err)
	}
}

func TestClientUnknownTenantRefused(t *testing.T) {
	addr := startGateway(t)
	if _, err := client.Dial(addr, "nosuch"); err == nil {
		t.Fatal("undeclared tenant connected")
	}
}

// TestThreeConcurrentClients is the loopback e2e smoke from the issue:
// three clients on two tenants write and read back distinct containers
// concurrently, then one pulls stats and a doctor report.
func TestThreeConcurrentClients(t *testing.T) {
	addr := startGateway(t)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		tenant := "gold"
		if i == 2 {
			tenant = "batch"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, tenant)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			path := fmt.Sprintf("/mnt/plfs/c%d", i)
			payload := bytes.Repeat([]byte{byte('a' + i)}, 8192)
			fd, err := c.Open(path, posix.O_CREAT|posix.O_RDWR, 0o644)
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < 10; k++ {
				if _, err := c.Pwrite(fd, payload, int64(k*len(payload))); err != nil {
					errs <- err
					return
				}
			}
			got := make([]byte, len(payload))
			if _, err := c.Pread(fd, got, 3*int64(len(payload))); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("client %d: read-back mismatch", i)
				return
			}
			if err := c.CloseFd(fd); err != nil {
				errs <- err
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := client.Dial(addr, "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "tenant:gold") || !strings.Contains(stats, "tenant:batch") {
		t.Fatalf("stats missing tenant layers:\n%s", stats)
	}
	report, err := c.Doctor("/mnt/plfs/c0", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "openhosts records") {
		t.Fatalf("doctor report:\n%s", report)
	}
}

// TestDispatchAdapter runs an unmodified unixtool against the remote
// gateway through the client-side Dispatch — the ldrun -remote path.
func TestDispatchAdapter(t *testing.T) {
	addr := startGateway(t)
	c, err := client.Dial(addr, "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := c.Dispatch()

	// Seed a file through the streaming write path (offset-tracked fd).
	fd, err := d.Open("/mnt/plfs/tool", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Write(fd, []byte("stream-write\n")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if _, err := unixtools.Cat(d, "/mnt/plfs/tool", &out); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("stream-write\n", 4)
	if out.String() != want {
		t.Fatalf("cat = %q", out.String())
	}
	sum, err := unixtools.Md5sum(d, "/mnt/plfs/tool")
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 32 {
		t.Fatalf("md5 = %q", sum)
	}

	// Lseek through the adapter: END then read the tail.
	fd, err = d.Open("/mnt/plfs/tool", posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	off, err := d.Lseek(fd, -6, posix.SEEK_END)
	if err != nil || off != int64(len(want)-6) {
		t.Fatalf("Lseek = %d, %v", off, err)
	}
	tail := make([]byte, 6)
	if _, err := d.Read(fd, tail); err != nil {
		t.Fatal(err)
	}
	if string(tail) != "write\n" {
		t.Fatalf("tail = %q", tail)
	}
	if err := d.Close(fd); err != nil {
		t.Fatal(err)
	}
}
