package client

import (
	"sync"

	"ldplfs/internal/posix"
)

// Dispatch presents the connection as a process symbol table, so the
// bundled UNIX tools (and anything else written against
// *posix.Dispatch) run against a remote gateway. Sequential read/write
// offsets are tracked client-side, the way libc tracks them for a
// kernel that only really has pread/pwrite underneath. Operations the
// wire protocol does not carry (mkdir, readdir, rename, ...) return
// ENOSYS.
func (c *Conn) Dispatch() *posix.Dispatch {
	offs := &offsetTable{m: make(map[int]*int64)}
	return &posix.Dispatch{
		OpenFn: func(path string, flags int, mode uint32) (int, error) {
			fd, err := c.Open(path, flags, mode)
			if err == nil {
				offs.add(fd)
			}
			return fd, err
		},
		CloseFn: func(fd int) error {
			offs.drop(fd)
			return c.CloseFd(fd)
		},
		ReadFn: func(fd int, p []byte) (int, error) {
			off, ok := offs.get(fd)
			if !ok {
				return 0, posix.EBADF
			}
			n, err := c.Pread(fd, p, *off)
			*off += int64(n)
			return n, err
		},
		WriteFn: func(fd int, p []byte) (int, error) {
			off, ok := offs.get(fd)
			if !ok {
				return 0, posix.EBADF
			}
			n, err := c.Pwrite(fd, p, *off)
			*off += int64(n)
			return n, err
		},
		PreadFn:  c.Pread,
		PwriteFn: c.Pwrite,
		LseekFn: func(fd int, offset int64, whence int) (int64, error) {
			off, ok := offs.get(fd)
			if !ok {
				return 0, posix.EBADF
			}
			var base int64
			switch whence {
			case posix.SEEK_SET:
				base = 0
			case posix.SEEK_CUR:
				base = *off
			case posix.SEEK_END:
				st, err := c.Fstat(fd)
				if err != nil {
					return 0, err
				}
				base = st.Size
			default:
				return 0, posix.EINVAL
			}
			pos := base + offset
			if pos < 0 {
				return 0, posix.EINVAL
			}
			*off = pos
			return pos, nil
		},
		FsyncFn: c.Sync,
		FtruncateFn: func(fd int, size int64) error {
			// The wire carries path truncate only; no fd->path map is
			// kept client-side.
			return posix.ENOSYS
		},
		FstatFn:    c.Fstat,
		StatFn:     c.Stat,
		TruncateFn: c.Truncate,
		UnlinkFn:   c.Unlink,
		MkdirFn:    func(path string, mode uint32) error { return posix.ENOSYS },
		RmdirFn:    func(path string) error { return posix.ENOSYS },
		ReaddirFn:  func(path string) ([]posix.DirEntry, error) { return nil, posix.ENOSYS },
		RenameFn:   func(oldpath, newpath string) error { return posix.ENOSYS },
		AccessFn: func(path string, mode int) error {
			_, err := c.Stat(path)
			return err
		},
	}
}

// offsetTable tracks per-fd sequential positions. One goroutine per fd
// is the expected pattern (it is what the tools do); the table itself
// is safe for concurrent fds.
type offsetTable struct {
	mu sync.Mutex
	m  map[int]*int64
}

func (t *offsetTable) add(fd int) {
	t.mu.Lock()
	t.m[fd] = new(int64)
	t.mu.Unlock()
}

func (t *offsetTable) drop(fd int) {
	t.mu.Lock()
	delete(t.m, fd)
	t.mu.Unlock()
}

func (t *offsetTable) get(fd int) (*int64, bool) {
	t.mu.Lock()
	off, ok := t.m[fd]
	t.mu.Unlock()
	return off, ok
}
