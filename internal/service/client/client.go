// Package client is the Go client for a plfsd gateway: it speaks the
// length-prefixed frame protocol of internal/service over any
// net.Conn, presenting the same open/pread/pwrite/sync/close surface
// as a local dispatch so ldrun-style workloads can target a remote
// daemon unchanged (harness wires it up behind -remote).
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"ldplfs/internal/posix"
	"ldplfs/internal/service"
)

// Conn is one authenticated client connection. Methods are safe for
// concurrent use; requests on one connection serialize (the protocol
// is one frame in flight), so parallelism across ranks comes from one
// Conn per rank — exactly one gateway session each.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a gateway at addr and performs the Hello handshake
// for the named tenant.
func Dial(addr, tenant string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := New(nc, tenant)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// New performs the Hello handshake over an existing connection (tests
// use net.Pipe).
func New(nc net.Conn, tenant string) (*Conn, error) {
	c := &Conn{conn: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	var w service.WireWriter
	w.String(tenant)
	r, err := c.roundTrip(service.OpHello, w.Payload())
	if err != nil {
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	if name := r.String(); name != tenant {
		return nil, fmt.Errorf("client: hello echoed tenant %q, want %q", name, tenant)
	}
	return c, nil
}

// Close shuts the connection down; the gateway releases the session's
// open fds.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request frame and decodes the response status.
// The returned reader is positioned after the status field.
func (c *Conn) roundTrip(op byte, payload []byte) (service.WireReader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := service.WriteFrame(c.bw, op, payload); err != nil {
		return service.WireReader{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return service.WireReader{}, err
	}
	f, err := service.ReadFrame(c.br)
	if err != nil {
		return service.WireReader{}, err
	}
	if f.Op != op {
		return service.WireReader{}, fmt.Errorf("client: response op %d to request %d", f.Op, op)
	}
	r := service.NewWireReader(f.Payload)
	if status := r.I32(); status != 0 {
		return service.WireReader{}, service.ErrnoErr(status)
	}
	if err := r.Err(); err != nil {
		return service.WireReader{}, err
	}
	return r, nil
}

// Open opens a path on the gateway (POSIX flags/mode).
func (c *Conn) Open(path string, flags int, mode uint32) (int, error) {
	var w service.WireWriter
	w.String(path)
	w.U32(uint32(flags))
	w.U32(mode)
	r, err := c.roundTrip(service.OpOpen, w.Payload())
	if err != nil {
		return -1, err
	}
	return int(r.U32()), r.Err()
}

// Pread reads up to len(p) bytes at off into p.
func (c *Conn) Pread(fd int, p []byte, off int64) (int, error) {
	var w service.WireWriter
	w.U32(uint32(fd))
	w.U64(uint64(off))
	w.U32(uint32(len(p)))
	r, err := c.roundTrip(service.OpRead, w.Payload())
	if err != nil {
		return 0, err
	}
	return copy(p, r.Rest()), nil
}

// Pwrite writes p at off.
func (c *Conn) Pwrite(fd int, p []byte, off int64) (int, error) {
	var w service.WireWriter
	w.U32(uint32(fd))
	w.U64(uint64(off))
	w.Bytes(p)
	r, err := c.roundTrip(service.OpWrite, w.Payload())
	if err != nil {
		return 0, err
	}
	return int(r.U32()), r.Err()
}

// Sync flushes the fd's droppings on the gateway.
func (c *Conn) Sync(fd int) error {
	var w service.WireWriter
	w.U32(uint32(fd))
	_, err := c.roundTrip(service.OpSync, w.Payload())
	return err
}

// CloseFd closes a remote fd.
func (c *Conn) CloseFd(fd int) error {
	var w service.WireWriter
	w.U32(uint32(fd))
	_, err := c.roundTrip(service.OpClose, w.Payload())
	return err
}

// Stat stats a remote path.
func (c *Conn) Stat(path string) (posix.Stat, error) {
	var w service.WireWriter
	w.String(path)
	r, err := c.roundTrip(service.OpStat, w.Payload())
	if err != nil {
		return posix.Stat{}, err
	}
	return decodeStat(&r)
}

// Fstat stats a remote fd.
func (c *Conn) Fstat(fd int) (posix.Stat, error) {
	var w service.WireWriter
	w.U32(uint32(fd))
	r, err := c.roundTrip(service.OpFstat, w.Payload())
	if err != nil {
		return posix.Stat{}, err
	}
	return decodeStat(&r)
}

func decodeStat(r *service.WireReader) (posix.Stat, error) {
	size := r.U64()
	mode := r.U32()
	if err := r.Err(); err != nil {
		return posix.Stat{}, err
	}
	return posix.Stat{Size: int64(size), Mode: mode}, nil
}

// Truncate truncates a remote path.
func (c *Conn) Truncate(path string, size int64) error {
	var w service.WireWriter
	w.String(path)
	w.U64(uint64(size))
	_, err := c.roundTrip(service.OpTrunc, w.Payload())
	return err
}

// Unlink removes a remote path.
func (c *Conn) Unlink(path string) error {
	var w service.WireWriter
	w.String(path)
	_, err := c.roundTrip(service.OpUnlink, w.Payload())
	return err
}

// Stats fetches the gateway's telemetry-plane snapshot, rendered.
func (c *Conn) Stats() (string, error) {
	r, err := c.roundTrip(service.OpStats, nil)
	if err != nil {
		return "", err
	}
	return string(r.Rest()), nil
}

// Doctor runs the container health report for a mount path on the
// gateway, optionally fixing what it finds.
func (c *Conn) Doctor(path string, fix bool) (string, error) {
	var w service.WireWriter
	w.String(path)
	if fix {
		w.U8(1)
	} else {
		w.U8(0)
	}
	r, err := c.roundTrip(service.OpDoctor, w.Payload())
	if err != nil {
		return "", err
	}
	return string(r.Rest()), nil
}
