package service

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ldplfs/internal/core"
	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs/tune"
	"ldplfs/internal/posix"
)

// newTestGateway builds a gateway over a fresh MemFS with a gold
// (priority 0) and batch (priority 1) tenant.
func newTestGateway(t *testing.T, mutate func(*Config)) *Gateway {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	mounts, err := core.ParseMounts("/mnt/plfs=/backend")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Backend: mem,
		Mounts:  mounts,
		Tenants: []TenantConfig{
			{Name: "gold", Priority: 0, Weight: 2},
			{Name: "batch", Priority: 1, Weight: 1},
		},
		Clock: &tune.ManualClock{},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGatewayValidation(t *testing.T) {
	mem := posix.NewMemFS()
	mounts, _ := core.ParseMounts("/mnt/plfs=/backend")
	tenants := []TenantConfig{{Name: "a"}}
	cases := []Config{
		{Mounts: mounts, Tenants: tenants},                                   // nil backend
		{Backend: mem, Tenants: tenants},                                     // no mounts
		{Backend: mem, Mounts: mounts},                                       // no tenants
		{Backend: mem, Mounts: mounts, Tenants: []TenantConfig{{}}},          // unnamed
		{Backend: mem, Mounts: mounts, Tenants: append(tenants, tenants...)}, // duplicate
	}
	for i, cfg := range cases {
		if _, err := NewGateway(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestSessionRoundTrip(t *testing.T) {
	g := newTestGateway(t, nil)
	s, err := g.NewSession("gold")
	if err != nil {
		t.Fatal(err)
	}
	defer s.End()

	const path = "/mnt/plfs/data"
	fd, err := s.Open(path, posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("plfsd"), 100)
	if n, err := s.Pwrite(fd, payload, 0); err != nil || n != len(payload) {
		t.Fatalf("Pwrite = %d, %v", n, err)
	}
	if err := s.Sync(fd); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}

	st, err := s.Stat(path)
	if err != nil || st.Size != int64(len(payload)) {
		t.Fatalf("Stat = %+v, %v", st, err)
	}

	fd, err = s.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if n, err := s.Pread(fd, got, 0); err != nil || n != len(payload) {
		t.Fatalf("Pread = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch")
	}
	if st, err := s.Fstat(fd); err != nil || st.Size != int64(len(payload)) {
		t.Fatalf("Fstat = %+v, %v", st, err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}

	if err := s.Truncate(path, 7); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Stat(path); st.Size != 7 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
	if err := s.Unlink(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(path); err == nil {
		t.Fatal("stat after unlink succeeded")
	}
}

func TestSessionPidsDistinct(t *testing.T) {
	g := newTestGateway(t, nil)
	seen := map[uint32]bool{}
	for _, tenant := range []string{"gold", "batch", "gold"} {
		s, err := g.NewSession(tenant)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Pid()] {
			t.Fatalf("pid %d reused", s.Pid())
		}
		seen[s.Pid()] = true
		// The high bits encode the tenant, so sessions of different
		// tenants can never collide on droppings even across restarts of
		// the client counter.
		wantIdx := uint32(0)
		if tenant == "batch" {
			wantIdx = 1
		}
		if s.Pid()>>20 != wantIdx {
			t.Fatalf("tenant %s pid %#x: tenant bits %d", tenant, s.Pid(), s.Pid()>>20)
		}
		s.End()
		s.End() // idempotent
	}
}

func TestUnknownTenantRefused(t *testing.T) {
	g := newTestGateway(t, nil)
	if _, err := g.NewSession("nosuch"); err == nil {
		t.Fatal("unknown tenant admitted")
	}
}

func TestTenantLayerRecords(t *testing.T) {
	g := newTestGateway(t, nil)
	s, err := g.NewSession("gold")
	if err != nil {
		t.Fatal(err)
	}
	defer s.End()

	fd, err := s.Open("/mnt/plfs/f", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pwrite(fd, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}

	gold := g.Tenant("gold")
	if gold.Layer().OpCount(iostats.Open) != 1 {
		t.Fatalf("open count = %d", gold.Layer().OpCount(iostats.Open))
	}
	if gold.Layer().OpBytes(iostats.Write) != 4096 {
		t.Fatalf("write bytes = %d", gold.Layer().OpBytes(iostats.Write))
	}
	if !strings.Contains(g.StatsText(), "tenant:gold") {
		t.Fatal("plane snapshot missing tenant layer")
	}
}

// TestConcurrentMultiClientRace hammers one gateway with many sessions
// across both tenants doing overlapping open/write/read/trunc/unlink —
// the data-race canary for the shared PLFS instances, fd tables and
// QoS stage. Run under -race in CI.
func TestConcurrentMultiClientRace(t *testing.T) {
	g := newTestGateway(t, func(c *Config) { c.MaxInflight = 4 })
	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		tenant := "gold"
		if i%2 == 1 {
			tenant = "batch"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := g.NewSession(tenant)
			if err != nil {
				errs <- err
				return
			}
			defer s.End()
			shared := "/mnt/plfs/shared"
			private := fmt.Sprintf("/mnt/plfs/private-%d", i)
			for iter := 0; iter < 20; iter++ {
				for _, path := range []string{shared, private} {
					fd, err := s.Open(path, posix.O_CREAT|posix.O_RDWR, 0o644)
					if err != nil {
						errs <- fmt.Errorf("open %s: %w", path, err)
						return
					}
					buf := bytes.Repeat([]byte{byte(i)}, 512)
					if _, err := s.Pwrite(fd, buf, int64(iter*512)); err != nil {
						errs <- fmt.Errorf("pwrite %s: %w", path, err)
						return
					}
					if _, err := s.Pread(fd, buf, 0); err != nil {
						errs <- fmt.Errorf("pread %s: %w", path, err)
						return
					}
					if err := s.Close(fd); err != nil {
						errs <- fmt.Errorf("close %s: %w", path, err)
						return
					}
				}
				// Metadata churn on the private file only — truncating the
				// shared container under other writers is legal but makes
				// size assertions meaningless.
				if iter%5 == 4 {
					if err := s.Truncate(private, 0); err != nil {
						errs <- fmt.Errorf("truncate: %w", err)
						return
					}
				}
			}
			if err := s.Unlink(private); err != nil {
				errs <- fmt.Errorf("unlink: %w", err)
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGovernorActuates drives foreground traffic through a governed
// gateway and asserts the controller runs measurement windows and only
// ever parks the background tenant's cap on a ladder position.
func TestGovernorActuates(t *testing.T) {
	clock := &tune.ManualClock{}
	const batchBase = 1 << 20
	g := newTestGateway(t, func(c *Config) {
		c.Clock = clock
		c.Tenants = []TenantConfig{
			{Name: "gold", Priority: 0},
			{Name: "batch", Priority: 1, ReadBytesPerSec: batchBase, WriteBytesPerSec: batchBase},
		}
		c.Governor = GovernorConfig{Enable: true, WindowBytes: 64 << 10}
	})
	if g.Governor() == nil {
		t.Fatal("governor not armed")
	}

	s, err := g.NewSession("gold")
	if err != nil {
		t.Fatal(err)
	}
	defer s.End()
	fd, err := s.Open("/mnt/plfs/fg", posix.O_CREAT|posix.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32<<10)
	for i := 0; i < 40; i++ {
		if _, err := s.Pwrite(fd, buf, int64(i*len(buf))); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Millisecond)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}

	if g.Governor().Windows() == 0 {
		t.Fatal("governor never closed a window")
	}
	rate := g.Tenant("batch").ReadRate()
	valid := false
	for _, pct := range defaultGovernorLadder {
		if rate == batchBase*int64(pct)/100 {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("batch rate %d is not on the ladder", rate)
	}
}

// TestDoctorOverSession exercises the service-side doctor: a written
// container reports openhosts records and index health, and -fix
// scrubs the stale record left by a vanished writer.
func TestDoctorOverSession(t *testing.T) {
	g := newTestGateway(t, nil)
	s, err := g.NewSession("gold")
	if err != nil {
		t.Fatal(err)
	}
	defer s.End()

	fd, err := s.Open("/mnt/plfs/sick", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pwrite(fd, []byte("droppings"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}

	report, err := s.Doctor("/mnt/plfs/sick", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "openhosts records") || !strings.Contains(report, "index:") {
		t.Fatalf("doctor report missing sections:\n%s", report)
	}
	if _, err := s.Doctor("/not/mounted", false); err == nil {
		t.Fatal("doctor outside the mounts succeeded")
	}
}
