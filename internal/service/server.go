package service

import (
	"bufio"
	"io"
	"net"
	"sync"

	"ldplfs/internal/posix"
)

// Server runs a Gateway over a net.Listener, one goroutine per
// connection. The per-connection loop is serial (one frame in flight
// per client), so cross-client concurrency — what the QoS stage
// arbitrates — equals connection count.
type Server struct {
	g *Gateway

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a gateway for network serving.
func NewServer(g *Gateway) *Server {
	return &Server{g: g, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes. It always
// returns a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.track(conn, true)
		go func() {
			defer s.track(conn, false)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed {
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// Close stops accepting and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// handleConn speaks the frame protocol on one connection: a Hello
// first, then a request/response loop until EOF or a protocol error.
func (s *Server) handleConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Hello: tenant string. Anything else (or an undeclared tenant) is
	// answered with the errno and the connection dropped.
	f, err := ReadFrame(br)
	if err != nil {
		return
	}
	if f.Op != OpHello {
		replyErr(bw, f.Op, posix.EINVAL)
		bw.Flush()
		return
	}
	r := WireReader{buf: f.Payload}
	tenant := r.String()
	sess, err := s.g.NewSession(tenant)
	if err != nil {
		replyErr(bw, OpHello, posix.EPERM)
		bw.Flush()
		return
	}
	defer sess.End()
	var w WireWriter
	w.I32(0)
	w.String(tenant)
	if err := writeReply(bw, OpHello, w.buf); err != nil {
		return
	}

	for {
		f, err := ReadFrame(br)
		if err != nil {
			return // EOF or corrupt stream: session ends, fds released
		}
		reply := s.handleFrame(sess, f)
		if err := writeReply(bw, f.Op, reply); err != nil {
			return
		}
	}
}

func writeReply(bw *bufio.Writer, op byte, payload []byte) error {
	if err := WriteFrame(bw, op, payload); err != nil {
		return err
	}
	return bw.Flush()
}

func replyErr(w io.Writer, op byte, errno posix.Errno) {
	var b WireWriter
	b.I32(int32(errno))
	WriteFrame(w, op, b.buf)
}

// handleFrame executes one request and renders the response payload.
// Malformed payloads answer EINVAL rather than killing the connection:
// the framing layer is still intact, so the stream stays usable.
func (s *Server) handleFrame(sess *Session, f Frame) []byte {
	r := WireReader{buf: f.Payload}
	var w WireWriter
	switch f.Op {
	case OpOpen:
		path := r.String()
		flags := r.U32()
		mode := r.U32()
		if bad(&r, &w) {
			return w.buf
		}
		fd, err := sess.Open(path, int(flags), mode)
		w.I32(ErrnoOf(err))
		if err == nil {
			w.U32(uint32(fd))
		}
	case OpRead:
		fd := r.U32()
		off := r.U64()
		n := r.U32()
		if bad(&r, &w) {
			return w.buf
		}
		if n > MaxFramePayload-64 {
			w.I32(int32(posix.EINVAL))
			return w.buf
		}
		buf := make([]byte, n)
		got, err := sess.Pread(int(fd), buf, int64(off))
		w.I32(ErrnoOf(err))
		if err == nil {
			w.Bytes(buf[:got])
		}
	case OpWrite:
		fd := r.U32()
		off := r.U64()
		data := r.Rest()
		if bad(&r, &w) {
			return w.buf
		}
		n, err := sess.Pwrite(int(fd), data, int64(off))
		w.I32(ErrnoOf(err))
		if err == nil {
			w.U32(uint32(n))
		}
	case OpSync:
		fd := r.U32()
		if bad(&r, &w) {
			return w.buf
		}
		w.I32(ErrnoOf(sess.Sync(int(fd))))
	case OpClose:
		fd := r.U32()
		if bad(&r, &w) {
			return w.buf
		}
		w.I32(ErrnoOf(sess.Close(int(fd))))
	case OpStat, OpFstat:
		var st posix.Stat
		var err error
		if f.Op == OpStat {
			path := r.String()
			if bad(&r, &w) {
				return w.buf
			}
			st, err = sess.Stat(path)
		} else {
			fd := r.U32()
			if bad(&r, &w) {
				return w.buf
			}
			st, err = sess.Fstat(int(fd))
		}
		w.I32(ErrnoOf(err))
		if err == nil {
			w.U64(uint64(st.Size))
			w.U32(st.Mode)
		}
	case OpTrunc:
		path := r.String()
		size := r.U64()
		if bad(&r, &w) {
			return w.buf
		}
		w.I32(ErrnoOf(sess.Truncate(path, int64(size))))
	case OpUnlink:
		path := r.String()
		if bad(&r, &w) {
			return w.buf
		}
		w.I32(ErrnoOf(sess.Unlink(path)))
	case OpStats:
		text := s.g.StatsText()
		w.I32(0)
		if len(text) > MaxFramePayload-64 {
			text = text[:MaxFramePayload-64]
		}
		w.Bytes([]byte(text))
	case OpDoctor:
		path := r.String()
		fix := r.U8()
		if bad(&r, &w) {
			return w.buf
		}
		report, err := sess.Doctor(path, fix != 0)
		w.I32(ErrnoOf(err))
		if err == nil {
			w.Bytes([]byte(report))
		}
	default:
		w.I32(int32(posix.EINVAL))
	}
	return w.buf
}

// bad answers EINVAL for a payload the reader failed to decode.
func bad(r *WireReader, w *WireWriter) bool {
	if r.err == nil {
		return false
	}
	w.I32(int32(posix.EINVAL))
	return true
}
