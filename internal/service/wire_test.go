package service

import (
	"bytes"
	"io"
	"testing"

	"ldplfs/internal/posix"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 1000)}
	for _, p := range payloads {
		buf := AppendFrame(nil, OpWrite, p)
		f, n, err := ParseFrame(buf)
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if f.Op != OpWrite || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame mismatch: op %d payload %d bytes", f.Op, len(f.Payload))
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, OpOpen, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, OpClose, nil); err != nil {
		t.Fatal(err)
	}
	f1, err := ReadFrame(&stream)
	if err != nil || f1.Op != OpOpen || string(f1.Payload) != "hello" {
		t.Fatalf("first frame: %+v, %v", f1, err)
	}
	f2, err := ReadFrame(&stream)
	if err != nil || f2.Op != OpClose || len(f2.Payload) != 0 {
		t.Fatalf("second frame: %+v, %v", f2, err)
	}
}

func TestParseFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, OpRead, []byte("payload"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ParseFrame(full[:cut]); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: err %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestParseFrameOversize(t *testing.T) {
	var hdr [frameHeaderSize]byte
	hdr[0] = 0xff
	hdr[1] = 0xff
	hdr[2] = 0xff
	hdr[3] = 0xff
	if _, _, err := ParseFrame(hdr[:]); err != errFrameSize {
		t.Fatalf("err %v, want errFrameSize", err)
	}
}

func TestPayloadCodecRoundTrip(t *testing.T) {
	var w WireWriter
	w.U8(7)
	w.U32(0xdeadbeef)
	w.U64(1 << 40)
	w.I32(int32(-posix.EIO))
	w.String("tenant-a")
	w.Bytes([]byte{1, 2, 3})

	r := NewWireReader(w.Payload())
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.I32(); v != int32(-posix.EIO) {
		t.Fatalf("I32 = %d", v)
	}
	if v := r.String(); v != "tenant-a" {
		t.Fatalf("String = %q", v)
	}
	if v := r.Rest(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Rest = %v", v)
	}
	if r.Err() != nil {
		t.Fatalf("codec err: %v", r.Err())
	}
	// Reading past the end sets the sticky error and zero-values out.
	if v := r.U32(); v != 0 || r.Err() == nil {
		t.Fatal("overread not detected")
	}
}

func TestErrnoMapping(t *testing.T) {
	if ErrnoOf(nil) != 0 || ErrnoErr(0) != nil {
		t.Fatal("zero status must be nil error")
	}
	if ErrnoOf(posix.ENOENT) != int32(posix.ENOENT) {
		t.Fatal("posix errno must keep its value")
	}
	if ErrnoOf(io.ErrUnexpectedEOF) != int32(posix.EIO) {
		t.Fatal("foreign errors must degrade to EIO")
	}
	if ErrnoErr(int32(posix.EBADF)) != posix.EBADF {
		t.Fatal("status must reconstruct the errno")
	}
}

// FuzzFrameParse drives ParseFrame with arbitrary bytes: it must never
// panic, never over-consume, and anything it accepts must re-encode to
// the same frame (parse/append are inverses on the accepted set).
func FuzzFrameParse(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, OpHello, []byte("t")))
	f.Add(AppendFrame(nil, OpWrite, bytes.Repeat([]byte{0xaa}, 300)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{5, 0, 0, 0, 2, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseFrame(data)
		if err != nil {
			return
		}
		if n < frameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if n != frameHeaderSize+len(fr.Payload) {
			t.Fatalf("consumed %d, payload %d", n, len(fr.Payload))
		}
		re := AppendFrame(nil, fr.Op, fr.Payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch")
		}
		// The decoded payload must also survive a stream round trip.
		fr2, err := ReadFrame(bytes.NewReader(data[:n]))
		if err != nil || fr2.Op != fr.Op || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("stream reparse: %v", err)
		}
	})
}
