package mpiio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/fuse"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// methodUnderTest builds a per-rank Driver for one of the paper's four
// access methods over a shared MemFS.
type methodUnderTest struct {
	name string
	// driver returns the ADIO driver a given rank uses, plus a cleanup.
	driver func(t *testing.T, mem *posix.MemFS, rank int) Driver
	// path the application opens.
	path string
}

func methods(t *testing.T) []methodUnderTest {
	return []methodUnderTest{
		{
			name: "mpiio-plain",
			path: "/scratch/file",
			driver: func(t *testing.T, mem *posix.MemFS, rank int) Driver {
				return NewUFS(posix.NewDispatch(mem))
			},
		},
		{
			name: "romio-plfs",
			path: "/scratch/file",
			driver: func(t *testing.T, mem *posix.MemFS, rank int) Driver {
				p := plfs.New(mem, plfs.Options{NumHostdirs: 4})
				return NewPLFSDriver(p, func(path string) (string, bool) {
					return "/backend" + strings.TrimPrefix(path, "/scratch"), true
				})
			},
		},
		{
			name: "ldplfs",
			path: "/mnt/plfs/file",
			driver: func(t *testing.T, mem *posix.MemFS, rank int) Driver {
				d := posix.NewDispatch(mem)
				_, err := core.Preload(d, core.Config{
					Mounts:      []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
					Pid:         uint32(rank),
					PlfsOptions: plfs.Options{NumHostdirs: 4},
				})
				if err != nil {
					t.Fatal(err)
				}
				return NewUFS(d)
			},
		},
		{
			name: "fuse",
			path: "/mnt/plfs/file",
			driver: func(t *testing.T, mem *posix.MemFS, rank int) Driver {
				return NewUFS(fuse.Mount(mem, "/mnt/plfs", "/backend", plfs.Options{NumHostdirs: 4}))
			},
		},
	}
}

func newWorldFS(t *testing.T) *posix.MemFS {
	t.Helper()
	mem := posix.NewMemFS()
	for _, dir := range []string{"/scratch", "/backend"} {
		if err := mem.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return mem
}

// TestCollectiveWriteReadAllMethods runs the MPI-IO Test pattern (N ranks,
// strided contiguous blocks, collective blocking I/O) through all four
// access methods and verifies byte-exact read-back.
func TestCollectiveWriteReadAllMethods(t *testing.T) {
	const (
		ranks = 8
		ppn   = 2
		block = 64 << 10
	)
	for _, m := range methods(t) {
		m := m
		t.Run(m.name, func(t *testing.T) {
			mem := newWorldFS(t)
			err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
				drv := m.driver(t, mem, r.Rank())
				fh, err := Open(r, drv, m.path, ModeCreate|ModeRdwr, DefaultHints())
				if err != nil {
					panic(err)
				}
				// Write phase: rank i writes block i.
				buf := bytes.Repeat([]byte{byte(r.Rank() + 1)}, block)
				off := int64(r.Rank()) * block
				if n, err := fh.WriteAtAll(buf, off); err != nil || n != block {
					panic(fmt.Sprintf("WriteAtAll = %d, %v", n, err))
				}
				if err := fh.Sync(); err != nil {
					panic(err)
				}
				// Read phase: rank i reads block (i+1) mod ranks.
				peer := (r.Rank() + 1) % ranks
				got := make([]byte, block)
				if n, err := fh.ReadAtAll(got, int64(peer)*block); err != nil || n != block {
					panic(fmt.Sprintf("ReadAtAll = %d, %v", n, err))
				}
				for i, b := range got {
					if b != byte(peer+1) {
						panic(fmt.Sprintf("rank %d byte %d = %d, want %d", r.Rank(), i, b, peer+1))
					}
				}
				if err := fh.Close(); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCollectiveBufferingAggregatesWrites(t *testing.T) {
	// 8 ranks on 2 nodes => 2 aggregators; with collective buffering the
	// driver sees few large writes, not 8 small ones.
	const (
		ranks = 8
		ppn   = 4
		block = 4 << 10
	)
	mem := newWorldFS(t)
	var stats *iostats.LayerStats
	err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/agg", ModeCreate|ModeWronly, DefaultHints())
		if err != nil {
			panic(err)
		}
		buf := bytes.Repeat([]byte{1}, block)
		if _, err := fh.WriteAtAll(buf, int64(r.Rank())*block); err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			stats = fh.Layer()
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The whole 32 KiB extent splits into 2 aggregator domains, each
	// contiguous: exactly 2 driver writes.
	if got := stats.Counter("driver_writes").Load(); got != 2 {
		t.Fatalf("driver writes = %d, want 2 (one per aggregator)", got)
	}
	st, err := mem.Stat("/scratch/agg")
	if err != nil || st.Size != ranks*block {
		t.Fatalf("file size = %d, %v", st.Size, err)
	}
}

func TestCollectiveStridedInterleave(t *testing.T) {
	// Interleaved per-rank stripes (BT-like): rank r owns every ranks-th
	// stripe. Exercises multi-segment WriteAll/ReadAll across domains.
	const (
		ranks  = 6
		ppn    = 3
		stripe = 512
		rounds = 8
	)
	mem := newWorldFS(t)
	err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/strided", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		segs := make([]Segment, rounds)
		buf := make([]byte, rounds*stripe)
		for round := 0; round < rounds; round++ {
			segs[round] = Segment{
				Off: int64(round*ranks+r.Rank()) * stripe,
				Len: stripe,
			}
			fill := bytes.Repeat([]byte{byte(r.Rank()*rounds + round)}, stripe)
			copy(buf[round*stripe:], fill)
		}
		if n, err := fh.WriteAll(segs, buf); err != nil || n != len(buf) {
			panic(fmt.Sprintf("WriteAll = %d, %v", n, err))
		}
		fh.Sync()
		// Read back the neighbour's stripes collectively.
		peer := (r.Rank() + 1) % ranks
		rsegs := make([]Segment, rounds)
		for round := 0; round < rounds; round++ {
			rsegs[round] = Segment{Off: int64(round*ranks+peer) * stripe, Len: stripe}
		}
		got := make([]byte, rounds*stripe)
		if n, err := fh.ReadAll(rsegs, got); err != nil || n != len(got) {
			panic(fmt.Sprintf("ReadAll = %d, %v", n, err))
		}
		for round := 0; round < rounds; round++ {
			want := byte(peer*rounds + round)
			for i := 0; i < stripe; i++ {
				if got[round*stripe+i] != want {
					panic(fmt.Sprintf("rank %d round %d byte %d = %d, want %d",
						r.Rank(), round, i, got[round*stripe+i], want))
				}
			}
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndependentWriteAt(t *testing.T) {
	mem := newWorldFS(t)
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/ind", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		buf := []byte(fmt.Sprintf("rank%d", r.Rank()))
		if _, err := fh.WriteAt(buf, int64(r.Rank())*8); err != nil {
			panic(err)
		}
		fh.Sync()
		got := make([]byte, 5)
		peer := (r.Rank() + 2) % 4
		if _, err := fh.ReadAt(got, int64(peer)*8); err != nil {
			panic(err)
		}
		if string(got) != fmt.Sprintf("rank%d", peer) {
			panic(fmt.Sprintf("got %q", got))
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDataSievingWrite(t *testing.T) {
	mem := newWorldFS(t)
	err := mpi.Run(1, 1, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/sieve", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		// Pre-fill 1 KiB of 0xFF so the sieve's read-modify-write has
		// existing data to preserve.
		base := bytes.Repeat([]byte{0xFF}, 1024)
		fh.WriteAt(base, 0)

		// Strided overwrite: 16 segments of 32 bytes every 64 bytes.
		var segs []Segment
		var buf []byte
		for i := 0; i < 16; i++ {
			segs = append(segs, Segment{Off: int64(i * 64), Len: 32})
			buf = append(buf, bytes.Repeat([]byte{byte(i)}, 32)...)
		}
		before := fh.Layer().Counter("driver_writes").Load()
		if _, err := fh.WriteStrided(segs, buf); err != nil {
			panic(err)
		}
		if got := fh.Layer().Counter("driver_writes").Load() - before; got != 1 {
			panic(fmt.Sprintf("sieved write issued %d driver writes, want 1", got))
		}
		if fh.Layer().Counter("sieve_rmws").Load() != 1 {
			panic("sieve RMW not recorded")
		}
		// Verify overlay: stripes of i and preserved 0xFF gaps.
		got := make([]byte, 1024)
		fh.ReadAt(got, 0)
		for i := 0; i < 16; i++ {
			if got[i*64] != byte(i) || got[i*64+31] != byte(i) {
				panic(fmt.Sprintf("segment %d lost", i))
			}
			if got[i*64+32] != 0xFF {
				panic(fmt.Sprintf("gap %d overwritten: %x", i, got[i*64+32]))
			}
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSievingDisabledIssuesPerSegmentWrites(t *testing.T) {
	mem := newWorldFS(t)
	hints := DefaultHints()
	hints.DataSieving = false
	err := mpi.Run(1, 1, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/nosieve", ModeCreate|ModeRdwr, hints)
		if err != nil {
			panic(err)
		}
		var segs []Segment
		var buf []byte
		for i := 0; i < 8; i++ {
			segs = append(segs, Segment{Off: int64(i * 100), Len: 50})
			buf = append(buf, bytes.Repeat([]byte{byte(i)}, 50)...)
		}
		before := fh.Layer().Counter("driver_writes").Load()
		fh.WriteStrided(segs, buf)
		if got := fh.Layer().Counter("driver_writes").Load() - before; got != 8 {
			panic(fmt.Sprintf("driver writes = %d, want 8", got))
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetSizeAndSize(t *testing.T) {
	mem := newWorldFS(t)
	err := mpi.Run(3, 1, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/sz", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		fh.WriteAtAll(make([]byte, 100), int64(r.Rank())*100)
		if err := fh.SetSize(50); err != nil {
			panic(err)
		}
		r.Barrier()
		if size, err := fh.Size(); err != nil || size != 50 {
			panic(fmt.Sprintf("size = %d, %v", size, err))
		}
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	mem := newWorldFS(t)
	err := mpi.Run(2, 1, func(r *mpi.Rank) {
		// Missing file without Create.
		_, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/absent", ModeRdonly, DefaultHints())
		if err == nil {
			panic("open of missing file succeeded")
		}
		// Bad amode.
		_, err = Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/x", ModeCreate, DefaultHints())
		if err == nil {
			panic("amode without access mode accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPLFSDriverProducesContainers(t *testing.T) {
	mem := newWorldFS(t)
	p := plfs.New(mem, plfs.Options{NumHostdirs: 4})
	err := mpi.Run(4, 2, func(r *mpi.Rank) {
		drv := NewPLFSDriver(p, nil)
		fh, err := Open(r, drv, "/backend/cont", ModeCreate|ModeWronly, DefaultHints())
		if err != nil {
			panic(err)
		}
		fh.WriteAtAll(bytes.Repeat([]byte{9}, 1000), int64(r.Rank())*1000)
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsContainer("/backend/cont") {
		t.Fatal("no container created by plfs driver")
	}
	st, err := p.Stat("/backend/cont")
	if err != nil || st.Size != 4000 {
		t.Fatalf("container size = %d, %v", st.Size, err)
	}
}

// TestMethodsProduceIdenticalBytes writes the same strided pattern through
// every access method and checks all four logical files are identical —
// the transparency claim at the heart of the paper.
func TestMethodsProduceIdenticalBytes(t *testing.T) {
	const (
		ranks = 4
		ppn   = 2
		block = 8 << 10
		steps = 5
	)
	results := map[string][]byte{}
	for _, m := range methods(t) {
		mem := newWorldFS(t)
		err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
			drv := m.driver(t, mem, r.Rank())
			fh, err := Open(r, drv, m.path, ModeCreate|ModeRdwr, DefaultHints())
			if err != nil {
				panic(err)
			}
			for s := 0; s < steps; s++ {
				buf := make([]byte, block)
				for i := range buf {
					buf[i] = byte(s*ranks + r.Rank() + i%7)
				}
				off := int64(s*ranks+r.Rank()) * block
				if _, err := fh.WriteAtAll(buf, off); err != nil {
					panic(err)
				}
			}
			fh.Close()
		})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		// Read the logical file back through a fresh reader.
		total := ranks * steps * block
		got := make([]byte, total)
		err = mpi.Run(1, 1, func(r *mpi.Rank) {
			drv := m.driver(t, mem, 0)
			fh, err := Open(r, drv, m.path, ModeRdonly, DefaultHints())
			if err != nil {
				panic(err)
			}
			if n, err := fh.ReadAtAll(got, 0); err != nil || n != total {
				panic(fmt.Sprintf("read back = %d, %v", n, err))
			}
			fh.Close()
		})
		if err != nil {
			t.Fatalf("%s readback: %v", m.name, err)
		}
		results[m.name] = got
	}
	want := results["mpiio-plain"]
	for name, got := range results {
		if !bytes.Equal(got, want) {
			t.Fatalf("method %s produced different bytes than plain MPI-IO", name)
		}
	}
}
