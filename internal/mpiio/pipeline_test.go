package mpiio

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/posix"
)

// --- satellite: sieved write past EOF --------------------------------------

// eofDriver wraps a Driver so short preads surface as (n, io.EOF), the
// os.File contract — in-tree backends return (n, nil) at EOF, which
// masked the write path treating EOF as fatal.
type eofDriver struct{ Driver }

func (d eofDriver) Open(path string, amode int, rank int) (DriverFile, error) {
	df, err := d.Driver.Open(path, amode, rank)
	if err != nil {
		return nil, err
	}
	return eofFile{df}, nil
}

type eofFile struct{ DriverFile }

func (f eofFile) PreadAt(p []byte, off int64) (int, error) {
	n, err := f.DriverFile.PreadAt(p, off)
	if err == nil && n < len(p) {
		err = io.EOF
	}
	return n, err
}

// TestSievedWritePastEOF is the regression for the data-sieving RMW
// pre-read: a sieved write whose span extends past EOF used to fail on
// the short pre-read instead of zero-filling the hole like the read
// path does.
func TestSievedWritePastEOF(t *testing.T) {
	mem := newWorldFS(t)
	err := mpi.Run(1, 1, func(r *mpi.Rank) {
		fh, err := Open(r, eofDriver{NewUFS(posix.NewDispatch(mem))},
			"/scratch/eof", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		// Empty file: the whole sieve span is past EOF, the densest
		// possible trigger of the old fatal path.
		segs := []Segment{{Off: 0, Len: 64}, {Off: 128, Len: 64}}
		buf := bytes.Repeat([]byte{7}, 128)
		if n, err := fh.WriteStrided(segs, buf); err != nil || n != 128 {
			panic(fmt.Sprintf("sieved write past EOF = %d, %v", n, err))
		}
		if fh.Layer().Counter("sieve_rmws").Load() != 1 {
			panic("write did not take the sieve path")
		}
		got := make([]byte, 192)
		if _, err := fh.ReadAt(got, 0); err != nil {
			panic(err)
		}
		for i := 0; i < 64; i++ {
			if got[i] != 7 || got[64+i] != 0 || got[128+i] != 7 {
				panic(fmt.Sprintf("byte layout wrong at %d: %d %d %d",
					i, got[i], got[64+i], got[128+i]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- satellite: unified sieving heuristic ----------------------------------

// TestSieveHeuristicTable pins the shared density cutoff on both paths:
// sieving only when the span is under the sieve buffer AND under twice
// the useful bytes — sparse strided access falls through to per-segment
// I/O instead of sieving mostly-useless holes.
func TestSieveHeuristicTable(t *testing.T) {
	cases := []struct {
		name  string
		segs  []Segment
		sieve bool
	}{
		{
			name:  "dense",
			segs:  []Segment{{0, 256}, {320, 256}, {640, 256}}, // span 896 < 2*768
			sieve: true,
		},
		{
			name:  "sparse",
			segs:  []Segment{{0, 64}, {4096, 64}, {8192, 64}}, // span 8256 >= 2*192
			sieve: false,
		},
		{
			name:  "span-over-buffer",
			segs:  []Segment{{0, 3 << 20}, {5 << 20, 3 << 20}}, // span > SieveBufferSize
			sieve: false,
		},
	}
	for _, tc := range cases {
		for _, op := range []string{"write", "read"} {
			t.Run(tc.name+"/"+op, func(t *testing.T) {
				mem := newWorldFS(t)
				err := mpi.Run(1, 1, func(r *mpi.Rank) {
					fh, err := Open(r, NewUFS(posix.NewDispatch(mem)),
						"/scratch/h", ModeCreate|ModeRdwr, DefaultHints())
					if err != nil {
						panic(err)
					}
					defer fh.Close()
					total := segsBytes(tc.segs)
					buf := make([]byte, total)
					wantOps := int64(len(tc.segs))
					if tc.sieve {
						wantOps = 1
					}
					switch op {
					case "write":
						before := fh.Layer().Counter("driver_writes").Load()
						if _, err := fh.WriteStrided(tc.segs, buf); err != nil {
							panic(err)
						}
						if got := fh.Layer().Counter("driver_writes").Load() - before; got != wantOps {
							panic(fmt.Sprintf("write ops = %d, want %d", got, wantOps))
						}
					case "read":
						before := fh.Layer().Counter("driver_reads").Load()
						if _, err := fh.ReadStrided(tc.segs, buf); err != nil {
							panic(err)
						}
						if got := fh.Layer().Counter("driver_reads").Load() - before; got != wantOps {
							panic(fmt.Sprintf("read ops = %d, want %d", got, wantOps))
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// --- satellite: concurrent sieved writes -----------------------------------

// TestConcurrentSievedWritesSerialized drives two goroutines through
// sieved read-modify-write cycles over interleaved segments of one
// overlapping span. Without the per-handle range lock each cycle reads
// the block, patches its own stripes and writes the whole span back, so
// the later write-back silently erases the earlier goroutine's stripes
// (and the race detector flags the buffer). With the lock, every stripe
// of both goroutines must survive.
func TestConcurrentSievedWritesSerialized(t *testing.T) {
	const (
		stripe  = 128
		stripes = 16
		iters   = 8
	)
	mem := newWorldFS(t)
	err := mpi.Run(1, 1, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)),
			"/scratch/rmw", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Goroutine g owns the odd/even stripes; both spans
				// overlap almost entirely, forcing the RMW cycles to
				// serialize.
				segs := make([]Segment, stripes)
				buf := make([]byte, stripes*stripe)
				for s := 0; s < stripes; s++ {
					segs[s] = Segment{Off: int64(2*s+g) * stripe, Len: stripe}
					for i := 0; i < stripe; i++ {
						buf[s*stripe+i] = byte(g + 1)
					}
				}
				for it := 0; it < iters; it++ {
					if _, err := fh.WriteStrided(segs, buf); err != nil {
						panic(err)
					}
				}
			}(g)
		}
		wg.Wait()
		if fh.Layer().Counter("sieve_rmws").Load() == 0 {
			panic("workload did not exercise the sieve path")
		}
		got := make([]byte, 2*stripes*stripe)
		if _, err := fh.ReadAt(got, 0); err != nil {
			panic(err)
		}
		for s := 0; s < 2*stripes; s++ {
			want := byte(s%2 + 1)
			for i := 0; i < stripe; i++ {
				if got[s*stripe+i] != want {
					panic(fmt.Sprintf("stripe %d byte %d = %d, want %d (lost update)",
						s, i, got[s*stripe+i], want))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- satellite: collective failure paths -----------------------------------

// faultDriver fails pwrites once the shared allowance runs out —
// injected mid-collective it fails an aggregator between pipeline
// rounds.
type faultDriver struct {
	Driver
	allow *atomic.Int64
}

func (d faultDriver) Open(path string, amode int, rank int) (DriverFile, error) {
	df, err := d.Driver.Open(path, amode, rank)
	if err != nil {
		return nil, err
	}
	return faultFile{df, d.allow}, nil
}

type faultFile struct {
	DriverFile
	allow *atomic.Int64
}

func (f faultFile) PwriteAt(p []byte, off int64) (int, error) {
	if f.allow.Add(-1) < 0 {
		return 0, fmt.Errorf("injected aggregator fault")
	}
	return f.DriverFile.PwriteAt(p, off)
}

// TestPipelinedAggregatorFaultNoDeadlock fails the aggregator mid-flush
// with multiple pipeline rounds in flight: every rank must come out of
// the collective with the error (reaching every exchange and the
// closing allreduce — no deadlock), and the rounds flushed before the
// fault must be durable.
func TestPipelinedAggregatorFaultNoDeadlock(t *testing.T) {
	const (
		ranks = 4
		ppn   = 4 // one node, one aggregator: deterministic fault placement
		block = 4 << 10
	)
	mem := newWorldFS(t)
	var allow atomic.Int64
	allow.Store(1) // round 0 flushes, round 1 faults
	hints := DefaultHints()
	hints.CBRounds = 4
	errs := make([]error, ranks)
	err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
		fh, err := Open(r, faultDriver{NewUFS(posix.NewDispatch(mem)), &allow},
			"/scratch/fault", ModeCreate|ModeRdwr, hints)
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		buf := bytes.Repeat([]byte{byte(r.Rank() + 1)}, block)
		_, errs[r.Rank()] = fh.WriteAtAll(buf, int64(r.Rank())*block)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, e := range errs {
		if e == nil {
			t.Fatalf("rank %d: collective write with faulted aggregator returned nil error", rk)
		}
	}
	// Durable prefix: exactly the pre-fault round's bytes. 4 rounds over
	// a 16 KiB extent = 4 KiB per round; round 0 is rank 0's block.
	st, err := mem.Stat("/scratch/fault")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != block {
		t.Fatalf("durable bytes = %d, want %d (round 0 only)", st.Size, block)
	}
	got := make([]byte, block)
	fd, err := mem.Open("/scratch/fault", posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close(fd)
	if _, err := mem.Pread(fd, got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 1 {
			t.Fatalf("durable round-0 byte %d = %d, want 1", i, b)
		}
	}
}

// TestReadAllAggregatorFaultNoDeadlock is the read-side twin: a faulted
// prefetch must surface on every rank without deadlocking the exchange
// schedule.
func TestReadAllAggregatorFaultNoDeadlock(t *testing.T) {
	const (
		ranks = 4
		ppn   = 4
		block = 4 << 10
	)
	mem := newWorldFS(t)
	// Seed the file so the collective has something to read.
	seedErr := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)),
			"/scratch/rfault", ModeCreate|ModeRdwr, DefaultHints())
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		buf := bytes.Repeat([]byte{byte(r.Rank() + 1)}, block)
		if _, err := fh.WriteAtAll(buf, int64(r.Rank())*block); err != nil {
			panic(err)
		}
	})
	if seedErr != nil {
		t.Fatal(seedErr)
	}
	hints := DefaultHints()
	hints.CBRounds = 4
	errs := make([]error, ranks)
	err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
		fh, err := Open(r, readFaultDriver{NewUFS(posix.NewDispatch(mem))},
			"/scratch/rfault", ModeRdonly, hints)
		if err != nil {
			panic(err)
		}
		defer fh.Close()
		buf := make([]byte, block)
		_, errs[r.Rank()] = fh.ReadAtAll(buf, int64(r.Rank())*block)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, e := range errs {
		if e == nil {
			t.Fatalf("rank %d: collective read with faulted aggregator returned nil error", rk)
		}
	}
}

type readFaultDriver struct{ Driver }

func (d readFaultDriver) Open(path string, amode int, rank int) (DriverFile, error) {
	df, err := d.Driver.Open(path, amode, rank)
	if err != nil {
		return nil, err
	}
	return readFaultFile{df}, nil
}

type readFaultFile struct{ DriverFile }

func (f readFaultFile) PreadAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("injected prefetch fault")
}

// --- satellite: differential byte-identity ---------------------------------

// TestCollectivePathDifferential pins byte-identity of the pipelined,
// one-shot and independent paths over randomized disjoint strided
// scripts: whatever the shuffle schedule, the file and every rank's
// read-back must be identical. Pipelined variants also sweep the round
// and aggregator knobs.
func TestCollectivePathDifferential(t *testing.T) {
	const (
		ranks = 6
		ppn   = 3
		block = 512
	)
	modes := []struct {
		name string
		tune func(*Hints)
	}{
		{"pipelined", func(h *Hints) {}},
		{"pipelined-r3-a2", func(h *Hints) { h.CBRounds = 3; h.CBAggregators = 2 }},
		{"pipelined-small-cb", func(h *Hints) { h.CBBufferSize = 2 * block }},
		{"one-shot", func(h *Hints) { h.DisablePipeline = true }},
		{"independent", func(h *Hints) { h.CollectiveBuffering = false }},
	}
	for seed := int64(1); seed <= 3; seed++ {
		var refFile []byte
		var refName string
		for _, mode := range modes {
			mem := newWorldFS(t)
			hints := DefaultHints()
			mode.tune(&hints)
			readback := make([][]byte, ranks)
			err := mpi.Run(ranks, ppn, func(r *mpi.Rank) {
				fh, err := Open(r, NewUFS(posix.NewDispatch(mem)),
					"/scratch/diff", ModeCreate|ModeRdwr, hints)
				if err != nil {
					panic(err)
				}
				defer fh.Close()
				rnd := seed*2654435761 + int64(r.Rank()) + 1
				next := func(n int64) int64 {
					rnd = rnd*6364136223846793005 + 1442695040888963407
					v := rnd % n
					if v < 0 {
						v += n
					}
					return v
				}
				for round := 0; round < 4; round++ {
					// Rank-disjoint randomized stripes: rank r owns every
					// ranks-th block slot, with randomized lengths and
					// content (identical across modes by construction).
					segs := make([]Segment, 0, 8)
					var buf []byte
					for s := 0; s < 8; s++ {
						off := int64(s*ranks+r.Rank()) * block
						l := next(int64(block)-1) + 1
						segs = append(segs, Segment{Off: off, Len: l})
						for j := int64(0); j < l; j++ {
							buf = append(buf, byte(off+j+next(251)))
						}
					}
					if n, err := fh.WriteAll(segs, buf); err != nil || n != len(buf) {
						panic(fmt.Sprintf("WriteAll = %d, %v", n, err))
					}
				}
				// Collective read-back of the neighbour's stripes.
				peer := (r.Rank() + 1) % ranks
				rsegs := make([]Segment, 8)
				for s := 0; s < 8; s++ {
					rsegs[s] = Segment{Off: int64(s*ranks+peer) * block, Len: block}
				}
				got := make([]byte, 8*block)
				if _, err := fh.ReadAll(rsegs, got); err != nil {
					panic(err)
				}
				readback[r.Rank()] = got
			})
			if err != nil {
				t.Fatalf("seed %d mode %s: %v", seed, mode.name, err)
			}
			final := dumpFile(t, mem, "/scratch/diff")
			flat := bytes.Join(readback, nil)
			if refFile == nil {
				refFile, refName = append(final, flat...), mode.name
				continue
			}
			if !bytes.Equal(append(final, flat...), refFile) {
				t.Fatalf("seed %d: mode %s diverges from %s", seed, mode.name, refName)
			}
		}
	}
}

func dumpFile(t *testing.T, mem *posix.MemFS, path string) []byte {
	t.Helper()
	fd, err := mem.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close(fd)
	st, err := mem.Fstat(fd)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, st.Size)
	if _, err := mem.Pread(fd, out, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

// --- satellite: aggregator hot-loop alloc ceiling --------------------------

// nullFile swallows writes — the flush target for the alloc floor.
type nullFile struct{}

func (nullFile) PreadAt(p []byte, off int64) (int, error)  { return len(p), nil }
func (nullFile) PwriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (nullFile) Size() (int64, error)                      { return 0, nil }
func (nullFile) Truncate(size int64) error                 { return nil }
func (nullFile) Sync() error                               { return nil }
func (nullFile) Close() error                              { return nil }

// TestAggregatorStageAllocs is the CI-enforced ceiling on the warm
// aggregator hot loop: collect + sort + stage + flush of a round's
// pieces must not allocate once the arena is warm — the pooled arena,
// the merge-sort scratch and the grow helpers make it zero-alloc.
func TestAggregatorStageAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the floor only holds on plain builds")
	}
	f := &File{df: nullFile{}, hints: DefaultHints()}
	f.ls = iostats.NewLayerStats("mpiio")
	f.cdw = f.ls.Counter("driver_writes")
	f.cbw = f.ls.Counter("bytes_written")
	f.cago = f.ls.Counter("agg_flush_ops")

	// A round's worth of pieces from 8 ranks, interleaved so sorting and
	// coalescing both do real work.
	const ranks, stripes, stripe = 8, 16, 1024
	backing := make([]byte, ranks*stripes*stripe)
	recv := make([]any, ranks)
	for rk := 0; rk < ranks; rk++ {
		ps := make([]pieceRef, stripes)
		for s := 0; s < stripes; s++ {
			off := int64(s*ranks+rk) * stripe
			ps[s] = pieceRef{off: off, data: backing[off : off+stripe]}
		}
		recv[rk] = ps
	}
	a := arenaPool.Get().(*arena)
	defer a.release()
	for i := 0; i < 3; i++ { // warm the arena buffers and run slices
		a.stageWrite(recv, 16<<20)
		if err := f.flushArena(a); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		a.stageWrite(recv, 16<<20)
		if err := f.flushArena(a); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("warm aggregator stage+flush allocates %.1f/op, budget is 1", avg)
	}
}
