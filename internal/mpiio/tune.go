package mpiio

import (
	"ldplfs/internal/plfs/tune"
)

// Autotune wiring for the collective-buffering knobs. Rank 0 owns the
// controller (its committed values are broadcast with every
// collective's extent exchange, so the other ranks follow
// automatically) and feeds it the bytes each collective moved; the
// hill-climb ladders mirror the plfs engine's tuner idiom.

// cbStagingLadder is the staging-arena size ladder.
var cbStagingLadder = []int{1 << 20, 4 << 20, 16 << 20, 64 << 20}

// cbRoundsLadder is the pipeline round-count ladder (more rounds =
// deeper overlap, smaller arenas).
var cbRoundsLadder = []int{1, 2, 4, 8}

// cbAggsLadder is the aggregators-per-node ladder.
var cbAggsLadder = []int{1, 2, 4}

// initTuner builds rank 0's knob controller when Hints.AutoTune is set.
func (f *File) initTuner() {
	if !f.hints.AutoTune || f.rank.Rank() != 0 {
		return
	}
	aggs := make([]int, 0, len(cbAggsLadder))
	for _, v := range cbAggsLadder {
		if v <= f.rank.PPN() {
			aggs = append(aggs, v)
		}
	}
	if len(aggs) == 0 {
		aggs = []int{1}
	}
	knobs := []tune.Knob{
		{
			Name:   "cb_buffer_size",
			Ladder: cbStagingLadder,
			Apply:  func(v int) { f.knobStaging.Store(int64(v)) },
			Start:  f.hints.CBBufferSize,
		},
		{
			Name:   "cb_rounds",
			Ladder: cbRoundsLadder,
			Apply:  func(v int) { f.knobRounds.Store(int64(v)) },
			Start:  maxInt(f.hints.CBRounds, 1),
		},
		{
			Name:   "cb_aggregators",
			Ladder: aggs,
			Apply:  func(v int) { f.knobAggs.Store(int64(v)) },
			Start:  maxInt(f.hints.CBAggregators, 1),
		},
	}
	f.tuner = tune.New(tune.Config{}, f.tuneBytes.Load, knobs...)
}

// observeTune credits a finished collective's bytes to the tuner and
// ticks it (rank 0 only; a no-op elsewhere or without AutoTune).
func (f *File) observeTune(n int64) {
	if f.tuner == nil {
		return
	}
	f.tuneBytes.Add(n)
	f.tuner.Tick()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
