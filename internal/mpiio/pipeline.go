// The pipelined two-phase collective path: the file domain is split
// into staging-sized rounds and round k's exchange overlaps round k-1's
// aggregator I/O — the overlap "Optimizing Noncontiguous Accesses in
// MPI-IO" (Thakur et al.) identifies as the second half of the
// collective win, on top of large coalesced requests.
//
// Schedule, per collective:
//
//	all ranks    round k: Alltoall of piece references (zero-copy)
//	aggregator   stage round k into a pooled arena (the one copy)
//	flusher      |— goroutine: round k-1's vectored backend I/O —|
//	all ranks    closing allreduce funnels errors; no early returns
//
// Every rank must reach every exchange and the closing allreduce, so
// aggregator errors are carried, never returned early — an early
// return would deadlock the communicator. The closing allreduce is
// also the happens-before edge that lets aggregators write read bytes
// directly into requester buffers and lets senders reuse their
// buffers after WriteAll returns.
package mpiio

import (
	"errors"
	"fmt"
	"io"
	"time"

	"ldplfs/internal/mpi"
)

// colGeom is the per-collective geometry every rank derives from the
// same allgathered plan, so round counts and boundaries agree
// everywhere (divergence would deadlock the exchanges).
type colGeom struct {
	lo, hi  int64
	domain  int64 // contiguous file region per aggregator
	span    int64 // round span within a domain
	rounds  int
	staging int64 // effective cb buffer size (run cap)
	aggs    []int // aggregator rank ids, ascending
}

// locate maps a file offset to its (aggregator, round) bucket and the
// bucket's end offset.
func (g *colGeom) locate(off int64) (agg, round int, end int64) {
	rel := off - g.lo
	a := int(rel / g.domain)
	if a >= len(g.aggs) {
		a = len(g.aggs) - 1
	}
	inDom := rel - int64(a)*g.domain
	r := int(inDom / g.span)
	if r >= g.rounds {
		r = g.rounds - 1
	}
	end = g.lo + int64(a)*g.domain + int64(r+1)*g.span
	if domEnd := g.lo + int64(a+1)*g.domain; end > domEnd {
		end = domEnd
	}
	return a, r, end
}

// colKnobs are the collective-buffering knob values committed on rank 0
// (hints, runtime Set* overrides, or the autotune controller) and
// broadcast with the extent exchange, so every rank computes identical
// round geometry whatever its local hints say.
type colKnobs struct {
	staging int
	rounds  int
	aggsPer int
}

// committedKnobs resolves this handle's effective knob values: runtime
// overrides win over hints.
func (f *File) committedKnobs() colKnobs {
	k := colKnobs{
		staging: f.hints.CBBufferSize,
		rounds:  f.hints.CBRounds,
		aggsPer: f.hints.CBAggregators,
	}
	if v := f.knobStaging.Load(); v > 0 {
		k.staging = int(v)
	}
	if v := f.knobRounds.Load(); v > 0 {
		k.rounds = int(v)
	}
	if v := f.knobAggs.Load(); v > 0 {
		k.aggsPer = int(v)
	}
	if k.staging <= 0 {
		k.staging = 16 << 20
	}
	if k.aggsPer <= 0 {
		k.aggsPer = 1
	}
	return k
}

// SetCBBufferSize overrides the staging size at runtime (autotune's
// actuator). Only rank 0's committed value matters: it is broadcast at
// each collective.
func (f *File) SetCBBufferSize(n int) { f.knobStaging.Store(int64(n)) }

// SetCBRounds overrides the pipeline round count (0 = derive from the
// staging size).
func (f *File) SetCBRounds(n int) { f.knobRounds.Store(int64(n)) }

// SetCBAggregators overrides the aggregators-per-node count.
func (f *File) SetCBAggregators(n int) { f.knobAggs.Store(int64(n)) }

// exchangePlan allgathers every rank's extent plus rank 0's committed
// knobs and derives the shared collective geometry.
func (f *File) exchangePlan(segs []Segment) colGeom {
	type colExtent struct {
		lo, hi int64
		k      colKnobs // meaningful on rank 0's entry only
	}
	mine := colExtent{lo: 1 << 62, hi: 0}
	for _, s := range segs {
		if s.Off < mine.lo {
			mine.lo = s.Off
		}
		if end := s.Off + s.Len; end > mine.hi {
			mine.hi = end
		}
	}
	if f.rank.Rank() == 0 {
		mine.k = f.committedKnobs()
	}
	all := f.rank.Allgather(mine)
	g := colGeom{lo: 1 << 62, hi: 0}
	for _, v := range all {
		e := v.(colExtent)
		if e.lo < g.lo {
			g.lo = e.lo
		}
		if e.hi > g.hi {
			g.hi = e.hi
		}
	}
	k := all[0].(colExtent).k
	g.staging = int64(k.staging)

	// Aggregators: the first min(aggsPer, ppn) ranks of each node.
	ppn := f.rank.PPN()
	per := k.aggsPer
	if per > ppn {
		per = ppn
	}
	for n := 0; n < f.rank.Nodes(); n++ {
		for i := 0; i < per; i++ {
			if r := n*ppn + i; r < f.rank.Size() {
				g.aggs = append(g.aggs, r)
			}
		}
	}
	if g.hi <= g.lo {
		return g
	}
	g.domain = (g.hi - g.lo + int64(len(g.aggs)) - 1) / int64(len(g.aggs))
	if k.rounds > 0 {
		g.rounds = k.rounds
		g.span = (g.domain + int64(g.rounds) - 1) / int64(g.rounds)
	} else {
		g.span = g.staging
		g.rounds = int((g.domain + g.span - 1) / g.span)
	}
	if g.rounds < 1 {
		g.rounds = 1
	}
	if g.span < 1 {
		g.span = 1
	}
	return g
}

// aggIndexOf returns this rank's position in the aggregator list, or -1.
func aggIndexOf(rank int, g *colGeom) int {
	for i, r := range g.aggs {
		if r == rank {
			return i
		}
	}
	return -1
}

// aggWorker is the background half of one aggregator's double-buffered
// pipeline: arenas cycle free -> (stage) -> work -> (io) -> free for
// writes, with an extra ready hop for reads so delivery waits for the
// round's backend I/O. The first error is recorded and later rounds
// are drained without touching the backend; the collective's closing
// allreduce surfaces it on every rank.
type aggWorker struct {
	f     *File
	io    func(*arena) error
	work  chan *arena
	out   chan *arena // reads: completed arenas, in round order
	free  chan *arena
	done  chan struct{}
	err   error // owned by the worker goroutine until done is closed
	busy  int64 // ns spent in backend I/O (worker-owned)
	stall int64 // ns the main loop blocked on the pipeline (main-owned)
}

// newAggWorker starts the worker with two pooled arenas in flight.
// forReads adds the ready hop.
func (f *File) newAggWorker(io func(*arena) error, forReads bool) *aggWorker {
	w := &aggWorker{
		f:    f,
		io:   io,
		work: make(chan *arena, 1),
		free: make(chan *arena, 2),
		done: make(chan struct{}),
	}
	if forReads {
		w.out = make(chan *arena, 2)
	}
	// The double-buffer arenas outlive this function by design: they
	// cycle through the pipeline until close() drains the rings and
	// release()s every one back to the pool.
	//plfslint:ignore bufpool arenas are returned by aggWorker.close via arena.release; the pipeline's lifecycle spans the collective, not one function
	w.free <- arenaPool.Get().(*arena)
	w.free <- arenaPool.Get().(*arena)
	go w.run()
	return w
}

func (w *aggWorker) run() {
	defer close(w.done)
	for a := range w.work {
		if w.err == nil {
			t0 := time.Now()
			w.err = w.io(a)
			w.busy += time.Since(t0).Nanoseconds()
		}
		// The sticky error rides the arena back: the channel send is the
		// happens-before edge, so the main loop never touches w.err while
		// the worker owns it.
		a.ioErr = w.err
		if w.out != nil {
			w.out <- a
		} else {
			w.free <- a
		}
	}
}

// next blocks until an arena is free, charging the wait to the stall
// clock (pipeline backpressure: the backend is slower than the
// exchange).
func (w *aggWorker) next() *arena {
	t0 := time.Now()
	a := <-w.free
	w.stall += time.Since(t0).Nanoseconds()
	return a
}

// submit hands a staged arena to the worker.
func (w *aggWorker) submit(a *arena) { w.work <- a }

// ready blocks until the oldest submitted arena's I/O completed
// (reads only). The caller recycles it with recycle after delivery.
func (w *aggWorker) ready() *arena {
	t0 := time.Now()
	a := <-w.out
	w.stall += time.Since(t0).Nanoseconds()
	return a
}

// recycle returns a delivered arena to the free ring.
func (w *aggWorker) recycle(a *arena) { w.free <- a }

// close drains the pipeline, joins the worker, releases the arenas and
// reports the first backend error plus the exchange/I-O overlap the
// pipeline achieved (I/O time that ran concurrently with the main
// loop's exchanges rather than stalling them).
func (w *aggWorker) close() (error, int64) {
	close(w.work)
	<-w.done
	if w.out != nil {
		for len(w.out) > 0 {
			(<-w.out).release()
		}
	}
	for len(w.free) > 0 {
		(<-w.free).release()
	}
	overlap := w.busy - w.stall
	if overlap < 0 {
		overlap = 0
	}
	return w.err, overlap
}

// flushArena issues one staged round: vector-capable drivers take every
// run in a single call (the PLFS driver turns it into one WriteV, whose
// engine batches physically-contiguous pwrites), others get a pwrite
// per run — still coalesced, exactly the one-shot path's op shape.
func (f *File) flushArena(a *arena) error {
	if len(a.runs) == 0 {
		return nil
	}
	if vw, ok := f.df.(VectorWriter); ok && len(a.runs) > 1 {
		f.cdw.Add(1)
		f.cago.Add(1)
		n, err := vw.PwritevAt(a.runs, a.buf)
		f.cbw.Add(int64(n))
		return err
	}
	cursor := int64(0)
	for _, run := range a.runs {
		f.cdw.Add(1)
		f.cago.Add(1)
		n, err := f.df.PwriteAt(a.buf[cursor:cursor+run.Len], run.Off)
		f.cbw.Add(int64(n))
		if err != nil {
			return err
		}
		cursor += run.Len
	}
	return nil
}

// fetchArena reads one round's covering runs into the arena:
// vector-capable drivers in one call (PLFS resolves the index once and
// batches contiguous extents across runs), others a pread per run.
// Bytes past EOF are zero-filled either way, so delivery pads exactly
// like the one-shot path.
func (f *File) fetchArena(a *arena) error {
	if len(a.runs) == 0 {
		return nil
	}
	if vr, ok := f.df.(VectorReader); ok && len(a.runs) > 1 {
		f.cdr.Add(1)
		f.cago.Add(1)
		n, err := vr.PreadvAt(a.runs, a.buf)
		f.cbr.Add(int64(n))
		return err
	}
	cursor := int64(0)
	for _, run := range a.runs {
		f.cdr.Add(1)
		f.cago.Add(1)
		dst := a.buf[cursor : cursor+run.Len]
		n, err := f.df.PreadAt(dst, run.Off)
		if err != nil && !errors.Is(err, io.EOF) {
			return err
		}
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
		f.cbr.Add(int64(n))
		cursor += run.Len
	}
	return nil
}

// writeAllPipelined is the pipelined collective write. Phase 1 of round
// k (zero-copy piece exchange + arena staging) overlaps phase 2 of
// round k-1 (the flusher goroutine's backend I/O).
func (f *File) writeAllPipelined(segs []Segment, buf []byte) (int, error) {
	g := f.exchangePlan(segs)
	if g.hi <= g.lo {
		f.rank.AllreduceInt64(0, mpi.OpMax)
		return 0, nil
	}
	rp := routePool.Get().(*routePlan)
	defer rp.release()
	rp.route(segs, buf, &g, f.rank.Size())

	var fl *aggWorker
	if aggIndexOf(f.rank.Rank(), &g) >= 0 {
		fl = f.newAggWorker(f.flushArena, false)
	}
	for k := 0; k < g.rounds; k++ {
		recv := f.rank.Alltoall(rp.sendFor(k, &g))
		if fl != nil {
			a := fl.next()
			np, nb := a.stageWrite(recv, g.staging)
			f.cshp.Add(int64(np))
			f.cshb.Add(nb)
			fl.submit(a)
		}
	}
	var aggErr error
	if fl != nil {
		var overlap int64
		aggErr, overlap = fl.close()
		f.covl.Add(overlap)
	}
	if err := f.funnel(aggErr, nil, "write"); err != nil {
		return 0, err
	}
	n := int(segsBytes(segs))
	f.observeTune(int64(n))
	return n, nil
}

// readAllPipelined is the pipelined collective read. Requests carry the
// requester's destination window, so aggregators deliver bytes straight
// into peer buffers — the prefetcher goroutine reads round k while the
// main loop exchanges round k+1's requests and delivers round k-1.
func (f *File) readAllPipelined(segs []Segment, buf []byte) (int, error) {
	g := f.exchangePlan(segs)
	if g.hi <= g.lo {
		f.rank.AllreduceInt64(0, mpi.OpMax)
		return 0, nil
	}
	rp := routePool.Get().(*routePlan)
	defer rp.release()
	rp.route(segs, buf, &g, f.rank.Size())

	var pf *aggWorker
	if aggIndexOf(f.rank.Rank(), &g) >= 0 {
		pf = f.newAggWorker(f.fetchArena, true)
	}
	inFlight := 0
	for k := 0; k < g.rounds; k++ {
		recv := f.rank.Alltoall(rp.sendFor(k, &g))
		if pf == nil {
			continue
		}
		if inFlight == 2 {
			a := pf.ready()
			if a.ioErr == nil {
				a.deliver()
			}
			pf.recycle(a)
			inFlight--
		}
		a := pf.next()
		np, nb := a.stageReadRuns(recv, g.staging)
		f.cshp.Add(int64(np))
		f.cshb.Add(nb)
		pf.submit(a)
		inFlight++
	}
	var aggErr error
	if pf != nil {
		for inFlight > 0 {
			a := pf.ready()
			if a.ioErr == nil {
				a.deliver()
			}
			pf.recycle(a)
			inFlight--
		}
		var overlap int64
		aggErr, overlap = pf.close()
		f.covl.Add(overlap)
	}
	if err := f.funnel(aggErr, nil, "read"); err != nil {
		return 0, err
	}
	n := int(segsBytes(segs))
	f.observeTune(int64(n))
	return n, nil
}

// funnel runs the closing allreduce every rank must reach and turns the
// reduced flag into this rank's error.
func (f *File) funnel(aggErr, localErr error, op string) error {
	var flag int64
	if aggErr != nil || localErr != nil {
		flag = 1
	}
	if f.rank.AllreduceInt64(flag, mpi.OpMax) != 0 {
		switch {
		case aggErr != nil:
			return aggErr
		case localErr != nil:
			return localErr
		default:
			return fmt.Errorf("mpiio: collective %s failed on another rank", op)
		}
	}
	return nil
}
