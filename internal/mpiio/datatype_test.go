package mpiio

import (
	"math/rand"
	"testing"
)

func TestVector(t *testing.T) {
	segs, err := Vector(100, 3, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{100, 10}, {150, 10}, {200, 10}}
	if len(segs) != len(want) {
		t.Fatalf("segs = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segs[%d] = %v, want %v", i, segs[i], want[i])
		}
	}
	// blockLen == stride collapses to one contiguous segment.
	segs, err = Vector(0, 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != (Segment{0, 32}) {
		t.Fatalf("contiguous vector = %v", segs)
	}
	// Overlapping blocks are an error.
	if _, err := Vector(0, 2, 10, 5); err == nil {
		t.Fatal("overlapping vector accepted")
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of 8-byte elements; select rows 1..2, cols 2..4.
	segs, err := Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{
		{Off: (1*6 + 2) * 8, Len: 24},
		{Off: (2*6 + 2) * 8, Len: 24},
	}
	if len(segs) != 2 || segs[0] != want[0] || segs[1] != want[1] {
		t.Fatalf("segs = %v, want %v", segs, want)
	}
}

func TestSubarray3DCoversEveryElementOnce(t *testing.T) {
	dims := []int{5, 4, 6}
	sub := []int{2, 3, 2}
	starts := []int{1, 0, 3}
	segs, err := Subarray(dims, sub, starts, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int64]int{}
	for _, s := range segs {
		for off := s.Off; off < s.Off+s.Len; off++ {
			covered[off]++
		}
	}
	if len(covered) != 2*3*2 {
		t.Fatalf("covered %d elements, want %d", len(covered), 2*3*2)
	}
	for off, n := range covered {
		if n != 1 {
			t.Fatalf("element %d covered %d times", off, n)
		}
		// Recover (z,y,x) and check membership.
		z := off / int64(dims[1]*dims[2])
		y := (off / int64(dims[2])) % int64(dims[1])
		x := off % int64(dims[2])
		if z < 1 || z >= 3 || y < 0 || y >= 3 || x < 3 || x >= 5 {
			t.Fatalf("element (%d,%d,%d) outside the subarray", z, y, x)
		}
	}
}

func TestSubarrayFullArrayIsOneSegment(t *testing.T) {
	segs, err := Subarray([]int{3, 4, 5}, []int{3, 4, 5}, []int{0, 0, 0}, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != (Segment{1000, 3 * 4 * 5 * 8}) {
		t.Fatalf("full subarray = %v", segs)
	}
}

func TestSubarrayValidation(t *testing.T) {
	cases := []struct {
		dims, sub, starts []int
		elem              int
	}{
		{[]int{4}, []int{2, 2}, []int{0}, 8},    // rank mismatch
		{[]int{4}, []int{5}, []int{0}, 8},       // sub too big
		{[]int{4}, []int{2}, []int{3}, 8},       // start+sub out of range
		{[]int{4}, []int{2}, []int{-1}, 8},      // negative start
		{[]int{4}, []int{2}, []int{0}, 0},       // zero elem
		{[]int{0}, []int{0}, []int{0}, 8},       // empty dim
		{nil, nil, nil, 8},                      // empty rank
		{[]int{4, 4}, []int{0, 2}, []int{0}, 8}, // rank mismatch again
	}
	for i, c := range cases {
		if _, err := Subarray(c.dims, c.sub, c.starts, c.elem, 0); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCoalesce(t *testing.T) {
	in := []Segment{{0, 10}, {10, 5}, {20, 5}, {25, 5}, {40, 0}, {50, 1}}
	out := Coalesce(in)
	want := []Segment{{0, 15}, {20, 10}, {50, 1}}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestTile(t *testing.T) {
	base := []Segment{{0, 4}, {8, 4}}
	out := Tile(base, 16, 3)
	want := []Segment{{0, 4}, {8, 4}, {16, 4}, {24, 4}, {32, 4}, {40, 4}}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
	// Tiling a full-extent view coalesces into one big segment.
	out = Tile([]Segment{{0, 16}}, 16, 4)
	if len(out) != 1 || out[0] != (Segment{0, 64}) {
		t.Fatalf("contiguous tile = %v", out)
	}
}

func TestExtent(t *testing.T) {
	lo, hi := Extent([]Segment{{100, 10}, {50, 5}, {200, 1}})
	if lo != 50 || hi != 201 {
		t.Fatalf("extent = [%d,%d)", lo, hi)
	}
	if lo, hi := Extent(nil); lo != 0 || hi != 0 {
		t.Fatal("empty extent nonzero")
	}
}

// TestSubarrayAgainstNaiveEnumeration cross-checks the flattener against
// brute-force element enumeration on random shapes.
func TestSubarrayAgainstNaiveEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3)
		dims := make([]int, n)
		sub := make([]int, n)
		starts := make([]int, n)
		for d := 0; d < n; d++ {
			dims[d] = 1 + rng.Intn(6)
			sub[d] = 1 + rng.Intn(dims[d])
			starts[d] = rng.Intn(dims[d] - sub[d] + 1)
		}
		elem := 1 + rng.Intn(8)
		segs, err := Subarray(dims, sub, starts, elem, 0)
		if err != nil {
			t.Fatalf("trial %d: %v (dims=%v sub=%v starts=%v)", trial, err, dims, sub, starts)
		}

		// Naive: mark every selected element byte.
		want := map[int64]bool{}
		var walk func(d int, elemOff int64)
		walk = func(d int, elemOff int64) {
			if d == n {
				for b := 0; b < elem; b++ {
					want[elemOff*int64(elem)+int64(b)] = true
				}
				return
			}
			stride := int64(1)
			for k := d + 1; k < n; k++ {
				stride *= int64(dims[k])
			}
			for i := 0; i < sub[d]; i++ {
				walk(d+1, elemOff+int64(starts[d]+i)*stride)
			}
		}
		walk(0, 0)

		got := map[int64]bool{}
		for _, s := range segs {
			for off := s.Off; off < s.Off+s.Len; off++ {
				if got[off] {
					t.Fatalf("trial %d: byte %d duplicated", trial, off)
				}
				got[off] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: covered %d bytes, want %d (dims=%v sub=%v starts=%v)",
				trial, len(got), len(want), dims, sub, starts)
		}
		for off := range want {
			if !got[off] {
				t.Fatalf("trial %d: byte %d missing", trial, off)
			}
		}
	}
}
