package mpiio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/plfs/tune"
)

// Hints mirror the ROMIO info keys the paper leans on.
type Hints struct {
	// CollectiveBuffering enables two-phase I/O (romio_cb_write/read).
	// The paper runs every test "with collective buffering enabled and in
	// its default configuration".
	CollectiveBuffering bool
	// CBBufferSize is the aggregator staging buffer (cb_buffer_size,
	// ROMIO default 16 MiB). Aggregator writes are chunked at this size.
	CBBufferSize int
	// DataSieving enables read-modify-write for independent strided
	// access (romio_ds_write).
	DataSieving bool
	// SieveBufferSize is the sieving block (ind_rd_buffer_size, 4 MiB
	// default).
	SieveBufferSize int
	// CBRounds pins the pipelined collective path's round count per
	// aggregator domain. 0 (the default) derives the count from
	// CBBufferSize: one round per staging-buffer's worth of domain.
	CBRounds int
	// CBAggregators is the number of aggregators per compute node
	// (cb_nodes-style). 0 or 1 keeps the paper's default of one
	// aggregator per distinct node; higher values fan aggregator I/O
	// out across more ranks (capped at the node's PPN).
	CBAggregators int
	// DisablePipeline falls back to the one-shot two-phase path
	// (shuffle everything, then flush) instead of the pipelined
	// overlapped rounds. The one-shot path is kept as a differential
	// baseline and escape hatch.
	DisablePipeline bool
	// AutoTune hill-climbs CBBufferSize/CBRounds/CBAggregators on the
	// throughput ladder (rank 0 drives; committed values are broadcast
	// with each collective).
	AutoTune bool
	// Collector attaches the MPI-IO layer to a telemetry plane: every
	// collective and independent call reports count/bytes/latency to
	// layer "mpiio" (plus collective_calls/independent_calls counters).
	// Nil leaves the layer unobserved.
	Collector iostats.Collector
}

// DefaultHints match ROMIO defaults plus the paper's configuration: one
// aggregator per distinct compute node.
func DefaultHints() Hints {
	return Hints{
		CollectiveBuffering: true,
		CBBufferSize:        16 << 20,
		DataSieving:         true,
		SieveBufferSize:     4 << 20,
	}
}

// File is an open MPI file handle, one per rank (like MPI_File). The
// handle embeds the rank because every collective entry point must be
// called by all ranks of the communicator.
type File struct {
	rank  *mpi.Rank
	df    DriverFile
	hints Hints
	path  string

	// ls is the layer every handle of the communicator reports to —
	// Hints.Collector's "mpiio" layer, or a standalone layer bcast from
	// rank 0 when no plane is attached. The named counters (grabbed
	// once at Open) are what the retired Stats struct used to tally:
	// collective/independent calls, driver-level reads/writes and their
	// bytes, and data-sieving read-modify-write cycles.
	ls   *iostats.LayerStats
	ccol *iostats.Counter // collective_calls
	cind *iostats.Counter // independent_calls
	cdw  *iostats.Counter // driver_writes
	cdr  *iostats.Counter // driver_reads
	cbw  *iostats.Counter // bytes_written
	cbr  *iostats.Counter // bytes_read
	csr  *iostats.Counter // sieve_rmws
	cshb *iostats.Counter // shuffle_bytes
	cshp *iostats.Counter // shuffle_pieces
	cago *iostats.Counter // agg_flush_ops
	covl *iostats.Counter // round_overlap_ns

	// srl serializes sieved read-modify-write cycles to overlapping
	// ranges of this handle (disjoint spans proceed concurrently).
	srl rangeLock

	// Runtime knob overrides (SetCB*, or the autotune controller on
	// rank 0). Zero means "use the hint"; only rank 0's committed
	// values matter — they are broadcast with every collective.
	knobStaging atomic.Int64
	knobRounds  atomic.Int64
	knobAggs    atomic.Int64
	tuneBytes   atomic.Int64
	tuner       *tune.Controller
}

// Layer is the handle's telemetry layer, shared by the whole
// communicator — the counters above plus per-op latency records.
func (f *File) Layer() *iostats.LayerStats { return f.ls }

// Segment is one contiguous piece of a file access (a flattened datatype).
type Segment struct {
	Off int64
	Len int64
}

// Open opens path collectively on all ranks of r with the given driver —
// MPI_File_open.
func Open(r *mpi.Rank, driver Driver, path string, amode int, hints Hints) (*File, error) {
	if hints.CBBufferSize <= 0 {
		hints.CBBufferSize = 16 << 20
	}
	if hints.SieveBufferSize <= 0 {
		hints.SieveBufferSize = 4 << 20
	}
	// Rank 0 creates first (avoiding O_EXCL races), then everyone opens.
	var createErr error
	if r.Rank() == 0 {
		df, err := driver.Open(path, amode, 0)
		if err != nil {
			createErr = err
		} else {
			df.Close()
		}
	}
	if errv := r.Bcast(0, createErr); errv != nil {
		return nil, errv.(error)
	}
	amode &^= ModeExcl // rank 0 already arbitrated exclusive creation
	df, err := driver.Open(path, amode, r.Rank())
	if err != nil {
		return nil, err
	}
	f := &File{rank: r, df: df, hints: hints, path: path}
	if hints.Collector != nil {
		// Every rank asks for the same layer name, so the whole
		// communicator aggregates into one view of the plane.
		f.ls = hints.Collector.Layer("mpiio")
	} else {
		// No plane attached: the communicator still shares one
		// standalone layer (rank 0's, via bcast), so per-handle tallies
		// aggregate across ranks.
		ls := iostats.NewLayerStats("mpiio")
		if s := r.Bcast(0, ls); s != nil {
			ls = s.(*iostats.LayerStats)
		}
		f.ls = ls
	}
	f.ccol = f.ls.Counter("collective_calls")
	f.cind = f.ls.Counter("independent_calls")
	f.cdw = f.ls.Counter("driver_writes")
	f.cdr = f.ls.Counter("driver_reads")
	f.cbw = f.ls.Counter("bytes_written")
	f.cbr = f.ls.Counter("bytes_read")
	f.csr = f.ls.Counter("sieve_rmws")
	f.cshb = f.ls.Counter("shuffle_bytes")
	f.cshp = f.ls.Counter("shuffle_pieces")
	f.cago = f.ls.Counter("agg_flush_ops")
	f.covl = f.ls.Counter("round_overlap_ns")
	f.initTuner()
	return f, nil
}

// Close closes the handle collectively — MPI_File_close.
func (f *File) Close() error {
	err := f.df.Close()
	f.rank.Barrier()
	return err
}

// Sync flushes this rank's data — MPI_File_sync (collective).
func (f *File) Sync() error {
	start := f.ls.Start()
	err := f.df.Sync()
	f.ls.End(iostats.Sync, 0, start, err)
	f.rank.Barrier()
	return err
}

// SetSize truncates collectively — MPI_File_set_size.
func (f *File) SetSize(size int64) error {
	var err error
	if f.rank.Rank() == 0 {
		err = f.df.Truncate(size)
	}
	if v := f.rank.Bcast(0, err); v != nil {
		return v.(error)
	}
	return nil
}

// Size returns the current file size — MPI_File_get_size.
func (f *File) Size() (int64, error) { return f.df.Size() }

// Rank returns the mpi rank owning this handle.
func (f *File) Rank() *mpi.Rank { return f.rank }

// --- independent operations ----------------------------------------------

// WriteAt writes one contiguous block independently — MPI_File_write_at.
func (f *File) WriteAt(buf []byte, off int64) (int, error) {
	f.cdw.Add(1)
	f.cbw.Add(int64(len(buf)))
	f.cind.Add(1)
	start := f.ls.Start()
	n, err := f.df.PwriteAt(buf, off)
	f.ls.End(iostats.Write, int64(n), start, err)
	return n, err
}

// ReadAt reads one contiguous block independently — MPI_File_read_at.
func (f *File) ReadAt(buf []byte, off int64) (int, error) {
	f.cdr.Add(1)
	f.cind.Add(1)
	start := f.ls.Start()
	n, err := f.df.PreadAt(buf, off)
	f.ls.End(iostats.Read, int64(n), start, err)
	f.cbr.Add(int64(n))
	return n, err
}

// WriteStrided writes a flattened strided access independently, applying
// data sieving when the holes are small enough that one read-modify-write
// beats many small writes (ROMIO's romio_ds_write heuristic).
func (f *File) WriteStrided(segs []Segment, buf []byte) (int, error) {
	f.cind.Add(1)
	start := f.ls.Start()
	n, err := f.writeStrided(segs, buf)
	f.ls.End(iostats.Write, int64(n), start, err)
	return n, err
}

func (f *File) writeStrided(segs []Segment, buf []byte) (int, error) {
	if len(segs) == 0 {
		return 0, nil
	}
	if err := validateSegs(segs, buf); err != nil {
		return 0, err
	}
	total := segsBytes(segs)
	lo := segs[0].Off
	hi := segs[len(segs)-1].Off + segs[len(segs)-1].Len
	span := hi - lo

	useSieve := f.hints.DataSieving && len(segs) > 1 &&
		span <= int64(f.hints.SieveBufferSize) && span < 2*total

	if !useSieve {
		// Vector-capable drivers (PLFS) take the whole flattened access
		// in one call instead of a pwrite per segment.
		if vw, ok := f.df.(VectorWriter); ok && len(segs) > 1 {
			f.cdw.Add(1)
			n, err := vw.PwritevAt(segs, buf[:total])
			f.cbw.Add(int64(n))
			return n, err
		}
		written := 0
		cursor := 0
		for _, s := range segs {
			f.cdw.Add(1)
			n, err := f.df.PwriteAt(buf[cursor:cursor+int(s.Len)], s.Off)
			written += n
			if err != nil {
				return written, err
			}
			cursor += int(s.Len)
		}
		f.cbw.Add(int64(written))
		return written, nil
	}

	// Data sieving: read [lo,hi), overlay the segments, write back once.
	// The range lock serializes concurrent RMW cycles over overlapping
	// spans — without it, two interleaved sieved writes would each read
	// the block, patch their own segments, and the later write-back
	// would silently undo the earlier one.
	f.srl.lock(lo, hi)
	defer f.srl.unlock(lo, hi)
	f.csr.Add(1)
	block := make([]byte, span)
	f.cdr.Add(1)
	if _, err := f.df.PreadAt(block, lo); err != nil && !errors.Is(err, io.EOF) {
		return 0, err
	}
	// A short pre-read (the sieve span extends past EOF) is not an
	// error: the tail beyond n is a hole the write is about to define,
	// and block's zero fill is exactly its contents — the same partial-
	// fill handling the read path applies.
	cursor := 0
	for _, s := range segs {
		copy(block[s.Off-lo:s.Off-lo+s.Len], buf[cursor:cursor+int(s.Len)])
		cursor += int(s.Len)
	}
	f.cdw.Add(1)
	if _, err := f.df.PwriteAt(block, lo); err != nil {
		return 0, err
	}
	f.cbw.Add(total)
	return int(total), nil
}

// ReadStrided reads a flattened strided access independently with data
// sieving: one big read, then scatter.
func (f *File) ReadStrided(segs []Segment, buf []byte) (int, error) {
	f.cind.Add(1)
	start := f.ls.Start()
	n, err := f.readStrided(segs, buf)
	f.ls.End(iostats.Read, int64(n), start, err)
	return n, err
}

func (f *File) readStrided(segs []Segment, buf []byte) (int, error) {
	if len(segs) == 0 {
		return 0, nil
	}
	if err := validateSegs(segs, buf); err != nil {
		return 0, err
	}
	total := segsBytes(segs)
	lo := segs[0].Off
	hi := segs[len(segs)-1].Off + segs[len(segs)-1].Len
	span := hi - lo

	// Same density cutoff as the write path: sieving a span more than
	// twice the useful bytes reads mostly holes, so sparse strided
	// access falls through to per-segment reads.
	if f.hints.DataSieving && len(segs) > 1 &&
		span <= int64(f.hints.SieveBufferSize) && span < 2*total {
		block := make([]byte, span)
		f.cdr.Add(1)
		n, err := f.df.PreadAt(block, lo)
		if err != nil && !errors.Is(err, io.EOF) {
			return 0, err
		}
		got := 0
		cursor := 0
		for _, s := range segs {
			end := s.Off - lo + s.Len
			if end > int64(n) {
				end = int64(n)
			}
			if s.Off-lo < int64(n) {
				got += copy(buf[cursor:cursor+int(s.Len)], block[s.Off-lo:end])
			}
			cursor += int(s.Len)
		}
		f.cbr.Add(int64(got))
		return got, nil
	}

	got := 0
	cursor := 0
	for _, s := range segs {
		f.cdr.Add(1)
		n, err := f.df.PreadAt(buf[cursor:cursor+int(s.Len)], s.Off)
		got += n
		if err != nil && !errors.Is(err, io.EOF) {
			return got, err
		}
		cursor += int(s.Len)
	}
	f.cbr.Add(int64(got))
	return got, nil
}

func validateSegs(segs []Segment, buf []byte) error {
	var total int64
	last := int64(-1)
	for _, s := range segs {
		if s.Len < 0 || s.Off < 0 {
			return fmt.Errorf("mpiio: invalid segment %+v", s)
		}
		if s.Off < last {
			return fmt.Errorf("mpiio: segments not sorted at offset %d", s.Off)
		}
		last = s.Off + s.Len
		total += s.Len
	}
	if total > int64(len(buf)) {
		return fmt.Errorf("mpiio: segments cover %d bytes, buffer has %d", total, len(buf))
	}
	return nil
}

func segsBytes(segs []Segment) int64 {
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	return total
}

// --- collective operations (two-phase I/O) -------------------------------

// piece is the wire format unit exchanged between ranks and aggregators:
// 16-byte header (off,len) + payload (writes) or empty payload (read
// requests).
func appendPiece(dst []byte, off int64, payload []byte) []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(off))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func appendReq(dst []byte, off, length int64) []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(off))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(length))
	return append(dst, hdr[:]...)
}

type piece struct {
	off  int64
	data []byte // nil for requests
}

func parsePieces(b []byte, withPayload bool) ([]piece, error) {
	var out []piece
	for len(b) > 0 {
		if len(b) < 16 {
			return nil, fmt.Errorf("mpiio: torn piece header")
		}
		off := int64(binary.LittleEndian.Uint64(b[0:]))
		n := int64(binary.LittleEndian.Uint64(b[8:]))
		b = b[16:]
		p := piece{off: off}
		if withPayload {
			if int64(len(b)) < n {
				return nil, fmt.Errorf("mpiio: torn piece payload")
			}
			p.data = b[:n:n]
			b = b[n:]
		} else {
			p.data = make([]byte, n) // request: length carrier only
		}
		out = append(out, p)
	}
	return out, nil
}

// aggregators returns the rank ids acting as collective-buffering
// aggregators: the first rank on each node (the paper's default of one
// aggregator per distinct compute node).
func aggregators(r *mpi.Rank) []int {
	aggs := make([]int, 0, r.Nodes())
	for n := 0; n < r.Nodes(); n++ {
		aggs = append(aggs, n*r.PPN())
	}
	return aggs
}

// domainOf maps a file offset to an aggregator index for domain [lo,hi).
func domainOf(off, lo, domain int64) int {
	if domain <= 0 {
		return 0
	}
	return int((off - lo) / domain)
}

// exchangeExtent allgathers every rank's access extent and returns the
// global [lo,hi) plus per-aggregator domain size.
func (f *File) exchangeExtent(segs []Segment) (lo, hi, domain int64, aggs []int) {
	type extent struct{ lo, hi int64 }
	mine := extent{lo: 1 << 62, hi: 0}
	for _, s := range segs {
		if s.Off < mine.lo {
			mine.lo = s.Off
		}
		if end := s.Off + s.Len; end > mine.hi {
			mine.hi = end
		}
	}
	all := f.rank.Allgather(mine)
	lo, hi = int64(1<<62), int64(0)
	for _, v := range all {
		e := v.(extent)
		if e.lo < lo {
			lo = e.lo
		}
		if e.hi > hi {
			hi = e.hi
		}
	}
	aggs = aggregators(f.rank)
	if hi <= lo {
		return 0, 0, 0, aggs
	}
	domain = (hi - lo + int64(len(aggs)) - 1) / int64(len(aggs))
	return lo, hi, domain, aggs
}

// WriteAll performs a collective strided write — MPI_File_write_all with
// a flattened view. All ranks must call it; segs may be empty on some.
func (f *File) WriteAll(segs []Segment, buf []byte) (int, error) {
	f.ccol.Add(1)
	start := f.ls.Start()
	n, err := f.writeAll(segs, buf)
	f.ls.End(iostats.Write, int64(n), start, err)
	return n, err
}

func (f *File) writeAll(segs []Segment, buf []byte) (int, error) {
	if err := validateSegs(segs, buf); err != nil {
		return 0, err
	}
	if !f.hints.CollectiveBuffering {
		n, err := f.writeStrided(segs, buf)
		f.rank.Barrier()
		return n, err
	}
	if f.hints.DisablePipeline {
		return f.writeAllOneShot(segs, buf)
	}
	return f.writeAllPipelined(segs, buf)
}

// writeAllOneShot is the original one-shot two-phase write: shuffle the
// whole access, then flush. Kept as the DisablePipeline baseline the
// differential tests pin the pipelined path against.
func (f *File) writeAllOneShot(segs []Segment, buf []byte) (int, error) {
	lo, _, domain, aggs := f.exchangeExtent(segs)

	// Phase 1: route every segment piece to its domain's aggregator.
	send := make([][]byte, f.rank.Size())
	cursor := 0
	for _, s := range segs {
		segOff, segLen := s.Off, s.Len
		for segLen > 0 {
			d := domainOf(segOff, lo, domain)
			if d >= len(aggs) {
				d = len(aggs) - 1
			}
			dEnd := lo + int64(d+1)*domain
			n := segLen
			if segOff+n > dEnd {
				n = dEnd - segOff
			}
			agg := aggs[d]
			send[agg] = appendPiece(send[agg], segOff, buf[cursor:cursor+int(n)])
			segOff += n
			segLen -= n
			cursor += int(n)
		}
	}
	recv := f.rank.Alltoallv(send)

	// Phase 2: aggregators coalesce and issue large writes. Every rank
	// must reach the closing allreduce regardless of local errors, so the
	// aggregator work is funnelled through an error value, never an early
	// return (an early return would deadlock the communicator).
	var aggErr error
	if f.rank.NodeLeader() {
		var pieces []piece
		for _, b := range recv {
			ps, err := parsePieces(b, true)
			if err != nil {
				aggErr = err
				break
			}
			pieces = append(pieces, ps...)
		}
		if aggErr == nil {
			_, aggErr = f.flushPieces(pieces)
		}
	}
	var flag int64
	if aggErr != nil {
		flag = 1
	}
	if f.rank.AllreduceInt64(flag, mpi.OpMax) != 0 {
		if aggErr != nil {
			return 0, aggErr
		}
		return 0, fmt.Errorf("mpiio: collective write failed on an aggregator")
	}
	return int(segsBytes(segs)), nil
}

// flushPieces sorts, coalesces, and writes pieces in cb-buffer-sized runs.
func (f *File) flushPieces(pieces []piece) (int64, error) {
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].off < pieces[j].off })
	var total int64
	i := 0
	for i < len(pieces) {
		// Coalesce a contiguous run.
		runOff := pieces[i].off
		run := append([]byte(nil), pieces[i].data...)
		j := i + 1
		for j < len(pieces) && pieces[j].off == runOff+int64(len(run)) && len(run)+len(pieces[j].data) <= f.hints.CBBufferSize {
			run = append(run, pieces[j].data...)
			j++
		}
		f.cdw.Add(1)
		n, err := f.df.PwriteAt(run, runOff)
		total += int64(n)
		f.cbw.Add(int64(n))
		if err != nil {
			return total, err
		}
		i = j
	}
	return total, nil
}

// WriteAtAll is the contiguous special case — MPI_File_write_at_all.
func (f *File) WriteAtAll(buf []byte, off int64) (int, error) {
	var segs []Segment
	if len(buf) > 0 {
		segs = []Segment{{Off: off, Len: int64(len(buf))}}
	}
	return f.WriteAll(segs, buf)
}

// ReadAll performs a collective strided read — MPI_File_read_all.
// Aggregators read coalesced runs of their file domain and scatter the
// requested pieces back.
func (f *File) ReadAll(segs []Segment, buf []byte) (int, error) {
	f.ccol.Add(1)
	start := f.ls.Start()
	n, err := f.readAll(segs, buf)
	f.ls.End(iostats.Read, int64(n), start, err)
	return n, err
}

func (f *File) readAll(segs []Segment, buf []byte) (int, error) {
	if err := validateSegs(segs, buf); err != nil {
		return 0, err
	}
	if !f.hints.CollectiveBuffering {
		n, err := f.readStrided(segs, buf)
		f.rank.Barrier()
		return n, err
	}
	if f.hints.DisablePipeline {
		return f.readAllOneShot(segs, buf)
	}
	return f.readAllPipelined(segs, buf)
}

// readAllOneShot is the original one-shot two-phase read (request
// shuffle, aggregator reads, reply shuffle, pieceMap reassembly) — the
// DisablePipeline differential baseline.
func (f *File) readAllOneShot(segs []Segment, buf []byte) (int, error) {
	lo, _, domain, aggs := f.exchangeExtent(segs)

	// Phase 1: send read requests to domain aggregators.
	reqs := make([][]byte, f.rank.Size())
	for _, s := range segs {
		segOff, segLen := s.Off, s.Len
		for segLen > 0 {
			d := domainOf(segOff, lo, domain)
			if d >= len(aggs) {
				d = len(aggs) - 1
			}
			dEnd := lo + int64(d+1)*domain
			n := segLen
			if segOff+n > dEnd {
				n = dEnd - segOff
			}
			agg := aggs[d]
			reqs[agg] = appendReq(reqs[agg], segOff, n)
			segOff += n
			segLen -= n
		}
	}
	gotReqs := f.rank.Alltoallv(reqs)

	// Phase 2: aggregators read their domain in coalesced runs and answer
	// each requester. As in WriteAll, every rank must reach both the
	// second Alltoallv and the closing allreduce, so errors are carried,
	// not returned early.
	replies := make([][]byte, f.rank.Size())
	var aggErr error
	if f.rank.NodeLeader() {
		aggErr = f.answerReadRequests(gotReqs, replies)
	}
	gotData := f.rank.Alltoallv(replies)

	// Reassemble into buf following the original segment order.
	var localErr error
	pieceMap := map[int64][]byte{}
	for _, b := range gotData {
		ps, err := parsePieces(b, true)
		if err != nil {
			localErr = err
			break
		}
		for _, p := range ps {
			pieceMap[p.off] = p.data
		}
	}
	got := 0
	cursor := 0
	if localErr == nil {
	assemble:
		for _, s := range segs {
			segOff, segLen := s.Off, s.Len
			for segLen > 0 {
				d := domainOf(segOff, lo, domain)
				if d >= len(aggs) {
					d = len(aggs) - 1
				}
				dEnd := lo + int64(d+1)*domain
				n := segLen
				if segOff+n > dEnd {
					n = dEnd - segOff
				}
				data, ok := pieceMap[segOff]
				if !ok || int64(len(data)) != n {
					localErr = fmt.Errorf("mpiio: collective read lost piece at %d (+%d)", segOff, n)
					break assemble
				}
				got += copy(buf[cursor:cursor+int(n)], data)
				segOff += n
				segLen -= n
				cursor += int(n)
			}
		}
	}
	var flag int64
	if aggErr != nil || localErr != nil {
		flag = 1
	}
	if f.rank.AllreduceInt64(flag, mpi.OpMax) != 0 {
		switch {
		case aggErr != nil:
			return got, aggErr
		case localErr != nil:
			return got, localErr
		default:
			return got, fmt.Errorf("mpiio: collective read failed on another rank")
		}
	}
	return got, nil
}

// answerReadRequests performs the aggregator half of ReadAll: coalesce the
// requested ranges, read covering runs, slice out each requester's pieces.
func (f *File) answerReadRequests(gotReqs [][]byte, replies [][]byte) error {
	type request struct {
		src      int
		off, len int64
	}
	var all []request
	for src, b := range gotReqs {
		ps, err := parsePieces(b, false)
		if err != nil {
			return err
		}
		for _, p := range ps {
			all = append(all, request{src: src, off: p.off, len: int64(len(p.data))})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].off < all[j].off })
	type run struct {
		off  int64
		data []byte
	}
	var runs []run
	i := 0
	for i < len(all) {
		runOff := all[i].off
		runEnd := all[i].off + all[i].len
		j := i + 1
		for j < len(all) && all[j].off <= runEnd && int(runEnd-runOff) < f.hints.CBBufferSize {
			if e := all[j].off + all[j].len; e > runEnd {
				runEnd = e
			}
			j++
		}
		data := make([]byte, runEnd-runOff)
		f.cdr.Add(1)
		n, err := f.df.PreadAt(data, runOff)
		if err != nil {
			return err
		}
		f.cbr.Add(int64(n))
		runs = append(runs, run{off: runOff, data: data[:n]})
		i = j
	}
	locate := func(off, length int64) []byte {
		for _, rn := range runs {
			if off >= rn.off && off+length <= rn.off+int64(len(rn.data)) {
				return rn.data[off-rn.off : off-rn.off+length]
			}
			// Short read at EOF: return what exists.
			if off >= rn.off && off < rn.off+int64(len(rn.data)) {
				return rn.data[off-rn.off:]
			}
		}
		return nil
	}
	for _, rq := range all {
		data := locate(rq.off, rq.len)
		padded := make([]byte, rq.len)
		copy(padded, data)
		replies[rq.src] = appendPiece(replies[rq.src], rq.off, padded)
	}
	return nil
}

// ReadAtAll is the contiguous special case — MPI_File_read_at_all.
func (f *File) ReadAtAll(buf []byte, off int64) (int, error) {
	var segs []Segment
	if len(buf) > 0 {
		segs = []Segment{{Off: off, Len: int64(len(buf))}}
	}
	return f.ReadAll(segs, buf)
}
