// Package mpiio reimplements the ROMIO MPI-IO layer the paper's methods
// plug into: an ADIO driver interface with a POSIX ("ufs") driver and a
// PLFS driver (the patched-ROMIO deployment), two-phase collective
// buffering with one aggregator per compute node (the paper's default),
// and data sieving for independent strided access.
//
// The four access methods of the paper differ only in how this stack is
// assembled:
//
//	MPI-IO  : ufs driver over the plain POSIX dispatch
//	FUSE    : ufs driver over a fuse.FS mount
//	ROMIO   : plfs driver (direct PLFS calls, one Plfs_fd per rank)
//	LDPLFS  : ufs driver over a dispatch with internal/core preloaded
package mpiio

import (
	"fmt"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// Access-mode flags, mirroring MPI_MODE_*.
const (
	ModeRdonly = 1 << iota
	ModeWronly
	ModeRdwr
	ModeCreate
	ModeExcl
	ModeAppend
)

// AmodeToFlags translates MPI_MODE_* to POSIX open flags — the same
// mapping the in-tree drivers use, exported so out-of-package drivers
// (the harness's remote-gateway driver) agree with them.
func AmodeToFlags(amode int) (int, error) { return amodeToPosix(amode) }

// amodeToPosix translates MPI_MODE_* to POSIX open flags.
func amodeToPosix(amode int) (int, error) {
	flags := 0
	switch {
	case amode&ModeRdonly != 0:
		flags = posix.O_RDONLY
	case amode&ModeWronly != 0:
		flags = posix.O_WRONLY
	case amode&ModeRdwr != 0:
		flags = posix.O_RDWR
	default:
		return 0, fmt.Errorf("mpiio: amode %#x lacks an access mode", amode)
	}
	if amode&ModeCreate != 0 {
		flags |= posix.O_CREAT
	}
	if amode&ModeExcl != 0 {
		flags |= posix.O_EXCL
	}
	if amode&ModeAppend != 0 {
		flags |= posix.O_APPEND
	}
	return flags, nil
}

// Driver is the ADIO file-system driver interface.
type Driver interface {
	// Name identifies the driver ("ufs", "plfs") in hints and traces.
	Name() string
	// Open opens path for the calling rank.
	Open(path string, amode int, rank int) (DriverFile, error)
	// Delete removes the file (MPI_File_delete).
	Delete(path string) error
}

// DriverFile is an open per-rank file within a driver.
type DriverFile interface {
	PreadAt(p []byte, off int64) (int, error)
	PwriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// VectorWriter is an optional DriverFile extension: drivers that can
// commit a whole flattened datatype in one call implement it, and
// WriteStrided hands them the segment list instead of looping pwrites.
// The PLFS driver maps it onto plfs.File.WriteV, whose write engine
// fans the segments out in parallel within one index transaction.
type VectorWriter interface {
	// PwritevAt writes buf scattered across segs (ascending, disjoint,
	// covering exactly len(buf) bytes), returning bytes written.
	PwritevAt(segs []Segment, buf []byte) (int, error)
}

// VectorReader is the read-side twin: drivers that can gather a whole
// flattened datatype in one call implement it, and the collective
// aggregators hand them the coalesced run list instead of looping
// preads. The PLFS driver maps it onto plfs.File.ReadV, which resolves
// the index once and batches physically-contiguous extents across runs.
type VectorReader interface {
	// PreadvAt fills buf from segs (ascending, disjoint, covering
	// exactly len(buf) bytes), zero-filling past EOF, and returns the
	// bytes that lie below EOF.
	PreadvAt(segs []Segment, buf []byte) (int, error)
}

// --- ufs: the POSIX ADIO driver -----------------------------------------

// UFS routes through a posix.FS — typically a *posix.Dispatch, so that a
// preloaded LDPLFS shim (or a FUSE mount) transparently captures the
// traffic, exactly as ad_ufs does in ROMIO.
type UFS struct {
	fs posix.FS
}

// NewUFS returns the POSIX driver over fs.
func NewUFS(fs posix.FS) *UFS { return &UFS{fs: fs} }

// Name implements Driver.
func (u *UFS) Name() string { return "ufs" }

// Open implements Driver.
func (u *UFS) Open(path string, amode int, rank int) (DriverFile, error) {
	flags, err := amodeToPosix(amode)
	if err != nil {
		return nil, err
	}
	fd, err := u.fs.Open(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &ufsFile{fs: u.fs, fd: fd}, nil
}

// Delete implements Driver.
func (u *UFS) Delete(path string) error { return u.fs.Unlink(path) }

type ufsFile struct {
	fs posix.FS
	fd int
}

func (f *ufsFile) PreadAt(p []byte, off int64) (int, error)  { return f.fs.Pread(f.fd, p, off) }
func (f *ufsFile) PwriteAt(p []byte, off int64) (int, error) { return f.fs.Pwrite(f.fd, p, off) }
func (f *ufsFile) Truncate(size int64) error                 { return f.fs.Ftruncate(f.fd, size) }
func (f *ufsFile) Sync() error                               { return f.fs.Fsync(f.fd) }
func (f *ufsFile) Close() error                              { return f.fs.Close(f.fd) }
func (f *ufsFile) Size() (int64, error) {
	st, err := f.fs.Fstat(f.fd)
	if err != nil {
		return 0, err
	}
	return st.Size, nil
}

// --- plfs: the patched-ROMIO PLFS driver ---------------------------------

// PLFSDriver calls the PLFS library directly (ad_plfs): every rank gets
// its own Plfs_fd with pid = rank, so droppings are per rank.
type PLFSDriver struct {
	p *plfs.FS
	// translate maps an application path to the backend container path;
	// identity when nil (paths already name backend locations).
	translate func(string) (string, bool)
}

// NewPLFSDriver returns the direct-PLFS driver. translate may map mount
// paths to backend paths (like plfsrc does for ad_plfs); nil means paths
// are used as given.
func NewPLFSDriver(p *plfs.FS, translate func(string) (string, bool)) *PLFSDriver {
	return &PLFSDriver{p: p, translate: translate}
}

// Name implements Driver.
func (d *PLFSDriver) Name() string { return "plfs" }

func (d *PLFSDriver) path(path string) (string, error) {
	if d.translate == nil {
		return path, nil
	}
	bpath, ok := d.translate(path)
	if !ok {
		return "", fmt.Errorf("mpiio: %s is not under a plfs mount", path)
	}
	return bpath, nil
}

// Open implements Driver.
func (d *PLFSDriver) Open(path string, amode int, rank int) (DriverFile, error) {
	flags, err := amodeToPosix(amode)
	if err != nil {
		return nil, err
	}
	bpath, err := d.path(path)
	if err != nil {
		return nil, err
	}
	pf, err := d.p.Open(bpath, flags, uint32(rank), 0o644)
	if err != nil {
		return nil, err
	}
	return &plfsFile{f: pf, pid: uint32(rank)}, nil
}

// Delete implements Driver.
func (d *PLFSDriver) Delete(path string) error {
	bpath, err := d.path(path)
	if err != nil {
		return err
	}
	return d.p.Unlink(bpath)
}

type plfsFile struct {
	f   *plfs.File
	pid uint32
}

func (f *plfsFile) PreadAt(p []byte, off int64) (int, error)  { return f.f.Read(p, off) }
func (f *plfsFile) PwriteAt(p []byte, off int64) (int, error) { return f.f.Write(p, off, f.pid) }

// PwritevAt implements VectorWriter over the PLFS write engine: the
// whole strided access becomes one WriteV — one writer-lock acquisition,
// segment pwrites fanned out in parallel, index records batched.
func (f *plfsFile) PwritevAt(segs []Segment, buf []byte) (int, error) {
	vec := make([]plfs.WriteSeg, len(segs))
	cursor := int64(0)
	for i, s := range segs {
		vec[i] = plfs.WriteSeg{Off: s.Off, Data: buf[cursor : cursor+s.Len]}
		cursor += s.Len
	}
	n, err := f.f.WriteV(vec, f.pid)
	return int(n), err
}

// PreadvAt implements VectorReader over the PLFS read engine: the whole
// run list becomes one ReadV — the index resolved once, every run's
// extents joined into one batched plan.
func (f *plfsFile) PreadvAt(segs []Segment, buf []byte) (int, error) {
	vec := make([]plfs.ReadSeg, len(segs))
	cursor := int64(0)
	for i, s := range segs {
		vec[i] = plfs.ReadSeg{Off: s.Off, Buf: buf[cursor : cursor+s.Len]}
		cursor += s.Len
	}
	n, err := f.f.ReadV(vec)
	return int(n), err
}
func (f *plfsFile) Truncate(size int64) error { return f.f.Trunc(size) }
func (f *plfsFile) Sync() error               { return f.f.Sync(f.pid) }
func (f *plfsFile) Close() error              { return f.f.Close(f.pid) }
func (f *plfsFile) Size() (int64, error)      { return f.f.Size() }
