//go:build !race

package mpiio

// raceEnabled reports whether the race detector is active. See
// race_on.go.
const raceEnabled = false
