//go:build race

package mpiio

// raceEnabled reports whether the race detector is active. The alloc
// floors only hold on plain builds; see race_off.go.
const raceEnabled = true
