package mpiio

import "sync"

// rangeLock serializes access to overlapping byte ranges of one file
// handle. Data sieving's read-modify-write cycle must hold the sieve
// span exclusively: two concurrent sieved writes over interleaved
// segments would otherwise each read the block, patch their own
// segments, and write back — the later write-back silently undoing the
// earlier one. Disjoint spans proceed concurrently.
type rangeLock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active [][2]int64 // held [lo, hi) spans
}

// lock blocks until no held span overlaps [lo, hi), then records the
// span as held.
func (rl *rangeLock) lock(lo, hi int64) {
	rl.mu.Lock()
	if rl.cond == nil {
		rl.cond = sync.NewCond(&rl.mu)
	}
	for rl.overlaps(lo, hi) {
		rl.cond.Wait()
	}
	rl.active = append(rl.active, [2]int64{lo, hi})
	rl.mu.Unlock()
}

// unlock releases the span and wakes waiters.
func (rl *rangeLock) unlock(lo, hi int64) {
	rl.mu.Lock()
	for i, s := range rl.active {
		if s[0] == lo && s[1] == hi {
			last := len(rl.active) - 1
			rl.active[i] = rl.active[last]
			rl.active = rl.active[:last]
			break
		}
	}
	rl.cond.Broadcast()
	rl.mu.Unlock()
}

func (rl *rangeLock) overlaps(lo, hi int64) bool {
	for _, s := range rl.active {
		if lo < s[1] && s[0] < hi {
			return true
		}
	}
	return false
}
