package mpiio

import (
	"testing"

	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/posix"
)

// TestCollectorObservesCollectivePath checks the MPI-IO layer reports
// its collective and independent calls to the telemetry plane when a
// collector rides in on the hints.
func TestCollectorObservesCollectivePath(t *testing.T) {
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/scratch", 0o755); err != nil {
		t.Fatal(err)
	}
	plane := iostats.NewPlane()
	hints := DefaultHints()
	hints.Collector = plane

	const ranks, block = 4, 4096
	err := mpi.Run(ranks, 2, func(r *mpi.Rank) {
		fh, err := Open(r, NewUFS(posix.NewDispatch(mem)), "/scratch/obs", ModeCreate|ModeRdwr, hints)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, block)
		for i := range buf {
			buf[i] = byte(r.Rank())
		}
		if _, err := fh.WriteAtAll(buf, int64(r.Rank())*block); err != nil {
			panic(err)
		}
		if _, err := fh.ReadAtAll(buf, int64((r.Rank()+1)%ranks)*block); err != nil {
			panic(err)
		}
		if _, err := fh.WriteAt(buf, int64(ranks*block+r.Rank()*block)); err != nil {
			panic(err)
		}
		if err := fh.Close(); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	ls := plane.Layer("mpiio")
	// One collective write + one collective read + one independent
	// write per rank.
	if got := ls.Counter("collective_calls").Load(); got != 2*ranks {
		t.Errorf("collective_calls = %d, want %d", got, 2*ranks)
	}
	if got := ls.Counter("independent_calls").Load(); got != ranks {
		t.Errorf("independent_calls = %d, want %d", got, ranks)
	}
	if got := ls.OpBytes(iostats.Write); got != 2*ranks*block {
		t.Errorf("write bytes = %d, want %d (collective + independent)", got, 2*ranks*block)
	}
	if got := ls.OpBytes(iostats.Read); got != ranks*block {
		t.Errorf("read bytes = %d, want %d", got, ranks*block)
	}
}
