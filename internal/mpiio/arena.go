// Pooled staging arenas and zero-copy piece routing for the pipelined
// collective path.
//
// The shuffle plane never marshals payloads: a piece is a file range
// plus a reference into the owning rank's memory, and the in-process
// MPI exchange (mpi.Alltoall) moves the reference, not the bytes. For
// writes the reference is a window of the sender's application buffer
// that the aggregator copies once, into its staging arena, already
// coalesced. For reads the reference is the window of the requester's
// buffer the bytes must land in, so the aggregator delivers straight
// from its arena into the destination — one copy end to end, no
// per-piece allocation, no reassembly map.
package mpiio

import "sync"

// pieceRef is the exchange unit of the pipelined collective path: a
// file range plus a reference into the owning rank's memory (source
// window for writes, destination window for read requests). The
// collective rendezvous provides the happens-before edges that make
// touching the referenced memory safe across ranks.
type pieceRef struct {
	off  int64
	data []byte
}

// routePlan is the pooled per-collective routing scratch: the caller's
// flattened access split into pieces and laid out bucket-contiguously
// by (round, aggregator), so each round's send vector is a set of
// subslices — an iovec-style index over the caller's buffer, built in
// two passes (count, then fill) with no per-piece allocation.
type routePlan struct {
	pieces []pieceRef
	counts []int // pieces per bucket (round*naggs + agg)
	starts []int // first piece of each bucket
	fill   []int // per-bucket cursor during the fill pass
	send   []any // reusable Alltoall send vector, one entry per rank
}

var routePool = sync.Pool{New: func() any { return new(routePlan) }}

// release clears buffer references (so the pool never retains caller
// memory) and returns the plan to the pool.
func (rp *routePlan) release() {
	for i := range rp.pieces {
		rp.pieces[i].data = nil
	}
	for i := range rp.send {
		rp.send[i] = nil
	}
	rp.pieces = rp.pieces[:0]
	routePool.Put(rp)
}

// route splits segs at aggregator-domain and round boundaries and lays
// the pieces out bucket-contiguously. buf is the caller's flattened
// access buffer; every piece's data aliases it.
func (rp *routePlan) route(segs []Segment, buf []byte, g *colGeom, worldSize int) {
	nb := g.rounds * len(g.aggs)
	rp.counts = growInts(rp.counts, nb)
	total := 0
	rp.walk(segs, buf, g, func(b int, off int64, data []byte) {
		rp.counts[b]++
		total++
	})
	rp.starts = growInts(rp.starts, nb)
	sum := 0
	for b := 0; b < nb; b++ {
		rp.starts[b] = sum
		sum += rp.counts[b]
	}
	rp.fill = growInts(rp.fill, nb)
	rp.pieces = growPieces(rp.pieces, total)
	rp.walk(segs, buf, g, func(b int, off int64, data []byte) {
		i := rp.starts[b] + rp.fill[b]
		rp.fill[b]++
		rp.pieces[i] = pieceRef{off: off, data: data}
	})
	if cap(rp.send) < worldSize {
		rp.send = make([]any, worldSize)
	}
	rp.send = rp.send[:worldSize]
}

// walk visits every (bucket, file-offset, buffer-window) piece of the
// access in segment order.
func (rp *routePlan) walk(segs []Segment, buf []byte, g *colGeom, visit func(b int, off int64, data []byte)) {
	cursor := 0
	for _, s := range segs {
		off, l := s.Off, s.Len
		for l > 0 {
			a, r, end := g.locate(off)
			n := l
			if off+n > end {
				n = end - off
			}
			visit(r*len(g.aggs)+a, off, buf[cursor:cursor+int(n)])
			off += n
			l -= n
			cursor += int(n)
		}
	}
}

// bucket returns the pieces of one (round, aggregator) bucket.
func (rp *routePlan) bucket(round, agg, naggs int) []pieceRef {
	b := round*naggs + agg
	s := rp.starts[b]
	return rp.pieces[s : s+rp.counts[b]]
}

// sendFor fills the reusable Alltoall send vector for one round: each
// aggregator's bucket slice (nil when empty), nil for every other rank.
func (rp *routePlan) sendFor(round int, g *colGeom) []any {
	for i := range rp.send {
		rp.send[i] = nil
	}
	for a, rank := range g.aggs {
		if b := rp.bucket(round, a, len(g.aggs)); len(b) > 0 {
			rp.send[rank] = b
		}
	}
	return rp.send
}

// arena is one pooled aggregator staging buffer: the coalesced runs of
// one pipeline round packed back-to-back in buf. Two arenas per
// aggregator double-buffer the pipeline, overlapping round k's exchange
// and staging with round k-1's backend I/O.
type arena struct {
	buf     []byte
	runs    []Segment  // ascending file ranges, packed in buf order
	pos     []int64    // byte position of each run in buf
	refs    []pieceRef // the round's pieces (sorted by off after staging)
	scratch []pieceRef // merge-sort scratch
	ioErr   error      // set by the pipeline worker before handing back
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// release clears piece references (the pool must not pin rank buffers
// across collectives) and returns the arena — buf is the arena's own
// memory and keeps its capacity.
func (a *arena) release() {
	for i := range a.refs {
		a.refs[i].data = nil
	}
	for i := range a.scratch {
		a.scratch[i].data = nil
	}
	a.refs = a.refs[:0]
	a.scratch = a.scratch[:0]
	a.runs = a.runs[:0]
	a.pos = a.pos[:0]
	a.buf = a.buf[:0]
	a.ioErr = nil
	arenaPool.Put(a)
}

// collect gathers the round's pieces from the exchange result in rank
// order and sorts them by offset (stably, so overlapping writes resolve
// in rank order, matching the one-shot path's determinism).
func (a *arena) collect(recv []any) {
	a.refs = a.refs[:0]
	for _, v := range recv {
		ps, _ := v.([]pieceRef)
		a.refs = append(a.refs, ps...)
	}
	a.sortRefs()
}

// stageWrite coalesces the round's write pieces into packed runs,
// copying each piece exactly once into the arena (the only copy on the
// whole write path). maxRun caps a single run at the staging size, like
// the one-shot path's cb-buffer-sized runs. Returns piece and byte
// counts for the shuffle counters.
func (a *arena) stageWrite(recv []any, maxRun int64) (npieces int, nbytes int64) {
	a.collect(recv)
	a.runs = a.runs[:0]
	need := 0
	for _, p := range a.refs {
		need += len(p.data)
	}
	a.buf = growBytes(a.buf, need)
	cursor := 0
	for _, p := range a.refs {
		n := len(a.runs)
		if n > 0 && a.runs[n-1].Off+a.runs[n-1].Len == p.off &&
			a.runs[n-1].Len+int64(len(p.data)) <= maxRun {
			a.runs[n-1].Len += int64(len(p.data))
		} else {
			a.runs = append(a.runs, Segment{Off: p.off, Len: int64(len(p.data))})
		}
		cursor += copy(a.buf[cursor:], p.data)
	}
	nbytes = int64(need)
	return len(a.refs), nbytes
}

// stageReadRuns builds the disjoint covering runs of the round's read
// requests: the union of the requested ranges, chopped at maxRun, with
// per-run buf positions recorded for delivery. The request pieces stay
// in a.refs (each still carrying its requester's destination window)
// until deliver.
func (a *arena) stageReadRuns(recv []any, maxRun int64) (npieces int, nbytes int64) {
	a.collect(recv)
	a.runs = a.runs[:0]
	a.pos = a.pos[:0]
	var runOff, runEnd int64
	open := false
	emit := func(off, end int64) {
		for off < end {
			n := end - off
			if n > maxRun {
				n = maxRun
			}
			a.runs = append(a.runs, Segment{Off: off, Len: n})
			off += n
		}
	}
	for _, p := range a.refs {
		e := p.off + int64(len(p.data))
		if !open {
			runOff, runEnd, open = p.off, e, true
			continue
		}
		if p.off <= runEnd {
			if e > runEnd {
				runEnd = e
			}
			continue
		}
		emit(runOff, runEnd)
		runOff, runEnd = p.off, e
	}
	if open {
		emit(runOff, runEnd)
	}
	var total int64
	a.pos = growInt64s(a.pos, len(a.runs))
	for i, r := range a.runs {
		a.pos[i] = total
		total += r.Len
	}
	a.buf = growBytes(a.buf, int(total))
	for _, p := range a.refs {
		nbytes += int64(len(p.data))
	}
	return len(a.refs), nbytes
}

// deliver copies every staged request's bytes from the arena straight
// into the requester's destination window. Runs are disjoint, ascending
// and (within one requested range) contiguous, so a request spanning a
// maxRun chop walks consecutive runs.
func (a *arena) deliver() {
	for _, rq := range a.refs {
		off, dst := rq.off, rq.data
		for len(dst) > 0 {
			i := a.findRun(off)
			r := a.runs[i]
			src := a.buf[a.pos[i]+(off-r.Off) : a.pos[i]+r.Len]
			n := copy(dst, src)
			dst = dst[n:]
			off += int64(n)
		}
	}
}

// findRun binary-searches the run covering off — the reassembly index
// that replaces the one-shot path's pieceMap and linear scan.
func (a *arena) findRun(off int64) int {
	lo, hi := 0, len(a.runs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if a.runs[mid].Off <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// sortRefs stably sorts a.refs by offset with a bottom-up merge sort
// into pooled scratch — no interface boxing, no allocation once warm,
// and stability keeps overlap resolution deterministic (rank order).
func (a *arena) sortRefs() {
	n := len(a.refs)
	if n < 2 {
		return
	}
	a.scratch = growPieces(a.scratch, n)
	src, dst := a.refs, a.scratch
	swapped := false
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeRefs(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(a.refs, src)
	}
}

// mergeRefs merges two offset-sorted halves, preferring left on ties
// (stability).
func mergeRefs(dst, left, right []pieceRef) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if left[i].off <= right[j].off {
			dst[k] = left[i]
			i++
		} else {
			dst[k] = right[j]
			j++
		}
		k++
	}
	k += copy(dst[k:], left[i:])
	copy(dst[k:], right[j:])
}

// growBytes resizes s to n elements reusing its capacity; contents are
// unspecified (callers overwrite or zero-fill every byte they expose).
func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// growPieces resizes s to n elements reusing its capacity.
func growPieces(s []pieceRef, n int) []pieceRef {
	if cap(s) < n {
		return make([]pieceRef, n)
	}
	return s[:n]
}

// growInts resizes s to n zeroed elements, reusing its capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growInt64s resizes s to n zeroed elements, reusing its capacity.
func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
