package mpiio

import "fmt"

// This file implements derived-datatype flattening: MPI applications
// describe file views with vectors and subarrays (BT-IO's view is a 3-D
// subarray of 5-double cells); ROMIO flattens them to (offset, length)
// lists before doing I/O. The constructors here produce the flattened
// Segment lists the File methods consume.

// Vector flattens an MPI_Type_vector view: count blocks of blockLen
// bytes, each stride bytes apart, starting at disp.
func Vector(disp int64, count int, blockLen, stride int64) ([]Segment, error) {
	if count < 0 || blockLen < 0 || stride < 0 {
		return nil, fmt.Errorf("mpiio: invalid vector (count=%d blocklen=%d stride=%d)", count, blockLen, stride)
	}
	if blockLen > stride && count > 1 {
		return nil, fmt.Errorf("mpiio: vector blocks overlap (blocklen=%d > stride=%d)", blockLen, stride)
	}
	segs := make([]Segment, 0, count)
	for i := 0; i < count; i++ {
		segs = append(segs, Segment{Off: disp + int64(i)*stride, Len: blockLen})
	}
	return Coalesce(segs), nil
}

// Subarray flattens an MPI_Type_create_subarray view: from a row-major
// array of shape dims (in elements of elemSize bytes), select the block
// of shape subsizes starting at starts. The result is one segment per
// contiguous run, in file order — exactly ROMIO's flattened
// representation.
func Subarray(dims, subsizes, starts []int, elemSize int, disp int64) ([]Segment, error) {
	n := len(dims)
	if n == 0 || len(subsizes) != n || len(starts) != n {
		return nil, fmt.Errorf("mpiio: subarray rank mismatch (%d/%d/%d)", len(dims), len(subsizes), len(starts))
	}
	if elemSize <= 0 {
		return nil, fmt.Errorf("mpiio: invalid element size %d", elemSize)
	}
	for d := 0; d < n; d++ {
		if dims[d] <= 0 || subsizes[d] <= 0 || starts[d] < 0 || starts[d]+subsizes[d] > dims[d] {
			return nil, fmt.Errorf("mpiio: subarray dim %d out of range (dim=%d sub=%d start=%d)",
				d, dims[d], subsizes[d], starts[d])
		}
	}
	// Stride (in elements) of each dimension in the row-major layout.
	strides := make([]int64, n)
	strides[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * int64(dims[d+1])
	}
	// The innermost dimension's run is contiguous; iterate the outer ones.
	runLen := int64(subsizes[n-1]) * int64(elemSize)
	var segs []Segment
	idx := make([]int, n-1) // counters for dims 0..n-2
	for {
		var elemOff int64
		for d := 0; d < n-1; d++ {
			elemOff += int64(starts[d]+idx[d]) * strides[d]
		}
		elemOff += int64(starts[n-1])
		segs = append(segs, Segment{Off: disp + elemOff*int64(elemSize), Len: runLen})
		// Odometer increment.
		d := n - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < subsizes[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	if n == 1 {
		segs = segs[:1]
	}
	return Coalesce(segs), nil
}

// Coalesce sorts-free merges adjacent segments that are already in file
// order (as flattened datatypes are) and drops empty ones.
func Coalesce(segs []Segment) []Segment {
	out := segs[:0]
	for _, s := range segs {
		if s.Len == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Off+out[len(out)-1].Len == s.Off {
			out[len(out)-1].Len += s.Len
			continue
		}
		out = append(out, s)
	}
	return out
}

// Tile replicates a flattened view count times with a fixed extent —
// MPI_File_set_view's repetition of the filetype across the file. Segment
// i*len(segs)+j is segs[j] shifted by i*extent.
func Tile(segs []Segment, extent int64, count int) []Segment {
	out := make([]Segment, 0, len(segs)*count)
	for i := 0; i < count; i++ {
		shift := int64(i) * extent
		for _, s := range segs {
			out = append(out, Segment{Off: s.Off + shift, Len: s.Len})
		}
	}
	return Coalesce(out)
}

// Extent returns the span [min offset, max end) of a flattened view.
func Extent(segs []Segment) (lo, hi int64) {
	if len(segs) == 0 {
		return 0, 0
	}
	lo, hi = segs[0].Off, segs[0].Off+segs[0].Len
	for _, s := range segs[1:] {
		if s.Off < lo {
			lo = s.Off
		}
		if end := s.Off + s.Len; end > hi {
			hi = end
		}
	}
	return lo, hi
}
