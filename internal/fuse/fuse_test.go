package fuse

import (
	"bytes"
	"errors"
	"testing"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

func newMount(t *testing.T) (*FS, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	return Mount(mem, "/mnt/plfs", "/backend", plfs.Options{NumHostdirs: 4}), mem
}

func TestFuseRoundTrip(t *testing.T) {
	fs, _ := newMount(t)
	fd, err := fs.Open("/mnt/plfs/f", posix.O_CREAT|posix.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("through the kernel twice")
	if n, err := fs.Write(fd, payload); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := fs.Lseek(fd, 0, posix.SEEK_SET); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if n, err := fs.Read(fd, got); err != nil || n != len(payload) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("content = %q", got)
	}
	fs.Close(fd)
}

func TestFuseOutsideMountENOENT(t *testing.T) {
	fs, _ := newMount(t)
	if _, err := fs.Open("/elsewhere/f", posix.O_CREAT|posix.O_WRONLY, 0o644); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("open outside mount = %v", err)
	}
	if _, err := fs.Stat("/other"); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("stat outside mount = %v", err)
	}
}

func TestFuseTransparency(t *testing.T) {
	fs, _ := newMount(t)
	fd, _ := fs.Open("/mnt/plfs/chk", posix.O_CREAT|posix.O_WRONLY, 0o644)
	fs.Write(fd, make([]byte, 5000))
	fs.Close(fd)

	st, err := fs.Stat("/mnt/plfs/chk")
	if err != nil || st.IsDir() || st.Size != 5000 {
		t.Fatalf("container via FUSE: %+v, %v", st, err)
	}
	entries, err := fs.Readdir("/mnt/plfs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name == "chk" && e.IsDir {
			t.Fatal("container listed as directory through FUSE")
		}
	}
}

func TestFuseCrossingAccounting(t *testing.T) {
	fs, _ := newMount(t)
	fd, _ := fs.Open("/mnt/plfs/acct", posix.O_CREAT|posix.O_WRONLY, 0o644)

	fs.Metrics.Crossings.Store(0)
	fs.Metrics.BytesCopied.Store(0)

	small := make([]byte, 1000)
	fs.Write(fd, small)
	if got := fs.Metrics.Crossings.Load(); got != 2 {
		t.Fatalf("small write crossings = %d, want 2", got)
	}
	if got := fs.Metrics.BytesCopied.Load(); got != 2000 {
		t.Fatalf("bytes copied = %d, want 2000 (double copy)", got)
	}

	// A large write is segmented at MaxTransfer per round trip.
	fs.Metrics.Crossings.Store(0)
	big := make([]byte, 3*MaxTransfer+1)
	fs.Write(fd, big)
	if got := fs.Metrics.Crossings.Load(); got != 8 {
		t.Fatalf("large write crossings = %d, want 8 (4 segments x 2)", got)
	}
	fs.Close(fd)
}

func TestFuseVsLDPLFSSameBytes(t *testing.T) {
	// The two PLFS transports must produce interchangeable containers: a
	// file written through FUSE reads identically via direct PLFS.
	fs, mem := newMount(t)
	fd, _ := fs.Open("/mnt/plfs/x", posix.O_CREAT|posix.O_WRONLY, 0o644)
	want := []byte("written by the fuse daemon")
	fs.Write(fd, want)
	fs.Close(fd)

	p := plfs.New(mem, plfs.Options{NumHostdirs: 4})
	pf, err := p.Open("/backend/x", posix.O_RDONLY, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := pf.Read(got, 0); err != nil || n != len(want) {
		t.Fatalf("direct read = %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bytes differ: %q", got)
	}
	pf.Close(0)
}

func TestFuseDirOps(t *testing.T) {
	fs, _ := newMount(t)
	if err := fs.Mkdir("/mnt/plfs/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err := fs.Open("/mnt/plfs/d", posix.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open dir: %v", err)
	}
	if _, err := fs.Read(fd, make([]byte, 4)); !errors.Is(err, posix.EISDIR) {
		t.Fatalf("read dir = %v", err)
	}
	fs.Close(fd)
	if err := fs.Rmdir("/mnt/plfs/d"); err != nil {
		t.Fatal(err)
	}
}

func TestFuseAppendAndSeekEnd(t *testing.T) {
	fs, _ := newMount(t)
	fd, _ := fs.Open("/mnt/plfs/log", posix.O_CREAT|posix.O_WRONLY|posix.O_APPEND, 0o644)
	fs.Write(fd, []byte("aa"))
	fs.Write(fd, []byte("bb"))
	fs.Close(fd)
	fd, _ = fs.Open("/mnt/plfs/log", posix.O_RDWR, 0)
	if pos, err := fs.Lseek(fd, 0, posix.SEEK_END); err != nil || pos != 4 {
		t.Fatalf("SEEK_END = %d, %v", pos, err)
	}
	fs.Close(fd)
}
