// Package fuse emulates the PLFS FUSE deployment path: a kernel-mediated
// mount where every file operation crosses user→kernel→daemon and data is
// copied twice. Functionally it behaves exactly like LDPLFS (applications
// see containers as plain files); its purpose in the reproduction is
// (a) transparency — any FS consumer works unmodified — and (b) cost
// accounting, because the crossings/copies it meters are what make the
// FUSE bars the slowest in Figure 3 of the paper.
package fuse

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
)

// MaxTransfer is the FUSE max_write/max_read segment size: one kernel
// round trip moves at most this many bytes (128 KiB, the Linux default).
const MaxTransfer = 128 << 10

// Metrics counts the kernel-boundary work an operation stream induced.
type Metrics struct {
	// Crossings counts user<->kernel<->daemon round trips (2 per op
	// segment: the request into the kernel and the daemon reply).
	Crossings atomic.Int64
	// BytesCopied counts payload bytes moved across the boundary; each
	// read or write payload crosses twice (user->kernel, kernel->daemon).
	BytesCopied atomic.Int64
	// Ops counts FUSE operations (after segmentation).
	Ops atomic.Int64
}

// FS is a mounted PLFS-FUSE file system. Paths under MountPoint map to
// PLFS containers in the backend directory; everything else is ENOENT —
// a FUSE mount only exposes its own tree.
type FS struct {
	mountPoint string
	backend    string
	plfs       *plfs.FS
	inner      posix.FS

	mu     sync.Mutex
	fds    map[int]*fuseFD
	nextFD int

	Metrics Metrics
}

// nextWriterID hands out cluster-unique writer ids: real PLFS-FUSE daemons
// are distinguished by hostname, so two mounts never share droppings. A
// package-level counter reproduces that uniqueness across Mount instances.
var nextWriterID atomic.Uint32

func init() { nextWriterID.Store(1 << 20) } // distinct from application pids

type fuseFD struct {
	file    *plfs.File
	dirPath string // non-empty for directory fds
	off     int64
	flags   int
	pid     uint32
}

// Mount creates a FUSE view: mountPoint becomes a window onto PLFS
// containers stored under backendDir of inner. opts take any mix of
// grouped plfs option values (or the deprecated flat plfs.Options).
func Mount(inner posix.FS, mountPoint, backendDir string, opts ...plfs.Option) *FS {
	return &FS{
		mountPoint: strings.TrimRight(mountPoint, "/"),
		backend:    strings.TrimRight(backendDir, "/"),
		plfs:       plfs.New(inner, opts...),
		inner:      inner,
		fds:        make(map[int]*fuseFD),
		nextFD:     3,
	}
}

// Plfs returns the PLFS instance behind the mount.
func (f *FS) Plfs() *plfs.FS { return f.plfs }

// cross records n kernel round trips for op accounting.
func (f *FS) cross(n int64) {
	f.Metrics.Crossings.Add(n)
	f.Metrics.Ops.Add(1)
}

func (f *FS) resolve(path string) (string, error) {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	if path == f.mountPoint {
		return f.backend, nil
	}
	if strings.HasPrefix(path, f.mountPoint+"/") {
		return f.backend + path[len(f.mountPoint):], nil
	}
	return "", posix.ENOENT
}

// segments returns the number of MaxTransfer segments needed for n bytes.
func segments(n int) int64 {
	if n <= 0 {
		return 1
	}
	return int64((n + MaxTransfer - 1) / MaxTransfer)
}

// Open implements posix.FS.
func (f *FS) Open(path string, flags int, mode uint32) (int, error) {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return -1, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if st, serr := f.inner.Stat(bpath); serr == nil && st.IsDir() && !f.plfs.IsContainer(bpath) {
		if flags&posix.O_ACCMODE != posix.O_RDONLY {
			return -1, posix.EISDIR
		}
		fd := f.nextFD
		f.nextFD++
		f.fds[fd] = &fuseFD{dirPath: bpath, flags: flags}
		return fd, nil
	}
	pid := nextWriterID.Add(1)
	pf, err := f.plfs.Open(bpath, flags, pid, mode)
	if err != nil {
		return -1, err
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = &fuseFD{file: pf, flags: flags, pid: pid}
	if flags&posix.O_APPEND != 0 {
		if size, err := pf.Size(); err == nil {
			f.fds[fd].off = size
		}
	}
	return fd, nil
}

func (f *FS) fd(fd int) (*fuseFD, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.fds[fd]
	if !ok {
		return nil, posix.EBADF
	}
	return h, nil
}

// Close implements posix.FS.
func (f *FS) Close(fd int) error {
	f.cross(2)
	f.mu.Lock()
	h, ok := f.fds[fd]
	if ok {
		delete(f.fds, fd)
	}
	f.mu.Unlock()
	if !ok {
		return posix.EBADF
	}
	if h.file != nil {
		return h.file.Close(h.pid)
	}
	return nil
}

// Read implements posix.FS.
func (f *FS) Read(fd int, p []byte) (int, error) {
	h, err := f.fd(fd)
	if err != nil {
		f.cross(2)
		return 0, err
	}
	f.mu.Lock()
	off := h.off
	f.mu.Unlock()
	n, err := f.Pread(fd, p, off)
	if err == nil {
		f.mu.Lock()
		h.off = off + int64(n)
		f.mu.Unlock()
	}
	return n, err
}

// Write implements posix.FS.
func (f *FS) Write(fd int, p []byte) (int, error) {
	h, err := f.fd(fd)
	if err != nil {
		f.cross(2)
		return 0, err
	}
	f.mu.Lock()
	off := h.off
	f.mu.Unlock()
	if h.flags&posix.O_APPEND != 0 && h.file != nil {
		size, serr := h.file.Size()
		if serr != nil {
			return 0, serr
		}
		off = size
	}
	n, err := f.Pwrite(fd, p, off)
	if err == nil {
		f.mu.Lock()
		h.off = off + int64(n)
		f.mu.Unlock()
	}
	return n, err
}

// Pread implements posix.FS, segmenting at MaxTransfer per kernel trip.
func (f *FS) Pread(fd int, p []byte, off int64) (int, error) {
	h, err := f.fd(fd)
	if err != nil {
		f.cross(2)
		return 0, err
	}
	if h.file == nil {
		f.cross(2)
		return 0, posix.EISDIR
	}
	f.cross(2 * segments(len(p)))
	n, err := h.file.Read(p, off)
	f.Metrics.BytesCopied.Add(2 * int64(n))
	return n, err
}

// Pwrite implements posix.FS, segmenting at MaxTransfer per kernel trip.
func (f *FS) Pwrite(fd int, p []byte, off int64) (int, error) {
	h, err := f.fd(fd)
	if err != nil {
		f.cross(2)
		return 0, err
	}
	if h.file == nil {
		f.cross(2)
		return 0, posix.EISDIR
	}
	f.cross(2 * segments(len(p)))
	n, err := h.file.Write(p, off, h.pid)
	f.Metrics.BytesCopied.Add(2 * int64(n))
	return n, err
}

// Lseek implements posix.FS. Seeks are resolved in the VFS against the
// kernel-held offset; only SEEK_END needs a getattr round trip.
func (f *FS) Lseek(fd int, offset int64, whence int) (int64, error) {
	h, err := f.fd(fd)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case posix.SEEK_SET:
		base = 0
	case posix.SEEK_CUR:
		base = h.off
	case posix.SEEK_END:
		if h.file == nil {
			return 0, posix.EISDIR
		}
		f.cross(2) // getattr
		size, err := h.file.Size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, posix.EINVAL
	}
	pos := base + offset
	if pos < 0 {
		return 0, posix.EINVAL
	}
	h.off = pos
	return pos, nil
}

// Fsync implements posix.FS.
func (f *FS) Fsync(fd int) error {
	f.cross(2)
	h, err := f.fd(fd)
	if err != nil {
		return err
	}
	if h.file == nil {
		return nil
	}
	return h.file.Sync(h.pid)
}

// Ftruncate implements posix.FS.
func (f *FS) Ftruncate(fd int, size int64) error {
	f.cross(2)
	h, err := f.fd(fd)
	if err != nil {
		return err
	}
	if h.file == nil {
		return posix.EISDIR
	}
	return h.file.Trunc(size)
}

// Fstat implements posix.FS.
func (f *FS) Fstat(fd int) (posix.Stat, error) {
	f.cross(2)
	h, err := f.fd(fd)
	if err != nil {
		return posix.Stat{}, err
	}
	if h.file == nil {
		return f.inner.Stat(h.dirPath)
	}
	size, err := h.file.Size()
	if err != nil {
		return posix.Stat{}, err
	}
	return posix.Stat{Size: size, Mode: 0o644, Nlink: 1}, nil
}

// Stat implements posix.FS.
func (f *FS) Stat(path string) (posix.Stat, error) {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return posix.Stat{}, err
	}
	if f.plfs.IsContainer(bpath) {
		return f.plfs.Stat(bpath)
	}
	return f.inner.Stat(bpath)
}

// Truncate implements posix.FS.
func (f *FS) Truncate(path string, size int64) error {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return err
	}
	if f.plfs.IsContainer(bpath) {
		return f.plfs.Truncate(bpath, size)
	}
	return f.inner.Truncate(bpath, size)
}

// Unlink implements posix.FS.
func (f *FS) Unlink(path string) error {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return err
	}
	if f.plfs.IsContainer(bpath) {
		return f.plfs.Unlink(bpath)
	}
	return f.inner.Unlink(bpath)
}

// Mkdir implements posix.FS.
func (f *FS) Mkdir(path string, mode uint32) error {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return err
	}
	return f.inner.Mkdir(bpath, mode)
}

// Rmdir implements posix.FS.
func (f *FS) Rmdir(path string) error {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return err
	}
	if f.plfs.IsContainer(bpath) {
		return posix.ENOTDIR
	}
	return f.inner.Rmdir(bpath)
}

// Readdir implements posix.FS, flattening containers to file entries.
func (f *FS) Readdir(path string) ([]posix.DirEntry, error) {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	entries, err := f.inner.Readdir(bpath)
	if err != nil {
		return nil, err
	}
	out := entries[:0]
	for _, e := range entries {
		if e.IsDir && f.plfs.IsContainer(bpath+"/"+e.Name) {
			e.IsDir = false
		}
		out = append(out, e)
	}
	return out, nil
}

// Rename implements posix.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	f.cross(2)
	bold, err := f.resolve(oldpath)
	if err != nil {
		return err
	}
	bnew, err := f.resolve(newpath)
	if err != nil {
		return err
	}
	if f.plfs.IsContainer(bold) {
		return f.plfs.Rename(bold, bnew)
	}
	return f.inner.Rename(bold, bnew)
}

// Access implements posix.FS.
func (f *FS) Access(path string, mode int) error {
	f.cross(2)
	bpath, err := f.resolve(path)
	if err != nil {
		return err
	}
	if f.plfs.IsContainer(bpath) {
		return nil
	}
	err = f.inner.Access(bpath, mode)
	if errors.Is(err, posix.ENOENT) {
		return posix.ENOENT
	}
	return err
}

var _ posix.FS = (*FS)(nil)
