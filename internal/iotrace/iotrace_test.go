package iotrace

import (
	"testing"

	"ldplfs/internal/core"
	"ldplfs/internal/iostats"
	"ldplfs/internal/mpi"
	"ldplfs/internal/mpiio"
	"ldplfs/internal/plfs"
	"ldplfs/internal/posix"
	"ldplfs/internal/workload"
)

func TestRecorderBasics(t *testing.T) {
	mem := posix.NewMemFS()
	rec := Wrap(mem)

	fd, err := rec.Open("/f", posix.O_CREAT|posix.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec.Write(fd, make([]byte, 100))
	rec.Pwrite(fd, make([]byte, 50), 200)
	buf := make([]byte, 64)
	rec.Pread(fd, buf, 0)
	rec.Fstat(fd)
	rec.Close(fd)

	// Reopening an existing file is an open, not a create.
	fd, _ = rec.Open("/f", posix.O_RDONLY, 0)
	rec.Close(fd)
	rec.Mkdir("/d", 0o755)

	s := Summarize(rec.Events())
	if s.FileCreates != 1 {
		t.Errorf("FileCreates = %d, want 1", s.FileCreates)
	}
	if s.DirCreates != 1 {
		t.Errorf("DirCreates = %d, want 1", s.DirCreates)
	}
	if s.Opens != 1 {
		t.Errorf("Opens = %d, want 1", s.Opens)
	}
	if s.BytesWritten != 150 || s.WriteCalls != 2 {
		t.Errorf("writes = %d bytes / %d calls", s.BytesWritten, s.WriteCalls)
	}
	if s.BytesRead != 64 || s.ReadCalls != 1 {
		t.Errorf("reads = %d bytes / %d calls", s.BytesRead, s.ReadCalls)
	}
	if s.WriteStreams != 1 {
		t.Errorf("WriteStreams = %d, want 1", s.WriteStreams)
	}
	if s.MedianWrite != 100 {
		t.Errorf("MedianWrite = %d, want 100", s.MedianWrite)
	}
	if s.MetaOps == 0 {
		t.Error("Fstat not counted as meta")
	}
}

// TestRecorderFeedsPlane checks the rebuilt recorder is a true consumer
// of the telemetry plane: one WrapWith gives the event stream here and
// the aggregate counters on the plane's "iotrace" layer.
func TestRecorderFeedsPlane(t *testing.T) {
	mem := posix.NewMemFS()
	plane := iostats.NewPlane()
	rec := WrapWith(mem, plane)

	fd, err := rec.Open("/f", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec.Write(fd, make([]byte, 100))
	rec.Close(fd)

	if got := Summarize(rec.Events()); got.BytesWritten != 100 || got.FileCreates != 1 {
		t.Fatalf("event stream summary = %+v", got)
	}
	ls := plane.Layer("iotrace")
	if got := ls.OpBytes(iostats.Write); got != 100 {
		t.Fatalf("plane write bytes = %d, want 100", got)
	}
	if got := ls.OpCount(iostats.Open); got != 1 {
		t.Fatalf("plane open count = %d, want 1", got)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := Wrap(posix.NewMemFS())
	fd, _ := rec.Open("/x", posix.O_CREAT|posix.O_WRONLY, 0o644)
	rec.Write(fd, []byte("abc"))
	rec.Close(fd)
	if len(rec.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Fatal("Reset left events behind")
	}
}

// TestLDPLFSCreatesScaleWithRanks measures, on the functional stack, the
// mechanism behind Fig. 5: through LDPLFS each FLASH-IO output spawns
// per-process dropping files (MDS create storm), while plain MPI-IO
// creates a constant number of files regardless of scale.
func TestLDPLFSCreatesScaleWithRanks(t *testing.T) {
	run := func(ranks int, usePLFS bool) Summary {
		mem := posix.NewMemFS()
		mem.Mkdir("/scratch", 0o755)
		mem.Mkdir("/backend", 0o755)
		rec := Wrap(mem)

		cfg := workload.FlashIOConfig{NXB: 4, NBlocks: 2, NVars: 4, Hints: mpiio.DefaultHints()}
		err := mpi.Run(ranks, 2, func(r *mpi.Rank) {
			var drv mpiio.Driver
			base := "/scratch/run"
			if usePLFS {
				d := posix.NewDispatch(rec)
				if _, err := core.Preload(d, core.Config{
					Mounts:      []core.Mount{{Point: "/mnt/plfs", Backend: "/backend"}},
					Pid:         uint32(r.Rank()),
					PlfsOptions: plfs.Options{NumHostdirs: 4},
				}); err != nil {
					panic(err)
				}
				drv = mpiio.NewUFS(d)
				base = "/mnt/plfs/run"
			} else {
				drv = mpiio.NewUFS(posix.NewDispatch(rec))
			}
			if _, err := workload.RunFlashIO(r, drv, base, cfg); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(rec.Events())
	}

	plfs4 := run(4, true)
	plfs8 := run(8, true)
	plain4 := run(4, false)
	plain8 := run(8, false)

	// Plain MPI-IO: 3 files regardless of rank count.
	if plain4.FileCreates != 3 || plain8.FileCreates != 3 {
		t.Errorf("plain creates = %d/%d, want 3/3", plain4.FileCreates, plain8.FileCreates)
	}
	// LDPLFS: dropping files grow with ranks (>= 2 per rank per output).
	if plfs8.DroppingFiles <= plfs4.DroppingFiles {
		t.Errorf("dropping files did not scale: %d at 4 ranks, %d at 8",
			plfs4.DroppingFiles, plfs8.DroppingFiles)
	}
	if plfs8.DroppingFiles < 8*2*3 {
		t.Errorf("droppings at 8 ranks = %d, want >= %d (2 per rank per file)",
			plfs8.DroppingFiles, 8*2*3)
	}
	// And write streams multiply correspondingly — the OSS-contention
	// term of the Fig. 5 model, measured.
	if plfs8.WriteStreams <= plain8.WriteStreams {
		t.Errorf("PLFS write streams %d not above plain %d",
			plfs8.WriteStreams, plain8.WriteStreams)
	}
}

// TestWriteSizesThroughCollectiveBuffering confirms the aggregator effect
// the BT analysis leans on: with collective buffering, the backend sees
// few large writes rather than many small ones.
func TestWriteSizesThroughCollectiveBuffering(t *testing.T) {
	const ranks, block = 8, 64 << 10
	run := func(cb bool) Summary {
		mem := posix.NewMemFS()
		mem.Mkdir("/scratch", 0o755)
		rec := Wrap(mem)
		hints := mpiio.DefaultHints()
		hints.CollectiveBuffering = cb
		err := mpi.Run(ranks, 4, func(r *mpi.Rank) {
			fh, err := mpiio.Open(r, mpiio.NewUFS(posix.NewDispatch(rec)), "/scratch/f",
				mpiio.ModeCreate|mpiio.ModeWronly, hints)
			if err != nil {
				panic(err)
			}
			if _, err := fh.WriteAtAll(make([]byte, block), int64(r.Rank())*block); err != nil {
				panic(err)
			}
			fh.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(rec.Events())
	}

	with := run(true)
	without := run(false)
	if with.WriteCalls >= without.WriteCalls {
		t.Errorf("collective buffering did not reduce write calls: %d vs %d",
			with.WriteCalls, without.WriteCalls)
	}
	if with.MedianWrite <= without.MedianWrite {
		t.Errorf("collective buffering did not enlarge writes: median %d vs %d",
			with.MedianWrite, without.MedianWrite)
	}
	if with.BytesWritten != without.BytesWritten {
		t.Errorf("byte totals differ: %d vs %d", with.BytesWritten, without.BytesWritten)
	}
}
