// Package iotrace records the storage-level operation stream a workload
// induces on a posix.FS backend, and aggregates it into the quantities
// the cluster cost models care about: file creates (MDS load), active
// write streams (OSS object management), bytes moved, and the write-size
// distribution (cache-absorbability).
//
// Since the unified telemetry plane landed, the recorder is a consumer
// of it rather than a parallel implementation: the Recorder is a thin
// event sink over posix.InstrumentFS — the same wrapper every layer
// uses for counters — keeping only what the plane deliberately does
// not: the per-path event stream that the per-file aggregation
// (Summarize) needs. Wrapping with a Collector therefore gives both
// views from one pass: aggregate layer stats on the plane ("iotrace"
// layer) and the semantic event stream here.
//
// Wrapping the shared backend under a full experiment makes the paper's
// mechanisms *measurable* on the functional stack: e.g. FLASH-IO through
// LDPLFS creates ~2 files per process per checkpoint (the Fig. 5 MDS
// storm) while plain MPI-IO creates one file total.
package iotrace

import (
	"sort"
	"strings"
	"sync"

	"ldplfs/internal/iostats"
	"ldplfs/internal/posix"
)

// OpKind classifies a recorded operation.
type OpKind int

// Recorded operation kinds.
const (
	OpCreate OpKind = iota // open with O_CREAT of a previously absent path
	OpOpen                 // open of an existing path
	OpRead
	OpWrite
	OpMeta // stat/unlink/mkdir/readdir/rename/truncate/access
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMeta:
		return "meta"
	}
	return "?"
}

// Event is one recorded operation.
type Event struct {
	Kind  OpKind
	Path  string
	Bytes int64
	Seq   int64 // global order
}

// Recorder wraps a posix.FS and records every operation. It is safe for
// concurrent use (ranks share one backend). All posix.FS methods come
// from the embedded InstrumentFS; the recorder only collects the event
// stream the instrument observes.
type Recorder struct {
	*posix.InstrumentFS

	mu     sync.Mutex
	events []Event
	seq    int64
}

// Wrap returns a recording view of inner.
func Wrap(inner posix.FS) *Recorder { return WrapWith(inner, nil) }

// WrapWith is Wrap with the instrument's counters registered on a
// telemetry plane (layer "iotrace"), so one wrapped backend feeds both
// the event stream and the plane.
func WrapWith(inner posix.FS, c iostats.Collector) *Recorder {
	r := &Recorder{}
	r.InstrumentFS = posix.NewInstrumentFS(inner, c,
		posix.WithLayerName("iotrace"), posix.WithObserver(r.observe))
	return r
}

// observe converts the instrument's event into the recorder's
// vocabulary, preserving the conventions the aggregation was built on
// (directory creates marked by a trailing slash).
func (r *Recorder) observe(ev posix.OpEvent) {
	var kind OpKind
	path := ev.Path
	switch {
	case ev.Op == iostats.Open && ev.Created:
		kind = OpCreate
		if ev.Dir {
			path += "/"
		}
	case ev.Op == iostats.Open:
		kind = OpOpen
	case ev.Op == iostats.Read:
		kind = OpRead
	case ev.Op == iostats.Write:
		kind = OpWrite
	default:
		kind = OpMeta
	}
	r.mu.Lock()
	r.seq++
	r.events = append(r.events, Event{Kind: kind, Path: path, Bytes: ev.Bytes, Seq: r.seq})
	r.mu.Unlock()
}

// Events returns a copy of the recorded stream.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards the recorded stream (not the fd map).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

var _ posix.FS = (*Recorder)(nil)

// --- aggregation -------------------------------------------------------------

// Summary aggregates a recorded stream into model inputs.
type Summary struct {
	FileCreates  int   // new files (MDS creates on Lustre)
	DirCreates   int   // new directories
	Opens        int   // opens of existing files
	MetaOps      int   // stats, unlinks, syncs, ...
	BytesWritten int64 //
	BytesRead    int64 //
	WriteCalls   int   //
	ReadCalls    int   //
	// WriteStreams is the number of distinct files written — the active
	// stream count that drives the OSS contention term.
	WriteStreams int
	// MedianWrite is the median write call size (cache-absorbability).
	MedianWrite int64
	// DroppingFiles counts files under hostdir.* (PLFS internal streams).
	DroppingFiles int
}

// Summarize aggregates events.
func Summarize(events []Event) Summary {
	var s Summary
	writeFiles := map[string]bool{}
	created := map[string]bool{}
	var writeSizes []int64
	for _, e := range events {
		switch e.Kind {
		case OpCreate:
			if strings.Contains(e.Path, "dropping.") {
				s.DroppingFiles++
			}
			// Mkdir records OpCreate too; distinguish by a heuristic: the
			// recorder only calls Mkdir for directories.
			if created[e.Path] {
				continue
			}
			created[e.Path] = true
			if strings.HasSuffix(e.Path, "/") {
				s.DirCreates++
			} else {
				s.FileCreates++
			}
		case OpOpen:
			s.Opens++
		case OpWrite:
			s.BytesWritten += e.Bytes
			s.WriteCalls++
			writeFiles[e.Path] = true
			writeSizes = append(writeSizes, e.Bytes)
		case OpRead:
			s.BytesRead += e.Bytes
			s.ReadCalls++
		case OpMeta:
			s.MetaOps++
		}
	}
	s.WriteStreams = len(writeFiles)
	if len(writeSizes) > 0 {
		sort.Slice(writeSizes, func(i, j int) bool { return writeSizes[i] < writeSizes[j] })
		s.MedianWrite = writeSizes[len(writeSizes)/2]
	}
	return s
}
