// Package iotrace records the storage-level operation stream a workload
// induces on a posix.FS backend, and aggregates it into the quantities
// the cluster cost models care about: file creates (MDS load), active
// write streams (OSS object management), bytes moved, and the write-size
// distribution (cache-absorbability).
//
// Wrapping the shared backend under a full experiment makes the paper's
// mechanisms *measurable* on the functional stack: e.g. FLASH-IO through
// LDPLFS creates ~2 files per process per checkpoint (the Fig. 5 MDS
// storm) while plain MPI-IO creates one file total.
package iotrace

import (
	"sort"
	"strings"
	"sync"

	"ldplfs/internal/posix"
)

// OpKind classifies a recorded operation.
type OpKind int

// Recorded operation kinds.
const (
	OpCreate OpKind = iota // open with O_CREAT of a previously absent path
	OpOpen                 // open of an existing path
	OpRead
	OpWrite
	OpMeta // stat/unlink/mkdir/readdir/rename/truncate/access
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMeta:
		return "meta"
	}
	return "?"
}

// Event is one recorded operation.
type Event struct {
	Kind  OpKind
	Path  string
	Bytes int64
	Seq   int64 // global order
}

// Recorder wraps a posix.FS and records every operation. It is safe for
// concurrent use (ranks share one backend).
type Recorder struct {
	inner posix.FS

	mu     sync.Mutex
	events []Event
	seq    int64
	fdPath map[int]string
}

// Wrap returns a recording view of inner.
func Wrap(inner posix.FS) *Recorder {
	return &Recorder{inner: inner, fdPath: make(map[int]string)}
}

func (r *Recorder) record(kind OpKind, path string, bytes int64) {
	r.mu.Lock()
	r.seq++
	r.events = append(r.events, Event{Kind: kind, Path: path, Bytes: bytes, Seq: r.seq})
	r.mu.Unlock()
}

// Events returns a copy of the recorded stream.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards the recorded stream (not the fd map).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// --- posix.FS ---------------------------------------------------------------

// Open implements posix.FS.
func (r *Recorder) Open(path string, flags int, mode uint32) (int, error) {
	kind := OpOpen
	if flags&posix.O_CREAT != 0 {
		if _, err := r.inner.Stat(path); err != nil {
			kind = OpCreate
		}
	}
	fd, err := r.inner.Open(path, flags, mode)
	if err != nil {
		return fd, err
	}
	r.mu.Lock()
	r.fdPath[fd] = path
	r.mu.Unlock()
	r.record(kind, path, 0)
	return fd, nil
}

func (r *Recorder) pathOf(fd int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fdPath[fd]
}

// Close implements posix.FS.
func (r *Recorder) Close(fd int) error {
	r.mu.Lock()
	delete(r.fdPath, fd)
	r.mu.Unlock()
	return r.inner.Close(fd)
}

// Read implements posix.FS.
func (r *Recorder) Read(fd int, p []byte) (int, error) {
	n, err := r.inner.Read(fd, p)
	if n > 0 {
		r.record(OpRead, r.pathOf(fd), int64(n))
	}
	return n, err
}

// Write implements posix.FS.
func (r *Recorder) Write(fd int, p []byte) (int, error) {
	n, err := r.inner.Write(fd, p)
	if n > 0 {
		r.record(OpWrite, r.pathOf(fd), int64(n))
	}
	return n, err
}

// Pread implements posix.FS.
func (r *Recorder) Pread(fd int, p []byte, off int64) (int, error) {
	n, err := r.inner.Pread(fd, p, off)
	if n > 0 {
		r.record(OpRead, r.pathOf(fd), int64(n))
	}
	return n, err
}

// Pwrite implements posix.FS.
func (r *Recorder) Pwrite(fd int, p []byte, off int64) (int, error) {
	n, err := r.inner.Pwrite(fd, p, off)
	if n > 0 {
		r.record(OpWrite, r.pathOf(fd), int64(n))
	}
	return n, err
}

// Lseek implements posix.FS (not recorded: pure client-side).
func (r *Recorder) Lseek(fd int, offset int64, whence int) (int64, error) {
	return r.inner.Lseek(fd, offset, whence)
}

// Fsync implements posix.FS.
func (r *Recorder) Fsync(fd int) error {
	r.record(OpMeta, r.pathOf(fd), 0)
	return r.inner.Fsync(fd)
}

// Ftruncate implements posix.FS.
func (r *Recorder) Ftruncate(fd int, size int64) error {
	r.record(OpMeta, r.pathOf(fd), 0)
	return r.inner.Ftruncate(fd, size)
}

// Fstat implements posix.FS.
func (r *Recorder) Fstat(fd int) (posix.Stat, error) {
	r.record(OpMeta, r.pathOf(fd), 0)
	return r.inner.Fstat(fd)
}

// Stat implements posix.FS.
func (r *Recorder) Stat(path string) (posix.Stat, error) {
	r.record(OpMeta, path, 0)
	return r.inner.Stat(path)
}

// Truncate implements posix.FS.
func (r *Recorder) Truncate(path string, size int64) error {
	r.record(OpMeta, path, 0)
	return r.inner.Truncate(path, size)
}

// Unlink implements posix.FS.
func (r *Recorder) Unlink(path string) error {
	r.record(OpMeta, path, 0)
	return r.inner.Unlink(path)
}

// Mkdir implements posix.FS.
func (r *Recorder) Mkdir(path string, mode uint32) error {
	err := r.inner.Mkdir(path, mode)
	if err == nil {
		// The trailing slash marks directory creates for Summarize.
		r.record(OpCreate, path+"/", 0)
	}
	return err
}

// Rmdir implements posix.FS.
func (r *Recorder) Rmdir(path string) error {
	r.record(OpMeta, path, 0)
	return r.inner.Rmdir(path)
}

// Readdir implements posix.FS.
func (r *Recorder) Readdir(path string) ([]posix.DirEntry, error) {
	r.record(OpMeta, path, 0)
	return r.inner.Readdir(path)
}

// Rename implements posix.FS.
func (r *Recorder) Rename(oldpath, newpath string) error {
	r.record(OpMeta, oldpath, 0)
	return r.inner.Rename(oldpath, newpath)
}

// Access implements posix.FS.
func (r *Recorder) Access(path string, mode int) error {
	r.record(OpMeta, path, 0)
	return r.inner.Access(path, mode)
}

var _ posix.FS = (*Recorder)(nil)

// --- aggregation -------------------------------------------------------------

// Summary aggregates a recorded stream into model inputs.
type Summary struct {
	FileCreates  int   // new files (MDS creates on Lustre)
	DirCreates   int   // new directories
	Opens        int   // opens of existing files
	MetaOps      int   // stats, unlinks, syncs, ...
	BytesWritten int64 //
	BytesRead    int64 //
	WriteCalls   int   //
	ReadCalls    int   //
	// WriteStreams is the number of distinct files written — the active
	// stream count that drives the OSS contention term.
	WriteStreams int
	// MedianWrite is the median write call size (cache-absorbability).
	MedianWrite int64
	// DroppingFiles counts files under hostdir.* (PLFS internal streams).
	DroppingFiles int
}

// Summarize aggregates events.
func Summarize(events []Event) Summary {
	var s Summary
	writeFiles := map[string]bool{}
	created := map[string]bool{}
	var writeSizes []int64
	for _, e := range events {
		switch e.Kind {
		case OpCreate:
			if strings.Contains(e.Path, "dropping.") {
				s.DroppingFiles++
			}
			// Mkdir records OpCreate too; distinguish by a heuristic: the
			// recorder only calls Mkdir for directories.
			if created[e.Path] {
				continue
			}
			created[e.Path] = true
			if strings.HasSuffix(e.Path, "/") {
				s.DirCreates++
			} else {
				s.FileCreates++
			}
		case OpOpen:
			s.Opens++
		case OpWrite:
			s.BytesWritten += e.Bytes
			s.WriteCalls++
			writeFiles[e.Path] = true
			writeSizes = append(writeSizes, e.Bytes)
		case OpRead:
			s.BytesRead += e.Bytes
			s.ReadCalls++
		case OpMeta:
			s.MetaOps++
		}
	}
	s.WriteStreams = len(writeFiles)
	if len(writeSizes) > 0 {
		sort.Slice(writeSizes, func(i, j int) bool { return writeSizes[i] < writeSizes[j] })
		s.MedianWrite = writeSizes[len(writeSizes)/2]
	}
	return s
}
