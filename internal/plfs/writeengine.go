// The concurrent write engine: per-writer sharded locking, batched index
// appends, and parallel multi-extent vectored writes.
//
// A PLFS write has none of the read path's cross-writer coupling — every
// pid appends payload to its own data dropping and index records to its
// own index dropping. The engine makes the client side match that shape:
// Write/Sync hold the File lock *shared* and serialize only on the
// owning writer's lock, so N pids funneled through one handle stream N
// droppings fully in parallel; the logical clock is a lone atomic; and
// index records group-flush per Options.IndexBatch instead of hitting
// the backend per record. WriteV goes further: it reserves one physical
// range in the dropping up front and fans the per-segment pwrites out
// across Options.WriteWorkers (positional writes carry no file pointer —
// posix.FS requires concurrent-pwrite safety).
package plfs

import (
	"fmt"

	"ldplfs/internal/iostats"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// writeWorkers resolves the vectored-write fan-out: the runtime
// override (the autotune controller / SetWriteWorkers) wins over the
// static Options value.
func (p *FS) writeWorkers() int {
	if n := p.knobWriteWorkers.Load(); n > 0 {
		return int(n)
	}
	if p.cfg.Engine.WriteWorkers > 0 {
		return p.cfg.Engine.WriteWorkers
	}
	return defaultWorkers()
}

// indexBatchRecords returns the group-flush threshold in records, or 0
// when auto-flushing is disabled (Options.IndexBatch < 0). The runtime
// override (autotune / SetIndexBatch) wins over the static value.
func (p *FS) indexBatchRecords() int {
	if n := p.knobIndexBatch.Load(); n > 0 {
		return int(n)
	}
	switch {
	case p.cfg.Engine.IndexBatch > 0:
		return p.cfg.Engine.IndexBatch
	case p.cfg.Engine.IndexBatch < 0:
		return 0
	}
	return DefaultIndexBatch
}

// lockWriter returns pid's writer with the handle lock held shared and
// the writer's own lock held, creating the writer on first use. unlock
// releases both. With Options.DisableWriteSharding the handle lock is
// taken exclusive instead — the pre-engine serialized baseline.
func (f *File) lockWriter(pid uint32) (*writer, func(), error) {
	if f.fs.cfg.Engine.DisableWriteSharding {
		f.mu.Lock()
		w, err := f.getWriterLocked(pid)
		if err != nil {
			f.mu.Unlock()
			return nil, nil, err
		}
		return w, f.mu.Unlock, nil
	}
	for {
		f.mu.RLock()
		if w, ok := f.writers[pid]; ok {
			w.mu.Lock()
			return w, func() { w.mu.Unlock(); f.mu.RUnlock() }, nil
		}
		f.mu.RUnlock()
		// First write from this pid: create the writer under the
		// exclusive lock, then loop back to the shared fast path (a
		// concurrent Trunc/Close may retire it before we re-acquire).
		f.mu.Lock()
		_, err := f.getWriterLocked(pid)
		f.mu.Unlock()
		if err != nil {
			return nil, nil, err
		}
	}
}

// pwriteAll lands buf at off with positional writes, returning how many
// bytes reached the file — the durable prefix, even on error.
func pwriteAll(backend posix.FS, fd int, buf []byte, off int64) (int, error) {
	put := 0
	for put < len(buf) {
		n, err := backend.Pwrite(fd, buf[put:], off+int64(put))
		if n > 0 {
			put += n
		}
		if err != nil {
			return put, err
		}
		if n <= 0 {
			return put, fmt.Errorf("pwrite returned %d", n)
		}
	}
	return put, nil
}

// writeData lands buf at the writer's physical cursor. Caller holds the
// writer's lock; the cursor itself is advanced by the caller once the
// durable extent is recorded.
func (w *writer) writeData(backend posix.FS, buf []byte) (int, error) {
	return pwriteAll(backend, w.dataFD, buf, w.physOff)
}

// appendEntryLocked buffers one index record for n bytes at logical
// offset off whose payload landed at physOff, stamping the clock and
// the writer's size hint. Caller holds the writer's lock (or the handle
// lock exclusive).
func (f *File) appendEntryLocked(w *writer, off, n, physOff int64, pid uint32) {
	w.idxW.Append(idx.Entry{
		LogicalOffset:  off,
		Length:         n,
		PhysicalOffset: physOff,
		Timestamp:      f.fs.clock.Add(1),
		Pid:            pid,
	})
	if end := off + n; end > w.maxEnd {
		w.maxEnd = end
	}
}

// recordExtentLocked buffers one index record for n bytes at logical
// offset off, advances the writer's cursor, bumps the handle's write
// generation, and group-flushes the index buffer at the batch
// threshold. Caller holds the writer's lock (or the handle lock
// exclusive).
func (f *File) recordExtentLocked(w *writer, off, n int64, pid uint32) {
	f.appendEntryLocked(w, off, n, w.physOff, pid)
	w.physOff += n
	f.wgen.Add(1)
	f.maybeFlushIndexLocked(w)
}

// maybeFlushIndexLocked group-flushes the writer's buffered index
// records once they reach the batch threshold. The flush is an append
// without fsync; a failure leaves the unwritten records buffered for the
// next flush or Sync, which will surface a persistent error. Flushed
// records are on the backend, so the shared index generation is bumped —
// readers of other handles see them, exactly as after a Sync.
func (f *File) maybeFlushIndexLocked(w *writer) {
	batch := f.fs.indexBatchRecords()
	if batch <= 0 || w.idxW.BufferedRecords() < batch {
		return
	}
	// Invalidate whenever bytes reached the backend, error or not: a
	// short flush still made records visible to rebuilds.
	if n, _ := w.idxW.Flush(); n > 0 {
		f.fs.invalidateIndex(f.path)
	}
}

// WriteSeg is one extent of a vectored write: Data lands at logical
// offset Off.
type WriteSeg struct {
	Off  int64
	Data []byte
}

// WriteV appends every segment's payload to pid's data dropping and
// buffers one index record per segment — a vectored plfs_write for
// strided access patterns (one MPI-IO flattened datatype = one WriteV).
// The physical range for the whole vector is reserved up front, so the
// per-segment pwrites land at precomputed dropping offsets concurrently
// (Options.WriteWorkers) while the writer's lock is held once for the
// whole vector rather than once per segment.
//
// Partial-failure semantics mirror Read's short-read contract: every
// byte that reached the dropping is indexed — including a failing
// segment's durable prefix and any segments past the failure — so the
// logical file always reflects exactly the durable data. The returned
// count is the length of the contiguous error-free prefix of the vector,
// and the error describes the first failing segment.
func (f *File) WriteV(segs []WriteSeg, pid uint32) (int64, error) {
	start := f.fs.opStart()
	n, err := f.writeV(segs, pid)
	f.fs.observeOp(iostats.Write, n, start, err)
	return n, err
}

func (f *File) writeV(segs []WriteSeg, pid uint32) (int64, error) {
	if f.flags&posix.O_ACCMODE == posix.O_RDONLY {
		return 0, posix.EBADF
	}
	var total int64
	for _, s := range segs {
		if s.Off < 0 {
			return 0, posix.EINVAL
		}
		total += int64(len(s.Data))
	}
	if total == 0 {
		return 0, nil
	}
	w, unlock, err := f.lockWriter(pid)
	if err != nil {
		return 0, err
	}
	defer unlock()

	// Reserve [base, base+total) in the dropping: each segment's
	// physical home is fixed before any byte moves, which is what makes
	// the fan-out safe. The cursor advances by the full reservation even
	// on error — a failed segment leaves an unreferenced gap, never a
	// desynchronized cursor.
	base := w.physOff
	offs := make([]int64, len(segs))
	cursor := base
	for i, s := range segs {
		offs[i] = cursor
		cursor += int64(len(s.Data))
	}

	ns := make([]int, len(segs))
	errs := make([]error, len(segs))
	runParallel(len(segs), f.fs.writeWorkers(), func(i int) {
		ns[i], errs[i] = pwriteAll(f.fs.backend, w.dataFD, segs[i].Data, offs[i])
	})

	for i, s := range segs {
		if ns[i] == 0 {
			continue
		}
		f.appendEntryLocked(w, s.Off, int64(ns[i]), offs[i], pid)
	}
	w.physOff = base + total
	f.wgen.Add(1)
	f.maybeFlushIndexLocked(w)

	var written int64
	for i := range segs {
		written += int64(ns[i])
		if errs[i] != nil {
			return written, fmt.Errorf("plfs: writev segment %d (logical %d): %w", i, segs[i].Off, errs[i])
		}
	}
	return written, nil
}
