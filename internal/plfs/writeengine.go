// The concurrent write engine: per-writer sharded locking, batched index
// appends, and parallel multi-extent vectored writes.
//
// A PLFS write has none of the read path's cross-writer coupling — every
// pid appends payload to its own data dropping and index records to its
// own index dropping. The engine makes the client side match that shape:
// Write/Sync hold the File lock *shared* and serialize only on the
// owning writer's lock, so N pids funneled through one handle stream N
// droppings fully in parallel; the logical clock is a lone atomic; and
// index records group-flush per Options.IndexBatch instead of hitting
// the backend per record. WriteV goes further: it reserves one physical
// range in the dropping up front and fans the per-segment pwrites out
// across Options.WriteWorkers (positional writes carry no file pointer —
// posix.FS requires concurrent-pwrite safety).
package plfs

import (
	"fmt"
	"sync"

	"ldplfs/internal/iostats"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// writeWorkers resolves the vectored-write fan-out: the runtime
// override (the autotune controller / SetWriteWorkers) wins over the
// static Options value.
func (p *FS) writeWorkers() int {
	if n := p.knobWriteWorkers.Load(); n > 0 {
		return int(n)
	}
	if p.cfg.Engine.WriteWorkers > 0 {
		return p.cfg.Engine.WriteWorkers
	}
	return defaultWorkers()
}

// indexBatchRecords returns the group-flush threshold in records, or 0
// when auto-flushing is disabled (Options.IndexBatch < 0). The runtime
// override (autotune / SetIndexBatch) wins over the static value.
func (p *FS) indexBatchRecords() int {
	if n := p.knobIndexBatch.Load(); n > 0 {
		return int(n)
	}
	switch {
	case p.cfg.Engine.IndexBatch > 0:
		return p.cfg.Engine.IndexBatch
	case p.cfg.Engine.IndexBatch < 0:
		return 0
	}
	return DefaultIndexBatch
}

// lockWriter returns pid's writer with the handle lock held shared and
// the writer's own lock held, creating the writer on first use. unlock
// releases both. With Options.DisableWriteSharding the handle lock is
// taken exclusive instead — the pre-engine serialized baseline.
func (f *File) lockWriter(pid uint32) (*writer, func(), error) {
	if f.fs.cfg.Engine.DisableWriteSharding {
		f.mu.Lock()
		w, err := f.getWriterLocked(pid)
		if err != nil {
			f.mu.Unlock()
			return nil, nil, err
		}
		return w, f.mu.Unlock, nil
	}
	for {
		f.mu.RLock()
		if w, ok := f.writers[pid]; ok {
			w.mu.Lock()
			return w, func() { w.mu.Unlock(); f.mu.RUnlock() }, nil
		}
		f.mu.RUnlock()
		// First write from this pid: create the writer under the
		// exclusive lock, then loop back to the shared fast path (a
		// concurrent Trunc/Close may retire it before we re-acquire).
		f.mu.Lock()
		_, err := f.getWriterLocked(pid)
		f.mu.Unlock()
		if err != nil {
			return nil, nil, err
		}
	}
}

// pwriteAll lands buf at off with positional writes, returning how many
// bytes reached the file — the durable prefix, even on error.
func pwriteAll(backend posix.FS, fd int, buf []byte, off int64) (int, error) {
	put := 0
	for put < len(buf) {
		n, err := backend.Pwrite(fd, buf[put:], off+int64(put))
		if n > 0 {
			put += n
		}
		if err != nil {
			return put, err
		}
		if n <= 0 {
			return put, fmt.Errorf("pwrite returned %d", n)
		}
	}
	return put, nil
}

// writeData lands buf at the writer's physical cursor. Caller holds the
// writer's lock; the cursor itself is advanced by the caller once the
// durable extent is recorded.
func (w *writer) writeData(backend posix.FS, buf []byte) (int, error) {
	return pwriteAll(backend, w.dataFD, buf, w.physOff)
}

// appendEntryLocked buffers one index record for n bytes at logical
// offset off whose payload landed at physOff, stamping the clock and
// the writer's size hint. Caller holds the writer's lock (or the handle
// lock exclusive).
func (f *File) appendEntryLocked(w *writer, off, n, physOff int64, pid uint32) {
	w.idxW.Append(idx.Entry{
		LogicalOffset:  off,
		Length:         n,
		PhysicalOffset: physOff,
		Timestamp:      f.fs.clock.Add(1),
		Pid:            pid,
	})
	if end := off + n; end > w.maxEnd {
		w.maxEnd = end
	}
}

// recordExtentLocked buffers one index record for n bytes at logical
// offset off, advances the writer's cursor, bumps the handle's write
// generation, and group-flushes the index buffer at the batch
// threshold. Caller holds the writer's lock (or the handle lock
// exclusive).
func (f *File) recordExtentLocked(w *writer, off, n int64, pid uint32) {
	f.appendEntryLocked(w, off, n, w.physOff, pid)
	w.physOff += n
	f.wgen.Add(1)
	f.maybeFlushIndexLocked(w)
}

// maybeFlushIndexLocked group-flushes the writer's buffered index
// records once they reach the batch threshold. The flush is an append
// without fsync; a failure leaves the unwritten records buffered for the
// next flush or Sync, which will surface a persistent error. Flushed
// records are on the backend, so the shared index generation is bumped —
// readers of other handles see them, exactly as after a Sync.
func (f *File) maybeFlushIndexLocked(w *writer) {
	batch := f.fs.indexBatchRecords()
	if batch <= 0 || w.idxW.BufferedRecords() < batch {
		return
	}
	// Invalidate whenever bytes reached the backend, error or not: a
	// short flush still made records visible to rebuilds.
	if n, _ := w.idxW.Flush(); n > 0 {
		f.fs.invalidateIndex(f.path)
	}
}

// WriteSeg is one extent of a vectored write: Data lands at logical
// offset Off.
type WriteSeg struct {
	Off  int64
	Data []byte
}

// WriteV appends every segment's payload to pid's data dropping and
// buffers one index record per segment — a vectored plfs_write for
// strided access patterns (one MPI-IO flattened datatype = one WriteV).
// The physical range for the whole vector is reserved up front, so the
// per-segment pwrites land at precomputed dropping offsets concurrently
// (Options.WriteWorkers) while the writer's lock is held once for the
// whole vector rather than once per segment.
//
// Partial-failure semantics mirror Read's short-read contract: every
// byte that reached the dropping is indexed — including a failing
// chunk's durable prefix and any chunks past the failure — so the
// logical file always reflects exactly the durable data. The returned
// count is the length of the contiguous error-free prefix of the vector,
// and the error describes the first failing segment. A chunk that fails
// mid-vector leaves its remaining segments unwritten and unindexed;
// EngineOptions.BatchDepth = 1 restores the pre-vectored engine's fully
// independent per-segment durability.
func (f *File) WriteV(segs []WriteSeg, pid uint32) (int64, error) {
	start := f.fs.opStart()
	n, err := f.writeV(segs, pid)
	f.fs.observeOp(iostats.Write, n, start, err)
	return n, err
}

// writePlan is the reusable scratch of one vectored write: per-segment
// physical offsets, durable counts and buffer references plus per-chunk
// errors. Pooled so a warm WriteV allocates only its worker closures.
type writePlan struct {
	offs []int64  // per-segment physical offset in the dropping
	ns   []int    // per-segment durable byte count
	bufs [][]byte // per-segment payload references
	errs []error  // per-chunk error
}

var writePlanPool = sync.Pool{New: func() any { return new(writePlan) }}

// release clears payload references (so the pool never retains caller
// buffers) and returns the plan to the pool.
func (plan *writePlan) release() {
	for i := range plan.bufs {
		plan.bufs[i] = nil
	}
	for i := range plan.errs {
		plan.errs[i] = nil
	}
	plan.bufs = plan.bufs[:0]
	writePlanPool.Put(plan)
}

func (f *File) writeV(segs []WriteSeg, pid uint32) (int64, error) {
	if f.flags&posix.O_ACCMODE == posix.O_RDONLY {
		return 0, posix.EBADF
	}
	var total int64
	for _, s := range segs {
		if s.Off < 0 {
			return 0, posix.EINVAL
		}
		total += int64(len(s.Data))
	}
	if total == 0 {
		return 0, nil
	}
	w, unlock, err := f.lockWriter(pid)
	if err != nil {
		return 0, err
	}
	defer unlock()

	depth := f.fs.batchDepth()
	if depth <= 0 {
		depth = 1
	}
	nchunks := (len(segs) + depth - 1) / depth

	plan := writePlanPool.Get().(*writePlan)
	defer plan.release()
	plan.offs = growInt64s(plan.offs, len(segs))
	plan.ns = growInts(plan.ns, len(segs))
	plan.errs = growErrs(plan.errs, nchunks)
	if cap(plan.bufs) < len(segs) {
		plan.bufs = make([][]byte, len(segs))
	}
	plan.bufs = plan.bufs[:len(segs)]

	// Reserve [base, base+total) in the dropping: each segment's
	// physical home is fixed before any byte moves, which is what makes
	// the fan-out safe — and what makes each chunk of BatchDepth
	// consecutive segments physically contiguous, i.e. one pwritev. The
	// cursor advances by the full reservation even on error — a failed
	// chunk leaves an unreferenced gap, never a desynchronized cursor.
	base := w.physOff
	cursor := base
	for i, s := range segs {
		plan.offs[i] = cursor
		plan.bufs[i] = s.Data
		cursor += int64(len(s.Data))
	}

	issue := func(ci int) {
		lo := ci * depth
		hi := lo + depth
		if hi > len(segs) {
			hi = len(segs)
		}
		if hi-lo == 1 {
			// A lone segment goes through the scalar path — op-identical
			// to the pre-vectored engine (BatchDepth 1 is the baseline).
			plan.ns[lo], plan.errs[ci] = pwriteAll(f.fs.backend, w.dataFD, segs[lo].Data, plan.offs[lo])
			return
		}
		span := plan.offs[hi-1] + int64(len(segs[hi-1].Data)) - plan.offs[lo]
		n, err := posix.Pwritev(f.fs.backend, w.dataFD, plan.bufs[lo:hi], plan.offs[lo])
		if err == nil && n < span {
			err = fmt.Errorf("short write: want %d got %d", span, n)
		}
		// The durable prefix lands in segment order: credit it greedily.
		rem := n
		for i := lo; i < hi; i++ {
			if l := int64(len(segs[i].Data)); rem >= l {
				plan.ns[i] = int(l)
				rem -= l
			} else {
				plan.ns[i] = int(rem)
				rem = 0
			}
		}
		plan.errs[ci] = err
	}
	if wk := f.fs.writeWorkers(); wk <= 1 || nchunks == 1 {
		for ci := 0; ci < nchunks; ci++ {
			issue(ci)
		}
	} else {
		runParallel(nchunks, wk, issue)
	}

	for i, s := range segs {
		if plan.ns[i] == 0 {
			continue
		}
		f.appendEntryLocked(w, s.Off, int64(plan.ns[i]), plan.offs[i], pid)
	}
	w.physOff = base + total
	f.wgen.Add(1)
	f.maybeFlushIndexLocked(w)

	var written int64
	for i := range segs {
		written += int64(plan.ns[i])
		if plan.errs[i/depth] != nil && plan.ns[i] < len(segs[i].Data) {
			return written, fmt.Errorf("plfs: writev segment %d (logical %d): %w", i, segs[i].Off, plan.errs[i/depth])
		}
	}
	// Defensive: a chunk error with every segment fully durable still
	// surfaces, attributed to the chunk's first segment.
	for ci := 0; ci < nchunks; ci++ {
		if plan.errs[ci] != nil {
			i := ci * depth
			return written, fmt.Errorf("plfs: writev segment %d (logical %d): %w", i, segs[i].Off, plan.errs[ci])
		}
	}
	return written, nil
}
