package plfs

import (
	"bytes"
	"fmt"
	"testing"

	"ldplfs/internal/posix"
)

func TestOpenhostsTracksActiveWriters(t *testing.T) {
	p, mem := newTestFS(t)
	f, err := p.Open("/backend/oh", posix.O_CREAT|posix.O_RDWR, 5, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// No writer until the first write.
	if p.hasOpenWriters("/backend/oh") {
		t.Fatal("openhosts populated before first write")
	}
	f.Write([]byte("x"), 0, 5)
	if !p.hasOpenWriters("/backend/oh") {
		t.Fatal("openhosts empty with an active writer")
	}
	if _, err := mem.Stat("/backend/oh/openhosts/host.5"); err != nil {
		t.Fatalf("openhosts record missing: %v", err)
	}
	f.Close(5)
	if p.hasOpenWriters("/backend/oh") {
		t.Fatal("openhosts record survives close")
	}
}

func TestStatSeesLiveWritesViaOpenhosts(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/live", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write(make([]byte, 100), 0, 1)
	f.Close(1)
	// Stat from the hint: 100.
	if st, _ := p.Stat("/backend/live"); st.Size != 100 {
		t.Fatalf("hinted size = %d", st.Size)
	}
	// A new writer extends the file but has not closed: the stale hint
	// says 100; openhosts forces the index merge which sees 500.
	g, _ := p.Open("/backend/live", posix.O_WRONLY, 2, 0o644)
	g.Write(make([]byte, 400), 100, 2)
	g.Sync(2)
	st, err := p.Stat("/backend/live")
	if err != nil || st.Size != 500 {
		t.Fatalf("live stat = %d, %v; want 500 (index merge)", st.Size, err)
	}
	g.Close(2)
	// After close, the refreshed hint also says 500.
	st, _ = p.Stat("/backend/live")
	if st.Size != 500 {
		t.Fatalf("post-close stat = %d", st.Size)
	}
}

func TestCompactIndexPreservesContent(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/c", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	// Many writers, overlapping writes, so the merge is nontrivial.
	want := make([]byte, 8192)
	for i := 0; i < 16; i++ {
		pid := uint32(i % 5)
		buf := bytes.Repeat([]byte{byte(i + 1)}, 1024)
		off := int64(i%8) * 1024
		f.Write(buf, off, pid)
		copy(want[off:], buf)
	}
	for pid := uint32(0); pid < 5; pid++ {
		f.Close(pid)
	}

	before, err := p.IndexDroppings("/backend/c")
	if err != nil {
		t.Fatal(err)
	}
	if before < 2 {
		t.Fatalf("want multiple index droppings before compaction, got %d", before)
	}
	if err := p.CompactIndex("/backend/c"); err != nil {
		t.Fatal(err)
	}
	after, _ := p.IndexDroppings("/backend/c")
	if after != 1 {
		t.Fatalf("index droppings after compaction = %d, want 1", after)
	}

	g, err := p.Open("/backend/c", posix.O_RDONLY, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := g.Read(got, 0); err != nil || n != len(want) {
		t.Fatalf("read after compaction = %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("compaction changed logical content")
	}
	g.Close(9)

	st, err := p.Stat("/backend/c")
	if err != nil || st.Size != int64(len(want)) {
		t.Fatalf("stat after compaction = %+v, %v", st, err)
	}
}

func TestCompactIndexRefusesActiveWriters(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/busy", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write([]byte("x"), 0, 1)
	if err := p.CompactIndex("/backend/busy"); err == nil {
		t.Fatal("compaction allowed with active writer")
	}
	f.Close(1)
	if err := p.CompactIndex("/backend/busy"); err != nil {
		t.Fatalf("compaction after close: %v", err)
	}
}

func TestCompactIndexMissingContainer(t *testing.T) {
	p, _ := newTestFS(t)
	if err := p.CompactIndex("/backend/absent"); err == nil {
		t.Fatal("compaction of missing container succeeded")
	}
}

func TestWriteAfterCompaction(t *testing.T) {
	// New writers append fresh droppings after a compaction; reads merge
	// the flattened index with the new records.
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/wac", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write([]byte("old"), 0, 1)
	f.Close(1)
	if err := p.CompactIndex("/backend/wac"); err != nil {
		t.Fatal(err)
	}
	g, _ := p.Open("/backend/wac", posix.O_WRONLY, 2, 0o644)
	g.Write([]byte("new"), 3, 2)
	g.Close(2)
	h, _ := p.Open("/backend/wac", posix.O_RDONLY, 3, 0)
	got := make([]byte, 6)
	if n, err := h.Read(got, 0); err != nil || n != 6 || string(got) != "oldnew" {
		t.Fatalf("read = %q (%d), %v", got[:n], n, err)
	}
	h.Close(3)
}

func BenchmarkReadOpenAfterCompaction(b *testing.B) {
	// The motivation for flatten_index: first-read cost scales with the
	// number of index droppings.
	build := func(compact bool) *FS {
		mem := posix.NewMemFS()
		mem.Mkdir("/backend", 0o755)
		p := New(mem, Options{NumHostdirs: 32})
		f, _ := p.Open("/backend/f", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
		for w := 0; w < 64; w++ {
			f.Write(make([]byte, 4096), int64(w)*4096, uint32(w))
		}
		for w := 0; w < 64; w++ {
			f.Close(uint32(w))
		}
		if compact {
			if err := p.CompactIndex("/backend/f"); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	for _, mode := range []struct {
		name    string
		compact bool
	}{{"sharded", false}, {"compacted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := build(mode.compact)
			buf := make([]byte, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := p.Open("/backend/f", posix.O_RDONLY, 99, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Read(buf, 0); err != nil {
					b.Fatal(err)
				}
				f.Close(99)
			}
		})
	}
}

func TestIndexDroppingsCount(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/n", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	for pid := uint32(0); pid < 6; pid++ {
		f.Write([]byte(fmt.Sprintf("w%d", pid)), int64(pid)*2, pid)
	}
	for pid := uint32(0); pid < 6; pid++ {
		f.Close(pid)
	}
	n, err := p.IndexDroppings("/backend/n")
	if err != nil || n != 6 {
		t.Fatalf("IndexDroppings = %d, %v; want 6", n, err)
	}
}
