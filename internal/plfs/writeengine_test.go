package plfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ldplfs/internal/posix"
)

func writePLFS(t *testing.T, opts Options) (*FS, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	if opts.NumHostdirs == 0 {
		opts.NumHostdirs = 4
	}
	return New(mem, opts), mem
}

// TestConcurrentWritersStress is the race-detector stress test of the
// write engine: many pids write strided blocks through one File handle
// while Syncs and Reads run concurrently, and the final contents must be
// exactly the strided pattern. Run with -race in CI.
func TestConcurrentWritersStress(t *testing.T) {
	for _, sharded := range []bool{true, false} {
		name := "sharded"
		if !sharded {
			name = "serialized"
		}
		t.Run(name, func(t *testing.T) {
			p, _ := writePLFS(t, Options{DisableWriteSharding: !sharded, IndexBatch: 8})
			const (
				writers   = 8
				blocks    = 32
				blockSize = 512
			)
			f, err := p.Open("/backend/stress", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, writers*blocks*blockSize)
			var wg sync.WaitGroup
			errc := make(chan error, writers+2)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					payload := bytes.Repeat([]byte{byte(w + 1)}, blockSize)
					for blk := 0; blk < blocks; blk++ {
						off := int64((blk*writers + w) * blockSize)
						copy(want[off:], payload)
						if n, err := f.Write(payload, off, uint32(w)); err != nil || n != blockSize {
							errc <- fmt.Errorf("writer %d block %d: n=%d err=%v", w, blk, n, err)
							return
						}
						if blk%8 == 7 {
							if err := f.Sync(uint32(w)); err != nil {
								errc <- fmt.Errorf("writer %d sync: %v", w, err)
								return
							}
						}
					}
				}(w)
			}
			// Readers race the writers; they only check that Read never
			// fails or returns non-pattern garbage for covered bytes.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]byte, 4096)
					for i := 0; i < 20; i++ {
						if _, err := f.Read(buf, int64(i*1024)); err != nil {
							errc <- fmt.Errorf("concurrent read: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			if n, err := f.Read(got, 0); err != nil || n != len(want) {
				t.Fatalf("final read: n=%d err=%v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("concurrent writers corrupted the strided pattern")
			}
			for w := 0; w < writers; w++ {
				if err := f.Close(uint32(w)); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestWriteVRoundTrip checks that one vectored write is equivalent to
// the segment-by-segment writes it replaces, including hole handling.
func TestWriteVRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p, _ := writePLFS(t, Options{WriteWorkers: workers})
			f, err := p.Open("/backend/vec", posix.O_CREAT|posix.O_RDWR, 7, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// Strided segments with a gap (a hole at [3000,4000)).
			segs := []WriteSeg{
				{Off: 0, Data: bytes.Repeat([]byte{'a'}, 1000)},
				{Off: 2000, Data: bytes.Repeat([]byte{'b'}, 1000)},
				{Off: 4000, Data: bytes.Repeat([]byte{'c'}, 1000)},
			}
			n, err := f.WriteV(segs, 7)
			if err != nil || n != 3000 {
				t.Fatalf("WriteV = %d, %v", n, err)
			}
			want := make([]byte, 5000)
			copy(want[0:], segs[0].Data)
			copy(want[2000:], segs[1].Data)
			copy(want[4000:], segs[2].Data)
			got := make([]byte, 5000)
			if n, err := f.Read(got, 0); err != nil || n != 5000 {
				t.Fatalf("read back: n=%d err=%v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("vectored write round trip mismatch")
			}
			// Overwrite via WriteV must win last-writer-wins.
			if _, err := f.WriteV([]WriteSeg{{Off: 500, Data: bytes.Repeat([]byte{'z'}, 2000)}}, 7); err != nil {
				t.Fatal(err)
			}
			copy(want[500:2500], bytes.Repeat([]byte{'z'}, 2000))
			if n, err := f.Read(got, 0); err != nil || n != 5000 {
				t.Fatalf("read after overwrite: n=%d err=%v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("vectored overwrite lost last-writer-wins")
			}
			if err := f.Close(7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWriteVPartialFailure checks the vector's failure contract: the
// returned count is the contiguous error-free prefix, and every durable
// byte — including segments past the failure — is indexed.
func TestWriteVPartialFailure(t *testing.T) {
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	ffs := posix.NewFaultFS(mem)
	// BatchDepth 1 pins the pre-vectored per-segment engine: this test
	// asserts the independent-segment durability contract that
	// coalescing intentionally trades away (see TestWriteVChunkFailure
	// for the vectored contract).
	p := New(ffs, Options{NumHostdirs: 2, WriteWorkers: 1, BatchDepth: 1})
	f, err := p.Open("/backend/vfail", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Serial workers: segment order is deterministic, so failing the
	// second data pwrite fails segment 1.
	ffs.Inject(&posix.FaultRule{Op: posix.FaultWrite, PathContains: "dropping.data", After: 1, Times: 1, Err: posix.EIO})
	segs := []WriteSeg{
		{Off: 0, Data: bytes.Repeat([]byte{'x'}, 100)},
		{Off: 100, Data: bytes.Repeat([]byte{'y'}, 100)},
		{Off: 200, Data: bytes.Repeat([]byte{'w'}, 100)},
	}
	n, err := f.WriteV(segs, 1)
	if !errors.Is(err, posix.EIO) {
		t.Fatalf("WriteV with injected fault = %d, %v", n, err)
	}
	if n != 100 {
		t.Fatalf("contiguous prefix = %d, want 100", n)
	}
	ffs.Clear()
	// Segments 0 and 2 are durable and must be indexed; segment 1 is a
	// hole reading as zeros.
	got := make([]byte, 300)
	if n, err := f.Read(got, 0); err != nil || n != 300 {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	want := append(append(bytes.Repeat([]byte{'x'}, 100), make([]byte, 100)...), bytes.Repeat([]byte{'w'}, 100)...)
	if !bytes.Equal(got, want) {
		t.Fatal("durable segments not indexed correctly after mid-vector failure")
	}
	// The next write must not overlap segment 2's payload in the
	// dropping (cursor advanced by the full reservation).
	if _, err := f.Write(bytes.Repeat([]byte{'q'}, 50), 300, 1); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 150)
	if n, err := f.Read(tail, 200); err != nil || n != 150 {
		t.Fatalf("tail read: n=%d err=%v", n, err)
	}
	wantTail := append(bytes.Repeat([]byte{'w'}, 100), bytes.Repeat([]byte{'q'}, 50)...)
	if !bytes.Equal(tail, wantTail) {
		t.Fatal("post-failure write clobbered reserved dropping space")
	}
	f.Close(1)
}

// TestWriteVChunkFailure pins the coalesced vector's failure contract:
// with the default BatchDepth the whole vector is one pwritev, a
// partial backend failure leaves a durable prefix that can end
// mid-segment, exactly that prefix is indexed, and the cursor still
// advances by the full reservation.
func TestWriteVChunkFailure(t *testing.T) {
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	ffs := posix.NewFaultFS(mem)
	p := New(ffs, Options{NumHostdirs: 2, WriteWorkers: 1})
	f, err := p.Open("/backend/vchunk", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// The three segments coalesce into one pwritev; 150 of its 300
	// bytes land before the injected error.
	ffs.Inject(&posix.FaultRule{Op: posix.FaultWrite, PathContains: "dropping.data", Partial: 150, Times: 1, Err: posix.EIO})
	segs := []WriteSeg{
		{Off: 0, Data: bytes.Repeat([]byte{'x'}, 100)},
		{Off: 100, Data: bytes.Repeat([]byte{'y'}, 100)},
		{Off: 200, Data: bytes.Repeat([]byte{'w'}, 100)},
	}
	n, err := f.WriteV(segs, 1)
	if !errors.Is(err, posix.EIO) {
		t.Fatalf("WriteV with partial chunk = %d, %v", n, err)
	}
	if n != 150 {
		t.Fatalf("contiguous prefix = %d, want 150 (mid-segment durable prefix)", n)
	}
	ffs.Clear()
	// Segment 0 and segment 1's first half are durable and indexed;
	// nothing past the failure landed, so logical EOF sits at 150.
	if size, err := f.Size(); err != nil || size != 150 {
		t.Fatalf("size after chunk failure = %d, %v; want 150", size, err)
	}
	got := make([]byte, 150)
	if rn, err := f.Read(got, 0); err != nil || rn != 150 {
		t.Fatalf("read back: n=%d err=%v", rn, err)
	}
	want := append(bytes.Repeat([]byte{'x'}, 100), bytes.Repeat([]byte{'y'}, 50)...)
	if !bytes.Equal(got, want) {
		t.Fatal("indexed extents diverge from the durable prefix")
	}
	// The cursor advanced by the full reservation: the next write must
	// not overlap the failed chunk's gap, and the unindexed range reads
	// as a hole.
	if _, err := f.Write(bytes.Repeat([]byte{'q'}, 50), 300, 1); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 200)
	if rn, err := f.Read(tail, 150); err != nil || rn != 200 {
		t.Fatalf("tail read: n=%d err=%v", rn, err)
	}
	wantTail := append(make([]byte, 150), bytes.Repeat([]byte{'q'}, 50)...)
	if !bytes.Equal(tail, wantTail) {
		t.Fatal("post-failure write landed wrong or gap not a hole")
	}
	f.Close(1)
}

// TestShortIndexFlushHealsOnRetry checks the torn-tail contract end to
// end: a group flush that lands a partial record must not poison
// concurrent readers (they see only whole records), and the writer's
// retained remainder heals the dropping on the next flush.
func TestShortIndexFlushHealsOnRetry(t *testing.T) {
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	ffs := posix.NewFaultFS(mem)
	p := New(ffs, Options{NumHostdirs: 2, IndexBatch: 2})
	f, err := p.Open("/backend/shortflush", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first"), 0, 1); err != nil {
		t.Fatal(err)
	}
	// The second write reaches the batch threshold; its group flush
	// lands 10 bytes of the two-record burst and errors.
	ffs.Inject(&posix.FaultRule{
		Op: posix.FaultWrite, PathContains: "dropping.index",
		Partial: 10, Times: 1, Err: posix.EIO,
	})
	if _, err := f.Write([]byte("second"), 5, 1); err != nil {
		t.Fatal(err)
	}
	ffs.Clear()
	// A fresh reader over the torn dropping must not fail — it sees the
	// whole records only (here: none of the burst completed).
	g, err := p.Open("/backend/shortflush", posix.O_RDONLY, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(make([]byte, 11), 0); err != nil {
		t.Fatalf("read over in-flight torn tail: %v", err)
	}
	// The writer's retained remainder heals the dropping on sync.
	if err := f.Sync(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if n, err := g.Read(got, 0); err != nil || n != 11 {
		t.Fatalf("read after heal: n=%d err=%v", n, err)
	}
	if string(got) != "firstsecond" {
		t.Fatalf("content after heal = %q", got)
	}
	g.Close(9)
	f.Close(1)
}

// TestIndexBatchGroupFlush checks that index records hit the backend in
// batches: the on-backend dropping grows only at multiples of the batch
// threshold until a Sync drains the remainder.
func TestIndexBatchGroupFlush(t *testing.T) {
	p, mem := writePLFS(t, Options{IndexBatch: 4})
	f, err := p.Open("/backend/batched", posix.O_CREAT|posix.O_WRONLY, 3, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := "/backend/batched/hostdir.3/dropping.index.3"
	recordsOnBackend := func() int64 {
		st, err := mem.Stat(idxPath)
		if err != nil {
			t.Fatal(err)
		}
		return (st.Size - 16) / 48 // headerSize, EntrySize
	}
	buf := []byte("payload")
	for i := 0; i < 10; i++ {
		if _, err := f.Write(buf, int64(i*len(buf)), 3); err != nil {
			t.Fatal(err)
		}
	}
	// 10 writes at batch 4: two group flushes (8 records), 2 buffered.
	if got := recordsOnBackend(); got != 8 {
		t.Fatalf("records on backend after 10 writes = %d, want 8 (two batches)", got)
	}
	if err := f.Sync(3); err != nil {
		t.Fatal(err)
	}
	if got := recordsOnBackend(); got != 10 {
		t.Fatalf("records on backend after sync = %d, want 10", got)
	}
	// A fresh reader over the same backend sees everything, batch
	// flushes included (close-to-open revalidation).
	g, err := p.Open("/backend/batched", posix.O_RDONLY, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := g.Size(); err != nil || size != int64(10*len(buf)) {
		t.Fatalf("size = %d, %v", size, err)
	}
	g.Close(99)
	f.Close(3)
}

// TestTruncZeroClearsOpenHosts is the regression test for the openhosts
// leak: Trunc(0) retires every writer and must clear their records, or
// hasOpenWriters reports true forever, Stat permanently takes the slow
// merged path and CompactIndex refuses the container.
func TestTruncZeroClearsOpenHosts(t *testing.T) {
	p, _ := writePLFS(t, Options{})
	f, err := p.Open("/backend/leak", posix.O_CREAT|posix.O_RDWR, 5, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed"), 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := f.Trunc(0); err != nil {
		t.Fatal(err)
	}
	recs, err := p.OpenHosts("/backend/leak")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("openhosts records after Trunc(0) = %+v, want none", recs)
	}
	// The container must be compactable again once new data lands and
	// the handle closes.
	if _, err := f.Write([]byte("fresh"), 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(5); err != nil {
		t.Fatal(err)
	}
	if err := p.CompactIndex("/backend/leak"); err != nil {
		t.Fatalf("compact after trunc(0) lifecycle: %v", err)
	}
}

// TestTruncRebindsLiveIndexWriters is the regression test for the
// orphaned-index-writer bug: a non-zero Trunc consolidates (and unlinks)
// every index dropping, so surviving writers must be rebound to fresh
// droppings or all their post-truncate writes are invisible.
func TestTruncRebindsLiveIndexWriters(t *testing.T) {
	p, _ := writePLFS(t, Options{})
	f, err := p.Open("/backend/shrink", posix.O_CREAT|posix.O_RDWR, 9, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{'a'}, 1000), 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := f.Trunc(600); err != nil {
		t.Fatal(err)
	}
	// The same still-open writer appends after the truncate...
	if _, err := f.Write(bytes.Repeat([]byte{'b'}, 100), 600, 9); err != nil {
		t.Fatal(err)
	}
	// ...and both this handle and a fresh reader must see it.
	got := make([]byte, 700)
	if n, err := f.Read(got, 0); err != nil || n != 700 {
		t.Fatalf("same-handle read: n=%d err=%v", n, err)
	}
	want := append(bytes.Repeat([]byte{'a'}, 600), bytes.Repeat([]byte{'b'}, 100)...)
	if !bytes.Equal(got, want) {
		t.Fatal("post-truncate write invisible to same handle")
	}
	if err := f.Sync(9); err != nil {
		t.Fatal(err)
	}
	g, err := p.Open("/backend/shrink", posix.O_RDONLY, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, 700)
	if n, err := g.Read(got2, 0); err != nil || n != 700 {
		t.Fatalf("fresh-handle read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("post-truncate write invisible to fresh reader")
	}
	g.Close(10)
	// The size hint a clamped writer drops at close must not resurrect
	// the pre-truncate size.
	if err := f.Close(9); err != nil {
		t.Fatal(err)
	}
	st, err := p.Stat("/backend/shrink")
	if err != nil || st.Size != 700 {
		t.Fatalf("stat after close = %+v, %v (want size 700)", st, err)
	}
}

// TestTruncAcrossHandlesRebindsAllWriters checks that truncation is
// container-level within an instance: a Trunc issued through one handle
// (or by path) must rebind writers held by *other* open handles, not
// leave them appending to unlinked index droppings.
func TestTruncAcrossHandlesRebindsAllWriters(t *testing.T) {
	for _, byPath := range []bool{false, true} {
		name := "via-handle"
		if byPath {
			name = "via-path"
		}
		t.Run(name, func(t *testing.T) {
			p, _ := writePLFS(t, Options{})
			a, err := p.Open("/backend/xh", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.Write(bytes.Repeat([]byte{'a'}, 1000), 0, 1); err != nil {
				t.Fatal(err)
			}
			if byPath {
				if err := p.Truncate("/backend/xh", 600); err != nil {
					t.Fatal(err)
				}
			} else {
				b, err := p.Open("/backend/xh", posix.O_RDWR, 2, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := b.Trunc(600); err != nil {
					t.Fatal(err)
				}
				if err := b.Close(2); err != nil {
					t.Fatal(err)
				}
			}
			// Handle A's writer must have been rebound: its next write
			// has to be visible to readers.
			if _, err := a.Write(bytes.Repeat([]byte{'b'}, 100), 600, 1); err != nil {
				t.Fatal(err)
			}
			if err := a.Sync(1); err != nil {
				t.Fatal(err)
			}
			want := append(bytes.Repeat([]byte{'a'}, 600), bytes.Repeat([]byte{'b'}, 100)...)
			got := make([]byte, 700)
			if n, err := a.Read(got, 0); err != nil || n != 700 {
				t.Fatalf("read: n=%d err=%v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("write through handle A lost after truncate through another path")
			}
			a.Close(1)
		})
	}
}

// TestOpenTruncRetiresOtherHandles checks the O_TRUNC flavor of the
// same container-level contract: opening with O_TRUNC retires every
// existing handle's writers (their droppings are gone), so their
// subsequent writes start fresh instead of resurrecting stale state.
func TestOpenTruncRetiresOtherHandles(t *testing.T) {
	p, _ := writePLFS(t, Options{})
	a, err := p.Open("/backend/ot", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(bytes.Repeat([]byte{'a'}, 500), 0, 1); err != nil {
		t.Fatal(err)
	}
	b, err := p.Open("/backend/ot", posix.O_RDWR|posix.O_TRUNC, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A's next write recreates its writer against the emptied container.
	if _, err := a.Write(bytes.Repeat([]byte{'z'}, 100), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	n, err := b.Read(got, 0)
	if err != nil || n != 100 {
		t.Fatalf("read after O_TRUNC: n=%d err=%v (want 100)", n, err)
	}
	if !bytes.Equal(got[:n], bytes.Repeat([]byte{'z'}, 100)) {
		t.Fatal("write after O_TRUNC invisible or stale")
	}
	a.Close(1)
	b.Close(2)
}

// TestDoctorFlagsStaleOpenHosts checks the operator-facing detector for
// pre-fix damage: an openhosts record whose pid has no data dropping is
// stale, and scrubbing removes exactly those.
func TestDoctorFlagsStaleOpenHosts(t *testing.T) {
	p, mem := writePLFS(t, Options{})
	f, err := p.Open("/backend/sick", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("live"), 0, 1); err != nil {
		t.Fatal(err)
	}
	// Simulate the historical Trunc(0) leak: a record for pid 42 whose
	// droppings are gone.
	fd, err := mem.Open("/backend/sick/openhosts/host.42", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mem.Close(fd)
	recs, err := p.OpenHosts("/backend/sick")
	if err != nil {
		t.Fatal(err)
	}
	staleByPid := map[uint32]bool{}
	for _, r := range recs {
		staleByPid[r.Pid] = r.Stale
	}
	if len(recs) != 2 || staleByPid[42] != true || staleByPid[1] != false {
		t.Fatalf("doctor diagnosis = %+v, want pid 42 stale and pid 1 live", recs)
	}
	removed, err := p.ScrubOpenHosts("/backend/sick")
	if err != nil || removed != 1 {
		t.Fatalf("scrub = %d, %v (want 1 removed)", removed, err)
	}
	recs, err = p.OpenHosts("/backend/sick")
	if err != nil || len(recs) != 1 || recs[0].Pid != 1 {
		t.Fatalf("records after scrub = %+v, %v (want only live pid 1)", recs, err)
	}
	f.Close(1)
}

// TestClockResumesAcrossInstances checks that a fresh FS instance (clock
// at zero) appending to an existing container cannot lose the
// last-writer-wins merge against records from a previous run.
func TestClockResumesAcrossInstances(t *testing.T) {
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	p1 := New(mem, Options{NumHostdirs: 2})
	f, err := p1.Open("/backend/resume", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{'o'}, 100), 0, 1); err != nil {
		t.Fatal(err)
	}
	f.Close(1)

	// A new instance — a later process — overwrites the same range,
	// once with the same pid (resumed dropping) and once with a pid
	// that has no dropping of its own: the clock seed must cover both.
	for round, pid := range []uint32{1, 7} {
		want := byte('A' + round)
		p2 := New(mem, Options{NumHostdirs: 2})
		g, err := p2.Open("/backend/resume", posix.O_WRONLY, pid, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Write(bytes.Repeat([]byte{want}, 100), 0, pid); err != nil {
			t.Fatal(err)
		}
		g.Close(pid)

		p3 := New(mem, Options{NumHostdirs: 2})
		r, err := p3.Open("/backend/resume", posix.O_RDONLY, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 100)
		if n, err := r.Read(got, 0); err != nil || n != 100 {
			t.Fatalf("round %d read: n=%d err=%v", round, n, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{want}, 100)) {
			t.Fatalf("round %d (pid %d): overwrite lost the timestamp race against the previous run", round, pid)
		}
		r.Close(100)
	}
}
