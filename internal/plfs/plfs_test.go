package plfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ldplfs/internal/posix"
)

func newTestFS(t *testing.T) (*FS, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	return New(mem, Options{NumHostdirs: 4}), mem
}

func TestWriteReadSingleWriter(t *testing.T) {
	p, _ := newTestFS(t)
	f, err := p.Open("/backend/file", posix.O_CREAT|posix.O_RDWR, 100, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox")
	if n, err := f.Write(payload, 0, 100); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(payload))
	if n, err := f.Read(got, 0); err != nil || n != len(payload) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Read = %q, want %q", got, payload)
	}
	if size, err := f.Size(); err != nil || size != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if err := f.Close(100); err != nil {
		t.Fatal(err)
	}
}

func TestContainerStructureOnDisk(t *testing.T) {
	p, mem := newTestFS(t)
	f, err := p.Open("/backend/out", posix.O_CREAT|posix.O_WRONLY, 7, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"), 0, 7)
	f.Close(7)

	// The "file" is a directory containing the marker, version, meta and
	// one hostdir with a data and an index dropping — Figure 1 structure.
	st, err := mem.Stat("/backend/out")
	if err != nil || !st.IsDir() {
		t.Fatalf("container is not a directory: %v", err)
	}
	for _, want := range []string{".plfsaccess", "version", "meta"} {
		if _, err := mem.Stat("/backend/out/" + want); err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
	}
	hostdir := fmt.Sprintf("/backend/out/hostdir.%d", 7%4)
	entries, err := mem.Readdir(hostdir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	if !names["dropping.data.7"] || !names["dropping.index.7"] {
		t.Fatalf("hostdir entries = %v", names)
	}
	if !p.IsContainer("/backend/out") {
		t.Fatal("IsContainer = false")
	}
	if p.IsContainer("/backend") {
		t.Fatal("plain dir reported as container")
	}
}

func TestMultiWriterPartitioning(t *testing.T) {
	p, mem := newTestFS(t)
	f, err := p.Open("/backend/shared", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Six writers, interleaved strided writes — the paper's Figure 1
	// pattern (6 blocks, 3 hosts).
	const block = 1024
	for i := 0; i < 6; i++ {
		pid := uint32(i)
		buf := bytes.Repeat([]byte{byte('A' + i)}, block)
		if _, err := f.Write(buf, int64(i*block), pid); err != nil {
			t.Fatal(err)
		}
	}
	// Each writer produced its own data dropping.
	droppings := 0
	for h := 0; h < 4; h++ {
		entries, err := mem.Readdir(fmt.Sprintf("/backend/shared/hostdir.%d", h))
		if errors.Is(err, posix.ENOENT) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if len(e.Name) > 14 && e.Name[:14] == "dropping.data." {
				droppings++
			}
		}
	}
	if droppings != 6 {
		t.Fatalf("data droppings = %d, want 6 (one per writer)", droppings)
	}
	// Logical view is the concatenation.
	got := make([]byte, 6*block)
	if n, err := f.Read(got, 0); err != nil || n != len(got) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	for i := 0; i < 6; i++ {
		if got[i*block] != byte('A'+i) || got[(i+1)*block-1] != byte('A'+i) {
			t.Fatalf("block %d corrupted: %c", i, got[i*block])
		}
	}
	f.Close(0)
}

func TestOverwriteLastWriterWins(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/ow", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write(bytes.Repeat([]byte{'x'}, 100), 0, 1)
	f.Write(bytes.Repeat([]byte{'y'}, 10), 45, 2)
	got := make([]byte, 100)
	if _, err := f.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte('x')
		if i >= 45 && i < 55 {
			want = 'y'
		}
		if b != want {
			t.Fatalf("byte %d = %c, want %c", i, b, want)
		}
	}
	f.Close(1)
	f.Close(2)
}

func TestHolesReadAsZeros(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/holes", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write([]byte("tail"), 1000, 1)
	got := make([]byte, 1004)
	n, err := f.Read(got, 0)
	if err != nil || n != 1004 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	for i := 0; i < 1000; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, got[i])
		}
	}
	if string(got[1000:]) != "tail" {
		t.Fatalf("tail = %q", got[1000:])
	}
	f.Close(1)
}

func TestReadBeyondEOF(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/eof", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write([]byte("12345"), 0, 1)
	buf := make([]byte, 10)
	n, err := f.Read(buf, 3)
	if err != nil || n != 2 {
		t.Fatalf("Read near EOF = %d, %v; want 2", n, err)
	}
	n, err = f.Read(buf, 5)
	if err != nil || n != 0 {
		t.Fatalf("Read at EOF = %d, %v; want 0", n, err)
	}
	n, err = f.Read(buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("Read past EOF = %d, %v; want 0", n, err)
	}
	f.Close(1)
}

func TestOpenSemantics(t *testing.T) {
	p, mem := newTestFS(t)
	if _, err := p.Open("/backend/nope", posix.O_RDONLY, 1, 0); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("open missing = %v, want ENOENT", err)
	}
	f, err := p.Open("/backend/new", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("abc"), 0, 1)
	f.Close(1)
	if _, err := p.Open("/backend/new", posix.O_CREAT|posix.O_EXCL|posix.O_WRONLY, 1, 0o644); !errors.Is(err, posix.EEXIST) {
		t.Fatalf("O_EXCL on existing = %v, want EEXIST", err)
	}
	// A plain directory is not openable as a PLFS file.
	mem.Mkdir("/backend/plaindir", 0o755)
	if _, err := p.Open("/backend/plaindir", posix.O_WRONLY, 1, 0); !errors.Is(err, posix.EISDIR) {
		t.Fatalf("open plain dir = %v, want EISDIR", err)
	}
	// O_TRUNC empties the container.
	f, err = p.Open("/backend/new", posix.O_WRONLY|posix.O_TRUNC, 2, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Stat("/backend/new")
	if err != nil || st.Size != 0 {
		t.Fatalf("after O_TRUNC: size=%d err=%v", st.Size, err)
	}
	f.Close(2)
	// Write-only handles refuse reads and vice versa.
	f, _ = p.Open("/backend/new", posix.O_WRONLY, 3, 0o644)
	if _, err := f.Read(make([]byte, 1), 0); !errors.Is(err, posix.EBADF) {
		t.Fatalf("read on wronly = %v, want EBADF", err)
	}
	f.Close(3)
	f, _ = p.Open("/backend/new", posix.O_RDONLY, 3, 0)
	if _, err := f.Write([]byte("x"), 0, 3); !errors.Is(err, posix.EBADF) {
		t.Fatalf("write on rdonly = %v, want EBADF", err)
	}
	f.Close(3)
}

func TestStatUsesMetaHints(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/st", posix.O_CREAT|posix.O_WRONLY, 9, 0o644)
	f.Write(make([]byte, 12345), 0, 9)
	f.Close(9)
	st, err := p.Stat("/backend/st")
	if err != nil || st.Size != 12345 {
		t.Fatalf("Stat = %+v, %v; want size 12345", st, err)
	}
	if st.IsDir() {
		t.Fatal("container stats as directory; should present as a file")
	}
}

func TestStatWithoutMetaFallsBackToIndex(t *testing.T) {
	p, mem := newTestFS(t)
	f, _ := p.Open("/backend/nm", posix.O_CREAT|posix.O_WRONLY, 9, 0o644)
	f.Write(make([]byte, 777), 0, 9)
	f.Sync(9)
	// Simulate a crashed writer: remove meta dir contents, never close.
	entries, _ := mem.Readdir("/backend/nm/meta")
	for _, e := range entries {
		mem.Unlink("/backend/nm/meta/" + e.Name)
	}
	st, err := p.Stat("/backend/nm")
	if err != nil || st.Size != 777 {
		t.Fatalf("Stat = %+v, %v; want 777 via index merge", st, err)
	}
	f.Close(9)
}

func TestUnlinkRemovesContainer(t *testing.T) {
	p, mem := newTestFS(t)
	f, _ := p.Open("/backend/gone", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write([]byte("x"), 0, 1)
	f.Close(1)
	if err := p.Unlink("/backend/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Stat("/backend/gone"); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("container dir survives unlink: %v", err)
	}
	if err := p.Unlink("/backend/gone"); !errors.Is(err, posix.ENOENT) {
		t.Fatalf("double unlink = %v, want ENOENT", err)
	}
}

func TestRename(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/a", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write([]byte("content"), 0, 1)
	f.Close(1)
	if err := p.Rename("/backend/a", "/backend/b"); err != nil {
		t.Fatal(err)
	}
	if p.IsContainer("/backend/a") {
		t.Fatal("source survives rename")
	}
	f, err := p.Open("/backend/b", posix.O_RDONLY, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if n, _ := f.Read(buf, 0); n != 7 || string(buf) != "content" {
		t.Fatalf("renamed content = %q", buf[:n])
	}
	f.Close(2)
}

func TestTruncateToZero(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/tz", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write(make([]byte, 5000), 0, 1)
	if err := f.Trunc(0); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 0 {
		t.Fatalf("size after trunc = %d", size)
	}
	// Writing after a truncate works and lands at the right offset.
	f.Write([]byte("fresh"), 2, 1)
	got := make([]byte, 7)
	if n, _ := f.Read(got, 0); n != 7 || string(got[2:]) != "fresh" {
		t.Fatalf("after trunc+write: %q (n=%d)", got[:n], n)
	}
	f.Close(1)
}

func TestTruncatePartial(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/tp", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write(bytes.Repeat([]byte{'a'}, 100), 0, 1)
	f.Write(bytes.Repeat([]byte{'b'}, 100), 100, 2)
	f.Close(2)
	if err := f.Trunc(150); err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil || size != 150 {
		t.Fatalf("size = %d, %v; want 150", size, err)
	}
	got := make([]byte, 200)
	n, err := f.Read(got, 0)
	if err != nil || n != 150 {
		t.Fatalf("Read = %d, %v; want 150", n, err)
	}
	for i := 0; i < 100; i++ {
		if got[i] != 'a' {
			t.Fatalf("byte %d = %c", i, got[i])
		}
	}
	for i := 100; i < 150; i++ {
		if got[i] != 'b' {
			t.Fatalf("byte %d = %c", i, got[i])
		}
	}
	f.Close(1)
	// Stat agrees after close.
	st, err := p.Stat("/backend/tp")
	if err != nil || st.Size != 150 {
		t.Fatalf("Stat after trunc = %d, %v", st.Size, err)
	}
}

func TestFlatten(t *testing.T) {
	p, mem := newTestFS(t)
	f, _ := p.Open("/backend/fl", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	want := make([]byte, 100000)
	for i := range want {
		want[i] = byte(i * 7)
	}
	// Write out of order from two writers.
	f.Write(want[50000:], 50000, 2)
	f.Write(want[:50000], 0, 1)
	f.Close(1)
	f.Close(2)
	if err := p.Flatten("/backend/fl", "/backend/flat.bin"); err != nil {
		t.Fatal(err)
	}
	st, err := mem.Stat("/backend/flat.bin")
	if err != nil || st.Size != int64(len(want)) {
		t.Fatalf("flat stat = %+v, %v", st, err)
	}
	fd, _ := mem.Open("/backend/flat.bin", posix.O_RDONLY, 0)
	got := make([]byte, len(want))
	if err := posix.ReadFull(mem, fd, got, 0); err != nil {
		t.Fatal(err)
	}
	mem.Close(fd)
	if !bytes.Equal(got, want) {
		t.Fatal("flattened bytes differ from logical content")
	}
}

func TestReopenAppendsToExistingDroppings(t *testing.T) {
	p, _ := newTestFS(t)
	f, _ := p.Open("/backend/re", posix.O_CREAT|posix.O_WRONLY, 5, 0o644)
	f.Write([]byte("first"), 0, 5)
	f.Close(5)
	// Same pid reopens: index dropping must accumulate, not truncate.
	f, err := p.Open("/backend/re", posix.O_WRONLY, 5, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("second"), 5, 5)
	f.Close(5)
	f, _ = p.Open("/backend/re", posix.O_RDONLY, 5, 0)
	got := make([]byte, 11)
	if n, err := f.Read(got, 0); err != nil || n != 11 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if string(got) != "firstsecond" {
		t.Fatalf("content = %q", got)
	}
	f.Close(5)
}

// TestPLFSMatchesFlatFileModel is the central correctness property: any
// interleaving of writes from multiple pids, read back through PLFS, must
// equal the same writes applied to a flat file.
func TestPLFSMatchesFlatFileModel(t *testing.T) {
	const maxFile = 1 << 14
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _ := newTestFS(t)
		f, err := p.Open("/backend/model", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]byte, 0, maxFile)

		nOps := 50 + rng.Intn(100)
		for op := 0; op < nOps; op++ {
			pid := uint32(rng.Intn(5))
			off := int64(rng.Intn(maxFile / 2))
			length := 1 + rng.Intn(512)
			buf := make([]byte, length)
			rng.Read(buf)
			if _, err := f.Write(buf, off, pid); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if end := off + int64(length); end > int64(len(model)) {
				model = append(model, make([]byte, end-int64(len(model)))...)
			}
			copy(model[off:], buf)

			// Occasionally interleave a read of a random window.
			if rng.Intn(4) == 0 && len(model) > 0 {
				roff := int64(rng.Intn(len(model)))
				rlen := 1 + rng.Intn(600)
				got := make([]byte, rlen)
				n, err := f.Read(got, roff)
				if err != nil {
					t.Fatalf("seed %d: read: %v", seed, err)
				}
				wantN := len(model) - int(roff)
				if wantN > rlen {
					wantN = rlen
				}
				if n != wantN {
					t.Fatalf("seed %d: read n=%d want %d", seed, n, wantN)
				}
				if !bytes.Equal(got[:n], model[roff:roff+int64(n)]) {
					t.Fatalf("seed %d: read window diverged at off %d", seed, roff)
				}
			}
		}

		if size, _ := f.Size(); size != int64(len(model)) {
			t.Fatalf("seed %d: size %d, want %d", seed, size, len(model))
		}
		got := make([]byte, len(model))
		if _, err := f.Read(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, model) {
			t.Fatalf("seed %d: full content diverged", seed)
		}
		for pid := uint32(0); pid < 5; pid++ {
			f.Close(pid)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	p, _ := newTestFS(t)
	f, err := p.Open("/backend/conc", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const (
		ranks = 8
		block = 4096
	)
	done := make(chan error, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			buf := bytes.Repeat([]byte{byte(r + 1)}, block)
			_, err := f.Write(buf, int64(r*block), uint32(r))
			done <- err
		}(r)
	}
	for r := 0; r < ranks; r++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, ranks*block)
	if n, err := f.Read(got, 0); err != nil || n != len(got) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	for r := 0; r < ranks; r++ {
		for i := r * block; i < (r+1)*block; i++ {
			if got[i] != byte(r+1) {
				t.Fatalf("rank %d block corrupted at %d: %d", r, i, got[i])
			}
		}
	}
	for r := 0; r < ranks; r++ {
		f.Close(uint32(r))
	}
}
