package plfs

import (
	"bufio"
	"crypto/md5"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// The golden container fixture: a checked-in container tree (exact bytes
// and layout, generated once by -update-golden) that every future
// version of this package must read identically. The container format is
// load-bearing across releases — droppings written by an old build must
// resolve to the same logical bytes forever — so the fixture freezes
// size, content hash, the resolved extent table and the physical layout,
// and the test fails loudly on any deviation. Regenerating the fixture
// is a reviewed, deliberate act of changing the on-disk format.
var updateGolden = flag.Bool("update-golden", false, "regenerate the golden container fixture")

const (
	goldenDir         = "testdata/golden"
	goldenContainer   = "container.v1"
	goldenContainerV2 = "container.v2"
	goldenExpectV2    = "expect.v2.txt"
	goldenContainerV3 = "container.v3"
	goldenExpectV3    = "expect.v3.txt"
)

// goldenV3Rig builds the v3 fixture's store: a replica-2 layout over
// three backends. The fixture freezes the replicated on-disk shape —
// per-backend trees b0/b1/b2, each dropping present on exactly its two
// owners, plus the checksummed layout.desc record.
func goldenV3Rig(tb testing.TB, backends ...posix.FS) *FS {
	tb.Helper()
	layout, err := posix.LayoutFor("replica-2", len(backends))
	if err != nil {
		tb.Fatal(err)
	}
	striped := posix.NewLayoutFS(layout, posix.ReplicaOptions{}, backends...)
	return New(striped, Options{NumHostdirs: 4})
}

// goldenWriteScript produces the fixture container: multiple writers on
// colliding hostdirs, overlapping rewrites (last-writer-wins), a
// vectored strided write, a hole, and clean closes (meta size hints).
// It must stay byte-deterministic — single goroutine, fixed pids.
func goldenWriteScript(tb testing.TB, p *FS, container string) {
	tb.Helper()
	f, err := p.Open("/"+container, posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	write := func(pid uint32, off int64, pattern byte, n int) {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = pattern + byte(i%7)
		}
		if got, err := f.Write(buf, off, pid); err != nil || got != n {
			tb.Fatalf("golden write pid %d off %d: n=%d err=%v", pid, off, got, err)
		}
	}
	write(1, 0, 'a', 1000)  // pid 1 -> hostdir.1
	write(2, 800, 'B', 500) // pid 2 -> hostdir.2, overlaps pid 1's tail
	write(5, 0, 'z', 64)    // pid 5 -> hostdir.1 (collision), rewrites head
	segs := []WriteSeg{     // strided vectored write, pid 2
		{Off: 2000, Data: []byte(strings.Repeat("st", 100))},
		{Off: 2500, Data: []byte(strings.Repeat("ride", 50))},
	}
	if _, err := f.WriteV(segs, 2); err != nil {
		tb.Fatal(err)
	}
	write(1, 850, 'Q', 100) // second overlap: pid 1 wins back a window
	for _, pid := range []uint32{1, 2, 5} {
		if err := f.Sync(pid); err != nil {
			tb.Fatal(err)
		}
	}
	for _, pid := range []uint32{1, 2, 5} {
		if err := f.Close(pid); err != nil {
			tb.Fatal(err)
		}
	}
}

// describeContainer renders the observable format contract of the
// container as text: logical size, content hash, resolved extents and
// the physical dropping layout.
func describeContainer(tb testing.TB, p *FS, path string) string {
	tb.Helper()
	var sb strings.Builder
	st, err := p.Stat(path)
	if err != nil {
		tb.Fatal(err)
	}
	fmt.Fprintf(&sb, "size %d\n", st.Size)

	f, err := p.Open(path, posix.O_RDONLY, 0, 0)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close(0)
	content := make([]byte, st.Size)
	if n, err := f.Read(content, 0); err != nil || int64(n) != st.Size {
		tb.Fatalf("golden read = %d, %v (want %d)", n, err, st.Size)
	}
	fmt.Fprintf(&sb, "md5 %x\n", md5.Sum(content))

	entries, err := p.readAllEntries(path)
	if err != nil {
		tb.Fatal(err)
	}
	global := idx.Build(entries)
	for _, x := range global.Extents() {
		fmt.Fprintf(&sb, "extent %d %d %d %d\n", x.LogicalOffset, x.Length, x.PhysicalOffset, x.Pid)
	}

	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		tb.Fatal(err)
	}
	for _, d := range droppings {
		dst, err := p.backend.Stat(d)
		if err != nil {
			tb.Fatal(err)
		}
		fmt.Fprintf(&sb, "dropping %s %d\n", strings.TrimPrefix(d, path+"/"), dst.Size)
	}
	// v2 containers carry a flattened global index; freeze its observable
	// contract too (a v1 container emits no line here).
	if h, err := p.IndexHealth(path); err == nil && h.Flattened != nil {
		fmt.Fprintf(&sb, "flattened gen %d extents %d size %d fresh %v\n",
			h.Flattened.Generation, h.Flattened.Extents, h.Flattened.Size, h.Flattened.Fresh)
	}
	return sb.String()
}

// dumpTree copies a MemFS subtree onto the host file system.
func dumpTree(tb testing.TB, fs posix.FS, from, to string) {
	tb.Helper()
	if err := os.MkdirAll(to, 0o755); err != nil {
		tb.Fatal(err)
	}
	entries, err := fs.Readdir(from)
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range entries {
		src, dst := from+"/"+e.Name, filepath.Join(to, e.Name)
		if e.IsDir {
			dumpTree(tb, fs, src, dst)
			continue
		}
		st, err := fs.Stat(src)
		if err != nil {
			tb.Fatal(err)
		}
		buf := make([]byte, st.Size)
		fd, err := fs.Open(src, posix.O_RDONLY, 0)
		if err != nil {
			tb.Fatal(err)
		}
		if st.Size > 0 {
			if err := posix.ReadFull(fs, fd, buf, 0); err != nil {
				tb.Fatal(err)
			}
		}
		fs.Close(fd)
		if err := os.WriteFile(dst, buf, 0o644); err != nil {
			tb.Fatal(err)
		}
	}
}

func regenerateGolden(t *testing.T) {
	if err := os.RemoveAll(goldenDir); err != nil {
		t.Fatal(err)
	}
	// container.v1 predates the flattened global index: regenerate it
	// with auto-flatten off, exactly the bytes the v1 code produced.
	mem := posix.NewMemFS()
	p := New(mem, Options{NumHostdirs: 4, DisableAutoFlatten: true})
	goldenWriteScript(t, p, goldenContainer)
	dumpTree(t, mem, "/"+goldenContainer, filepath.Join(goldenDir, goldenContainer))
	expect := describeContainer(t, p, "/"+goldenContainer)
	if err := os.WriteFile(filepath.Join(goldenDir, "expect.txt"), []byte(expect), 0o644); err != nil {
		t.Fatal(err)
	}
	// container.v2 is the same write history under the current format:
	// identical droppings plus the flattened record the last close
	// persists.
	mem2 := posix.NewMemFS()
	p2 := New(mem2, Options{NumHostdirs: 4})
	goldenWriteScript(t, p2, goldenContainerV2)
	dumpTree(t, mem2, "/"+goldenContainerV2, filepath.Join(goldenDir, goldenContainerV2))
	expect2 := describeContainer(t, p2, "/"+goldenContainerV2)
	if err := os.WriteFile(filepath.Join(goldenDir, goldenExpectV2), []byte(expect2), 0o644); err != nil {
		t.Fatal(err)
	}
	// container.v3 is the same write history under a replica-2 layout
	// over three backends: the fixture checks in each backend's physical
	// tree (b0/b1/b2) so the replicated placement itself is frozen.
	mems3 := make([]posix.FS, 3)
	for i := range mems3 {
		mems3[i] = posix.NewMemFS()
	}
	p3 := goldenV3Rig(t, mems3...)
	goldenWriteScript(t, p3, goldenContainerV3)
	for i, m := range mems3 {
		if _, err := m.Stat("/" + goldenContainerV3); err != nil {
			continue // a backend owning nothing has no tree to dump
		}
		// Each b<i> directory is that backend's root: the container dir
		// sits inside it, exactly as OSFS will serve it back.
		dumpTree(t, m, "/"+goldenContainerV3,
			filepath.Join(goldenDir, goldenContainerV3, fmt.Sprintf("b%d", i), goldenContainerV3))
	}
	expect3 := describeContainer(t, p3, "/"+goldenContainerV3)
	if err := os.WriteFile(filepath.Join(goldenDir, goldenExpectV3), []byte(expect3), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s:\nv1:\n%s\nv2:\n%s\nv3:\n%s", goldenDir, expect, expect2, expect3)
}

// TestGoldenContainerFormat reads the checked-in fixture through the
// current code and demands the exact recorded interpretation. It also
// pins the raw format constants, so an accidental change to the record
// encoding fails here even before the fixture diverges.
func TestGoldenContainerFormat(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
	}

	// Pin the physical format constants the fixture bytes embody.
	if idx.EntrySize != 48 {
		t.Fatalf("EntrySize changed to %d: the on-disk format is frozen at 48-byte records", idx.EntrySize)
	}
	if idx.Magic != 0x504c465349445831 {
		t.Fatalf("index magic changed to %#x", idx.Magic)
	}

	// Work on a copy so the checked-in bytes cannot be mutated.
	work := t.TempDir()
	if err := os.CopyFS(work, os.DirFS(goldenDir)); err != nil {
		t.Fatal(err)
	}
	osfs, err := posix.NewOSFS(work)
	if err != nil {
		t.Fatal(err)
	}
	p := New(osfs, Options{NumHostdirs: 4})
	if !p.IsContainer("/" + goldenContainer) {
		t.Fatalf("fixture is not recognised as a container")
	}

	wantBytes, err := os.ReadFile(filepath.Join(goldenDir, "expect.txt"))
	if err != nil {
		t.Fatalf("missing expectations (run: go test ./internal/plfs -run Golden -update-golden): %v", err)
	}
	got := describeContainer(t, p, "/"+goldenContainer)
	if got != string(wantBytes) {
		t.Fatalf("golden container no longer reads identically.\n-- want --\n%s\n-- got --\n%s", wantBytes, got)
	}

	// The version file and index headers are frozen bytes too.
	ver, err := os.ReadFile(filepath.Join(work, goldenContainer, "version"))
	if err != nil || string(ver) != versionText {
		t.Fatalf("container version file = %q, %v (want %q)", ver, err, versionText)
	}
	sawIndex := false
	sc := bufio.NewScanner(strings.NewReader(got))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 || fields[0] != "dropping" || !strings.Contains(fields[1], "dropping.index.") {
			continue
		}
		sawIndex = true
		raw, err := os.ReadFile(filepath.Join(work, goldenContainer, fields[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) < 16 {
			t.Fatalf("index dropping %s shorter than its header", fields[1])
		}
		if magic := binary.LittleEndian.Uint64(raw[0:]); magic != idx.Magic {
			t.Fatalf("index dropping %s magic = %#x", fields[1], magic)
		}
		if v := binary.LittleEndian.Uint64(raw[8:]); v != 1 {
			t.Fatalf("index dropping %s version = %d", fields[1], v)
		}
		if (len(raw)-16)%idx.EntrySize != 0 {
			t.Fatalf("index dropping %s not record-aligned: %d bytes", fields[1], len(raw))
		}
	}
	if !sawIndex {
		t.Fatal("fixture describes no index droppings")
	}

	// Regeneration determinism: replaying the write script today must
	// still produce byte-identical droppings (physical layout included),
	// not merely the same logical file. v1 containers are what the
	// pre-flatten code wrote, so the replay disables auto-flatten.
	mem := posix.NewMemFS()
	fresh := New(mem, Options{NumHostdirs: 4, DisableAutoFlatten: true})
	goldenWriteScript(t, fresh, goldenContainer)
	if regen := describeContainer(t, fresh, "/"+goldenContainer); regen != string(wantBytes) {
		t.Fatalf("write path no longer reproduces the golden container.\n-- want --\n%s\n-- got --\n%s", wantBytes, regen)
	}
}

// TestGoldenContainerV2 freezes the current container format: the same
// write history as v1 plus the flattened global index record the last
// close persists. It proves cross-version compatibility in both
// directions — the v2 fixture must read via its flattened record AND
// byte-identically with flattened reads disabled (the v1 read path),
// while TestGoldenContainerFormat above proves v1 containers (no record)
// still read unchanged.
func TestGoldenContainerV2(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures regenerated by TestGoldenContainerFormat")
	}

	// Pin the flattened on-disk format constants the fixture embodies.
	if idx.FlattenedHeaderSize != 48 || idx.FlattenedExtentSize != 32 {
		t.Fatalf("flattened format geometry changed (%d/%d): the on-disk format is frozen",
			idx.FlattenedHeaderSize, idx.FlattenedExtentSize)
	}
	if idx.FlattenedMagic != 0x504c4653464c5431 {
		t.Fatalf("flattened magic changed to %#x", idx.FlattenedMagic)
	}

	work := t.TempDir()
	if err := os.CopyFS(work, os.DirFS(goldenDir)); err != nil {
		t.Fatal(err)
	}
	osfs, err := posix.NewOSFS(work)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(filepath.Join(goldenDir, goldenExpectV2))
	if err != nil {
		t.Fatalf("missing v2 expectations (run: go test ./internal/plfs -run Golden -update-golden): %v", err)
	}

	// Default read path: the fixture's flattened record must be fresh
	// after a checkout (its raw signature is path- and mtime-invariant)
	// and actually serve the build.
	p := New(osfs, Options{NumHostdirs: 4})
	got := describeContainer(t, p, "/"+goldenContainerV2)
	if got != string(wantBytes) {
		t.Fatalf("v2 container no longer reads identically.\n-- want --\n%s\n-- got --\n%s", wantBytes, got)
	}
	if s := cacheStats(p); s.FlattenedBuilds == 0 {
		t.Fatalf("v2 fixture read did not load its flattened record: %+v", s)
	}

	// The v1 read regime (flattened ignored) must resolve the same bytes:
	// the record is an accelerator, never a semantic fork.
	pOff := New(osfs, Options{NumHostdirs: 4, DisableFlattenedReads: true})
	gotOff := describeContainer(t, pOff, "/"+goldenContainerV2)
	if gotOff != string(wantBytes) {
		t.Fatalf("v2 container reads differently with flattened disabled.\n-- want --\n%s\n-- got --\n%s", wantBytes, gotOff)
	}

	// Raw flattened file checks: name, geometry, magic, generation.
	raw, err := os.ReadFile(filepath.Join(work, goldenContainerV2, "index.flattened.1"))
	if err != nil {
		t.Fatalf("fixture lacks its flattened record: %v", err)
	}
	if (len(raw)-idx.FlattenedHeaderSize-8)%idx.FlattenedExtentSize != 0 {
		t.Fatalf("flattened record not extent-aligned: %d bytes", len(raw))
	}
	fl, err := idx.UnmarshalFlattened(raw)
	if err != nil {
		t.Fatalf("fixture flattened record does not parse: %v", err)
	}
	if fl.Generation != 1 {
		t.Fatalf("fixture flattened generation = %d", fl.Generation)
	}

	// Replay determinism for the current format: the write script must
	// reproduce the v2 description (flattened line included) today.
	mem := posix.NewMemFS()
	fresh := New(mem, Options{NumHostdirs: 4})
	goldenWriteScript(t, fresh, goldenContainerV2)
	if regen := describeContainer(t, fresh, "/"+goldenContainerV2); regen != string(wantBytes) {
		t.Fatalf("write path no longer reproduces the v2 container.\n-- want --\n%s\n-- got --\n%s", wantBytes, regen)
	}
}

// TestGoldenContainerV3 freezes the replicated container format: the
// v1/v2 write history under a replica-2 layout over three backends,
// checked in as per-backend physical trees. The fixture must read
// byte-identically to the v2 logical interpretation (replication never
// changes what the application sees), keep reading identically with a
// backend dark, and carry a parseable, canonical layout descriptor.
func TestGoldenContainerV3(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures regenerated by TestGoldenContainerFormat")
	}

	// Pin the descriptor record constants the fixture bytes embody.
	if posix.LayoutMagic != 0x504c46534c595431 {
		t.Fatalf("layout descriptor magic changed to %#x: the record format is frozen", uint64(posix.LayoutMagic))
	}
	if posix.LayoutVersion != 1 {
		t.Fatalf("layout descriptor version changed to %d", posix.LayoutVersion)
	}

	work := t.TempDir()
	if err := os.CopyFS(work, os.DirFS(filepath.Join(goldenDir, goldenContainerV3))); err != nil {
		t.Fatal(err)
	}
	openRig := func() (*FS, []*posix.FaultFS) {
		var faults []*posix.FaultFS
		backends := make([]posix.FS, 3)
		for i := range backends {
			root := filepath.Join(work, fmt.Sprintf("b%d", i))
			if err := os.MkdirAll(root, 0o755); err != nil {
				t.Fatal(err)
			}
			osfs, err := posix.NewOSFS(root)
			if err != nil {
				t.Fatal(err)
			}
			ff := posix.NewFaultFS(osfs)
			faults = append(faults, ff)
			backends[i] = ff
		}
		return goldenV3Rig(t, backends...), faults
	}

	wantBytes, err := os.ReadFile(filepath.Join(goldenDir, goldenExpectV3))
	if err != nil {
		t.Fatalf("missing v3 expectations (run: go test ./internal/plfs -run Golden -update-golden): %v", err)
	}

	p, _ := openRig()
	if !p.IsContainer("/" + goldenContainerV3) {
		t.Fatal("v3 fixture is not recognised as a container")
	}
	if got := describeContainer(t, p, "/"+goldenContainerV3); got != string(wantBytes) {
		t.Fatalf("v3 container no longer reads identically.\n-- want --\n%s\n-- got --\n%s", wantBytes, got)
	}
	if desc, err := p.ContainerLayout("/" + goldenContainerV3); err != nil || desc != "replica-2" {
		t.Fatalf("v3 ContainerLayout = %q, %v", desc, err)
	}
	h, err := p.ReplicationHealth("/" + goldenContainerV3)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Clean() || h.Files == 0 {
		t.Fatalf("checked-in v3 fixture is not fully replicated: %+v", h)
	}

	// The raw descriptor record on disk is the canonical marshalling.
	raw, err := os.ReadFile(filepath.Join(work, "b0", goldenContainerV3, "layout.desc"))
	if err != nil {
		t.Fatalf("fixture lacks its layout descriptor: %v", err)
	}
	if desc, err := posix.UnmarshalLayoutDescriptor(raw); err != nil || desc != "replica-2" {
		t.Fatalf("fixture descriptor = %q, %v", desc, err)
	}
	if want := posix.MarshalLayoutDescriptor("replica-2"); string(raw) != string(want) {
		t.Fatalf("fixture descriptor is not canonical: %x != %x", raw, want)
	}

	// The v3 interpretation is the v2 interpretation: replication must
	// not perturb size, hash, extents, dropping names or the flattened
	// record — only the physical copy count.
	wantV2, err := os.ReadFile(filepath.Join(goldenDir, goldenExpectV2))
	if err != nil {
		t.Fatal(err)
	}
	norm := strings.ReplaceAll(string(wantBytes), goldenContainerV3, goldenContainerV2)
	if norm != string(wantV2) {
		t.Fatalf("v3 logical contract diverged from v2.\n-- v2 --\n%s\n-- v3 --\n%s", wantV2, norm)
	}

	// Degraded read: with one backend dark the fixture must still read
	// byte-for-byte (each dropping has a surviving owner).
	for kill := 0; kill < 3; kill++ {
		pk, faults := openRig()
		faults[kill].Kill()
		if got := describeContainer(t, pk, "/"+goldenContainerV3); got != string(wantBytes) {
			t.Fatalf("v3 container reads differently with backend %d dark.\n-- want --\n%s\n-- got --\n%s",
				kill, wantBytes, got)
		}
	}

	// Replay determinism: the write script on a fresh replica-2 rig must
	// reproduce the recorded description today.
	mems := make([]posix.FS, 3)
	for i := range mems {
		mems[i] = posix.NewMemFS()
	}
	fresh := goldenV3Rig(t, mems...)
	goldenWriteScript(t, fresh, goldenContainerV3)
	if regen := describeContainer(t, fresh, "/"+goldenContainerV3); regen != string(wantBytes) {
		t.Fatalf("write path no longer reproduces the v3 container.\n-- want --\n%s\n-- got --\n%s", wantBytes, regen)
	}
}
