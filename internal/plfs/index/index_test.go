package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldplfs/internal/posix"
)

func TestEntryRoundTrip(t *testing.T) {
	e := Entry{LogicalOffset: 1 << 40, Length: 12345, PhysicalOffset: 987, Timestamp: 42, Pid: 7, Dropping: 3}
	var buf [EntrySize]byte
	e.Marshal(buf[:])
	var got Entry
	if err := got.Unmarshal(buf[:]); err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
}

func TestEntryChecksumDetectsCorruption(t *testing.T) {
	e := Entry{LogicalOffset: 10, Length: 20, Timestamp: 1}
	var buf [EntrySize]byte
	e.Marshal(buf[:])
	buf[3] ^= 0xff
	var got Entry
	if err := got.Unmarshal(buf[:]); err == nil {
		t.Fatal("corrupted record unmarshalled without error")
	}
}

func TestEntryMarshalQuick(t *testing.T) {
	f := func(lo, ln, po int64, ts uint64, pid, drop uint32) bool {
		e := Entry{LogicalOffset: lo, Length: ln, PhysicalOffset: po, Timestamp: ts, Pid: pid, Dropping: drop}
		var buf [EntrySize]byte
		e.Marshal(buf[:])
		var got Entry
		return got.Unmarshal(buf[:]) == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSingleWriter(t *testing.T) {
	// Three sequential writes, log-structured: physical offsets are the
	// running total regardless of logical position.
	entries := []Entry{
		{LogicalOffset: 100, Length: 10, PhysicalOffset: 0, Timestamp: 1, Pid: 1},
		{LogicalOffset: 0, Length: 10, PhysicalOffset: 10, Timestamp: 2, Pid: 1},
		{LogicalOffset: 50, Length: 10, PhysicalOffset: 20, Timestamp: 3, Pid: 1},
	}
	idx := Build(entries)
	if idx.Size() != 110 {
		t.Fatalf("Size = %d, want 110", idx.Size())
	}
	if idx.NumExtents() != 3 {
		t.Fatalf("NumExtents = %d, want 3", idx.NumExtents())
	}
	// Query the middle write.
	ext := idx.Query(50, 10)
	if len(ext) != 1 || ext[0].PhysicalOffset != 20 || ext[0].Hole {
		t.Fatalf("Query(50,10) = %+v", ext)
	}
	// Query across a hole.
	ext = idx.Query(5, 50)
	want := []struct {
		hole bool
		len  int64
	}{{false, 5}, {true, 40}, {false, 5}}
	if len(ext) != len(want) {
		t.Fatalf("Query(5,50) = %+v", ext)
	}
	for i, w := range want {
		if ext[i].Hole != w.hole || ext[i].Length != w.len {
			t.Fatalf("Query(5,50)[%d] = %+v, want hole=%v len=%d", i, ext[i], w.hole, w.len)
		}
	}
}

func TestBuildOverwriteLastTimestampWins(t *testing.T) {
	entries := []Entry{
		{LogicalOffset: 0, Length: 100, PhysicalOffset: 0, Timestamp: 1, Pid: 1},
		{LogicalOffset: 25, Length: 50, PhysicalOffset: 0, Timestamp: 2, Pid: 2},
	}
	// Build must be order-independent.
	for _, order := range [][]Entry{entries, {entries[1], entries[0]}} {
		idx := Build(order)
		ext := idx.Query(0, 100)
		if len(ext) != 3 {
			t.Fatalf("extents = %+v", ext)
		}
		if ext[0].Pid != 1 || ext[0].Length != 25 {
			t.Fatalf("left piece = %+v", ext[0])
		}
		if ext[1].Pid != 2 || ext[1].Length != 50 {
			t.Fatalf("overwrite piece = %+v", ext[1])
		}
		if ext[2].Pid != 1 || ext[2].Length != 25 || ext[2].PhysicalOffset != 75 {
			t.Fatalf("right piece = %+v", ext[2])
		}
	}
}

func TestBuildInteriorOverwriteSplits(t *testing.T) {
	idx := Build([]Entry{
		{LogicalOffset: 0, Length: 30, PhysicalOffset: 0, Timestamp: 1, Pid: 1},
		{LogicalOffset: 10, Length: 10, PhysicalOffset: 100, Timestamp: 5, Pid: 9},
	})
	ext := idx.Query(0, 30)
	if len(ext) != 3 {
		t.Fatalf("want split into 3, got %+v", ext)
	}
	if ext[1].PhysicalOffset != 100 || ext[1].Pid != 9 {
		t.Fatalf("middle = %+v", ext[1])
	}
	if ext[2].PhysicalOffset != 20 {
		t.Fatalf("right physical offset = %d, want 20", ext[2].PhysicalOffset)
	}
}

func TestTruncate(t *testing.T) {
	idx := Build([]Entry{
		{LogicalOffset: 0, Length: 50, Timestamp: 1, Pid: 1},
		{LogicalOffset: 50, Length: 50, PhysicalOffset: 50, Timestamp: 2, Pid: 1},
	})
	idx.Truncate(75)
	if idx.Size() != 75 {
		t.Fatalf("Size = %d, want 75", idx.Size())
	}
	ext := idx.Query(0, 200)
	var total int64
	for _, x := range ext {
		total += x.Length
		if x.Hole {
			t.Fatalf("unexpected hole after truncate: %+v", ext)
		}
	}
	if total != 75 {
		t.Fatalf("total = %d, want 75", total)
	}
	idx.Extend(200)
	if idx.Size() != 200 {
		t.Fatalf("Size after Extend = %d", idx.Size())
	}
	ext = idx.Query(75, 125)
	if len(ext) != 1 || !ext[0].Hole {
		t.Fatalf("extended region = %+v, want one hole", ext)
	}
}

func TestQueryEdgeCases(t *testing.T) {
	idx := Build([]Entry{{LogicalOffset: 0, Length: 10, Timestamp: 1}})
	if got := idx.Query(10, 5); got != nil {
		t.Fatalf("Query at EOF = %+v, want nil", got)
	}
	if got := idx.Query(-1, 5); got != nil {
		t.Fatalf("Query negative = %+v, want nil", got)
	}
	if got := idx.Query(0, 0); got != nil {
		t.Fatalf("Query zero length = %+v, want nil", got)
	}
	got := idx.Query(5, 100)
	if len(got) != 1 || got[0].Length != 5 {
		t.Fatalf("clipped query = %+v", got)
	}
	empty := Build(nil)
	if empty.Size() != 0 || empty.Query(0, 10) != nil {
		t.Fatal("empty index misbehaves")
	}
}

// TestIndexMatchesByteModel is the core property test: an arbitrary set of
// timestamped writes resolved through the index must reproduce exactly the
// bytes a flat file would hold.
func TestIndexMatchesByteModel(t *testing.T) {
	const fileSize = 1 << 12
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		model := make([]byte, fileSize) // model[i] = pid that last wrote byte i (0 = hole)
		var modelMax int64

		var entries []Entry
		var phys [16]int64 // per-pid physical cursor (log-structured)
		nWrites := 1 + rng.Intn(60)
		for w := 0; w < nWrites; w++ {
			pid := uint32(1 + rng.Intn(8))
			off := int64(rng.Intn(fileSize - 64))
			length := int64(1 + rng.Intn(64))
			entries = append(entries, Entry{
				LogicalOffset:  off,
				Length:         length,
				PhysicalOffset: phys[pid],
				Timestamp:      uint64(w + 1),
				Pid:            pid,
			})
			phys[pid] += length
			for i := off; i < off+length; i++ {
				model[i] = byte(pid)
			}
			if off+length > modelMax {
				modelMax = off + length
			}
		}

		// Shuffle to prove order independence.
		rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
		idx := Build(entries)

		if idx.Size() != modelMax {
			t.Fatalf("seed %d: Size = %d, want %d", seed, idx.Size(), modelMax)
		}
		ext := idx.Query(0, modelMax)
		var cur int64
		for _, x := range ext {
			if x.LogicalOffset != cur {
				t.Fatalf("seed %d: extent gap at %d (extent %+v)", seed, cur, x)
			}
			for i := int64(0); i < x.Length; i++ {
				want := model[x.LogicalOffset+i]
				if x.Hole {
					if want != 0 {
						t.Fatalf("seed %d: hole at %d but model has pid %d", seed, x.LogicalOffset+i, want)
					}
				} else if byte(x.Pid) != want {
					t.Fatalf("seed %d: byte %d resolved to pid %d, model says %d",
						seed, x.LogicalOffset+i, x.Pid, want)
				}
			}
			cur += x.Length
		}
		if cur != modelMax {
			t.Fatalf("seed %d: coverage %d, want %d", seed, cur, modelMax)
		}
	}
}

func TestDroppingRoundTrip(t *testing.T) {
	fs := posix.NewMemFS()
	w, err := NewWriter(fs, "/idx")
	if err != nil {
		t.Fatal(err)
	}
	var want []Entry
	for i := 0; i < 100; i++ {
		e := Entry{LogicalOffset: int64(i * 10), Length: 10, PhysicalOffset: int64(i * 10), Timestamp: uint64(i), Pid: 4}
		w.Append(e)
		want = append(want, e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDropping(fs, "/idx")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestDroppingRejectsGarbage(t *testing.T) {
	fs := posix.NewMemFS()
	fd, _ := fs.Open("/bad", posix.O_CREAT|posix.O_WRONLY, 0o644)
	fs.Write(fd, []byte("this is not an index dropping, not even close"))
	fs.Close(fd)
	if _, err := ReadDropping(fs, "/bad"); err == nil {
		t.Fatal("garbage dropping accepted")
	}
	if _, err := ReadDropping(fs, "/missing"); err == nil {
		t.Fatal("missing dropping accepted")
	}
}

func TestDroppingSyncMidstream(t *testing.T) {
	fs := posix.NewMemFS()
	w, err := NewWriter(fs, "/idx")
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Entry{LogicalOffset: 0, Length: 5, Timestamp: 1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Entries appended before Sync are visible to a concurrent reader.
	got, err := ReadDropping(fs, "/idx")
	if err != nil || len(got) != 1 {
		t.Fatalf("after sync: %d entries, %v", len(got), err)
	}
	w.Append(Entry{LogicalOffset: 5, Length: 5, PhysicalOffset: 5, Timestamp: 2})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadDropping(fs, "/idx")
	if err != nil || len(got) != 2 {
		t.Fatalf("after close: %d entries, %v", len(got), err)
	}
}
