package index

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"ldplfs/internal/posix"
)

// droppingBytes materialises a valid on-disk dropping holding entries —
// the fuzz corpora are seeded from real droppings, not hand-rolled hex.
func droppingBytes(tb testing.TB, entries []Entry) []byte {
	tb.Helper()
	mem := posix.NewMemFS()
	if err := WriteDropping(mem, "/seed", entries); err != nil {
		tb.Fatal(err)
	}
	fd, err := mem.Open("/seed", posix.O_RDONLY, 0)
	if err != nil {
		tb.Fatal(err)
	}
	defer mem.Close(fd)
	st, err := mem.Fstat(fd)
	if err != nil {
		tb.Fatal(err)
	}
	buf := make([]byte, st.Size)
	if err := posix.ReadFull(mem, fd, buf, 0); err != nil {
		tb.Fatal(err)
	}
	return buf
}

func seedEntries() []Entry {
	return []Entry{
		{LogicalOffset: 0, Length: 4096, PhysicalOffset: 0, Timestamp: 1, Pid: 0},
		{LogicalOffset: 4096, Length: 512, PhysicalOffset: 4096, Timestamp: 2, Pid: 3, Dropping: 1},
		{LogicalOffset: 100, Length: 50, PhysicalOffset: 4608, Timestamp: 3, Pid: 3},
	}
}

// FuzzDroppingParse throws arbitrary bytes at the index-dropping parser
// and checks the format's invariants on everything it accepts:
//
//   - no panic, ever, on any input (torn tails, bad magic, short
//     headers, corrupt checksums must all fail or truncate cleanly);
//   - accepted droppings round-trip: re-writing the parsed entries and
//     re-parsing yields the same entries;
//   - a torn tail (any partial record appended) parses to exactly the
//     same whole records — the write engine's in-flight-flush guarantee;
//   - accepted droppings can be reopened for append (the crashed-writer
//     resume path) and the appended record is then visible.
func FuzzDroppingParse(f *testing.F) {
	f.Add(droppingBytes(f, nil))
	f.Add(droppingBytes(f, seedEntries()))
	// Torn tail: a valid dropping plus half a record.
	valid := droppingBytes(f, seedEntries())
	f.Add(valid[:len(valid)-EntrySize/2])
	// Corrupt checksum in the last record.
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	// Bad magic, short header, empty file.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	f.Add(bad)
	f.Add(valid[:headerSize-3])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		mem := posix.NewMemFS()
		writeFile(t, mem, "/d", data)
		entries, err := ReadDropping(mem, "/d")
		if err != nil {
			return // rejected cleanly — all we ask of arbitrary bytes
		}

		// Round-trip through the writer.
		if err := WriteDropping(mem, "/rt", entries); err != nil {
			t.Fatalf("rewriting accepted entries: %v", err)
		}
		again, err := ReadDropping(mem, "/rt")
		if err != nil {
			t.Fatalf("reparsing rewritten dropping: %v", err)
		}
		if !sameEntries(entries, again) {
			t.Fatalf("round-trip changed entries:\n%v\n%v", entries, again)
		}

		// Torn-tail tolerance: appending any partial record must not
		// change what parses.
		tear := len(data) % EntrySize
		if tear == 0 {
			tear = EntrySize / 2
		}
		torn := append(append([]byte(nil), data...), data[:min(tear, len(data))]...)
		writeFile(t, mem, "/torn", torn)
		if tornEntries, err := ReadDropping(mem, "/torn"); err == nil {
			if !sameEntries(entries, tornEntries[:min(len(entries), len(tornEntries))]) {
				t.Fatalf("torn tail changed the parsed prefix")
			}
		}

		// Reopen-for-append: the crashed-writer resume path.
		w, err := OpenWriter(mem, "/d")
		if err != nil {
			t.Fatalf("reopening accepted dropping: %v", err)
		}
		extra := Entry{LogicalOffset: 7, Length: 9, PhysicalOffset: 11, Timestamp: 13, Pid: 17}
		w.Append(extra)
		if err := w.Close(); err != nil {
			t.Fatalf("appending to accepted dropping: %v", err)
		}
		resumed, err := ReadDropping(mem, "/d")
		if err != nil {
			t.Fatalf("reparsing resumed dropping: %v", err)
		}
		if len(resumed) != len(entries)+1 || resumed[len(resumed)-1] != extra {
			t.Fatalf("resume lost records: had %d, now %v", len(entries), resumed)
		}
	})
}

// modelByte is the differential oracle's view of one logical byte: which
// writer produced it and where in that writer's dropping it lives.
type modelByte struct {
	pid      uint32
	dropping uint32
	phys     int64
}

// FuzzIndexMerge decodes arbitrary bytes into a write history, merges it
// through Build, and checks the result against a byte-granular replay
// oracle: every logical byte must resolve to exactly the write the
// last-writer-wins rule says, holes exactly where nothing wrote, size
// exactly the high-water mark — plus structural invariants (sorted,
// non-overlapping, gap-free coverage) and Truncate consistency.
func FuzzIndexMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Overlap-heavy seed: same region rewritten with colliding timestamps.
	f.Add(bytes.Repeat([]byte{0x40, 0x01, 0x20, 0x02, 0x00}, 12))
	seed := make([]byte, 0, 64)
	for i := 0; i < 12; i++ {
		seed = append(seed, byte(i*37), byte(i*11), byte(i), byte(255-i), byte(i*3))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxEntries = 64
		var entries []Entry
		for i := 0; i+5 <= len(data) && len(entries) < maxEntries; i += 5 {
			// 5 bytes per write: offset (12 bits), length (6 bits, 1-64),
			// timestamp (8 bits, collisions welcome), pid (2 bits).
			off := int64(binary.LittleEndian.Uint16(data[i:])) & 0xfff
			length := int64(data[i+2]&0x3f) + 1
			ts := uint64(data[i+3])
			pid := uint32(data[i+4] & 0x3)
			entries = append(entries, Entry{
				LogicalOffset:  off,
				Length:         length,
				PhysicalOffset: int64(i) * 100,
				Timestamp:      ts,
				// Unique Dropping id per entry keeps the resolution order
				// fully deterministic while still exercising the
				// timestamp and pid tiebreaks.
				Dropping: uint32(len(entries)),
				Pid:      pid,
			})
		}

		idx := Build(entries)

		// Oracle: replay byte-by-byte in Build's resolution order.
		model := map[int64]modelByte{}
		ordered := append([]Entry(nil), entries...)
		for i := 1; i < len(ordered); i++ {
			for j := i; j > 0; j-- {
				a, b := ordered[j-1], ordered[j]
				if b.Timestamp < a.Timestamp ||
					(b.Timestamp == a.Timestamp && b.Pid < a.Pid) ||
					(b.Timestamp == a.Timestamp && b.Pid == a.Pid && b.Dropping < a.Dropping) {
					ordered[j-1], ordered[j] = b, a
				} else {
					break
				}
			}
		}
		var wantSize int64
		for _, e := range ordered {
			for b := int64(0); b < e.Length; b++ {
				model[e.LogicalOffset+b] = modelByte{e.Pid, e.Dropping, e.PhysicalOffset + b}
			}
			if end := e.LogicalOffset + e.Length; end > wantSize {
				wantSize = end
			}
		}

		if idx.Size() != wantSize {
			t.Fatalf("Size = %d, oracle %d", idx.Size(), wantSize)
		}
		if wantSize == 0 {
			return
		}
		extents := idx.Query(0, wantSize)
		var cur int64
		for _, x := range extents {
			if x.LogicalOffset != cur {
				t.Fatalf("coverage gap: extent at %d, expected %d", x.LogicalOffset, cur)
			}
			if x.Length <= 0 {
				t.Fatalf("non-positive extent length: %+v", x)
			}
			for b := int64(0); b < x.Length; b++ {
				m, written := model[x.LogicalOffset+b]
				if x.Hole {
					if written {
						t.Fatalf("byte %d resolved as hole but oracle has %+v", x.LogicalOffset+b, m)
					}
					continue
				}
				if !written {
					t.Fatalf("byte %d resolved to pid %d but oracle has a hole", x.LogicalOffset+b, x.Pid)
				}
				if m.pid != x.Pid || m.dropping != x.Dropping || m.phys != x.PhysicalOffset+b {
					t.Fatalf("byte %d resolved to (pid %d, dropping %d, phys %d), oracle (pid %d, dropping %d, phys %d)",
						x.LogicalOffset+b, x.Pid, x.Dropping, x.PhysicalOffset+b, m.pid, m.dropping, m.phys)
				}
			}
			cur += x.Length
		}
		if cur != wantSize {
			t.Fatalf("extents cover %d bytes, want %d", cur, wantSize)
		}

		// Truncate agrees with a truncated oracle.
		tsize := wantSize / 2
		idx.Truncate(tsize)
		if idx.Size() != tsize {
			t.Fatalf("post-truncate Size = %d, want %d", idx.Size(), tsize)
		}
		for _, x := range idx.Extents() {
			if x.LogicalOffset+x.Length > tsize {
				t.Fatalf("extent %+v beyond truncation %d", x, tsize)
			}
		}
	})
}

func writeFile(tb testing.TB, fs posix.FS, path string, data []byte) {
	tb.Helper()
	fd, err := fs.Open(path, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	defer fs.Close(fd)
	if len(data) > 0 {
		if err := posix.WriteFull(fs, fd, data, 0); err != nil {
			tb.Fatal(err)
		}
	}
}

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || reflect.DeepEqual(a, b)
}
