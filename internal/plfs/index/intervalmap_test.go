package index

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ldplfs/internal/posix"
)

// newStreamFixtureFS returns an empty MemFS for stream tests.
func newStreamFixtureFS(t *testing.T) posix.FS {
	t.Helper()
	return posix.NewMemFS()
}

func pathFor(i int) string { return fmt.Sprintf("/d%d", i) }

// newStreamFixture writes n droppings of perDropping entries each, with
// globally interleaved timestamps (each dropping individually sorted, as
// real writers produce) and overlapping logical ranges.
func newStreamFixture(t *testing.T, n, perDropping int) posix.FS {
	t.Helper()
	fs := posix.NewMemFS()
	rng := rand.New(rand.NewSource(7))
	ts := uint64(0)
	perWriter := make([][]Entry, n)
	for rec := 0; rec < perDropping; rec++ {
		for w := 0; w < n; w++ {
			ts++
			perWriter[w] = append(perWriter[w], Entry{
				LogicalOffset:  int64(rng.Intn(1 << 16)),
				Length:         int64(1 + rng.Intn(200)),
				PhysicalOffset: int64(rec) * 256,
				Timestamp:      ts,
				Pid:            uint32(w),
			})
		}
	}
	for w := 0; w < n; w++ {
		if err := WriteDropping(fs, pathFor(w), perWriter[w]); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// refIndex is the pre-interval-map reference implementation: one flat
// sorted slice, spliced per insert. Kept here as the oracle the chunked
// map is differential-tested against at scales that force chunk splits,
// cross-chunk overlays and chunk-spanning writes — regimes the byte-replay
// fuzz target (capped at 64 entries) never reaches.
type refIndex struct {
	extents []Extent
	size    int64
}

func (idx *refIndex) insert(e Entry) {
	if e.Length <= 0 {
		return
	}
	if end := e.LogicalOffset + e.Length; end > idx.size {
		idx.size = end
	}
	newExt := Extent{
		LogicalOffset:  e.LogicalOffset,
		Length:         e.Length,
		PhysicalOffset: e.PhysicalOffset,
		Pid:            e.Pid,
		Dropping:       e.Dropping,
	}
	lo, hi := e.LogicalOffset, e.LogicalOffset+e.Length
	i := 0
	for i < len(idx.extents) && idx.extents[i].LogicalOffset+idx.extents[i].Length <= lo {
		i++
	}
	out := append([]Extent{}, idx.extents[:i]...)
	var right *Extent
	j := i
	for ; j < len(idx.extents); j++ {
		x := idx.extents[j]
		if x.LogicalOffset >= hi {
			break
		}
		if x.LogicalOffset < lo {
			left := x
			left.Length = lo - x.LogicalOffset
			out = append(out, left)
		}
		if xEnd := x.LogicalOffset + x.Length; xEnd > hi {
			r := x
			r.Length = xEnd - hi
			r.LogicalOffset = hi
			if !x.Hole {
				r.PhysicalOffset = x.PhysicalOffset + (hi - x.LogicalOffset)
			}
			right = &r
		}
	}
	out = append(out, newExt)
	if right != nil {
		out = append(out, *right)
	}
	out = append(out, idx.extents[j:]...)
	idx.extents = out
}

func (idx *refIndex) truncate(size int64) {
	if size < 0 {
		size = 0
	}
	var out []Extent
	for _, x := range idx.extents {
		switch {
		case x.LogicalOffset >= size:
		case x.LogicalOffset+x.Length > size:
			x.Length = size - x.LogicalOffset
			out = append(out, x)
		default:
			out = append(out, x)
		}
	}
	idx.extents = out
	idx.size = size
}

func sameExtents(t *testing.T, tag string, got, want []Extent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d extents, reference has %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: extent %d = %+v, reference %+v", tag, i, got[i], want[i])
		}
	}
}

// TestIntervalMapMatchesReferenceAtScale drives tens of thousands of
// overlays — short scattered writes, chunk-spanning rewrites, tail
// appends — through the chunked map and the flat-slice reference in
// lockstep, comparing full extent tables, sizes, counts and interleaved
// queries. The entry counts force many chunk splits and multi-chunk
// overlay splices.
func TestIntervalMapMatchesReferenceAtScale(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		idx := &Index{}
		ref := &refIndex{}
		const space = 1 << 20
		for i := 0; i < 20000; i++ {
			var off, length int64
			switch rng.Intn(10) {
			case 0: // long write spanning many existing extents/chunks
				off = int64(rng.Intn(space / 2))
				length = int64(1 + rng.Intn(space/4))
			case 1, 2: // tail append
				off = idx.Size() + int64(rng.Intn(64))
				length = int64(1 + rng.Intn(128))
			default: // short scattered overlay
				off = int64(rng.Intn(space))
				length = int64(1 + rng.Intn(256))
			}
			e := Entry{
				LogicalOffset:  off,
				Length:         length,
				PhysicalOffset: int64(i) * 512,
				Timestamp:      uint64(i + 1),
				Pid:            uint32(rng.Intn(8)),
				Dropping:       uint32(rng.Intn(4)),
			}
			idx.insert(e)
			ref.insert(e)

			if i%2000 == 1999 {
				if idx.Size() != ref.size {
					t.Fatalf("seed %d step %d: Size %d, reference %d", seed, i, idx.Size(), ref.size)
				}
				if idx.NumExtents() != len(ref.extents) {
					t.Fatalf("seed %d step %d: NumExtents %d, reference %d", seed, i, idx.NumExtents(), len(ref.extents))
				}
				sameExtents(t, "mid-run", idx.Extents(), ref.extents)
			}
		}
		sameExtents(t, "final", idx.Extents(), ref.extents)

		// Interleaved queries must resolve identically to a scan of the
		// reference table.
		for q := 0; q < 200; q++ {
			off := int64(rng.Intn(space))
			length := int64(1 + rng.Intn(space/8))
			checkQueryAgainstReference(t, idx, ref, off, length)
		}

		// Truncate down through several chunk boundaries, re-checking.
		for _, frac := range []int64{3, 7, 50} {
			size := idx.Size() / frac
			idx.Truncate(size)
			ref.truncate(size)
			if idx.Size() != ref.size {
				t.Fatalf("seed %d: post-truncate Size %d, reference %d", seed, idx.Size(), ref.size)
			}
			sameExtents(t, "truncated", idx.Extents(), ref.extents)
		}
	}
}

// checkQueryAgainstReference verifies Query's hole-filling resolution
// against a linear scan of the reference extent table.
func checkQueryAgainstReference(t *testing.T, idx *Index, ref *refIndex, off, length int64) {
	t.Helper()
	got := idx.Query(off, length)
	if off >= ref.size {
		if got != nil {
			t.Fatalf("Query(%d,%d) past EOF returned %d extents", off, length, len(got))
		}
		return
	}
	if off+length > ref.size {
		length = ref.size - off
	}
	cur := off
	gi := 0
	for _, x := range ref.extents {
		xEnd := x.LogicalOffset + x.Length
		if xEnd <= cur {
			continue
		}
		if cur >= off+length {
			break
		}
		if x.LogicalOffset > cur {
			holeEnd := x.LogicalOffset
			if holeEnd > off+length {
				holeEnd = off + length
			}
			if gi >= len(got) || !got[gi].Hole || got[gi].LogicalOffset != cur || got[gi].Length != holeEnd-cur {
				t.Fatalf("Query(%d,%d)[%d]: want hole [%d,%d), got %+v", off, length, gi, cur, holeEnd, at(got, gi))
			}
			gi++
			cur = holeEnd
			if cur >= off+length {
				break
			}
		}
		skip := cur - x.LogicalOffset
		n := x.Length - skip
		if rem := off + length - cur; n > rem {
			n = rem
		}
		want := Extent{
			LogicalOffset:  cur,
			Length:         n,
			PhysicalOffset: x.PhysicalOffset + skip,
			Pid:            x.Pid,
			Dropping:       x.Dropping,
		}
		if gi >= len(got) || got[gi] != want {
			t.Fatalf("Query(%d,%d)[%d]: want %+v, got %+v", off, length, gi, want, at(got, gi))
		}
		gi++
		cur += n
	}
	if cur < off+length {
		if gi >= len(got) || !got[gi].Hole || got[gi].LogicalOffset != cur || got[gi].Length != off+length-cur {
			t.Fatalf("Query(%d,%d): want trailing hole at %d, got %+v", off, length, cur, at(got, gi))
		}
		gi++
	}
	if gi != len(got) {
		t.Fatalf("Query(%d,%d): %d extra extents: %+v", off, length, len(got)-gi, got[gi:])
	}
}

func at(xs []Extent, i int) any {
	if i < len(xs) {
		return xs[i]
	}
	return "missing"
}

// TestFromExtentsRoundTrip proves the O(extents) load path reproduces a
// built index exactly, and that malformed tables are rejected.
func TestFromExtentsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var entries []Entry
	for i := 0; i < 3000; i++ {
		entries = append(entries, Entry{
			LogicalOffset:  int64(rng.Intn(1 << 18)),
			Length:         int64(1 + rng.Intn(512)),
			PhysicalOffset: int64(i) * 512,
			Timestamp:      uint64(i + 1),
			Pid:            uint32(rng.Intn(4)),
		})
	}
	built := Build(entries)
	loaded, err := FromExtents(built.Extents(), built.Size())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != built.Size() || loaded.NumExtents() != built.NumExtents() {
		t.Fatalf("round trip: size %d/%d extents %d/%d",
			loaded.Size(), built.Size(), loaded.NumExtents(), built.NumExtents())
	}
	sameExtents(t, "from-extents", loaded.Extents(), built.Extents())
	for q := 0; q < 100; q++ {
		off := int64(rng.Intn(1 << 18))
		length := int64(1 + rng.Intn(1<<14))
		g1, g2 := built.Query(off, length), loaded.Query(off, length)
		if len(g1) != len(g2) {
			t.Fatalf("query diverged: %d vs %d extents", len(g1), len(g2))
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("query extent %d: %+v vs %+v", i, g1[i], g2[i])
			}
		}
	}

	for _, bad := range []struct {
		name string
		ext  []Extent
		size int64
	}{
		{"overlap", []Extent{{LogicalOffset: 0, Length: 10}, {LogicalOffset: 5, Length: 10}}, 20},
		{"zero-length", []Extent{{LogicalOffset: 0, Length: 0}}, 10},
		{"negative-length", []Extent{{LogicalOffset: 0, Length: -4}}, 10},
		{"hole-marker", []Extent{{LogicalOffset: 0, Length: 4, Hole: true}}, 4},
		{"size-below-data", []Extent{{LogicalOffset: 0, Length: 10}}, 5},
		{"negative-size", nil, -1},
	} {
		if _, err := FromExtents(bad.ext, bad.size); err == nil {
			t.Errorf("FromExtents accepted %s table", bad.name)
		}
	}
}

// TestMergeStreamsMatchesBuild proves the memory-bounded k-way streaming
// merge resolves identically to the slurp-and-sort Build over real
// droppings, across chunk sizes that force many refills.
func TestMergeStreamsMatchesBuild(t *testing.T) {
	fs := newStreamFixture(t, 6, 500)
	var all []Entry
	var paths []string
	for i := 0; i < 6; i++ {
		path := pathFor(i)
		paths = append(paths, path)
		es, err := ReadDropping(fs, path)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, es...)
	}
	want := Build(all)

	for _, chunk := range []int{1, 7, 100, 0} {
		streams := make([]*DroppingStream, len(paths))
		for i, p := range paths {
			s, err := OpenDroppingStream(fs, p, chunk)
			if err != nil {
				t.Fatal(err)
			}
			streams[i] = s
			defer s.Close()
		}
		got, err := MergeStreams(streams...)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if got.Size() != want.Size() || got.NumExtents() != want.NumExtents() {
			t.Fatalf("chunk %d: size %d/%d extents %d/%d",
				chunk, got.Size(), want.Size(), got.NumExtents(), want.NumExtents())
		}
		sameExtents(t, "streamed", got.Extents(), want.Extents())
	}
}

// TestMergeStreamsRejectsUnsorted: a dropping whose timestamps go
// backwards cannot stream; the caller must get ErrUnsorted to trigger
// the slurp fallback (never a silently wrong merge).
func TestMergeStreamsRejectsUnsorted(t *testing.T) {
	fs := newStreamFixtureFS(t)
	if err := WriteDropping(fs, "/unsorted", []Entry{
		{LogicalOffset: 0, Length: 10, Timestamp: 5},
		{LogicalOffset: 10, Length: 10, Timestamp: 3},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDroppingStream(fs, "/unsorted", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := MergeStreams(s); err == nil {
		t.Fatal("unsorted dropping streamed without error")
	} else if !errorsIs(err, ErrUnsorted) {
		t.Fatalf("err = %v, want ErrUnsorted", err)
	}
}

// TestDroppingStreamTornTail: a stream over a dropping with a partial
// trailing record yields exactly the whole records.
func TestDroppingStreamTornTail(t *testing.T) {
	fs := newStreamFixtureFS(t)
	entries := []Entry{
		{LogicalOffset: 0, Length: 10, Timestamp: 1},
		{LogicalOffset: 10, Length: 10, PhysicalOffset: 10, Timestamp: 2},
	}
	if err := WriteDropping(fs, "/torn", entries); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat("/torn")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/torn", st.Size-EntrySize/2); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDroppingStream(fs, "/torn", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 whole record", s.Len())
	}
	e, ok, err := s.Next()
	if err != nil || !ok || e != entries[0] {
		t.Fatalf("Next = %+v, %v, %v", e, ok, err)
	}
	if _, ok, err := s.Next(); ok || err != nil {
		t.Fatalf("stream did not end cleanly: ok=%v err=%v", ok, err)
	}
}
