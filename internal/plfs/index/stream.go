package index

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"

	"ldplfs/internal/posix"
)

// ErrUnsorted reports that a dropping's records are not in ascending
// timestamp order, so it cannot participate in a streaming merge. Real
// droppings are always timestamp-sorted (each writer stamps records from
// a monotonic clock), but a hand-built or adversarial dropping may not
// be; callers fall back to the slurp-and-sort path, which handles any
// order.
var ErrUnsorted = errors.New("index: dropping records out of timestamp order")

// DefaultStreamChunk is the number of records a DroppingStream buffers
// per backend read. The streaming merge's memory bound is
// droppings × DefaultStreamChunk × EntrySize, independent of how many
// records the droppings hold.
const DefaultStreamChunk = 2048

// DroppingStream reads an index dropping incrementally: header first,
// then fixed-size chunks of records on demand. It is the memory-bounded
// replacement for slurping whole droppings before a merge.
type DroppingStream struct {
	fs   posix.FS
	fd   int
	path string

	off     int64 // next unread byte (record-aligned)
	end     int64 // last whole-record boundary at open time
	buf     []byte
	bufOff  int
	chunk   int
	lastTS  uint64
	started bool
}

// OpenDroppingStream opens the index dropping at path for streaming,
// validating its header. chunkRecords bounds the records buffered per
// read (0 = DefaultStreamChunk). A trailing partial record is excluded,
// exactly as ReadDropping excludes it.
func OpenDroppingStream(fs posix.FS, path string, chunkRecords int) (*DroppingStream, error) {
	if chunkRecords <= 0 {
		chunkRecords = DefaultStreamChunk
	}
	fd, err := fs.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("index: open dropping %s: %w", path, err)
	}
	st, err := fs.Fstat(fd)
	if err != nil {
		fs.Close(fd)
		return nil, err
	}
	if st.Size < headerSize {
		fs.Close(fd)
		return nil, fmt.Errorf("index: dropping %s too short (%d bytes)", path, st.Size)
	}
	var hdr [headerSize]byte
	if err := posix.ReadFull(fs, fd, hdr[:], 0); err != nil {
		fs.Close(fd)
		return nil, fmt.Errorf("index: read dropping %s header: %w", path, err)
	}
	if got := binary.LittleEndian.Uint64(hdr[0:]); got != Magic {
		fs.Close(fd)
		return nil, fmt.Errorf("index: dropping %s: bad magic %#x", path, got)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != version {
		fs.Close(fd)
		return nil, fmt.Errorf("index: dropping %s: unsupported version %d", path, got)
	}
	body := st.Size - headerSize
	return &DroppingStream{
		fs:    fs,
		fd:    fd,
		path:  path,
		off:   headerSize,
		end:   headerSize + body - body%EntrySize,
		chunk: chunkRecords,
	}, nil
}

// Len returns the number of whole records the stream will yield in total.
func (s *DroppingStream) Len() int { return int((s.end - headerSize) / EntrySize) }

// fill loads the next chunk of records into the buffer.
func (s *DroppingStream) fill() error {
	want := int64(s.chunk) * EntrySize
	if rem := s.end - s.off; rem < want {
		want = rem
	}
	if want <= 0 {
		s.buf, s.bufOff = nil, 0
		return nil
	}
	if cap(s.buf) < int(want) {
		s.buf = make([]byte, want)
	}
	s.buf = s.buf[:want]
	if err := posix.ReadFull(s.fs, s.fd, s.buf, s.off); err != nil {
		return fmt.Errorf("index: read dropping %s: %w", s.path, err)
	}
	s.off += want
	s.bufOff = 0
	return nil
}

// Prefetch loads the stream's first chunk; the merge's caller may fan
// prefetches out in parallel before the (serial) heap merge starts.
func (s *DroppingStream) Prefetch() error {
	if s.started || len(s.buf) > 0 {
		return nil
	}
	return s.fill()
}

// Next returns the next record. ok is false at end of stream. Records
// must arrive in non-decreasing timestamp order or Next fails with
// ErrUnsorted.
func (s *DroppingStream) Next() (e Entry, ok bool, err error) {
	if s.bufOff >= len(s.buf) {
		if s.off >= s.end {
			return Entry{}, false, nil
		}
		if err := s.fill(); err != nil {
			return Entry{}, false, err
		}
		if len(s.buf) == 0 {
			return Entry{}, false, nil
		}
	}
	rec := s.buf[s.bufOff : s.bufOff+EntrySize]
	if err := e.Unmarshal(rec); err != nil {
		recNo := (s.off - headerSize - int64(len(s.buf)) + int64(s.bufOff)) / EntrySize
		return Entry{}, false, fmt.Errorf("index: dropping %s record %d: %w", s.path, recNo, err)
	}
	s.bufOff += EntrySize
	if s.started && e.Timestamp < s.lastTS {
		return Entry{}, false, fmt.Errorf("%w: %s", ErrUnsorted, s.path)
	}
	s.started, s.lastTS = true, e.Timestamp
	return e, true, nil
}

// Close releases the stream's descriptor.
func (s *DroppingStream) Close() error { return s.fs.Close(s.fd) }

// mergeItem is one stream's head entry in the merge heap.
type mergeItem struct {
	e      Entry
	stream int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].e, h[j].e
	if a.Timestamp != b.Timestamp {
		return a.Timestamp < b.Timestamp
	}
	if a.Pid != b.Pid {
		return a.Pid < b.Pid
	}
	if a.Dropping != b.Dropping {
		return a.Dropping < b.Dropping
	}
	return h[i].stream < h[j].stream
}
func (h mergeHeap) Swap(i, j int)           { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)             { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any               { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h mergeHeap) head() *mergeItem        { return &h[0] }
func (h *mergeHeap) fixHead()               { heap.Fix(h, 0) }
func (h *mergeHeap) popHead() (m mergeItem) { return heap.Pop(h).(mergeItem) }

// MergeStreams k-way-merges timestamp-sorted dropping streams into a
// global index, overlaying entries in ascending (timestamp, pid,
// dropping) order — the same resolution Build performs over a slurped
// entry slice, but with memory bounded by the streams' chunk buffers
// instead of the container's total record count. A stream that turns out
// to be unsorted fails with ErrUnsorted (callers fall back to Build);
// corrupt records fail with their parse error.
func MergeStreams(streams ...*DroppingStream) (*Index, error) {
	h := make(mergeHeap, 0, len(streams))
	for i, s := range streams {
		e, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			h = append(h, mergeItem{e, i})
		}
	}
	heap.Init(&h)
	idx := &Index{}
	for h.Len() > 0 {
		head := h.head()
		idx.insert(head.e)
		e, ok, err := streams[head.stream].Next()
		if err != nil {
			return nil, err
		}
		if ok {
			head.e = e
			h.fixHead()
		} else {
			h.popHead()
		}
	}
	return idx, nil
}
