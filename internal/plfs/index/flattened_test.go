package index

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ldplfs/internal/posix"
)

func sampleFlattened() *Flattened {
	return &Flattened{
		Generation: 3,
		RawSig:     0xdeadbeef,
		Size:       5000,
		Extents: []Extent{
			{LogicalOffset: 0, Length: 1000, PhysicalOffset: 0, Pid: 1},
			{LogicalOffset: 1000, Length: 500, PhysicalOffset: 4096, Pid: 2, Dropping: 1},
			{LogicalOffset: 2000, Length: 2500, PhysicalOffset: 1000, Pid: 1},
		},
	}
}

func TestFlattenedRoundTrip(t *testing.T) {
	fs := posix.NewMemFS()
	want := sampleFlattened()
	if err := WriteFlattened(fs, "/flat", want); err != nil {
		t.Fatal(err)
	}
	// The temp file must not survive a successful publish.
	if _, err := fs.Stat("/flat.tmp"); err == nil {
		t.Fatal("temp file left behind after publish")
	}
	got, err := ReadFlattened(fs, "/flat")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != want.Generation || got.RawSig != want.RawSig || got.Size != want.Size {
		t.Fatalf("header round trip: %+v vs %+v", got, want)
	}
	if len(got.Extents) != len(want.Extents) {
		t.Fatalf("extents: %d vs %d", len(got.Extents), len(want.Extents))
	}
	for i := range want.Extents {
		if got.Extents[i] != want.Extents[i] {
			t.Fatalf("extent %d: %+v vs %+v", i, got.Extents[i], want.Extents[i])
		}
	}
	// The table loads straight into an index.
	idx, err := FromExtents(got.Extents, got.Size)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Size() != 5000 || idx.NumExtents() != 3 {
		t.Fatalf("loaded index: size %d extents %d", idx.Size(), idx.NumExtents())
	}
}

func TestFlattenedRejectsDamage(t *testing.T) {
	valid := MarshalFlattened(sampleFlattened())
	corrupt := func(mutate func([]byte) []byte) []byte {
		c := append([]byte(nil), valid...)
		return mutate(c)
	}
	cases := map[string][]byte{
		"torn tail":     valid[:len(valid)-5],
		"truncated mid": valid[:FlattenedHeaderSize+FlattenedExtentSize/2],
		"empty":         {},
		"short header":  valid[:FlattenedHeaderSize-1],
		"bad magic": corrupt(func(c []byte) []byte {
			c[0] ^= 0xff
			return c
		}),
		"bad version": corrupt(func(c []byte) []byte {
			binary.LittleEndian.PutUint64(c[8:], 99)
			return c
		}),
		"checksum flip": corrupt(func(c []byte) []byte {
			c[FlattenedHeaderSize+3] ^= 0x40
			return c
		}),
		"count too big": corrupt(func(c []byte) []byte {
			binary.LittleEndian.PutUint64(c[40:], 1<<60)
			return c
		}),
	}
	// Overlapping extents with a correct checksum (MarshalFlattened does
	// not validate): structure validation must reject what the checksum
	// cannot.
	overlap := sampleFlattened()
	overlap.Extents[1].LogicalOffset = 500 // overlaps extent 0's [0,1000)
	cases["overlapping extents"] = MarshalFlattened(overlap)
	small := sampleFlattened()
	small.Size = 100
	cases["size below data"] = MarshalFlattened(small)
	negLen := sampleFlattened()
	negLen.Extents[2].Length = -1
	cases["negative length"] = MarshalFlattened(negLen)

	for name, data := range cases {
		if _, err := UnmarshalFlattened(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRawSignatureProperties(t *testing.T) {
	a := RawSignature([]string{"hostdir.0/dropping.index.1"}, []int64{480})
	if b := RawSignature([]string{"hostdir.0/dropping.index.1"}, []int64{480}); b != a {
		t.Fatal("signature not deterministic")
	}
	if b := RawSignature([]string{"hostdir.0/dropping.index.1"}, []int64{528}); b == a {
		t.Fatal("signature misses a size change")
	}
	if b := RawSignature([]string{"hostdir.0/dropping.index.2"}, []int64{480}); b == a {
		t.Fatal("signature misses a renamed dropping")
	}
	if b := RawSignature([]string{"hostdir.0/dropping.index.1", "hostdir.1/dropping.index.2"}, []int64{480, 16}); b == a {
		t.Fatal("signature misses a new dropping")
	}
	if a == RawSignature(nil, nil) {
		t.Fatal("signature of nothing collides with signature of something")
	}
}

func TestWriteFlattenedFailureLeavesNoFinalFile(t *testing.T) {
	mem := posix.NewMemFS()
	ffs := posix.NewFaultFS(mem)
	ffs.Inject(&posix.FaultRule{Op: posix.FaultWrite, PathContains: ".tmp", Err: posix.ENOSPC})
	if err := WriteFlattened(ffs, "/flat", sampleFlattened()); err == nil {
		t.Fatal("write succeeded on full device")
	}
	if _, err := mem.Stat("/flat"); err == nil {
		t.Fatal("final file exists after failed write")
	}
	if _, err := mem.Stat("/flat.tmp"); err == nil {
		t.Fatal("temp file left behind after failed write")
	}
	ffs.Clear()
	if err := WriteFlattened(ffs, "/flat", sampleFlattened()); err != nil {
		t.Fatal(err)
	}
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("%d fds leaked across flattened writes", got)
	}
}

// FuzzFlattenedParse throws arbitrary bytes at the flattened-record
// parser: it must never panic, and anything it accepts must satisfy the
// format's invariants — a sorted, non-overlapping extent table loading
// cleanly into an index, byte-exact round-trip through the marshaller,
// and rejection of every torn prefix (the record is atomic; there is no
// "partial parse").
func FuzzFlattenedParse(f *testing.F) {
	f.Add(MarshalFlattened(sampleFlattened()))
	f.Add(MarshalFlattened(&Flattened{Generation: 1}))
	valid := MarshalFlattened(sampleFlattened())
	torn := valid[:len(valid)-9]
	f.Add(torn)
	corrupt := append([]byte(nil), valid...)
	corrupt[50] ^= 0x10
	f.Add(corrupt)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := UnmarshalFlattened(data)
		if err != nil {
			return // rejected cleanly
		}
		// Accepted: the table must load into an index without error.
		idx, err := FromExtents(fl.Extents, fl.Size)
		if err != nil {
			t.Fatalf("accepted record fails FromExtents: %v", err)
		}
		if idx.Size() != fl.Size || idx.NumExtents() != len(fl.Extents) {
			t.Fatalf("loaded index disagrees with record: size %d/%d extents %d/%d",
				idx.Size(), fl.Size, idx.NumExtents(), len(fl.Extents))
		}
		// Round trip: re-marshalling reproduces the accepted bytes exactly.
		if again := MarshalFlattened(fl); !bytes.Equal(again, data) {
			t.Fatalf("round trip diverged:\n%x\n%x", again, data)
		}
		// Every torn prefix of an accepted record must be rejected.
		if len(data) > 0 {
			cut := len(data) - 1 - len(data)%7
			if cut > 0 {
				if _, err := UnmarshalFlattened(data[:cut]); err == nil {
					t.Fatalf("torn prefix of %d/%d bytes accepted", cut, len(data))
				}
			}
		}
	})
}
