package index

import (
	"encoding/binary"
	"fmt"

	"ldplfs/internal/posix"
)

// droppingHeader prefixes every index dropping: magic plus a format version.
const (
	headerSize = 16
	version    = 1
)

// Writer appends index records to an index dropping file through a posix
// backend. It buffers records and flushes on Sync/Close so that a long run
// of small writes costs one appended burst, as in PLFS's buffered index.
type Writer struct {
	fs  posix.FS
	fd  int
	buf []byte
}

// NewWriter creates (or truncates) the index dropping at path and writes
// its header.
func NewWriter(fs posix.FS, path string) (*Writer, error) {
	fd, err := fs.Open(path, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC|posix.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("index: create dropping %s: %w", path, err)
	}
	w := &Writer{fs: fs, fd: fd}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], Magic)
	binary.LittleEndian.PutUint64(hdr[8:], version)
	if _, err := fs.Write(fd, hdr[:]); err != nil {
		fs.Close(fd)
		return nil, fmt.Errorf("index: write header: %w", err)
	}
	return w, nil
}

// Buffered returns the number of bytes of appended records not yet
// flushed to the dropping.
func (w *Writer) Buffered() int { return len(w.buf) }

// Append buffers one entry.
func (w *Writer) Append(e Entry) {
	var rec [EntrySize]byte
	e.Marshal(rec[:])
	w.buf = append(w.buf, rec[:]...)
}

// Sync flushes buffered entries to the dropping.
func (w *Writer) Sync() error {
	if len(w.buf) > 0 {
		if _, err := w.fs.Write(w.fd, w.buf); err != nil {
			return fmt.Errorf("index: flush: %w", err)
		}
		w.buf = w.buf[:0]
	}
	return w.fs.Fsync(w.fd)
}

// Close flushes and closes the dropping.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.fs.Close(w.fd)
		return err
	}
	return w.fs.Close(w.fd)
}

// OpenWriter opens an existing index dropping for appending, after
// validating its header. New records land after the existing ones.
func OpenWriter(fs posix.FS, path string) (*Writer, error) {
	fd, err := fs.Open(path, posix.O_RDWR|posix.O_APPEND, 0)
	if err != nil {
		return nil, fmt.Errorf("index: reopen dropping %s: %w", path, err)
	}
	var hdr [headerSize]byte
	if err := posix.ReadFull(fs, fd, hdr[:], 0); err != nil {
		fs.Close(fd)
		return nil, fmt.Errorf("index: reopen dropping %s: short header: %w", path, err)
	}
	if got := binary.LittleEndian.Uint64(hdr[0:]); got != Magic {
		fs.Close(fd)
		return nil, fmt.Errorf("index: reopen dropping %s: bad magic %#x", path, got)
	}
	return &Writer{fs: fs, fd: fd}, nil
}

// ReadDropping loads every entry from the index dropping at path.
func ReadDropping(fs posix.FS, path string) ([]Entry, error) {
	fd, err := fs.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("index: open dropping %s: %w", path, err)
	}
	defer fs.Close(fd)

	st, err := fs.Fstat(fd)
	if err != nil {
		return nil, err
	}
	if st.Size < headerSize {
		return nil, fmt.Errorf("index: dropping %s too short (%d bytes)", path, st.Size)
	}
	data := make([]byte, st.Size)
	if err := posix.ReadFull(fs, fd, data, 0); err != nil {
		return nil, fmt.Errorf("index: read dropping %s: %w", path, err)
	}
	if got := binary.LittleEndian.Uint64(data[0:]); got != Magic {
		return nil, fmt.Errorf("index: dropping %s: bad magic %#x", path, got)
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != version {
		return nil, fmt.Errorf("index: dropping %s: unsupported version %d", path, got)
	}
	body := data[headerSize:]
	if len(body)%EntrySize != 0 {
		return nil, fmt.Errorf("index: dropping %s: torn record (%d trailing bytes)", path, len(body)%EntrySize)
	}
	entries := make([]Entry, 0, len(body)/EntrySize)
	for off := 0; off < len(body); off += EntrySize {
		var e Entry
		if err := e.Unmarshal(body[off : off+EntrySize]); err != nil {
			return nil, fmt.Errorf("index: dropping %s record %d: %w", path, off/EntrySize, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteDropping writes a complete dropping with the given entries,
// replacing any existing file. Used when a truncate consolidates a
// container's index.
func WriteDropping(fs posix.FS, path string, entries []Entry) error {
	w, err := NewWriter(fs, path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		w.Append(e)
	}
	return w.Close()
}
