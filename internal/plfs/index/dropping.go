package index

import (
	"encoding/binary"
	"fmt"

	"ldplfs/internal/posix"
)

// droppingHeader prefixes every index dropping: magic plus a format version.
const (
	headerSize = 16
	version    = 1
)

// DroppingHeaderSize is the on-disk length of an index dropping's header
// — what inspection tools subtract before dividing by EntrySize to count
// records without parsing.
const DroppingHeaderSize = headerSize

// Writer appends index records to an index dropping file through a posix
// backend. It buffers records and flushes on Sync/Close so that a long run
// of small writes costs one appended burst, as in PLFS's buffered index.
type Writer struct {
	fs  posix.FS
	fd  int
	buf []byte
}

// NewWriter creates (or truncates) the index dropping at path and writes
// its header.
func NewWriter(fs posix.FS, path string) (*Writer, error) {
	fd, err := fs.Open(path, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC|posix.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("index: create dropping %s: %w", path, err)
	}
	w := &Writer{fs: fs, fd: fd}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], Magic)
	binary.LittleEndian.PutUint64(hdr[8:], version)
	if _, err := fs.Write(fd, hdr[:]); err != nil {
		fs.Close(fd)
		return nil, fmt.Errorf("index: write header: %w", err)
	}
	return w, nil
}

// Buffered returns the number of bytes of appended records not yet
// flushed to the dropping.
func (w *Writer) Buffered() int { return len(w.buf) }

// BufferedRecords returns the number of whole records not yet flushed —
// the unit the write engine's group-flush threshold counts in.
func (w *Writer) BufferedRecords() int { return len(w.buf) / EntrySize }

// Append buffers one entry.
func (w *Writer) Append(e Entry) {
	var rec [EntrySize]byte
	e.Marshal(rec[:])
	w.buf = append(w.buf, rec[:]...)
}

// Flush appends the buffered records to the dropping without forcing
// them to stable storage (the write engine's group flush; Sync adds the
// fsync). It returns the number of bytes that reached the dropping. On a
// short write the durable prefix is dropped from the buffer, so a retry
// continues exactly where the backend stopped instead of duplicating
// record bytes and tearing the dropping.
func (w *Writer) Flush() (int, error) {
	flushed := 0
	for len(w.buf) > 0 {
		n, err := w.fs.Write(w.fd, w.buf)
		if n > 0 {
			w.buf = w.buf[:copy(w.buf, w.buf[n:])]
			flushed += n
		}
		if err != nil {
			return flushed, fmt.Errorf("index: flush: %w", err)
		}
		if n <= 0 {
			return flushed, fmt.Errorf("index: flush: zero-length write")
		}
	}
	return flushed, nil
}

// Sync flushes buffered entries to the dropping and forces them down.
func (w *Writer) Sync() error {
	if _, err := w.Flush(); err != nil {
		return err
	}
	return w.fs.Fsync(w.fd)
}

// Close flushes and closes the dropping.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.fs.Close(w.fd)
		return err
	}
	return w.fs.Close(w.fd)
}

// OpenWriter opens an existing index dropping for appending, after
// validating its header. New records land after the existing ones. A
// trailing partial record (a flush that died mid-record, or a crashed
// writer's torn tail) is truncated away first, so resumed appends stay
// record-aligned instead of corrupting everything written after them.
func OpenWriter(fs posix.FS, path string) (*Writer, error) {
	fd, err := fs.Open(path, posix.O_RDWR|posix.O_APPEND, 0)
	if err != nil {
		return nil, fmt.Errorf("index: reopen dropping %s: %w", path, err)
	}
	var hdr [headerSize]byte
	if err := posix.ReadFull(fs, fd, hdr[:], 0); err != nil {
		fs.Close(fd)
		return nil, fmt.Errorf("index: reopen dropping %s: short header: %w", path, err)
	}
	if got := binary.LittleEndian.Uint64(hdr[0:]); got != Magic {
		fs.Close(fd)
		return nil, fmt.Errorf("index: reopen dropping %s: bad magic %#x", path, got)
	}
	st, err := fs.Fstat(fd)
	if err != nil {
		fs.Close(fd)
		return nil, err
	}
	if torn := (st.Size - headerSize) % EntrySize; torn != 0 {
		if err := fs.Ftruncate(fd, st.Size-torn); err != nil {
			fs.Close(fd)
			return nil, fmt.Errorf("index: reopen dropping %s: trim torn tail: %w", path, err)
		}
	}
	return &Writer{fs: fs, fd: fd}, nil
}

// ReadDropping loads every entry from the index dropping at path. A
// trailing partial record is ignored, not an error: the write engine
// group-flushes record batches, and a short flush (or a crash mid-
// append) legitimately leaves a record prefix on the backend that the
// writer completes on its next flush — readers racing that window must
// see the whole records, not fail the container. Durability is not
// weakened: a record is only promised once plfs_sync succeeded, and a
// torn record by definition never did. Corruption inside whole records
// is still caught by the per-record checksum.
func ReadDropping(fs posix.FS, path string) ([]Entry, error) {
	fd, err := fs.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("index: open dropping %s: %w", path, err)
	}
	defer fs.Close(fd)

	st, err := fs.Fstat(fd)
	if err != nil {
		return nil, err
	}
	if st.Size < headerSize {
		return nil, fmt.Errorf("index: dropping %s too short (%d bytes)", path, st.Size)
	}
	data := make([]byte, st.Size)
	if err := posix.ReadFull(fs, fd, data, 0); err != nil {
		return nil, fmt.Errorf("index: read dropping %s: %w", path, err)
	}
	if got := binary.LittleEndian.Uint64(data[0:]); got != Magic {
		return nil, fmt.Errorf("index: dropping %s: bad magic %#x", path, got)
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != version {
		return nil, fmt.Errorf("index: dropping %s: unsupported version %d", path, got)
	}
	body := data[headerSize:]
	body = body[:len(body)-len(body)%EntrySize] // drop an in-flight partial tail
	entries := make([]Entry, 0, len(body)/EntrySize)
	for off := 0; off < len(body); off += EntrySize {
		var e Entry
		if err := e.Unmarshal(body[off : off+EntrySize]); err != nil {
			return nil, fmt.Errorf("index: dropping %s record %d: %w", path, off/EntrySize, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteDropping writes a complete dropping with the given entries,
// replacing any existing file. Used when a truncate consolidates a
// container's index.
func WriteDropping(fs posix.FS, path string, entries []Entry) error {
	w, err := NewWriter(fs, path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		w.Append(e)
	}
	return w.Close()
}
