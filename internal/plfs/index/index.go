// Package index implements the PLFS index: the metadata that maps a
// container's logical byte space onto the physical byte space of its data
// droppings.
//
// Every write a process performs against a PLFS file appends the payload to
// that process's data dropping and appends one fixed-size Entry to its index
// dropping. Reading the file back requires merging every index dropping in
// the container into a single global index — a set of non-overlapping
// logical extents where, for overlapping writes, the entry with the highest
// timestamp wins (last writer wins, as in PLFS proper).
package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Entry records a single logical write. It is the in-memory form of one
// on-disk index record.
type Entry struct {
	LogicalOffset  int64  // offset within the PLFS file the application wrote
	Length         int64  // number of bytes written
	PhysicalOffset int64  // offset within the data dropping
	Timestamp      uint64 // logical timestamp; later overwrites earlier
	Pid            uint32 // writer id, selects the data dropping
	Dropping       uint32 // dropping id within the container (hostdir-scoped)
}

// EntrySize is the on-disk size of one index record in bytes.
const EntrySize = 48

// Magic identifies an index dropping header record.
const Magic uint64 = 0x504c465349445831 // "PLFSIDX1"

// Marshal encodes the entry into buf, which must be at least EntrySize long.
func (e Entry) Marshal(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.LogicalOffset))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.Length))
	binary.LittleEndian.PutUint64(buf[16:], uint64(e.PhysicalOffset))
	binary.LittleEndian.PutUint64(buf[24:], e.Timestamp)
	binary.LittleEndian.PutUint32(buf[32:], e.Pid)
	binary.LittleEndian.PutUint32(buf[36:], e.Dropping)
	binary.LittleEndian.PutUint64(buf[40:], e.checksum())
}

// Unmarshal decodes an entry from buf and verifies its checksum.
func (e *Entry) Unmarshal(buf []byte) error {
	if len(buf) < EntrySize {
		return fmt.Errorf("index entry: short buffer (%d bytes)", len(buf))
	}
	e.LogicalOffset = int64(binary.LittleEndian.Uint64(buf[0:]))
	e.Length = int64(binary.LittleEndian.Uint64(buf[8:]))
	e.PhysicalOffset = int64(binary.LittleEndian.Uint64(buf[16:]))
	e.Timestamp = binary.LittleEndian.Uint64(buf[24:])
	e.Pid = binary.LittleEndian.Uint32(buf[32:])
	e.Dropping = binary.LittleEndian.Uint32(buf[36:])
	if got := binary.LittleEndian.Uint64(buf[40:]); got != e.checksum() {
		return fmt.Errorf("index entry: checksum mismatch (got %#x want %#x)", got, e.checksum())
	}
	return nil
}

// checksum is a cheap integrity word over the record fields (FNV-1a over
// the packed fields); it catches torn or misaligned index droppings.
func (e Entry) checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(e.LogicalOffset))
	mix(uint64(e.Length))
	mix(uint64(e.PhysicalOffset))
	mix(e.Timestamp)
	mix(uint64(e.Pid)<<32 | uint64(e.Dropping))
	return h
}

// Extent is one contiguous piece of the resolved logical file: Length bytes
// at LogicalOffset live at PhysicalOffset in dropping (Pid, Dropping). A
// zero-filled hole is represented by Hole=true.
type Extent struct {
	LogicalOffset  int64
	Length         int64
	PhysicalOffset int64
	Pid            uint32
	Dropping       uint32
	Hole           bool
}

// Index is the merged, queryable global index of a container. The zero
// value is an empty index.
type Index struct {
	extents []Extent // sorted by LogicalOffset, non-overlapping
	size    int64    // logical EOF: max(offset+length) over all entries
	trunc   bool     // whether an explicit truncation capped size
}

// Build merges entries (from any number of index droppings, in any order)
// into a queryable index. Overlaps resolve to the highest timestamp; ties
// break toward the higher (Pid, Dropping) pair so the result is
// deterministic regardless of input order.
func Build(entries []Entry) *Index {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Timestamp != b.Timestamp {
			return a.Timestamp < b.Timestamp
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.Dropping < b.Dropping
	})
	idx := &Index{}
	for _, e := range sorted {
		idx.insert(e)
	}
	return idx
}

// insert overlays one entry onto the index; the entry wins every overlap
// (callers insert in ascending timestamp order).
func (idx *Index) insert(e Entry) {
	if e.Length <= 0 {
		return
	}
	if end := e.LogicalOffset + e.Length; end > idx.size {
		idx.size = end
	}
	newExt := Extent{
		LogicalOffset:  e.LogicalOffset,
		Length:         e.Length,
		PhysicalOffset: e.PhysicalOffset,
		Pid:            e.Pid,
		Dropping:       e.Dropping,
	}
	lo, hi := e.LogicalOffset, e.LogicalOffset+e.Length

	// Fast path: appending past the current tail (the overwhelmingly
	// common case — sequential checkpoint streams) costs O(1) instead of
	// a full splice.
	if n := len(idx.extents); n == 0 || idx.extents[n-1].LogicalOffset+idx.extents[n-1].Length <= lo {
		idx.extents = append(idx.extents, newExt)
		return
	}

	// Find the first extent that ends after lo.
	i := sort.Search(len(idx.extents), func(k int) bool {
		x := idx.extents[k]
		return x.LogicalOffset+x.Length > lo
	})
	out := make([]Extent, 0, len(idx.extents)+2)
	out = append(out, idx.extents[:i]...)

	// Walk the extents overlapping [lo,hi). At most the first contributes a
	// surviving left piece and at most the last a right piece; everything
	// in between is fully shadowed by the new write.
	var right *Extent
	j := i
	for ; j < len(idx.extents); j++ {
		x := idx.extents[j]
		if x.LogicalOffset >= hi {
			break
		}
		if x.LogicalOffset < lo {
			left := x
			left.Length = lo - x.LogicalOffset
			out = append(out, left)
		}
		if xEnd := x.LogicalOffset + x.Length; xEnd > hi {
			r := x
			r.Length = xEnd - hi
			r.LogicalOffset = hi
			if !x.Hole {
				r.PhysicalOffset = x.PhysicalOffset + (hi - x.LogicalOffset)
			}
			right = &r
		}
	}
	out = append(out, newExt)
	if right != nil {
		out = append(out, *right)
	}
	out = append(out, idx.extents[j:]...)
	idx.extents = out
}

// Size returns the logical size of the file: the highest written offset
// plus one (or the truncated size if a truncate capped it).
func (idx *Index) Size() int64 { return idx.size }

// Truncate drops every extent at or beyond size and clips extents that
// straddle it, mirroring plfs_trunc.
func (idx *Index) Truncate(size int64) {
	if size < 0 {
		size = 0
	}
	var out []Extent
	for _, x := range idx.extents {
		switch {
		case x.LogicalOffset >= size:
			// dropped entirely
		case x.LogicalOffset+x.Length > size:
			x.Length = size - x.LogicalOffset
			out = append(out, x)
		default:
			out = append(out, x)
		}
	}
	idx.extents = out
	idx.size = size
	idx.trunc = true
}

// Extend grows the logical size (a truncate upward), zero-filling.
func (idx *Index) Extend(size int64) {
	if size > idx.size {
		idx.size = size
	}
}

// Query resolves the logical range [off, off+length) into a minimal
// sequence of extents covering it, including Hole extents for unwritten
// gaps. Ranges beyond EOF are clipped; a query entirely past EOF returns
// nil.
func (idx *Index) Query(off, length int64) []Extent {
	if off < 0 || length <= 0 || off >= idx.size {
		return nil
	}
	if off+length > idx.size {
		length = idx.size - off
	}
	lo, hi := off, off+length

	var out []Extent
	i := sort.Search(len(idx.extents), func(k int) bool {
		x := idx.extents[k]
		return x.LogicalOffset+x.Length > lo
	})
	cur := lo
	for ; i < len(idx.extents) && cur < hi; i++ {
		x := idx.extents[i]
		if x.LogicalOffset >= hi {
			break
		}
		if x.LogicalOffset > cur {
			out = append(out, Extent{LogicalOffset: cur, Length: x.LogicalOffset - cur, Hole: true})
			cur = x.LogicalOffset
		}
		// Clip x to [cur, hi).
		skip := cur - x.LogicalOffset
		n := x.Length - skip
		if rem := hi - cur; n > rem {
			n = rem
		}
		ext := Extent{
			LogicalOffset:  cur,
			Length:         n,
			PhysicalOffset: x.PhysicalOffset + skip,
			Pid:            x.Pid,
			Dropping:       x.Dropping,
			Hole:           x.Hole,
		}
		out = append(out, ext)
		cur += n
	}
	if cur < hi {
		out = append(out, Extent{LogicalOffset: cur, Length: hi - cur, Hole: true})
	}
	return out
}

// Extents returns a copy of the resolved extent list (holes omitted),
// useful for container inspection tools.
func (idx *Index) Extents() []Extent {
	out := make([]Extent, len(idx.extents))
	copy(out, idx.extents)
	return out
}

// NumExtents returns the number of resolved (non-hole) extents.
func (idx *Index) NumExtents() int { return len(idx.extents) }
