// Package index implements the PLFS index: the metadata that maps a
// container's logical byte space onto the physical byte space of its data
// droppings.
//
// Every write a process performs against a PLFS file appends the payload to
// that process's data dropping and appends one fixed-size Entry to its index
// dropping. Reading the file back requires merging every index dropping in
// the container into a single global index — a set of non-overlapping
// logical extents where, for overlapping writes, the entry with the highest
// timestamp wins (last writer wins, as in PLFS proper).
//
// The merged index is held as a chunked interval map: the extent table is
// split into bounded chunks ordered by logical offset, so an overlay insert
// touches only the chunks its range covers (binary search over chunk
// boundaries, splice within a chunk) instead of memmoving one monolithic
// sorted slice. Random-offset overlays — the shape an interleaved N-writer
// merge produces — cost O(chunk) each rather than O(extents), while
// sequential appends keep their O(1) fast path.
package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Entry records a single logical write. It is the in-memory form of one
// on-disk index record.
type Entry struct {
	LogicalOffset  int64  // offset within the PLFS file the application wrote
	Length         int64  // number of bytes written
	PhysicalOffset int64  // offset within the data dropping
	Timestamp      uint64 // logical timestamp; later overwrites earlier
	Pid            uint32 // writer id, selects the data dropping
	Dropping       uint32 // dropping id within the container (hostdir-scoped)
}

// EntrySize is the on-disk size of one index record in bytes.
const EntrySize = 48

// Magic identifies an index dropping header record.
const Magic uint64 = 0x504c465349445831 // "PLFSIDX1"

// Marshal encodes the entry into buf, which must be at least EntrySize long.
func (e Entry) Marshal(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.LogicalOffset))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.Length))
	binary.LittleEndian.PutUint64(buf[16:], uint64(e.PhysicalOffset))
	binary.LittleEndian.PutUint64(buf[24:], e.Timestamp)
	binary.LittleEndian.PutUint32(buf[32:], e.Pid)
	binary.LittleEndian.PutUint32(buf[36:], e.Dropping)
	binary.LittleEndian.PutUint64(buf[40:], e.checksum())
}

// Unmarshal decodes an entry from buf and verifies its checksum.
func (e *Entry) Unmarshal(buf []byte) error {
	if len(buf) < EntrySize {
		return fmt.Errorf("index entry: short buffer (%d bytes)", len(buf))
	}
	e.LogicalOffset = int64(binary.LittleEndian.Uint64(buf[0:]))
	e.Length = int64(binary.LittleEndian.Uint64(buf[8:]))
	e.PhysicalOffset = int64(binary.LittleEndian.Uint64(buf[16:]))
	e.Timestamp = binary.LittleEndian.Uint64(buf[24:])
	e.Pid = binary.LittleEndian.Uint32(buf[32:])
	e.Dropping = binary.LittleEndian.Uint32(buf[36:])
	if got := binary.LittleEndian.Uint64(buf[40:]); got != e.checksum() {
		return fmt.Errorf("index entry: checksum mismatch (got %#x want %#x)", got, e.checksum())
	}
	return nil
}

// checksum is a cheap integrity word over the record fields (FNV-1a over
// the packed fields); it catches torn or misaligned index droppings.
func (e Entry) checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(e.LogicalOffset))
	mix(uint64(e.Length))
	mix(uint64(e.PhysicalOffset))
	mix(e.Timestamp)
	mix(uint64(e.Pid)<<32 | uint64(e.Dropping))
	return h
}

// Extent is one contiguous piece of the resolved logical file: Length bytes
// at LogicalOffset live at PhysicalOffset in dropping (Pid, Dropping). A
// zero-filled hole is represented by Hole=true.
type Extent struct {
	LogicalOffset  int64
	Length         int64
	PhysicalOffset int64
	Pid            uint32
	Dropping       uint32
	Hole           bool
}

// chunkTarget is the nominal extent count per interval-map chunk. Inserts
// splice within one chunk, so the per-overlay memmove is bounded by a few
// chunkTarget-sized copies; chunks split at twice the target.
const chunkTarget = 256

// chunk is one bounded run of the interval map: sorted, non-overlapping
// extents. Chunks are never empty.
type chunk struct {
	ext []Extent
}

func (c *chunk) start() int64 { return c.ext[0].LogicalOffset }
func (c *chunk) end() int64 {
	last := c.ext[len(c.ext)-1]
	return last.LogicalOffset + last.Length
}

// Index is the merged, queryable global index of a container. The zero
// value is an empty index.
type Index struct {
	chunks []*chunk // globally sorted, non-overlapping; every chunk non-empty
	n      int      // total extent count across chunks
	size   int64    // logical EOF: max(offset+length) over all entries
	trunc  bool     // whether an explicit truncation capped size
}

// Build merges entries (from any number of index droppings, in any order)
// into a queryable index. Overlaps resolve to the highest timestamp; ties
// break toward the higher (Pid, Dropping) pair so the result is
// deterministic regardless of input order.
func Build(entries []Entry) *Index {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Timestamp != b.Timestamp {
			return a.Timestamp < b.Timestamp
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.Dropping < b.Dropping
	})
	idx := &Index{}
	for _, e := range sorted {
		idx.insert(e)
	}
	return idx
}

// FromExtents builds an index directly from an already-resolved extent
// table — sorted by logical offset, non-overlapping, no holes — plus the
// logical size (which may exceed the last extent's end when a truncate
// extended the file). This is the O(extents) load path a flattened
// on-disk record enables: no sort, no overlay merge. The table is
// validated; a malformed table (out of order, overlapping, non-positive
// length, hole marker, size below the data) is rejected so a corrupt
// flattened record can never resolve reads.
func FromExtents(extents []Extent, size int64) (*Index, error) {
	idx := &Index{size: size}
	var prevEnd int64
	for i, x := range extents {
		if x.Length <= 0 {
			return nil, fmt.Errorf("index: extent %d has non-positive length %d", i, x.Length)
		}
		if x.Hole {
			return nil, fmt.Errorf("index: extent %d is a hole (holes are implicit)", i)
		}
		if x.LogicalOffset < prevEnd {
			return nil, fmt.Errorf("index: extent %d at %d overlaps previous end %d", i, x.LogicalOffset, prevEnd)
		}
		if x.LogicalOffset > math.MaxInt64-x.Length {
			return nil, fmt.Errorf("index: extent %d end overflows (%+v)", i, x)
		}
		prevEnd = x.LogicalOffset + x.Length
	}
	if len(extents) > 0 && size < prevEnd {
		return nil, fmt.Errorf("index: size %d below last extent end %d", size, prevEnd)
	}
	if size < 0 {
		return nil, fmt.Errorf("index: negative size %d", size)
	}
	for len(extents) > 0 {
		n := chunkTarget
		if n > len(extents) {
			n = len(extents)
		}
		c := &chunk{ext: make([]Extent, n)}
		copy(c.ext, extents[:n])
		idx.chunks = append(idx.chunks, c)
		idx.n += n
		extents = extents[n:]
	}
	return idx, nil
}

// findChunk returns the index of the first chunk whose end is after off
// (len(chunks) if none).
func (idx *Index) findChunk(off int64) int {
	return sort.Search(len(idx.chunks), func(k int) bool {
		return idx.chunks[k].end() > off
	})
}

// splitChunk splits chunk i in half when it outgrows the target.
func (idx *Index) splitChunk(i int) {
	c := idx.chunks[i]
	if len(c.ext) < 2*chunkTarget {
		return
	}
	mid := len(c.ext) / 2
	right := &chunk{ext: make([]Extent, len(c.ext)-mid)}
	copy(right.ext, c.ext[mid:])
	c.ext = c.ext[:mid:mid]
	idx.chunks = append(idx.chunks, nil)
	copy(idx.chunks[i+2:], idx.chunks[i+1:])
	idx.chunks[i+1] = right
}

// chunkify splits a merged extent run into evenly sized chunks of at
// most chunkTarget extents. Even distribution matters: a greedy
// 256-then-remainder split would shed size-1 slivers on every
// mid-chunk insert, collapsing average chunk size and blowing up the
// chunk count (and with it the per-insert splice cost).
func chunkify(extents []Extent) []*chunk {
	if len(extents) == 0 {
		return nil
	}
	pieces := (len(extents) + chunkTarget - 1) / chunkTarget
	out := make([]*chunk, 0, pieces)
	for i := 0; i < pieces; i++ {
		lo := i * len(extents) / pieces
		hi := (i + 1) * len(extents) / pieces
		c := &chunk{ext: make([]Extent, hi-lo)}
		copy(c.ext, extents[lo:hi])
		out = append(out, c)
	}
	return out
}

// insert overlays one entry onto the index; the entry wins every overlap
// (callers insert in ascending timestamp order).
func (idx *Index) insert(e Entry) {
	if e.Length <= 0 {
		return
	}
	if end := e.LogicalOffset + e.Length; end > idx.size {
		idx.size = end
	}
	newExt := Extent{
		LogicalOffset:  e.LogicalOffset,
		Length:         e.Length,
		PhysicalOffset: e.PhysicalOffset,
		Pid:            e.Pid,
		Dropping:       e.Dropping,
	}
	lo, hi := e.LogicalOffset, e.LogicalOffset+e.Length

	// Fast path: appending past the current tail (the overwhelmingly
	// common case — sequential checkpoint streams) costs O(1) instead of
	// a splice.
	nc := len(idx.chunks)
	if nc == 0 {
		idx.chunks = []*chunk{{ext: []Extent{newExt}}}
		idx.n = 1
		return
	}
	if last := idx.chunks[nc-1]; last.end() <= lo {
		last.ext = append(last.ext, newExt)
		idx.n++
		idx.splitChunk(nc - 1)
		return
	}

	// General overlay: locate the first extent whose end is after lo,
	// then consume every extent overlapping [lo,hi). Only the first
	// overlapped extent can contribute a surviving left piece and only
	// the last a right piece; everything between is fully shadowed.
	ci := idx.findChunk(lo)
	c := idx.chunks[ci]
	ei := sort.Search(len(c.ext), func(k int) bool {
		x := c.ext[k]
		return x.LogicalOffset+x.Length > lo
	})
	var left, right *Extent
	cj, ej := ci, ei
	removed := 0
walk:
	for cj < len(idx.chunks) {
		cc := idx.chunks[cj]
		for ej < len(cc.ext) {
			x := cc.ext[ej]
			if x.LogicalOffset >= hi {
				break walk
			}
			if x.LogicalOffset < lo {
				l := x
				l.Length = lo - x.LogicalOffset
				left = &l
			}
			if xEnd := x.LogicalOffset + x.Length; xEnd > hi {
				r := x
				r.Length = xEnd - hi
				r.LogicalOffset = hi
				if !x.Hole {
					r.PhysicalOffset = x.PhysicalOffset + (hi - x.LogicalOffset)
				}
				right = &r
			}
			removed++
			ej++
		}
		cj++
		ej = 0
	}
	// Overlap-free insert (the dominant case in an interleaved many-
	// writer merge): splice into chunk ci in place instead of rebuilding
	// it, splitting only when the chunk outgrows its bound.
	if removed == 0 {
		c.ext = append(c.ext, Extent{})
		copy(c.ext[ei+1:], c.ext[ei:])
		c.ext[ei] = newExt
		idx.n++
		idx.splitChunk(ci)
		return
	}

	// Affected chunk range is [ci, lastAffected]; tail holds the
	// untouched extents after the overlap inside the last affected chunk.
	lastAffected := cj
	var tail []Extent
	if cj == len(idx.chunks) {
		lastAffected = cj - 1
	} else if ej == 0 {
		// The walk stopped at the first extent of chunk cj: that chunk is
		// untouched.
		lastAffected = cj - 1
	} else {
		tail = idx.chunks[cj].ext[ej:]
	}

	merged := make([]Extent, 0, ei+3+len(tail))
	merged = append(merged, c.ext[:ei]...)
	if left != nil {
		merged = append(merged, *left)
	}
	merged = append(merged, newExt)
	if right != nil {
		merged = append(merged, *right)
	}
	merged = append(merged, tail...)

	replaced := 0
	for k := ci; k <= lastAffected; k++ {
		replaced += len(idx.chunks[k].ext)
	}
	pieces := chunkify(merged)
	out := make([]*chunk, 0, len(idx.chunks)-(lastAffected-ci+1)+len(pieces))
	out = append(out, idx.chunks[:ci]...)
	out = append(out, pieces...)
	out = append(out, idx.chunks[lastAffected+1:]...)
	idx.chunks = out
	idx.n += len(merged) - replaced
}

// Size returns the logical size of the file: the highest written offset
// plus one (or the truncated size if a truncate capped it).
func (idx *Index) Size() int64 { return idx.size }

// Truncate drops every extent at or beyond size and clips extents that
// straddle it, mirroring plfs_trunc.
func (idx *Index) Truncate(size int64) {
	if size < 0 {
		size = 0
	}
	ci := idx.findChunk(size)
	if ci < len(idx.chunks) {
		c := idx.chunks[ci]
		// Clip within the straddling chunk.
		keep := sort.Search(len(c.ext), func(k int) bool {
			return c.ext[k].LogicalOffset >= size
		})
		kept := c.ext[:keep]
		if keep > 0 {
			if last := &kept[keep-1]; last.LogicalOffset+last.Length > size {
				last.Length = size - last.LogicalOffset
			}
		}
		// Recount the dropped tail.
		dropped := len(c.ext) - keep
		for k := ci + 1; k < len(idx.chunks); k++ {
			dropped += len(idx.chunks[k].ext)
		}
		if keep == 0 {
			idx.chunks = idx.chunks[:ci]
		} else {
			c.ext = kept
			idx.chunks = idx.chunks[:ci+1]
		}
		idx.n -= dropped
	}
	idx.size = size
	idx.trunc = true
}

// Extend grows the logical size (a truncate upward), zero-filling.
func (idx *Index) Extend(size int64) {
	if size > idx.size {
		idx.size = size
	}
}

// Query resolves the logical range [off, off+length) into a minimal
// sequence of extents covering it, including Hole extents for unwritten
// gaps. Ranges beyond EOF are clipped; a query entirely past EOF returns
// nil.
func (idx *Index) Query(off, length int64) []Extent {
	return idx.QueryInto(nil, off, length)
}

// QueryInto is Query appending into dst — the allocation-free form the
// read engine's pooled plans use: pass a recycled slice truncated to
// zero length and the warm path never grows it.
func (idx *Index) QueryInto(dst []Extent, off, length int64) []Extent {
	if off < 0 || length <= 0 || off >= idx.size {
		return dst
	}
	if off+length > idx.size {
		length = idx.size - off
	}
	lo, hi := off, off+length

	out := dst
	ci := idx.findChunk(lo)
	cur := lo
	var ei int
	if ci < len(idx.chunks) {
		c := idx.chunks[ci]
		ei = sort.Search(len(c.ext), func(k int) bool {
			x := c.ext[k]
			return x.LogicalOffset+x.Length > lo
		})
	}
	for ci < len(idx.chunks) && cur < hi {
		c := idx.chunks[ci]
		for ; ei < len(c.ext) && cur < hi; ei++ {
			x := c.ext[ei]
			if x.LogicalOffset >= hi {
				ci = len(idx.chunks) // terminate outer loop
				break
			}
			if x.LogicalOffset > cur {
				out = append(out, Extent{LogicalOffset: cur, Length: x.LogicalOffset - cur, Hole: true})
				cur = x.LogicalOffset
			}
			// Clip x to [cur, hi).
			skip := cur - x.LogicalOffset
			n := x.Length - skip
			if rem := hi - cur; n > rem {
				n = rem
			}
			out = append(out, Extent{
				LogicalOffset:  cur,
				Length:         n,
				PhysicalOffset: x.PhysicalOffset + skip,
				Pid:            x.Pid,
				Dropping:       x.Dropping,
				Hole:           x.Hole,
			})
			cur += n
		}
		ci++
		ei = 0
	}
	if cur < hi {
		out = append(out, Extent{LogicalOffset: cur, Length: hi - cur, Hole: true})
	}
	return out
}

// Extents returns a copy of the resolved extent list (holes omitted),
// useful for container inspection tools and index flattening.
func (idx *Index) Extents() []Extent {
	out := make([]Extent, 0, idx.n)
	for _, c := range idx.chunks {
		out = append(out, c.ext...)
	}
	return out
}

// NumExtents returns the number of resolved (non-hole) extents.
func (idx *Index) NumExtents() int { return idx.n }
