package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldplfs/internal/posix"
)

// The flattened global index record: the resolved, non-overlapping extent
// table of an entire container persisted as one canonical file, so a cold
// open loads O(extents) instead of re-merging O(total-entries) across
// every writer's index dropping — PLFS's index flattening, made crash-safe
// and self-invalidating.
//
// On-disk layout (all fields little-endian):
//
//	header (48 bytes):
//	  magic       8  FlattenedMagic ("PLFSFLT1")
//	  version     8  FlattenedVersion
//	  generation  8  must match the <gen> in the file name
//	  rawsig      8  RawSignature of the droppings the table was built from
//	  size        8  logical file size (may exceed the last extent's end)
//	  count       8  number of extent records
//	extent records (count × 32 bytes):
//	  logical 8, length 8, physical 8, pid 4, dropping 4
//	trailer (8 bytes):
//	  checksum    8  FNV-1a over header + records
//
// A record is trusted only when every structural check passes AND its
// rawsig equals the container's current raw-dropping signature AND no
// writer holds the container open; any mismatch, torn tail, checksum
// failure or overlapping extent makes readers silently fall back to the
// streaming merge of the raw droppings, so a flattened record can delay
// but never corrupt a read.
const (
	// FlattenedMagic identifies a flattened global index file.
	FlattenedMagic uint64 = 0x504c4653464c5431 // "PLFSFLT1"

	// FlattenedVersion is the current flattened record format version.
	FlattenedVersion = 1

	// FlattenedHeaderSize is the fixed header length in bytes.
	FlattenedHeaderSize = 48

	// FlattenedExtentSize is the per-extent record length in bytes.
	FlattenedExtentSize = 32

	// flattenedTrailerSize holds the whole-file checksum.
	flattenedTrailerSize = 8
)

// Flattened is a parsed flattened global index record.
type Flattened struct {
	Generation uint64
	RawSig     uint64
	Size       int64
	Extents    []Extent
}

// RawSignature summarises the raw index droppings a flattened record was
// built from: FNV-1a over (container-relative path, size) pairs in the
// deterministic container listing order — each pair serialised as the
// path bytes, a NUL separator, and the size in little-endian. Unlike the
// read cache's mtime-bearing Signature it survives byte-preserving
// copies and renames (fixture checkouts, container moves), while still
// changing whenever a dropping grows, shrinks, appears or disappears —
// droppings are append-only logs, so (name, size) pins their contents.
func RawSignature(relPaths []string, sizes []int64) uint64 {
	buf := make([]byte, 0, 64*len(relPaths))
	var sz [8]byte
	for i, p := range relPaths {
		buf = append(buf, p...)
		buf = append(buf, 0)
		binary.LittleEndian.PutUint64(sz[:], uint64(sizes[i]))
		buf = append(buf, sz[:]...)
	}
	return fnvSum(buf)
}

// fnvSum is FNV-1a, the checksum and signature hash of the flattened
// format.
func fnvSum(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// MarshalFlattened encodes a flattened record to its on-disk bytes. The
// extent table must already be resolved (sorted, non-overlapping, no
// holes); callers produce it from Index.Extents.
func MarshalFlattened(f *Flattened) []byte {
	buf := make([]byte, FlattenedHeaderSize+len(f.Extents)*FlattenedExtentSize+flattenedTrailerSize)
	binary.LittleEndian.PutUint64(buf[0:], FlattenedMagic)
	binary.LittleEndian.PutUint64(buf[8:], FlattenedVersion)
	binary.LittleEndian.PutUint64(buf[16:], f.Generation)
	binary.LittleEndian.PutUint64(buf[24:], f.RawSig)
	binary.LittleEndian.PutUint64(buf[32:], uint64(f.Size))
	binary.LittleEndian.PutUint64(buf[40:], uint64(len(f.Extents)))
	off := FlattenedHeaderSize
	for _, x := range f.Extents {
		binary.LittleEndian.PutUint64(buf[off+0:], uint64(x.LogicalOffset))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(x.Length))
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(x.PhysicalOffset))
		binary.LittleEndian.PutUint32(buf[off+24:], x.Pid)
		binary.LittleEndian.PutUint32(buf[off+28:], x.Dropping)
		off += FlattenedExtentSize
	}
	binary.LittleEndian.PutUint64(buf[off:], fnvSum(buf[:off]))
	return buf
}

// UnmarshalFlattened parses and validates flattened-record bytes. Every
// structural property a reader relies on is checked here: exact length
// (a torn tail is a hard reject, not a truncation — the record is
// written atomically, so a short file is damage), magic, version,
// checksum, and a sorted, non-overlapping, positive-length extent table
// whose span fits the recorded size.
func UnmarshalFlattened(data []byte) (*Flattened, error) {
	if len(data) < FlattenedHeaderSize+flattenedTrailerSize {
		return nil, fmt.Errorf("index: flattened record too short (%d bytes)", len(data))
	}
	if got := binary.LittleEndian.Uint64(data[0:]); got != FlattenedMagic {
		return nil, fmt.Errorf("index: flattened record: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != FlattenedVersion {
		return nil, fmt.Errorf("index: flattened record: unsupported version %d", got)
	}
	count := binary.LittleEndian.Uint64(data[40:])
	// Bound count before any arithmetic on it: a forged header must not
	// drive an overflowing length check or a giant allocation.
	maxCount := uint64(len(data)-FlattenedHeaderSize-flattenedTrailerSize) / FlattenedExtentSize
	if count > maxCount || uint64(len(data)) != uint64(FlattenedHeaderSize)+count*FlattenedExtentSize+flattenedTrailerSize {
		return nil, fmt.Errorf("index: flattened record: %d bytes do not fit %d extents", len(data), count)
	}
	body := len(data) - flattenedTrailerSize
	if got, sum := binary.LittleEndian.Uint64(data[body:]), fnvSum(data[:body]); got != sum {
		return nil, fmt.Errorf("index: flattened record: checksum mismatch (got %#x want %#x)", got, sum)
	}
	f := &Flattened{
		Generation: binary.LittleEndian.Uint64(data[16:]),
		RawSig:     binary.LittleEndian.Uint64(data[24:]),
		Size:       int64(binary.LittleEndian.Uint64(data[32:])),
		Extents:    make([]Extent, count),
	}
	var prevEnd int64
	off := FlattenedHeaderSize
	for i := range f.Extents {
		x := Extent{
			LogicalOffset:  int64(binary.LittleEndian.Uint64(data[off+0:])),
			Length:         int64(binary.LittleEndian.Uint64(data[off+8:])),
			PhysicalOffset: int64(binary.LittleEndian.Uint64(data[off+16:])),
			Pid:            binary.LittleEndian.Uint32(data[off+24:]),
			Dropping:       binary.LittleEndian.Uint32(data[off+28:]),
		}
		if x.Length <= 0 || x.LogicalOffset < 0 || x.PhysicalOffset < 0 {
			return nil, fmt.Errorf("index: flattened record: extent %d malformed (%+v)", i, x)
		}
		if x.LogicalOffset > math.MaxInt64-x.Length {
			// Overflowing end would wrap negative and defeat the overlap
			// and size checks below; a checksum is no defence against a
			// forged record, so reject here.
			return nil, fmt.Errorf("index: flattened record: extent %d end overflows (%+v)", i, x)
		}
		if x.LogicalOffset < prevEnd {
			return nil, fmt.Errorf("index: flattened record: extent %d at %d overlaps previous end %d",
				i, x.LogicalOffset, prevEnd)
		}
		prevEnd = x.LogicalOffset + x.Length
		f.Extents[i] = x
		off += FlattenedExtentSize
	}
	if f.Size < prevEnd {
		return nil, fmt.Errorf("index: flattened record: size %d below extent end %d", f.Size, prevEnd)
	}
	return f, nil
}

// WriteFlattened persists a flattened record at path atomically: the
// bytes land in a temp file which is fsynced and renamed over the final
// name, so readers only ever observe a complete record or none at all.
func WriteFlattened(fs posix.FS, path string, f *Flattened) error {
	tmp := path + ".tmp"
	fd, err := fs.Open(tmp, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("index: create flattened temp %s: %w", tmp, err)
	}
	data := MarshalFlattened(f)
	if err := posix.WriteFull(fs, fd, data, 0); err != nil {
		fs.Close(fd)
		fs.Unlink(tmp)
		return fmt.Errorf("index: write flattened %s: %w", tmp, err)
	}
	if err := fs.Fsync(fd); err != nil {
		fs.Close(fd)
		fs.Unlink(tmp)
		return fmt.Errorf("index: sync flattened %s: %w", tmp, err)
	}
	if err := fs.Close(fd); err != nil {
		fs.Unlink(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Unlink(tmp)
		return fmt.Errorf("index: publish flattened %s: %w", path, err)
	}
	return nil
}

// ReadFlattened loads and validates the flattened record at path.
func ReadFlattened(fs posix.FS, path string) (*Flattened, error) {
	fd, err := fs.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("index: open flattened %s: %w", path, err)
	}
	defer fs.Close(fd)
	st, err := fs.Fstat(fd)
	if err != nil {
		return nil, err
	}
	data := make([]byte, st.Size)
	if err := posix.ReadFull(fs, fd, data, 0); err != nil {
		return nil, fmt.Errorf("index: read flattened %s: %w", path, err)
	}
	f, err := UnmarshalFlattened(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
