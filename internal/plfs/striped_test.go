package plfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ldplfs/internal/posix"
)

// newStripedFS builds a PLFS instance striped over n in-memory backends
// (each optionally wrapped in a FaultFS), returning the raw MemFS stores
// for physical inspection.
func newStripedFS(t *testing.T, n int, faulty bool, opts Options) (*FS, []*posix.MemFS) {
	t.Helper()
	mems := make([]*posix.MemFS, n)
	opts.Backends = make([]posix.FS, n)
	for i := range mems {
		mems[i] = posix.NewMemFS()
		if faulty {
			opts.Backends[i] = posix.NewFaultFS(mems[i])
		} else {
			opts.Backends[i] = mems[i]
		}
	}
	p := New(nil, opts)
	if err := p.Backend().Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	return p, mems
}

// Droppings of a striped container must physically land on the backend
// the hostdir rule names — canonical metadata stays on backend 0.
func TestStripedContainerPlacement(t *testing.T) {
	p, mems := newStripedFS(t, 3, false, Options{NumHostdirs: 6})
	f, err := p.Open("/backend/data", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 6; pid++ {
		if _, err := f.Write([]byte{byte(pid + 1)}, int64(pid), pid); err != nil {
			t.Fatal(err)
		}
	}
	// Canonical files live only on backend 0 (directories like meta/ and
	// openhosts/ are mirrored as empty skeleton, but their contents are
	// not). host.5 exists while writer 5 is still open; the meta size
	// hints appear at close.
	checkCanonical := func(name string) {
		t.Helper()
		if _, err := mems[0].Stat("/backend/data/" + name); err != nil {
			t.Fatalf("canonical %s missing on backend 0: %v", name, err)
		}
		for bi := 1; bi < 3; bi++ {
			if _, err := mems[bi].Stat("/backend/data/" + name); err == nil {
				t.Fatalf("canonical %s leaked onto backend %d", name, bi)
			}
		}
	}
	checkCanonical(".plfsaccess")
	checkCanonical("version")
	checkCanonical("openhosts/host.5")
	for pid := uint32(0); pid < 6; pid++ {
		f.Close(pid)
	}
	checkCanonical("meta/size.0")
	for pid := 0; pid < 6; pid++ {
		want := pid % 3 // hostdir k = pid % 6 hostdirs; backend = k % 3
		path := fmt.Sprintf("/backend/data/hostdir.%d/dropping.data.%d", pid, pid)
		for bi, m := range mems {
			_, err := m.Stat(path)
			if bi == want && err != nil {
				t.Errorf("pid %d dropping missing on backend %d: %v", pid, bi, err)
			}
			if bi != want && err == nil {
				t.Errorf("pid %d dropping leaked onto backend %d", pid, bi)
			}
		}
	}
	spread, err := p.ContainerSpread("/backend/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(spread) != 3 {
		t.Fatalf("spread has %d buckets, want 3", len(spread))
	}
	for bi, n := range spread {
		if n != 4 { // 2 hostdirs per backend x (data + index)
			t.Errorf("backend %d holds %d droppings, want 4 (spread %v)", bi, n, spread)
		}
	}
	if got := p.NumBackends(); got != 3 {
		t.Fatalf("NumBackends = %d, want 3", got)
	}
}

// stripedScriptInstance is one configuration under the differential
// script: a PLFS instance plus its open handle.
type stripedScriptInstance struct {
	name string
	p    *FS
	f    *File
}

// TestStripedDifferentialScript drives one randomized workload script —
// writes, vectored writes, syncs, reads, truncates, close/reopen —
// against single-backend, 2-backend and 3-backend instances (plain MemFS
// and FaultFS-wrapped) and demands byte-identical reads, sizes and Stat
// results everywhere. Striping must be invisible to the application.
func TestStripedDifferentialScript(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opts := Options{NumHostdirs: 5}
			var insts []*stripedScriptInstance
			for _, cfg := range []struct {
				name   string
				n      int
				faulty bool
				layout string
			}{
				{"single", 1, false, ""},
				{"single-fault", 1, true, ""},
				{"striped2", 2, false, ""},
				{"striped3", 3, false, ""},
				{"striped3-fault", 3, true, ""},
				{"replica2", 3, false, "replica-2"},
				{"replica2-fault", 3, true, "replica-2"},
				{"replica3", 3, false, "replica-3"},
				{"replica3-fault", 3, true, "replica-3"},
			} {
				o := opts
				o.Layout = cfg.layout
				p, _ := newStripedFS(t, cfg.n, cfg.faulty, o)
				f, err := p.Open("/backend/diff", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				insts = append(insts, &stripedScriptInstance{cfg.name, p, f})
			}
			ref := insts[0]

			rng := rand.New(rand.NewSource(seed))
			const maxOff = 1 << 16
			for step := 0; step < 200; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // write
					pid := uint32(rng.Intn(8))
					off := int64(rng.Intn(maxOff))
					buf := make([]byte, 1+rng.Intn(512))
					rng.Read(buf)
					for _, in := range insts {
						if n, err := in.f.Write(buf, off, pid); err != nil || n != len(buf) {
							t.Fatalf("[%s] step %d write: n=%d err=%v", in.name, step, n, err)
						}
					}
				case 4: // vectored write
					pid := uint32(rng.Intn(8))
					segs := make([]WriteSeg, 1+rng.Intn(4))
					for i := range segs {
						data := make([]byte, 1+rng.Intn(256))
						rng.Read(data)
						segs[i] = WriteSeg{Off: int64(rng.Intn(maxOff)), Data: data}
					}
					for _, in := range insts {
						if _, err := in.f.WriteV(segs, pid); err != nil {
							t.Fatalf("[%s] step %d writev: %v", in.name, step, err)
						}
					}
				case 5: // sync
					pid := uint32(rng.Intn(8))
					for _, in := range insts {
						if err := in.f.Sync(pid); err != nil {
							t.Fatalf("[%s] step %d sync: %v", in.name, step, err)
						}
					}
				case 6, 7: // read and compare
					off := int64(rng.Intn(maxOff))
					want := make([]byte, 1+rng.Intn(2048))
					wn, werr := ref.f.Read(want, off)
					if werr != nil {
						t.Fatalf("[%s] step %d read: %v", ref.name, step, werr)
					}
					for _, in := range insts[1:] {
						got := make([]byte, len(want))
						gn, gerr := in.f.Read(got, off)
						if gerr != nil {
							t.Fatalf("[%s] step %d read: %v", in.name, step, gerr)
						}
						if gn != wn || !bytes.Equal(got[:gn], want[:wn]) {
							t.Fatalf("[%s] step %d read diverged at off %d: n=%d vs %d", in.name, step, off, gn, wn)
						}
					}
				case 8: // size
					want, err := ref.f.Size()
					if err != nil {
						t.Fatal(err)
					}
					for _, in := range insts[1:] {
						got, err := in.f.Size()
						if err != nil || got != want {
							t.Fatalf("[%s] step %d size = %d, %v (want %d)", in.name, step, got, err, want)
						}
					}
				case 9: // occasional truncate
					if rng.Intn(4) != 0 {
						continue
					}
					size := int64(rng.Intn(maxOff))
					for _, in := range insts {
						if err := in.f.Trunc(size); err != nil {
							t.Fatalf("[%s] step %d trunc(%d): %v", in.name, step, size, err)
						}
					}
				}
			}

			// Final state: full logical content, Size and Stat must agree.
			wantSize, err := ref.f.Size()
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, wantSize)
			if _, err := ref.f.Read(want, 0); err != nil {
				t.Fatal(err)
			}
			for _, in := range insts[1:] {
				gotSize, err := in.f.Size()
				if err != nil || gotSize != wantSize {
					t.Fatalf("[%s] final size = %d, %v (want %d)", in.name, gotSize, err, wantSize)
				}
				got := make([]byte, gotSize)
				if _, err := in.f.Read(got, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("[%s] final content diverged", in.name)
				}
			}
			for _, in := range insts {
				for pid := uint32(0); pid < 8; pid++ {
					in.f.Close(pid)
				}
			}
			refStat, err := ref.p.Stat("/backend/diff")
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range insts[1:] {
				st, err := in.p.Stat("/backend/diff")
				if err != nil || st.Size != refStat.Size {
					t.Fatalf("[%s] Stat size = %d, %v (want %d)", in.name, st.Size, err, refStat.Size)
				}
			}
			// The striped instances must have genuinely fanned out.
			for _, in := range insts[1:] {
				spread, err := in.p.ContainerSpread("/backend/diff")
				if err != nil {
					t.Fatal(err)
				}
				used := 0
				for _, n := range spread {
					if n > 0 {
						used++
					}
				}
				if len(spread) > 1 && used < 2 {
					t.Fatalf("[%s] container did not fan out: spread %v", in.name, spread)
				}
			}

			// Flatten-mode differential: after the script, every backend
			// configuration must read the exact final bytes in all three
			// index regimes — flattened record trusted, flattened reads
			// disabled, and a deliberately stale record present.
			for _, in := range insts {
				checkFlattenModes(t, in.name, in.p.Backend(), "/backend/diff", 5, want)
			}
		})
	}
}

// checkFlattenModes reads the container through three fresh instances —
// flattened forced on (record refreshed, trust asserted via cache
// stats), flattened reads disabled (pure streaming merge), and with a
// deliberately stale record (newer raw droppings staged behind it,
// fallback asserted) — and demands byte-identical content each time.
// The staging write extends the file deterministically, so callers pass
// the pre-staging expectation in want.
func checkFlattenModes(t *testing.T, name string, backend posix.FS, path string, hostdirs int, want []byte) {
	t.Helper()
	readVia := func(p *FS, wantLen int64) []byte {
		t.Helper()
		f, err := p.Open(path, posix.O_RDONLY, 31337, 0)
		if err != nil {
			t.Fatalf("[%s] open: %v", name, err)
		}
		defer f.Close(31337)
		size, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		if size != wantLen {
			t.Fatalf("[%s] size = %d, want %d", name, size, wantLen)
		}
		buf := make([]byte, size)
		if n, err := f.Read(buf, 0); err != nil || int64(n) != size {
			t.Fatalf("[%s] read = %d, %v", name, n, err)
		}
		return buf
	}

	// Forced on: refresh the record, then prove a cold instance loads it.
	freshP := New(backend, Options{NumHostdirs: hostdirs})
	if _, err := freshP.WriteFlattenedIndex(path); err != nil {
		t.Fatalf("[%s] flatten: %v", name, err)
	}
	onP := New(backend, Options{NumHostdirs: hostdirs})
	if got := readVia(onP, int64(len(want))); !bytes.Equal(got, want) {
		t.Fatalf("[%s] flattened-on read diverged", name)
	}
	if s := cacheStats(onP); s.FlattenedBuilds == 0 {
		t.Fatalf("[%s] flattened-on read did not load the record: %+v", name, s)
	}

	// Forced off: pure streaming merge.
	offP := New(backend, Options{NumHostdirs: hostdirs, DisableFlattenedReads: true})
	if got := readVia(offP, int64(len(want))); !bytes.Equal(got, want) {
		t.Fatalf("[%s] flattened-off read diverged", name)
	}
	if s := cacheStats(offP); s.FlattenedBuilds != 0 {
		t.Fatalf("[%s] disabled instance loaded the record: %+v", name, s)
	}

	// Deliberately stale: append past EOF without refreshing the record.
	staleTail := []byte("stale-mode differential tail")
	wP := New(backend, Options{NumHostdirs: hostdirs, DisableAutoFlatten: true})
	wf, err := wP.Open(path, posix.O_WRONLY, 31338, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write(staleTail, int64(len(want)), 31338); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(31338); err != nil {
		t.Fatal(err)
	}
	wantStale := append(append([]byte(nil), want...), staleTail...)
	staleP := New(backend, Options{NumHostdirs: hostdirs})
	if got := readVia(staleP, int64(len(wantStale))); !bytes.Equal(got, wantStale) {
		t.Fatalf("[%s] stale-record read diverged", name)
	}
	if s := cacheStats(staleP); s.FlattenedBuilds != 0 {
		t.Fatalf("[%s] stale record was trusted: %+v", name, s)
	}
}

// Container-level operations that rewrite or walk the whole container —
// partial truncate (index consolidation), CompactIndex, Flatten, Rename,
// Unlink — must work when droppings span backends.
func TestStripedContainerOps(t *testing.T) {
	p, mems := newStripedFS(t, 3, false, Options{NumHostdirs: 6})
	f, err := p.Open("/backend/ops", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const block = 512
	want := make([]byte, 6*block)
	for pid := uint32(0); pid < 6; pid++ {
		payload := bytes.Repeat([]byte{byte(pid + 1)}, block)
		copy(want[int(pid)*block:], payload)
		if _, err := f.Write(payload, int64(pid)*block, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 6; pid++ {
		if err := f.Close(pid); err != nil {
			t.Fatal(err)
		}
	}

	// Compact: six index droppings on three backends merge into one.
	before, err := p.IndexDroppings("/backend/ops")
	if err != nil || before != 6 {
		t.Fatalf("index droppings before compact = %d, %v (want 6)", before, err)
	}
	if err := p.CompactIndex("/backend/ops"); err != nil {
		t.Fatal(err)
	}
	after, err := p.IndexDroppings("/backend/ops")
	if err != nil || after != 1 {
		t.Fatalf("index droppings after compact = %d, %v (want 1)", after, err)
	}
	readBack := func(path string, size int64) []byte {
		t.Helper()
		rf, err := p.Open(path, posix.O_RDONLY, 99, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer rf.Close(99)
		got := make([]byte, size)
		if n, err := rf.Read(got, 0); err != nil || int64(n) != size {
			t.Fatalf("read %s = %d, %v (want %d)", path, n, err, size)
		}
		return got
	}
	if got := readBack("/backend/ops", int64(len(want))); !bytes.Equal(got, want) {
		t.Fatal("content diverged after cross-backend compact")
	}

	// Partial truncate: consolidation must survive striped droppings.
	if err := p.Truncate("/backend/ops", 3*block); err != nil {
		t.Fatal(err)
	}
	if got := readBack("/backend/ops", 3*block); !bytes.Equal(got, want[:3*block]) {
		t.Fatal("content diverged after cross-backend truncate")
	}

	// Flatten gathers from all backends into one canonical flat file.
	if err := p.Flatten("/backend/ops", "/backend/ops.flat"); err != nil {
		t.Fatal(err)
	}
	st, err := p.Backend().Stat("/backend/ops.flat")
	if err != nil || st.Size != 3*block {
		t.Fatalf("flat file = %d bytes, %v (want %d)", st.Size, err, 3*block)
	}

	// Rename carries shadow hostdir trees along; Unlink clears them.
	if err := p.Rename("/backend/ops", "/backend/ops2"); err != nil {
		t.Fatal(err)
	}
	if got := readBack("/backend/ops2", 3*block); !bytes.Equal(got, want[:3*block]) {
		t.Fatal("content diverged after striped rename")
	}
	if err := p.Unlink("/backend/ops2"); err != nil {
		t.Fatal(err)
	}
	for bi, m := range mems {
		if _, err := m.Stat("/backend/ops2"); err == nil {
			t.Fatalf("container survived unlink on backend %d", bi)
		}
	}
}

// Stale-openhosts diagnosis must consult the backend that actually owns
// the writer's dropping: a live writer whose dropping lives on a shadow
// backend is not stale, and a record whose dropping is gone is — and
// ScrubOpenHosts repairs it.
func TestStripedOpenHostsDoctor(t *testing.T) {
	p, mems := newStripedFS(t, 3, false, Options{NumHostdirs: 6})
	f, err := p.Open("/backend/doc", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// pid 1 -> hostdir.1 -> backend 1: a live writer on a shadow backend.
	if _, err := f.Write([]byte("live"), 0, 1); err != nil {
		t.Fatal(err)
	}
	// pid 2 -> hostdir.2 -> backend 2: writer whose dropping we destroy
	// out from under it, simulating a lost shadow backend file.
	if _, err := f.Write([]byte("doomed"), 8, 2); err != nil {
		t.Fatal(err)
	}
	if err := mems[2].Unlink("/backend/doc/hostdir.2/dropping.data.2"); err != nil {
		t.Fatal(err)
	}

	recs, err := p.OpenHosts("/backend/doc")
	if err != nil {
		t.Fatal(err)
	}
	byPid := map[uint32]bool{}
	for _, r := range recs {
		byPid[r.Pid] = r.Stale
	}
	if stale, ok := byPid[1]; !ok || stale {
		t.Fatalf("pid 1 (live, shadow backend) misdiagnosed: records %+v", recs)
	}
	if stale, ok := byPid[2]; !ok || !stale {
		t.Fatalf("pid 2 (lost dropping) not flagged stale: records %+v", recs)
	}
	removed, err := p.ScrubOpenHosts("/backend/doc")
	if err != nil || removed != 1 {
		t.Fatalf("scrub removed %d, %v (want 1)", removed, err)
	}
	recs, err = p.OpenHosts("/backend/doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Pid != 1 || recs[0].Stale {
		t.Fatalf("after scrub: %+v", recs)
	}
	f.Close(1)
	f.Close(2)
}
