// The concurrent read engine: parallel index reconstruction across a
// container's hostdirs and droppings, and parallel scatter-gather of one
// logical read across its data droppings.
//
// A PLFS read has two phases with very different shapes. Reconstruction
// is "read and parse every index dropping" — embarrassingly parallel
// per dropping, done once per container thanks to the shared cache in
// internal/plfs/readcache. The gather is "pread each resolved extent
// from its data dropping" — parallel per extent, since positional reads
// carry no file pointer (posix.FS requires concurrent-pread safety) and
// each extent lands in a disjoint slice of the caller's buffer.
package plfs

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/plfs/readcache"
	"ldplfs/internal/posix"
)

// defaultWorkerCap bounds the default fan-out: beyond ~8 concurrent
// preads the backends in this repository stop scaling (MemFS serializes
// internally; OSFS saturates the page cache's memcpy bandwidth).
const defaultWorkerCap = 8

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > defaultWorkerCap {
		n = defaultWorkerCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// readWorkers resolves the scatter-gather fan-out: the runtime
// override (the autotune controller / SetReadWorkers) wins over the
// static Options value.
func (p *FS) readWorkers() int {
	if n := p.knobReadWorkers.Load(); n > 0 {
		return int(n)
	}
	if p.cfg.Engine.ReadWorkers > 0 {
		return p.cfg.Engine.ReadWorkers
	}
	return defaultWorkers()
}

func (p *FS) indexWorkers() int {
	if p.cfg.Engine.IndexWorkers > 0 {
		return p.cfg.Engine.IndexWorkers
	}
	return defaultWorkers()
}

// runParallel invokes fn(0..n-1) on a bounded pool of workers and waits
// for all of them. workers <= 1 degrades to a plain loop.
func runParallel(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// listIndexState walks the container once, returning every index
// dropping path in deterministic (hostdir, name) order plus the
// generations of any flattened global index records at the container
// root. The per-hostdir listings fan out across the index worker pool.
func (p *FS) listIndexState(path string) ([]string, []uint64, error) {
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return nil, nil, fmt.Errorf("plfs: list container: %w", err)
	}
	var hostdirs []string
	var flatGens []uint64
	for _, d := range dirs {
		if d.IsDir && strings.HasPrefix(d.Name, "hostdir.") {
			hostdirs = append(hostdirs, path+"/"+d.Name)
		} else if !d.IsDir {
			if gen, ok := parseFlattenedGen(d.Name); ok {
				flatGens = append(flatGens, gen)
			}
		}
	}
	lists := make([][]string, len(hostdirs))
	errs := make([]error, len(hostdirs))
	runParallel(len(hostdirs), p.indexWorkers(), func(i int) {
		files, err := p.backend.Readdir(hostdirs[i])
		if err != nil {
			errs[i] = err
			return
		}
		for _, fe := range files {
			if strings.HasPrefix(fe.Name, "dropping.index.") {
				lists[i] = append(lists[i], hostdirs[i]+"/"+fe.Name)
			}
		}
	})
	var droppings []string
	for i := range hostdirs {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		droppings = append(droppings, lists[i]...)
	}
	return droppings, flatGens, nil
}

// listIndexDroppings returns the container's index dropping paths.
func (p *FS) listIndexDroppings(path string) ([]string, error) {
	droppings, _, err := p.listIndexState(path)
	return droppings, err
}

// readAllEntries loads every index dropping in the container, fanning
// the loads out across the index worker pool. Entry order across
// droppings is unspecified; idx.Build resolves by timestamp.
func (p *FS) readAllEntries(path string) ([]idx.Entry, error) {
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return nil, err
	}
	return p.loadDroppings(droppings)
}

func (p *FS) loadDroppings(droppings []string) ([]idx.Entry, error) {
	results := make([][]idx.Entry, len(droppings))
	errs := make([]error, len(droppings))
	runParallel(len(droppings), p.indexWorkers(), func(i int) {
		results[i], errs[i] = idx.ReadDropping(p.backend, droppings[i])
	})
	total := 0
	for i := range droppings {
		if errs[i] != nil {
			// Deterministic: the first failing dropping in list order
			// wins, however the pool interleaved.
			return nil, errs[i]
		}
		total += len(results[i])
	}
	entries := make([]idx.Entry, 0, total)
	for _, r := range results {
		entries = append(entries, r...)
	}
	return entries, nil
}

// indexSignature summarises the container's index droppings (path, size,
// mtime per dropping) without parsing them — the cheap freshness check
// behind the cache's close-to-open revalidation.
func (p *FS) indexSignature(path string) (readcache.Signature, error) {
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return "", err
	}
	sig, err := p.signatureOf(droppings)
	if err != nil {
		return "", err
	}
	return sig, nil
}

// statDroppings stats every dropping in parallel, in list order.
func (p *FS) statDroppings(droppings []string) ([]posix.Stat, error) {
	stats := make([]posix.Stat, len(droppings))
	errs := make([]error, len(droppings))
	runParallel(len(droppings), p.indexWorkers(), func(i int) {
		stats[i], errs[i] = p.backend.Stat(droppings[i])
	})
	for i := range droppings {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return stats, nil
}

func (p *FS) signatureOf(droppings []string) (readcache.Signature, error) {
	stats, err := p.statDroppings(droppings)
	if err != nil {
		return "", err
	}
	return signatureFrom(droppings, stats), nil
}

func signatureFrom(droppings []string, stats []posix.Stat) readcache.Signature {
	var sb strings.Builder
	for i, d := range droppings {
		fmt.Fprintf(&sb, "%s|%d|%d\n", d, stats[i].Size, stats[i].Mtime)
	}
	return readcache.Signature(sb.String())
}

// mergeIndex reconstructs the merged index from raw droppings with the
// memory-bounded streaming merge: each dropping is read in bounded
// chunks (stream open + first-chunk prefetch fanned across the index
// worker pool) and overlaid in global timestamp order through a k-way
// heap, instead of slurping every record into one slice and sorting it.
// A dropping whose records defy timestamp order (only adversarial inputs
// do) demotes the whole reconstruction to the slurp-and-sort path, which
// handles any order.
func (p *FS) mergeIndex(droppings []string) (*idx.Index, error) {
	streams := make([]*idx.DroppingStream, len(droppings))
	errs := make([]error, len(droppings))
	runParallel(len(droppings), p.indexWorkers(), func(i int) {
		s, err := idx.OpenDroppingStream(p.backend, droppings[i], p.cfg.Index.MergeChunkRecords)
		if err != nil {
			errs[i] = err
			return
		}
		streams[i] = s
		errs[i] = s.Prefetch()
	})
	closeAll := func() {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := range droppings {
		if errs[i] != nil {
			closeAll()
			return nil, errs[i]
		}
	}
	merged, err := idx.MergeStreams(streams...)
	closeAll()
	if err != nil {
		if errors.Is(err, idx.ErrUnsorted) {
			entries, lerr := p.loadDroppings(droppings)
			if lerr != nil {
				return nil, lerr
			}
			return idx.Build(entries), nil
		}
		return nil, err
	}
	return merged, nil
}

// buildIndex is the cache loader: one full reconstruction. It lists and
// stats the container once, then takes the cheapest trustworthy path —
// the newest flattened record when its embedded raw signature still
// matches the droppings and no writer is live (an O(extents) load), the
// streaming merge otherwise. A stale, torn or corrupt flattened record
// is silently ignored: it can cost a merge, never wrong bytes.
func (p *FS) buildIndex(path string) (*idx.Index, readcache.Signature, readcache.BuildKind, error) {
	droppings, flatGens, err := p.listIndexState(path)
	if err != nil {
		return nil, "", readcache.BuildMerge, err
	}
	stats, err := p.statDroppings(droppings)
	if err != nil {
		return nil, "", readcache.BuildMerge, err
	}
	sig := signatureFrom(droppings, stats)
	if p.FlattenedReads() && len(flatGens) > 0 {
		best := flatGens[0]
		for _, g := range flatGens[1:] {
			if g > best {
				best = g
			}
		}
		raw := rawSignature(path, droppings, stats)
		if fl, err := idx.ReadFlattened(p.backend, flattenedPath(path, best)); err == nil &&
			fl.Generation == best && fl.RawSig == raw && !p.hasOpenWriters(path) {
			if index, err := idx.FromExtents(fl.Extents, fl.Size); err == nil {
				return index, sig, readcache.BuildFlattened, nil
			}
		}
	}
	index, err := p.mergeIndex(droppings)
	if err != nil {
		return nil, "", readcache.BuildMerge, err
	}
	return index, sig, readcache.BuildMerge, nil
}

// scatterGather fills buf (whose logical origin is off) from the
// resolved extents: holes zero-fill inline, data extents pread from
// their droppings — concurrently when more than one extent and the
// configured fan-out allow. Returns the number of bytes of the
// contiguous error-free prefix and the error of the lowest failing
// extent, per File.Read's short-read contract.
func (p *FS) scatterGather(container string, buf []byte, off int64, extents []idx.Extent) (int, error) {
	covered := 0
	type job struct {
		x   idx.Extent
		dst []byte
	}
	var jobs []job
	for _, x := range extents {
		dst := buf[x.LogicalOffset-off : x.LogicalOffset-off+x.Length]
		covered += len(dst)
		if x.Hole {
			for i := range dst {
				dst[i] = 0
			}
			continue
		}
		jobs = append(jobs, job{x, dst})
	}
	if len(jobs) == 0 {
		return covered, nil
	}

	workers := p.readWorkers()
	if workers <= 1 || len(jobs) == 1 {
		for _, j := range jobs {
			if err := p.preadExtent(container, j.x, j.dst); err != nil {
				return int(j.x.LogicalOffset - off), err
			}
		}
		return covered, nil
	}

	errOffs := make([]int64, len(jobs))
	errs := make([]error, len(jobs))
	runParallel(len(jobs), workers, func(i int) {
		if err := p.preadExtent(container, jobs[i].x, jobs[i].dst); err != nil {
			errOffs[i], errs[i] = jobs[i].x.LogicalOffset, err
		}
	})
	firstErr := -1
	for i := range jobs {
		if errs[i] != nil && (firstErr < 0 || errOffs[i] < errOffs[firstErr]) {
			firstErr = i
		}
	}
	if firstErr >= 0 {
		// Every data extent below the failing offset succeeded (it would
		// otherwise be the lower failing extent), and holes were filled
		// inline — the prefix is intact.
		return int(errOffs[firstErr] - off), errs[firstErr]
	}
	return covered, nil
}

// preadExtent reads one resolved extent from its data dropping through
// the shared read-fd cache.
func (p *FS) preadExtent(container string, x idx.Extent, dst []byte) error {
	path := dataDropping(p.hostdir(container, x.Pid), x.Pid)
	fd, release, err := p.fds.Acquire(path)
	if err != nil {
		return fmt.Errorf("plfs: open data dropping for read: %w", err)
	}
	defer release()
	if err := posix.ReadFull(p.backend, fd, dst, x.PhysicalOffset); err != nil {
		return fmt.Errorf("plfs: read dropping (pid %d): %w", x.Pid, err)
	}
	return nil
}
