// The concurrent read engine: parallel index reconstruction across a
// container's hostdirs and droppings, and parallel scatter-gather of one
// logical read across its data droppings.
//
// A PLFS read has two phases with very different shapes. Reconstruction
// is "read and parse every index dropping" — embarrassingly parallel
// per dropping, done once per container thanks to the shared cache in
// internal/plfs/readcache. The gather is "pread each resolved extent
// from its data dropping" — parallel per extent, since positional reads
// carry no file pointer (posix.FS requires concurrent-pread safety) and
// each extent lands in a disjoint slice of the caller's buffer.
package plfs

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/plfs/readcache"
	"ldplfs/internal/posix"
)

// defaultWorkerCap bounds the default fan-out: beyond ~8 concurrent
// preads the backends in this repository stop scaling (MemFS serializes
// internally; OSFS saturates the page cache's memcpy bandwidth).
const defaultWorkerCap = 8

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > defaultWorkerCap {
		n = defaultWorkerCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// readWorkers resolves the scatter-gather fan-out: the runtime
// override (the autotune controller / SetReadWorkers) wins over the
// static Options value.
func (p *FS) readWorkers() int {
	if n := p.knobReadWorkers.Load(); n > 0 {
		return int(n)
	}
	if p.cfg.Engine.ReadWorkers > 0 {
		return p.cfg.Engine.ReadWorkers
	}
	return defaultWorkers()
}

func (p *FS) indexWorkers() int {
	if p.cfg.Engine.IndexWorkers > 0 {
		return p.cfg.Engine.IndexWorkers
	}
	return defaultWorkers()
}

// runParallel invokes fn(0..n-1) on a bounded pool of workers and waits
// for all of them. workers <= 1 degrades to a plain loop.
func runParallel(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// listIndexState walks the container once, returning every index
// dropping path in deterministic (hostdir, name) order plus the
// generations of any flattened global index records at the container
// root. The per-hostdir listings fan out across the index worker pool.
func (p *FS) listIndexState(path string) ([]string, []uint64, error) {
	dirs, err := p.backend.Readdir(path)
	if err != nil {
		return nil, nil, fmt.Errorf("plfs: list container: %w", err)
	}
	var hostdirs []string
	var flatGens []uint64
	for _, d := range dirs {
		if d.IsDir && strings.HasPrefix(d.Name, "hostdir.") {
			hostdirs = append(hostdirs, path+"/"+d.Name)
		} else if !d.IsDir {
			if gen, ok := parseFlattenedGen(d.Name); ok {
				flatGens = append(flatGens, gen)
			}
		}
	}
	lists := make([][]string, len(hostdirs))
	errs := make([]error, len(hostdirs))
	runParallel(len(hostdirs), p.indexWorkers(), func(i int) {
		files, err := p.backend.Readdir(hostdirs[i])
		if err != nil {
			errs[i] = err
			return
		}
		for _, fe := range files {
			if strings.HasPrefix(fe.Name, "dropping.index.") {
				lists[i] = append(lists[i], hostdirs[i]+"/"+fe.Name)
			}
		}
	})
	var droppings []string
	for i := range hostdirs {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		droppings = append(droppings, lists[i]...)
	}
	return droppings, flatGens, nil
}

// listIndexDroppings returns the container's index dropping paths.
func (p *FS) listIndexDroppings(path string) ([]string, error) {
	droppings, _, err := p.listIndexState(path)
	return droppings, err
}

// readAllEntries loads every index dropping in the container, fanning
// the loads out across the index worker pool. Entry order across
// droppings is unspecified; idx.Build resolves by timestamp.
func (p *FS) readAllEntries(path string) ([]idx.Entry, error) {
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return nil, err
	}
	return p.loadDroppings(droppings)
}

func (p *FS) loadDroppings(droppings []string) ([]idx.Entry, error) {
	results := make([][]idx.Entry, len(droppings))
	errs := make([]error, len(droppings))
	runParallel(len(droppings), p.indexWorkers(), func(i int) {
		results[i], errs[i] = idx.ReadDropping(p.backend, droppings[i])
	})
	total := 0
	for i := range droppings {
		if errs[i] != nil {
			// Deterministic: the first failing dropping in list order
			// wins, however the pool interleaved.
			return nil, errs[i]
		}
		total += len(results[i])
	}
	entries := make([]idx.Entry, 0, total)
	for _, r := range results {
		entries = append(entries, r...)
	}
	return entries, nil
}

// indexSignature summarises the container's index droppings (path, size,
// mtime per dropping) without parsing them — the cheap freshness check
// behind the cache's close-to-open revalidation.
func (p *FS) indexSignature(path string) (readcache.Signature, error) {
	droppings, err := p.listIndexDroppings(path)
	if err != nil {
		return "", err
	}
	sig, err := p.signatureOf(droppings)
	if err != nil {
		return "", err
	}
	return sig, nil
}

// statDroppings stats every dropping in parallel, in list order.
func (p *FS) statDroppings(droppings []string) ([]posix.Stat, error) {
	stats := make([]posix.Stat, len(droppings))
	errs := make([]error, len(droppings))
	runParallel(len(droppings), p.indexWorkers(), func(i int) {
		stats[i], errs[i] = p.backend.Stat(droppings[i])
	})
	for i := range droppings {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return stats, nil
}

func (p *FS) signatureOf(droppings []string) (readcache.Signature, error) {
	stats, err := p.statDroppings(droppings)
	if err != nil {
		return "", err
	}
	return signatureFrom(droppings, stats), nil
}

func signatureFrom(droppings []string, stats []posix.Stat) readcache.Signature {
	var sb strings.Builder
	for i, d := range droppings {
		fmt.Fprintf(&sb, "%s|%d|%d\n", d, stats[i].Size, stats[i].Mtime)
	}
	return readcache.Signature(sb.String())
}

// mergeIndex reconstructs the merged index from raw droppings with the
// memory-bounded streaming merge: each dropping is read in bounded
// chunks (stream open + first-chunk prefetch fanned across the index
// worker pool) and overlaid in global timestamp order through a k-way
// heap, instead of slurping every record into one slice and sorting it.
// A dropping whose records defy timestamp order (only adversarial inputs
// do) demotes the whole reconstruction to the slurp-and-sort path, which
// handles any order.
func (p *FS) mergeIndex(droppings []string) (*idx.Index, error) {
	streams := make([]*idx.DroppingStream, len(droppings))
	errs := make([]error, len(droppings))
	runParallel(len(droppings), p.indexWorkers(), func(i int) {
		s, err := idx.OpenDroppingStream(p.backend, droppings[i], p.cfg.Index.MergeChunkRecords)
		if err != nil {
			errs[i] = err
			return
		}
		streams[i] = s
		errs[i] = s.Prefetch()
	})
	closeAll := func() {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := range droppings {
		if errs[i] != nil {
			closeAll()
			return nil, errs[i]
		}
	}
	merged, err := idx.MergeStreams(streams...)
	closeAll()
	if err != nil {
		if errors.Is(err, idx.ErrUnsorted) {
			entries, lerr := p.loadDroppings(droppings)
			if lerr != nil {
				return nil, lerr
			}
			return idx.Build(entries), nil
		}
		return nil, err
	}
	return merged, nil
}

// buildIndex is the cache loader: one full reconstruction. It lists and
// stats the container once, then takes the cheapest trustworthy path —
// the newest flattened record when its embedded raw signature still
// matches the droppings and no writer is live (an O(extents) load), the
// streaming merge otherwise. A stale, torn or corrupt flattened record
// is silently ignored: it can cost a merge, never wrong bytes.
func (p *FS) buildIndex(path string) (*idx.Index, readcache.Signature, readcache.BuildKind, error) {
	droppings, flatGens, err := p.listIndexState(path)
	if err != nil {
		return nil, "", readcache.BuildMerge, err
	}
	stats, err := p.statDroppings(droppings)
	if err != nil {
		return nil, "", readcache.BuildMerge, err
	}
	sig := signatureFrom(droppings, stats)
	if p.FlattenedReads() && len(flatGens) > 0 {
		best := flatGens[0]
		for _, g := range flatGens[1:] {
			if g > best {
				best = g
			}
		}
		raw := rawSignature(path, droppings, stats)
		if fl, err := idx.ReadFlattened(p.backend, flattenedPath(path, best)); err == nil &&
			fl.Generation == best && fl.RawSig == raw && !p.hasOpenWriters(path) {
			if index, err := idx.FromExtents(fl.Extents, fl.Size); err == nil {
				return index, sig, readcache.BuildFlattened, nil
			}
		}
	}
	index, err := p.mergeIndex(droppings)
	if err != nil {
		return nil, "", readcache.BuildMerge, err
	}
	return index, sig, readcache.BuildMerge, nil
}

// batchDepth resolves the vectored-submission bound: the runtime
// override (autotune / SetBatchDepth) wins over the static Options
// value. 1 disables coalescing.
func (p *FS) batchDepth() int {
	if n := p.knobBatchDepth.Load(); n > 0 {
		return int(n)
	}
	if p.cfg.Engine.BatchDepth > 0 {
		return p.cfg.Engine.BatchDepth
	}
	return DefaultBatchDepth
}

// readJob is one non-hole extent of a scatter-gather and the slice of
// the caller's buffer it fills.
type readJob struct {
	x   idx.Extent
	dst []byte
}

// readBatch is one coalesced backend submission: n physically-
// contiguous segments of one dropping, occupying slots
// [off, off+n) of the plan's buffer vector.
type readBatch struct {
	pid   uint32
	phys  int64 // physical start offset in the dropping
	total int64 // byte span of the batch
	off   int   // first slot in plan.bufs / plan.slotJob
	n     int   // segment count
}

// readPlan is the reusable scratch of one scatter-gather: extents,
// jobs, batch layout and per-batch error state. Plans are pooled so a
// warm read allocates nothing; every slice keeps its capacity across
// uses and buffer references are cleared on release so pooled plans
// never pin caller memory.
type readPlan struct {
	extents  []idx.Extent
	jobs     []readJob
	jobBatch []int // batch index per job
	batches  []readBatch
	bufs     [][]byte // batch-contiguous segment buffers
	slotJob  []int    // job index per buffer slot
	fill     []int    // per-batch slot cursor during layout
	errs     []error  // per-batch error (nil = batch succeeded)
	errOffs  []int64  // per-batch lowest failing logical offset
	open     map[uint32]int
}

var readPlanPool = sync.Pool{New: func() any { return new(readPlan) }}

// release clears buffer references (so the pool never retains caller
// buffers) and returns the plan to the pool.
func (plan *readPlan) release() {
	for i := range plan.bufs {
		plan.bufs[i] = nil
	}
	for i := range plan.jobs {
		plan.jobs[i].dst = nil
	}
	for i := range plan.errs {
		plan.errs[i] = nil
	}
	plan.extents = plan.extents[:0]
	plan.jobs = plan.jobs[:0]
	plan.jobBatch = plan.jobBatch[:0]
	plan.batches = plan.batches[:0]
	plan.bufs = plan.bufs[:0]
	plan.slotJob = plan.slotJob[:0]
	readPlanPool.Put(plan)
}

// growInts resizes s to n zeroed elements, reusing its capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growInt64s resizes s to n zeroed elements, reusing its capacity.
func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growErrs resizes s to n nil elements, reusing its capacity.
func growErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// scatterGather fills buf (whose logical origin is off) from the index:
// holes zero-fill inline, data extents are grouped by dropping into
// physically-contiguous batches of at most batchDepth segments, and
// each batch is one vectored pread — concurrently across batches when
// the configured fan-out allows. Returns the number of bytes of the
// contiguous error-free prefix and the error of the lowest failing
// extent, per File.Read's short-read contract.
func (p *FS) scatterGather(f *File, buf []byte, off int64, index *idx.Index) (int, error) {
	plan := readPlanPool.Get().(*readPlan)
	defer plan.release()
	plan.extents = index.QueryInto(plan.extents[:0], off, int64(len(buf)))

	covered := 0
	for _, x := range plan.extents {
		dst := buf[x.LogicalOffset-off : x.LogicalOffset-off+x.Length]
		covered += len(dst)
		if x.Hole {
			for i := range dst {
				dst[i] = 0
			}
			continue
		}
		plan.jobs = append(plan.jobs, readJob{x, dst})
	}
	if len(plan.jobs) == 0 {
		return covered, nil
	}

	p.planBatches(plan)

	nb := len(plan.batches)
	workers := p.readWorkers()
	if workers <= 1 || nb == 1 {
		for bi := range plan.batches {
			p.readBatch(f, plan, bi)
		}
	} else {
		runParallel(nb, workers, func(bi int) { p.readBatch(f, plan, bi) })
	}

	first := -1
	for bi := range plan.batches {
		if plan.errs[bi] != nil && (first < 0 || plan.errOffs[bi] < plan.errOffs[first]) {
			first = bi
		}
	}
	if first >= 0 {
		// Every data extent below the failing offset succeeded (it would
		// otherwise be a lower failing segment of its own batch), and
		// holes were filled inline — the prefix is intact.
		return int(plan.errOffs[first] - off), plan.errs[first]
	}
	return covered, nil
}

// planBatches groups the plan's jobs into coalesced submissions: a
// job extends a dropping's open batch while it continues that batch's
// physical run and the batch is under the depth bound, and starts a
// fresh batch otherwise. A second pass lays the segments out batch-
// contiguously in the shared buffer vector so every batch's slice is
// ready for one Preadv.
func (p *FS) planBatches(plan *readPlan) {
	depth := p.batchDepth()
	if plan.open == nil {
		plan.open = make(map[uint32]int, 16)
	}
	clear(plan.open)
	for _, j := range plan.jobs {
		if bi, ok := plan.open[j.x.Pid]; ok && depth > 1 {
			b := &plan.batches[bi]
			if b.n < depth && b.phys+b.total == j.x.PhysicalOffset {
				b.n++
				b.total += j.x.Length
				plan.jobBatch = append(plan.jobBatch, bi)
				continue
			}
		}
		bi := len(plan.batches)
		plan.batches = append(plan.batches, readBatch{
			pid: j.x.Pid, phys: j.x.PhysicalOffset, total: j.x.Length, n: 1,
		})
		plan.open[j.x.Pid] = bi
		plan.jobBatch = append(plan.jobBatch, bi)
	}

	slots := 0
	for bi := range plan.batches {
		plan.batches[bi].off = slots
		slots += plan.batches[bi].n
	}
	if cap(plan.bufs) < slots {
		plan.bufs = make([][]byte, slots)
	}
	plan.bufs = plan.bufs[:slots]
	plan.slotJob = growInts(plan.slotJob, slots)
	plan.fill = growInts(plan.fill, len(plan.batches))
	plan.errs = growErrs(plan.errs, len(plan.batches))
	plan.errOffs = growInt64s(plan.errOffs, len(plan.batches))
	for ji, j := range plan.jobs {
		bi := plan.jobBatch[ji]
		slot := plan.batches[bi].off + plan.fill[bi]
		plan.fill[bi]++
		plan.bufs[slot] = j.dst
		plan.slotJob[slot] = ji
	}
}

// readBatch issues one batch through the shared read-fd cache: a lone
// segment as a scalar pread (byte- and op-identical to the pre-batch
// engine), a multi-segment batch as one vectored pread.
func (p *FS) readBatch(f *File, plan *readPlan, bi int) {
	b := plan.batches[bi]
	fd, ref, err := p.fds.AcquireRef(f.dataPath(b.pid))
	if err != nil {
		plan.failBatch(bi, 0, fmt.Errorf("plfs: open data dropping for read: %w", err))
		return
	}
	if b.n == 1 {
		err = posix.ReadFull(p.backend, fd, plan.bufs[b.off], b.phys)
		ref.Release()
		if err != nil {
			plan.failBatch(bi, 0, fmt.Errorf("plfs: read dropping (pid %d): %w", b.pid, err))
		}
		return
	}
	n, err := posix.Preadv(p.backend, fd, plan.bufs[b.off:b.off+b.n], b.phys)
	ref.Release()
	if err == nil && n < b.total {
		err = fmt.Errorf("short read: want %d got %d", b.total, n)
	}
	if err != nil {
		plan.failBatch(bi, n, fmt.Errorf("plfs: read dropping (pid %d): %w", b.pid, err))
	}
}

// failBatch records a batch failure: n bytes landed in slot order, so
// the first incompletely-filled segment — lowest logical offset among
// the batch's casualties, since slots are laid out in logical order —
// anchors the error, mirroring the per-extent engine's contract that a
// failing extent contributes no bytes to the readable prefix.
func (plan *readPlan) failBatch(bi int, n int64, err error) {
	b := plan.batches[bi]
	rem := n
	for k := 0; k < b.n; k++ {
		l := int64(len(plan.bufs[b.off+k]))
		if rem >= l {
			rem -= l
			continue
		}
		plan.errOffs[bi] = plan.jobs[plan.slotJob[b.off+k]].x.LogicalOffset
		plan.errs[bi] = err
		return
	}
	// Defensive: an error with a full transfer still fails the batch's
	// last segment rather than vanishing.
	plan.errOffs[bi] = plan.jobs[plan.slotJob[b.off+b.n-1]].x.LogicalOffset
	plan.errs[bi] = err
}
