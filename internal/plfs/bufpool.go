package plfs

import "sync"

// copyBufChunk is the size of a pooled copy buffer: 1 MiB amortizes
// syscall count on bulk copies (replica repair, Flatten) without
// pinning multi-megabyte allocations per call site.
const copyBufChunk = 1 << 20

// copyBufPool hands out 1 MiB scratch buffers for the bulk-copy paths
// (replica repair, index flattening, layout-descriptor reads). Entries
// are pointers-to-slices so Put never re-boxes the header. Use is
// always the paired idiom — the bufpool lint check flags a Get whose
// function does not also Put:
//
//	b := copyBufPool.Get().(*[]byte)
//	defer copyBufPool.Put(b)
//	buf := *b
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufChunk)
		return &b
	},
}
