// Package tune is an online feedback controller for I/O-path knobs, in
// the style of IOPathTune (Rashid et al.): it observes nothing but the
// throughput the stack is actually delivering and hill-climbs a small
// set of bounded knobs toward the configuration that maximises it — no
// model of the backend, no application modification, no operator.
//
// The controller is deliberately generic: a knob is a name, an
// ascending ladder of candidate values (whose ends are the hard
// bounds) and an Apply function; the throughput signal is a cumulative
// byte counter (in this repository, the plfs engine's iostats bytes).
// plfs wires its ReadWorkers/WriteWorkers/IndexBatch knobs to it when
// Options.AutoTune is set.
//
// Operation: the data path calls Tick after each operation (a nil-ish
// fast path — two atomic loads — until a window's worth of bytes has
// accumulated). When a window closes, throughput = window bytes /
// window wall time from the injectable Clock. The controller then runs
// one step of coordinate descent: measure the current configuration
// (baseline), try the adjacent ladder value (trial), keep it only if
// it improved throughput by at least Epsilon, otherwise revert and try
// the other direction, then move to the next knob. A full cycle over
// every knob with no accepted trial means the climb has converged; the
// controller goes dormant for HoldWindows windows before probing
// again, so a converged system runs at its best configuration instead
// of perpetually paying for rejected experiments.
package tune

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for the controller, so tests drive the climb
// deterministically with a manual clock.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

//plfslint:ignore clockinject wallClock IS the injectable clock's real-time implementation; every other wall-time read must route through it
func (wallClock) Now() time.Time { return time.Now() }

// WallClock returns the real-time clock.
func WallClock() Clock { return wallClock{} }

// ManualClock is a test clock advanced by hand. The zero value starts
// at an arbitrary fixed epoch.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Defaults.
const (
	// DefaultWindowBytes closes a measurement window after 1 MiB of
	// observed traffic — small enough to converge within a modest
	// checkpoint, large enough to amortise per-window noise.
	DefaultWindowBytes = 1 << 20
	// DefaultEpsilon is the relative throughput improvement a trial
	// must show to be accepted (5%): anything smaller is treated as
	// noise and reverted.
	DefaultEpsilon = 0.05
	// DefaultHoldWindows is how many windows a converged controller
	// stays dormant before probing again.
	DefaultHoldWindows = 32
)

// Knob describes one tunable: an ascending ladder of candidate values
// whose first and last entries are the hard bounds the controller will
// never leave, and the function that applies a value to the live
// system. Apply is called from Tick (i.e. from a data-path goroutine)
// under the controller's lock; it must be cheap and thread-safe — an
// atomic store in practice.
type Knob struct {
	Name   string
	Ladder []int
	Apply  func(int)
	// Start is the initial value; it is snapped to the nearest ladder
	// entry (and applied) when the controller starts.
	Start int
}

// Config configures a Controller. Zero values take the defaults above.
type Config struct {
	WindowBytes int64
	Epsilon     float64
	HoldWindows int
	Clock       Clock
}

// Decision is one completed trial, kept in a bounded log for tests,
// stats dumps and post-mortems.
type Decision struct {
	Knob       string
	From, To   int
	Throughput float64 // bytes/sec measured while To was applied
	Baseline   float64 // bytes/sec of the configuration trialled against
	Accepted   bool
}

// String renders one decision.
func (d Decision) String() string {
	verdict := "reverted"
	if d.Accepted {
		verdict = "accepted"
	}
	return fmt.Sprintf("%s %d->%d %s (%.0f vs %.0f B/s)", d.Knob, d.From, d.To, verdict, d.Throughput, d.Baseline)
}

// KnobState is a knob's current position and bounds.
type KnobState struct {
	Name     string
	Value    int
	Min, Max int
}

// knob is the controller-side state of one Knob.
type knob struct {
	Knob
	idx      int // committed ladder position
	trialIdx int // position under trial
}

// maxDecisions bounds the decision log.
const maxDecisions = 256

// Controller runs the climb. All methods are safe for concurrent use;
// Tick is designed to be called from every data-path operation.
type Controller struct {
	cfg Config
	src func() int64

	// winBase is the source value the open window started at — the
	// Tick fast path compares against it without taking the lock.
	winBase atomic.Int64

	mu        sync.Mutex
	knobs     []*knob
	winStart  time.Time
	ki        int  // knob being worked on
	dir       int  // ladder direction of the current probe (+1/-1)
	trial     bool // the window that just closed measured a trial value
	triedBoth bool // both directions already probed for this knob
	baseT     float64
	barren    int // consecutive knob advances without an accepted trial
	dormant   int // windows to sleep before probing again
	converged atomic.Bool
	windows   int
	decisions []Decision
}

// New builds a controller over source (a cumulative byte counter; the
// difference between two reads is the traffic of that interval) and
// the given knobs, applying each knob's snapped Start value
// immediately. Knobs with fewer than two ladder values are accepted
// but never probed.
func New(cfg Config, source func() int64, knobs ...Knob) *Controller {
	if cfg.WindowBytes <= 0 {
		cfg.WindowBytes = DefaultWindowBytes
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	if cfg.HoldWindows <= 0 {
		cfg.HoldWindows = DefaultHoldWindows
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock()
	}
	c := &Controller{cfg: cfg, src: source, dir: 1}
	for _, k := range knobs {
		if len(k.Ladder) == 0 {
			continue
		}
		kn := &knob{Knob: k, idx: nearestIdx(k.Ladder, k.Start)}
		kn.Apply(kn.Ladder[kn.idx])
		c.knobs = append(c.knobs, kn)
	}
	c.winBase.Store(source())
	c.winStart = cfg.Clock.Now()
	return c
}

// nearestIdx returns the index of the ladder entry closest to v.
func nearestIdx(ladder []int, v int) int {
	best, bestDist := 0, -1
	for i, lv := range ladder {
		d := lv - v
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Tick advances the controller. The fast path — window still open —
// is two atomic loads and a subtraction; call it after every data-path
// operation.
func (c *Controller) Tick() {
	cur := c.src()
	if cur-c.winBase.Load() < c.cfg.WindowBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.winBase.Load()
	if cur-base < c.cfg.WindowBytes {
		return // another Tick closed the window first
	}
	now := c.cfg.Clock.Now()
	elapsed := now.Sub(c.winStart)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	tput := float64(cur-base) / elapsed.Seconds()
	c.windows++
	c.step(tput)
	c.winBase.Store(cur)
	c.winStart = now
}

// step consumes one closed window's throughput measurement.
func (c *Controller) step(tput float64) {
	if len(c.knobs) == 0 {
		return
	}
	if c.dormant > 0 {
		c.dormant--
		if c.dormant == 0 {
			// Wake up and re-probe from scratch: the workload may have
			// shifted while we slept.
			c.barren = 0
			c.converged.Store(false)
		}
		return
	}
	k := c.knobs[c.ki]
	if !c.trial {
		// This window measured the committed configuration.
		c.baseT = tput
		c.beginProbe()
		return
	}
	// This window measured k.trialIdx.
	if tput > c.baseT*(1+c.cfg.Epsilon) {
		c.log(Decision{Knob: k.Name, From: k.Ladder[k.idx], To: k.Ladder[k.trialIdx],
			Throughput: tput, Baseline: c.baseT, Accepted: true})
		k.idx = k.trialIdx
		c.baseT = tput
		c.barren = 0
		// The reverse neighbour of the newly committed value is the
		// value the climb just left behind — known worse by at least
		// epsilon — so a later momentum rejection must not re-trial it.
		c.triedBoth = true
		// Momentum: keep walking the profitable direction. Reaching the
		// ladder end here is not a barren advance — this knob's cycle
		// accepted an improvement, so move on without convergence
		// accounting.
		if !c.tryStep(c.dir) {
			c.nextKnob()
		}
		return
	}
	// Trial lost: put the committed value back.
	k.Apply(k.Ladder[k.idx])
	c.log(Decision{Knob: k.Name, From: k.Ladder[k.idx], To: k.Ladder[k.trialIdx],
		Throughput: tput, Baseline: c.baseT, Accepted: false})
	if !c.triedBoth {
		c.triedBoth = true
		if c.tryStep(-c.dir) {
			c.dir = -c.dir
			return
		}
	}
	c.advanceKnob()
}

// beginProbe starts a trial on the current knob, hunting across knobs
// for one with room to move. If no knob can move at all the controller
// parks itself dormant.
func (c *Controller) beginProbe() {
	for probed := 0; probed < len(c.knobs); probed++ {
		if c.tryStep(c.dir) {
			return
		}
		if c.tryStep(-c.dir) {
			c.dir = -c.dir
			return
		}
		c.nextKnob()
	}
	c.dormant = c.cfg.HoldWindows
	c.converged.Store(true)
}

// tryStep applies the ladder neighbour of the current knob in
// direction dir as a trial, if the ladder has room. Reports whether a
// trial started.
func (c *Controller) tryStep(dir int) bool {
	k := c.knobs[c.ki]
	next := k.idx + dir
	if next < 0 || next >= len(k.Ladder) {
		return false
	}
	k.trialIdx = next
	k.Apply(k.Ladder[next])
	c.trial = true
	return true
}

// nextKnob moves the probe cursor without convergence accounting.
func (c *Controller) nextKnob() {
	c.ki = (c.ki + 1) % len(c.knobs)
	c.dir = 1
	c.triedBoth = false
	c.trial = false
}

// advanceKnob finishes work on the current knob and moves on. A full
// barren cycle — every knob probed, nothing accepted — marks the climb
// converged and parks the controller for HoldWindows windows.
func (c *Controller) advanceKnob() {
	c.barren++
	c.nextKnob()
	if c.barren >= len(c.knobs) {
		c.dormant = c.cfg.HoldWindows
		c.converged.Store(true)
		c.barren = 0
	}
}

// log appends to the bounded decision log.
func (c *Controller) log(d Decision) {
	if len(c.decisions) >= maxDecisions {
		copy(c.decisions, c.decisions[1:])
		c.decisions = c.decisions[:maxDecisions-1]
	}
	c.decisions = append(c.decisions, d)
}

// State reports every knob's committed value and bounds.
func (c *Controller) State() []KnobState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]KnobState, len(c.knobs))
	for i, k := range c.knobs {
		out[i] = KnobState{
			Name:  k.Name,
			Value: k.Ladder[k.idx],
			Min:   k.Ladder[0],
			Max:   k.Ladder[len(k.Ladder)-1],
		}
	}
	return out
}

// Decisions returns a copy of the (bounded) decision log.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

// Windows reports how many measurement windows have closed.
func (c *Controller) Windows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows
}

// Converged reports whether the last full probe cycle accepted nothing
// (the controller is dormant or was woken from dormancy and has not
// accepted since).
func (c *Controller) Converged() bool { return c.converged.Load() }
