package tune

import (
	"testing"
	"time"
)

// sim drives a Controller against a deterministic throughput model:
// each simulated window moves WindowBytes through the "system" and
// advances the manual clock by the time that traffic would take at the
// model's rate for the currently applied knob values — so the
// controller observes exactly the modelled throughput, window after
// window, with no real time involved.
type sim struct {
	clock   *ManualClock
	ctl     *Controller
	bytes   int64
	model   func() float64 // bytes/sec for the live knob values
	applied map[string][]int
	workers int
	batch   int
}

const simWindow = 1 << 20

func newSim(t *testing.T, startWorkers, startBatch int, model func(workers, batch int) float64) *sim {
	t.Helper()
	s := &sim{clock: &ManualClock{}, applied: map[string][]int{}}
	s.model = func() float64 { return model(s.workers, s.batch) }
	cfg := Config{WindowBytes: simWindow, Epsilon: 0.05, HoldWindows: 8, Clock: s.clock}
	s.ctl = New(cfg, func() int64 { return s.bytes },
		Knob{Name: "workers", Ladder: []int{1, 2, 4, 8, 16}, Start: startWorkers,
			Apply: func(v int) { s.workers = v; s.applied["workers"] = append(s.applied["workers"], v) }},
		Knob{Name: "batch", Ladder: []int{1, 8, 64, 512}, Start: startBatch,
			Apply: func(v int) { s.batch = v; s.applied["batch"] = append(s.applied["batch"], v) }},
	)
	return s
}

// window pushes one window of traffic through the model and ticks.
func (s *sim) window() {
	rate := s.model()
	s.bytes += simWindow
	s.clock.Advance(time.Duration(float64(simWindow) / rate * float64(time.Second)))
	s.ctl.Tick()
}

// modelSurface is unimodal: workers help up to 4 (8 and 16 are flat or
// slightly worse), batching helps up to 64 (512 is flat).
func modelSurface(workers, batch int) float64 {
	w := map[int]float64{1: 1.0, 2: 1.8, 4: 2.6, 8: 2.6, 16: 2.4}[workers]
	b := map[int]float64{1: 1.0, 8: 1.5, 64: 1.8, 512: 1.8}[batch]
	return 50e6 * w * b
}

func knobValue(states []KnobState, name string) int {
	for _, st := range states {
		if st.Name == name {
			return st.Value
		}
	}
	return -1
}

func TestHillClimbConvergesToOptimum(t *testing.T) {
	s := newSim(t, 1, 1, modelSurface)
	for i := 0; i < 60 && !s.ctl.Converged(); i++ {
		s.window()
	}
	if !s.ctl.Converged() {
		t.Fatalf("controller did not converge in 60 windows; decisions: %v", s.ctl.Decisions())
	}
	st := s.ctl.State()
	// 8 workers is not >5% better than 4, and 512 batch not >5% better
	// than 64, so the climb should settle exactly at the knee.
	if got := knobValue(st, "workers"); got != 4 {
		t.Errorf("workers converged to %d, want 4 (decisions: %v)", got, s.ctl.Decisions())
	}
	if got := knobValue(st, "batch"); got != 64 {
		t.Errorf("batch converged to %d, want 64 (decisions: %v)", got, s.ctl.Decisions())
	}
}

func TestAppliedValuesNeverLeaveBounds(t *testing.T) {
	s := newSim(t, 16, 512, modelSurface) // start at the top rungs
	for i := 0; i < 80; i++ {
		s.window()
	}
	bounds := map[string][2]int{"workers": {1, 16}, "batch": {1, 512}}
	for name, vals := range s.applied {
		for _, v := range vals {
			if b := bounds[name]; v < b[0] || v > b[1] {
				t.Fatalf("knob %s applied out-of-bounds value %d (bounds %v)", name, v, b)
			}
		}
	}
	for _, d := range s.ctl.Decisions() {
		b := bounds[d.Knob]
		if d.To < b[0] || d.To > b[1] || d.From < b[0] || d.From > b[1] {
			t.Fatalf("decision %v outside bounds %v", d, b)
		}
	}
}

func TestDormancyAfterConvergence(t *testing.T) {
	s := newSim(t, 4, 64, modelSurface) // already optimal
	for i := 0; i < 40 && !s.ctl.Converged(); i++ {
		s.window()
	}
	if !s.ctl.Converged() {
		t.Fatal("never converged")
	}
	before := len(s.ctl.Decisions())
	// HoldWindows is 8 in the sim config: the next few windows must be
	// silent — a converged system runs its best config, it does not
	// keep paying for experiments.
	for i := 0; i < 6; i++ {
		s.window()
	}
	if after := len(s.ctl.Decisions()); after != before {
		t.Fatalf("controller kept experimenting while dormant: %d -> %d decisions", before, after)
	}
}

func TestReprobeAdaptsAfterWorkloadShift(t *testing.T) {
	shifted := false
	s := newSim(t, 1, 64, func(workers, batch int) float64 {
		if !shifted {
			return modelSurface(workers, batch)
		}
		// The new regime rewards maximum fan-out.
		return 50e6 * float64(workers) * map[int]float64{1: 1.0, 8: 1.5, 64: 1.8, 512: 1.8}[batch]
	})
	for i := 0; i < 60 && !s.ctl.Converged(); i++ {
		s.window()
	}
	if got := knobValue(s.ctl.State(), "workers"); got != 4 {
		t.Fatalf("pre-shift workers = %d, want 4", got)
	}
	shifted = true
	// Ride out dormancy (8 windows) and let the re-probe climb again.
	for i := 0; i < 80; i++ {
		s.window()
	}
	if got := knobValue(s.ctl.State(), "workers"); got != 16 {
		t.Fatalf("post-shift workers = %d, want 16 (decisions: %v)", got, s.ctl.Decisions())
	}
}

// TestAcceptedEdgeStepIsNotBarren is the regression test for the
// convergence rule: a knob whose trial is ACCEPTED and whose momentum
// step merely ran out of ladder must not count toward the barren cycle
// that declares convergence. With two knobs where A improves at its
// top rung and B never improves, the controller must not declare
// convergence in the very cycle that accepted A's improvement — only
// after a subsequent full cycle with no accepts.
func TestAcceptedEdgeStepIsNotBarren(t *testing.T) {
	clock := &ManualClock{}
	var bytes int64
	a := 1
	model := func() float64 {
		if a == 2 {
			return 200e6
		}
		return 100e6
	}
	c := New(Config{WindowBytes: simWindow, Epsilon: 0.05, HoldWindows: 8, Clock: clock}, func() int64 { return bytes },
		Knob{Name: "a", Ladder: []int{1, 2}, Start: 1, Apply: func(v int) { a = v }},
		Knob{Name: "b", Ladder: []int{1, 2}, Start: 1, Apply: func(int) {}},
	)
	window := func() {
		bytes += simWindow
		clock.Advance(time.Duration(float64(simWindow) / model() * float64(time.Second)))
		c.Tick()
	}
	// W1 baseline, W2 accepts a=2 (momentum hits the ladder top), W3
	// baseline for b, W4 rejects b=2 (no other direction). That cycle
	// accepted an improvement, so it must not read as converged.
	for i := 0; i < 4; i++ {
		window()
	}
	if c.Converged() {
		t.Fatalf("converged declared in a cycle that accepted a trial; decisions: %v", c.Decisions())
	}
	// The next full barren cycle (a's only remaining move 2->1 rejects,
	// then b rejects again) is allowed to converge.
	for i := 0; i < 8 && !c.Converged(); i++ {
		window()
	}
	if !c.Converged() {
		t.Fatalf("never converged; decisions: %v", c.Decisions())
	}
	if got := knobValue(c.State(), "a"); got != 2 {
		t.Fatalf("a = %d after convergence, want 2", got)
	}
}

// TestNoReverseTrialAfterAcceptedClimb pins the wasted-window fix: when
// a climb accepts 1->2 and the momentum trial of the top rung rejects,
// the controller must NOT re-trial the value it just climbed away from
// (it is known worse by at least epsilon) — the next decision after the
// momentum rejection belongs to another knob.
func TestNoReverseTrialAfterAcceptedClimb(t *testing.T) {
	clock := &ManualClock{}
	var bytes int64
	a := 1
	model := func() float64 {
		switch a {
		case 2:
			return 200e6
		case 4:
			return 190e6 // momentum rung: worse than 2, rejected
		default:
			return 100e6
		}
	}
	c := New(Config{WindowBytes: simWindow, Epsilon: 0.05, HoldWindows: 8, Clock: clock}, func() int64 { return bytes },
		Knob{Name: "a", Ladder: []int{1, 2, 4}, Start: 1, Apply: func(v int) { a = v }},
		Knob{Name: "b", Ladder: []int{1, 2}, Start: 1, Apply: func(int) {}},
	)
	// W1 baseline, W2 accept a 1->2, W3 reject momentum a 2->4. No
	// window may then be spent re-trialling a=1.
	for i := 0; i < 8; i++ {
		bytes += simWindow
		clock.Advance(time.Duration(float64(simWindow) / model() * float64(time.Second)))
		c.Tick()
	}
	for _, d := range c.Decisions() {
		if d.Knob == "a" && d.From == 2 && d.To == 1 {
			t.Fatalf("controller re-trialled the abandoned baseline: %v", c.Decisions())
		}
	}
	if got := knobValue(c.State(), "a"); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
}

func TestDecisionStringAndWallClock(t *testing.T) {
	d := Decision{Knob: "workers", From: 1, To: 2, Throughput: 200, Baseline: 100, Accepted: true}
	if s := d.String(); s != "workers 1->2 accepted (200 vs 100 B/s)" {
		t.Fatalf("accepted decision renders %q", s)
	}
	d.Accepted = false
	if s := d.String(); s != "workers 1->2 reverted (200 vs 100 B/s)" {
		t.Fatalf("reverted decision renders %q", s)
	}
	if WallClock().Now().IsZero() {
		t.Fatal("wall clock returned the zero time")
	}
}

func TestStartSnapsToLadder(t *testing.T) {
	var applied int
	c := New(Config{Clock: &ManualClock{}}, func() int64 { return 0 },
		Knob{Name: "k", Ladder: []int{1, 2, 4, 8}, Start: 3, Apply: func(v int) { applied = v }})
	if applied != 2 && applied != 4 {
		t.Fatalf("Start=3 applied %d, want a nearest ladder rung", applied)
	}
	if st := c.State(); st[0].Min != 1 || st[0].Max != 8 {
		t.Fatalf("bounds = %+v", st[0])
	}
}

func TestTickFastPathBelowWindow(t *testing.T) {
	var bytes int64
	c := New(Config{WindowBytes: 1000, Clock: &ManualClock{}}, func() int64 { return bytes },
		Knob{Name: "k", Ladder: []int{1, 2}, Apply: func(int) {}})
	for i := 0; i < 50; i++ {
		bytes += 10 // never reaches the window
		c.Tick()
	}
	if c.Windows() != 0 {
		t.Fatalf("windows = %d, want 0 below the byte threshold", c.Windows())
	}
	bytes += 1000
	c.Tick()
	if c.Windows() != 1 {
		t.Fatalf("windows = %d, want 1 after crossing the threshold", c.Windows())
	}
}

func TestSingleRungKnobsParkController(t *testing.T) {
	var bytes int64
	c := New(Config{WindowBytes: 100, Clock: &ManualClock{}}, func() int64 { return bytes },
		Knob{Name: "pinned", Ladder: []int{7}, Apply: func(int) {}})
	bytes += 200
	c.Tick() // baseline window: no knob can move; must not spin or panic
	if !c.Converged() {
		t.Fatal("controller with no movable knobs should park as converged")
	}
	if got := c.State()[0].Value; got != 7 {
		t.Fatalf("pinned knob = %d, want 7", got)
	}
}
