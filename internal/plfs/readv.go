package plfs

import (
	"fmt"

	"ldplfs/internal/iostats"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// ReadSeg is one segment of a vectored read: a logical offset and the
// destination slice its bytes land in.
type ReadSeg struct {
	Off int64
	Buf []byte
}

// ReadV fills every segment from the container in one pass — the read
// twin of WriteV. The index is resolved once for the whole vector, all
// segments' extents join a single scatter-gather plan, and the batched
// engine coalesces physically-contiguous extents across segment
// boundaries, so a strided vector costs the same backend ops as one
// covering read.
//
// Segments must be ascending and disjoint. Bytes past EOF zero-fill
// their destinations; the return value counts only bytes below EOF. On
// error, the bytes of every segment range below the first failing
// logical offset are valid, mirroring File.Read's prefix contract.
func (f *File) ReadV(segs []ReadSeg) (int64, error) {
	start := f.fs.opStart()
	n, err := f.readV(segs)
	f.fs.observeOp(iostats.Read, n, start, err)
	return n, err
}

func (f *File) readV(segs []ReadSeg) (int64, error) {
	if f.flags&posix.O_ACCMODE == posix.O_WRONLY {
		return 0, posix.EBADF
	}
	last := int64(-1)
	for _, s := range segs {
		if s.Off < 0 {
			return 0, posix.EINVAL
		}
		if s.Off < last {
			return 0, fmt.Errorf("plfs: readv segments not ascending at offset %d", s.Off)
		}
		last = s.Off + int64(len(s.Buf))
	}
	if len(segs) == 0 {
		return 0, nil
	}
	if f.fs.cfg.Index.DisableCache {
		f.mu.Lock()
		defer f.mu.Unlock()
		index, err := f.loadIndexLocked()
		if err != nil {
			return 0, err
		}
		return f.fs.scatterGatherV(f, segs, index)
	}
	index, err := f.readIndex()
	if err != nil {
		return 0, err
	}
	return f.fs.scatterGatherV(f, segs, index)
}

// scatterGatherV is the vectored scatter-gather: every segment's extents
// are queried into one shared plan, so planBatches coalesces physically-
// contiguous extents across segment boundaries and the whole vector goes
// to the backends as a handful of vectored preads. Segments are
// ascending, so jobs stay in logical order and failBatch's lowest-
// failing-offset contract carries over unchanged.
func (p *FS) scatterGatherV(f *File, segs []ReadSeg, index *idx.Index) (int64, error) {
	plan := readPlanPool.Get().(*readPlan)
	defer plan.release()

	var covered int64
	for _, s := range segs {
		if len(s.Buf) == 0 {
			continue
		}
		mark := len(plan.extents)
		plan.extents = index.QueryInto(plan.extents, s.Off, int64(len(s.Buf)))
		segCovered := 0
		for _, x := range plan.extents[mark:] {
			dst := s.Buf[x.LogicalOffset-s.Off : x.LogicalOffset-s.Off+x.Length]
			segCovered += len(dst)
			if x.Hole {
				for i := range dst {
					dst[i] = 0
				}
				continue
			}
			plan.jobs = append(plan.jobs, readJob{x, dst})
		}
		// Past-EOF tail: uncovered destination bytes read as zeros, so a
		// vectored read is byte-identical to per-segment reads plus the
		// caller's own padding.
		tail := s.Buf[segCovered:]
		for i := range tail {
			tail[i] = 0
		}
		covered += int64(segCovered)
	}
	if len(plan.jobs) == 0 {
		return covered, nil
	}

	p.planBatches(plan)

	nb := len(plan.batches)
	workers := p.readWorkers()
	if workers <= 1 || nb == 1 {
		for bi := range plan.batches {
			p.readBatch(f, plan, bi)
		}
	} else {
		runParallel(nb, workers, func(bi int) { p.readBatch(f, plan, bi) })
	}

	first := -1
	for bi := range plan.batches {
		if plan.errs[bi] != nil && (first < 0 || plan.errOffs[bi] < plan.errOffs[first]) {
			first = bi
		}
	}
	if first >= 0 {
		errOff := plan.errOffs[first]
		var prefix int64
		for _, s := range segs {
			end := s.Off + int64(len(s.Buf))
			if end <= errOff {
				prefix += int64(len(s.Buf))
				continue
			}
			if s.Off < errOff {
				prefix += errOff - s.Off
			}
			break
		}
		return prefix, plan.errs[first]
	}
	return covered, nil
}
