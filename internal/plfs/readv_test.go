package plfs

import (
	"bytes"
	"testing"

	"ldplfs/internal/posix"
)

// TestReadVMatchesScalarReads pins the vectored read against per-segment
// scalar reads over a strided multi-writer container: same bytes, same
// below-EOF count, zero-filled past-EOF tails.
func TestReadVMatchesScalarReads(t *testing.T) {
	mem := posix.NewMemFS()
	p := New(mem, Options{NumHostdirs: 4})
	f, err := p.Open("/v", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const block = 1 << 10
	const writers, blocks = 4, 8
	for w := uint32(0); w < writers; w++ {
		payload := bytes.Repeat([]byte{byte(w + 1)}, block)
		for b := 0; b < blocks; b++ {
			off := int64(b*writers+int(w)) * block
			if _, err := f.Write(payload, off, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	size := int64(writers * blocks * block)

	segs := []ReadSeg{
		{Off: 0, Buf: make([]byte, block/2)},
		{Off: block, Buf: make([]byte, 3*block)},        // spans writers
		{Off: size - block, Buf: make([]byte, 2*block)}, // crosses EOF
	}
	want := int64(block/2 + 3*block + block) // below-EOF bytes only
	n, err := f.ReadV(segs)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("ReadV = %d, want %d", n, want)
	}
	for _, s := range segs {
		scalar := make([]byte, len(s.Buf))
		sn, err := f.Read(scalar, s.Off)
		if err != nil {
			t.Fatal(err)
		}
		// Scalar reads leave bytes past EOF unspecified; ReadV zero-fills
		// them, so compare the below-EOF prefix byte-for-byte and demand
		// zeros beyond it.
		if !bytes.Equal(s.Buf[:sn], scalar[:sn]) {
			t.Fatalf("ReadV bytes at %d differ from scalar read", s.Off)
		}
		for i := sn; i < len(s.Buf); i++ {
			if s.Buf[i] != 0 {
				t.Fatalf("ReadV past-EOF byte %d at seg off %d = %d, want 0", i, s.Off, s.Buf[i])
			}
		}
	}
}

// TestReadVValidation rejects descending segment vectors.
func TestReadVValidation(t *testing.T) {
	mem := posix.NewMemFS()
	p := New(mem, Options{NumHostdirs: 2})
	f, err := p.Open("/vv", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4}, 0, 0); err != nil {
		t.Fatal(err)
	}
	segs := []ReadSeg{
		{Off: 100, Buf: make([]byte, 4)},
		{Off: 0, Buf: make([]byte, 4)},
	}
	if _, err := f.ReadV(segs); err == nil {
		t.Fatal("descending ReadV vector accepted")
	}
	if n, err := f.ReadV(nil); n != 0 || err != nil {
		t.Fatalf("empty ReadV = %d, %v", n, err)
	}
}
