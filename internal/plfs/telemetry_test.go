package plfs

import (
	"bytes"
	"testing"

	"ldplfs/internal/iostats"
	"ldplfs/internal/plfs/tune"
	"ldplfs/internal/posix"
)

// TestStatsPlaneRecordsEngineOps checks the plfs engines report through
// the collector: op counts and bytes on layer "plfs", the index
// cache's counters on layer "readcache", and the deprecated
// IndexCacheStats shim still reading the same numbers.
func TestStatsPlaneRecordsEngineOps(t *testing.T) {
	plane := iostats.NewPlane()
	opts := DefaultOptions()
	opts.Stats = plane
	p := New(posix.NewMemFS(), opts)

	f, err := p.Open("/c", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 4096)
	if _, err := f.Write(payload, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if n, err := f.Read(got, 0); err != nil || n != 4096 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if err := f.Close(1); err != nil {
		t.Fatal(err)
	}

	ls := plane.Layer("plfs")
	if n := ls.OpCount(iostats.Open); n != 1 {
		t.Errorf("open count = %d, want 1", n)
	}
	if n := ls.OpBytes(iostats.Write); n != 4096 {
		t.Errorf("write bytes = %d, want 4096", n)
	}
	if n := ls.OpBytes(iostats.Read); n != 4096 {
		t.Errorf("read bytes = %d, want 4096", n)
	}
	if n := ls.OpCount(iostats.Sync); n != 1 {
		t.Errorf("sync count = %d, want 1", n)
	}

	// The cache counters live on the plane and feed the legacy shim.
	cacheLayer := plane.Layer("readcache")
	builds := cacheLayer.Counter("builds").Load()
	if builds == 0 {
		t.Error("readcache layer recorded no builds")
	}
	if shim := cacheStats(p); shim.Builds != builds {
		t.Errorf("IndexCacheStats shim reports %d builds, plane has %d", shim.Builds, builds)
	}
}

// TestKnobOverrides checks the runtime overrides win over Options and
// that clearing them restores the static configuration.
func TestKnobOverrides(t *testing.T) {
	opts := DefaultOptions()
	opts.ReadWorkers, opts.WriteWorkers, opts.IndexBatch = 2, 3, 100
	p := New(posix.NewMemFS(), opts)

	if got := p.readWorkers(); got != 2 {
		t.Fatalf("readWorkers = %d, want configured 2", got)
	}
	p.SetReadWorkers(7)
	p.SetWriteWorkers(9)
	p.SetIndexBatch(11)
	if got := p.readWorkers(); got != 7 {
		t.Errorf("readWorkers override = %d, want 7", got)
	}
	if got := p.writeWorkers(); got != 9 {
		t.Errorf("writeWorkers override = %d, want 9", got)
	}
	if got := p.indexBatchRecords(); got != 11 {
		t.Errorf("indexBatchRecords override = %d, want 11", got)
	}
	p.SetReadWorkers(0)
	p.SetWriteWorkers(0)
	p.SetIndexBatch(0)
	if got := p.readWorkers(); got != 2 {
		t.Errorf("readWorkers after clearing = %d, want 2", got)
	}
	if got := p.writeWorkers(); got != 3 {
		t.Errorf("writeWorkers after clearing = %d, want 3", got)
	}
	if got := p.indexBatchRecords(); got != 100 {
		t.Errorf("indexBatchRecords after clearing = %d, want 100", got)
	}
}

// TestAutoTuneTicksAndStaysInBounds drives a tuned instance through
// enough traffic to close several windows (manual clock, so the climb
// is deterministic in cadence) and checks the controller is alive and
// every knob stays inside its ladder bounds.
func TestAutoTuneTicksAndStaysInBounds(t *testing.T) {
	clock := &tune.ManualClock{}
	opts := DefaultOptions()
	opts.AutoTune = true
	opts.TuneWindowBytes = 64 << 10
	opts.TuneClock = clock
	p := New(posix.NewMemFS(), opts)
	if p.Tuner() == nil {
		t.Fatal("AutoTune did not start a controller")
	}

	f, err := p.Open("/c", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 8<<10)
	for i := 0; i < 64; i++ {
		clock.Advance(10e6) // 10ms per op of virtual time
		if _, err := f.Write(payload, int64(i)*int64(len(payload)), 1); err != nil {
			t.Fatal(err)
		}
	}
	f.Close(1)

	if p.Tuner().Windows() == 0 {
		t.Fatal("no tuning windows closed despite 512 KiB of traffic")
	}
	for _, st := range p.Tuner().State() {
		if st.Value < st.Min || st.Value > st.Max {
			t.Errorf("knob %s = %d outside bounds [%d, %d]", st.Name, st.Value, st.Min, st.Max)
		}
	}
	for _, d := range p.Tuner().Decisions() {
		for _, st := range p.Tuner().State() {
			if d.Knob == st.Name && (d.To < st.Min || d.To > st.Max) {
				t.Errorf("decision %v outside bounds [%d, %d]", d, st.Min, st.Max)
			}
		}
	}
}

// TestStripedIntrospectionSeesThroughInstrumentation pins the PR3 API
// contract under telemetry: an instance whose striped backend arrives
// wrapped in an InstrumentFS must still report its true backend count
// and per-backend spread.
func TestStripedIntrospectionSeesThroughInstrumentation(t *testing.T) {
	plane := iostats.NewPlane()
	striped := posix.NewStripedFS(posix.NewMemFS(), posix.NewMemFS(), posix.NewMemFS())
	opts := DefaultOptions()
	opts.NumHostdirs = 6
	p := New(posix.NewInstrumentFS(striped, plane), opts)

	if got := p.NumBackends(); got != 3 {
		t.Fatalf("NumBackends through InstrumentFS = %d, want 3", got)
	}
	f, err := p.Open("/c", posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 6; pid++ {
		if _, err := f.Write([]byte("x"), int64(pid), pid); err != nil {
			t.Fatal(err)
		}
	}
	// One reference: closing pid 0 retires every writer on the handle.
	if err := f.Close(0); err != nil {
		t.Fatal(err)
	}
	spread, err := p.ContainerSpread("/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(spread) != 3 {
		t.Fatalf("ContainerSpread buckets = %d, want 3", len(spread))
	}
	for i, n := range spread {
		if n == 0 {
			t.Errorf("backend %d holds no droppings; spread = %v", i, spread)
		}
	}
}

// TestAutoTuneFlushOnSyncStartsAtLargestBatch pins the regression: an
// instance configured with IndexBatch < 0 (flush only on sync — the
// least index I/O possible) must not have AutoTune snap the knob to
// batch=1, the most index I/O possible. The nearest tunable analogue
// is the ladder top.
func TestAutoTuneFlushOnSyncStartsAtLargestBatch(t *testing.T) {
	opts := DefaultOptions()
	opts.IndexBatch = -1
	opts.AutoTune = true
	opts.TuneClock = &tune.ManualClock{}
	p := New(posix.NewMemFS(), opts)
	if got := p.indexBatchRecords(); got != indexBatchLadder[len(indexBatchLadder)-1] {
		t.Fatalf("indexBatchRecords = %d under AutoTune with IndexBatch<0, want ladder top %d",
			got, indexBatchLadder[len(indexBatchLadder)-1])
	}
}

// TestAutoTuneOffHasNoController pins the pay-for-what-you-touch
// contract's control side: no collector, no AutoTune — no layer, no
// tuner.
func TestAutoTuneOffHasNoController(t *testing.T) {
	p := New(posix.NewMemFS(), DefaultOptions())
	if p.Tuner() != nil || p.stats != nil {
		t.Fatal("telemetry state allocated with Stats nil and AutoTune off")
	}
}
