package plfs

import (
	"bytes"
	"strings"
	"testing"

	"ldplfs/internal/iostats"
	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// readAllBytes reads the container's full logical contents through a
// fresh pid.
func readAllBytes(t *testing.T, p *FS, path string) []byte {
	t.Helper()
	f, err := p.Open(path, posix.O_RDONLY, 7777, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(7777)
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if n, err := f.Read(buf, 0); err != nil || int64(n) != size {
		t.Fatalf("read %s = %d, %v (size %d)", path, n, err, size)
	}
	return buf
}

// copyTree duplicates a subtree between posix stores.
func copyTree(t *testing.T, from, to posix.FS, path string) {
	t.Helper()
	if err := to.Mkdir(path, 0o755); err != nil && err != posix.EEXIST {
		t.Fatal(err)
	}
	entries, err := from.Readdir(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		child := path + "/" + e.Name
		if e.IsDir {
			copyTree(t, from, to, child)
			continue
		}
		st, err := from.Stat(child)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, st.Size)
		fd, err := from.Open(child, posix.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size > 0 {
			if err := posix.ReadFull(from, fd, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		from.Close(fd)
		wfd, err := to.Open(child, posix.O_CREAT|posix.O_WRONLY|posix.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) > 0 {
			if err := posix.WriteFull(to, wfd, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		to.Close(wfd)
	}
}

// flattenedNames lists the flattened record files in the container root.
func flattenedNames(t *testing.T, p *FS, path string) []string {
	t.Helper()
	entries, err := p.backend.Readdir(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir && strings.HasPrefix(e.Name, flattenedPrefix) {
			out = append(out, e.Name)
		}
	}
	return out
}

func TestAutoFlattenOnLastWriterClose(t *testing.T) {
	p, _ := newTestFS(t)
	want := writeN1(t, p, "/backend/af", 6, 8, 128)

	// The clean close of the last writer persisted a generation-1 record.
	names := flattenedNames(t, p, "/backend/af")
	if len(names) != 1 || names[0] != "index.flattened.1" {
		t.Fatalf("flattened records after close = %v, want [index.flattened.1]", names)
	}
	h, err := p.IndexHealth("/backend/af")
	if err != nil {
		t.Fatal(err)
	}
	if h.Flattened == nil || !h.Flattened.Fresh || h.Flattened.Generation != 1 {
		t.Fatalf("health = %+v, want fresh gen-1 flattened", h)
	}
	if h.IndexDroppings != 6 || h.RawEntries != 48 {
		t.Fatalf("health raw side = %+v, want 6 droppings / 48 entries", h)
	}

	// A cold instance over the same backend serves the first build from
	// the flattened record — and reads the same bytes.
	cold := New(p.backend, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold, "/backend/af"); !bytes.Equal(got, want) {
		t.Fatal("flattened-backed read diverged")
	}
	if s := cacheStats(cold); s.Builds != 1 || s.FlattenedBuilds != 1 {
		t.Fatalf("cold stats = %+v, want the one build to load the flattened record", s)
	}
}

func TestFlattenedStaleAfterNewWrites(t *testing.T) {
	p, _ := newTestFS(t)
	writeN1(t, p, "/backend/stale", 4, 4, 64)

	// A later writer (auto-flatten disabled, so the gen-1 record stays
	// behind, now stale) appends more data.
	noflat := New(p.backend, Options{NumHostdirs: 4, DisableAutoFlatten: true})
	g, err := noflat.Open("/backend/stale", posix.O_WRONLY, 9, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tail := []byte("fresh bytes the flattened record knows nothing about")
	if _, err := g.Write(tail, 4*4*64, 9); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(9); err != nil {
		t.Fatal(err)
	}
	if names := flattenedNames(t, p, "/backend/stale"); len(names) != 1 {
		t.Fatalf("stale staging: records = %v, want the old gen-1 only", names)
	}

	// A cold reader must detect the mismatch, ignore the record, and see
	// the new bytes via the streaming merge.
	cold := New(p.backend, Options{NumHostdirs: 4})
	got := readAllBytes(t, cold, "/backend/stale")
	if int64(len(got)) != 4*4*64+int64(len(tail)) {
		t.Fatalf("size over stale record = %d", len(got))
	}
	if !bytes.Equal(got[4*4*64:], tail) {
		t.Fatal("stale flattened record served old bytes")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 0 {
		t.Fatalf("stats = %+v: stale record was trusted", s)
	}
	if h, err := cold.IndexHealth("/backend/stale"); err != nil || h.Flattened == nil || h.Flattened.Fresh {
		t.Fatalf("health = %+v, %v: stale record reported fresh", h, err)
	}
}

func TestCorruptFlattenedFallsBackSilently(t *testing.T) {
	p, mem := newTestFS(t)
	want := writeN1(t, p, "/backend/corrupt", 4, 4, 64)

	// Flip a byte inside the extent table.
	fd, err := mem.Open("/backend/corrupt/index.flattened.1", posix.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Pwrite(fd, []byte{0xff}, idx.FlattenedHeaderSize+9); err != nil {
		t.Fatal(err)
	}
	mem.Close(fd)

	cold := New(mem, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold, "/backend/corrupt"); !bytes.Equal(got, want) {
		t.Fatal("corrupt flattened record corrupted reads")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 0 {
		t.Fatal("corrupt record was trusted")
	}
	// Truncate the record to a torn tail: same story.
	st, _ := mem.Stat("/backend/corrupt/index.flattened.1")
	if err := mem.Truncate("/backend/corrupt/index.flattened.1", st.Size-11); err != nil {
		t.Fatal(err)
	}
	cold2 := New(mem, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold2, "/backend/corrupt"); !bytes.Equal(got, want) {
		t.Fatal("torn flattened record corrupted reads")
	}
}

func TestFlattenedDistrustedWhileWriterLive(t *testing.T) {
	p, _ := newTestFS(t)
	writeN1(t, p, "/backend/live-w", 2, 2, 64)

	// Reopen a writer but do not write: dropping sizes are unchanged, so
	// only the openhosts check can (and must) demote the record.
	g, err := p.Open("/backend/live-w", posix.O_WRONLY, 3, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("x"), 0, 3); err != nil { // materialise the writer
		t.Fatal(err)
	}
	if err := g.Sync(3); err != nil {
		t.Fatal(err)
	}

	cold := New(p.backend, Options{NumHostdirs: 4})
	readAllBytes(t, cold, "/backend/live-w")
	if s := cacheStats(cold); s.FlattenedBuilds != 0 {
		t.Fatal("flattened record trusted while a writer is live")
	}
	g.Close(3)
}

func TestSetFlattenedReadsRuntimeToggle(t *testing.T) {
	p, _ := newTestFS(t)
	want := writeN1(t, p, "/backend/knob", 4, 4, 64)

	cold := New(p.backend, Options{NumHostdirs: 4, DisableFlattenedReads: true})
	if cold.FlattenedReads() {
		t.Fatal("DisableFlattenedReads did not seed the knob")
	}
	if got := readAllBytes(t, cold, "/backend/knob"); !bytes.Equal(got, want) {
		t.Fatal("merge-path read diverged")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 0 {
		t.Fatal("disabled flattened reads still loaded the record")
	}
	// Flip the knob live; invalidate to force a rebuild.
	cold.SetFlattenedReads(true)
	cold.invalidateIndex("/backend/knob")
	if got := readAllBytes(t, cold, "/backend/knob"); !bytes.Equal(got, want) {
		t.Fatal("flattened-path read diverged")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 1 {
		t.Fatalf("stats after live enable = %+v", s)
	}
}

func TestWriteFlattenedIndexRefusesActiveWriters(t *testing.T) {
	p, _ := newTestFS(t)
	f, err := p.Open("/backend/busy-flat", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x"), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteFlattenedIndex("/backend/busy-flat"); err == nil {
		t.Fatal("flatten allowed with active writer")
	}
	f.Close(1)
	info, err := p.WriteFlattenedIndex("/backend/busy-flat")
	if err != nil {
		t.Fatal(err)
	}
	// Auto-flatten at close wrote gen 1; the explicit flatten supersedes
	// it and retires the old generation.
	if info.Generation != 2 || !info.Fresh {
		t.Fatalf("explicit flatten info = %+v", info)
	}
	if names := flattenedNames(t, p, "/backend/busy-flat"); len(names) != 1 || names[0] != "index.flattened.2" {
		t.Fatalf("records = %v, want only gen 2", names)
	}
	if _, err := p.WriteFlattenedIndex("/backend/missing"); err == nil {
		t.Fatal("flatten of missing container succeeded")
	}
}

func TestDropFlattenedIndex(t *testing.T) {
	p, _ := newTestFS(t)
	want := writeN1(t, p, "/backend/dropf", 4, 2, 64)
	if n, err := p.DropFlattenedIndex("/backend/dropf"); err != nil || n != 1 {
		t.Fatalf("drop = %d, %v; want 1", n, err)
	}
	if names := flattenedNames(t, p, "/backend/dropf"); len(names) != 0 {
		t.Fatalf("records after drop = %v", names)
	}
	cold := New(p.backend, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold, "/backend/dropf"); !bytes.Equal(got, want) {
		t.Fatal("read after drop diverged")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 0 {
		t.Fatal("dropped record still served a build")
	}
	if n, err := p.DropFlattenedIndex("/backend/dropf"); err != nil || n != 0 {
		t.Fatalf("second drop = %d, %v", n, err)
	}
}

func TestTruncateRetiresFlattenedRecords(t *testing.T) {
	p, _ := newTestFS(t)
	writeN1(t, p, "/backend/trf", 4, 4, 64)
	if err := p.Truncate("/backend/trf", 300); err != nil {
		t.Fatal(err)
	}
	if names := flattenedNames(t, p, "/backend/trf"); len(names) != 0 {
		t.Fatalf("partial truncate left flattened records: %v", names)
	}
	got := readAllBytes(t, p, "/backend/trf")
	if len(got) != 300 {
		t.Fatalf("size after truncate = %d", len(got))
	}
	if err := p.Truncate("/backend/trf", 0); err != nil {
		t.Fatal(err)
	}
	if names := flattenedNames(t, p, "/backend/trf"); len(names) != 0 {
		t.Fatalf("trunc-0 left flattened records: %v", names)
	}
}

func TestCompactIndexRefreshesFlattened(t *testing.T) {
	p, _ := newTestFS(t)
	want := writeN1(t, p, "/backend/cflat", 6, 4, 64)
	if err := p.CompactIndex("/backend/cflat"); err != nil {
		t.Fatal(err)
	}
	h, err := p.IndexHealth("/backend/cflat")
	if err != nil {
		t.Fatal(err)
	}
	if h.IndexDroppings != 1 {
		t.Fatalf("droppings after compact = %d", h.IndexDroppings)
	}
	if h.Flattened == nil || !h.Flattened.Fresh || h.Flattened.Generation < 2 {
		t.Fatalf("flattened after compact = %+v, want a fresh refreshed record", h.Flattened)
	}
	cold := New(p.backend, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold, "/backend/cflat"); !bytes.Equal(got, want) {
		t.Fatal("read after compact+flatten diverged")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 1 {
		t.Fatalf("cold stats after compact = %+v", s)
	}
}

func TestFlattenedSurvivesRename(t *testing.T) {
	// The raw signature is container-relative: renaming a container must
	// not demote its flattened record.
	p, _ := newTestFS(t)
	want := writeN1(t, p, "/backend/mv-a", 4, 4, 64)
	if err := p.Rename("/backend/mv-a", "/backend/mv-b"); err != nil {
		t.Fatal(err)
	}
	cold := New(p.backend, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold, "/backend/mv-b"); !bytes.Equal(got, want) {
		t.Fatal("read after rename diverged")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 1 {
		t.Fatalf("flattened record not trusted after rename: %+v", s)
	}
}

func TestStripedFlattenedPlacement(t *testing.T) {
	// The flattened record is canonical metadata: it must live on backend
	// 0 only, while the droppings it summarises spread across all three.
	p, mems := newStripedFS(t, 3, false, Options{NumHostdirs: 6})
	f, err := p.Open("/backend/fplace", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 6*128)
	for pid := uint32(0); pid < 6; pid++ {
		payload := bytes.Repeat([]byte{byte(pid + 1)}, 128)
		copy(want[int(pid)*128:], payload)
		if _, err := f.Write(payload, int64(pid)*128, pid); err != nil {
			t.Fatal(err)
		}
	}
	for pid := uint32(0); pid < 6; pid++ {
		if err := f.Close(pid); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mems[0].Stat("/backend/fplace/index.flattened.1"); err != nil {
		t.Fatalf("flattened record missing on canonical backend: %v", err)
	}
	for bi := 1; bi < 3; bi++ {
		if _, err := mems[bi].Stat("/backend/fplace/index.flattened.1"); err == nil {
			t.Fatalf("flattened record leaked onto shadow backend %d", bi)
		}
	}
	cold := New(nil, Options{NumHostdirs: 6, Backends: []posix.FS{mems[0], mems[1], mems[2]}})
	if got := readAllBytes(t, cold, "/backend/fplace"); !bytes.Equal(got, want) {
		t.Fatal("striped flattened read diverged")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 1 {
		t.Fatalf("striped cold open did not use the flattened record: %+v", s)
	}
}

func TestFlattenedStaleGenerationNameMismatch(t *testing.T) {
	// A record whose file name claims a newer generation than its header
	// (a forged or misplaced copy) must be rejected by the gen check.
	p, mem := newTestFS(t)
	want := writeN1(t, p, "/backend/genm", 2, 2, 64)
	// Copy gen 1's bytes to a higher-generation name.
	src := "/backend/genm/index.flattened.1"
	st, err := mem.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, st.Size)
	fd, _ := mem.Open(src, posix.O_RDONLY, 0)
	if err := posix.ReadFull(mem, fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	mem.Close(fd)
	dst := "/backend/genm/index.flattened.9"
	wfd, _ := mem.Open(dst, posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err := posix.WriteFull(mem, wfd, buf, 0); err != nil {
		t.Fatal(err)
	}
	mem.Close(wfd)

	cold := New(mem, Options{NumHostdirs: 4})
	if got := readAllBytes(t, cold, "/backend/genm"); !bytes.Equal(got, want) {
		t.Fatal("gen-mismatched record corrupted reads")
	}
	if s := cacheStats(cold); s.FlattenedBuilds != 0 {
		t.Fatal("gen-mismatched record was trusted")
	}
	if h, err := cold.IndexHealth("/backend/genm"); err != nil || h.Flattened == nil || h.Flattened.Fresh || h.StaleRecords != 2 {
		t.Fatalf("health = %+v, %v; want 2 stale records", h, err)
	}
}

func TestStreamingMergeMatchesSlurpUnderDisorder(t *testing.T) {
	// Forge a container whose dropping has out-of-order timestamps (no
	// real writer produces one): the read path must fall back to
	// slurp-and-sort and still resolve last-writer-wins correctly.
	p, mem := newTestFS(t)
	if err := p.CreateContainer("/backend/disorder", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mem.Mkdir("/backend/disorder/hostdir.1", 0o755); err != nil {
		t.Fatal(err)
	}
	// pid 1, timestamps 5 then 3: entry with ts 5 wins the overlap even
	// though it appears first in the dropping.
	if err := idx.WriteDropping(mem, "/backend/disorder/hostdir.1/dropping.index.1", []idx.Entry{
		{LogicalOffset: 0, Length: 4, PhysicalOffset: 0, Timestamp: 5, Pid: 1},
		{LogicalOffset: 0, Length: 4, PhysicalOffset: 4, Timestamp: 3, Pid: 1},
	}); err != nil {
		t.Fatal(err)
	}
	// Data dropping: "WIN!" then "lose".
	fd, err := mem.Open("/backend/disorder/hostdir.1/dropping.data.1", posix.O_CREAT|posix.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := posix.WriteFull(mem, fd, []byte("WIN!lose"), 0); err != nil {
		t.Fatal(err)
	}
	mem.Close(fd)

	got := readAllBytes(t, p, "/backend/disorder")
	if string(got) != "WIN!" {
		t.Fatalf("disorder fallback read = %q, want WIN!", got)
	}
}

func TestIndexHealthMissingContainer(t *testing.T) {
	p, _ := newTestFS(t)
	if _, err := p.IndexHealth("/backend/nope"); err == nil {
		t.Fatal("health of missing container succeeded")
	}
	if _, err := p.DropFlattenedIndex("/backend/nope"); err == nil {
		t.Fatal("drop on missing container succeeded")
	}
}

func TestAutoFlattenSkipsWhileOtherWritersLive(t *testing.T) {
	// Two handles, two pids: the first close must not flatten (the other
	// writer is live); the second must.
	p, _ := newTestFS(t)
	f1, err := p.Open("/backend/two", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.Open("/backend/two", posix.O_RDWR, 2, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Write([]byte("one"), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("two"), 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := f1.Close(1); err != nil {
		t.Fatal(err)
	}
	if names := flattenedNames(t, p, "/backend/two"); len(names) != 0 {
		t.Fatalf("flattened while pid 2 still open: %v", names)
	}
	if err := f2.Close(2); err != nil {
		t.Fatal(err)
	}
	if names := flattenedNames(t, p, "/backend/two"); len(names) != 1 {
		t.Fatalf("last close did not flatten: %v", names)
	}
	if got := readAllBytes(t, p, "/backend/two"); string(got) != "onetwo" {
		t.Fatalf("content = %q", got)
	}
}

func TestColdOpenDroppingReadCost(t *testing.T) {
	// The point of the flattened record in backend-operation terms: a
	// cold Size() over N droppings must read the one flattened file, not
	// all N droppings; with the record dropped it must read all N.
	p, _ := newTestFS(t)
	const writers = 12
	writeN1(t, p, "/backend/cost", writers, 4, 64)

	countReads := func(disable bool) int {
		mem2 := posix.NewMemFS()
		copyTree(t, p.backend, mem2, "/backend")
		plane := iostats.NewPlane()
		ins := posix.NewInstrumentFS(mem2, plane, posix.WithLayerName("backend"))
		cold := New(ins,
			EngineOptions{NumHostdirs: 4},
			IndexOptions{DisableFlattenedReads: disable})
		before := plane.Layer("backend").OpCount(iostats.Open)
		f, err := cold.Open("/backend/cost", posix.O_RDONLY, 50, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close(50)
		if _, err := f.Size(); err != nil {
			t.Fatal(err)
		}
		return int(plane.Layer("backend").OpCount(iostats.Open) - before)
	}
	flat := countReads(false)
	merge := countReads(true)
	if flat >= merge {
		t.Fatalf("flattened cold open opened %d files, merge path %d — no metadata saving", flat, merge)
	}
}
