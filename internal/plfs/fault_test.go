package plfs

import (
	"bytes"
	"errors"
	"testing"

	"ldplfs/internal/posix"
)

// faultPLFS builds a PLFS instance over a fault-injecting MemFS.
func faultPLFS(t *testing.T) (*FS, *posix.FaultFS, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	ffs := posix.NewFaultFS(mem)
	return New(ffs, Options{NumHostdirs: 2}), ffs, mem
}

func TestENOSPCDuringDataWrite(t *testing.T) {
	p, ffs, _ := faultPLFS(t)
	f, err := p.Open("/backend/full", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("fits"), 0, 1); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&posix.FaultRule{Op: posix.FaultWrite, Err: posix.ENOSPC})
	if _, err := f.Write([]byte("does not"), 4, 1); !errors.Is(err, posix.ENOSPC) {
		t.Fatalf("write on full device = %v, want ENOSPC", err)
	}
	ffs.Clear()
	// The successful write survives; no phantom index entry for the
	// failed one (its payload never reached the dropping).
	got := make([]byte, 16)
	n, err := f.Read(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || string(got[:n]) != "fits" {
		t.Fatalf("content after ENOSPC = %q (n=%d)", got[:n], n)
	}
	f.Close(1)
}

// TestPartialWriteKeepsIndexInSync is the regression test for the
// partial-write desync: when the backend lands n > 0 bytes and then
// errors, the dropping grew by n, so the durable prefix must be indexed
// and the physical cursor advanced — or every subsequent write's index
// entry points n bytes before its real payload.
func TestPartialWriteKeepsIndexInSync(t *testing.T) {
	p, ffs, _ := faultPLFS(t)
	f, err := p.Open("/backend/torn-write", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// The device fills after 40 of the 100 bytes.
	ffs.Inject(&posix.FaultRule{
		Op: posix.FaultWrite, PathContains: "dropping.data",
		Partial: 40, Times: 1, Err: posix.ENOSPC,
	})
	first := bytes.Repeat([]byte{'p'}, 100)
	n, err := f.Write(first, 0, 1)
	if !errors.Is(err, posix.ENOSPC) {
		t.Fatalf("write on filling device = %d, %v (want ENOSPC)", n, err)
	}
	if n != 40 {
		t.Fatalf("partial write landed %d bytes, want 40", n)
	}
	ffs.Clear()
	// The durable prefix must read back...
	got := make([]byte, 40)
	if rn, err := f.Read(got, 0); err != nil || rn != 40 {
		t.Fatalf("read durable prefix: n=%d err=%v", rn, err)
	}
	if !bytes.Equal(got, first[:40]) {
		t.Fatal("durable prefix not indexed after partial write")
	}
	// ...and the next successful write must not be shifted by the
	// unrecorded 40 bytes (the original bug: stale physOff).
	second := bytes.Repeat([]byte{'s'}, 60)
	if wn, err := f.Write(second, 40, 1); err != nil || wn != 60 {
		t.Fatalf("follow-up write: n=%d err=%v", wn, err)
	}
	full := make([]byte, 100)
	if rn, err := f.Read(full, 0); err != nil || rn != 100 {
		t.Fatalf("full read: n=%d err=%v", rn, err)
	}
	want := append(append([]byte{}, first[:40]...), second...)
	if !bytes.Equal(full, want) {
		t.Fatal("write after partial failure reads back shifted payload (physOff desync)")
	}
	f.Close(1)
}

func TestCreateContainerFailsCleanly(t *testing.T) {
	p, ffs, mem := faultPLFS(t)
	ffs.Inject(&posix.FaultRule{Op: posix.FaultMeta, PathContains: "/backend/no", Err: posix.EACCES})
	if _, err := p.Open("/backend/no", posix.O_CREAT|posix.O_WRONLY, 1, 0o644); err == nil {
		t.Fatal("container creation should fail when mkdir is refused")
	}
	ffs.Clear()
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("%d fds leaked from failed container create", got)
	}
}

func TestIndexDroppingFailureDetectedOnRead(t *testing.T) {
	p, _, mem := faultPLFS(t)
	f, _ := p.Open("/backend/torn", posix.O_CREAT|posix.O_RDWR, 3, 0o644)
	f.Write(make([]byte, 1000), 0, 3)
	f.Sync(3)

	// Corrupt the index dropping on disk: flip a byte in a record.
	idxPath := "/backend/torn/hostdir.1/dropping.index.3"
	fd, err := mem.Open(idxPath, posix.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0xff}
	if _, err := mem.Pwrite(fd, buf, 20); err != nil { // inside the first record
		t.Fatal(err)
	}
	mem.Close(fd)

	// A fresh reader must refuse the container, not return garbage.
	g, err := p.Open("/backend/torn", posix.O_RDONLY, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(make([]byte, 100), 0); err == nil {
		t.Fatal("read over a corrupted index succeeded")
	}
	g.Close(4)
	f.Close(3)
}

func TestTornIndexTailDegradesGracefully(t *testing.T) {
	// A torn tail (crash mid-append, or a short group flush awaiting its
	// retry) drops exactly the unfinished record — which was never
	// promised durable — instead of poisoning the whole container.
	// Records before the tear stay readable, and a writer resuming the
	// dropping trims the tear so its appends stay record-aligned.
	p, _, mem := faultPLFS(t)
	f, _ := p.Open("/backend/tail", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write(make([]byte, 64), 0, 1)
	f.Write([]byte("second record"), 64, 1)
	f.Close(1)

	// Tear the second record: the dropping loses its last 7 bytes.
	idxPath := "/backend/tail/hostdir.1/dropping.index.1"
	st, err := mem.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Truncate(idxPath, st.Size-7); err != nil {
		t.Fatal(err)
	}
	g, err := p.Open("/backend/tail", posix.O_RDONLY, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := g.Size(); err != nil || size != 64 {
		t.Fatalf("size over torn tail = %d, %v (want the 64 intact bytes)", size, err)
	}
	if n, err := g.Read(make([]byte, 64), 0); err != nil || n != 64 {
		t.Fatalf("read of intact prefix = %d, %v", n, err)
	}
	g.Close(2)

	// A resumed writer must trim the tear before appending.
	h, err := p.Open("/backend/tail", posix.O_WRONLY, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("healed"), 64, 1); err != nil {
		t.Fatal(err)
	}
	h.Close(1)
	r, err := p.Open("/backend/tail", posix.O_RDONLY, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if n, err := r.Read(buf, 64); err != nil || n != 6 || string(buf) != "healed" {
		t.Fatalf("read after resumed append = %q (n=%d, %v)", buf[:n], n, err)
	}
	r.Close(3)
}

func TestFlakyBackendReadRetries(t *testing.T) {
	p, ffs, _ := faultPLFS(t)
	f, _ := p.Open("/backend/flaky", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write([]byte("resilient"), 0, 1)
	// One transient read failure: the first Read errors, a retry works
	// (PLFS does not mask transient faults; the caller retries).
	ffs.Inject(&posix.FaultRule{Op: posix.FaultRead, Times: 1, Err: posix.EIO})
	buf := make([]byte, 9)
	if _, err := f.Read(buf, 0); err == nil {
		t.Fatal("flaky read masked")
	}
	if n, err := f.Read(buf, 0); err != nil || string(buf[:n]) != "resilient" {
		t.Fatalf("retry = %q, %v", buf[:n], err)
	}
	f.Close(1)
}

func TestMetaHintWriteFailureIsNotFatal(t *testing.T) {
	// Dropping the size hint at close is best-effort in PLFS; a failure
	// there must not fail the close, and stat must still work via the
	// index merge.
	p, ffs, _ := faultPLFS(t)
	f, _ := p.Open("/backend/hintless", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write(make([]byte, 512), 0, 1)
	ffs.Inject(&posix.FaultRule{Op: posix.FaultOpen, PathContains: "meta/size", Err: posix.EACCES})
	if err := f.Close(1); err != nil {
		t.Fatalf("close failed on best-effort hint: %v", err)
	}
	ffs.Clear()
	st, err := p.Stat("/backend/hintless")
	if err != nil || st.Size != 512 {
		t.Fatalf("stat without hint = %+v, %v", st, err)
	}
}
