package plfs

import (
	"errors"
	"testing"

	"ldplfs/internal/posix"
)

// faultPLFS builds a PLFS instance over a fault-injecting MemFS.
func faultPLFS(t *testing.T) (*FS, *posix.FaultFS, *posix.MemFS) {
	t.Helper()
	mem := posix.NewMemFS()
	if err := mem.Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	ffs := posix.NewFaultFS(mem)
	return New(ffs, Options{NumHostdirs: 2}), ffs, mem
}

func TestENOSPCDuringDataWrite(t *testing.T) {
	p, ffs, _ := faultPLFS(t)
	f, err := p.Open("/backend/full", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("fits"), 0, 1); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&posix.FaultRule{Op: posix.FaultWrite, Err: posix.ENOSPC})
	if _, err := f.Write([]byte("does not"), 4, 1); !errors.Is(err, posix.ENOSPC) {
		t.Fatalf("write on full device = %v, want ENOSPC", err)
	}
	ffs.Clear()
	// The successful write survives; no phantom index entry for the
	// failed one (its payload never reached the dropping).
	got := make([]byte, 16)
	n, err := f.Read(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || string(got[:n]) != "fits" {
		t.Fatalf("content after ENOSPC = %q (n=%d)", got[:n], n)
	}
	f.Close(1)
}

func TestCreateContainerFailsCleanly(t *testing.T) {
	p, ffs, mem := faultPLFS(t)
	ffs.Inject(&posix.FaultRule{Op: posix.FaultMeta, PathContains: "/backend/no", Err: posix.EACCES})
	if _, err := p.Open("/backend/no", posix.O_CREAT|posix.O_WRONLY, 1, 0o644); err == nil {
		t.Fatal("container creation should fail when mkdir is refused")
	}
	ffs.Clear()
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("%d fds leaked from failed container create", got)
	}
}

func TestIndexDroppingFailureDetectedOnRead(t *testing.T) {
	p, _, mem := faultPLFS(t)
	f, _ := p.Open("/backend/torn", posix.O_CREAT|posix.O_RDWR, 3, 0o644)
	f.Write(make([]byte, 1000), 0, 3)
	f.Sync(3)

	// Corrupt the index dropping on disk: flip a byte in a record.
	idxPath := "/backend/torn/hostdir.1/dropping.index.3"
	fd, err := mem.Open(idxPath, posix.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0xff}
	if _, err := mem.Pwrite(fd, buf, 20); err != nil { // inside the first record
		t.Fatal(err)
	}
	mem.Close(fd)

	// A fresh reader must refuse the container, not return garbage.
	g, err := p.Open("/backend/torn", posix.O_RDONLY, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(make([]byte, 100), 0); err == nil {
		t.Fatal("read over a corrupted index succeeded")
	}
	g.Close(4)
	f.Close(3)
}

func TestTornIndexTailDetected(t *testing.T) {
	p, _, mem := faultPLFS(t)
	f, _ := p.Open("/backend/tail", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write(make([]byte, 64), 0, 1)
	f.Close(1)

	// Simulate a torn append: the index dropping loses its last 7 bytes
	// (a crash mid-record).
	idxPath := "/backend/tail/hostdir.1/dropping.index.1"
	st, err := mem.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Truncate(idxPath, st.Size-7); err != nil {
		t.Fatal(err)
	}
	g, err := p.Open("/backend/tail", posix.O_RDONLY, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(make([]byte, 10), 0); err == nil {
		t.Fatal("read over a torn index tail succeeded")
	}
	g.Close(2)
}

func TestFlakyBackendReadRetries(t *testing.T) {
	p, ffs, _ := faultPLFS(t)
	f, _ := p.Open("/backend/flaky", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	f.Write([]byte("resilient"), 0, 1)
	// One transient read failure: the first Read errors, a retry works
	// (PLFS does not mask transient faults; the caller retries).
	ffs.Inject(&posix.FaultRule{Op: posix.FaultRead, Times: 1, Err: posix.EIO})
	buf := make([]byte, 9)
	if _, err := f.Read(buf, 0); err == nil {
		t.Fatal("flaky read masked")
	}
	if n, err := f.Read(buf, 0); err != nil || string(buf[:n]) != "resilient" {
		t.Fatalf("retry = %q, %v", buf[:n], err)
	}
	f.Close(1)
}

func TestMetaHintWriteFailureIsNotFatal(t *testing.T) {
	// Dropping the size hint at close is best-effort in PLFS; a failure
	// there must not fail the close, and stat must still work via the
	// index merge.
	p, ffs, _ := faultPLFS(t)
	f, _ := p.Open("/backend/hintless", posix.O_CREAT|posix.O_WRONLY, 1, 0o644)
	f.Write(make([]byte, 512), 0, 1)
	ffs.Inject(&posix.FaultRule{Op: posix.FaultOpen, PathContains: "meta/size", Err: posix.EACCES})
	if err := f.Close(1); err != nil {
		t.Fatalf("close failed on best-effort hint: %v", err)
	}
	ffs.Clear()
	st, err := p.Stat("/backend/hintless")
	if err != nil || st.Size != 512 {
		t.Fatalf("stat without hint = %+v, %v", st, err)
	}
}
