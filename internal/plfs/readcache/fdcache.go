package readcache

import (
	"sync"

	"ldplfs/internal/posix"
)

// DefaultMaxFDs bounds the number of cached read descriptors. Wide
// containers (thousands of historical writers) would otherwise pin one
// fd per data dropping for as long as any reader exists.
const DefaultMaxFDs = 128

// FDCache is a size-capped, reference-counted cache of read-only file
// descriptors keyed by backend path. Concurrent readers of one data
// dropping share a single descriptor (positional Pread carries no file
// pointer, so sharing is safe — see posix.FS); eviction of a descriptor
// that is still mid-pread is deferred until its last reference is
// released. All methods are safe for concurrent use.
//
// Multi-backend instances hand the cache their striped composite
// (posix.StripedFS): a dropping's path names exactly one backend under
// the placement rule, so the path key is simultaneously the backend key
// and cached descriptors never cross backends. DropPrefix on a container
// path therefore reaches the droppings on every backend at once.
type FDCache struct {
	fs  posix.FS
	max int

	mu      sync.Mutex
	entries map[string]*fdEntry
	tick    uint64
}

type fdEntry struct {
	path    string
	fd      int
	refs    int
	lastUse uint64
	dead    bool // evicted or dropped; close when refs reaches zero
}

// NewFDCache returns a cache over fs holding at most max descriptors
// (DefaultMaxFDs if max <= 0).
func NewFDCache(fs posix.FS, max int) *FDCache {
	if max <= 0 {
		max = DefaultMaxFDs
	}
	return &FDCache{fs: fs, max: max, entries: make(map[string]*fdEntry)}
}

// Ref is an outstanding reference to a cached descriptor, returned by
// AcquireRef. It is a plain value — acquiring and releasing through it
// allocates nothing, which is why the read engine's warm path uses it
// instead of Acquire's closure. Release exactly once; the zero Ref
// releases as a no-op.
type Ref struct {
	c *FDCache
	e *fdEntry
}

// Release drops the reference. Unlike Acquire's closure it is not
// idempotent: releasing the same Ref twice corrupts the refcount.
func (r Ref) Release() {
	if r.c == nil {
		return
	}
	r.c.mu.Lock()
	r.e.refs--
	closeNow := r.e.dead && r.e.refs == 0
	r.c.mu.Unlock()
	if closeNow {
		r.c.fs.Close(r.e.fd)
	}
}

// Acquire returns a read-only descriptor for path, opening it on first
// use, and a release function that must be called when the caller's
// pread is done. The descriptor stays valid until release is called even
// if the entry is evicted or dropped concurrently. The release closure
// is idempotent; callers on an allocation-sensitive path should use
// AcquireRef instead.
func (c *FDCache) Acquire(path string) (int, func(), error) {
	fd, ref, err := c.AcquireRef(path)
	if err != nil {
		return -1, nil, err
	}
	var once sync.Once
	return fd, func() { once.Do(ref.Release) }, nil
}

// AcquireRef is Acquire returning a value-type reference instead of a
// release closure — zero allocations on a cache hit.
func (c *FDCache) AcquireRef(path string) (int, Ref, error) {
	c.mu.Lock()
	if e := c.entries[path]; e != nil && !e.dead {
		c.tick++
		e.refs++
		e.lastUse = c.tick
		c.mu.Unlock()
		return e.fd, Ref{c, e}, nil
	}
	c.mu.Unlock()

	fd, err := c.fs.Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return -1, Ref{}, err
	}

	c.mu.Lock()
	if e := c.entries[path]; e != nil && !e.dead {
		// Another goroutine opened the same dropping while we did; use
		// the cached descriptor and discard ours.
		c.tick++
		e.refs++
		e.lastUse = c.tick
		c.mu.Unlock()
		c.fs.Close(fd)
		return e.fd, Ref{c, e}, nil
	}
	c.tick++
	e := &fdEntry{path: path, fd: fd, refs: 1, lastUse: c.tick}
	c.entries[path] = e
	victims := c.evictLocked()
	c.mu.Unlock()

	for _, v := range victims {
		c.fs.Close(v)
	}
	return e.fd, Ref{c, e}, nil
}

// evictLocked enforces the cap: unreferenced entries are removed
// oldest-first and their fds returned for closing. Entries pinned by
// in-flight preads cannot be evicted, so the cache may transiently
// exceed its cap under extreme fan-out. Caller holds c.mu.
func (c *FDCache) evictLocked() []int {
	var victims []int
	for len(c.entries) > c.max {
		var victim *fdEntry
		for _, e := range c.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			break // every entry is pinned
		}
		delete(c.entries, victim.path)
		victims = append(victims, victim.fd)
	}
	return victims
}

// DropPrefix invalidates every entry whose path starts with prefix —
// called when a container's droppings are deleted (truncate-to-zero,
// unlink, rename) or its last open handle closes. Unpinned descriptors
// close immediately; pinned ones close on their final release.
func (c *FDCache) DropPrefix(prefix string) {
	var toClose []int
	c.mu.Lock()
	for p, e := range c.entries {
		if len(p) < len(prefix) || p[:len(prefix)] != prefix {
			continue
		}
		delete(c.entries, p)
		e.dead = true
		if e.refs == 0 {
			toClose = append(toClose, e.fd)
		}
	}
	c.mu.Unlock()
	for _, fd := range toClose {
		c.fs.Close(fd)
	}
}

// Len returns the number of cached (live) descriptors.
func (c *FDCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
