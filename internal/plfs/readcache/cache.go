// Package readcache holds the shared read-side caches of the PLFS
// library: a container-level index cache, so N opens of one container
// merge its index droppings once instead of N times, and a size-capped
// cache of read-only data-dropping descriptors shared by every
// concurrent reader of an instance.
//
// Consistency model (mirrors PLFS/close-to-open):
//
//   - Every mutation the owning plfs.FS performs on a container (index
//     flush, truncate, compact, unlink, rename) bumps the container's
//     generation; a cached index built under an older generation is
//     rebuilt on the next Get.
//   - Writes performed by a *different* process (another plfs.FS over
//     the same backend) cannot bump the in-process generation. Callers
//     therefore pass revalidate=true on the first read of a freshly
//     opened handle: Get then compares a cheap on-backend Signature
//     (dropping names, sizes, mtimes) against the one the cached index
//     was built from, and rebuilds on mismatch. This makes a new open
//     exactly as fresh as rebuilding from scratch — at the cost of a
//     metadata scan rather than a full dropping parse.
package readcache

import (
	"sync"
	"sync/atomic"

	"ldplfs/internal/iostats"
	idx "ldplfs/internal/plfs/index"
)

// Signature summarises the on-backend state an index was built from:
// one line per index dropping (path, size, mtime) in deterministic
// order. Two equal signatures mean the droppings are unchanged.
type Signature string

// BuildKind reports which load path a Loader took: the streaming merge
// over raw index droppings, or the O(extents) load of a trusted
// flattened global index record. The cache does not care — both produce
// an equally fresh index — but callers (benchmarks, differential tests,
// plfsctl doctor) need the distinction observable.
type BuildKind int

const (
	// BuildMerge is a full reconstruction from raw index droppings.
	BuildMerge BuildKind = iota
	// BuildFlattened is a direct load of a trusted flattened record.
	BuildFlattened
)

// Loader builds a fresh index, reporting the Signature of the state it
// was built from and which load path produced it.
type Loader func() (*idx.Index, Signature, BuildKind, error)

// SigFunc computes the container's current Signature without parsing
// droppings.
type SigFunc func() (Signature, error)

// Stats counts cache activity. Snapshot via IndexCache.Stats.
//
// Deprecated-but-kept: the counters behind it live on the iostats
// plane (layer "readcache" when the owning plfs.FS is built with a
// collector); this struct remains as a point-in-time view so existing
// tests and callers keep compiling. Every Get is exactly one of Hits,
// Builds or LoadErrors, so Hits+Builds+LoadErrors == Lookups always.
type Stats struct {
	Lookups         int64 // Get calls
	Hits            int64 // Get served from cache
	Builds          int64 // Get ran the loader successfully (misses)
	LoadErrors      int64 // Get ran the loader and it failed
	FlattenedBuilds int64 // of Builds, how many loaded a flattened record
	Revalidations   int64 // signature checks performed
	Invalidations   int64 // generation bumps
}

// DefaultMaxContainers bounds how many containers keep a cached index.
const DefaultMaxContainers = 64

// IndexCache is a per-plfs.FS cache of merged container indexes, keyed
// by container path. All methods are safe for concurrent use.
type IndexCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	max     int
	tick    uint64

	lookups         *iostats.Counter
	hits            *iostats.Counter
	builds          *iostats.Counter
	loadErrors      *iostats.Counter
	flattenedBuilds *iostats.Counter
	revalidations   *iostats.Counter
	invalidations   *iostats.Counter
}

type cacheEntry struct {
	gen atomic.Uint64 // bumped by Invalidate; compared against builtGen

	mu       sync.Mutex // held across loads: concurrent Gets build once
	index    *idx.Index
	sig      Signature
	builtGen uint64
	lastUse  uint64 // IndexCache.tick at last Get, for LRU eviction
}

// NewIndexCache returns a cache holding at most max container indexes
// (DefaultMaxContainers if max <= 0), with standalone counters.
func NewIndexCache(max int) *IndexCache { return NewIndexCacheWith(max, nil) }

// NewIndexCacheWith is NewIndexCache with the cache's counters
// registered on an iostats layer (typically the owning plfs.FS's
// "readcache" layer), so cache activity shows up on the shared
// telemetry plane. A nil layer keeps the counters standalone —
// IndexCache.Stats works either way.
func NewIndexCacheWith(max int, ls *iostats.LayerStats) *IndexCache {
	if max <= 0 {
		max = DefaultMaxContainers
	}
	return &IndexCache{
		entries:         make(map[string]*cacheEntry),
		max:             max,
		lookups:         ls.Counter("lookups"),
		hits:            ls.Counter("hits"),
		builds:          ls.Counter("builds"),
		loadErrors:      ls.Counter("load_errors"),
		flattenedBuilds: ls.Counter("flattened_builds"),
		revalidations:   ls.Counter("revalidations"),
		invalidations:   ls.Counter("invalidations"),
	}
}

// entry returns (creating if needed) the entry for path and stamps its
// use time. The LRU cap is enforced on insertion.
func (c *IndexCache) entry(path string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	e, ok := c.entries[path]
	if !ok {
		e = &cacheEntry{}
		c.entries[path] = e
		if len(c.entries) > c.max {
			c.evictLocked(path)
		}
	}
	e.lastUse = c.tick
	return e
}

// evictLocked drops the least-recently-used entry other than keep.
// Caller holds c.mu. Goroutines still holding the evicted entry finish
// their load harmlessly; the result is simply unreachable afterwards.
func (c *IndexCache) evictLocked(keep string) {
	var victim string
	var oldest uint64
	for p, e := range c.entries {
		if p == keep {
			continue
		}
		if victim == "" || e.lastUse < oldest {
			victim, oldest = p, e.lastUse
		}
	}
	if victim != "" {
		delete(c.entries, victim)
	}
}

// Get returns the cached index for path, running load to (re)build it
// when the cache is empty, the generation moved, or — with revalidate —
// the current signature no longer matches. built reports whether load
// ran. Concurrent Gets for one container serialize on its entry, so a
// build happens once however many readers race for it.
func (c *IndexCache) Get(path string, revalidate bool, sig SigFunc, load Loader) (index *idx.Index, built bool, err error) {
	c.lookups.Add(1)
	e := c.entry(path)
	e.mu.Lock()
	defer e.mu.Unlock()

	gen := e.gen.Load()
	if e.index != nil && e.builtGen == gen {
		fresh := true
		if revalidate {
			c.revalidations.Add(1)
			cur, serr := sig()
			// A signature error (e.g. a dropping vanished mid-scan) falls
			// through to the loader, which surfaces the real failure.
			fresh = serr == nil && cur == e.sig
		}
		if fresh {
			c.hits.Add(1)
			return e.index, false, nil
		}
	}

	index, s, kind, err := load()
	if err != nil {
		c.loadErrors.Add(1)
		return nil, false, err
	}
	c.builds.Add(1)
	if kind == BuildFlattened {
		c.flattenedBuilds.Add(1)
	}
	// builtGen is the generation observed *before* the load: an
	// invalidation racing with the build marks the result stale, and the
	// next Get rebuilds.
	e.index, e.sig, e.builtGen = index, s, gen
	return index, true, nil
}

// Invalidate marks path's cached index stale. It never creates entries:
// invalidating an uncached container is a no-op.
func (c *IndexCache) Invalidate(path string) {
	c.mu.Lock()
	e := c.entries[path]
	c.mu.Unlock()
	if e != nil {
		e.gen.Add(1)
		c.invalidations.Add(1)
	}
}

// Drop removes path's entry entirely (container unlinked or renamed).
func (c *IndexCache) Drop(path string) {
	c.mu.Lock()
	delete(c.entries, path)
	c.mu.Unlock()
}

// Len returns the number of cached containers.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *IndexCache) Stats() Stats {
	return Stats{
		Lookups:         c.lookups.Load(),
		Hits:            c.hits.Load(),
		Builds:          c.builds.Load(),
		LoadErrors:      c.loadErrors.Load(),
		FlattenedBuilds: c.flattenedBuilds.Load(),
		Revalidations:   c.revalidations.Load(),
		Invalidations:   c.invalidations.Load(),
	}
}
