package readcache

import (
	"fmt"
	"sync"
	"testing"

	"ldplfs/internal/posix"
)

func fdFixture(t *testing.T, n int) (*posix.MemFS, []string) {
	t.Helper()
	mem := posix.NewMemFS()
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/d%d", i)
		fd, err := mem.Open(paths[i], posix.O_CREAT|posix.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		mem.Write(fd, []byte("x"))
		mem.Close(fd)
	}
	return mem, paths
}

func TestAcquireSharesDescriptor(t *testing.T) {
	mem, paths := fdFixture(t, 1)
	c := NewFDCache(mem, 0)
	fd1, rel1, err := c.Acquire(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	fd2, rel2, err := c.Acquire(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if fd1 != fd2 {
		t.Fatalf("same dropping produced two fds: %d vs %d", fd1, fd2)
	}
	rel1()
	rel2()
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (release keeps the entry cached)", got)
	}
	if got := mem.OpenFDs(); got != 1 {
		t.Fatalf("backend fds = %d, want 1", got)
	}
}

func TestCapEvictsOldestUnpinned(t *testing.T) {
	mem, paths := fdFixture(t, 6)
	c := NewFDCache(mem, 4)
	for _, p := range paths {
		_, rel, err := c.Acquire(p)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want cap 4", got)
	}
	if got := mem.OpenFDs(); got != 4 {
		t.Fatalf("backend fds = %d, want 4 (evicted fds closed)", got)
	}
}

func TestEvictionDefersUntilRelease(t *testing.T) {
	mem, paths := fdFixture(t, 3)
	c := NewFDCache(mem, 1)
	// Pin the first descriptor, then blow past the cap: the pinned fd
	// must stay open and readable until its release.
	fd0, rel0, err := c.Acquire(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths[1:] {
		_, rel, err := c.Acquire(p)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	buf := make([]byte, 1)
	if _, err := mem.Pread(fd0, buf, 0); err != nil {
		t.Fatalf("pinned fd unusable: %v", err)
	}
	c.DropPrefix("/") // kill everything; fd0 still pinned
	if _, err := mem.Pread(fd0, buf, 0); err != nil {
		t.Fatalf("pinned fd closed by DropPrefix: %v", err)
	}
	rel0()
	rel0() // double release must be a no-op
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("backend fds = %d, want 0 after final release", got)
	}
}

func TestDropPrefixScopesToContainer(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/a", 0o755)
	mem.Mkdir("/ab", 0o755)
	for _, p := range []string{"/a/d", "/ab/d"} {
		fd, _ := mem.Open(p, posix.O_CREAT|posix.O_WRONLY, 0o644)
		mem.Close(fd)
	}
	c := NewFDCache(mem, 0)
	for _, p := range []string{"/a/d", "/ab/d"} {
		_, rel, err := c.Acquire(p)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	c.DropPrefix("/a/")
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (/ab/d must survive /a/'s drop)", got)
	}
}

func TestAcquireConcurrent(t *testing.T) {
	mem, paths := fdFixture(t, 8)
	c := NewFDCache(mem, 4)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := paths[(g+i)%len(paths)]
				fd, rel, err := c.Acquire(p)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 1)
				if _, err := mem.Pread(fd, buf, 0); err != nil {
					t.Errorf("pread via cached fd: %v", err)
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 4 {
		t.Fatalf("Len = %d, want <= 4 after churn", got)
	}
}
