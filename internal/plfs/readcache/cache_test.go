package readcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	idx "ldplfs/internal/plfs/index"
)

func loader(builds *atomic.Int64, sig Signature) Loader {
	return func() (*idx.Index, Signature, BuildKind, error) {
		builds.Add(1)
		return idx.Build(nil), sig, BuildMerge, nil
	}
}

func sigFn(s Signature) SigFunc {
	return func() (Signature, error) { return s, nil }
}

func TestGetBuildsOnceAndHits(t *testing.T) {
	c := NewIndexCache(0)
	var builds atomic.Int64
	for i := 0; i < 5; i++ {
		index, built, err := c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
		if err != nil || index == nil {
			t.Fatalf("Get: %v", err)
		}
		if want := i == 0; built != want {
			t.Fatalf("iteration %d: built = %v, want %v", i, built, want)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	if s := c.Stats(); s.Hits != 4 || s.Builds != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidateForcesRebuild(t *testing.T) {
	c := NewIndexCache(0)
	var builds atomic.Int64
	c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
	c.Invalidate("/c")
	_, built, _ := c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
	if !built || builds.Load() != 2 {
		t.Fatalf("built=%v builds=%d after invalidation", built, builds.Load())
	}
	// Invalidating an uncached path must not create entries.
	c.Invalidate("/never-seen")
	if c.Len() != 1 {
		t.Fatalf("Len = %d after no-op invalidate", c.Len())
	}
}

func TestRevalidationDetectsBackendChange(t *testing.T) {
	c := NewIndexCache(0)
	var builds atomic.Int64
	cur := Signature("v1")
	sig := func() (Signature, error) { return cur, nil }
	load := func() (*idx.Index, Signature, BuildKind, error) {
		builds.Add(1)
		return idx.Build(nil), cur, BuildMerge, nil
	}

	c.Get("/c", true, sig, load)
	// Unchanged backend: revalidation hits.
	if _, built, _ := c.Get("/c", true, sig, load); built {
		t.Fatal("rebuilt with unchanged signature")
	}
	// Generation untouched but the backend moved (another process wrote):
	// a revalidating Get rebuilds, a trusting Get does not.
	cur = "v2"
	if _, built, _ := c.Get("/c", false, sig, load); built {
		t.Fatal("non-revalidating Get rebuilt")
	}
	if _, built, _ := c.Get("/c", true, sig, load); !built {
		t.Fatal("revalidating Get served a stale index")
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := NewIndexCache(0)
	boom := errors.New("boom")
	fail := func() (*idx.Index, Signature, BuildKind, error) { return nil, "", BuildMerge, boom }
	if _, _, err := c.Get("/c", false, sigFn("s"), fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var builds atomic.Int64
	if _, built, err := c.Get("/c", false, sigFn("s"), loader(&builds, "s")); err != nil || !built {
		t.Fatalf("recovery Get: built=%v err=%v", built, err)
	}
}

func TestDropRemovesEntry(t *testing.T) {
	c := NewIndexCache(0)
	var builds atomic.Int64
	c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
	c.Drop("/c")
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Drop", c.Len())
	}
	c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want rebuild after Drop", builds.Load())
	}
}

func TestLRUEvictionBoundsContainers(t *testing.T) {
	c := NewIndexCache(4)
	var builds atomic.Int64
	for i := 0; i < 10; i++ {
		path := fmt.Sprintf("/c%d", i)
		c.Get(path, false, sigFn("s"), loader(&builds, "s"))
	}
	if c.Len() > 4 {
		t.Fatalf("Len = %d, want <= 4", c.Len())
	}
	// The most recent container is still cached.
	if _, built, _ := c.Get("/c9", false, sigFn("s"), loader(&builds, "s")); built {
		t.Fatal("most recent entry was evicted")
	}
}

func TestConcurrentGetSingleflight(t *testing.T) {
	c := NewIndexCache(0)
	var builds atomic.Int64
	var inFlight, maxInFlight atomic.Int64
	load := func() (*idx.Index, Signature, BuildKind, error) {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		builds.Add(1)
		inFlight.Add(-1)
		return idx.Build(nil), "s", BuildMerge, nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Get("/c", false, sigFn("s"), load); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", builds.Load())
	}
	if maxInFlight.Load() != 1 {
		t.Fatalf("max concurrent builds = %d, want 1", maxInFlight.Load())
	}
}

// TestStatsCoherenceUnderRaces hammers one cache with concurrent Gets,
// Invalidates and Drops over a handful of containers (run under -race
// in CI) and then checks the counter invariant the migration to the
// iostats plane promises: every lookup resolved as exactly one of a
// hit, a build or a load error — however the goroutines interleaved.
func TestStatsCoherenceUnderRaces(t *testing.T) {
	c := NewIndexCache(4)
	paths := []string{"/a", "/b", "/c", "/d", "/e", "/f"}
	var builds atomic.Int64

	const goroutines = 12
	const opsPer = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := uint64(seed*2654435761 + 1)
			next := func(n int) int {
				// xorshift: a private deterministic stream per goroutine,
				// so the interleaving is randomized but reproducible.
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < opsPer; i++ {
				path := paths[next(len(paths))]
				switch next(10) {
				case 0:
					c.Invalidate(path)
				case 1:
					c.Drop(path)
				default:
					revalidate := next(2) == 0
					if _, _, err := c.Get(path, revalidate, sigFn("s"), loader(&builds, "s")); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.Lookups == 0 {
		t.Fatal("no lookups recorded")
	}
	if s.Hits+s.Builds+s.LoadErrors != s.Lookups {
		t.Fatalf("counter incoherence: hits %d + builds %d + loadErrors %d != lookups %d (stats %+v)",
			s.Hits, s.Builds, s.LoadErrors, s.Lookups, s)
	}
	if s.LoadErrors != 0 {
		t.Fatalf("loader never fails in this test, got %d load errors", s.LoadErrors)
	}
	if s.Builds != builds.Load() {
		t.Fatalf("Builds counter %d != loader invocations %d", s.Builds, builds.Load())
	}
}

func TestLoadErrorCounted(t *testing.T) {
	c := NewIndexCache(0)
	boom := errors.New("boom")
	fail := func() (*idx.Index, Signature, BuildKind, error) { return nil, "", BuildMerge, boom }
	c.Get("/c", false, sigFn("s"), fail)
	var builds atomic.Int64
	c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
	c.Get("/c", false, sigFn("s"), loader(&builds, "s"))
	s := c.Stats()
	if s.Lookups != 3 || s.LoadErrors != 1 || s.Builds != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 3 lookups = 1 error + 1 build + 1 hit", s)
	}
}

func TestFlattenedBuildsCounted(t *testing.T) {
	c := NewIndexCache(0)
	flat := func() (*idx.Index, Signature, BuildKind, error) {
		return idx.Build(nil), "s", BuildFlattened, nil
	}
	if _, built, err := c.Get("/c", false, sigFn("s"), flat); err != nil || !built {
		t.Fatalf("Get: built=%v err=%v", built, err)
	}
	c.Invalidate("/c")
	var builds atomic.Int64
	if _, built, err := c.Get("/c", false, sigFn("s"), loader(&builds, "s")); err != nil || !built {
		t.Fatalf("rebuild: built=%v err=%v", built, err)
	}
	s := c.Stats()
	if s.Builds != 2 || s.FlattenedBuilds != 1 {
		t.Fatalf("stats = %+v, want 2 builds of which 1 flattened", s)
	}
}
