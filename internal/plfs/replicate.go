// Replication health and repair: the doctor-side of the replica-R
// layout. The striped composite degrades writes to the surviving
// replicas when a backend dies; the scanner here finds what the dead
// backend missed (under-replication) or half-applied (divergence), and
// the repairer re-replicates from the best surviving copy — PLFS's
// append-only droppings make "best" well-defined: the largest copy
// strictly contains every shorter one.
package plfs

import (
	"fmt"
	gopath "path"
	"sort"

	idx "ldplfs/internal/plfs/index"
	"ldplfs/internal/posix"
)

// ReplicaCopy is one backend's view of a replicated file.
type ReplicaCopy struct {
	Backend int   // backend index
	Size    int64 // size on that backend (0 when missing)
	Missing bool
}

// ReplicaProblem is one file whose copy set is unhealthy.
type ReplicaProblem struct {
	Path     string // container-relative path
	Want     int    // expected copies (layout width)
	Copies   []ReplicaCopy
	Diverged bool // present copies disagree in size
}

// ReplicationHealth is the result of scanning one container's replica
// sets.
type ReplicationHealth struct {
	// Width is the expected number of copies per file (1 = replication
	// off; the scan is then trivially clean).
	Width int
	// Descriptor is the layout descriptor persisted in the container
	// ("" when none is recorded — a default mod-N container).
	Descriptor string
	// DescriptorErr is the persisted descriptor's validation failure,
	// if any (corrupt or truncated record).
	DescriptorErr string
	// Configured is the descriptor of the layout this instance runs.
	Configured string
	// Files is the number of replicated files scanned.
	Files int
	// UnderReplicated counts files with at least one missing copy.
	UnderReplicated int
	// Diverged counts files whose present copies disagree in size.
	Diverged int
	// Problems lists every unhealthy file.
	Problems []ReplicaProblem
}

// Clean reports whether every replica set is complete and consistent
// and the persisted descriptor (if any) matches the running layout.
func (h ReplicationHealth) Clean() bool {
	return h.UnderReplicated == 0 && h.Diverged == 0 && h.DescriptorErr == "" &&
		(h.Descriptor == "" || h.Descriptor == h.Configured)
}

// RepairReport summarises one RepairReplication pass.
type RepairReport struct {
	// Repaired counts copies rewritten or created.
	Repaired int
	// Skipped counts diverged files left untouched (run with force to
	// overwrite the shorter copies from the longest).
	Skipped int
}

// replicaDirs returns the container-relative directories that may hold
// replicated files: the root, meta/, openhosts/ and every hostdir.
func (p *FS) replicaDirs(path string) ([]string, error) {
	entries, err := p.backend.Readdir(path)
	if err != nil {
		return nil, fmt.Errorf("plfs: replication scan %s: %w", path, err)
	}
	dirs := []string{""}
	for _, e := range entries {
		if e.IsDir {
			dirs = append(dirs, e.Name)
		}
	}
	return dirs, nil
}

// scanReplicaDir returns each owner backend's view (name -> size) of
// one container-relative directory, keyed by backend index, plus the
// union file list. Backends that cannot list the directory (dead, or
// never materialised it) report a nil map.
func scanReplicaDir(backends []posix.FS, owners []int, dir string) (map[int]map[string]int64, []string) {
	views := make(map[int]map[string]int64, len(owners))
	union := map[string]bool{}
	for _, b := range owners {
		entries, err := backends[b].Readdir(dir)
		if err != nil {
			views[b] = nil
			continue
		}
		view := make(map[string]int64, len(entries))
		for _, e := range entries {
			if e.IsDir {
				continue
			}
			st, err := backends[b].Stat(dir + "/" + e.Name)
			if err != nil || st.IsDir() {
				continue
			}
			view[e.Name] = st.Size
			union[e.Name] = true
		}
		views[b] = view
	}
	names := make([]string, 0, len(union))
	for n := range union {
		names = append(names, n)
	}
	sort.Strings(names)
	return views, names
}

// viewSignature folds one backend's directory view into the flattened-
// index raw signature (names + sizes) — the PR 4 scheme reused here so
// agreement between replicas is a single 8-byte comparison and the
// per-file diff only runs on mismatch.
func viewSignature(view map[string]int64) uint64 {
	names := make([]string, 0, len(view))
	for n := range view {
		names = append(names, n)
	}
	sort.Strings(names)
	sizes := make([]int64, len(names))
	for i, n := range names {
		sizes[i] = view[n]
	}
	return idx.RawSignature(names, sizes)
}

// ReplicationHealth scans the container at path: for every file that
// the layout says should exist in R copies, it compares the copies
// across the owner backends. A missing copy is under-replication (a
// backend was dark while the file was written); present copies of
// different sizes are divergence (a backend died mid-write). Logical
// correctness is unaffected either way — reads serve from the healthy
// replicas — but the container has lost redundancy until repaired.
func (p *FS) ReplicationHealth(path string) (ReplicationHealth, error) {
	h := ReplicationHealth{Width: 1}
	s := p.stripedBackend()
	if s != nil {
		h.Width = s.LayoutWidth()
		h.Configured = s.Layout().Descriptor()
	}
	desc, err := p.ContainerLayout(path)
	if err != nil {
		h.DescriptorErr = err.Error()
	}
	h.Descriptor = desc
	if s == nil || h.Width <= 1 {
		return h, nil
	}
	dirs, err := p.replicaDirs(path)
	if err != nil {
		return h, err
	}
	backends := s.Backends()
	for _, dir := range dirs {
		full := path
		rel := ""
		if dir != "" {
			full = path + "/" + dir
			rel = dir + "/"
		}
		// Every file in one directory shares the directory's replica
		// set (canonical rule or hostdir rule — see the layout
		// contract), so owners are computed once per directory. Probe
		// with a marker name so the path is file-like, not the dir.
		owners := s.ReplicasFor(full + "/x")
		views, names := scanReplicaDir(backends, owners, full)
		// Raw-signature fast path: replicas whose (name, size) sets
		// fold to the same signature need no per-file diff.
		agreed := true
		var sig0 uint64
		for i, b := range owners {
			if views[b] == nil {
				agreed = false
				break
			}
			sig := viewSignature(views[b])
			if i == 0 {
				sig0 = sig
			} else if sig != sig0 {
				agreed = false
				break
			}
		}
		h.Files += len(names)
		if agreed {
			continue
		}
		for _, name := range names {
			prob := ReplicaProblem{Path: rel + name, Want: len(owners)}
			missing, diverged := false, false
			var present []int64
			for _, b := range owners {
				view := views[b]
				size, ok := int64(0), false
				if view != nil {
					size, ok = view[name]
				}
				prob.Copies = append(prob.Copies, ReplicaCopy{Backend: b, Size: size, Missing: !ok})
				if !ok {
					missing = true
				} else {
					present = append(present, size)
				}
			}
			for _, sz := range present[1:] {
				if sz != present[0] {
					diverged = true
				}
			}
			prob.Diverged = diverged
			if missing || diverged {
				if missing {
					h.UnderReplicated++
				}
				if diverged {
					h.Diverged++
				}
				h.Problems = append(h.Problems, prob)
			}
		}
	}
	return h, nil
}

// copyReplica copies src (on backend from) to the same container-
// relative path on backend to, creating parent directories — the
// re-replication primitive. The destination is truncated first so a
// diverged longer-than-source copy cannot survive as a hybrid.
func copyReplica(backends []posix.FS, from, to int, path string) error {
	sfd, err := backends[from].Open(path, posix.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("plfs: repair source %s: %w", path, err)
	}
	defer backends[from].Close(sfd)
	if err := posix.MkdirAll(backends[to], gopath.Dir(gopath.Clean("/"+path)), 0o755); err != nil {
		return fmt.Errorf("plfs: repair mkdir for %s: %w", path, err)
	}
	dfd, err := backends[to].Open(path, posix.O_CREAT|posix.O_TRUNC|posix.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("plfs: repair destination %s: %w", path, err)
	}
	defer backends[to].Close(dfd)
	b := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(b)
	buf := *b
	var off int64
	for {
		n, err := backends[from].Pread(sfd, buf, off)
		if err != nil {
			return fmt.Errorf("plfs: repair read %s: %w", path, err)
		}
		if n == 0 {
			return nil
		}
		if err := posix.WriteFull(backends[to], dfd, buf[:n], off); err != nil {
			return fmt.Errorf("plfs: repair write %s: %w", path, err)
		}
		off += int64(n)
	}
}

// RepairReplication re-replicates the container at path: every missing
// copy is rebuilt from the largest surviving replica (droppings are
// append-only, so the largest copy strictly contains every shorter
// one). Diverged files — present copies that disagree — are refused
// unless force is set, because overwriting a copy destroys forensic
// state; with force the longest copy wins and the shorter ones are
// rewritten. A second ReplicationHealth pass after a successful repair
// reports clean.
func (p *FS) RepairReplication(path string, force bool) (RepairReport, error) {
	var rep RepairReport
	s := p.stripedBackend()
	if s == nil || s.LayoutWidth() <= 1 {
		return rep, nil
	}
	h, err := p.ReplicationHealth(path)
	if err != nil {
		return rep, err
	}
	backends := s.Backends()
	var firstErr error
	for _, prob := range h.Problems {
		if prob.Diverged && !force {
			rep.Skipped++
			continue
		}
		// Source: the largest present copy.
		src, best := -1, int64(-1)
		for _, c := range prob.Copies {
			if !c.Missing && c.Size > best {
				src, best = c.Backend, c.Size
			}
		}
		if src < 0 {
			// No copy left anywhere: nothing to repair from.
			rep.Skipped++
			continue
		}
		full := path + "/" + prob.Path
		for _, c := range prob.Copies {
			if c.Backend == src || (!c.Missing && c.Size == best) {
				continue
			}
			if err := copyReplica(backends, src, c.Backend, full); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			rep.Repaired++
		}
	}
	// Re-persist a missing or corrupt layout descriptor so the healed
	// container records its identity again.
	if h.DescriptorErr != "" || h.Descriptor == "" {
		if err := p.rewriteLayoutDescriptor(path, s.Layout().Descriptor()); err != nil && firstErr == nil {
			firstErr = err
		}
		rep.Repaired++
	}
	p.invalidateIndex(path)
	return rep, firstErr
}

// rewriteLayoutDescriptor force-writes the layout descriptor record.
func (p *FS) rewriteLayoutDescriptor(path, desc string) error {
	fd, err := p.backend.Open(path+"/"+layoutFile, posix.O_CREAT|posix.O_TRUNC|posix.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("plfs: rewrite layout descriptor: %w", err)
	}
	defer p.backend.Close(fd)
	rec := posix.MarshalLayoutDescriptor(desc)
	if err := posix.WriteFull(p.backend, fd, rec, 0); err != nil {
		return fmt.Errorf("plfs: rewrite layout descriptor: %w", err)
	}
	return nil
}
