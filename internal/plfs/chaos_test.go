package plfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ldplfs/internal/iostats"
	"ldplfs/internal/posix"
)

// replicaRig is a PLFS instance over n FaultFS-wrapped, instrumented
// in-memory backends with a replica layout — the chaos-test fixture.
type replicaRig struct {
	p      *FS
	faults []*posix.FaultFS
	mems   []*posix.MemFS
	plane  *iostats.Plane
}

// newReplicaRig builds the fixture: each backend chain is
// InstrumentFS("b<i>") -> FaultFS -> MemFS, so fault injection sits
// below the op counters and every attempt (including ones the fault
// layer rejects) is counted.
func newReplicaRig(t *testing.T, n int, desc string, opts Options) *replicaRig {
	t.Helper()
	r := &replicaRig{plane: iostats.NewPlane()}
	opts.Backends = make([]posix.FS, n)
	opts.Layout = desc
	opts.Stats = r.plane
	for i := 0; i < n; i++ {
		mem := posix.NewMemFS()
		ff := posix.NewFaultFS(mem)
		r.mems = append(r.mems, mem)
		r.faults = append(r.faults, ff)
		opts.Backends[i] = posix.NewInstrumentFS(ff, r.plane, posix.WithLayerName(fmt.Sprintf("b%d", i)))
	}
	r.p = New(nil, opts)
	if err := r.p.Backend().Mkdir("/backend", 0o755); err != nil {
		t.Fatal(err)
	}
	return r
}

// counter reads one replica counter off the posix layer.
func (r *replicaRig) counter(name string) int64 {
	return r.plane.Layer("posix").Counter(name).Load()
}

// backendReads sums pread attempts across every backend.
func (r *replicaRig) backendReads() int64 {
	var total int64
	for i := range r.mems {
		total += r.plane.Layer(fmt.Sprintf("b%d", i)).OpCount(iostats.Read)
	}
	return total
}

// readBack cold-reads the whole logical file.
func readBack(t *testing.T, p *FS, path string) []byte {
	t.Helper()
	f, err := p.Open(path, posix.O_RDONLY, 999, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f.Close(999)
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, size)
	if n, err := f.Read(out, 0); err != nil || int64(n) != size {
		t.Fatalf("read back: n=%d err=%v size=%d", n, err, size)
	}
	return out
}

// TestChaosKillBackendMidWrite is the headline chaos test: a replica-2
// container over three backends loses backend 1 mid-way through an N-1
// write workload (a deterministic op-count schedule, no wall clock).
// The workload must complete, reads with the backend still dark must be
// byte-identical to an undisturbed single-backend reference, and the
// read amplification must stay within 2x of a healthy replica twin —
// the op-count proxy for the "within 2x latency" bound.
func TestChaosKillBackendMidWrite(t *testing.T) {
	const pids, recs, recSize = 6, 20, 512

	// Healthy twin: replica-2, no faults — the latency baseline. The
	// helper returns the expected logical bytes (the undisturbed
	// reference: content is a pure function of writer and block).
	healthy := newReplicaRig(t, 3, "replica-2", Options{NumHostdirs: 6})
	want := writeN1(t, healthy.p, "/backend/f", pids, recs, recSize)
	if got := readBack(t, healthy.p, "/backend/f"); !bytes.Equal(got, want) {
		t.Fatalf("healthy replica-2 read diverged from reference (%d vs %d bytes)", len(got), len(want))
	}
	healthyReads := healthy.backendReads()

	// Chaos run: backend 1 dies after its 10th write op (past container
	// creation, well inside the workload) and stays dark through the
	// read phase.
	chaos := newReplicaRig(t, 3, "replica-2", Options{NumHostdirs: 6})
	chaos.faults[1].Schedule(nil, &posix.FaultStep{AfterOps: 10, Op: posix.FaultWrite, Kill: true})
	writeN1(t, chaos.p, "/backend/f", pids, recs, recSize)
	if !chaos.faults[1].Killed() {
		t.Fatal("schedule never fired: backend 1 still alive")
	}
	if got := chaos.counter("replica_write_degraded"); got == 0 {
		t.Fatal("no degraded writes recorded with a dead replica owner")
	}
	preReads := chaos.backendReads()
	if got := readBack(t, chaos.p, "/backend/f"); !bytes.Equal(got, want) {
		t.Fatalf("chaos read diverged from reference (%d vs %d bytes)", len(got), len(want))
	}
	if got := chaos.counter("replica_read_failover"); got == 0 {
		t.Fatal("no failover reads recorded with a dead primary")
	}
	chaosReads := chaos.backendReads() - preReads
	if chaosReads > 2*healthyReads {
		t.Fatalf("read amplification %d ops vs healthy %d: above the 2x bound", chaosReads, healthyReads)
	}

	// Determinism: the same schedule on a fresh rig reproduces the same
	// degraded-write count.
	again := newReplicaRig(t, 3, "replica-2", Options{NumHostdirs: 6})
	again.faults[1].Schedule(nil, &posix.FaultStep{AfterOps: 10, Op: posix.FaultWrite, Kill: true})
	writeN1(t, again.p, "/backend/f", pids, recs, recSize)
	if a, b := again.counter("replica_write_degraded"), chaos.counter("replica_write_degraded"); a != b {
		t.Fatalf("chaos schedule not deterministic: %d vs %d degraded writes", a, b)
	}
}

// TestChaosHedgedReadAtPlfsLayer pins the hedged-read path end to end:
// with the dropping's primary replica stalled behind a fault gate and
// an injected hedge timer that fires immediately, a plfs-level read is
// served by the secondary and the hedged counter ticks — no wall-clock
// dependence, the stall is released only after the read returns.
func TestChaosHedgedReadAtPlfsLayer(t *testing.T) {
	hedgeNow := func(time.Duration) <-chan time.Time {
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	}
	rig := newReplicaRig(t, 3, "replica-2", Options{
		NumHostdirs:   6,
		HedgeDeadline: time.Millisecond,
		HedgeTimer:    hedgeNow,
	})
	hedgeWant := writeN1(t, rig.p, "/backend/f", 2, 4, 256)

	// Find the hostdir the droppings landed in and gate reads on its
	// primary owner: mod-3 of the hostdir number.
	entries, err := rig.p.Backend().Readdir("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	primary := -1
	for _, e := range entries {
		var k int
		if _, err := fmt.Sscanf(e.Name, "hostdir.%d", &k); err == nil {
			primary = k % 3
			break
		}
	}
	if primary < 0 {
		t.Fatal("no hostdir found in container")
	}
	gate := make(chan struct{})
	rig.faults[primary].Inject(&posix.FaultRule{
		Op:           posix.FaultRead,
		PathContains: "hostdir.",
		Gate:         gate,
	})
	got := readBack(t, rig.p, "/backend/f")
	close(gate)
	if !bytes.Equal(got, hedgeWant) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if rig.counter("replica_read_hedged") == 0 {
		t.Fatal("no hedged reads recorded with a gated primary")
	}
}

// TestChaosHealCycle is the self-healing end-to-end: kill a backend,
// write a replicated container (every write to a set containing the
// dead backend degrades), revive it, confirm the doctor sees the
// under-replication, repair, and confirm a second scan is clean and a
// second repair is a no-op. Reads stay byte-correct throughout.
func TestChaosHealCycle(t *testing.T) {
	const pids, recs, recSize = 6, 10, 256

	rig := newReplicaRig(t, 3, "replica-2", Options{NumHostdirs: 6})
	rig.faults[2].Kill()
	want := writeN1(t, rig.p, "/backend/f", pids, recs, recSize)
	if got := readBack(t, rig.p, "/backend/f"); !bytes.Equal(got, want) {
		t.Fatal("degraded read diverged from reference")
	}

	rig.faults[2].Revive()
	h, err := rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if h.Width != 2 || h.Configured != "replica-2" || h.Descriptor != "replica-2" {
		t.Fatalf("health identity wrong: %+v", h)
	}
	if h.UnderReplicated == 0 || h.Clean() {
		t.Fatalf("doctor missed the under-replication: %+v", h)
	}

	rep, err := rig.p.RepairReplication("/backend/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 || rep.Skipped != 0 {
		t.Fatalf("repair did nothing: %+v", rep)
	}
	h2, err := rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Clean() {
		t.Fatalf("container still unhealthy after repair: %+v", h2)
	}
	// Idempotence: a second repair finds nothing to do.
	rep2, err := rig.p.RepairReplication("/backend/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Repaired != 0 || rep2.Skipped != 0 {
		t.Fatalf("repair not idempotent: %+v", rep2)
	}
	if got := readBack(t, rig.p, "/backend/f"); !bytes.Equal(got, want) {
		t.Fatal("healed read diverged from reference")
	}
}
