package plfs

import (
	"bytes"
	"strings"
	"testing"

	"ldplfs/internal/posix"
)

// damageReplica truncates one backend's copy of the first replicated
// dropping it finds, returning the damaged container-relative path and
// the backend index — the "backend died mid-write" divergence shape.
func damageReplica(t *testing.T, rig *replicaRig, container string) (string, int) {
	t.Helper()
	entries, err := rig.p.Backend().Readdir(container)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir || !strings.HasPrefix(e.Name, "hostdir.") {
			continue
		}
		dir := container + "/" + e.Name
		for b, mem := range rig.mems {
			sub, err := mem.Readdir(dir)
			if err != nil {
				continue
			}
			for _, f := range sub {
				if f.IsDir || !strings.HasPrefix(f.Name, "dropping.data.") {
					continue
				}
				path := dir + "/" + f.Name
				st, err := mem.Stat(path)
				if err != nil || st.Size < 2 {
					continue
				}
				if err := mem.Truncate(path, st.Size/2); err != nil {
					t.Fatal(err)
				}
				rel := strings.TrimPrefix(path, container+"/")
				return rel, b
			}
		}
	}
	t.Fatal("no replicated dropping found to damage")
	return "", -1
}

// TestReplicationHealthDetectsDivergence pins divergence detection and
// the force semantics of repair: a half-truncated copy is reported as
// diverged (not under-replicated), a plain repair refuses to touch it,
// and a forced repair rebuilds it from the longest copy.
func TestReplicationHealthDetectsDivergence(t *testing.T) {
	rig := newReplicaRig(t, 3, "replica-2", Options{NumHostdirs: 4})
	want := writeN1(t, rig.p, "/backend/f", 4, 6, 128)

	h, err := rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Clean() || h.Files == 0 {
		t.Fatalf("fresh container not clean: %+v", h)
	}

	rel, damagedBackend := damageReplica(t, rig, "/backend/f")
	h, err = rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if h.Diverged != 1 || h.UnderReplicated != 0 || h.Clean() {
		t.Fatalf("divergence not detected: %+v", h)
	}
	found := false
	for _, prob := range h.Problems {
		if prob.Path != rel {
			continue
		}
		found = true
		if !prob.Diverged {
			t.Fatalf("problem not flagged diverged: %+v", prob)
		}
		for _, c := range prob.Copies {
			if c.Missing {
				t.Fatalf("truncated copy reported missing: %+v", prob)
			}
		}
	}
	if !found {
		t.Fatalf("damaged path %s not in problems: %+v", rel, h.Problems)
	}

	// Plain repair refuses diverged files: forensic state is preserved.
	rep, err := rig.p.RepairReplication("/backend/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 0 || rep.Skipped != 1 {
		t.Fatalf("unforced repair touched a diverged file: %+v", rep)
	}
	h, err = rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if h.Diverged != 1 {
		t.Fatalf("diverged file vanished without force: %+v", h)
	}

	// Forced repair rebuilds the short copy from the longest one.
	rep, err = rig.p.RepairReplication("/backend/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 || rep.Skipped != 0 {
		t.Fatalf("forced repair: %+v", rep)
	}
	h, err = rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Clean() {
		t.Fatalf("container unhealthy after forced repair: %+v", h)
	}
	// The repaired copy matches its healthy peer byte for byte.
	var sizes []int64
	for _, mem := range rig.mems {
		if st, err := mem.Stat("/backend/f/" + rel); err == nil {
			sizes = append(sizes, st.Size)
		}
	}
	if len(sizes) != 2 || sizes[0] != sizes[1] {
		t.Fatalf("copy sizes after forced repair: %v (backend %d was damaged)", sizes, damagedBackend)
	}
	if got := readBack(t, rig.p, "/backend/f"); !bytes.Equal(got, want) {
		t.Fatal("logical bytes diverged after forced repair")
	}
}

// TestReplicationDescriptorRepair pins descriptor healing: a corrupted
// layout.desc is reported (DescriptorErr), reads are unaffected, and a
// repair rewrites the canonical record.
func TestReplicationDescriptorRepair(t *testing.T) {
	rig := newReplicaRig(t, 3, "replica-2", Options{NumHostdirs: 4})
	want := writeN1(t, rig.p, "/backend/f", 2, 4, 64)

	if desc, err := rig.p.ContainerLayout("/backend/f"); err != nil || desc != "replica-2" {
		t.Fatalf("ContainerLayout = %q, %v", desc, err)
	}

	// Corrupt every copy of the descriptor record in place.
	for _, mem := range rig.mems {
		fd, err := mem.Open("/backend/f/layout.desc", posix.O_WRONLY, 0)
		if err != nil {
			continue
		}
		if _, err := mem.Pwrite(fd, []byte{0xff}, 4); err != nil {
			t.Fatal(err)
		}
		mem.Close(fd)
	}
	if _, err := rig.p.ContainerLayout("/backend/f"); err == nil {
		t.Fatal("corrupt descriptor went undetected")
	}
	h, err := rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if h.DescriptorErr == "" || h.Clean() {
		t.Fatalf("health missed the corrupt descriptor: %+v", h)
	}
	if got := readBack(t, rig.p, "/backend/f"); !bytes.Equal(got, want) {
		t.Fatal("descriptor corruption affected data reads")
	}

	rep, err := rig.p.RepairReplication("/backend/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("repair did not rewrite the descriptor: %+v", rep)
	}
	if desc, err := rig.p.ContainerLayout("/backend/f"); err != nil || desc != "replica-2" {
		t.Fatalf("descriptor after repair = %q, %v", desc, err)
	}
	h, err = rig.p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Clean() {
		t.Fatalf("unhealthy after descriptor repair: %+v", h)
	}
}

// TestReplicationHealthModNTrivial pins that replication scanning is a
// no-op for width-1 layouts: mod-N containers are trivially clean and
// repair does nothing.
func TestReplicationHealthModNTrivial(t *testing.T) {
	p, _ := newStripedFS(t, 3, false, Options{NumHostdirs: 4})
	writeN1(t, p, "/backend/f", 2, 2, 64)
	h, err := p.ReplicationHealth("/backend/f")
	if err != nil {
		t.Fatal(err)
	}
	if h.Width != 1 || !h.Clean() {
		t.Fatalf("mod-N health: %+v", h)
	}
	rep, err := p.RepairReplication("/backend/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 0 || rep.Skipped != 0 {
		t.Fatalf("mod-N repair did something: %+v", rep)
	}
	if desc, err := p.ContainerLayout("/backend/f"); err != nil || desc != "" {
		t.Fatalf("mod-N container grew a descriptor: %q, %v", desc, err)
	}
}
