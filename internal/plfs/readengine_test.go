package plfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ldplfs/internal/posix"
)

// writeN1 builds a classic N-1 container: writers pids [0,n) each write
// their strided blocks of size block, striping round-robin across the
// logical file, then close.
func writeN1(t testing.TB, p *FS, path string, writers, blocksPer, block int) []byte {
	t.Helper()
	want := make([]byte, writers*blocksPer*block)
	f, err := p.Open(path, posix.O_CREAT|posix.O_WRONLY, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for b := 0; b < blocksPer; b++ {
			off := int64((b*writers + w) * block)
			payload := bytes.Repeat([]byte{byte(w*31 + b + 1)}, block)
			copy(want[off:], payload)
			if _, err := f.Write(payload, off, uint32(w)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := 0; w < writers; w++ {
		if err := f.Close(uint32(w)); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func TestParallelReadMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			mem := posix.NewMemFS()
			mem.Mkdir("/backend", 0o755)
			p := New(mem, Options{NumHostdirs: 4, ReadWorkers: workers, IndexWorkers: workers})
			want := writeN1(t, p, "/backend/n1", 16, 8, 512)

			f, err := p.Open("/backend/n1", posix.O_RDONLY, 99, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close(99)
			got := make([]byte, len(want))
			n, err := f.Read(got, 0)
			if err != nil || n != len(want) {
				t.Fatalf("Read = %d, %v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("parallel gather corrupted data")
			}
			// Unaligned interior read crossing many extents.
			n, err = f.Read(got[:5000], 777)
			if err != nil || n != 5000 {
				t.Fatalf("interior Read = %d, %v", n, err)
			}
			if !bytes.Equal(got[:5000], want[777:777+5000]) {
				t.Fatal("interior gather corrupted data")
			}
		})
	}
}

func TestSharedIndexBuildsOncePerContainer(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4})
	want := writeN1(t, p, "/backend/shared", 8, 4, 256)

	// N sequential opens + reads: one full build; reopens revalidate by
	// signature instead of re-merging every dropping.
	base := cacheStats(p).Builds
	for i := 0; i < 6; i++ {
		f, err := p.Open("/backend/shared", posix.O_RDONLY, uint32(100+i), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if n, err := f.Read(got, 0); err != nil || n != len(want) || !bytes.Equal(got, want) {
			t.Fatalf("open %d: Read = %d, %v", i, n, err)
		}
		f.Close(uint32(100 + i))
	}
	s := cacheStats(p)
	if builds := s.Builds - base; builds != 1 {
		t.Fatalf("builds = %d across 6 opens, want 1 (shared cache)", builds)
	}
	if s.Revalidations == 0 {
		t.Fatal("reopens performed no close-to-open revalidation")
	}
}

func TestCacheInvalidatedByWrite(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4})
	f, err := p.Open("/backend/w", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(1)
	got := make([]byte, 8)
	f.Write([]byte("old-data"), 0, 1)
	if n, _ := f.Read(got, 0); string(got[:n]) != "old-data" {
		t.Fatalf("first read = %q", got[:n])
	}
	// A write after the index is cached must be visible to the next read.
	f.Write([]byte("new"), 0, 1)
	if n, _ := f.Read(got, 0); string(got[:n]) != "new-data" {
		t.Fatalf("read after overwrite = %q, cache not invalidated", got[:n])
	}
}

func TestCacheInvalidatedByTrunc(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4})
	f, _ := p.Open("/backend/t", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	defer f.Close(1)
	f.Write(bytes.Repeat([]byte{7}, 1000), 0, 1)
	if size, _ := f.Size(); size != 1000 {
		t.Fatalf("size = %d", size)
	}
	if err := f.Trunc(100); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 100 {
		t.Fatalf("size after open-handle trunc = %d, cache not invalidated", size)
	}

	// Path-level truncate on a closed container invalidates too.
	g, _ := p.Open("/backend/t2", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	g.Write(bytes.Repeat([]byte{9}, 500), 0, 1)
	if size, _ := g.Size(); size != 500 {
		t.Fatal("setup")
	}
	g.Close(1)
	if err := p.Truncate("/backend/t2", 50); err != nil {
		t.Fatal(err)
	}
	h, _ := p.Open("/backend/t2", posix.O_RDONLY, 2, 0)
	defer h.Close(2)
	if size, _ := h.Size(); size != 50 {
		t.Fatalf("size after FS.Truncate = %d, want 50", size)
	}
}

func TestCacheInvalidatedByCompactIndex(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4})
	want := writeN1(t, p, "/backend/c", 8, 4, 128)

	// Prime the cache through a reader, keep the handle open across the
	// compaction: compaction replaces every dropping, so a cached index
	// pointing at the old ones must be rebuilt, not trusted.
	f, err := p.Open("/backend/c", posix.O_RDONLY, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(50)
	got := make([]byte, len(want))
	if n, _ := f.Read(got, 0); n != len(want) {
		t.Fatal("prime read")
	}
	if err := p.CompactIndex("/backend/c"); err != nil {
		t.Fatal(err)
	}
	if n, err := p.IndexDroppings("/backend/c"); err != nil || n != 1 {
		t.Fatalf("droppings after compact = %d, %v", n, err)
	}
	for i := range got {
		got[i] = 0
	}
	if n, err := f.Read(got, 0); err != nil || n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("read after compact = %d, %v", n, err)
	}
}

func TestConcurrentReadersDuringActiveWriter(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4})
	const block = 256

	w, err := p.Open("/backend/live", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Seed one block so readers always have something at offset 0.
	w.Write(bytes.Repeat([]byte{1}, block), 0, 1)
	w.Sync(1)

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // active writer: append blocks, syncing each
		defer writerWG.Done()
		// Bounded: every sync invalidates the shared index, so readers
		// rebuild against a growing entry count — unbounded appends here
		// would make those rebuilds quadratic and the test unbounded too.
		for i := 1; i <= 300; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w.Write(bytes.Repeat([]byte{byte(i%250 + 1)}, block), int64(i*block), 1)
			w.Sync(1)
		}
	}()
	for r := 0; r < 8; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			f, err := p.Open("/backend/live", posix.O_RDONLY, uint32(100+r), 0)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close(uint32(100 + r))
			buf := make([]byte, block)
			for i := 0; i < 200; i++ {
				n, err := f.Read(buf, 0)
				if err != nil || n != block {
					t.Errorf("reader %d: Read = %d, %v", r, n, err)
					return
				}
				// Block 0 was written once before any reader started and
				// never overwritten: it must always read back intact.
				for j := 0; j < n; j++ {
					if buf[j] != 1 {
						t.Errorf("reader %d: byte %d = %d mid-write", r, j, buf[j])
						return
					}
				}
			}
		}(r)
	}
	// Let readers finish, then stop the writer.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	w.Close(1)
}

// TestReadEngineRaceHammer drives one container from many goroutines —
// writers appending+syncing, readers scatter-gathering, stat and size
// probes — to give the race detector surface area over the cache, the
// fd cache and the RWMutex read path. Correctness of the data is
// checked afterwards.
func TestReadEngineRaceHammer(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4, MaxReadFDs: 8})
	const (
		writers = 4
		readers = 8
		rounds  = 40
		block   = 128
	)
	f, err := p.Open("/backend/hammer", posix.O_CREAT|posix.O_RDWR, 0, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, block)
			for i := 0; i < rounds; i++ {
				off := int64((i*writers + w) * block)
				if _, err := f.Write(payload, off, uint32(w)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%8 == 0 {
					f.Sync(uint32(w))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g, err := p.Open("/backend/hammer", posix.O_RDONLY, uint32(200+r), 0)
			if err != nil {
				t.Error(err)
				return
			}
			defer g.Close(uint32(200 + r))
			buf := make([]byte, 4*block)
			for i := 0; i < rounds; i++ {
				if _, err := g.Read(buf, int64((i%rounds)*block)); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if _, err := g.Size(); err != nil {
					t.Errorf("reader %d size: %v", r, err)
					return
				}
				if i%10 == 0 {
					if _, err := p.Stat("/backend/hammer"); err != nil {
						t.Errorf("reader %d stat: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if err := f.Close(uint32(w)); err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced: every block must hold exactly its writer's byte.
	g, _ := p.Open("/backend/hammer", posix.O_RDONLY, 99, 0)
	defer g.Close(99)
	got := make([]byte, writers*rounds*block)
	if n, err := g.Read(got, 0); err != nil || n != len(got) {
		t.Fatalf("final read = %d, %v", n, err)
	}
	for i := 0; i < writers*rounds; i++ {
		wantByte := byte(i%writers + 1)
		for j := i * block; j < (i+1)*block; j++ {
			if got[j] != wantByte {
				t.Fatalf("block %d byte %d = %d, want %d", i, j, got[j], wantByte)
			}
		}
	}
}

func TestShortReadOnMidExtentError(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	ffs := posix.NewFaultFS(mem)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ffs.Clear()
			p := New(ffs, Options{NumHostdirs: 4, ReadWorkers: workers})
			path := fmt.Sprintf("/backend/short%d", workers)
			f, err := p.Open(path, posix.O_CREAT|posix.O_RDWR, 0, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// Three extents from three writers: pid 0 at [0,100), pid 1 at
			// [100,200), pid 2 at [200,300).
			for pid := 0; pid < 3; pid++ {
				payload := bytes.Repeat([]byte{byte(pid + 1)}, 100)
				if _, err := f.Write(payload, int64(pid*100), uint32(pid)); err != nil {
					t.Fatal(err)
				}
			}
			// Build the index first (no faults), then fail only pid 1's
			// data dropping.
			buf := make([]byte, 300)
			if n, err := f.Read(buf, 0); err != nil || n != 300 {
				t.Fatalf("pre-fault read = %d, %v", n, err)
			}
			ffs.Inject(&posix.FaultRule{Op: posix.FaultRead, PathContains: "dropping.data.1", Err: posix.EIO})
			n, err := f.Read(buf, 0)
			if err == nil {
				t.Fatal("mid-extent fault masked")
			}
			// Documented contract: n is the contiguous error-free prefix —
			// exactly the 100 bytes of pid 0's extent, valid in buf[:n].
			if n != 100 {
				t.Fatalf("short read n = %d, want 100 (error-free prefix)", n)
			}
			for i := 0; i < n; i++ {
				if buf[i] != 1 {
					t.Fatalf("prefix byte %d = %d corrupted", i, buf[i])
				}
			}
			ffs.Clear()
			for pid := 0; pid < 3; pid++ {
				f.Close(uint32(pid))
			}
		})
	}
}

func TestReadFDsCappedOnWideContainer(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	// 64 writers, fd cache capped at 8: the gather must succeed while
	// never holding more than cap descriptors (plus in-flight pins).
	p := New(mem, Options{NumHostdirs: 8, MaxReadFDs: 8, ReadWorkers: 4})
	want := writeN1(t, p, "/backend/wide", 64, 2, 64)
	f, err := p.Open("/backend/wide", posix.O_RDONLY, 999, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := f.Read(got, 0); err != nil || n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("wide read = %d, %v", n, err)
	}
	if fds := p.CachedReadFDs(); fds > 8+4 {
		t.Fatalf("cached read fds = %d, want bounded near cap 8", fds)
	}
	f.Close(999)
	// Last handle gone: the container's read fds are drained (plfs_close
	// semantics), nothing leaks.
	if fds := p.CachedReadFDs(); fds != 0 {
		t.Fatalf("cached read fds = %d after last close, want 0", fds)
	}
	if got := mem.OpenFDs(); got != 0 {
		t.Fatalf("backend fds leaked: %d", got)
	}
}

func TestCrossInstanceCloseToOpenConsistency(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	// Two library instances over one backend — two "processes". A reader
	// instance that cached the index must see a second process's writes
	// on its next open (close-to-open), via signature revalidation.
	pA := New(mem, Options{NumHostdirs: 4})
	pB := New(mem, Options{NumHostdirs: 4})

	fA, _ := pA.Open("/backend/x", posix.O_CREAT|posix.O_RDWR, 1, 0o644)
	fA.Write([]byte("first"), 0, 1)
	fA.Close(1)

	// B reads (and caches) the 5-byte file.
	fB, _ := pB.Open("/backend/x", posix.O_RDONLY, 2, 0)
	buf := make([]byte, 32)
	if n, _ := fB.Read(buf, 0); string(buf[:n]) != "first" {
		t.Fatalf("B initial read = %q", buf[:n])
	}
	fB.Close(2)

	// A extends the file from its own instance.
	fA, _ = pA.Open("/backend/x", posix.O_WRONLY, 1, 0o644)
	fA.Write([]byte("-second"), 5, 1)
	fA.Close(1)

	// B's fresh open revalidates and sees 12 bytes, not its stale 5.
	fB, _ = pB.Open("/backend/x", posix.O_RDONLY, 2, 0)
	defer fB.Close(2)
	if n, err := fB.Read(buf, 0); err != nil || string(buf[:n]) != "first-second" {
		t.Fatalf("B reopened read = %q, %v (stale cache?)", buf[:n], err)
	}
}

func TestDisableIndexCacheBaseline(t *testing.T) {
	mem := posix.NewMemFS()
	mem.Mkdir("/backend", 0o755)
	p := New(mem, Options{NumHostdirs: 4, DisableIndexCache: true, ReadWorkers: 1, IndexWorkers: 1})
	want := writeN1(t, p, "/backend/base", 8, 4, 256)
	f, err := p.Open("/backend/base", posix.O_RDONLY, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(9)
	got := make([]byte, len(want))
	if n, err := f.Read(got, 0); err != nil || n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("baseline read = %d, %v", n, err)
	}
	if s := cacheStats(p); s.Builds != 0 {
		t.Fatalf("disabled cache recorded %d builds", s.Builds)
	}
}
